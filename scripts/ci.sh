#!/bin/sh
# CI gate: build, vet, relief-lint (the project's own static-analysis
# suite, see docs/LINTING.md), optional third-party linters, full test
# suite (including the golden main-grid determinism digest), then a
# one-iteration benchmark smoke run so simulator-throughput regressions
# surface in the log.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== relief-lint"
go run ./cmd/relief-lint ./...

echo "== relief-lint json smoke"
# A clean tree must yield an empty JSON findings array; anything else is
# either a finding or an output-format regression.
go run ./cmd/relief-lint -json ./... | grep -qx '\[\]'

echo "== relief-lint vettool smoke"
# The binary must also speak cmd/go's unitchecker protocol.
go build -o "$tmp/relief-lint" ./cmd/relief-lint
go vet -vettool="$tmp/relief-lint" ./internal/sim ./internal/metrics

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping"
fi

echo "== test"
go test ./...

echo "== race (short)"
go test -race -short ./...

echo "== bench smoke"
go test -run '^$' -bench 'BenchmarkFig4$' -benchtime=1x -benchmem .

echo "== metrics smoke"
go run ./cmd/relief-sim -mix C -policy RELIEF -metrics "$tmp/m" >/dev/null
grep -q '"schema": "relief-metrics/1"' "$tmp/m.json"
test -s "$tmp/m.csv"
grep -q '^# TYPE' "$tmp/m.prom"

echo "== serve smoke"
# End-to-end over a real socket: start on an ephemeral port, POST the
# same scenario twice (second spelled in a different field order — the
# content digest must still hit the cache), then SIGTERM and require a
# clean drain (exit 0 + the "stopped" line).
if command -v curl >/dev/null 2>&1; then
	go build -o "$tmp/relief-serve" ./cmd/relief-serve
	"$tmp/relief-serve" -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
	serve_pid=$!
	addr=""
	for _ in $(seq 1 100); do
		addr="$(sed -n 's|^relief-serve: listening on http://||p' "$tmp/serve.log")"
		[ -n "$addr" ] && break
		sleep 0.1
	done
	test -n "$addr"
	curl -sf -X POST "http://$addr/run" \
		-d '{"mix":"CG","policy":"RELIEF"}' >"$tmp/serve1.json"
	grep -q '"cached": false' "$tmp/serve1.json"
	curl -sf -X POST "http://$addr/run" \
		-d '{"policy":"RELIEF","mix":"CG"}' >"$tmp/serve2.json"
	grep -q '"cached": true' "$tmp/serve2.json"
	curl -sf "http://$addr/metrics" | grep -q '^relief_serve_cache_hits_total 1$'
	kill -TERM "$serve_pid"
	wait "$serve_pid"
	grep -q '^relief-serve: stopped$' "$tmp/serve.log"
else
	echo "curl not installed; skipping"
fi

echo "== bench report smoke"
go build -o "$tmp/relief-bench" ./cmd/relief-bench
# Pin the report filename: "auto" names the file BENCH_<date>.json, which
# makes the check ambiguous when several runs share $tmp (or a run
# straddles midnight).
(cd "$tmp" && ./relief-bench -exp fig12 -benchjson BENCH_smoke.json >/dev/null)
grep -q '"schema": "relief-bench/1"' "$tmp/BENCH_smoke.json"
