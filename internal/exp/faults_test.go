package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"relief/internal/fault"
	"relief/internal/workload"
)

// goldenFaultDigest locks one faulty scenario (CGL / RELIEF / rate 0.05 /
// seed 7) bit-for-bit: same plan, same seed, same results — forever. If
// this fails, fault materialisation or recovery changed behaviour.
const goldenFaultDigest = "7d57b73981917ceb67115863695dd9cbfbded6fbff6aa28829bae3ae8b68502f"

func faultScenario() Scenario {
	mix, err := workload.ParseMix("CGL")
	if err != nil {
		panic(err)
	}
	return Scenario{
		Mix:        mix,
		Contention: workload.High,
		Policy:     "RELIEF",
		Faults:     fault.Profile(0.05, 7),
	}
}

// faultDigestLine extends the golden digest line with every recovery
// counter, so the lock covers the fault machinery too.
func faultDigestLine(sc Scenario, r *Result) string {
	fs := r.Stats.Faults
	return scenarioDigestLine(sc, r) + fmt.Sprintf(
		"faults h=%d s=%d f=%d d=%d ds=%d cc=%d de=%d wd=%d rt=%d inv=%d ab=%d rdb=%d rcb=%d rec=%d rtime=%d\n",
		fs.Hangs, fs.Slowdowns, fs.TransientFails, fs.InstanceDeaths,
		fs.DMAStalls, fs.DMACorruptions, fs.DRAMErrors,
		fs.WatchdogFires, fs.Retries, fs.InvalidatedForwards, fs.DAGsAborted,
		fs.RetriedDMABytes, fs.RecoveryDRAMBytes, fs.Recoveries, int64(fs.RecoveryTime))
}

// TestFaultDeterminism runs the same faulty scenario twice through fresh
// simulations (no cache) and locks the digest against the golden value.
func TestFaultDeterminism(t *testing.T) {
	sc := faultScenario()
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := faultDigestLine(sc, r1), faultDigestLine(sc, r2)
	if l1 != l2 {
		t.Fatalf("same plan, different results:\n%s\n%s", l1, l2)
	}
	h := sha256.Sum256([]byte(l1))
	if got := hex.EncodeToString(h[:]); got != goldenFaultDigest {
		t.Fatalf("fault digest = %s, want %s\nline: %s", got, goldenFaultDigest, l1)
	}
	if !r1.Stats.Faults.Any() {
		t.Fatal("no faults materialised at rate 0.05")
	}
}

// TestZeroRatePlanNeutral checks the injection hooks are timing-neutral:
// installing a plan whose rates are all zero must reproduce the fault-free
// results bit-for-bit (the watchdogs arm but never perturb anything, and
// the injector draws nothing).
func TestZeroRatePlanNeutral(t *testing.T) {
	mix, err := workload.ParseMix("CDG")
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"RELIEF", "LAX"} {
		base := Scenario{Mix: mix, Contention: workload.High, Policy: policy}
		withPlan := base
		withPlan.Faults = &fault.Plan{Seed: 99}
		r1, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(withPlan)
		if err != nil {
			t.Fatal(err)
		}
		l1 := scenarioDigestLine(base, r1)
		l2 := scenarioDigestLine(base, r2) // same scenario label: compare results only
		if l1 != l2 {
			t.Fatalf("%s: zero-rate plan changed results:\n%s\n%s", policy, l1, l2)
		}
		if r2.Stats.Faults.Any() {
			t.Fatalf("%s: zero-rate plan materialised faults", policy)
		}
	}
}

// TestFaultStudyKeyDistinct checks fault plans partition the sweep cache
// (rate/seed changes re-simulate; a nil plan shares the fault-free cache).
func TestFaultStudyKeyDistinct(t *testing.T) {
	s := NewSweep()
	mix, _ := workload.ParseMix("C")
	base := Scenario{Mix: mix, Contention: workload.Low, Policy: "FCFS"}
	planned := base
	planned.Faults = fault.Profile(0.05, 7)
	reseeded := base
	reseeded.Faults = fault.Profile(0.05, 8)
	keys := map[string]bool{
		s.key(base):     true,
		s.key(planned):  true,
		s.key(reseeded): true,
	}
	if len(keys) != 3 {
		t.Fatalf("fault plans must partition the sweep cache, got %d distinct keys", len(keys))
	}
	if s.key(base) != s.key(Scenario{Mix: mix, Contention: workload.Low, Policy: "FCFS", Faults: nil}) {
		t.Fatal("nil plan key must equal absent plan key")
	}
}

// TestSweepErrOnFailingScenario checks the harness surfaces simulation
// errors instead of silently caching nothing.
func TestSweepErrOnFailingScenario(t *testing.T) {
	s := NewSweep()
	mix, _ := workload.ParseMix("C")
	bad := Scenario{Mix: mix, Contention: workload.Low, Policy: "bogus"}
	s.Warm([]Scenario{bad}, 2)
	if s.Err() == nil {
		t.Fatal("Sweep.Err nil after failing scenario")
	}
	if _, err := s.Get(bad); err == nil {
		t.Fatal("Get on failing scenario returned no error")
	}
}
