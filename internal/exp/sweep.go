package exp

import (
	"io"
	"strconv"
	"sync"

	"relief/internal/workload"
)

// Sweep memoizes scenario results so figure generators that share the same
// underlying simulations (e.g. Figs. 4, 5, 7, 8 at the same contention
// level) run each simulation once. It is safe for concurrent use.
type Sweep struct {
	mu       sync.Mutex
	results  map[string]*Result
	inFlight map[string]*sync.WaitGroup
	err      error // first simulation error seen by Warm/Get
}

// NewSweep returns an empty result cache.
func NewSweep() *Sweep {
	return &Sweep{
		results:  make(map[string]*Result),
		inFlight: make(map[string]*sync.WaitGroup),
	}
}

// key builds the cache key (the canonical scenario encoding, see
// ScenarioKey).
func (s *Sweep) key(sc Scenario) string { return ScenarioKey(sc) }

// ScenarioKey renders the scenario's canonical content key: an explicit,
// delimiter-separated field encoding (no reflective %v formatting). Fields
// cannot collide because each is length-delimited by a terminator that
// cannot appear inside it, and adding a field extends the tail. Trace and
// Metrics are deliberately excluded: observers don't change simulation
// results, and observer-bearing scenarios should call Run directly rather
// than share cached results.
//
// This single encoding backs both the Sweep memoization key and the
// serving layer's content digests (internal/serve hashes it), so the two
// can never drift.
func ScenarioKey(sc Scenario) string { return string(AppendScenarioKey(nil, sc)) }

// AppendScenarioKey appends the canonical scenario encoding to b and
// returns the extended slice (see ScenarioKey).
func AppendScenarioKey(b []byte, sc Scenario) []byte {
	for _, a := range sc.Mix {
		b = append(b, a.Sym()...)
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(sc.Contention), 10)
	b = append(b, '|')
	b = append(b, sc.Policy...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(sc.Topology), 10)
	b = append(b, '|')
	b = append(b, sc.BWPredictor...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(sc.DM), 10)
	b = append(b, '|')
	b = appendBool(b, sc.DisableForwarding)
	b = appendBool(b, sc.AlwaysWriteBack)
	b = strconv.AppendInt(b, int64(sc.OutputPartitions), 10)
	b = append(b, '|')
	b = appendBool(b, sc.DetailedDRAM)
	b = appendBool(b, sc.DRAMFCFS)
	b = append(b, '|')
	b = sc.Faults.AppendKey(b)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(sc.Period), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(sc.Horizon), 10)
	return b
}

// AppendForkKey appends the scenario encoding with the horizon zeroed. A
// warmed simulation's state trajectory up to its capture instant is
// identical for every horizon beyond it (pending future releases cannot
// affect earlier state), so scenarios sharing a fork key can all be seeded
// from one checkpoint (docs/CHECKPOINT.md).
func AppendForkKey(b []byte, sc Scenario) []byte {
	sc.Horizon = 0
	return AppendScenarioKey(b, sc)
}

// ForkKey renders the horizon-agnostic scenario key (see AppendForkKey).
func ForkKey(sc Scenario) string { return string(AppendForkKey(nil, sc)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// Warm runs the given scenarios concurrently (workers goroutines) so later
// Get calls hit the cache. The first error is recorded and reported by
// Err (and again by the per-scenario Get).
func (s *Sweep) Warm(scenarios []Scenario, workers int) {
	if workers < 1 {
		workers = 1
	}
	ch := make(chan Scenario)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sc := range ch {
				_, _ = s.Get(sc)
			}
		}()
	}
	for _, sc := range scenarios {
		ch <- sc
	}
	close(ch)
	wg.Wait()
}

// Err returns the first simulation error encountered by Warm or Get, or
// nil. Callers that prefetch with Warm should check it before trusting the
// cache to be complete.
func (s *Sweep) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// CostTotals sums the simulator-cost counters over every cached result:
// scenarios simulated, kernel events dispatched, and Event structs
// heap-allocated. The benchmark harness samples it before and after each
// experiment, so a scenario's cost is attributed to the experiment that
// first simulated it (cache hits cost nothing).
func (s *Sweep) CostTotals() (scenarios int, events, allocs uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.results {
		scenarios++
		events += r.Stats.EventsFired
		allocs += r.Stats.EventAllocs
	}
	return scenarios, events, allocs
}

// MainGrid enumerates the (contention, mix, policy) scenarios behind the
// paper's core figures, for prefetching.
func MainGrid() []Scenario {
	var out []Scenario
	for _, lvl := range []workload.Contention{workload.Low, workload.Medium, workload.High, workload.Continuous} {
		for _, mix := range workload.Mixes(lvl) {
			for _, p := range FairnessPolicyNames {
				out = append(out, Scenario{Mix: mix, Contention: lvl, Policy: p})
			}
		}
	}
	return out
}

// Get runs the scenario (or returns the cached result).
func (s *Sweep) Get(sc Scenario) (*Result, error) {
	k := s.key(sc)
	for {
		s.mu.Lock()
		if r, ok := s.results[k]; ok {
			s.mu.Unlock()
			return r, nil
		}
		if wg, ok := s.inFlight[k]; ok {
			s.mu.Unlock()
			wg.Wait()
			continue
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		s.inFlight[k] = wg
		s.mu.Unlock()

		r, err := Run(sc)
		s.mu.Lock()
		if err == nil {
			s.results[k] = r
		} else if s.err == nil {
			s.err = err
		}
		delete(s.inFlight, k)
		s.mu.Unlock()
		wg.Done()
		return r, err
	}
}

// DumpJSON writes every cached result as a JSON array, sorted by scenario
// key, for external analysis/plotting. The rendering is shared with the
// distributed sweep merge path (WriteCells), so a merged multi-replica
// sweep document is byte-identical to a single-process dump of the same
// scenarios.
func (s *Sweep) DumpJSON(w io.Writer) error {
	s.mu.Lock()
	var out []Cell
	for k, r := range s.results {
		out = append(out, NewCell(k, r)) //lint:allow maporder WriteCells sorts by scenario key
	}
	s.mu.Unlock()
	return WriteCells(w, out)
}
