package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"relief/internal/exp"
	"relief/internal/metrics"
	"relief/internal/sim"
	"relief/internal/svctrace"
	"relief/internal/trace"
)

// Config sizes the service. Zero values select defaults.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue; a full queue rejects new work
	// with 429 + Retry-After (default 64).
	QueueCap int
	// CacheCap is the LRU result-cache capacity in entries (default 128).
	CacheCap int
	// Timeout bounds each simulation's wall time (default 60s). A request
	// may shorten (never extend) it via timeout_ms.
	Timeout time.Duration
	// Runner overrides the simulation executor (nil = run the real
	// kernel). Benchmark harnesses substitute fixed-cost runners to
	// measure the serving and distribution layers in isolation.
	Runner func(ctx context.Context, req Request) (*Result, error)
	// PeerTransport overrides the HTTP transport used for peer probes and
	// forwards in cluster mode (nil = http.DefaultTransport). The chaos
	// harness (NewChaosTransport) injects faults through it.
	PeerTransport http.RoundTripper
	// BreakerThreshold is the number of consecutive peer failures that
	// opens a peer's circuit breaker (default 3).
	BreakerThreshold int
	// Logger receives the service's structured records (access logs,
	// breaker transitions). nil discards them — library users and tests
	// stay quiet by default.
	Logger *slog.Logger
	// TraceCap bounds the finished-trace store backing GET /trace/{id}
	// (default svctrace.DefaultStoreCap).
	TraceCap int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 128
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// Result is the service's answer to one simulation request.
type Result struct {
	// Digest is the request's canonical content address.
	Digest string `json:"digest"`
	// MakespanMS is the simulated makespan in milliseconds.
	MakespanMS float64 `json:"makespan_ms"`
	// Text is the human-readable summary, byte-identical to relief-sim's
	// stdout for the same scenario.
	Text string `json:"text"`
	// Metrics is the relief-metrics/1 JSON document (requests with
	// "metrics": true only) — the same schema the CLIs export.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Cell is the scenario's sweep-cell summary (exp.Cell): the same record
	// a single-process exp.Sweep dumps for this scenario, carried so sweep
	// coordinators can merge per-cell results from many replicas into a
	// document byte-identical to a single-node sweep.
	Cell *exp.Cell `json:"cell,omitempty"`
}

// response is the HTTP envelope around a Result. Source says where the
// answer came from: "run" (simulated here), "cache" (local result cache),
// or "peer" (a peer replica's cache, cluster mode). Forwarded requests
// relay the owner's envelope verbatim, so their source reflects the owner.
type response struct {
	Cached bool   `json:"cached"`
	Source string `json:"source,omitempty"`
	// TraceID names the request's distributed trace — GET /trace/{id} on
	// the replica that served it returns the span document. Forwarded
	// requests relay the owner's envelope, whose trace ID is the same
	// (propagated via X-Relief-Trace), so the ID is valid on both sides.
	TraceID string `json:"trace_id,omitempty"`
	*Result
}

type errorResponse struct {
	Error string `json:"error"`
}

// flight is one in-flight simulation, shared by every request with the
// same digest (singleflight). waiters is guarded by Server.mu; when the
// last waiter disconnects before completion the flight is cancelled, which
// interrupts the simulation kernel mid-run.
type flight struct {
	key     string
	request Request
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	res     *Result
	err     error
	waiters int

	// Wall-clock trace timing, written by submit (enqueueAt) and the
	// worker (startAt, runDur) before done closes; waiters read after done
	// and copy the admission/run spans into their own traces. rec captures
	// the kernel's simulated-time events when the creating request asked
	// for them ("trace": true).
	enqueueAt time.Time
	startAt   time.Time
	runDur    time.Duration
	rec       *trace.Recorder

	// ckpts is the sweep checkpoint pool the creating request ran under
	// (nil for interactive /run requests): periodic cells fork from the
	// pool's shared warmed snapshot instead of re-warming (ckpt.go).
	ckpts *ckptPool
}

// Server is the simulation service. Create with New, expose via Handler
// (or Serve), stop with Drain.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	svc    *serviceMetrics
	log    *slog.Logger
	traces *svctrace.Store

	// runner executes one simulation; tests stub it to observe scheduling
	// behavior without paying for real runs.
	runner func(ctx context.Context, req Request) (*Result, error)

	mu       sync.Mutex
	cache    *cache             //relief:guardedby mu
	disk     *diskCache         //relief:guardedby mu — nil = memory-only; published by EnableDiskCache
	flights  map[string]*flight //relief:guardedby mu
	cluster  *cluster           //relief:guardedby mu — nil = single-node; published by ConfigureCluster
	draining bool               //relief:guardedby mu

	// drainCh is closed when draining starts, unblocking sweep cells
	// waiting for queue space (blocking admission) so Drain cannot hang
	// behind an unadmitted backlog.
	drainCh chan struct{}

	jobs    chan *flight
	workers sync.WaitGroup

	http *http.Server
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		cache:   newCache(cfg.withDefaults().CacheCap),
		flights: make(map[string]*flight),
		drainCh: make(chan struct{}),
		runner:  runSimulation,
		traces:  svctrace.NewStore(cfg.TraceCap),
		log:     cfg.Logger,
	}
	if s.cfg.Runner != nil {
		s.runner = s.cfg.Runner
	}
	if s.log == nil {
		s.log = svctrace.Discard()
	}
	s.jobs = make(chan *flight, s.cfg.QueueCap)
	s.svc = newServiceMetrics(func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cache.len()
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /result/{digest}", s.handleResult)
	s.mux.HandleFunc("GET /owner/{digest}", s.handleOwner)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// EnableDiskCache attaches a durable write-through spill directory to the
// result cache: every completed result is persisted (atomic rename,
// checksummed), memory-LRU evictions delete their spill files, and a
// memory miss falls through to a verified disk load — so a crashed or
// upgraded replica restarted with the same directory warm-starts its
// share of the keyspace instead of re-simulating it. The directory is
// bounded to CacheCap entries. Returns the number of spill files restored
// from a previous process. Call before the server takes traffic.
func (s *Server) EnableDiskCache(dir string) (int, error) {
	d, restored, err := openDiskCache(dir, s.cfg.CacheCap)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.disk = d
	s.mu.Unlock()
	s.svc.registerDisk(d)
	return restored, nil
}

// storeResult caches one completed result and mirrors it write-through to
// the spill directory, deleting the files of any evicted entries.
func (s *Server) storeResult(key string, res *Result) {
	s.mu.Lock()
	evicted := s.cache.add(key, res)
	d := s.disk
	s.mu.Unlock()
	if d != nil {
		// Evictions first, so the store's own over-cap safety prune (which
		// works by recency, not LRU order) has nothing left to do.
		d.remove(evicted...)
		d.store(key, res)
	}
}

// cachedResult answers key from the memory LRU or, on a miss, from the
// spill directory (read-through: a verified disk load is promoted into
// the LRU). The returned source is srcCache or srcDisk. The lookup records
// cache/disk spans on tr (nil = untraced) and feeds the per-stage latency
// histograms.
func (s *Server) cachedResult(tr *svctrace.Trace, key string) (*Result, string, bool) {
	sp := tr.StartSpan(stageCache)
	sp.Set("digest", key)
	s.mu.Lock()
	res, ok := s.cache.get(key)
	d := s.disk
	s.mu.Unlock()
	if ok {
		sp.Event("source", "mem")
	}
	s.endSpan(stageCache, sp)
	if ok {
		return res, srcCache, true
	}
	if d == nil {
		return nil, "", false
	}
	dsp := tr.StartSpan(stageDisk)
	dsp.Set("digest", key)
	res, ok = d.load(key)
	if ok {
		dsp.Event("source", "disk")
	}
	s.endSpan(stageDisk, dsp)
	if !ok {
		return nil, "", false
	}
	s.mu.Lock()
	evicted := s.cache.add(key, res)
	s.mu.Unlock()
	d.remove(evicted...)
	return res, srcDisk, true
}

// endSpan closes a span and feeds its stage's latency histogram. Nil spans
// (untraced callers) produce no sample.
func (s *Server) endSpan(stage string, sp *svctrace.Span) time.Duration {
	d := sp.End()
	if sp != nil {
		s.svc.observeStage(stage, d)
	}
	return d
}

// Serve accepts connections on l until Drain is called.
func (s *Server) Serve(l net.Listener) error {
	s.http = &http.Server{Handler: s.mux}
	return s.http.Serve(l)
}

// Drain gracefully stops the service: new requests are refused with 503,
// in-flight requests (and the simulations they wait on) are given until
// ctx expires to finish, then remaining simulations are cancelled through
// their contexts. The worker pool has fully exited when Drain returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	close(s.drainCh) // releases sweep cells blocked on queue admission
	var err error
	if s.http != nil {
		// Waits for in-flight handlers, which wait on their flights.
		err = s.http.Shutdown(ctx)
	}
	// All handlers have returned (or were never served through s.http), so
	// nothing can submit to the queue anymore.
	close(s.jobs)
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, fl := range s.flights {
			fl.cancel()
		}
		s.mu.Unlock()
		<-done // cancellation interrupts the kernel within a few thousand events
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

func (s *Server) worker() {
	defer s.workers.Done()
	for fl := range s.jobs {
		s.svc.queueDepth.Add(-1)
		s.svc.running.Add(1)
		start := time.Now()
		// Stage timing is recorded once per execution here (not per
		// waiter): admission covers enqueue to pickup, run the kernel.
		fl.startAt = start
		s.svc.observeStage(stageAdmission, start.Sub(fl.enqueueAt))
		ctx := fl.ctx
		if fl.rec != nil {
			ctx = withRecorder(ctx, fl.rec)
		}
		if fl.ckpts != nil {
			ctx = withCkptPool(ctx, fl.ckpts)
		}
		res, err := s.runner(ctx, fl.request)
		fl.runDur = time.Since(start)
		s.svc.observeStage(stageRun, fl.runDur)
		if res != nil {
			res.Digest = fl.key
		}
		if err == nil {
			s.storeResult(fl.key, res)
		}
		s.mu.Lock()
		delete(s.flights, fl.key)
		s.mu.Unlock()
		if err != nil {
			s.svc.errors.Add(1)
		}
		fl.res, fl.err = res, err
		close(fl.done)
		fl.cancel()
		s.svc.running.Add(-1)
		s.svc.observeLatency(time.Since(start))
	}
}

// setRetryAfter stamps a backpressure response (429/503) with the live
// drain-time estimate (see serviceMetrics.retryAfterSeconds).
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.svc.retryAfterSeconds()))
}

// Answer sources reported in the response envelope.
const (
	srcRun     = "run"     // simulated on this replica
	srcCache   = "cache"   // this replica's in-memory result cache
	srcDisk    = "disk"    // this replica's spill directory (warm restart)
	srcPeer    = "peer"    // a peer replica's cache (probe hit)
	srcForward = "forward" // computed by the digest's ring owner
)

// Sentinel errors for the admission path.
var (
	errDraining = errors.New("serve: draining")
	errBusy     = errors.New("serve: admission queue full")
)

// handleRun admits, deduplicates, cache-serves, or (cluster mode) routes
// one simulation request to the digest's ring owner. Every request runs
// under a trace (joined from X-Relief-Trace or freshly minted) whose spans
// record each rung of the ladder.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	tr := s.beginTrace(w, r)
	defer s.finishTrace(tr, "/run")
	key := ""
	fail := func(status int, err error) {
		tr.SetResult(key, "", status)
		s.writeError(w, status, err)
	}
	serve := func(env response) {
		env.TraceID = tr.ID()
		tr.SetResult(key, env.Source, http.StatusOK)
		s.writeJSON(w, http.StatusOK, env)
	}

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Normalize(); err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	key = req.Digest()
	s.svc.requests.Add(1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.setRetryAfter(w)
		fail(http.StatusServiceUnavailable, errDraining)
		return
	}
	s.mu.Unlock()
	if res, src, ok := s.cachedResult(tr, key); ok {
		s.svc.hits.Add(1)
		serve(response{Cached: true, Source: src, Result: res})
		return
	}
	s.mu.Lock()
	cl := s.cluster
	s.mu.Unlock()

	// Cluster mode: a digest owned elsewhere is answered by its owner —
	// probe its cache first (a result computed anywhere in the fleet is
	// never re-simulated), then forward the full request. An unreachable
	// owner (or one behind an open circuit breaker) degrades to local
	// execution below.
	if cl != nil && r.Header.Get(forwardHeader) == "" {
		if owner := cl.ring.owner(key); owner != cl.self {
			res, relay, src := s.routeToOwner(tr, cl, owner, key, req)
			switch {
			case res != nil:
				serve(response{Cached: false, Source: src, Result: res})
				return
			case relay != nil:
				// The relayed envelope already carries the shared trace ID:
				// the owner served this request under the ID we forwarded.
				tr.SetResult(key, srcForward, http.StatusOK)
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set(servedByHeader, owner)
				w.WriteHeader(http.StatusOK)
				if _, err := w.Write(relay); err != nil {
					// Client gone mid-relay; nothing left to send.
					return
				}
				return
			}
		}
	}

	res, fl, err := s.submit(r.Context(), req, key, false)
	switch {
	case err != nil:
		s.setRetryAfter(w)
		fail(errStatus(err), err)
		return
	case res != nil: // cache hit raced in between the fast path and submit
		s.svc.hits.Add(1)
		serve(response{Cached: true, Source: srcCache, Result: res})
		return
	}

	select {
	case <-fl.done:
		attachFlightSpans(tr, fl)
		if fl.err != nil {
			fail(errStatus(fl.err), fl.err)
			return
		}
		serve(response{Cached: false, Source: srcRun, Result: fl.res})
	case <-r.Context().Done():
		// Client gone: release our claim; the last departing waiter
		// cancels the simulation so an abandoned run stops mid-flight.
		tr.SetResult(key, "", 499) // nginx's "client closed request"
		s.abandon(fl)
	}
}

// submit returns the cached result for key, or the (joined or newly
// enqueued) flight computing it. block selects the full-queue behavior:
// interactive requests are rejected immediately (errBusy → 429), sweep
// cells wait for queue space — the bounded queue throttles them instead of
// failing the sweep. The caller owns one waiter slot of a returned flight.
func (s *Server) submit(ctx context.Context, req Request, key string, block bool) (*Result, *flight, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, errDraining
	}
	if res, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		return res, nil, nil
	}
	if fl, ok := s.flights[key]; ok {
		fl.waiters++
		s.svc.joins.Add(1)
		s.mu.Unlock()
		return nil, fl, nil
	}
	timeout := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	fctx, cancel := context.WithTimeout(context.Background(), timeout)
	fl := &flight{
		key: key, request: req, ctx: fctx, cancel: cancel,
		done: make(chan struct{}), waiters: 1,
		enqueueAt: time.Now(),
		ckpts:     ckptPoolFrom(ctx),
	}
	if req.Trace {
		// Capture the kernel's simulated-time events for the combined
		// service+simulator timeline. Like TimeoutMS, the trace flag is a
		// delivery knob excluded from the digest: joiners share whatever
		// the flight's creator asked for.
		fl.rec = trace.NewRecorder()
		fl.rec.SetMaxEvents(maxKernelEvents)
	}
	if !block {
		select {
		case s.jobs <- fl:
			s.flights[key] = fl
			s.svc.queueDepth.Add(1)
			s.svc.misses.Add(1)
			s.mu.Unlock()
			return nil, fl, nil
		default:
			s.mu.Unlock()
			cancel()
			s.svc.rejected.Add(1)
			return nil, nil, errBusy
		}
	}
	// Blocking admission: register the flight first so identical cells
	// join it, then wait for queue space outside the lock.
	s.flights[key] = fl
	s.svc.queueDepth.Add(1)
	s.svc.misses.Add(1)
	s.mu.Unlock()
	select {
	case s.jobs <- fl:
		return nil, fl, nil
	case <-ctx.Done():
		s.unsubmit(fl)
		return nil, nil, ctx.Err()
	case <-s.drainCh:
		s.unsubmit(fl)
		return nil, nil, errDraining
	}
}

// unsubmit retracts a registered flight that never reached the queue,
// failing its joiners.
func (s *Server) unsubmit(fl *flight) {
	s.mu.Lock()
	delete(s.flights, fl.key)
	s.mu.Unlock()
	s.svc.queueDepth.Add(-1)
	fl.err = errDraining
	close(fl.done)
	fl.cancel()
}

// abandon releases one waiter slot; the last departing waiter cancels the
// simulation so an abandoned run stops mid-flight.
func (s *Server) abandon(fl *flight) {
	s.mu.Lock()
	fl.waiters--
	last := fl.waiters == 0
	s.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// executeCell answers one sweep cell through the same decision ladder as
// handleRun — local cache, peer probe, owner forward, local simulation
// (blocking admission) — and reports where the answer came from.
func (s *Server) executeCell(ctx context.Context, req Request, key string) (*Result, string, error) {
	tr := traceFrom(ctx) // the sweep coordinator's trace; cell spans carry digest attrs
	if res, src, ok := s.cachedResult(tr, key); ok {
		s.svc.hits.Add(1)
		return res, src, nil
	}
	s.mu.Lock()
	cl := s.cluster
	s.mu.Unlock()

	if cl != nil {
		if owner := cl.ring.owner(key); owner != cl.self {
			res, relay, src := s.routeToOwner(tr, cl, owner, key, req)
			switch {
			case res != nil:
				return res, src, nil
			case relay != nil:
				var env response
				if err := json.Unmarshal(relay, &env); err == nil && env.Result != nil {
					return env.Result, src, nil
				}
				// Unparseable relay: fall through to local execution.
			}
		}
	}

	res, fl, err := s.submit(ctx, req, key, true)
	switch {
	case err != nil:
		return nil, "", err
	case res != nil:
		s.svc.hits.Add(1)
		return res, srcCache, nil
	}
	select {
	case <-fl.done:
		attachFlightSpans(tr, fl)
		if fl.err != nil {
			return nil, "", fl.err
		}
		return fl.res, srcRun, nil
	case <-ctx.Done():
		s.abandon(fl)
		return nil, "", ctx.Err()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.svc.writePrometheus(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

// handleHealthz is the liveness probe: the process is up and the mux is
// answering. It stays 200 through drain — the process is still alive and
// finishing work; use /readyz to take a draining replica out of rotation.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: load balancers and ring peers stop
// routing to a replica once it reports 503 (draining). In cluster mode the
// body carries one detail line per peer with its circuit-breaker state;
// the first line stays exactly "ok"/"draining" so existing probes that
// match the whole first line keep working.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	cl := s.cluster
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
	if cl != nil {
		for _, p := range cl.peers {
			if h := cl.health[p]; h != nil {
				fmt.Fprintf(w, "peer %s breaker=%s\n", p, breakerStateName(h.stateG.Load()))
			}
		}
	}
}

// handleResult is the peer cache probe: a pure lookup that answers with the
// cached Result for a digest or 404, never triggering a simulation. It
// keeps serving through drain — handing out finished results costs nothing
// and spares the fleet a re-simulation.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	tr := s.beginTrace(w, r)
	defer s.finishTrace(tr, "/result")
	key := r.PathValue("digest")
	res, src, ok := s.cachedResult(tr, key)
	if !ok {
		tr.SetResult(key, "", http.StatusNotFound)
		s.writeError(w, http.StatusNotFound, errors.New("serve: result not cached"))
		return
	}
	tr.SetResult(key, src, http.StatusOK)
	s.writeJSON(w, http.StatusOK, res)
}

// ownerResponse is the GET /owner/{digest} document.
type ownerResponse struct {
	Digest string `json:"digest"`
	// Owner is the ring owner's base URL ("" on a single-node server,
	// which owns everything itself).
	Owner string `json:"owner"`
	// Self reports whether this replica is the owner.
	Self bool `json:"self"`
}

// handleOwner reports which fleet member the ring places a digest on, for
// clients, debugging, and the CI cluster smoke.
func (s *Server) handleOwner(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("digest")
	s.mu.Lock()
	cl := s.cluster
	s.mu.Unlock()
	out := ownerResponse{Digest: key, Self: true}
	if cl != nil {
		out.Owner = cl.ring.owner(key)
		out.Self = out.Owner == cl.self
	}
	s.writeJSON(w, http.StatusOK, out)
}

// errStatus maps a simulation or admission error onto an HTTP status:
// timeouts are 504, abandonment/drain cancellations 503, a full admission
// queue 429, anything else a plain 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; the client sees a truncated
		// body and retries.
		return
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// runSimulation executes one request against the experiment harness. The
// context is threaded into the simulation kernel: cancellation interrupts
// the event loop and the run returns an error, never partial statistics.
func runSimulation(ctx context.Context, req Request) (*Result, error) {
	sc, err := req.Scenario()
	if err != nil {
		return nil, err
	}
	var reg *metrics.Registry
	if req.Metrics {
		reg = metrics.NewRegistry()
		sc.Metrics = reg
	}
	// A traced request records the kernel's simulated-time events through
	// the standard recorder; the events join the wall-clock service spans
	// in the trace document. Recording never perturbs the simulation
	// (nil-safe recorder, no extra kernel events), so digests stay
	// bit-identical.
	sc.Trace = recorderFrom(ctx)
	res, err := runScenario(ctx, sc)
	if err != nil {
		return nil, err
	}
	var text bytes.Buffer
	if err := exp.WriteSummary(&text, sc, res.Stats); err != nil {
		return nil, err
	}
	cell := exp.NewCell(exp.ScenarioKey(sc), res)
	out := &Result{
		MakespanMS: res.Stats.Makespan.Milliseconds(),
		Text:       text.String(),
		Cell:       &cell,
	}
	if reg != nil {
		var mb bytes.Buffer
		if err := reg.WriteJSON(&mb); err != nil {
			return nil, err
		}
		out.Metrics = json.RawMessage(bytes.TrimSpace(mb.Bytes()))
	}
	return out, nil
}

// runScenario executes one scenario, forking from the sweep's shared warmed
// checkpoint when a pool is attached (sweep cells only) and the scenario is
// forkable: periodic, unobserved (a forked run's metrics/trace would only
// cover the post-restore tail, breaking the content-address contract that
// identical digests yield identical documents), and with a horizon beyond
// the capture instant. A restored run is byte-identical to a cold one, so
// which path served a cell is unobservable in the result. Any warm or
// restore failure degrades to the cold path.
func runScenario(ctx context.Context, sc exp.Scenario) (*exp.Result, error) {
	pool := ckptPoolFrom(ctx)
	if pool != nil && sc.Period > 0 && sc.Metrics == nil && sc.Trace == nil {
		env, err := pool.envelope(ctx, sc)
		if err == nil && sim.Time(env.CapturedPs) < sc.EffectiveHorizon() {
			res, err := exp.RunFromCheckpoint(ctx, sc, env)
			if err == nil {
				return res, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return exp.RunContext(ctx, sc)
}
