package exp

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"relief/internal/workload"
)

func TestTable2Shape(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != int(workload.NumApps) {
		t.Fatalf("Table II has %d rows, want %d", len(tbl.Rows), workload.NumApps)
	}
	// Ideal memory time must be strictly less than no-forwarding memory
	// time for every application.
	for _, row := range tbl.Rows {
		noFwd := parseF(t, row[2])
		ideal := parseF(t, row[3])
		if ideal >= noFwd {
			t.Errorf("%s: ideal %v >= no-fwd %v", row[0], ideal, noFwd)
		}
	}
}

// TestTable2MatchesPaperShape: RNNs are memory-dominated (paper: ~75% of
// time on data movement), Deblur is compute-dominated (~3%).
func TestTable2MatchesPaperShape(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][3]float64{}
	for _, row := range tbl.Rows {
		vals[row[0]] = [3]float64{parseF(t, row[1]), parseF(t, row[2]), parseF(t, row[3])}
	}
	gru := vals["gru"]
	if frac := gru[1] / (gru[0] + gru[1]); frac < 0.6 {
		t.Errorf("GRU memory fraction %.2f, paper says ~0.75", frac)
	}
	deblur := vals["deblur"]
	if frac := deblur[1] / (deblur[0] + deblur[1]); frac > 0.1 {
		t.Errorf("Deblur memory fraction %.2f, paper says ~0.03", frac)
	}
	// GRU's ideal forwarding cuts memory time substantially (paper:
	// 3343 -> 1608 µs; our ideal additionally credits every eligible
	// colocation, so it sits lower — see EXPERIMENTS.md).
	if ratio := gru[2] / gru[1]; ratio < 0.1 || ratio > 0.7 {
		t.Errorf("GRU ideal/no-fwd = %.2f, expected a large reduction", ratio)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestRELIEFBeatsBaselinesOnForwards is the paper's headline claim
// (Observation 1): under high contention RELIEF achieves more
// forwards+colocations than every baseline on average.
func TestRELIEFBeatsBaselinesOnForwards(t *testing.T) {
	s := NewSweep()
	total := func(policy string) float64 {
		var sum float64
		n := 0
		for _, mix := range workload.Mixes(workload.High) {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			fwd, col := res.Stats.ForwardsPerEdge()
			sum += fwd + col
			n++
		}
		return sum / float64(n)
	}
	relief := total("RELIEF")
	for _, p := range []string{"FCFS", "GEDF-D", "GEDF-N", "LAX", "HetSched"} {
		if base := total(p); relief <= base {
			t.Errorf("RELIEF fwd+col %.1f%% <= %s %.1f%%", relief, p, base)
		}
	}
}

// TestRELIEFReducesDRAMTraffic (Observation 2): RELIEF moves less data
// through main memory than HetSched and LAX on average.
func TestRELIEFReducesDRAMTraffic(t *testing.T) {
	s := NewSweep()
	avgDram := func(policy string) float64 {
		var sum float64
		for _, mix := range workload.Mixes(workload.High) {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			d, _ := res.Stats.DataMovement()
			sum += d
		}
		return sum / 10
	}
	relief := avgDram("RELIEF")
	for _, p := range []string{"LAX", "HetSched"} {
		if base := avgDram(p); relief >= base {
			t.Errorf("RELIEF DRAM %.1f%% >= %s %.1f%%", relief, p, base)
		}
	}
}

// TestLAXStarvesDeblur (paper §V-E): under continuous contention with
// other convolution-hungry vision apps, LAX starves Deblur while RELIEF
// keeps it progressing.
func TestLAXStarvesDeblur(t *testing.T) {
	s := NewSweep()
	mix, err := workload.ParseMix("CDL")
	if err != nil {
		t.Fatal(err)
	}
	lax, err := s.Get(Scenario{Mix: mix, Contention: workload.Continuous, Policy: "LAX"})
	if err != nil {
		t.Fatal(err)
	}
	relief, err := s.Get(Scenario{Mix: mix, Contention: workload.Continuous, Policy: "RELIEF"})
	if err != nil {
		t.Fatal(err)
	}
	if n := lax.Stats.Apps["deblur"].Iterations; n != 0 {
		t.Errorf("LAX finished %d Deblur iterations; paper reports starvation", n)
	}
	if n := relief.Stats.Apps["deblur"].Iterations; n == 0 {
		t.Errorf("RELIEF starved Deblur; paper reports progress")
	}
}

// TestFigureGeneratorsRender: every generator produces a well-formed table
// whose text rendering is non-empty. Uses low contention plus the cheap
// single-table figures to keep the test fast; the full sweep runs in
// relief-bench and the benchmarks.
func TestFigureGeneratorsRender(t *testing.T) {
	s := NewSweep()
	check := func(name string, tbl *Table, err error, wantRows int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wantRows > 0 && len(tbl.Rows) != wantRows {
			t.Errorf("%s: %d rows, want %d", name, len(tbl.Rows), wantRows)
		}
		for i, r := range tbl.Rows {
			if len(r) != len(tbl.Cols) {
				t.Errorf("%s row %d: %d cells, %d columns", name, i, len(r), len(tbl.Cols))
			}
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		if !strings.Contains(buf.String(), tbl.Title) {
			t.Errorf("%s: rendering lacks title", name)
		}
	}
	f4, err := Fig4(s, workload.Low)
	check("fig4", f4, err, 6) // 5 mixes + Gmean
	f5, err := Fig5(s, workload.Low)
	check("fig5", f5, err, 6)
	f7, err := Fig7(s, workload.Low)
	check("fig7", f7, err, 6)
	f8, err := Fig8(s, workload.Low)
	check("fig8", f8, err, 6)
	sl, dg, err := Fig9(s, workload.Low)
	check("fig9a", sl, err, 5)
	check("fig9b", dg, err, 5)
}

func TestGmeanAndAmean(t *testing.T) {
	if g := gmean([]float64{1, 100}, 0.01); g < 9.9 || g > 10.1 {
		t.Errorf("gmean = %v, want 10", g)
	}
	if g := gmean([]float64{0, 100}, 1); g < 9.999 || g > 10.001 {
		t.Errorf("gmean with clamp = %v, want ~10", g)
	}
	if gmean(nil, 1) != 0 {
		t.Error("gmean of nothing must be 0")
	}
	if amean([]float64{1, 2, 3}) != 2 {
		t.Error("amean wrong")
	}
	if amean(nil) != 0 {
		t.Error("amean of nothing must be 0")
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, n := range append(append([]string{}, FairnessPolicyNames...),
		"RELIEF-NoFeas", "RELIEF-Unbounded", "RELIEF-HetSched") {
		if _, err := NewPolicy(n); err != nil {
			t.Errorf("NewPolicy(%q): %v", n, err)
		}
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("NewPolicy must reject unknown names")
	}
}

// TestSweepMemoizes: repeated Get calls return the identical result object.
func TestSweepMemoizes(t *testing.T) {
	s := NewSweep()
	sc := Scenario{Mix: []workload.App{workload.Canny}, Contention: workload.Low, Policy: "FCFS"}
	a, err := s.Get(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("sweep did not memoize")
	}
}

func TestSweepDumpJSON(t *testing.T) {
	s := NewSweep()
	if _, err := s.Get(Scenario{Mix: []workload.App{workload.Canny}, Contention: workload.Low, Policy: "RELIEF"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("dumped %d results, want 1", len(out))
	}
	apps := out[0]["apps"].(map[string]any)
	if _, ok := apps["canny"]; !ok {
		t.Fatal("per-app summary missing")
	}
}

func TestSweepWarm(t *testing.T) {
	s := NewSweep()
	scenarios := []Scenario{
		{Mix: []workload.App{workload.Canny}, Contention: workload.Low, Policy: "FCFS"},
		{Mix: []workload.App{workload.GRU}, Contention: workload.Low, Policy: "RELIEF"},
		{Mix: []workload.App{workload.Canny}, Contention: workload.Low, Policy: "FCFS"}, // dup
	}
	s.Warm(scenarios, 4)
	var buf bytes.Buffer
	if err := s.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("warmed cache has %d results, want 2 (dedup)", len(out))
	}
}
