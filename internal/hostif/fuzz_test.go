package hostif

import (
	"testing"

	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/sim"
)

// FuzzAccStateRoundTrip checks Table IV metadata blocks survive
// encode→decode for arbitrary field values, and that the encoding stays
// at the paper's exact 32 bytes.
func FuzzAccStateRoundTrip(f *testing.F) {
	f.Add(uint32(0x40000000), uint32(0x40001000), uint32(0x50000000), uint32(0x10000),
		uint32(0x1000), uint32(0), uint32(0x2000), uint8(2), uint8(1), uint8(0), uint8(3))
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0),
		uint32(0), uint32(0), uint32(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0),
		^uint32(0), ^uint32(0), ^uint32(0), ^uint8(0), ^uint8(0), ^uint8(0), ^uint8(0))
	f.Fuzz(func(t *testing.T, acc, dma, base, stride, o0, o1, o2 uint32, status, r0, r1, r2 uint8) {
		in := AccState{
			AccMMR: acc, DMAMMR: dma, SPMBase: base, SPMStride: stride,
			Output: [NumSPMPartitions]Pointer{o0, o1, o2},
			Status: status, OngoingReads: [NumSPMPartitions]uint8{r0, r1, r2},
		}
		enc := in.Encode()
		if len(enc) != AccStateBytes {
			t.Fatalf("encoded %d bytes, want %d", len(enc), AccStateBytes)
		}
		out, err := DecodeAccState(enc)
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
	})
}

// FuzzNodeRoundTrip builds a small two-level DAG from fuzzed sizes and fan
// counts, encodes it into the Table III shared-memory image, and checks
// the decode reproduces the structure with the paper's size arithmetic
// intact (72-byte base, +12 per extra parent, +4 per extra child).
func FuzzNodeRoundTrip(f *testing.F) {
	f.Add(uint32(65536), uint32(65536), uint8(1), uint8(1), uint8(3), uint16(200))
	f.Add(uint32(1), uint32(1<<20), uint8(5), uint8(7), uint8(0), uint16(0))
	f.Add(uint32(0), uint32(0), uint8(64), uint8(64), uint8(255), uint16(65535))
	f.Fuzz(func(t *testing.T, outBytes, extraBytes uint32, nParents, nChildren, filter uint8, deadlineUS uint16) {
		// The decoder (like the hardware manager) rejects fan > 64; keep
		// the generator inside the architectural bound.
		nP := int(nParents)%8 + 1
		nC := int(nChildren) % 8
		d := graph.New("fuzz", "F", sim.Millisecond)
		parents := make([]*graph.Node, nP)
		for i := range parents {
			parents[i] = d.AddNode("p", accel.Kind(i%int(accel.NumKinds)), accel.OpDefault, int64(outBytes))
		}
		mid := d.AddNode("mid", accel.ElemMatrix, accel.OpSigmoid, int64(outBytes), parents...)
		mid.ExtraInputBytes = int64(extraBytes)
		mid.FilterSize = int(filter)
		mid.RelDeadline = sim.Time(deadlineUS) * sim.Microsecond
		for i := 0; i < nC; i++ {
			d.AddNode("c", accel.Convolution, accel.OpDefault, int64(outBytes), mid)
		}

		img, addrs, err := EncodeDAG(d)
		if err != nil {
			t.Fatal(err)
		}
		nodes, err := DecodeDAG(img)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != len(d.Nodes) {
			t.Fatalf("decoded %d nodes, want %d", len(nodes), len(d.Nodes))
		}
		// The image length must equal the sum of the paper's node sizes.
		total := 0
		for _, n := range d.Nodes {
			total += NodeSize(len(n.Parents), len(n.Children))
		}
		if len(img) != total {
			t.Fatalf("image is %d bytes, size formula says %d", len(img), total)
		}
		midIdx := nP // parents were added first
		dec := nodes[midIdx]
		if dec.Addr != addrs[midIdx] {
			t.Fatalf("mid addr %#x, want %#x", dec.Addr, addrs[midIdx])
		}
		if dec.OutputBytes != outBytes || dec.ExtraBytes != extraBytes {
			t.Fatalf("sizes: got %d/%d, want %d/%d", dec.OutputBytes, dec.ExtraBytes, outBytes, extraBytes)
		}
		if dec.FilterSize != filter {
			t.Fatalf("filter: got %d, want %d", dec.FilterSize, filter)
		}
		if dec.DeadlineUS != uint32(deadlineUS) {
			t.Fatalf("deadline: got %d, want %d", dec.DeadlineUS, deadlineUS)
		}
		if len(dec.Parents) != nP || len(dec.Children) != nC {
			t.Fatalf("fan: got %d/%d, want %d/%d", len(dec.Parents), len(dec.Children), nP, nC)
		}
		for i, pa := range dec.Parents {
			if pa != addrs[i] {
				t.Fatalf("parent %d points at %#x, want %#x", i, pa, addrs[i])
			}
			if dec.EdgeBytes[i] != outBytes {
				t.Fatalf("edge %d carries %d bytes, want %d", i, dec.EdgeBytes[i], outBytes)
			}
		}
		for i, ch := range dec.Children {
			if ch != addrs[midIdx+1+i] {
				t.Fatalf("child %d points at %#x, want %#x", i, ch, addrs[midIdx+1+i])
			}
		}
	})
}
