package exp

import (
	"math"
	"testing"

	"relief/internal/workload"
	"relief/internal/xbar"
)

// TestPaperObservations pins the paper's headline observations (§V) as
// regression guards: each sub-test checks one claim's *shape* against the
// simulation, so future changes to the substrate cannot silently break the
// reproduction. Expensive sweeps are shared through one memoizing Sweep.
func TestPaperObservations(t *testing.T) {
	s := NewSweep()
	high := func(policy, mixName string) *Result {
		t.Helper()
		mix, err := workload.ParseMix(mixName)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	highAll := func(policy string, metric func(*Result) float64) float64 {
		t.Helper()
		sum := 0.0
		for _, mix := range workload.Mixes(workload.High) {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			sum += metric(res)
		}
		return sum / 10
	}

	t.Run("Obs1_RELIEF_maximizes_forwarding", func(t *testing.T) {
		total := func(r *Result) float64 {
			f, c := r.Stats.ForwardsPerEdge()
			return f + c
		}
		relief := highAll("RELIEF", total)
		for _, p := range []string{"FCFS", "GEDF-D", "GEDF-N", "LAX", "HetSched"} {
			if base := highAll(p, total); relief <= base {
				t.Errorf("RELIEF %.1f%% <= %s %.1f%%", relief, p, base)
			}
		}
		if relief < 55 {
			t.Errorf("RELIEF fwd+col = %.1f%%, paper reports >65%% of possible forwards", relief)
		}
	})

	t.Run("Obs2_RELIEF_reduces_DRAM_traffic", func(t *testing.T) {
		dram := func(r *Result) float64 { d, _ := r.Stats.DataMovement(); return d }
		relief := highAll("RELIEF", dram)
		het := highAll("HetSched", dram)
		if relief >= het {
			t.Errorf("RELIEF DRAM %.1f%% >= HetSched %.1f%%", relief, het)
		}
		if (het-relief)/het < 0.10 {
			t.Errorf("DRAM reduction vs HetSched only %.1f%%, paper: 16%% avg", 100*(het-relief)/het)
		}
	})

	t.Run("Obs3_RELIEF_reduces_memory_energy", func(t *testing.T) {
		energy := func(r *Result) float64 { d, sp := r.Stats.MemoryEnergy(); return d + sp }
		if relief, het := highAll("RELIEF", energy), highAll("HetSched", energy); relief >= het {
			t.Errorf("RELIEF memory energy %.3e >= HetSched %.3e", relief, het)
		}
	})

	t.Run("Obs5_RELIEF_meets_most_node_deadlines", func(t *testing.T) {
		dl := func(r *Result) float64 { return r.Stats.NodeDeadlinePct() }
		relief := highAll("RELIEF", dl)
		for _, p := range []string{"FCFS", "GEDF-N", "LAX", "HetSched"} {
			if base := highAll(p, dl); relief < base {
				t.Errorf("RELIEF node deadlines %.1f%% < %s %.1f%%", relief, p, base)
			}
		}
	})

	t.Run("CDH_anomaly", func(t *testing.T) {
		// Paper §V-D: in CDH, GEDF-N and RELIEF prioritise Deblur and lose
		// node deadlines relative to FCFS/GEDF-D.
		if a, b := high("RELIEF", "CDH").Stats.NodeDeadlinePct(),
			high("GEDF-D", "CDH").Stats.NodeDeadlinePct(); a >= b {
			t.Errorf("CDH anomaly missing: RELIEF %.1f%% >= GEDF-D %.1f%%", a, b)
		}
	})

	t.Run("Obs6_fairness_under_continuous_contention", func(t *testing.T) {
		// RELIEF's slowdown variance is far below HetSched's in the RNN
		// mixes the paper highlights (CGL, DGL, GHL).
		for _, mixName := range []string{"CGL", "DGL", "GHL"} {
			mix, _ := workload.ParseMix(mixName)
			rel, err := s.Get(Scenario{Mix: mix, Contention: workload.Continuous, Policy: "RELIEF"})
			if err != nil {
				t.Fatal(err)
			}
			het, err := s.Get(Scenario{Mix: mix, Contention: workload.Continuous, Policy: "HetSched"})
			if err != nil {
				t.Fatal(err)
			}
			_, _, _, relVar := rel.Stats.SlowdownSpread()
			_, _, _, hetVar := het.Stats.SlowdownSpread()
			if relVar >= hetVar {
				t.Errorf("%s: RELIEF slowdown variance %.4f >= HetSched %.4f", mixName, relVar, hetVar)
			}
			// No application starves under RELIEF.
			for name, a := range rel.Stats.Apps {
				if math.IsInf(a.Slowdown(), 1) {
					t.Errorf("%s: RELIEF starved %s", mixName, name)
				}
			}
		}
	})

	t.Run("Obs8_predictors_do_not_matter", func(t *testing.T) {
		mix, _ := workload.ParseMix("CGL")
		base, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"})
		if err != nil {
			t.Fatal(err)
		}
		for _, bw := range []string{"last", "average", "ewma"} {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", BWPredictor: bw})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Forwards != base.Stats.Forwards ||
				res.Stats.NodesMetDeadline != base.Stats.NodesMetDeadline {
				t.Errorf("predictor %s changed results: fwd %d vs %d, dl %d vs %d",
					bw, res.Stats.Forwards, base.Stats.Forwards,
					res.Stats.NodesMetDeadline, base.Stats.NodesMetDeadline)
			}
		}
	})

	t.Run("Obs10_crossbar_does_not_help", func(t *testing.T) {
		// These workloads are not interconnect-bound: the crossbar changes
		// RELIEF's makespan by <2% on every high-contention mix, and
		// RELIEF's interconnect occupancy is below LAX's on average.
		var occRelief, occLAX float64
		for _, mix := range workload.Mixes(workload.High) {
			bus, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"})
			if err != nil {
				t.Fatal(err)
			}
			xb, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", Topology: xbar.Crossbar})
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(xb.Stats.Makespan) / float64(bus.Stats.Makespan)
			if ratio < 0.98 || ratio > 1.02 {
				t.Errorf("%s: crossbar changed makespan by %.1f%%", workload.MixName(mix), 100*(ratio-1))
			}
			lax, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "LAX"})
			if err != nil {
				t.Fatal(err)
			}
			occRelief += bus.Stats.InterconnectOccupancy
			occLAX += lax.Stats.InterconnectOccupancy
		}
		if occRelief >= occLAX {
			t.Errorf("RELIEF interconnect occupancy %.3f >= LAX %.3f", occRelief/10, occLAX/10)
		}
	})
}
