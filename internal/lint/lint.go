// Package lint implements relief-lint: project-specific static analyzers
// that enforce the simulator's determinism, hot-path, and API invariants.
//
// The ten analyzers (see docs/LINTING.md for the full contract):
//
//   - nodeterm:  no wall-clock time or unseeded global randomness in
//     simulation packages — runs must be bit-for-bit reproducible.
//   - maporder:  no order-sensitive work inside `range` over a map —
//     Go's map iteration order is randomized and silently breaks
//     golden digests.
//   - allocfree: facts-only; proves functions allocation-free (directly
//     and through their static callees) and exports an AllocFree fact
//     per proven function for hotalloc to consume across packages.
//   - hotalloc:  functions annotated //relief:hotpath must not allocate
//     (composite literals, make/new/append, closures, interface boxing)
//     and may only call callees proven alloc-free by allocfree facts.
//   - nopanic:   the public facade and workload builders report errors,
//     never panic (Must* helpers excepted by convention).
//   - weakevent: observability code schedules only weak events
//     (sim.Kernel.ScheduleWeak), so metricised runs stay bit-identical
//     to bare ones.
//   - peerctx:   outbound HTTP in the serving packages carries a
//     per-attempt context deadline — no http.Get, no http.DefaultClient,
//     no context-free requests; slow peers must trip breakers, not wedge
//     request goroutines.
//   - svcimport: only the serving layer (internal/serve, cmd/*) may
//     import internal/svctrace — wall-clock service tracing never leaks
//     into simulation packages.
//   - lockcheck: struct fields annotated //relief:guardedby <mu> may only
//     be accessed with the named sibling mutex held (facts carry the
//     annotation across packages).
//   - twoclock:  no value-level mixing of simulated time (sim.Time and
//     types derived from it, tracked by facts) with wall-clock
//     time.Time/time.Duration — conversions and mixed arithmetic are
//     flagged wherever both clocks are in scope.
//
// A finding can be suppressed with a directive comment on the same line
// or the line directly above (no intervening blank line):
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a bare //lint:allow <analyzer> does not
// suppress anything.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"relief/internal/lint/analysis"
	"relief/internal/lint/load"
)

// modulePath is the import path of the facade package this suite guards.
// relief-lint is project-specific by design; the scope tables below are
// keyed off this constant.
const modulePath = "relief"

// All returns the full analyzer suite in stable order (fact producers
// before their consumers, matching the Requires edges).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoDeterm, MapOrder, AllocFree, HotAlloc, NoPanic,
		WeakEvent, PeerCtx, SvcImport, LockCheck, TwoClock,
	}
}

// Expand returns analyzers plus the transitive closure of their Requires
// edges, ordered so every analyzer follows everything it requires.
func Expand(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	seen := make(map[*analysis.Analyzer]bool)
	var add func(a *analysis.Analyzer)
	add = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, r := range a.Requires {
			add(r)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		add(a)
	}
	return out
}

// Finding is one reported, non-suppressed diagnostic.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// RunPackage applies analyzers (expanded with their Requires closure) to
// one type-checked package and returns the findings that survive
// //lint:allow directive filtering, sorted by position. facts carries the
// dependency packages' fact streams in and this package's exports out; a
// nil facts runs the pass fact-less (facts-only analyzers then report
// nothing).
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer, facts *analysis.FactSet) ([]Finding, error) {
	allowed := collectAllows(fset, files)
	var out []Finding
	for _, a := range Expand(analyzers) {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			// The invariants guard shipped simulator code; tests drive the
			// kernel and the clock directly by design (go vet feeds test
			// files through the vettool, unlike the standalone loader).
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			if allowed[allowKey{pos.Filename, pos.Line, a.Name}] ||
				allowed[allowKey{pos.Filename, pos.Line - 1, a.Name}] {
				continue
			}
			out = append(out, Finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// RunPackages drives the whole-module facts pipeline: packages arrive in
// dependency order (load.Packages), each one is analyzed with exactly its
// direct imports' fact streams decoded into a fresh store, and its own
// exports are gob-encoded for its dependents — the same serialization the
// unitchecker path uses, so facts that survive here survive `go vet
// -vettool` too. Findings are reported for Target packages only;
// dependencies run just the fact-producing analyzers.
func RunPackages(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	expanded := Expand(analyzers)
	analysis.RegisterFactTypes(expanded)
	var factual []*analysis.Analyzer
	for _, a := range expanded {
		if len(a.FactTypes) > 0 {
			factual = append(factual, a)
		}
	}
	blobs := make(map[string][]byte, len(pkgs))
	var out []Finding
	for _, pkg := range pkgs {
		facts := analysis.NewFactSet()
		for _, imp := range pkg.Imports {
			if err := facts.Decode(blobs[imp]); err != nil {
				return nil, err
			}
		}
		run := factual
		if pkg.Target {
			run = expanded
		}
		findings, err := RunPackage(fset, pkg.Files, pkg.Types, pkg.TypesInfo, run, facts)
		if err != nil {
			return nil, err
		}
		if pkg.Target {
			out = append(out, findings...)
		}
		blob, err := facts.Encode()
		if err != nil {
			return nil, err
		}
		blobs[pkg.ImportPath] = blob
	}
	return out, nil
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans comments for //lint:allow directives. A directive
// suppresses findings of the named analyzers (one, or several separated
// by commas) on its own line and on the line immediately below (covering
// both trailing and leading placement; an intervening blank line breaks
// the association). The reason text after the analyzer list is required.
func collectAllows(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allows := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return allows
}

// allowsHotAlloc reports whether an allocation at pos is opted out via a
// //lint:allow hotalloc directive. The allocfree fact computation shares
// the suppression rule with the diagnostic filter: an allowed allocation
// is treated as amortized-free, so the containing function can still be
// proven alloc-free for its callers.
func allowsHotAlloc(allows map[allowKey]bool, pos token.Position) bool {
	// The analyzer name is spelled out: referring to HotAlloc here would
	// create an initialization cycle through its Requires edge.
	return allows[allowKey{pos.Filename, pos.Line, "hotalloc"}] ||
		allows[allowKey{pos.Filename, pos.Line - 1, "hotalloc"}]
}

// pkgIn reports whether path is one of the listed packages, where each
// entry is matched as the module-relative package path.
func pkgIn(path string, rel ...string) bool {
	for _, r := range rel {
		if path == modulePath+"/"+r || path == r {
			return true
		}
	}
	return false
}

// funcObj resolves the called function/method object of a call, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isKernelMethod reports whether call invokes a method with one of the
// given names on sim.Kernel (the event kernel type of internal/sim).
func isKernelMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/sim") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Kernel" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
