package predict

import (
	"math"
	"testing"
	"testing/quick"

	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/sim"
)

const gb = 1e9

func TestMaxPredictor(t *testing.T) {
	p := &Max{Peak: 6.4 * gb}
	p.Observe(1 * gb)
	if p.Predict() != 6.4*gb {
		t.Fatal("Max must always predict the peak")
	}
}

func TestLastPredictor(t *testing.T) {
	p := &Last{Peak: 6.4 * gb}
	if p.Predict() != 6.4*gb {
		t.Fatal("Last must predict peak before any observation")
	}
	p.Observe(2 * gb)
	p.Observe(3 * gb)
	if p.Predict() != 3*gb {
		t.Fatal("Last must predict the most recent sample")
	}
}

func TestAveragePredictor(t *testing.T) {
	p := &Average{Peak: 6.4 * gb, N: 3}
	if p.Predict() != 6.4*gb {
		t.Fatal("Average must predict peak when empty")
	}
	p.Observe(1 * gb)
	p.Observe(3 * gb)
	if got := p.Predict(); got != 2*gb {
		t.Fatalf("partial average = %v, want 2GB/s", got)
	}
	p.Observe(5 * gb)
	p.Observe(7 * gb) // evicts the 1 GB/s sample
	if got := p.Predict(); got != 5*gb {
		t.Fatalf("rolling average = %v, want 5GB/s", got)
	}
}

func TestAverageDefaultWindow(t *testing.T) {
	p := &Average{Peak: gb}
	for i := 0; i < 40; i++ {
		p.Observe(2 * gb)
	}
	if p.Predict() != 2*gb {
		t.Fatal("default window average wrong")
	}
	if len(p.ring) != 15 {
		t.Fatalf("default window = %d, want 15 (paper's n)", len(p.ring))
	}
}

func TestEWMAPredictor(t *testing.T) {
	p := &EWMA{Peak: 6.4 * gb, Alpha: 0.25}
	if p.Predict() != 6.4*gb {
		t.Fatal("EWMA must predict peak before any observation")
	}
	p.Observe(4 * gb) // first sample initialises
	if p.Predict() != 4*gb {
		t.Fatal("EWMA first observation must initialise the estimate")
	}
	p.Observe(8 * gb)
	want := 0.25*8*gb + 0.75*4*gb
	if math.Abs(p.Predict()-want) > 1 {
		t.Fatalf("EWMA = %v, want %v", p.Predict(), want)
	}
}

func TestNewBW(t *testing.T) {
	for name, typ := range map[string]string{
		"max": "Max", "last": "Last", "average": "Average", "ewma": "EWMA", "": "Max",
	} {
		p, err := NewBW(name, gb)
		if err != nil {
			t.Fatalf("NewBW(%q): %v", name, err)
		}
		if p.Name() != typ {
			t.Errorf("NewBW(%q).Name() = %q, want %q", name, p.Name(), typ)
		}
	}
	if _, err := NewBW("bogus", gb); err == nil {
		t.Fatal("NewBW must reject unknown names")
	}
}

// buildFanout creates p -> {c1 (same kind), c2 (other kind)} with assigned
// deadlines.
func buildFanout() (d *graph.DAG, p, c1, c2 *graph.Node) {
	d = graph.New("t", "T", 10*sim.Millisecond)
	p = d.AddNode("p", accel.ElemMatrix, accel.OpAdd, 1000)
	c1 = d.AddNode("c1", accel.ElemMatrix, accel.OpAdd, 1000, p)
	c2 = d.AddNode("c2", accel.Convolution, accel.OpDefault, 1000, p)
	_ = d.Finalize()
	_ = graph.AssignDeadlines(d, graph.DeadlineCPM, func(n *graph.Node) sim.Time { return n.Compute })
	return
}

func newRuntime(dm DMMode) *Runtime {
	return &Runtime{
		BW:           &Max{Peak: 6.4 * gb},
		DM:           dm,
		BusBandwidth: 14.9 * gb,
		InstancesOf:  func(int) int { return 1 },
	}
}

func TestPredictBytesMax(t *testing.T) {
	_, _, c1, _ := buildFanout()
	c1.ExtraInputBytes = 500
	r := newRuntime(DMMax)
	dram, bus := r.PredictBytes(c1)
	if dram != 1000+500+1000 || bus != 0 {
		t.Fatalf("DMMax bytes = (%d, %d), want (2500, 0)", dram, bus)
	}
}

func TestPredictColocation(t *testing.T) {
	_, p, c1, c2 := buildFanout()
	r := newRuntime(DMPredict)
	if !r.predictColocate(p, c1) {
		t.Fatal("same-kind earliest-deadline child must be predicted to colocate")
	}
	if r.predictColocate(p, c2) {
		t.Fatal("different-kind child cannot colocate")
	}
}

func TestPredictColocationSiblingPriority(t *testing.T) {
	// Two same-kind children: only the earlier-deadline one colocates.
	d := graph.New("t", "T", 10*sim.Millisecond)
	p := d.AddNode("p", accel.ElemMatrix, accel.OpAdd, 1000)
	c1 := d.AddNode("c1", accel.ElemMatrix, accel.OpAdd, 1000, p)
	c2 := d.AddNode("c2", accel.ElemMatrix, accel.OpAdd, 1000, p)
	c1.RelDeadline = 5 * sim.Millisecond
	c2.RelDeadline = 8 * sim.Millisecond
	r := newRuntime(DMPredict)
	if !r.predictColocate(p, c1) || r.predictColocate(p, c2) {
		t.Fatal("only the earliest-deadline sibling colocates")
	}
}

func TestPredictAllChildrenForward(t *testing.T) {
	_, p, _, _ := buildFanout()
	r := newRuntime(DMPredict)
	// One EM child + one convolution child, one instance each: unique.
	if !r.predictAllChildrenForward(p) {
		t.Fatal("children on unique accelerators must be predicted to forward")
	}
	// Two children of the same kind with one instance: not unique.
	d := graph.New("t", "T", 10*sim.Millisecond)
	q := d.AddNode("q", accel.ElemMatrix, accel.OpAdd, 1000)
	d.AddNode("c1", accel.ElemMatrix, accel.OpAdd, 1000, q)
	d.AddNode("c2", accel.ElemMatrix, accel.OpAdd, 1000, q)
	if r.predictAllChildrenForward(q) {
		t.Fatal("two same-kind children cannot all forward on one instance")
	}
	// Leaves never forward.
	leaf := d.Nodes[1]
	if r.predictAllChildrenForward(leaf) {
		t.Fatal("a leaf has no forwards")
	}
}

func TestPredictAllChildrenForwardLatestParent(t *testing.T) {
	// A child with a later-deadline second parent: the first parent is not
	// the latest-finishing, so its output must be written back.
	d := graph.New("t", "T", 10*sim.Millisecond)
	p1 := d.AddNode("p1", accel.ElemMatrix, accel.OpAdd, 1000)
	p2 := d.AddNode("p2", accel.Convolution, accel.OpDefault, 1000)
	d.AddNode("c", accel.CannyNonMax, accel.OpDefault, 1000, p1, p2)
	p1.RelDeadline = 2 * sim.Millisecond
	p2.RelDeadline = 5 * sim.Millisecond
	r := newRuntime(DMPredict)
	if r.predictAllChildrenForward(p1) {
		t.Fatal("earlier-finishing parent must not predict forwarding")
	}
	if !r.predictAllChildrenForward(p2) {
		t.Fatal("latest-finishing parent must predict forwarding")
	}
}

func TestPredictMemAndRuntime(t *testing.T) {
	_, _, c1, _ := buildFanout()
	r := newRuntime(DMMax)
	memT := r.PredictMemTime(c1)
	want := sim.Time(float64(2000) / (6.4 * gb) * float64(sim.Second))
	if memT != want {
		t.Fatalf("PredictMemTime = %v, want %v", memT, want)
	}
	if r.PredictRuntime(c1) != c1.Compute+memT {
		t.Fatal("PredictRuntime must be compute + memory")
	}
}

func TestDMModeString(t *testing.T) {
	if DMMax.String() != "Max" || DMPredict.String() != "Pred" {
		t.Fatal("DMMode names wrong")
	}
}

// TestQuickPredictedBytesNeverNegativeAndBounded: predicted traffic is
// non-negative and never exceeds the all-DRAM maximum.
func TestQuickPredictedBytesBounded(t *testing.T) {
	f := func(edge1, edge2, extra, out uint16, sameKind bool) bool {
		d := graph.New("t", "T", 10*sim.Millisecond)
		kind := accel.Convolution
		if sameKind {
			kind = accel.ElemMatrix
		}
		p1 := d.AddNode("p1", accel.ElemMatrix, accel.OpAdd, int64(edge1)+1)
		p2 := d.AddNode("p2", kind, accel.OpAdd, int64(edge2)+1)
		c := d.AddNode("c", accel.ElemMatrix, accel.OpAdd, int64(out)+1, p1, p2)
		c.ExtraInputBytes = int64(extra)
		if err := d.Finalize(); err != nil {
			return false
		}
		_ = graph.AssignDeadlines(d, graph.DeadlineCPM, func(n *graph.Node) sim.Time { return n.Compute })
		r := newRuntime(DMPredict)
		dram, bus := r.PredictBytes(c)
		max := c.TotalInputBytes() + c.OutputBytes
		return dram >= 0 && bus >= 0 && dram+bus <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
