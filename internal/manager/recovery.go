package manager

// Recovery machinery for injected faults (docs/FAULTS.md): per-task
// watchdogs sized from the predicted runtime, bounded retry with
// exponential backoff onto a sibling instance, invalidation of forwarded
// scratchpad state the failed attempt may have consumed, and DAG-level
// graceful degradation once retries are exhausted or a required
// accelerator kind has permanently died. None of this code runs — and no
// events are armed — unless Config.Fault is set.

import (
	"fmt"
	"sort"

	"relief/internal/accel"
	"relief/internal/fault"
	"relief/internal/graph"
	"relief/internal/sim"
	"relief/internal/trace"
)

// Recovery parameter defaults (Config fields override).
const (
	defaultWatchdogMult = 8.0
	defaultMaxRetries   = 3
	defaultRetryBackoff = 2 * sim.Microsecond
	// minWatchdog floors the watchdog interval so a mispredicted
	// near-zero runtime cannot arm a hair-trigger timer.
	minWatchdog = sim.Microsecond
)

// scheduleDeaths arms the plan's scripted permanent instance deaths.
func (m *Manager) scheduleDeaths(p *fault.Plan) {
	idxs := make([]int, 0, len(p.DieAt))
	for i := range p.DieAt {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if i < 0 || i >= len(m.insts) {
			continue
		}
		if t := p.DieAt[i]; m.resumeAt > 0 && t <= m.resumeAt {
			// Restored run: this death fired before the capture instant;
			// the instance's Dead health is part of the restored state.
			continue
		}
		inst := m.insts[i]
		// Replayable: the schedule comes from the plan, so a checkpoint can
		// skip serializing these events (see sim.AtReplay).
		m.k.AtReplay(p.DieAt[i], func() { m.killInstance(inst) })
	}
}

// armWatchdog starts the per-task recovery timer for one launch attempt.
// The deadline is the predicted runtime scaled by WatchdogMult: generous
// enough that ordinary prediction error never trips it, tight enough that
// a hung task is recovered within a few task lifetimes.
func (m *Manager) armWatchdog(n *graph.Node, inst *Instance, att int) {
	ns := m.state(n)
	pred := n.PredRuntime
	if pred <= 0 {
		pred = m.RuntimeEstimate(n)
	}
	mult := m.cfg.WatchdogMult
	if mult <= 0 {
		mult = defaultWatchdogMult
	}
	iv := sim.Time(float64(pred) * mult)
	if iv < minWatchdog {
		iv = minWatchdog
	}
	ns.wdInterval = iv
	ns.watchdog = m.k.Schedule(iv, func() { m.watchdogFired(n, inst, att) })
}

func (m *Manager) disarmWatchdog(ns *nodeState) {
	if ns.watchdog != nil {
		m.k.Cancel(ns.watchdog)
		ns.watchdog = nil
	}
}

// watchdogFired handles a watchdog expiry. Expiries on tasks that are
// still making progress (a slowed task, or plain misprediction) are false
// alarms: the timer re-arms with a doubled interval and never perturbs
// the task, so recovery only ever triggers on genuinely hung work.
func (m *Manager) watchdogFired(n *graph.Node, inst *Instance, att int) {
	ns := m.state(n)
	ns.watchdog = nil
	if ns.attempt != att || n.State != graph.Running || n.DAG.Aborted {
		return
	}
	if !ns.hung {
		ns.wdInterval *= 2
		ns.watchdog = m.k.Schedule(ns.wdInterval, func() { m.watchdogFired(n, inst, att) })
		return
	}
	m.st.Faults.WatchdogFires++
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Instant(trace.Watchdog, n.String(), inst.Lane(), m.k.Now(), nil)
	}
	m.recover(n, inst, "hang")
}

// computeFault materialises the launch verdicts that prevent the compute
// phase from ever signalling completion. Returns true when no completion
// event must be scheduled (the watchdog owns the task from here).
func (m *Manager) computeFault(n *graph.Node, inst *Instance) bool {
	ns := m.state(n)
	switch ns.verdict {
	case fault.VerdictHang:
		ns.hung = true
		m.st.Faults.Hangs++
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.Instant(trace.Fault, "hang:"+n.String(), inst.Lane(), m.k.Now(), nil)
		}
		return true
	case fault.VerdictDie:
		// The instance dies taking the task with it; killInstance marks
		// the task hung so the watchdog recovers it onto a sibling.
		m.killInstance(inst)
		return true
	}
	return false
}

// recover handles one failed attempt of a node: free the accelerator,
// invalidate any forwarded input state the attempt consumed (forcing the
// retry to refetch consistent data from main memory), and re-dispatch
// after an exponentially growing backoff — or abort the DAG once the
// retry budget is spent.
func (m *Manager) recover(n *graph.Node, inst *Instance, cause string) {
	ns := m.state(n)
	m.disarmWatchdog(ns)
	now := m.k.Now()
	freeInst := func() {
		m.isr(func() sim.Time {
			inst.Busy = false
			if inst.curNode == n {
				inst.curNode = nil
			}
			return 0
		})
	}
	if n.DAG.Aborted {
		freeInst()
		return
	}
	if ns.failAt == 0 {
		ns.failAt = now
	}
	freeInst()
	ns.avoid = inst
	n.State = graph.Waiting
	ns.retries++
	maxR := m.cfg.MaxRetries
	if maxR <= 0 {
		maxR = defaultMaxRetries
	}
	if ns.retries > maxR {
		m.abortDAG(n.DAG, fmt.Sprintf("retries exhausted on %s (%s)", n.Name, cause))
		return
	}
	m.st.Faults.Retries++

	// The failed attempt may have consumed forwarded or colocated parent
	// data mid-fault: invalidate those scratchpad copies so the retry
	// reads a consistent image from main memory, writing back first when
	// main memory doesn't have one yet.
	for _, p := range n.Parents {
		ps := m.state(p)
		if ps.lost {
			m.abortDAG(n.DAG, fmt.Sprintf("output of %s lost with its instance", p.Name))
			return
		}
		if !m.outputLive(p) {
			continue
		}
		m.st.Faults.InvalidatedForwards++
		if !ps.wbDone && !ps.wbInFlight {
			m.st.Faults.RecoveryDRAMBytes += p.OutputBytes
			m.startWriteback(p, ps.inst, func() {})
		}
		ps.inst.Parts[ps.part].Node = nil
	}

	bo := m.cfg.RetryBackoff
	if bo <= 0 {
		bo = defaultRetryBackoff
	}
	bo <<= uint(ns.retries - 1)
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Span(trace.Retry, n.String()+" ("+cause+")", inst.Lane(), now, now+bo, nil)
	}
	ns.retryEv = m.k.Schedule(bo, func() {
		ns.retryEv = nil
		if n.DAG.Aborted {
			return
		}
		ns.pendingInputs = 0
		ns.gateFired = false
		ns.hung = false
		ns.verdict = fault.VerdictNone
		m.isr(func() sim.Time { return m.insertPlain(n) })
	})
}

// killInstance permanently removes an accelerator instance: its current
// task is stranded for the watchdog, unwritten outputs in its scratchpad
// are lost, and — when it was the last of its kind — every active DAG
// that still needs the kind is aborted so the simulation cannot wedge.
func (m *Manager) killInstance(inst *Instance) {
	if inst.Health == accel.Dead {
		return
	}
	inst.Health = accel.Dead
	m.deaths++
	m.st.Faults.InstanceDeaths++
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Instant(trace.Fault, "death", inst.Lane(), m.k.Now(), nil)
	}
	for _, buf := range inst.Parts {
		if o := buf.Node; o != nil {
			os := m.state(o)
			if !os.wbDone && !os.wbInFlight {
				os.lost = true
			}
			buf.Node = nil
		}
	}
	if cur := inst.curNode; cur != nil {
		cs := m.state(cur)
		if cs.compEv != nil {
			m.k.Cancel(cs.compEv)
			cs.compEv = nil
		}
		cs.hung = true
	}
	if m.liveCount(int(inst.Kind)) == 0 {
		doomed := append([]*graph.DAG(nil), m.active...)
		for _, d := range doomed {
			if m.dagNeedsKind(d, inst.Kind) {
				m.abortDAG(d, "no live "+inst.Kind.String()+" instance")
			}
		}
	}
}

// abortDAG cancels an unfinished DAG cleanly: pending nodes leave every
// ready queue, timers are disarmed, scratchpad claims are released, and
// stranded accelerators are freed. In-flight transfers and computes drain
// through the abort guards in inputDone/complete, so no events leak and
// the simulation always terminates.
func (m *Manager) abortDAG(d *graph.DAG, reason string) {
	if d.Aborted || d.Finished() {
		return
	}
	d.Aborted = true
	d.AbortReason = reason
	m.inFlight--
	m.dropActive(d)
	m.st.Faults.DAGsAborted++
	app := m.st.App(d.App, d.Sym, d.Deadline)
	app.Aborted++
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Instant(trace.Abort,
			fmt.Sprintf("%s#%d: %s", d.App, d.Iteration, reason), "manager", m.k.Now(), nil)
	}
	for kind := range m.queues {
		q := m.queues[kind][:0]
		for _, n := range m.queues[kind] {
			if n.DAG != d {
				q = append(q, n)
			}
		}
		m.queues[kind] = q
	}
	for _, n := range d.Nodes {
		ns, ok := m.ns[n]
		if !ok {
			continue
		}
		m.disarmWatchdog(ns)
		if ns.retryEv != nil {
			m.k.Cancel(ns.retryEv)
			ns.retryEv = nil
		}
		if ns.inst != nil && ns.part >= 0 && ns.inst.Parts[ns.part].Node == n {
			ns.inst.Parts[ns.part].Node = nil
		}
	}
	// Hung tasks have no future event to release their accelerator; free
	// them here. Tasks mid-input or mid-compute self-release on abort.
	freed := false
	for _, inst := range m.insts {
		if n := inst.curNode; n != nil && n.DAG == d {
			ns := m.state(n)
			if ns.gateFired && ns.compEv == nil {
				inst.Busy = false
				inst.curNode = nil
				freed = true
			}
		}
	}
	if freed {
		m.isr(func() sim.Time { return 0 })
	}
}

// dropActive removes a finished or aborted DAG from the active list.
func (m *Manager) dropActive(d *graph.DAG) {
	if m.inj == nil {
		return
	}
	for i, x := range m.active {
		if x == d {
			m.active = append(m.active[:i], m.active[i+1:]...)
			return
		}
	}
}

// missingKind returns an accelerator kind the DAG still needs but has no
// live instance of.
func (m *Manager) missingKind(d *graph.DAG) (accel.Kind, bool) {
	for _, n := range d.Nodes {
		if n.State != graph.Done && m.liveCount(int(n.Kind)) == 0 {
			return n.Kind, true
		}
	}
	return 0, false
}

// dagNeedsKind reports whether any unfinished node of d runs on kind.
func (m *Manager) dagNeedsKind(d *graph.DAG, kind accel.Kind) bool {
	for _, n := range d.Nodes {
		if n.Kind == kind && n.State != graph.Done {
			return true
		}
	}
	return false
}
