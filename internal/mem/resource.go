// Package mem models the SoC's shared-bandwidth resources: the LPDDR main
// memory channel and (via internal/xbar) interconnect links, plus
// energy accounting for DRAM and scratchpad traffic.
//
// A Resource is a FIFO bandwidth server. Transfers are decomposed into
// chunks before they are offered to a resource, so concurrent DMA streams
// interleave at chunk granularity, approximating the fair bandwidth sharing
// of a real memory controller without per-cycle simulation. When a transfer
// is the sole occupant of every resource on its path, the chunk loop is
// replaced by a closed-form claim (see coalesce.go) that yields identical
// timing with two events instead of two per chunk.
package mem

import (
	"fmt"

	"relief/internal/sim"
)

// GB is 10^9 bytes, matching the GB/s units used in the paper.
const GB = 1e9

// Server is anything that drains byte requests over time: the simple
// bandwidth Resource here, or the bank-level DRAM controller in
// internal/dram. Transfer paths are built from Servers.
type Server interface {
	Name() string
	// Enqueue schedules n bytes for service; done fires when they drain.
	Enqueue(n int64, done func())
	// ServiceTime is the unloaded service time for n bytes.
	ServiceTime(n int64) sim.Time
	// BusyTime is the cumulative time spent serving.
	BusyTime() sim.Time
	// BytesServed is the total bytes drained.
	BytesServed() int64
}

// Resource is a FIFO server with a fixed service bandwidth. The zero value
// is not usable; construct with NewResource.
type Resource struct {
	k         *sim.Kernel
	name      string
	psPerByte float64

	q       []request // waiting requests, q[head:] live
	head    int
	cur     request // request in service (cur.done != nil)
	busy    bool
	busyAcc sim.Time // accumulated busy time
	busyAt  sim.Time // start of current busy period
	bytes   int64    // total bytes served

	servedFn func() // cached bound method, so serving never allocates
	occ      *Occupancy
	claim    *claim // active analytic claim holding this resource, if any

	// OnBusyChange, if non-nil, fires whenever the resource transitions
	// between idle and busy. Resources with a callback are never claimed
	// analytically, since a claim fires no per-chunk transitions.
	OnBusyChange func(busy bool)
}

type request struct {
	bytes int64
	done  func()
}

// NewResource creates a bandwidth server named name with the given
// bandwidth in bytes per second.
func NewResource(k *sim.Kernel, name string, bytesPerSec float64) *Resource {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("mem: resource %s: non-positive bandwidth", name))
	}
	r := &Resource{
		k:         k,
		name:      name,
		psPerByte: float64(sim.Second) / bytesPerSec,
	}
	r.servedFn = r.served
	return r
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Bandwidth returns the service bandwidth in bytes per second.
func (r *Resource) Bandwidth() float64 { return float64(sim.Second) / r.psPerByte }

// SetOccupancy attaches the resource to a union-occupancy tracker. Busy
// transitions are reported to the tracker, and analytic claims over this
// resource coordinate through it.
func (r *Resource) SetOccupancy(o *Occupancy) { r.occ = o }

// ServiceTime returns how long serving n bytes takes at full bandwidth.
func (r *Resource) ServiceTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	t := sim.Time(float64(n) * r.psPerByte)
	if t < 1 {
		t = 1
	}
	return t
}

// Enqueue schedules n bytes for service; done fires when the bytes have
// drained. Zero-byte requests complete on the next event dispatch.
func (r *Resource) Enqueue(n int64, done func()) {
	if n <= 0 {
		r.k.Schedule(0, done)
		return
	}
	if r.claim != nil {
		// A second stream wants the resource: fold the analytic claim back
		// to chunk-wise state so FIFO interleaving resumes exactly.
		r.claim.materialize()
	}
	r.push(request{bytes: n, done: done})
	if !r.busy {
		r.setBusy(true)
		r.serveNext()
	}
}

// push appends a request to the FIFO.
//
//relief:hotpath
func (r *Resource) push(req request) {
	r.q = append(r.q, req) //lint:allow hotalloc FIFO growth is amortized and bounded by in-flight chunks
}

// popFront removes and returns the FIFO head, compacting lazily.
//
//relief:hotpath
func (r *Resource) popFront() request {
	req := r.q[r.head]
	r.q[r.head] = request{}
	r.head++
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	} else if r.head > 64 && r.head*2 > len(r.q) {
		// Compact once the dead prefix dominates, to bound memory.
		n := copy(r.q, r.q[r.head:])
		for i := n; i < len(r.q); i++ {
			r.q[i] = request{}
		}
		r.q = r.q[:n]
		r.head = 0
	}
	return req
}

// serveNext starts service of the FIFO head, if any.
//
//relief:hotpath
func (r *Resource) serveNext() {
	if r.head == len(r.q) {
		r.cur = request{}
		r.setBusy(false)
		return
	}
	r.cur = r.popFront()
	r.k.Schedule(r.ServiceTime(r.cur.bytes), r.servedFn)
}

// served completes the request in service: credit bytes, notify, serve the
// next waiting request (in that order, matching FIFO enqueue-during-done
// semantics).
//
//relief:hotpath
func (r *Resource) served() {
	req := r.cur
	r.cur = request{}
	r.bytes += req.bytes
	req.done()
	r.serveNext()
}

func (r *Resource) setBusy(b bool) {
	if r.busy == b {
		return
	}
	r.busy = b
	if b {
		r.busyAt = r.k.Now()
	} else {
		r.busyAcc += r.k.Now() - r.busyAt
	}
	if r.occ != nil {
		r.occ.linkBusy(b)
	}
	if r.OnBusyChange != nil {
		r.OnBusyChange(b)
	}
}

// BusyTime returns the total time the resource has spent serving requests,
// including the current busy period if one is in progress.
func (r *Resource) BusyTime() sim.Time {
	if r.claim != nil {
		return r.busyAcc + r.claim.stageBusyUpTo(r, r.k.Now())
	}
	if r.busy {
		return r.busyAcc + (r.k.Now() - r.busyAt)
	}
	return r.busyAcc
}

// BytesServed returns the total bytes drained through the resource.
func (r *Resource) BytesServed() int64 {
	if r.claim != nil {
		return r.bytes + r.claim.stageBytesDone(r, r.k.Now())
	}
	return r.bytes
}

// QueueLen reports the number of waiting requests (not counting the one in
// service).
func (r *Resource) QueueLen() int {
	if r.claim != nil {
		return r.claim.stageQueueLen(r, r.k.Now())
	}
	return len(r.q) - r.head
}
