// relief-sim runs a single scheduling scenario and prints its metrics.
//
// Usage:
//
//	relief-sim -mix CGL -policy RELIEF
//	relief-sim -mix CDH -policy LAX -continuous
//	relief-sim -mix GHL -policy RELIEF -topology xbar -bw average
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"relief/internal/exp"
	"relief/internal/fault"
	"relief/internal/predict"
	"relief/internal/trace"
	"relief/internal/workload"
	"relief/internal/xbar"
)

func main() {
	mix := flag.String("mix", "CGL", "application mix, e.g. C, CD, CGL (C=canny D=deblur G=gru H=harris L=lstm)")
	policy := flag.String("policy", "RELIEF", "scheduling policy (FCFS, GEDF-D, GEDF-N, LL, LAX, HetSched, RELIEF, RELIEF-LAX)")
	topo := flag.String("topology", "bus", "interconnect topology: bus or xbar")
	bw := flag.String("bw", "max", "bandwidth predictor: max, last, average, ewma")
	dm := flag.Bool("predict-dm", false, "use the graph-analysis data-movement predictor")
	continuous := flag.Bool("continuous", false, "run applications in a loop until the 50ms horizon")
	noFwd := flag.Bool("no-forwarding", false, "disable forwarding hardware")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file")
	statsOut := flag.String("stats-out", "", "write gem5-style statistics to this file")
	platformFile := flag.String("platform", "", "JSON platform spec (overrides -topology/-bw/-no-forwarding)")
	faultRate := flag.Float64("faults", 0, "fault-injection rate in [0,1] (0 = off); see docs/FAULTS.md")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed")
	flag.Parse()

	apps, err := workload.ParseMix(*mix)
	if err != nil {
		fatal(err)
	}
	if len(apps) < 1 || len(apps) > 3 {
		fatal(fmt.Errorf("mix %q has %d applications, want 1-3", *mix, len(apps)))
	}
	if *faultRate < 0 || *faultRate > 1 {
		fatal(fmt.Errorf("fault rate %v outside [0,1]", *faultRate))
	}
	sc := exp.Scenario{
		Mix:               apps,
		Contention:        workload.Contention(len(apps)),
		Policy:            *policy,
		BWPredictor:       *bw,
		DisableForwarding: *noFwd,
	}
	if *faultRate > 0 {
		sc.Faults = fault.Profile(*faultRate, *faultSeed)
	}
	if *continuous {
		sc.Contention = workload.Continuous
	}
	if *dm {
		sc.DM = predict.DMPredict
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder()
		sc.Trace = rec
	}
	if *platformFile != "" {
		f, err := os.Open(*platformFile)
		if err != nil {
			fatal(err)
		}
		spec, err := exp.LoadPlatform(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sc.Platform = spec
	}
	switch *topo {
	case "bus":
	case "xbar":
		sc.Topology = xbar.Crossbar
	default:
		fatal(fmt.Errorf("unknown topology %q", *topo))
	}

	res, err := exp.Run(sc)
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fwd, col := st.ForwardsPerEdge()
	dramPct, spadPct := st.DataMovement()
	dramE, spadE := st.MemoryEnergy()
	avg, tail := st.SchedLatency()

	fmt.Printf("scenario: mix=%s policy=%s contention=%s topology=%s\n",
		*mix, *policy, sc.Contention, *topo)
	fmt.Printf("makespan:            %v\n", st.Makespan)
	fmt.Printf("edges:               %d (forwards %d = %.1f%%, colocations %d = %.1f%%)\n",
		st.Edges, st.Forwards, fwd, st.Colocations, col)
	fmt.Printf("main memory traffic: %.2f MB (%.1f%% of all-DRAM baseline)\n",
		float64(st.DRAMReadBytes+st.DRAMWriteBytes)/1e6, dramPct)
	fmt.Printf("spad-to-spad:        %.2f MB (%.1f%%)\n", float64(st.SpadXferBytes)/1e6, spadPct)
	fmt.Printf("memory energy:       dram %.1f uJ, spad %.1f uJ\n", dramE*1e6, spadE*1e6)
	fmt.Printf("node deadlines met:  %d/%d (%.1f%%)\n", st.NodesMetDeadline, st.NodesDone, st.NodeDeadlinePct())
	fmt.Printf("DAG deadlines met:   %.1f%%\n", st.DAGDeadlinePct())
	fmt.Printf("accel occupancy:     %.2f\n", st.Occupancy())
	fmt.Printf("interconnect occ.:   %.1f%%\n", 100*st.InterconnectOccupancy)
	fmt.Printf("scheduler latency:   avg %v, tail %v\n", avg, tail)
	if st.Faults.Any() {
		fs := st.Faults
		fmt.Printf("faults injected:     hangs=%d slow=%d fails=%d deaths=%d dma-stalls=%d crc=%d dram-errs=%d\n",
			fs.Hangs, fs.Slowdowns, fs.TransientFails, fs.InstanceDeaths,
			fs.DMAStalls, fs.DMACorruptions, fs.DRAMErrors)
		fmt.Printf("recovery:            watchdog=%d retries=%d invalidated-fwd=%d aborted-dags=%d\n",
			fs.WatchdogFires, fs.Retries, fs.InvalidatedForwards, fs.DAGsAborted)
		fmt.Printf("recovery traffic:    %.2f MB, MTTR %v\n",
			float64(fs.RecoveryDRAMBytes+fs.RetriedDMABytes)/1e6, fs.MTTR())
	}

	names := make([]string, 0, len(st.Apps))
	for n := range st.Apps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := st.Apps[n]
		line := fmt.Sprintf("  %-7s iterations=%d deadlinesMet=%d slowdown=%.2f",
			n, a.Iterations, a.DeadlinesMet, a.Slowdown())
		if a.Aborted > 0 {
			line += fmt.Sprintf(" aborted=%d", a.Aborted)
		}
		fmt.Println(line)
	}

	if *statsOut != "" {
		f, err := os.Create(*statsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := st.WriteGem5Style(f); err != nil {
			fatal(err)
		}
		fmt.Printf("stats:               written to %s\n", *statsOut)
	}

	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:               %d events written to %s\n", rec.Len(), *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-sim: %v\n", err)
	os.Exit(1)
}
