package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// countingStub returns a stub runner that counts executions.
func countingStub(execs *atomic.Int32) func(context.Context, Request) (*Result, error) {
	return func(ctx context.Context, req Request) (*Result, error) {
		execs.Add(1)
		return &Result{Text: "stub:" + req.Mix}, nil
	}
}

// decodeEnvelope decodes a /run response envelope including its source.
func decodeEnvelope(t *testing.T, b []byte) (source string, res Result) {
	t.Helper()
	var env struct {
		Cached bool   `json:"cached"`
		Source string `json:"source"`
		Result
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decode envelope %s: %v", b, err)
	}
	return env.Source, env.Result
}

// twoReplicaFleet builds two peered in-process replicas with counting stub
// runners and returns them with their base URLs and exec counters.
func twoReplicaFleet(t *testing.T) (s1, s2 *Server, url1, url2 string, execs1, execs2 *atomic.Int32) {
	t.Helper()
	execs1, execs2 = new(atomic.Int32), new(atomic.Int32)
	s1 = New(Config{Workers: 2, Runner: countingStub(execs1)})
	s2 = New(Config{Workers: 2, Runner: countingStub(execs2)})
	ts1 := httptest.NewServer(s1.Handler())
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)
	s1.ConfigureCluster(ts1.URL, []string{ts2.URL})
	s2.ConfigureCluster(ts2.URL, []string{ts1.URL})
	return s1, s2, ts1.URL, ts2.URL, execs1, execs2
}

// digestOwner computes the body's digest and which fleet member owns it.
func digestOwner(t *testing.T, s *Server, body string) (digest, owner string) {
	t.Helper()
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	digest = req.Digest()
	return digest, s.cluster.ring.owner(digest)
}

// TestTwoReplicaCachePeering: a result cached on the digest's owner is
// served to a request hitting the other replica via a cheap cache probe —
// "source": "peer", no second simulation anywhere in the fleet, and the
// probing replica's per-peer hit counter reflects it.
func TestTwoReplicaCachePeering(t *testing.T) {
	s1, s2, url1, url2, execs1, execs2 := twoReplicaFleet(t)

	const body = `{"mix":"CGL"}`
	_, owner := digestOwner(t, s1, body)
	ownerURL, otherURL := url1, url2
	ownerServer, otherServer := s1, s2
	ownerExecs, otherExecs := execs1, execs2
	if owner == url2 {
		ownerURL, otherURL = url2, url1
		ownerServer, otherServer = s2, s1
		ownerExecs, otherExecs = execs2, execs1
	}
	_ = ownerServer

	// Warm the owner: it owns the digest, so it simulates locally.
	resp, b := post(t, ownerURL, body)
	if src, _ := decodeEnvelope(t, b); resp.StatusCode != http.StatusOK || src != srcRun {
		t.Fatalf("warming the owner: status=%d source=%q body=%s", resp.StatusCode, src, b)
	}

	// The same scenario through the other replica must come from the
	// owner's cache, not a second simulation.
	resp, b = post(t, otherURL, body)
	src, res := decodeEnvelope(t, b)
	if resp.StatusCode != http.StatusOK || src != srcPeer {
		t.Fatalf("non-owner request: status=%d source=%q body=%s", resp.StatusCode, src, b)
	}
	if res.Text != "stub:CGL" {
		t.Errorf("peer result text = %q", res.Text)
	}
	if got := ownerExecs.Load() + otherExecs.Load(); got != 1 {
		t.Errorf("fleet executed %d simulations, want 1", got)
	}
	if hits := otherServer.svc.peer(ownerURL).hits.Load(); hits != 1 {
		t.Errorf("peer hit counter = %d, want 1", hits)
	}

	// The labelled counter shows up on /metrics.
	mresp, err := http.Get(otherURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`relief_serve_peer_hits_total{peer="` + ownerURL + `"} 1`,
		`relief_serve_peer_breaker_state{peer="` + ownerURL + `"} 0`,
		`relief_serve_peer_breaker_opens_total{peer="` + ownerURL + `"} 0`,
		`relief_serve_peer_retries_total{peer="` + ownerURL + `"} 0`,
		`relief_serve_peer_fast_fails_total{peer="` + ownerURL + `"} 0`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestForwardToOwnerComputesOnce: on a cold fleet, a request landing on a
// non-owner is forwarded to the owner (probe misses, forward runs it
// there), and a later identical request peer-probes straight out of the
// owner's cache. One simulation total, owned side.
func TestForwardToOwnerComputesOnce(t *testing.T) {
	s1, _, url1, url2, execs1, execs2 := twoReplicaFleet(t)

	const body = `{"mix":"CDH"}`
	_, owner := digestOwner(t, s1, body)
	otherURL := url2
	ownerExecs, otherExecs := execs1, execs2
	if owner == url2 {
		otherURL = url1
		ownerExecs, otherExecs = execs2, execs1
	}

	resp, b := post(t, otherURL, body)
	src, _ := decodeEnvelope(t, b)
	if resp.StatusCode != http.StatusOK || src != srcRun {
		t.Fatalf("cold forward: status=%d source=%q body=%s (the relayed envelope carries the owner's source)",
			resp.StatusCode, src, b)
	}
	if got := resp.Header.Get(servedByHeader); got != owner {
		t.Errorf("%s = %q, want %q", servedByHeader, got, owner)
	}
	if ownerExecs.Load() != 1 || otherExecs.Load() != 0 {
		t.Fatalf("execs owner=%d other=%d, want 1/0 (forwarded work runs on the owner)",
			ownerExecs.Load(), otherExecs.Load())
	}

	// Round two: the owner's cache now answers the probe.
	resp, b = post(t, otherURL, body)
	if src, _ := decodeEnvelope(t, b); resp.StatusCode != http.StatusOK || src != srcPeer {
		t.Fatalf("warm probe: status=%d source=%q", resp.StatusCode, src)
	}
	if got := ownerExecs.Load() + otherExecs.Load(); got != 1 {
		t.Errorf("fleet executed %d simulations, want 1", got)
	}
}

// TestPeerDownFallsBackLocally: when a digest's owner is unreachable, the
// request must still succeed — probe misses, forward fails, and the replica
// simulates locally. A dead peer costs duplicated work, never an error.
func TestPeerDownFallsBackLocally(t *testing.T) {
	const deadPeer = "http://127.0.0.1:9" // discard port: connections refuse fast
	var execs atomic.Int32
	s := New(Config{Workers: 1, Runner: countingStub(&execs)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.ConfigureCluster(ts.URL, []string{deadPeer})

	// Find a scenario the dead peer owns (about half of all digests).
	body := ""
	for _, mix := range []string{
		`{"mix":"C"}`, `{"mix":"D"}`, `{"mix":"G"}`, `{"mix":"H"}`, `{"mix":"L"}`,
		`{"mix":"CD"}`, `{"mix":"CG"}`, `{"mix":"CH"}`, `{"mix":"CL"}`, `{"mix":"DG"}`,
		`{"mix":"DH"}`, `{"mix":"DL"}`, `{"mix":"GH"}`, `{"mix":"GL"}`, `{"mix":"HL"}`,
	} {
		if _, owner := digestOwner(t, s, mix); owner == deadPeer {
			body = mix
			break
		}
	}
	if body == "" {
		t.Fatal("no candidate scenario hashed onto the dead peer")
	}

	resp, b := post(t, ts.URL, body)
	src, _ := decodeEnvelope(t, b)
	if resp.StatusCode != http.StatusOK || src != srcRun {
		t.Fatalf("peer-down request: status=%d source=%q body=%s", resp.StatusCode, src, b)
	}
	if execs.Load() != 1 {
		t.Errorf("local fallback executed %d simulations, want 1", execs.Load())
	}
	// The probe's transport failure marks the owner down, so the forward
	// is skipped entirely: one fast probe failure, zero forward attempts.
	pc := s.svc.peer(deadPeer)
	if pc.misses.Load() != 1 || pc.forwardErrors.Load() != 0 {
		t.Errorf("dead peer counters: misses=%d forward_errors=%d, want 1/0",
			pc.misses.Load(), pc.forwardErrors.Load())
	}
	if h := s.cluster.health[deadPeer]; h == nil {
		t.Error("dead peer has no health tracker")
	} else {
		h.mu.Lock()
		fails := h.fails
		h.mu.Unlock()
		if fails == 0 {
			t.Error("probe failure did not feed the dead peer's breaker")
		}
	}

	// A second request hits the local cache and never touches the peer.
	resp, b = post(t, ts.URL, body)
	if src, _ := decodeEnvelope(t, b); resp.StatusCode != http.StatusOK || src != srcCache {
		t.Fatalf("repeat request: status=%d source=%q", resp.StatusCode, src)
	}
	if pc.misses.Load() != 1 {
		t.Errorf("cached repeat probed the dead peer again (misses=%d)", pc.misses.Load())
	}
}

// TestForwardedRequestNeverReforwards: a request already forwarded once is
// executed locally even by a replica that does not own its digest, so ring
// disagreement cannot loop requests around the fleet.
func TestForwardedRequestNeverReforwards(t *testing.T) {
	s1, _, url1, url2, execs1, execs2 := twoReplicaFleet(t)

	const body = `{"mix":"GL"}`
	_, owner := digestOwner(t, s1, body)
	// Send to the NON-owner with the forwarded marker set: it must run the
	// simulation itself rather than bounce it onward.
	target := url1
	targetExecs, otherExecs := execs1, execs2
	if owner == url1 {
		target = url2
		targetExecs, otherExecs = execs2, execs1
	}
	req, err := http.NewRequest(http.MethodPost, target+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if src, _ := decodeEnvelope(t, b); resp.StatusCode != http.StatusOK || src != srcRun {
		t.Fatalf("forwarded request: status=%d source=%q body=%s", resp.StatusCode, src, b)
	}
	if targetExecs.Load() != 1 || otherExecs.Load() != 0 {
		t.Errorf("execs target=%d other=%d, want 1/0 (no re-forwarding)", targetExecs.Load(), otherExecs.Load())
	}
}
