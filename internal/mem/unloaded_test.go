package mem

import (
	"fmt"
	"math/rand"
	"testing"

	"relief/internal/sim"
)

// TestUnloadedTimeMatchesIdleTransfer checks the closed form against the
// event-driven transfer engine on idle resources: with zero setup, an
// uncontended StartTransfer must finish exactly at UnloadedTime, for both
// the analytic-claim fast path and the chunk-wise slow path.
func TestUnloadedTimeMatchesIdleTransfer(t *testing.T) {
	cases := []struct {
		stages []float64 // bandwidths in bytes/s
		bytes  int64
	}{
		{[]float64{6.4 * GB}, 4096},
		{[]float64{6.4 * GB}, 100_000},
		{[]float64{6.4 * GB, 14.9 * GB}, 262144},
		{[]float64{14.9 * GB, 6.4 * GB}, 262144},
		{[]float64{6.4 * GB, 14.9 * GB, 10 * GB}, 1_000_001},
		{[]float64{6.4 * GB}, 1}, // sub-chunk transfer
		{[]float64{6.4 * GB, 14.9 * GB}, 4096},
	}
	for _, coalesce := range []bool{true, false} {
		saved := coalesceEnabled
		coalesceEnabled = coalesce
		for _, tc := range cases {
			k := sim.NewKernel()
			path := make([]Server, len(tc.stages))
			for i, bw := range tc.stages {
				path[i] = NewResource(k, fmt.Sprintf("s%d", i), bw)
			}
			var got sim.Time
			StartTransfer(k, path, tc.bytes, 0, func(res TransferResult) {
				got = res.End - res.Start
			})
			k.Run()
			want := UnloadedTime(path, tc.bytes)
			if got != want {
				t.Errorf("coalesce=%v stages=%v bytes=%d: transfer=%v UnloadedTime=%v",
					coalesce, tc.stages, tc.bytes, got, want)
			}
		}
		coalesceEnabled = saved
	}
}

// TestUnloadedTimeRandomizedProperty cross-validates the closed form
// against the event engine over randomized paths and sizes, weighted toward
// the two boundary regimes where the pipeline algebra is easiest to get
// wrong: C==1 (the whole transfer is one sub-chunk, so the "uniform chunks
// ahead of the final one" term must vanish) and a short final chunk (the
// last chunk drains faster than the steady-state bottleneck cadence, so its
// start is gated by the previous stage's drain, not the uniform schedule).
func TestUnloadedTimeRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20240808))
	bandwidths := []float64{1 * GB, 6.4 * GB, 10 * GB, 14.9 * GB, 25.6 * GB}
	sizes := func() int64 {
		switch rng.Intn(3) {
		case 0: // C==1: a single (possibly partial) chunk
			return 1 + rng.Int63n(DefaultChunkBytes)
		case 1: // short final chunk: full chunks plus a small remainder
			return rng.Int63n(32)*DefaultChunkBytes + 1 + rng.Int63n(64)
		default: // anywhere up to 64 chunks
			return 1 + rng.Int63n(64*DefaultChunkBytes)
		}
	}
	for _, coalesce := range []bool{true, false} {
		saved := coalesceEnabled
		coalesceEnabled = coalesce
		for trial := 0; trial < 200; trial++ {
			k := sim.NewKernel()
			path := make([]Server, 1+rng.Intn(4))
			bws := make([]float64, len(path))
			for i := range path {
				bws[i] = bandwidths[rng.Intn(len(bandwidths))]
				path[i] = NewResource(k, fmt.Sprintf("s%d", i), bws[i])
			}
			n := sizes()
			var got sim.Time
			done := false
			StartTransfer(k, path, n, 0, func(res TransferResult) {
				got = res.End - res.Start
				done = true
			})
			k.Run()
			if !done {
				t.Fatalf("trial %d: transfer never completed (bws=%v bytes=%d)", trial, bws, n)
			}
			if want := UnloadedTime(path, n); got != want {
				t.Errorf("trial %d coalesce=%v bws=%v bytes=%d: transfer=%v UnloadedTime=%v",
					trial, coalesce, bws, n, got, want)
			}
		}
		coalesceEnabled = saved
	}
}

func TestUnloadedTimeDegenerate(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "r", GB)
	if UnloadedTime([]Server{r}, 0) != 0 {
		t.Error("zero bytes must cost 0")
	}
	if UnloadedTime(nil, 4096) != 0 {
		t.Error("empty path must cost 0")
	}
}
