package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"relief/internal/exp"
	"relief/internal/metrics"
)

// Config sizes the service. Zero values select defaults.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue; a full queue rejects new work
	// with 429 + Retry-After (default 64).
	QueueCap int
	// CacheCap is the LRU result-cache capacity in entries (default 128).
	CacheCap int
	// Timeout bounds each simulation's wall time (default 60s). A request
	// may shorten (never extend) it via timeout_ms.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 128
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// Result is the service's answer to one simulation request.
type Result struct {
	// Digest is the request's canonical content address.
	Digest string `json:"digest"`
	// MakespanMS is the simulated makespan in milliseconds.
	MakespanMS float64 `json:"makespan_ms"`
	// Text is the human-readable summary, byte-identical to relief-sim's
	// stdout for the same scenario.
	Text string `json:"text"`
	// Metrics is the relief-metrics/1 JSON document (requests with
	// "metrics": true only) — the same schema the CLIs export.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// response is the HTTP envelope around a Result.
type response struct {
	Cached bool `json:"cached"`
	*Result
}

type errorResponse struct {
	Error string `json:"error"`
}

// flight is one in-flight simulation, shared by every request with the
// same digest (singleflight). waiters is guarded by Server.mu; when the
// last waiter disconnects before completion the flight is cancelled, which
// interrupts the simulation kernel mid-run.
type flight struct {
	key     string
	request Request
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	res     *Result
	err     error
	waiters int
}

// Server is the simulation service. Create with New, expose via Handler
// (or Serve), stop with Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux
	svc *serviceMetrics

	// runner executes one simulation; tests stub it to observe scheduling
	// behavior without paying for real runs.
	runner func(ctx context.Context, req Request) (*Result, error)

	mu       sync.Mutex
	cache    *cache
	flights  map[string]*flight
	draining bool

	jobs    chan *flight
	workers sync.WaitGroup

	http *http.Server
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		cache:   newCache(cfg.withDefaults().CacheCap),
		flights: make(map[string]*flight),
		runner:  runSimulation,
	}
	s.jobs = make(chan *flight, s.cfg.QueueCap)
	s.svc = newServiceMetrics(func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cache.len()
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Drain is called.
func (s *Server) Serve(l net.Listener) error {
	s.http = &http.Server{Handler: s.mux}
	return s.http.Serve(l)
}

// Drain gracefully stops the service: new requests are refused with 503,
// in-flight requests (and the simulations they wait on) are given until
// ctx expires to finish, then remaining simulations are cancelled through
// their contexts. The worker pool has fully exited when Drain returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	var err error
	if s.http != nil {
		// Waits for in-flight handlers, which wait on their flights.
		err = s.http.Shutdown(ctx)
	}
	// All handlers have returned (or were never served through s.http), so
	// nothing can submit to the queue anymore.
	close(s.jobs)
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, fl := range s.flights {
			fl.cancel()
		}
		s.mu.Unlock()
		<-done // cancellation interrupts the kernel within a few thousand events
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

func (s *Server) worker() {
	defer s.workers.Done()
	for fl := range s.jobs {
		s.svc.queueDepth.Add(-1)
		s.svc.running.Add(1)
		start := time.Now()
		res, err := s.runner(fl.ctx, fl.request)
		if res != nil {
			res.Digest = fl.key
		}
		s.mu.Lock()
		if err == nil {
			s.cache.add(fl.key, res)
		}
		delete(s.flights, fl.key)
		s.mu.Unlock()
		if err != nil {
			s.svc.errors.Add(1)
		}
		fl.res, fl.err = res, err
		close(fl.done)
		fl.cancel()
		s.svc.running.Add(-1)
		s.svc.observeLatency(time.Since(start))
	}
}

// handleRun admits, deduplicates, or cache-serves one simulation request.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Normalize(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := req.Digest()
	s.svc.requests.Add(1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		s.writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	if res, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.svc.hits.Add(1)
		s.writeJSON(w, http.StatusOK, response{Cached: true, Result: res})
		return
	}
	fl, joined := s.flights[key]
	if joined {
		fl.waiters++
		s.svc.joins.Add(1)
	} else {
		timeout := s.cfg.Timeout
		if req.TimeoutMS > 0 {
			if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
				timeout = t
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		fl = &flight{
			key: key, request: req, ctx: ctx, cancel: cancel,
			done: make(chan struct{}), waiters: 1,
		}
		select {
		case s.jobs <- fl:
			s.flights[key] = fl
			s.svc.queueDepth.Add(1)
			s.svc.misses.Add(1)
		default:
			s.mu.Unlock()
			cancel()
			s.svc.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, errors.New("serve: admission queue full"))
			return
		}
	}
	s.mu.Unlock()

	select {
	case <-fl.done:
		if fl.err != nil {
			s.writeError(w, errStatus(fl.err), fl.err)
			return
		}
		s.writeJSON(w, http.StatusOK, response{Cached: false, Result: fl.res})
	case <-r.Context().Done():
		// Client gone: release our claim; the last departing waiter
		// cancels the simulation so an abandoned run stops mid-flight.
		s.mu.Lock()
		fl.waiters--
		abandon := fl.waiters == 0
		s.mu.Unlock()
		if abandon {
			fl.cancel()
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.svc.writePrometheus(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// errStatus maps a simulation error onto an HTTP status: timeouts are 504,
// abandonment/drain cancellations 503, anything else a plain 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; the client sees a truncated
		// body and retries.
		return
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// runSimulation executes one request against the experiment harness. The
// context is threaded into the simulation kernel: cancellation interrupts
// the event loop and the run returns an error, never partial statistics.
func runSimulation(ctx context.Context, req Request) (*Result, error) {
	sc, err := req.Scenario()
	if err != nil {
		return nil, err
	}
	var reg *metrics.Registry
	if req.Metrics {
		reg = metrics.NewRegistry()
		sc.Metrics = reg
	}
	res, err := exp.RunContext(ctx, sc)
	if err != nil {
		return nil, err
	}
	var text bytes.Buffer
	if err := exp.WriteSummary(&text, sc, res.Stats); err != nil {
		return nil, err
	}
	out := &Result{
		MakespanMS: res.Stats.Makespan.Milliseconds(),
		Text:       text.String(),
	}
	if reg != nil {
		var mb bytes.Buffer
		if err := reg.WriteJSON(&mb); err != nil {
			return nil, err
		}
		out.Metrics = json.RawMessage(bytes.TrimSpace(mb.Bytes()))
	}
	return out, nil
}
