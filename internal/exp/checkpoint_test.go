package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"relief/internal/ckpt"
	"relief/internal/fault"
	"relief/internal/metrics"
	"relief/internal/sim"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// periodicScenario is the checkpoint test grid's base point: a two-app mix
// released every 5 ms until 20 ms, which quiesces between iterations (each
// iteration's makespan is ~3.7 ms).
func periodicScenario(t *testing.T) Scenario {
	t.Helper()
	mix, err := workload.ParseMix("CG")
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Mix:        mix,
		Contention: workload.Contention(len(mix)),
		Policy:     "RELIEF",
		Period:     5 * sim.Millisecond,
		Horizon:    20 * sim.Millisecond,
	}
}

// summaryDoc renders the run summary document — the restore contract's unit
// of comparison (relief-sim stdout, the serving layer's Text field).
func summaryDoc(t *testing.T, sc Scenario, res *Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteSummary(&b, sc, res.Stats); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// restoreIdentical asserts the heart of the checkpoint contract: warming sc
// to a checkpoint at warmAt, restoring, and running to the horizon yields a
// summary document byte-identical to an uninterrupted cold run.
func restoreIdentical(t *testing.T, sc Scenario, warmAt sim.Time) {
	t.Helper()
	ctx := context.Background()
	env, err := RunToCheckpoint(ctx, sc, warmAt)
	if err != nil {
		t.Fatalf("RunToCheckpoint: %v", err)
	}
	opened, err := ckpt.Open(env)
	if err != nil {
		t.Fatalf("ckpt.Open: %v", err)
	}
	if opened.Key != ScenarioKey(sc) || opened.ForkKey != ForkKey(sc) {
		t.Fatalf("envelope keys: key=%q fork=%q", opened.Key, opened.ForkKey)
	}
	warm, err := RunFromCheckpoint(ctx, sc, opened)
	if err != nil {
		t.Fatalf("RunFromCheckpoint: %v", err)
	}
	cold, err := Run(sc)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if w, c := summaryDoc(t, sc, warm), summaryDoc(t, sc, cold); w != c {
		t.Errorf("restored run diverged from cold run (captured at %v):\nwarm:\n%s\ncold:\n%s",
			sim.Time(opened.CapturedPs), w, c)
	}
}

// TestCheckpointRestoreGrid pins restore byte-identity across the platform
// knobs whose state the checkpoint carries: the scheduling policy, the
// crossbar interconnect, the bank-level DRAM controller, a stateful
// bandwidth predictor, and the base configuration.
func TestCheckpointRestoreGrid(t *testing.T) {
	base := periodicScenario(t)
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"base", func(sc *Scenario) {}},
		{"fcfs", func(sc *Scenario) { sc.Policy = "FCFS" }},
		{"crossbar", func(sc *Scenario) { sc.Topology = xbar.Crossbar }},
		{"detailed-dram", func(sc *Scenario) { sc.DetailedDRAM = true }},
		{"ewma-predictor", func(sc *Scenario) { sc.BWPredictor = "ewma" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			tc.mutate(&sc)
			restoreIdentical(t, sc, 8*sim.Millisecond)
		})
	}
}

// TestCheckpointRestoreWithFaults covers the fault injector's PRNG draw
// position: the restored injector must continue the random sequence exactly
// where the warm run left it, including scripted instance deaths on either
// side of the capture instant (satellite: fault-plan round-trip).
func TestCheckpointRestoreWithFaults(t *testing.T) {
	cases := []struct {
		name    string
		plan    *fault.Plan
		warm    sim.Time
		horizon sim.Time
	}{
		// Stochastic plans keep iterations busy longer (retries, slowdowns),
		// so not every release instant quiesces; a longer horizon leaves the
		// capture room to land at a later release.
		{"profile", fault.Profile(0.02, 7), 15 * sim.Millisecond, 40 * sim.Millisecond},
		{"death-before-capture", &fault.Plan{Seed: 3, DieAt: map[int]sim.Time{0: 2 * sim.Millisecond}}, 8 * sim.Millisecond, 0},
		{"death-after-capture", &fault.Plan{Seed: 3, DieAt: map[int]sim.Time{0: 12 * sim.Millisecond}}, 8 * sim.Millisecond, 0},
		{"slow-tasks", &fault.Plan{Seed: 42, Rates: fault.Rates{TaskSlow: 0.15, SlowFactor: 4}}, 8 * sim.Millisecond, 100 * sim.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := periodicScenario(t)
			sc.Faults = tc.plan
			if tc.horizon > 0 {
				sc.Horizon = tc.horizon
			}
			restoreIdentical(t, sc, tc.warm)
		})
	}
}

// TestCheckpointMetricsNeutral asserts the capture itself is bit-neutral:
// warming with a metrics registry attached (probe events consume kernel
// sequence numbers but read state only) and restoring yields the same
// summary as a plain cold run without metrics (satellite: metrics
// round-trip).
func TestCheckpointMetricsNeutral(t *testing.T) {
	ctx := context.Background()
	sc := periodicScenario(t)

	metricised := sc
	metricised.Metrics = metrics.NewRegistry()
	metricised.MetricsInterval = sc.Period
	env, err := RunToCheckpoint(ctx, metricised, 8*sim.Millisecond)
	if err != nil {
		t.Fatalf("metricised RunToCheckpoint: %v", err)
	}
	opened, err := ckpt.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunFromCheckpoint(ctx, sc, opened)
	if err != nil {
		t.Fatalf("RunFromCheckpoint: %v", err)
	}
	cold, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if w, c := summaryDoc(t, sc, warm), summaryDoc(t, sc, cold); w != c {
		t.Errorf("metricised warm + restore diverged from plain cold run:\nwarm:\n%s\ncold:\n%s", w, c)
	}
}

// TestCheckpointHorizonFork pins the fork-key contract: one checkpoint
// captured under a 20 ms horizon restores bit-identically into runs with
// any horizon beyond its capture instant, because pending future releases
// cannot affect earlier state.
func TestCheckpointHorizonFork(t *testing.T) {
	ctx := context.Background()
	sc := periodicScenario(t)
	env, err := RunToCheckpoint(ctx, sc, 8*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := ckpt.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, horizon := range []sim.Time{15 * sim.Millisecond, 25 * sim.Millisecond, 40 * sim.Millisecond} {
		fork := sc
		fork.Horizon = horizon
		warm, err := RunFromCheckpoint(ctx, fork, opened)
		if err != nil {
			t.Fatalf("fork to %v: %v", horizon, err)
		}
		cold, err := Run(fork)
		if err != nil {
			t.Fatal(err)
		}
		if w, c := summaryDoc(t, fork, warm), summaryDoc(t, fork, cold); w != c {
			t.Errorf("horizon fork %v diverged:\nwarm:\n%s\ncold:\n%s", horizon, w, c)
		}
	}
	// A horizon at or before the capture instant has nothing left to run.
	tooShort := sc
	tooShort.Horizon = sim.Time(opened.CapturedPs)
	if _, err := RunFromCheckpoint(ctx, tooShort, opened); err == nil {
		t.Error("fork to a horizon at the capture instant should fail")
	}
}

// TestCheckpointEnvelopeTamper pins the envelope integrity checks: payload
// corruption, schema drift, and malformed framing are all rejected.
func TestCheckpointEnvelopeTamper(t *testing.T) {
	sc := periodicScenario(t)
	env, err := RunToCheckpoint(context.Background(), sc, 8*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Open(env); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}

	tampered := bytes.Replace(env, []byte(`"payload":"`), []byte(`"payload":"AAAA`), 1)
	if bytes.Equal(tampered, env) {
		t.Fatal("tamper did not change the envelope")
	}
	if _, err := ckpt.Open(tampered); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("payload tamper: err=%v, want checksum mismatch", err)
	}

	wrongSchema := bytes.Replace(env, []byte(ckpt.Schema), []byte("relief-ckpt/9"), 1)
	if _, err := ckpt.Open(wrongSchema); err == nil {
		t.Error("unknown schema accepted")
	}

	if _, err := ckpt.Open([]byte("not json")); err == nil {
		t.Error("malformed envelope accepted")
	}
}

// TestCheckpointRequiresPeriodic pins the mode restrictions: checkpointing
// is periodic-only, and tracing cannot cross a checkpoint.
func TestCheckpointRequiresPeriodic(t *testing.T) {
	ctx := context.Background()
	sc := periodicScenario(t)

	aperiodic := sc
	aperiodic.Period = 0
	if _, err := RunToCheckpoint(ctx, aperiodic, 8*sim.Millisecond); err == nil {
		t.Error("aperiodic RunToCheckpoint should fail")
	}

	env, err := RunToCheckpoint(ctx, sc, 8*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := ckpt.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFromCheckpoint(ctx, aperiodic, opened); err == nil {
		t.Error("aperiodic RunFromCheckpoint should fail")
	}

	// A scenario differing in more than the horizon has a different fork key.
	other := sc
	other.Policy = "FCFS"
	if _, err := RunFromCheckpoint(ctx, other, opened); err == nil {
		t.Error("fork-key mismatch accepted")
	}
}
