package lint

import (
	"go/ast"

	"relief/internal/lint/analysis"
)

// weakeventScope lists the observability packages. They may only piggyback
// on a simulation, never extend it: a strong Kernel.Schedule/At from a
// metrics probe or trace hook would add events to the heap, shift
// same-tick sequence numbers, and change the golden digests the moment
// someone turns telemetry on (the invariant TestMetricsNeutrality checks
// at runtime).
var weakeventScope = []string{"internal/metrics", "internal/trace"}

// WeakEvent flags strong sim.Kernel scheduling calls from observability
// packages; they must use ScheduleWeak.
var WeakEvent = &analysis.Analyzer{
	Name: "weakevent",
	Doc: "observability packages (metrics, trace) must schedule weak kernel " +
		"events only: Kernel.Schedule/At would perturb bit-neutral runs",
	Run: runWeakEvent,
}

func runWeakEvent(pass *analysis.Pass) error {
	if !pkgIn(pass.Pkg.Path(), weakeventScope...) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isKernelMethod(pass.TypesInfo, call, "Schedule", "At") {
			pass.Reportf(call.Pos(),
				"strong kernel event scheduled from observability package %s; use ScheduleWeak so metricised runs stay bit-identical",
				pass.Pkg.Name())
		}
		return true
	})
	return nil
}
