package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", wdt, c)
			} else {
				parts[i] = fmt.Sprintf("%*s", wdt, c)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Cols)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV with a leading title comment row.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f1 formats a float with one decimal.
func f1(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.1f", v)
}

// f2 formats a float with two decimals.
func f2(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// gmean returns the geometric mean of vs; non-positive entries are clamped
// to eps so all-but-zero rows do not collapse the mean.
func gmean(vs []float64, eps float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v < eps {
			v = eps
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// amean returns the arithmetic mean.
func amean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
