package mem

import (
	"fmt"

	"relief/internal/sim"
)

// ResourceState is the serializable state of a Resource at a quiescent
// instant (no request in service, empty FIFO, no analytic claim): the
// accumulated accounting that outlives individual transfers. Capture refuses
// a non-quiescent resource — in-flight chunk events cannot be serialized, and
// the checkpoint machinery guarantees they never exist at capture time.
type ResourceState struct {
	BusyAcc sim.Time
	Bytes   int64
}

// CaptureState snapshots the resource's accumulated accounting. It errors if
// the resource is mid-service: a checkpoint is only legal at a quiescent
// instant.
func (r *Resource) CaptureState() (ResourceState, error) {
	if r.busy || r.claim != nil || r.head != len(r.q) {
		return ResourceState{}, fmt.Errorf("mem: resource %s busy at capture", r.name)
	}
	return ResourceState{BusyAcc: r.busyAcc, Bytes: r.bytes}, nil
}

// RestoreState primes a freshly constructed resource with captured
// accounting.
func (r *Resource) RestoreState(s ResourceState) {
	r.busyAcc = s.BusyAcc
	r.bytes = s.Bytes
}

// OccupancyState is the serializable state of an Occupancy tracker at a
// quiescent instant (no open busy period, no active claim).
type OccupancyState struct {
	Acc       sim.Time
	Claims    int64
	Conflicts int64
}

// CaptureState snapshots the tracker's accumulated accounting, erroring if a
// busy period or analytic claim is open.
func (o *Occupancy) CaptureState() (OccupancyState, error) {
	if o.active != 0 || o.cl != nil {
		return OccupancyState{}, fmt.Errorf("mem: occupancy busy at capture")
	}
	return OccupancyState{Acc: o.acc, Claims: o.Claims, Conflicts: o.Conflicts}, nil
}

// RestoreState primes a fresh tracker with captured accounting.
func (o *Occupancy) RestoreState(s OccupancyState) {
	o.acc = s.Acc
	o.Claims = s.Claims
	o.Conflicts = s.Conflicts
}
