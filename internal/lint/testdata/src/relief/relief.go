// nopanic fixture for the facade package: the public API reports errors.
package relief

import "errors"

// Run is exported API: panicking here crashes callers that correctly
// handle the error path.
func Run(ok bool) error {
	if !ok {
		panic("relief: bad state") // want `panic in relief Run: the facade/workload API contract is error returns`
	}
	return errors.New("done")
}

// MustRun follows the Must* convention: panicking on error is its
// documented contract, so no diagnostic.
func MustRun() {
	if err := Run(false); err != nil {
		panic(err)
	}
}

func guarded() {
	//lint:allow nopanic kernel invariant violation; unreachable by construction
	panic("unreachable")
}
