package manager

import (
	"testing"

	"relief/internal/accel"
	"relief/internal/core"
	"relief/internal/graph"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/workload"
)

// run executes a set of DAG builders to completion under the config.
func run(t *testing.T, cfg Config, builders ...func() *graph.DAG) *stats.Stats {
	t.Helper()
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, cfg, st)
	for _, b := range builders {
		d := b()
		if err := d.Finalize(); err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(d, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Run()
	return st
}

// chainBuilder returns a builder for an n-node elem-matrix chain.
func chainBuilder(name string, n int, deadline sim.Time) func() *graph.DAG {
	return func() *graph.DAG {
		d := graph.New(name, "X", deadline)
		var prev *graph.Node
		for i := 0; i < n; i++ {
			if prev == nil {
				prev = d.AddNode("n0", accel.ElemMatrix, accel.OpAdd, 65536)
				prev.ExtraInputBytes = 65536
			} else {
				prev = d.AddNode("n", accel.ElemMatrix, accel.OpAdd, 65536, prev)
			}
		}
		return d
	}
}

func TestSingleChainAllColocations(t *testing.T) {
	// An uncontended linear chain on one accelerator: every edge should be
	// a colocation (consumer launches right after its producer).
	st := run(t, DefaultConfig(core.New()), chainBuilder("c", 6, 50*sim.Millisecond))
	if st.NodesDone != 6 {
		t.Fatalf("finished %d nodes, want 6", st.NodesDone)
	}
	if st.Colocations != 5 || st.Forwards != 0 {
		t.Fatalf("colocations=%d forwards=%d, want 5/0", st.Colocations, st.Forwards)
	}
	// No intermediate write-backs: DRAM writes = final output only.
	if st.DRAMWriteBytes != 65536 {
		t.Errorf("DRAM writes = %d, want 65536 (leaf only)", st.DRAMWriteBytes)
	}
	// DRAM reads = the root's external input only.
	if st.DRAMReadBytes != 65536 {
		t.Errorf("DRAM reads = %d, want 65536 (root input only)", st.DRAMReadBytes)
	}
}

func TestDisableForwardingAllDRAM(t *testing.T) {
	cfg := DefaultConfig(core.New())
	cfg.DisableForwarding = true
	st := run(t, cfg, chainBuilder("c", 6, 50*sim.Millisecond))
	if st.Forwards != 0 || st.Colocations != 0 {
		t.Fatalf("forwarding disabled but got fwd=%d col=%d", st.Forwards, st.Colocations)
	}
	// Every load and store goes through main memory: traffic equals the
	// baseline exactly.
	if st.DRAMReadBytes+st.DRAMWriteBytes != st.BaselineBytes {
		t.Errorf("DRAM traffic %d != baseline %d", st.DRAMReadBytes+st.DRAMWriteBytes, st.BaselineBytes)
	}
}

func TestCrossKindForwarding(t *testing.T) {
	// conv -> elem-matrix: different accelerators, so the edge must be a
	// forward (SPAD-to-SPAD), not a colocation.
	b := func() *graph.DAG {
		d := graph.New("x", "X", 50*sim.Millisecond)
		c := d.AddNode("conv", accel.Convolution, accel.OpDefault, 65536)
		c.ExtraInputBytes = 65536
		d.AddNode("em", accel.ElemMatrix, accel.OpAdd, 65536, c)
		return d
	}
	st := run(t, DefaultConfig(core.New()), b)
	if st.Forwards != 1 || st.Colocations != 0 {
		t.Fatalf("fwd=%d col=%d, want 1/0", st.Forwards, st.Colocations)
	}
	if st.SpadXferBytes != 65536 {
		t.Errorf("SPAD transfer bytes = %d, want 65536", st.SpadXferBytes)
	}
}

func TestAlwaysWriteBack(t *testing.T) {
	cfg := DefaultConfig(core.New())
	cfg.AlwaysWriteBack = true
	st := run(t, cfg, chainBuilder("c", 4, 50*sim.Millisecond))
	// Every node writes back even though edges still forward/colocate.
	if st.DRAMWriteBytes != 4*65536 {
		t.Errorf("DRAM writes = %d, want %d", st.DRAMWriteBytes, 4*65536)
	}
	if st.Colocations == 0 {
		t.Error("colocations should still happen with always-write-back")
	}
}

// TestEdgeConservation: every edge materialises exactly once, as DRAM,
// forward, or colocation, and all nodes finish, across policies and mixes.
func TestEdgeConservation(t *testing.T) {
	policies := []sched.Policy{
		sched.FCFS{}, sched.GEDFD{}, sched.GEDFN{}, sched.LL{}, sched.LAX{},
		sched.HetSched{}, core.New(), core.NewLAX(),
	}
	mixes := [][]workload.App{
		{workload.Canny},
		{workload.GRU, workload.LSTM},
		{workload.Canny, workload.Deblur, workload.Harris},
		{workload.Canny, workload.GRU, workload.LSTM},
	}
	for _, p := range policies {
		for _, mix := range mixes {
			k := sim.NewKernel()
			st := stats.New()
			m := New(k, DefaultConfig(p), st)
			wantNodes, wantEdges := 0, 0
			for _, app := range mix {
				d := workload.MustBuild(app)
				wantNodes += len(d.Nodes)
				wantEdges += d.NumEdges()
				if err := m.Submit(d, 0, nil); err != nil {
					t.Fatal(err)
				}
			}
			m.Run()
			name := p.Name() + "/" + workload.MixName(mix)
			if st.NodesDone != wantNodes {
				t.Errorf("%s: %d nodes done, want %d", name, st.NodesDone, wantNodes)
			}
			if st.Edges != wantEdges {
				t.Errorf("%s: %d edges recorded, want %d", name, st.Edges, wantEdges)
			}
			if st.Forwards+st.Colocations > st.Edges {
				t.Errorf("%s: fwd+col exceeds edges", name)
			}
			if st.DRAMReadBytes+st.DRAMWriteBytes > st.BaselineBytes {
				t.Errorf("%s: DRAM traffic %d exceeds all-DRAM baseline %d",
					name, st.DRAMReadBytes+st.DRAMWriteBytes, st.BaselineBytes)
			}
			if st.Makespan <= 0 {
				t.Errorf("%s: non-positive makespan", name)
			}
		}
	}
}

// TestDeterminism: identical scenarios produce bit-identical statistics.
func TestDeterminism(t *testing.T) {
	get := func() *stats.Stats {
		k := sim.NewKernel()
		st := stats.New()
		m := New(k, DefaultConfig(core.New()), st)
		for _, app := range []workload.App{workload.Canny, workload.GRU, workload.LSTM} {
			if err := m.Submit(workload.MustBuild(app), 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		m.Run()
		return st
	}
	a, b := get(), get()
	if a.Makespan != b.Makespan || a.Forwards != b.Forwards ||
		a.Colocations != b.Colocations || a.DRAMReadBytes != b.DRAMReadBytes ||
		a.DRAMWriteBytes != b.DRAMWriteBytes || a.NodesMetDeadline != b.NodesMetDeadline {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestContinuousResubmission: continuous mode re-instantiates finished DAGs
// until the horizon and counts only finished iterations.
func TestContinuousResubmission(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, DefaultConfig(core.New()), st)
	build := chainBuilder("loop", 4, 5*sim.Millisecond)
	first := build()
	if err := first.Finalize(); err != nil {
		t.Fatal(err)
	}
	rebuild := func() *graph.DAG {
		d := build()
		if err := d.Finalize(); err != nil {
			panic(err)
		}
		return d
	}
	if err := m.Submit(first, 0, rebuild); err != nil {
		t.Fatal(err)
	}
	m.RunContinuous(10 * sim.Millisecond)
	a := st.Apps["loop"]
	if a == nil || a.Iterations < 2 {
		t.Fatalf("expected multiple finished iterations, got %+v", a)
	}
	if st.Makespan != 10*sim.Millisecond {
		t.Errorf("makespan = %v, want the horizon", st.Makespan)
	}
	if got := len(a.Runtimes); got != a.Iterations {
		t.Errorf("runtimes recorded %d, want %d", got, a.Iterations)
	}
}

// TestWritebackWhenConsumerNotNextInLine: when a competing node occupies
// the queue ahead of the child, the producer's result is written back.
func TestWritebackWhenConsumerNotNextInLine(t *testing.T) {
	// Two chains on one elem-matrix accelerator under FCFS: interleaving
	// means children are not next in line, forcing write-backs.
	st := run(t, DefaultConfig(sched.FCFS{}),
		chainBuilder("a", 5, 50*sim.Millisecond),
		chainBuilder("b", 5, 50*sim.Millisecond))
	if st.DRAMWriteBytes <= 2*65536 {
		t.Errorf("expected intermediate write-backs beyond the 2 leaves, got %d bytes", st.DRAMWriteBytes)
	}
}

// TestMultiInstanceForwarding: with two elem-matrix instances a fan-out of
// two children can forward to both.
func TestMultiInstanceForwarding(t *testing.T) {
	cfg := DefaultConfig(core.New())
	cfg.Instances[accel.ElemMatrix] = 2
	b := func() *graph.DAG {
		d := graph.New("fan", "F", 50*sim.Millisecond)
		p := d.AddNode("p", accel.ElemMatrix, accel.OpAdd, 65536)
		p.ExtraInputBytes = 65536
		d.AddNode("c1", accel.ElemMatrix, accel.OpAdd, 65536, p)
		d.AddNode("c2", accel.ElemMatrix, accel.OpAdd, 65536, p)
		return d
	}
	st := run(t, cfg, b)
	if st.Forwards+st.Colocations != 2 {
		t.Fatalf("fwd=%d col=%d, want both edges satisfied locally", st.Forwards, st.Colocations)
	}
	if st.Forwards < 1 {
		t.Errorf("expected at least one SPAD-to-SPAD forward across instances")
	}
}

// TestNodeTimesPopulated: every finished node carries coherent timestamps.
func TestNodeTimesPopulated(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, DefaultConfig(core.New()), st)
	d := workload.MustBuild(workload.Canny)
	if err := m.Submit(d, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	for _, n := range d.Nodes {
		if n.State != graph.Done {
			t.Fatalf("node %s not done", n.Name)
		}
		if n.FinishAt <= n.StartAt {
			t.Errorf("node %s finish %v <= start %v", n.Name, n.FinishAt, n.StartAt)
		}
		for _, p := range n.Parents {
			if n.StartAt < p.FinishAt {
				t.Errorf("node %s started at %v before parent %s finished at %v",
					n.Name, n.StartAt, p.Name, p.FinishAt)
			}
		}
	}
	if !d.Finished() {
		t.Fatal("DAG not finished")
	}
}

// TestSchedulerCostCharged: scheduler latency samples are recorded and the
// manager serialises its work.
func TestSchedulerCostCharged(t *testing.T) {
	st := run(t, DefaultConfig(core.New()), chainBuilder("c", 5, 50*sim.Millisecond))
	if len(st.SchedCosts) < 5 {
		t.Fatalf("recorded %d scheduler samples, want >= 5", len(st.SchedCosts))
	}
	avg, tail := st.SchedLatency()
	if avg <= 0 || tail < avg {
		t.Errorf("latency avg=%v tail=%v", avg, tail)
	}
}

// TestRuntimeEstimateIsComputePlusMemory.
func TestRuntimeEstimate(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, DefaultConfig(core.New()), stats.New())
	d := graph.New("t", "T", sim.Millisecond)
	n := d.AddNode("n", accel.ElemMatrix, accel.OpAdd, 64000)
	n.ExtraInputBytes = 64000
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	est := m.RuntimeEstimate(n)
	memT := sim.Time(float64(128000) / (6.4e9) * float64(sim.Second))
	if est != n.Compute+memT {
		t.Errorf("RuntimeEstimate = %v, want %v", est, n.Compute+memT)
	}
}

// TestComputeJitterBounded: the deterministic jitter stays within the
// configured amplitude and is reproducible.
func TestComputeJitterBounded(t *testing.T) {
	cfg := DefaultConfig(core.New())
	k := sim.NewKernel()
	m := New(k, cfg, stats.New())
	d := workload.MustBuild(workload.GRU)
	for _, n := range d.Nodes {
		j1 := m.jitteredCompute(n)
		j2 := m.jitteredCompute(n)
		if j1 != j2 {
			t.Fatal("jitter not deterministic")
		}
		lo := float64(n.Compute) * (1 - cfg.ComputeJitter)
		hi := float64(n.Compute) * (1 + cfg.ComputeJitter)
		if float64(j1) < lo-1 || float64(j1) > hi+1 {
			t.Fatalf("jittered %v outside [%v, %v]", j1, lo, hi)
		}
	}
	// Zero jitter passes through.
	cfg2 := cfg
	cfg2.ComputeJitter = 0
	m2 := New(sim.NewKernel(), cfg2, stats.New())
	if m2.jitteredCompute(d.Nodes[0]) != d.Nodes[0].Compute {
		t.Fatal("zero jitter must return nominal compute")
	}
}

// TestSubmitRejectsCyclicDAG.
func TestSubmitRejectsCyclicDAG(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, DefaultConfig(core.New()), stats.New())
	d := graph.New("cyclic", "Y", sim.Millisecond)
	a := d.AddNode("a", accel.ElemMatrix, accel.OpAdd, 100)
	b := d.AddNode("b", accel.ElemMatrix, accel.OpAdd, 100, a)
	a.Parents = append(a.Parents, b)
	a.EdgeInBytes = append(a.EdgeInBytes, 100)
	b.Children = append(b.Children, a)
	if err := m.Submit(d, 0, nil); err == nil {
		t.Fatal("cyclic DAG accepted")
	}
}

// TestNilPolicyPanics.
func TestNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil policy must panic")
		}
	}()
	New(sim.NewKernel(), Config{}, stats.New())
}

// TestSinglePartitionStillCorrect: with one output partition, forwarding
// windows shrink but everything still completes and conserves.
func TestSinglePartitionStillCorrect(t *testing.T) {
	cfg := DefaultConfig(core.New())
	cfg.OutputPartitions = 1
	st := run(t, cfg,
		chainBuilder("a", 8, 50*sim.Millisecond),
		chainBuilder("b", 8, 50*sim.Millisecond))
	if st.NodesDone != 16 {
		t.Fatalf("finished %d nodes, want 16", st.NodesDone)
	}
	if st.Edges != 14 {
		t.Fatalf("edges = %d, want 14", st.Edges)
	}
}
