// relief-serve exposes the simulator as an HTTP/JSON service: POST a
// scenario to /run and get the same summary and relief-metrics/1 document
// the CLIs produce, deduplicated across concurrent identical requests and
// cached by content digest. See docs/SERVING.md.
//
// With -peers the replica joins a fleet: every scenario digest is placed on
// one owner by consistent hashing, non-owned requests probe the owner's
// cache and forward to it, and POST /sweep fans a whole grid out across the
// fleet (see "Cluster mode" in docs/SERVING.md).
//
// With -cache-dir the result cache spills write-through to disk, so a
// restarted replica warm-starts from its previous results instead of
// re-simulating them. -chaos injects seeded faults into outbound peer
// traffic for resilience drills (see "Resilience" in docs/SERVING.md).
//
// Every request runs under a distributed trace (X-Relief-Trace); spans are
// logged as structured records (-log-format json for machine-readable
// output) and served on GET /trace/{id}. -debug-addr exposes net/http/pprof
// on a separate listener (see "Service tracing" in docs/OBSERVABILITY.md).
//
// Usage:
//
//	relief-serve -addr 127.0.0.1:8080
//	relief-serve -addr 127.0.0.1:0 -workers 4 -cache 256
//	relief-serve -addr 127.0.0.1:8081 -peers http://127.0.0.1:8082,http://127.0.0.1:8083
//	relief-serve -addr 127.0.0.1:8080 -cache-dir /var/lib/relief/cache
//	relief-serve -peers ... -chaos '{"seed":7,"drop_rate":0.1,"error_rate":0.05}'
//	relief-serve -log-format json -debug-addr 127.0.0.1:6060
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relief/internal/serve"
	"relief/internal/svctrace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue capacity (full queue returns 429)")
	cacheCap := flag.Int("cache", 128, "result cache capacity in entries")
	cacheDir := flag.String("cache-dir", "", "durable result-cache directory (write-through spill; restart warm-starts from it)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-simulation wall-clock budget")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before cancelling runs")
	peers := flag.String("peers", "", "comma-separated peer base URLs; enables cluster mode")
	self := flag.String("self", "", "this replica's advertised base URL in cluster mode (default http://<listen addr>)")
	breaker := flag.Int("breaker-threshold", 0, "consecutive peer failures that open its circuit breaker (0 = default 3)")
	chaos := flag.String("chaos", "", "JSON chaos plan injected into outbound peer traffic, e.g. '{\"seed\":7,\"drop_rate\":0.1}'")
	logFormat := flag.String("log-format", "text", "log output format: text (grep-friendly lines) or json (one slog record per line)")
	traceCap := flag.Int("trace-cap", 0, "finished traces retained for GET /trace/{id} (0 = default 256)")
	debugAddr := flag.String("debug-addr", "", "listen address for the net/http/pprof debug server (off when empty)")
	flag.Parse()

	if *logFormat != "text" && *logFormat != "json" {
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	log := svctrace.NewLogger(os.Stdout, *logFormat, "relief-serve")

	var transport http.RoundTripper
	if *chaos != "" {
		var plan serve.ChaosPlan
		if err := json.Unmarshal([]byte(*chaos), &plan); err != nil {
			fatal(fmt.Errorf("parsing -chaos plan: %w", err))
		}
		transport = serve.NewChaosTransport(plan, nil)
		log.Info("chaos plan active: " + *chaos)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	s := serve.New(serve.Config{
		Workers:          *workers,
		QueueCap:         *queue,
		CacheCap:         *cacheCap,
		Timeout:          *timeout,
		PeerTransport:    transport,
		BreakerThreshold: *breaker,
		Logger:           log,
		TraceCap:         *traceCap,
	})
	if *cacheDir != "" {
		restored, err := s.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal(fmt.Errorf("opening -cache-dir: %w", err))
		}
		// The count rides as a structured attribute so monitors assert on
		// restored=N instead of parsing prose.
		log.Info(fmt.Sprintf("disk cache %s (%d entries restored)", *cacheDir, restored),
			"dir", *cacheDir, "restored", restored)
	}
	if *peers != "" {
		adv := *self
		if adv == "" {
			adv = "http://" + l.Addr().String()
		}
		var ps []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ps = append(ps, p)
			}
		}
		s.ConfigureCluster(adv, ps)
		log.Info(fmt.Sprintf("cluster mode, self=%s peers=%s", adv, strings.Join(ps, ",")))
	}
	if *debugAddr != "" {
		startDebugServer(log, *debugAddr)
	}
	// Logged before serving so scripts using an ephemeral port can scrape
	// the actual address. The address stays in the message (no attrs) so
	// the existing "listening on " sed extraction keeps working in both
	// log formats' text form.
	log.Info(fmt.Sprintf("listening on http://%s", l.Addr()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()

	select {
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		log.Info("draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Drain(dctx); err != nil {
			fatal(err)
		}
		<-errCh // http.ErrServerClosed
		log.Info("stopped")
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

// startDebugServer serves net/http/pprof on its own listener, kept apart
// from the service mux so profiling is never exposed on the service port.
func startDebugServer(log *slog.Logger, addr string) {
	dl, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("opening -debug-addr: %w", err))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Info(fmt.Sprintf("debug listening on http://%s", dl.Addr()))
	go func() {
		if err := http.Serve(dl, mux); err != nil {
			log.Warn("debug server stopped", "err", err.Error())
		}
	}()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-serve: %v\n", err)
	os.Exit(1)
}
