package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// randImage builds a deterministic image from fuzz bytes.
func randImage(raw []byte, w, h int) *Image {
	im := NewImage(w, h)
	for i := range im.Pix {
		if len(raw) > 0 {
			im.Pix[i] = float32(raw[i%len(raw)]) / 16
		}
	}
	return im
}

// TestQuickCannyNonMaxNeverAmplifies: non-max suppression only keeps or
// zeroes magnitudes — it never invents energy.
func TestQuickCannyNonMaxNeverAmplifies(t *testing.T) {
	f := func(raw []byte) bool {
		mag := randImage(raw, 8, 8)
		dir := randImage(raw, 8, 8)
		out := CannyNonMax(mag, dir)
		for i := range out.Pix {
			if out.Pix[i] != 0 && out.Pix[i] != mag.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHarrisNonMaxIdempotent: suppressing twice changes nothing.
func TestQuickHarrisNonMaxIdempotent(t *testing.T) {
	f := func(raw []byte) bool {
		resp := randImage(raw, 8, 8)
		once := HarrisNonMax(resp)
		twice := HarrisNonMax(once)
		for i := range once.Pix {
			if once.Pix[i] != twice.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEdgeTrackingMonotone: raising the thresholds can only remove
// edge pixels, never add them.
func TestQuickEdgeTrackingMonotone(t *testing.T) {
	f := func(raw []byte, loRaw, hiRaw uint8) bool {
		nms := randImage(raw, 8, 8)
		lo := float32(loRaw) / 32
		hi := lo + float32(hiRaw)/32
		loose := EdgeTracking(nms, lo, hi)
		strict := EdgeTracking(nms, lo+1, hi+1)
		for i := range loose.Pix {
			if strict.Pix[i] > loose.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConvolveLinear: convolution is linear — conv(a+b) = conv(a) +
// conv(b) up to float tolerance.
func TestQuickConvolveLinear(t *testing.T) {
	k := GaussianKernel(3, 1)
	f := func(raw []byte) bool {
		a := randImage(raw, 6, 6)
		b := randImage(append([]byte{7}, raw...), 6, 6)
		lhs := Convolve(Add(a, b), k)
		rhs := Add(Convolve(a, k), Convolve(b, k))
		for i := range lhs.Pix {
			if math.Abs(float64(lhs.Pix[i]-rhs.Pix[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGrayscaleBounded: grayscale of in-range RGB stays in range.
func TestQuickGrayscaleBounded(t *testing.T) {
	f := func(raw []byte) bool {
		rgb := NewRGB(4, 4)
		for i := range rgb.Pix {
			if len(raw) > 0 {
				rgb.Pix[i] = float32(raw[i%len(raw)]) / 255
			}
		}
		g := Grayscale(rgb)
		for _, v := range g.Pix {
			if v < 0 || v > 1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickISPDeterministic: identical raw frames demosaic identically,
// and outputs are clamped to [0, 1].
func TestQuickISPDeterministic(t *testing.T) {
	f := func(seed uint8, gr, gg, gb uint8) bool {
		raw := make([]byte, 16*16)
		for i := range raw {
			raw[i] = byte(int(seed)*31 + i*7)
		}
		gains := [3]float32{1 + float32(gr)/128, 1 + float32(gg)/128, 1 + float32(gb)/128}
		a, err := ISP(raw, 16, 16, gains, 2.2)
		if err != nil {
			return false
		}
		b, _ := ISP(raw, 16, 16, gains, 2.2)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] || a.Pix[i] < 0 || a.Pix[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatMulDistributes: (a+b)w = aw + bw.
func TestQuickMatMulDistributes(t *testing.T) {
	f := func(s1, s2, s3 uint16) bool {
		a := RandMat(3, 3, uint64(s1)+1, 1)
		b := RandMat(3, 3, uint64(s2)+1, 1)
		w := RandMat(3, 3, uint64(s3)+1, 1)
		lhs := MatMul(MatAdd(a, b), w)
		rhs := MatAdd(MatMul(a, w), MatMul(b, w))
		for i := range lhs.Data {
			if math.Abs(float64(lhs.Data[i]-rhs.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGatesBounded: sigmoid outputs in (0,1), tanh in (-1,1), for any
// finite input matrix.
func TestQuickGatesBounded(t *testing.T) {
	f := func(seed uint16, scaleRaw uint8) bool {
		scale := 1 + float32(scaleRaw)
		m := RandMat(4, 4, uint64(seed)+1, scale)
		s := MatSigmoid(m)
		th := MatTanh(m)
		for i := range s.Data {
			if s.Data[i] < 0 || s.Data[i] > 1 {
				return false
			}
			if th.Data[i] < -1 || th.Data[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
