package lint

import (
	"go/ast"
	"go/types"

	"relief/internal/lint/analysis"
)

// peerctxScope lists the networked serving packages in which every
// outbound HTTP call must be bounded by a per-attempt context deadline.
// A deadline-free peer call is how one slow replica wedges the whole
// fleet: probes and forwards must time out and feed the circuit breaker
// instead of hanging a request goroutine forever.
var peerctxScope = []string{
	"internal/serve", "cmd/relief-serve", "cmd/relief-sweep",
}

// clientURLHelpers are the (*http.Client) convenience methods that build
// their request internally, so the caller cannot attach a context.
var clientURLHelpers = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

// PeerCtx forbids deadline-free outbound HTTP in the serving packages:
// no http.Get/Post/PostForm/Head package helpers, no http.DefaultClient,
// no context-free http.NewRequest, and no (*http.Client) URL helpers —
// build requests with http.NewRequestWithContext under a per-attempt
// deadline and issue them with Client.Do.
var PeerCtx = &analysis.Analyzer{
	Name: "peerctx",
	Doc: "forbid deadline-free outbound HTTP in serving packages; " +
		"peer calls use http.NewRequestWithContext with a per-attempt deadline",
	Run: runPeerCtx,
}

func runPeerCtx(pass *analysis.Pass) error {
	if !pkgIn(pass.Pkg.Path(), peerctxScope...) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Any mention of the global client: it has no timeout, and its
			// use bypasses the shared per-peer transport (chaos injection,
			// breaker accounting).
			if v, ok := pass.TypesInfo.Uses[n.Sel].(*types.Var); ok &&
				v.Pkg() != nil && v.Pkg().Path() == "net/http" && v.Name() == "DefaultClient" {
				pass.Reportf(n.Pos(),
					"http.DefaultClient has no timeout; use a dedicated client and bound each attempt with a context deadline")
			}
		case *ast.CallExpr:
			fn := funcObj(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() == nil {
				switch {
				case clientURLHelpers[fn.Name()]:
					pass.Reportf(n.Pos(),
						"http.%s issues a deadline-free request on the shared DefaultClient; "+
							"use http.NewRequestWithContext with a per-attempt deadline", fn.Name())
				case fn.Name() == "NewRequest":
					pass.Reportf(n.Pos(),
						"http.NewRequest builds a context-free request; "+
							"use http.NewRequestWithContext so the attempt carries a deadline")
				}
				return true
			}
			// (*http.Client) URL helpers: the request is built internally,
			// so no context (and no deadline) can ever be attached.
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok &&
				named.Obj().Name() == "Client" && clientURLHelpers[fn.Name()] {
				pass.Reportf(n.Pos(),
					"(*http.Client).%s cannot carry a per-attempt context; "+
						"build the request with http.NewRequestWithContext and issue it with Do", fn.Name())
			}
		}
		return true
	})
	return nil
}
