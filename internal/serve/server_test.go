package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func decodeResponse(t *testing.T, b []byte) (cached bool, res Result) {
	t.Helper()
	var env struct {
		Cached bool `json:"cached"`
		Result
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decode response %s: %v", b, err)
	}
	return env.Cached, env.Result
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentIdenticalRequestsExecuteOnce: N clients posting the same
// scenario while it is in flight share one simulation (singleflight).
func TestConcurrentIdenticalRequestsExecuteOnce(t *testing.T) {
	s := New(Config{Workers: 2})
	var execs atomic.Int32
	release := make(chan struct{})
	s.runner = func(ctx context.Context, req Request) (*Result, error) {
		execs.Add(1)
		<-release
		return &Result{Text: "stub"}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := post(t, ts.URL, `{"mix":"CGL"}`)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
			}
			results[i] = b
		}()
	}
	// All n must be parked on the one flight before it completes.
	waitFor(t, "dedup joins", func() bool {
		return s.svc.misses.Load() == 1 && s.svc.joins.Load() == n-1
	})
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("simulation executed %d times, want 1", got)
	}
	for i := range results {
		if cached, res := decodeResponse(t, results[i]); cached || res.Text != "stub" {
			t.Errorf("request %d: cached=%v text=%q", i, cached, res.Text)
		}
	}
	// The shared result landed in the cache: one more POST is a hit.
	resp, b := post(t, ts.URL, `{"mix":"CGL"}`)
	if cached, _ := decodeResponse(t, b); resp.StatusCode != http.StatusOK || !cached {
		t.Fatalf("follow-up not served from cache: status=%d body=%s", resp.StatusCode, b)
	}
	if s.svc.hits.Load() != 1 {
		t.Errorf("hits = %d, want 1", s.svc.hits.Load())
	}
}

// TestCacheEvictionUnderCap: the LRU holds at most CacheCap results and
// evicts least-recently-used first.
func TestCacheEvictionUnderCap(t *testing.T) {
	s := New(Config{Workers: 1, CacheCap: 2})
	var execs atomic.Int32
	s.runner = func(ctx context.Context, req Request) (*Result, error) {
		execs.Add(1)
		return &Result{Text: req.Mix}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts.URL, `{"mix":"C"}`)         // exec 1; cache [C]
	post(t, ts.URL, `{"mix":"D"}`)         // exec 2; cache [D C]
	post(t, ts.URL, `{"mix":"C"}`)         // hit; cache [C D]
	post(t, ts.URL, `{"mix":"G"}`)         // exec 3; evicts D; cache [G C]
	post(t, ts.URL, `{"mix":"C"}`)         // hit; refreshes C; cache [C G]
	post(t, ts.URL, `{"mix":"D"}`)         // exec 4: D was evicted; evicts G
	_, b := post(t, ts.URL, `{"mix":"C"}`) // still a hit

	if cached, res := decodeResponse(t, b); !cached || res.Text != "C" {
		t.Errorf("C fell out of a 2-entry cache: cached=%v text=%q", cached, res.Text)
	}
	if got := execs.Load(); got != 4 {
		t.Errorf("executed %d simulations, want 4", got)
	}
	s.mu.Lock()
	n := s.cache.len()
	s.mu.Unlock()
	if n != 2 {
		t.Errorf("cache holds %d entries, cap 2", n)
	}
}

// TestQueueBackpressure: with the single worker busy and the admission
// queue full, the next distinct request is rejected with 429 + Retry-After.
func TestQueueBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	s.runner = func(ctx context.Context, req Request) (*Result, error) {
		<-release
		return &Result{Text: req.Mix}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{}, 2)
	go func() { post(t, ts.URL, `{"mix":"C"}`); done <- struct{}{} }()
	waitFor(t, "worker busy", func() bool { return s.svc.running.Load() == 1 })
	go func() { post(t, ts.URL, `{"mix":"D"}`); done <- struct{}{} }()
	waitFor(t, "queue full", func() bool { return s.svc.queueDepth.Load() == 1 })

	resp, b := post(t, ts.URL, `{"mix":"G"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.svc.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", s.svc.rejected.Load())
	}
	close(release)
	<-done
	<-done
}

// TestRequestTimeout: a request whose simulation exceeds its budget gets
// 504 and the cache stays clean.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1, Timeout: 20 * time.Millisecond})
	s.runner = func(ctx context.Context, req Request) (*Result, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("run cancelled: %w", ctx.Err())
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := post(t, ts.URL, `{"mix":"C"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, b)
	}
	s.mu.Lock()
	n := s.cache.len()
	s.mu.Unlock()
	if n != 0 {
		t.Error("failed run was cached")
	}
}

// TestDrainRefusesNewWork: once draining, new requests get 503, readiness
// flips to 503 while liveness stays 200 (orchestrators should stop routing,
// not restart the pod), and the worker pool exits cleanly.
func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	s.runner = func(ctx context.Context, req Request) (*Result, error) {
		return &Result{Text: "x"}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("readyz before drain = %d, want 200", got)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, b := post(t, ts.URL, `{"mix":"C"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, b)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness is not readiness)", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", got)
	}
	if err := s.Drain(context.Background()); err != nil { // idempotent
		t.Fatalf("second drain: %v", err)
	}
}

// TestClientDisconnectCancelsRun: when every waiter abandons an in-flight
// simulation, its context is cancelled — the kernel aborts mid-run and the
// service stays healthy for the next request. Runs the real simulator; the
// race detector covers the cross-goroutine cancel.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	// Continuous contention plus the bank-level DRAM model keeps the kernel
	// busy for ~10^5 events, so the cancel below always lands mid-run.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"mix":"CGL","continuous":true,"detailed_dram":true}`))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	waitFor(t, "simulation start", func() bool { return s.svc.running.Load() == 1 })
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client POST succeeded despite cancelled context")
	}
	waitFor(t, "cancelled run to error out", func() bool { return s.svc.errors.Load() == 1 })

	resp, b := post(t, ts.URL, `{"mix":"C"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request failed: %d %s", resp.StatusCode, b)
	}
	s.mu.Lock()
	flights := len(s.flights)
	s.mu.Unlock()
	if flights != 0 {
		t.Errorf("%d stale flights after cancellation", flights)
	}
}

// TestMetricsEndpoint: /metrics speaks Prometheus text format and carries
// the service counters, including the durable-cache families once a spill
// directory is attached.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	s.runner = func(ctx context.Context, req Request) (*Result, error) {
		return &Result{Text: "x"}, nil
	}
	if _, err := s.EnableDiskCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post(t, ts.URL, `{"mix":"C"}`)
	post(t, ts.URL, `{"mix":"C"}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"relief_serve_requests_total 2",
		"relief_serve_cache_hits_total 1",
		"relief_serve_cache_misses_total 1",
		"relief_serve_queue_depth 0",
		"relief_serve_request_latency_ms",
		"# TYPE relief_serve_requests_total counter",
		"relief_serve_disk_cache_hits_total 0",
		"relief_serve_disk_cache_misses_total 1", // the one cold miss checked disk too
		"relief_serve_disk_cache_load_errors_total 0",
		"relief_serve_disk_cache_spill_errors_total 0",
		"relief_serve_disk_cache_entries 1",
		"# TYPE relief_serve_disk_cache_entries gauge",
	} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServedTextMatchesCLI is the golden cross-check: the "text" field of a
// served result must be byte-identical to relief-sim's stdout for the same
// scenario.
func TestServedTextMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain unavailable")
	}
	bin := filepath.Join(t.TempDir(), "relief-sim")
	build := exec.Command(goBin, "build", "-o", bin, "relief/cmd/relief-sim")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building relief-sim: %v\n%s", err, out)
	}

	for _, tc := range []struct {
		args []string
		body string
	}{
		{[]string{"-mix", "CGL", "-policy", "RELIEF"}, `{"mix":"CGL"}`},
		{[]string{"-mix", "CDH", "-policy", "LAX", "-topology", "xbar"},
			`{"mix":"CDH","policy":"LAX","topology":"xbar"}`},
		{[]string{"-mix", "GL", "-policy", "RELIEF", "-faults", "0.01"},
			`{"mix":"GL","fault_rate":0.01}`},
	} {
		cli, err := exec.Command(bin, tc.args...).Output()
		if err != nil {
			t.Fatalf("relief-sim %v: %v", tc.args, err)
		}
		var req Request
		if err := json.Unmarshal([]byte(tc.body), &req); err != nil {
			t.Fatal(err)
		}
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		res, err := runSimulation(context.Background(), req)
		if err != nil {
			t.Fatalf("serve run %s: %v", tc.body, err)
		}
		if res.Text != string(cli) {
			t.Errorf("served text diverges from CLI for %s:\n--- CLI ---\n%s--- served ---\n%s",
				tc.body, cli, res.Text)
		}
	}
}

// TestRunSimulationCancelledMidRun cancels a real continuous-contention
// simulation from another goroutine: the facade must return a clean
// context error and no result — never partial statistics. go test -race
// verifies the cross-goroutine cancellation is race-free.
func TestRunSimulationCancelledMidRun(t *testing.T) {
	// The detailed DRAM model stretches this run to ~10^5 kernel events
	// (dozens of interrupt polls), so a 1 ms cancel reliably lands mid-run.
	req := Request{Mix: "CGL", Continuous: true, DetailedDRAM: true}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	res, err := runSimulation(ctx, req)
	if err == nil {
		t.Fatal("cancelled run returned no error (cancel landed too late?)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run leaked a result: %+v", res)
	}
}
