package exp

import (
	"fmt"
	"io"
	"sort"

	"relief/internal/stats"
	"relief/internal/workload"
)

// MixLabel renders a mix as its symbol string ("CGL"), the inverse of
// workload.ParseMix.
func MixLabel(mix []workload.App) string {
	s := ""
	for _, a := range mix {
		s += a.Sym()
	}
	return s
}

// WriteSummary renders the human-readable result summary for one scenario —
// the report relief-sim prints and relief-serve returns in its "text" field,
// shared so the two stay byte-identical.
func WriteSummary(w io.Writer, sc Scenario, st *stats.Stats) error {
	fwd, col := st.ForwardsPerEdge()
	dramPct, spadPct := st.DataMovement()
	dramE, spadE := st.MemoryEnergy()
	avg, tail := st.SchedLatency()

	p := &summaryWriter{w: w}
	p.printf("scenario: mix=%s policy=%s contention=%s topology=%s\n",
		MixLabel(sc.Mix), sc.Policy, sc.Contention, sc.Topology)
	p.printf("makespan:            %v\n", st.Makespan)
	p.printf("edges:               %d (forwards %d = %.1f%%, colocations %d = %.1f%%)\n",
		st.Edges, st.Forwards, fwd, st.Colocations, col)
	p.printf("main memory traffic: %.2f MB (%.1f%% of all-DRAM baseline)\n",
		float64(st.DRAMReadBytes+st.DRAMWriteBytes)/1e6, dramPct)
	p.printf("spad-to-spad:        %.2f MB (%.1f%%)\n", float64(st.SpadXferBytes)/1e6, spadPct)
	p.printf("memory energy:       dram %.1f uJ, spad %.1f uJ\n", dramE*1e6, spadE*1e6)
	p.printf("node deadlines met:  %d/%d (%.1f%%)\n", st.NodesMetDeadline, st.NodesDone, st.NodeDeadlinePct())
	p.printf("DAG deadlines met:   %.1f%%\n", st.DAGDeadlinePct())
	p.printf("accel occupancy:     %.2f\n", st.Occupancy())
	p.printf("interconnect occ.:   %.1f%%\n", 100*st.InterconnectOccupancy)
	p.printf("scheduler latency:   avg %v, tail %v\n", avg, tail)
	if st.Faults.Any() {
		fs := st.Faults
		p.printf("faults injected:     hangs=%d slow=%d fails=%d deaths=%d dma-stalls=%d crc=%d dram-errs=%d\n",
			fs.Hangs, fs.Slowdowns, fs.TransientFails, fs.InstanceDeaths,
			fs.DMAStalls, fs.DMACorruptions, fs.DRAMErrors)
		p.printf("recovery:            watchdog=%d retries=%d invalidated-fwd=%d aborted-dags=%d\n",
			fs.WatchdogFires, fs.Retries, fs.InvalidatedForwards, fs.DAGsAborted)
		p.printf("recovery traffic:    %.2f MB, MTTR %v\n",
			float64(fs.RecoveryDRAMBytes+fs.RetriedDMABytes)/1e6, fs.MTTR())
	}

	names := make([]string, 0, len(st.Apps))
	for n := range st.Apps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := st.Apps[n]
		// A starved app's slowdown is undefined (+Inf): say so instead of
		// printing a non-number.
		slow := "starved"
		if sl, ok := a.FiniteSlowdown(); ok {
			slow = fmt.Sprintf("%.2f", sl)
		}
		line := fmt.Sprintf("  %-7s iterations=%d deadlinesMet=%d slowdown=%s",
			n, a.Iterations, a.DeadlinesMet, slow)
		if a.Aborted > 0 {
			line += fmt.Sprintf(" aborted=%d", a.Aborted)
		}
		p.printf("%s\n", line)
	}
	return p.err
}

// summaryWriter is an io.Writer wrapper with a sticky first error.
type summaryWriter struct {
	w   io.Writer
	err error
}

func (p *summaryWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
