// relief-validate is the artifact-style sanity checker: it verifies the
// calibrations and reproduction claims at runtime and prints PASS/FAIL per
// check — the quick way to confirm a build still reproduces the paper
// after local modifications (the test suite covers the same ground in
// depth; this is the 30-second summary).
package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"

	"relief/internal/accel"
	"relief/internal/ckpt"
	"relief/internal/design"
	"relief/internal/exp"
	"relief/internal/hostif"
	"relief/internal/sim"
	"relief/internal/workload"
)

type check struct {
	name string
	run  func() (string, error)
}

func main() {
	sweep := exp.NewSweep()
	checks := []check{
		{"compute calibration (Table II, per accelerator)", func() (string, error) {
			want := map[accel.Kind]float64{
				accel.CannyNonMax: 443.02, accel.Convolution: 1545.61,
				accel.EdgeTracking: 324.73, accel.ElemMatrix: 10.94,
				accel.Grayscale: 10.26, accel.HarrisNonMax: 105.01, accel.ISP: 34.88,
			}
			for k, us := range want {
				got := accel.ComputeTime(k, accel.OpDefault, 128*128, 5).Microseconds()
				if math.Abs(got-us) > 0.01 {
					return "", fmt.Errorf("%v: %.2fus, want %.2fus", k, got, us)
				}
			}
			return "7/7 accelerators exact", nil
		}},
		{"application compute totals (Table II, per app)", func() (string, error) {
			want := map[workload.App]float64{
				workload.Canny: 3539.37, workload.Deblur: 15610.58,
				workload.GRU: 1249.31, workload.Harris: 6157.30, workload.LSTM: 1470.02,
			}
			worst := 0.0
			for a, us := range want {
				var total float64
				for _, n := range workload.MustBuild(a).Nodes {
					total += n.Compute.Microseconds()
				}
				err := math.Abs(total-us) / us
				if err > worst {
					worst = err
				}
				if err > 0.005 {
					return "", fmt.Errorf("%v: %.1fus vs paper %.1fus", a, total, us)
				}
			}
			return fmt.Sprintf("worst error %.2f%%", 100*worst), nil
		}},
		{"structure sizes (Tables III/IV)", func() (string, error) {
			if hostif.NodeSize(1, 1) != 72 || hostif.NodeSize(2, 1) != 84 ||
				hostif.NodeSize(1, 2) != 76 {
				return "", fmt.Errorf("node layout arithmetic broken")
			}
			if hostif.AccStateBytes != 32 || hostif.TotalMetadataBytes(7) != 236 {
				return "", fmt.Errorf("acc_state layout broken")
			}
			return "72 B node, 32 B acc_state, 236 B platform", nil
		}},
		{"ED^2 designs track calibration (§IV-B)", func() (string, error) {
			for _, k := range design.Kernels() {
				p := design.Choose(k, design.DefaultSpace())
				cal := accel.ComputeTime(k.Kind, accel.OpDefault, 128*128, 5)
				r := float64(p.Latency) / float64(cal)
				if r < 0.5 || r > 2 {
					return "", fmt.Errorf("%v: DSE latency ratio %.2f", k.Kind, r)
				}
			}
			return "all designs within 2x", nil
		}},
		{"RELIEF maximizes forwarding (Obs. 1)", func() (string, error) {
			avg := func(p string) (float64, error) {
				sum := 0.0
				for _, mix := range workload.Mixes(workload.High) {
					res, err := sweep.Get(exp.Scenario{Mix: mix, Contention: workload.High, Policy: p})
					if err != nil {
						return 0, err
					}
					f, c := res.Stats.ForwardsPerEdge()
					sum += f + c
				}
				return sum / 10, nil
			}
			relief, err := avg("RELIEF")
			if err != nil {
				return "", err
			}
			best := 0.0
			for _, p := range []string{"FCFS", "GEDF-D", "GEDF-N", "LAX", "HetSched"} {
				v, err := avg(p)
				if err != nil {
					return "", err
				}
				if v > best {
					best = v
				}
				if relief <= v {
					return "", fmt.Errorf("RELIEF %.1f%% <= %s %.1f%%", relief, p, v)
				}
			}
			return fmt.Sprintf("RELIEF %.1f%% vs best baseline %.1f%%", relief, best), nil
		}},
		{"LAX starves Deblur, RELIEF does not (§V-E)", func() (string, error) {
			mix, _ := workload.ParseMix("CDL")
			lax, err := sweep.Get(exp.Scenario{Mix: mix, Contention: workload.Continuous, Policy: "LAX"})
			if err != nil {
				return "", err
			}
			rel, err := sweep.Get(exp.Scenario{Mix: mix, Contention: workload.Continuous, Policy: "RELIEF"})
			if err != nil {
				return "", err
			}
			if n := lax.Stats.Apps["deblur"].Iterations; n != 0 {
				return "", fmt.Errorf("LAX finished %d Deblur iterations", n)
			}
			if n := rel.Stats.Apps["deblur"].Iterations; n == 0 {
				return "", fmt.Errorf("RELIEF starved Deblur")
			}
			return "starvation under LAX only", nil
		}},
		{"checkpoint restore is bit-identical (docs/CHECKPOINT.md)", func() (string, error) {
			mix, _ := workload.ParseMix("CG")
			sc := exp.Scenario{
				Mix: mix, Contention: workload.Contention(len(mix)), Policy: "RELIEF",
				Period: 5 * sim.Millisecond, Horizon: 20 * sim.Millisecond,
			}
			env, err := exp.RunToCheckpoint(context.Background(), sc, 8*sim.Millisecond)
			if err != nil {
				return "", err
			}
			opened, err := ckpt.Open(env)
			if err != nil {
				return "", err
			}
			warm, err := exp.RunFromCheckpoint(context.Background(), sc, opened)
			if err != nil {
				return "", err
			}
			cold, err := exp.Run(sc)
			if err != nil {
				return "", err
			}
			var a, b bytes.Buffer
			if err := exp.WriteSummary(&a, sc, warm.Stats); err != nil {
				return "", err
			}
			if err := exp.WriteSummary(&b, sc, cold.Stats); err != nil {
				return "", err
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				return "", fmt.Errorf("restored run diverged from cold run")
			}
			return fmt.Sprintf("captured %v, summaries identical", sim.Time(opened.CapturedPs)), nil
		}},
		{"interval sampling tracks the full run (docs/CHECKPOINT.md)", func() (string, error) {
			mix, _ := workload.ParseMix("CG")
			sc := exp.Scenario{
				Mix: mix, Contention: workload.Contention(len(mix)), Policy: "RELIEF",
				Period: 5 * sim.Millisecond, Horizon: 100 * sim.Millisecond,
			}
			est, err := exp.RunSampled(context.Background(), sc, 4)
			if err != nil {
				return "", err
			}
			if !est.Sampled {
				return "", fmt.Errorf("sampler fell back to a full run")
			}
			full, err := exp.Run(sc)
			if err != nil {
				return "", err
			}
			got, want := est.NodesDone.Estimate, float64(full.Stats.NodesDone)
			relErr := math.Abs(got-want) / want
			if relErr > 0.05 {
				return "", fmt.Errorf("nodes-done estimate %.0f vs full %.0f (%.2f%% error)", got, want, 100*relErr)
			}
			return fmt.Sprintf("%d windows, %.2f%% error (bound %.2f%%)",
				est.Windows, 100*relErr, 100*est.NodesDone.ErrorBound), nil
		}},
		{"determinism (two identical runs agree)", func() (string, error) {
			mix, _ := workload.ParseMix("CGL")
			sc := exp.Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"}
			a, err := exp.Run(sc)
			if err != nil {
				return "", err
			}
			b, err := exp.Run(sc)
			if err != nil {
				return "", err
			}
			if a.Stats.Makespan != b.Stats.Makespan || a.Stats.Forwards != b.Stats.Forwards {
				return "", fmt.Errorf("runs diverged")
			}
			return fmt.Sprintf("makespan %v twice", a.Stats.Makespan), nil
		}},
	}

	failed := 0
	for _, c := range checks {
		detail, err := c.run()
		if err != nil {
			failed++
			fmt.Printf("FAIL  %-48s %v\n", c.name, err)
		} else {
			fmt.Printf("PASS  %-48s %s\n", c.name, detail)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed\n", len(checks))
}
