// Comma-list suppression fixture: one line that trips two analyzers
// (hotalloc interface boxing and a twoclock conversion), silenced for
// both by a single //lint:allow hotalloc,twoclock directive. Both
// analyzers run over this package expecting zero findings.
package allowmulti

import (
	"time"

	"relief/internal/sim"
)

type sink struct {
	last interface{}
}

//relief:hotpath
func (s *sink) record(d time.Duration) {
	s.last = interface{}(sim.Time(d)) //lint:allow hotalloc,twoclock debug tap: boxes one value on a wall-clock boundary
}
