package serve

import "container/list"

// cache is a content-addressed LRU over completed results. It is not safe
// for concurrent use; the Server guards it with its own mutex.
type cache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *cache) get(key string) (*Result, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	ent, _ := e.Value.(*cacheEntry)
	if ent == nil {
		return nil, false
	}
	return ent.res, true
}

// add inserts (or refreshes) key and returns the keys evicted to stay
// within capacity, so a durable mirror of the cache can delete their
// spill files.
func (c *cache) add(key string, res *Result) (evicted []string) {
	if c.cap <= 0 {
		return nil
	}
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		if ent, _ := e.Value.(*cacheEntry); ent != nil {
			ent.res = res
		}
		return nil
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.ll.Remove(back)
		if ent, _ := back.Value.(*cacheEntry); ent != nil {
			delete(c.m, ent.key)
			evicted = append(evicted, ent.key)
		}
	}
	return evicted
}

func (c *cache) len() int { return c.ll.Len() }
