package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"relief/internal/exp"
	"relief/internal/workload"
)

// SweepSchema identifies the streamed sweep's NDJSON framing.
const SweepSchema = "relief-sweep/1"

// maxSweepCells bounds one sweep's grid so a typo'd spec cannot enqueue an
// unbounded amount of work.
const maxSweepCells = 4096

// SweepSpec is the POST /sweep grid: the cross product of the axis fields
// (mixes/contention levels × policies × topologies × bandwidth predictors),
// with the scalar knobs applied to every cell — the same vocabulary as
// internal/exp's sweep grids and relief-sim's flags. Cells deduplicate by
// content digest, each runs as if POSTed to /run individually (same cache,
// singleflight, and — in cluster mode — ring placement and peering), and
// the merged document is byte-identical to a single-process exp.Sweep dump
// of the same scenarios.
type SweepSpec struct {
	// Mixes lists explicit application mixes (e.g. "CGL"), run at the
	// contention implied by their size (Continuous below lifts them to the
	// continuous horizon).
	Mixes []string `json:"mixes,omitempty"`
	// Contention expands standard study levels ("low", "medium", "high",
	// "continuous") to their canonical mix sets (workload.Mixes).
	Contention []string `json:"contention,omitempty"`
	// Policies is the policy axis (default [RELIEF]).
	Policies []string `json:"policies,omitempty"`
	// Topologies is the interconnect axis (default [bus]).
	Topologies []string `json:"topologies,omitempty"`
	// BW is the bandwidth-predictor axis (default [max]).
	BW []string `json:"bw,omitempty"`
	// HorizonsMS is the periodic-horizon axis in milliseconds (default the
	// 50 ms horizon; requires PeriodMS). Horizons are excluded from the
	// checkpoint fork key, so the whole axis forks from one warmed snapshot
	// per (mix × policy × topology × bw) point instead of re-warming per
	// cell (docs/CHECKPOINT.md).
	HorizonsMS []float64 `json:"horizons_ms,omitempty"`

	// Scalar knobs, applied to every cell (see the /run request fields).
	Continuous   bool    `json:"continuous,omitempty"`
	PredictDM    bool    `json:"predict_dm,omitempty"`
	NoForwarding bool    `json:"no_forwarding,omitempty"`
	DetailedDRAM bool    `json:"detailed_dram,omitempty"`
	DRAMFCFS     bool    `json:"dram_fcfs,omitempty"`
	FaultRate    float64 `json:"fault_rate,omitempty"`
	FaultSeed    int64   `json:"fault_seed,omitempty"`
	PeriodMS     float64 `json:"period_ms,omitempty"`
	Metrics      bool    `json:"metrics,omitempty"`
	TimeoutMS    int64   `json:"timeout_ms,omitempty"`

	// Stream selects NDJSON streaming: a header line, one line per cell as
	// it lands (completion order), and a done trailer. The default is a
	// single merged JSON document.
	Stream bool `json:"stream,omitempty"`
	// Parallel bounds concurrently in-flight cells (0 = 2 × workers ×
	// fleet size, capped at 32).
	Parallel int `json:"parallel,omitempty"`
}

// sweepCell is one expanded, normalized grid point.
type sweepCell struct {
	Request Request
	Digest  string
}

// expand enumerates, normalizes, and digest-deduplicates the grid.
func (sp SweepSpec) expand() ([]sweepCell, error) {
	policies := sp.Policies
	if len(policies) == 0 {
		policies = []string{"RELIEF"}
	}
	topologies := sp.Topologies
	if len(topologies) == 0 {
		topologies = []string{""}
	}
	bws := sp.BW
	if len(bws) == 0 {
		bws = []string{""}
	}
	horizons := sp.HorizonsMS
	if len(horizons) == 0 {
		horizons = []float64{0}
	} else if sp.PeriodMS <= 0 {
		return nil, fmt.Errorf("serve: horizons_ms requires period_ms")
	}
	type mixPoint struct {
		mix        string
		continuous bool
	}
	var mixes []mixPoint
	for _, lvl := range sp.Contention {
		var c workload.Contention
		switch strings.ToLower(lvl) {
		case "low":
			c = workload.Low
		case "medium":
			c = workload.Medium
		case "high":
			c = workload.High
		case "continuous":
			c = workload.Continuous
		default:
			return nil, fmt.Errorf("serve: unknown contention level %q (want low, medium, high, or continuous)", lvl)
		}
		for _, mix := range workload.Mixes(c) {
			var sym strings.Builder
			for _, a := range mix {
				sym.WriteString(a.Sym())
			}
			mixes = append(mixes, mixPoint{mix: sym.String(), continuous: c == workload.Continuous})
		}
	}
	for _, m := range sp.Mixes {
		mixes = append(mixes, mixPoint{mix: m, continuous: sp.Continuous})
	}
	if len(mixes) == 0 {
		return nil, fmt.Errorf("serve: empty sweep grid (no mixes or contention levels)")
	}

	seen := make(map[string]bool)
	var cells []sweepCell
	for _, m := range mixes {
		for _, policy := range policies {
			for _, topo := range topologies {
				for _, bw := range bws {
					for _, h := range horizons {
						req := Request{
							Mix: m.mix, Policy: policy, Continuous: m.continuous,
							Topology: topo, BW: bw,
							PredictDM: sp.PredictDM, NoForwarding: sp.NoForwarding,
							DetailedDRAM: sp.DetailedDRAM, DRAMFCFS: sp.DRAMFCFS,
							FaultRate: sp.FaultRate, FaultSeed: sp.FaultSeed,
							PeriodMS: sp.PeriodMS, HorizonMS: h,
							Metrics: sp.Metrics, TimeoutMS: sp.TimeoutMS,
						}
						if err := req.Normalize(); err != nil {
							return nil, err
						}
						d := req.Digest()
						if seen[d] {
							continue
						}
						seen[d] = true
						cells = append(cells, sweepCell{Request: req, Digest: d})
						if len(cells) > maxSweepCells {
							return nil, fmt.Errorf("serve: sweep grid exceeds %d cells", maxSweepCells)
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// sweepHeader is the first NDJSON line of a streamed sweep.
type sweepHeader struct {
	Schema string `json:"schema"`
	Cells  int    `json:"cells"`
}

// sweepLine reports one completed cell (streamed in completion order).
type sweepLine struct {
	Index  int     `json:"index"`
	Digest string  `json:"digest"`
	Source string  `json:"source,omitempty"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// sweepTrailer ends the stream.
type sweepTrailer struct {
	Done   bool `json:"done"`
	OK     int  `json:"ok"`
	Errors int  `json:"errors"`
}

// handleSweep expands a grid spec and executes every cell through the
// /run decision ladder (cache → peer probe → owner forward → local
// simulation), so in cluster mode the grid fans out across the fleet by
// ring ownership and each scenario is computed once fleet-wide. Responses
// either stream per-cell NDJSON or return one merged document identical to
// a single-process sweep dump.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tr := s.beginTrace(w, r)
	defer s.finishTrace(tr, "/sweep")
	fail := func(status int, err error) {
		tr.SetResult("", "", status)
		s.writeError(w, status, err)
	}
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("decoding sweep spec: %w", err))
		return
	}
	cells, err := spec.expand()
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	cl := s.cluster
	s.mu.Unlock()
	if draining {
		s.setRetryAfter(w)
		fail(http.StatusServiceUnavailable, errDraining)
		return
	}

	fleet := 1
	if cl != nil {
		fleet += len(cl.peers)
	}
	parallel := spec.Parallel
	if parallel <= 0 {
		parallel = 2 * s.cfg.Workers * fleet
	}
	if parallel > 32 {
		parallel = 32
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}

	type outcome struct {
		index  int
		digest string
		source string
		res    *Result
		err    error
	}
	// Every cell records its spans (cache/disk/probe/forward/admission/run,
	// digest-attributed) into the sweep's one trace, so a slow sweep can be
	// decomposed cell by cell from GET /trace/{id}. Periodic cells also share
	// this sweep's checkpoint pool: scalar-knob variations of one warmed
	// simulation fork from a single snapshot instead of re-warming (ckpt.go).
	ctx := withTrace(r.Context(), tr)
	if spec.PeriodMS > 0 {
		ctx = withCkptPool(ctx, newCkptPool())
	}
	outCh := make(chan outcome)
	sem := make(chan struct{}, parallel)
	go func() {
		var wg sync.WaitGroup
		for i, c := range cells {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, c sweepCell) {
				defer wg.Done()
				defer func() { <-sem }()
				res, src, err := s.executeCell(ctx, c.Request, c.Digest)
				outCh <- outcome{index: i, digest: c.Digest, source: src, res: res, err: err}
			}(i, c)
		}
		wg.Wait()
		close(outCh)
	}()

	if spec.Stream {
		ssp := tr.StartSpan(stageStream)
		defer func() { s.endSpan(stageStream, ssp) }()
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w) // compact: one JSON value per line
		flusher, _ := w.(http.Flusher)
		flush := func() {
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err := enc.Encode(sweepHeader{Schema: SweepSchema, Cells: len(cells)}); err != nil {
			return // client gone; executeCell drains via ctx
		}
		flush()
		var ok, failed int
		for o := range outCh {
			line := sweepLine{Index: o.index, Digest: o.digest, Source: o.source}
			if o.err != nil {
				line.Error = o.err.Error()
				failed++
			} else {
				line.Result = o.res
				ok++
			}
			if err := enc.Encode(line); err != nil {
				// Client gone: keep draining outCh so the workers finish.
				continue
			}
			flush()
		}
		if err := enc.Encode(sweepTrailer{Done: true, OK: ok, Errors: failed}); err != nil {
			return
		}
		flush()
		tr.SetResult("", "", http.StatusOK)
		return
	}

	// Merged mode: wait for every cell, then emit the sweep document —
	// sorted by scenario key, byte-identical to exp.Sweep.DumpJSON over the
	// same scenarios regardless of which replica computed each cell.
	var merged []exp.Cell
	var firstErr error
	for o := range outCh {
		switch {
		case o.err != nil:
			if firstErr == nil {
				firstErr = fmt.Errorf("cell %d (%.12s): %w", o.index, o.digest, o.err)
			}
		case o.res != nil && o.res.Cell != nil:
			merged = append(merged, *o.res.Cell)
		}
	}
	if firstErr != nil {
		fail(errStatus(firstErr), firstErr)
		return
	}
	tr.SetResult("", "", http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := exp.WriteCells(w, merged); err != nil {
		// The status line is already written; the client sees a truncated
		// body and retries.
		return
	}
}
