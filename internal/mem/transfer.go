package mem

import "relief/internal/sim"

// DefaultChunkBytes is the granularity at which transfers are decomposed
// before being offered to resources. 4 KiB approximates a DMA burst train:
// small enough that concurrent streams share bandwidth fairly, large enough
// to keep event counts low.
const DefaultChunkBytes = 4096

// TransferResult describes a completed transfer for bandwidth bookkeeping.
type TransferResult struct {
	Bytes int64
	Start sim.Time
	End   sim.Time
}

// AchievedBandwidth returns the end-to-end bandwidth of the transfer in
// bytes per second.
func (t TransferResult) AchievedBandwidth() float64 {
	d := t.End - t.Start
	if d <= 0 {
		return 0
	}
	return float64(t.Bytes) / d.Seconds()
}

// StartTransfer moves n bytes through the ordered resource path, chunk by
// chunk, with store-and-forward pipelining: chunk i enters stage s+1 as soon
// as stage s finishes serving it, and chunk i+1 enters stage s at the same
// moment. setup is a fixed front-end latency (DMA programming, request
// routing) charged once before the first chunk. done receives the transfer's
// timing when the final chunk drains from the last stage.
//
// A transfer over an empty path (pure SPAD-local access) completes after
// setup alone.
func StartTransfer(k *sim.Kernel, path []Server, n int64, setup sim.Time, done func(TransferResult)) {
	start := k.Now()
	finish := func() {
		done(TransferResult{Bytes: n, Start: start, End: k.Now()})
	}
	if n <= 0 || len(path) == 0 {
		k.Schedule(setup, finish)
		return
	}
	nChunks := int((n + DefaultChunkBytes - 1) / DefaultChunkBytes)
	chunkSize := func(i int) int64 {
		if i == nChunks-1 {
			return n - int64(i)*DefaultChunkBytes
		}
		return DefaultChunkBytes
	}
	// advance moves chunk i out of stage s. When the last chunk leaves the
	// last stage the transfer is complete.
	var advance func(i, s int)
	advance = func(i, s int) {
		if s+1 < len(path) {
			path[s+1].Enqueue(chunkSize(i), func() { advance(i, s+1) })
		} else if i == nChunks-1 {
			finish()
		}
		if s == 0 && i+1 < nChunks {
			path[0].Enqueue(chunkSize(i+1), func() { advance(i+1, 0) })
		}
	}
	k.Schedule(setup, func() {
		path[0].Enqueue(chunkSize(0), func() { advance(0, 0) })
	})
}
