package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"relief/internal/exp"
)

// TestRetryAfterDerived pins the backpressure hint derivation (replacing the
// old hardcoded "1"/"5"): queue depth times the p50 service latency, clamped
// to [1, 30] seconds, with a 1-second floor on a cold server.
func TestRetryAfterDerived(t *testing.T) {
	m := newServiceMetrics(func() int { return 0 })

	if got := m.retryAfterSeconds(); got != 1 {
		t.Errorf("cold server (empty histogram): %d, want the 1s floor", got)
	}

	// 2-second median service latency, five queued requests → 10 seconds.
	for i := 0; i < 100; i++ {
		m.observeLatency(2 * time.Second)
	}
	m.queueDepth.Store(5)
	got := m.retryAfterSeconds()
	// The histogram is log-bucketed, so the p50 is the 2000 ms bucket's
	// representative value, not exactly 2000; accept the derived range.
	if got < 5 || got > 15 {
		t.Errorf("5 queued x ~2s p50: %d, want roughly 10 (in [5,15])", got)
	}

	// A deep backlog clamps to the 30-second ceiling.
	m.queueDepth.Store(1000)
	if got := m.retryAfterSeconds(); got != 30 {
		t.Errorf("deep backlog: %d, want the 30s ceiling", got)
	}

	// Zero depth with a warm histogram still answers the floor.
	m.queueDepth.Store(0)
	if got := m.retryAfterSeconds(); got != 1 {
		t.Errorf("idle server: %d, want the 1s floor", got)
	}
}

// TestPruneEqualModTimeDeterministic pins the prune tie-break: spill files
// with identical modification times are ordered by name (digest), so which
// entries survive an over-cap prune is a function of the directory's
// contents alone, not ReadDir enumeration order or timestamp granularity
// (coarse filesystem clocks routinely stamp a burst of spills identically).
func TestPruneEqualModTimeDeterministic(t *testing.T) {
	dir := t.TempDir()
	// Open unbounded so all five spills land on disk, then lower the cap:
	// store() prunes eagerly, which would otherwise evict under the fresh
	// write timestamps instead of the equal ones this test pins.
	d, _, err := openDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("%064x", i)
		keys = append(keys, key)
		d.store(key, &Result{Digest: key, Text: "x"})
	}
	stamp := time.Now().Add(-time.Hour)
	for _, k := range keys {
		if err := os.Chtimes(filepath.Join(dir, k+spillExt), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	d.mu.Lock()
	d.cap = 2
	kept, err := d.pruneLocked()
	d.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("pruneLocked kept %d, want cap 2", kept)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var survived []string
	for _, e := range entries {
		survived = append(survived, stripExt(e.Name()))
	}
	sort.Strings(survived)
	// Equal mtimes tie-break by ascending name, so the lexicographically
	// smallest digests survive — every process over this directory prunes
	// to the same survivors.
	want := []string{keys[0], keys[1]}
	if len(survived) != 2 || survived[0] != want[0] || survived[1] != want[1] {
		t.Errorf("survivors %v, want %v", survived, want)
	}
}

// TestRequestPeriodicNormalize pins the periodic request knobs: negatives
// rejected, horizon meaningless (and zeroed) without a period, and the
// period/horizon pair reaching the scenario and its digest.
func TestRequestPeriodicNormalize(t *testing.T) {
	bad := Request{Mix: "C", PeriodMS: -1}
	if err := bad.Normalize(); err == nil {
		t.Error("negative period accepted")
	}
	bad = Request{Mix: "C", PeriodMS: 5, HorizonMS: -1}
	if err := bad.Normalize(); err == nil {
		t.Error("negative horizon accepted")
	}

	orphan := Request{Mix: "C", HorizonMS: 20}
	if err := orphan.Normalize(); err != nil {
		t.Fatal(err)
	}
	plain := Request{Mix: "C"}
	if err := plain.Normalize(); err != nil {
		t.Fatal(err)
	}
	if orphan.Digest() != plain.Digest() {
		t.Error("horizon without period should normalize away (digest mismatch)")
	}

	periodic := Request{Mix: "C", PeriodMS: 5, HorizonMS: 20}
	if err := periodic.Normalize(); err != nil {
		t.Fatal(err)
	}
	if periodic.Digest() == plain.Digest() {
		t.Error("periodic request digests identically to the aperiodic one")
	}
	sc, err := periodic.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Period != msToTime(5) || sc.Horizon != msToTime(20) {
		t.Errorf("scenario period/horizon = %v/%v", sc.Period, sc.Horizon)
	}
}

// TestRunScenarioForksFromPool pins the sweep fork contract at the unit
// level: running a periodic scenario through a checkpoint pool yields the
// same summary document as a cold run (restore byte-identity), and the two
// horizons of one fork group share a single warmed entry.
func TestRunScenarioForksFromPool(t *testing.T) {
	req := Request{Mix: "CG", PeriodMS: 5, HorizonMS: 20}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	sc, err := req.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	pool := newCkptPool()
	ctx := withCkptPool(context.Background(), pool)

	for _, horizonMS := range []float64{15, 20} {
		fork := sc
		fork.Horizon = msToTime(horizonMS)
		warm, err := runScenario(ctx, fork)
		if err != nil {
			t.Fatalf("pooled run (horizon %vms): %v", horizonMS, err)
		}
		cold, err := exp.RunContext(context.Background(), fork)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Stats.Makespan != cold.Stats.Makespan || warm.Stats.NodesDone != cold.Stats.NodesDone ||
			warm.Stats.Forwards != cold.Stats.Forwards {
			t.Errorf("horizon %vms: forked run diverged from cold (makespan %v vs %v, nodes %d vs %d)",
				horizonMS, warm.Stats.Makespan, cold.Stats.Makespan, warm.Stats.NodesDone, cold.Stats.NodesDone)
		}
	}
	if n := len(pool.entries); n != 1 {
		t.Errorf("pool warmed %d fork groups, want 1 (horizons share a fork key)", n)
	}
}

// TestSweepPeriodicForkPool drives the full POST /sweep path with a horizon
// axis: the merged document must carry one cell per horizon, and each cell's
// summary must be byte-identical to an interactive /run of the same request
// on a pool-free server (forking is unobservable in results).
func TestSweepPeriodicForkPool(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"mixes":["CG"],"period_ms":5,"horizons_ms":[15,20]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status=%d body=%s", resp.StatusCode, body)
	}
	var cells []exp.Cell
	if err := json.Unmarshal(body, &cells); err != nil {
		t.Fatalf("merged sweep document: %v", err)
	}
	if len(cells) != 2 {
		t.Fatalf("sweep produced %d cells, want 2 (one per horizon)", len(cells))
	}

	// Cold reference: a separate server answers /run without any pool.
	cold := New(Config{Workers: 2})
	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	for _, horizon := range []int{15, 20} {
		reqBody := fmt.Sprintf(`{"mix":"CG","period_ms":5,"horizon_ms":%d}`, horizon)
		resp, b := post(t, tsCold.URL, reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold run: status=%d body=%s", resp.StatusCode, b)
		}
		_, coldRes := decodeEnvelope(t, b)

		resp, b = post(t, ts.URL, reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep-server run: status=%d body=%s", resp.StatusCode, b)
		}
		src, forkRes := decodeEnvelope(t, b)
		if src != srcCache {
			t.Errorf("horizon %d: post-sweep /run source %q, want cache (sweep populated it)", horizon, src)
		}
		if forkRes.Text != coldRes.Text {
			t.Errorf("horizon %d: forked cell text diverged from cold run:\nfork:\n%s\ncold:\n%s",
				horizon, forkRes.Text, coldRes.Text)
		}
	}
}
