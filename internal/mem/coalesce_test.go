package mem

import (
	"fmt"
	"math/rand"
	"testing"

	"relief/internal/sim"
)

// withCoalescing runs f under the given coalescing mode and restores the
// previous mode afterwards.
func withCoalescing(enabled bool, f func()) {
	prev := coalesceEnabled
	coalesceEnabled = enabled
	defer func() { coalesceEnabled = prev }()
	f()
}

// coalesceScenario builds one randomized two-transfer contention scenario
// and renders every externally observable quantity — completion results,
// per-resource counters, union occupancy, and the counters sampled at the
// moment the second stream arrives — into a canonical string. Claims on
// and off must render identically.
func coalesceScenario(t *testing.T, rng *rand.Rand) string {
	k := sim.NewKernel()
	bws := []float64{1 * GB, 6.4 * GB, 14.9 * GB}
	shape := rng.Intn(4)
	occ := NewOccupancy(k)
	var a, b *Resource
	var pathA, pathB []Server
	switch shape {
	case 0: // single shared stage, watched (bus-to-bus forward)
		a = NewResource(k, "bus", bws[rng.Intn(len(bws))])
		a.SetOccupancy(occ)
		pathA = []Server{a}
		pathB = []Server{a}
	case 1: // dram->bus, second stream takes the reverse path
		a = NewResource(k, "dram", bws[rng.Intn(len(bws))])
		b = NewResource(k, "bus", bws[rng.Intn(len(bws))])
		b.SetOccupancy(occ)
		pathA = []Server{a, b}
		pathB = []Server{b, a}
	case 2: // equal-bandwidth crossbar ports, both watched
		bw := bws[rng.Intn(len(bws))]
		a = NewResource(k, "portA", bw)
		b = NewResource(k, "portB", bw)
		a.SetOccupancy(occ)
		b.SetOccupancy(occ)
		pathA = []Server{a, b}
		pathB = []Server{a, b}
	default: // disjoint resources sharing the occupancy tracker
		a = NewResource(k, "portA", bws[rng.Intn(len(bws))])
		b = NewResource(k, "portB", bws[rng.Intn(len(bws))])
		a.SetOccupancy(occ)
		b.SetOccupancy(occ)
		pathA = []Server{a}
		pathB = []Server{b}
	}
	bytesA := int64(1 + rng.Intn(64*DefaultChunkBytes))
	bytesB := int64(1 + rng.Intn(64*DefaultChunkBytes))
	delayB := sim.Time(rng.Int63n(int64(pathA[0].ServiceTime(bytesA) * 2)))
	setup := sim.Time(rng.Int63n(3)) * sim.Microsecond

	out := ""
	record := func(tag string, tr TransferResult) {
		out += fmt.Sprintf("%s bytes=%d start=%d end=%d\n", tag, tr.Bytes, int64(tr.Start), int64(tr.End))
	}
	StartTransfer(k, pathA, bytesA, setup, func(tr TransferResult) { record("A", tr) })
	k.Schedule(delayB, func() {
		// Sample mid-flight state the instant the interloper arrives: with
		// a claim active these route through the analytic stage views.
		out += fmt.Sprintf("@B t=%d a:busy=%d bytes=%d q=%d", int64(k.Now()),
			int64(a.BusyTime()), a.BytesServed(), a.QueueLen())
		if b != nil {
			out += fmt.Sprintf(" b:busy=%d bytes=%d q=%d", int64(b.BusyTime()), b.BytesServed(), b.QueueLen())
		}
		out += fmt.Sprintf(" occ=%d\n", int64(occ.Busy()))
		StartTransfer(k, pathB, bytesB, 0, func(tr TransferResult) { record("B", tr) })
	})
	k.Run()
	out += fmt.Sprintf("a:busy=%d bytes=%d", int64(a.BusyTime()), a.BytesServed())
	if b != nil {
		out += fmt.Sprintf(" b:busy=%d bytes=%d", int64(b.BusyTime()), b.BytesServed())
	}
	out += fmt.Sprintf(" occ=%d end=%d\n", int64(occ.Busy()), int64(k.Now()))
	return out
}

// TestCoalesceMatchesChunkwiseReference is the claim machinery's oracle:
// across randomized paths, sizes, bandwidths and interrupt times, a claimed
// transfer interrupted by a second stream must leave every observable —
// completion times, busy accounting, bytes, queue depths, union occupancy —
// bit-identical to the chunk-by-chunk reference implementation.
func TestCoalesceMatchesChunkwiseReference(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		var ref, opt string
		withCoalescing(false, func() { ref = coalesceScenario(t, rand.New(rand.NewSource(seed))) })
		withCoalescing(true, func() { opt = coalesceScenario(t, rand.New(rand.NewSource(seed))) })
		if ref != opt {
			t.Fatalf("seed %d: coalesced run diverged from chunk-wise reference\nreference:\n%s\ncoalesced:\n%s", seed, ref, opt)
		}
	}
}

// TestCoalesceFairnessTwoStreams: when a second stream joins mid-transfer,
// the claim materializes and both streams share bandwidth chunk-for-chunk
// exactly as the reference implementation: identical completion times, and
// neither stream starved.
func TestCoalesceFairnessTwoStreams(t *testing.T) {
	run := func() (ends [2]sim.Time) {
		k := sim.NewKernel()
		r := NewResource(k, "dram", 1*GB)
		const bytes = 32 * DefaultChunkBytes
		StartTransfer(k, []Server{r}, bytes, 0, func(tr TransferResult) { ends[0] = tr.End })
		// Join halfway through the first transfer.
		k.Schedule(r.ServiceTime(bytes)/2, func() {
			StartTransfer(k, []Server{r}, bytes, 0, func(tr TransferResult) { ends[1] = tr.End })
		})
		k.Run()
		return ends
	}
	var ref, opt [2]sim.Time
	withCoalescing(false, func() { ref = run() })
	withCoalescing(true, func() { opt = run() })
	if ref != opt {
		t.Fatalf("completion times with coalescing %v differ from reference %v", opt, ref)
	}
	// Chunk-granularity fairness: after the join the streams alternate, so
	// the first stream cannot finish before serving its own 32 chunks plus
	// the ~16 interleaved chunks of the joiner; and the resource never
	// idles, so the last stream finishes exactly at the total-work time.
	k := sim.NewKernel()
	r := NewResource(k, "x", 1*GB)
	const bytes = 32 * DefaultChunkBytes
	chunk := r.ServiceTime(DefaultChunkBytes)
	if fair := r.ServiceTime(bytes + bytes/2); opt[0] < fair-2*chunk {
		t.Fatalf("first stream finished at %v, before fair-share bound %v — joiner starved", opt[0], fair-2*chunk)
	}
	if total := r.ServiceTime(2 * bytes); opt[1] != total {
		t.Fatalf("last stream finished at %v, want work-conserving total %v", opt[1], total)
	}
}

// TestCoalesceSoloTransferEventCount: an uncontended transfer must cost a
// constant number of events, not two per chunk per stage.
func TestCoalesceSoloTransferEventCount(t *testing.T) {
	k := sim.NewKernel()
	a := NewResource(k, "dram", 6.4*GB)
	b := NewResource(k, "bus", 14.9*GB)
	const bytes = 256 * DefaultChunkBytes
	var res TransferResult
	StartTransfer(k, []Server{a, b}, bytes, sim.Microsecond, func(tr TransferResult) { res = tr })
	k.Run()
	if res.Bytes != bytes {
		t.Fatalf("transfer moved %d bytes, want %d", res.Bytes, bytes)
	}
	if fired := k.Fired(); fired > 4 {
		t.Fatalf("solo transfer fired %d events; the claim path should fire O(1)", fired)
	}
	// And the analytic end time must equal the chunk-wise pipeline formula:
	// serial time on the bottleneck plus one chunk through the fast stage.
	want := sim.Microsecond + a.ServiceTime(bytes) + b.ServiceTime(DefaultChunkBytes)
	if res.End != want {
		t.Fatalf("claimed transfer ended at %v, want %v", res.End, want)
	}
}

// TestCoalesceHorizonQueries: stopping the kernel mid-claim (continuous
// workloads stop at a horizon) must report the same busy accounting as the
// chunk-wise reference at that instant.
func TestCoalesceHorizonQueries(t *testing.T) {
	run := func() string {
		k := sim.NewKernel()
		a := NewResource(k, "dram", 1*GB)
		b := NewResource(k, "bus", 2*GB)
		b.SetOccupancy(occFor(k))
		StartTransfer(k, []Server{a, b}, 40*DefaultChunkBytes, 0, func(TransferResult) {})
		limit := a.ServiceTime(40*DefaultChunkBytes) / 3
		k.RunUntil(limit)
		return fmt.Sprintf("a=%d b=%d", int64(a.BusyTime()), int64(b.BusyTime()))
	}
	var ref, opt string
	withCoalescing(false, func() { ref = run() })
	withCoalescing(true, func() { opt = run() })
	if ref != opt {
		t.Fatalf("horizon-stop busy accounting diverged: reference %s, coalesced %s", ref, opt)
	}
}

func occFor(k *sim.Kernel) *Occupancy { return NewOccupancy(k) }
