// Rnnserving models a speech/translation serving scenario: GRU and LSTM
// inference streams run continuously against 7 ms deadlines while a camera
// pipeline (Canny) shares the SoC. This is the paper's continuous
// contention setup, where LAX's negative-laxity de-prioritization starves
// slack-poor applications and RELIEF keeps every stream progressing.
//
// A functional GRU/LSTM inference (internal/kernels) runs first so the
// example produces real numbers, then the scheduling comparison follows.
package main

import (
	"fmt"
	"log"
	"math"

	"relief"
	"relief/internal/kernels"
)

func main() {
	// Functional inference: batch 4, hidden 8, sequence length 8.
	const batch, hidden, seqLen = 4, 8, 8
	gw := &kernels.GRUWeights{
		Wz: kernels.RandMat(hidden, hidden, 1, 0.4), Uz: kernels.RandMat(hidden, hidden, 2, 0.4),
		Wr: kernels.RandMat(hidden, hidden, 3, 0.4), Ur: kernels.RandMat(hidden, hidden, 4, 0.4),
		Wh: kernels.RandMat(hidden, hidden, 5, 0.4), Uh: kernels.RandMat(hidden, hidden, 6, 0.4),
	}
	var seq []*kernels.Mat
	for t := 0; t < seqLen; t++ {
		seq = append(seq, kernels.RandMat(batch, hidden, uint64(100+t), 1))
	}
	hFinal := kernels.RunGRU(gw, seq, kernels.NewMat(batch, hidden))
	var norm float64
	for _, v := range hFinal.Data {
		norm += float64(v) * float64(v)
	}
	fmt.Printf("GRU inference: final hidden-state L2 norm %.4f (batch %d, hidden %d, %d steps)\n\n",
		math.Sqrt(norm), batch, hidden, seqLen)

	// Scheduling: continuous GRU + LSTM + Canny for 50 ms.
	fmt.Println("Continuous serving (GRU + LSTM + Canny, 50 ms):")
	fmt.Printf("%-12s %22s %22s %22s\n", "policy", "gru", "lstm", "canny")
	for _, policy := range []string{"FCFS", "LAX", "HetSched", "RELIEF"} {
		sys := relief.NewSystem(relief.Config{Policy: policy})
		for _, app := range []string{"gru", "lstm", "canny"} {
			app := app
			err := sys.SubmitLoop(func() *relief.DAG {
				d, err := relief.BuildWorkload(app)
				if err != nil {
					panic(err)
				}
				return d
			}, 0)
			if err != nil {
				log.Fatal(err)
			}
		}
		rep := sys.RunFor(50 * relief.Millisecond)
		row := fmt.Sprintf("%-12s", policy)
		for _, app := range []string{"gru", "lstm", "canny"} {
			a := rep.Apps[app]
			slow := "starved"
			if !math.IsInf(a.Slowdown, 1) {
				slow = fmt.Sprintf("slowdown %.2f", a.Slowdown)
			}
			row += fmt.Sprintf(" %3d done, %-14s", a.Iterations, slow)
		}
		fmt.Println(row)
	}
}
