package workload

import (
	"math"
	"testing"

	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/sim"
)

func TestAppMetadata(t *testing.T) {
	if NumApps != 5 {
		t.Fatalf("NumApps = %d, want 5", NumApps)
	}
	syms := map[App]string{Canny: "C", Deblur: "D", GRU: "G", Harris: "H", LSTM: "L"}
	for a, s := range syms {
		if a.Sym() != s {
			t.Errorf("%v.Sym() = %q, want %q", a, a.Sym(), s)
		}
		back, err := BySym(s[0])
		if err != nil || back != a {
			t.Errorf("BySym(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := BySym('Z'); err == nil {
		t.Fatal("BySym must reject unknown symbols")
	}
	// Table V deadlines.
	for _, a := range []App{Canny, Deblur, Harris} {
		if a.Deadline() != ms(16.6) {
			t.Errorf("%v deadline = %v, want 16.6ms", a, a.Deadline())
		}
	}
	for _, a := range []App{GRU, LSTM} {
		if a.Deadline() != 7*sim.Millisecond {
			t.Errorf("%v deadline = %v, want 7ms", a, a.Deadline())
		}
	}
}

// TestNodeCounts pins the reconstructed DAG shapes.
func TestNodeCounts(t *testing.T) {
	want := map[App]int{Canny: 13, Deblur: 22, GRU: 114, Harris: 22, LSTM: 134}
	for a, n := range want {
		d := MustBuild(a)
		if len(d.Nodes) != n {
			t.Errorf("%v has %d nodes, want %d", a, len(d.Nodes), n)
		}
	}
}

// TestComputeTotalsMatchPaper validates the per-application compute-time
// calibration against paper Table II (application rows, µs).
func TestComputeTotalsMatchPaper(t *testing.T) {
	want := map[App]float64{
		Canny:  3539.37,
		Deblur: 15610.58,
		GRU:    1249.31,
		Harris: 6157.30,
		LSTM:   1470.02,
	}
	for a, wantUS := range want {
		d := MustBuild(a)
		var total float64
		for _, n := range d.Nodes {
			total += n.Compute.Microseconds()
		}
		relErr := math.Abs(total-wantUS) / wantUS
		if relErr > 0.005 {
			t.Errorf("%v compute total %.2fus, paper %.2fus (err %.2f%%)", a, total, wantUS, 100*relErr)
		}
	}
}

// TestRNNsUseOnlyElemMatrix: the paper's key structural property — GRU and
// LSTM map exclusively to the elem-matrix accelerator, so all their
// forwards materialise as colocations.
func TestRNNsUseOnlyElemMatrix(t *testing.T) {
	for _, a := range []App{GRU, LSTM} {
		for _, n := range MustBuild(a).Nodes {
			if n.Kind != accel.ElemMatrix {
				t.Fatalf("%v node %s uses %v", a, n.Name, n.Kind)
			}
		}
	}
}

// TestVisionStartsWithISP: every vision application is fed by the ISP then
// grayscale (paper §II-A).
func TestVisionStartsWithISP(t *testing.T) {
	for _, a := range []App{Canny, Deblur, Harris} {
		d := MustBuild(a)
		roots := d.Roots()
		if len(roots) != 1 || roots[0].Kind != accel.ISP {
			t.Fatalf("%v must have a single ISP root", a)
		}
		if roots[0].ExtraInputBytes == 0 {
			t.Fatalf("%v ISP root must load a raw frame from main memory", a)
		}
		if len(roots[0].Children) < 1 || roots[0].Children[0].Kind != accel.Grayscale {
			t.Fatalf("%v ISP must feed grayscale", a)
		}
	}
}

func TestDAGsAreValid(t *testing.T) {
	for a := App(0); a < NumApps; a++ {
		d := MustBuild(a)
		if _, err := d.TopoOrder(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(d.Leaves()) == 0 || len(d.Roots()) == 0 {
			t.Fatalf("%v has no roots or leaves", a)
		}
		for _, n := range d.Nodes {
			if n.Compute <= 0 {
				t.Fatalf("%v node %s has no compute time", a, n.Name)
			}
			if n.OutputBytes <= 0 {
				t.Fatalf("%v node %s has no output", a, n.Name)
			}
			if n.IsRoot() && n.ExtraInputBytes == 0 {
				t.Fatalf("%v root %s loads nothing from memory", a, n.Name)
			}
		}
	}
}

// TestBuildReturnsFreshInstances: continuous contention resubmits via
// Build, which must never share node state.
func TestBuildReturnsFreshInstances(t *testing.T) {
	a := MustBuild(GRU)
	b := MustBuild(GRU)
	if a == b || a.Nodes[0] == b.Nodes[0] {
		t.Fatal("Build must return independent DAG instances")
	}
	a.Nodes[0].CompletedParents = 99
	if b.Nodes[0].CompletedParents != 0 {
		t.Fatal("DAG instances share node state")
	}
}

// TestRNNDependencyDepth: the RNN DAGs are dominated by long dependency
// chains (paper: linear chains up to 9 nodes per step, serialised across
// timesteps), which is what makes deadline-oblivious interleaving forfeit
// forwarding.
func TestRNNDependencyDepth(t *testing.T) {
	for _, a := range []App{GRU, LSTM} {
		d := MustBuild(a)
		if depth := dagDepth(d); depth < 9*4 {
			t.Fatalf("%v dependency depth = %d, want >= 36 (chained timesteps)", a, depth)
		}
	}
}

func dagDepth(d *graph.DAG) int {
	order, err := d.TopoOrder()
	if err != nil {
		return 0
	}
	depth := make(map[*graph.Node]int)
	best := 0
	for _, n := range order {
		dn := 1
		for _, p := range n.Parents {
			if depth[p]+1 > dn {
				dn = depth[p] + 1
			}
		}
		depth[n] = dn
		if dn > best {
			best = dn
		}
	}
	return best
}

func TestMixes(t *testing.T) {
	if got := len(Mixes(Low)); got != 5 {
		t.Errorf("low contention mixes = %d, want 5", got)
	}
	if got := len(Mixes(Medium)); got != 10 {
		t.Errorf("medium contention mixes = %d, want 10 (all pairs)", got)
	}
	if got := len(Mixes(High)); got != 10 {
		t.Errorf("high contention mixes = %d, want 10 (all triples)", got)
	}
	if got := len(Mixes(Continuous)); got != 10 {
		t.Errorf("continuous contention mixes = %d, want 10", got)
	}
	// Paper order: first high mix is CDG, last GHL.
	high := Mixes(High)
	if MixName(high[0]) != "CDG" || MixName(high[9]) != "GHL" {
		t.Errorf("mix order wrong: first %s last %s", MixName(high[0]), MixName(high[9]))
	}
}

func TestMixNameAndParse(t *testing.T) {
	mix := []App{Canny, GRU, LSTM}
	if MixName(mix) != "CGL" {
		t.Fatalf("MixName = %q, want CGL", MixName(mix))
	}
	back, err := ParseMix("CGL")
	if err != nil || len(back) != 3 || back[0] != Canny || back[1] != GRU || back[2] != LSTM {
		t.Fatalf("ParseMix = %v, %v", back, err)
	}
	if _, err := ParseMix("CXZ"); err == nil {
		t.Fatal("ParseMix must reject unknown symbols")
	}
}

func TestContentionString(t *testing.T) {
	for c, want := range map[Contention]string{
		Low: "low", Medium: "medium", High: "high", Continuous: "continuous",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// TestEdgeBytesConsistency: every edge carries the producer's output size
// unless explicitly overridden.
func TestEdgeBytesConsistency(t *testing.T) {
	for a := App(0); a < NumApps; a++ {
		for _, n := range MustBuild(a).Nodes {
			for i, p := range n.Parents {
				if n.EdgeInBytes[i] != p.OutputBytes {
					t.Fatalf("%v edge %s->%s carries %d bytes, producer outputs %d",
						a, p.Name, n.Name, n.EdgeInBytes[i], p.OutputBytes)
				}
			}
		}
	}
}
