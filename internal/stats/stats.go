// Package stats collects the metrics the paper's evaluation reports:
// forwards and colocations per edge (Fig. 4), data-movement breakdown
// (Fig. 5), memory energy (Fig. 6), accelerator occupancy (Fig. 7), node
// and DAG deadlines met (Figs. 8-10), slowdown (Figs. 9-10), predictor
// accuracy (Table VIII), scheduler latency (Fig. 12), and interconnect
// occupancy (Fig. 13).
package stats

import (
	"math"
	"sort"

	"relief/internal/sim"
)

// Memory energy constants (J/byte). Absolute values are first-order
// (LPDDR5 core+IO ≈ 5 pJ/bit; SRAM scratchpad access ≈ 0.15 pJ/bit); the
// paper's Fig. 6 is normalised to LAX, so only the DRAM:SPAD ratio and the
// traffic counts shape the result.
const (
	EnergyDRAMPerByte = 40e-12
	EnergySPADPerByte = 1.2e-12
)

// EdgeKind classifies how a producer/consumer edge materialised.
type EdgeKind uint8

// Edge materialisations.
const (
	EdgeDRAM       EdgeKind = iota // store to + load from main memory
	EdgeForward                    // SPAD-to-SPAD transfer
	EdgeColocation                 // consumer ran on the producer's accelerator
)

// AppStats aggregates per-application results within a scenario.
type AppStats struct {
	App      string
	Sym      string
	Deadline sim.Time

	Iterations   int // finished DAG instances
	DeadlinesMet int // finished DAG instances that met their deadline
	Runtimes     []sim.Time

	NodesDone        int
	NodesMetDeadline int

	Edges       int
	Forwards    int
	Colocations int

	// Aborted counts DAG instances cancelled by the recovery machinery
	// (fault injection only; see Stats.Faults).
	Aborted int
}

// Slowdown is the ratio of the application's runtime to its deadline
// (paper Fig. 9a). Under continuous contention it is the geometric mean
// over finished iterations; +Inf indicates starvation (no finished
// iterations). Callers that aggregate or serialize slowdowns must not
// feed the +Inf sentinel into means or JSON (encoding/json rejects
// non-finite floats): use FiniteSlowdown / Starved and skip or flag
// starved applications explicitly.
func (a *AppStats) Slowdown() float64 {
	if a.Starved() {
		return math.Inf(1)
	}
	logSum := 0.0
	for _, r := range a.Runtimes {
		s := float64(r) / float64(a.Deadline)
		if s <= 0 {
			s = 1e-9
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(a.Runtimes)))
}

// Starved reports whether the application finished no iterations, i.e. its
// slowdown is undefined (+Inf).
func (a *AppStats) Starved() bool { return len(a.Runtimes) == 0 }

// FiniteSlowdown returns the application's slowdown and true, or (0,
// false) for a starved application — the aggregation-safe accessor:
// the boolean forces call sites to decide how starvation is represented
// instead of silently propagating +Inf into geomeans and JSON exports.
func (a *AppStats) FiniteSlowdown() (float64, bool) {
	if a.Starved() {
		return 0, false
	}
	return a.Slowdown(), true
}

// Stats is the per-scenario metric sink.
type Stats struct {
	Apps map[string]*AppStats

	// Edge materialisation counts.
	Edges       int
	Forwards    int
	Colocations int

	// Traffic in bytes.
	BaselineBytes  int64 // all loads and stores via main memory (Fig. 5 denominator)
	DRAMReadBytes  int64
	DRAMWriteBytes int64
	SpadXferBytes  int64 // SPAD-to-SPAD forwards
	SpadDMABytes   int64 // scratchpad bytes touched by DMA (energy accounting)

	// Deadlines.
	NodesDone        int
	NodesMetDeadline int

	// Accelerator compute busy time, summed over instances.
	ComputeBusy sim.Time

	// Makespan: initiation of all applications to completion of the last
	// (or the continuous-contention horizon).
	Makespan sim.Time

	// Interconnect occupancy at end of run (0..1).
	InterconnectOccupancy float64

	// Simulator cost counters (not simulation results): events the kernel
	// dispatched for this run and Event structs it heap-allocated. These
	// feed the benchmark harness and deliberately stay out of the golden
	// result digest.
	EventsFired uint64
	EventAllocs uint64

	// Scheduler latency samples (modeled microcontroller cost per
	// ready-queue operation).
	SchedCosts []sim.Time

	// Predictor error accounting.
	PredErr PredErr

	// Fault injection and recovery accounting (all zero unless a
	// fault.Plan is installed; see docs/FAULTS.md). These fields stay out
	// of the golden result digest.
	Faults FaultStats
}

// FaultStats tallies injected faults and the recovery work they caused.
type FaultStats struct {
	// Injected faults, by class.
	Hangs          int // tasks that never signalled completion
	Slowdowns      int // tasks with degraded compute time
	TransientFails int // tasks whose result failed its completion check
	InstanceDeaths int // accelerator instances permanently lost
	DMAStalls      int // transfers hit by a front-end stall
	DMACorruptions int // transfers delivered with a CRC failure
	DRAMErrors     int // main-memory requests hit by an error burst

	// Recovery work.
	WatchdogFires       int   // watchdog expirations that triggered recovery
	Retries             int   // task re-dispatch attempts
	InvalidatedForwards int   // forwarded/colocated inputs forced back to DRAM
	DAGsAborted         int   // DAG instances cancelled
	RetriedDMABytes     int64 // bytes re-transferred after corruption
	RecoveryDRAMBytes   int64 // extra write-back traffic to preserve inputs for retries

	// MTTR accounting: RecoveryTime sums first-failure-to-completion
	// latency over the Recoveries nodes that eventually succeeded.
	RecoveryTime sim.Time
	Recoveries   int
}

// Any reports whether any fault was injected.
func (f *FaultStats) Any() bool {
	return f.Hangs > 0 || f.Slowdowns > 0 || f.TransientFails > 0 ||
		f.InstanceDeaths > 0 || f.DMAStalls > 0 || f.DMACorruptions > 0 ||
		f.DRAMErrors > 0
}

// MTTR returns the mean time from a node's first failure to its eventual
// successful completion (0 if nothing recovered).
func (f *FaultStats) MTTR() sim.Time {
	if f.Recoveries == 0 {
		return 0
	}
	return f.RecoveryTime / sim.Time(f.Recoveries)
}

// PredErr accumulates signed relative errors for Table VIII.
type PredErr struct {
	ComputeN         int
	ComputeSumSigned float64
	ComputeSumAbs    float64
	DMBytesN         int
	DMBytesSumSigned float64
	DMBytesSumAbs    float64
	MemTimeN         int
	MemTimeSumSigned float64
	MemTimeSumAbs    float64
	BWN              int
	BWSumSigned      float64
	BWSumAbs         float64
}

// Add records a signed relative error sample (predicted vs actual).
func addErr(n *int, sumS, sumA *float64, pred, actual float64) {
	if actual == 0 {
		return
	}
	e := (pred - actual) / actual
	*n++
	*sumS += e
	*sumA += math.Abs(e)
}

// ObserveCompute records a compute-time prediction sample.
func (p *PredErr) ObserveCompute(pred, actual sim.Time) {
	addErr(&p.ComputeN, &p.ComputeSumSigned, &p.ComputeSumAbs, float64(pred), float64(actual))
}

// ObserveDMBytes records a data-movement-bytes prediction sample.
func (p *PredErr) ObserveDMBytes(pred, actual int64) {
	addErr(&p.DMBytesN, &p.DMBytesSumSigned, &p.DMBytesSumAbs, float64(pred), float64(actual))
}

// ObserveMemTime records a memory-access-time prediction sample.
func (p *PredErr) ObserveMemTime(pred, actual sim.Time) {
	addErr(&p.MemTimeN, &p.MemTimeSumSigned, &p.MemTimeSumAbs, float64(pred), float64(actual))
}

// ObserveBW records a bandwidth prediction sample (predicted at insertion
// vs achieved by the node's main-memory transfers).
func (p *PredErr) ObserveBW(pred, actual float64) {
	addErr(&p.BWN, &p.BWSumSigned, &p.BWSumAbs, pred, actual)
}

// MeanSigned returns the mean signed relative errors in percent
// (compute, dmBytes, memTime).
func (p *PredErr) MeanSigned() (compute, dmBytes, memTime float64) {
	return meanPct(p.ComputeN, p.ComputeSumSigned),
		meanPct(p.DMBytesN, p.DMBytesSumSigned),
		meanPct(p.MemTimeN, p.MemTimeSumSigned)
}

// MeanSignedBW returns the mean signed bandwidth prediction error in
// percent (positive = overestimation of achieved bandwidth).
func (p *PredErr) MeanSignedBW() float64 { return meanPct(p.BWN, p.BWSumSigned) }

func meanPct(n int, s float64) float64 {
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// New returns an empty metric sink.
func New() *Stats {
	return &Stats{Apps: make(map[string]*AppStats)}
}

// App returns (creating if needed) the per-application bucket.
func (s *Stats) App(app, sym string, deadline sim.Time) *AppStats {
	a, ok := s.Apps[app]
	if !ok {
		a = &AppStats{App: app, Sym: sym, Deadline: deadline}
		s.Apps[app] = a
	}
	return a
}

// RecordEdge classifies one producer/consumer edge.
func (s *Stats) RecordEdge(app *AppStats, kind EdgeKind) {
	s.Edges++
	app.Edges++
	switch kind {
	case EdgeForward:
		s.Forwards++
		app.Forwards++
	case EdgeColocation:
		s.Colocations++
		app.Colocations++
	}
}

// ForwardsPerEdge returns forwards/edges and colocations/edges in percent
// (Fig. 4 metric).
func (s *Stats) ForwardsPerEdge() (fwd, col float64) {
	if s.Edges == 0 {
		return 0, 0
	}
	return 100 * float64(s.Forwards) / float64(s.Edges),
		100 * float64(s.Colocations) / float64(s.Edges)
}

// DataMovement returns the Fig. 5 breakdown in percent of the
// all-through-DRAM baseline: main-memory traffic, SPAD-to-SPAD traffic.
// The remainder (to 100%) is traffic eliminated by colocation and skipped
// write-backs.
func (s *Stats) DataMovement() (dramPct, spadPct float64) {
	if s.BaselineBytes == 0 {
		return 0, 0
	}
	b := float64(s.BaselineBytes)
	return 100 * float64(s.DRAMReadBytes+s.DRAMWriteBytes) / b,
		100 * float64(s.SpadXferBytes) / b
}

// MemoryEnergy returns (dramJoules, spadJoules).
func (s *Stats) MemoryEnergy() (dram, spad float64) {
	return float64(s.DRAMReadBytes+s.DRAMWriteBytes) * EnergyDRAMPerByte,
		float64(s.SpadDMABytes) * EnergySPADPerByte
}

// Occupancy returns the accelerator occupancy: total compute busy time over
// makespan (Fig. 7; can exceed 1 with accelerator-level parallelism).
func (s *Stats) Occupancy() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return float64(s.ComputeBusy) / float64(s.Makespan)
}

// NodeDeadlinePct returns the percentage of finished nodes that met their
// deadline (Fig. 8).
func (s *Stats) NodeDeadlinePct() float64 {
	if s.NodesDone == 0 {
		return 0
	}
	return 100 * float64(s.NodesMetDeadline) / float64(s.NodesDone)
}

// DAGDeadlinePct returns the percentage of finished DAG instances that met
// their deadline (Figs. 9b, 10b).
func (s *Stats) DAGDeadlinePct() float64 {
	total, met := 0, 0
	for _, a := range s.Apps {
		total += a.Iterations
		met += a.DeadlinesMet
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(met) / float64(total)
}

// SchedLatency returns the average and maximum modeled scheduler cost
// (Fig. 12: average and tail latency).
func (s *Stats) SchedLatency() (avg, tail sim.Time) {
	if len(s.SchedCosts) == 0 {
		return 0, 0
	}
	var sum sim.Time
	for _, c := range s.SchedCosts {
		sum += c
		if c > tail {
			tail = c
		}
	}
	return sum / sim.Time(len(s.SchedCosts)), tail
}

// SlowdownGeomean returns the geometric mean of per-application slowdowns
// across the scenario (the Fig. 10a headline number) together with the
// count of starved applications that were excluded. A single starved
// application would otherwise turn the whole scenario's geomean into +Inf
// and poison any table or JSON document built from it; excluding them and
// reporting the count keeps the aggregate finite and the starvation
// visible. With no finished application at all the geomean is 0 (and
// starved equals the application count).
func (s *Stats) SlowdownGeomean() (geo float64, starved int) {
	names := make([]string, 0, len(s.Apps))
	for name := range s.Apps {
		names = append(names, name)
	}
	sort.Strings(names)
	logSum, n := 0.0, 0
	for _, name := range names {
		sl, ok := s.Apps[name].FiniteSlowdown()
		if !ok {
			starved++
			continue
		}
		if sl <= 0 {
			sl = 1e-9
		}
		logSum += math.Log(sl)
		n++
	}
	if n == 0 {
		return 0, starved
	}
	return math.Exp(logSum / float64(n)), starved
}

// SlowdownSpread returns the min, median, and max per-application slowdown
// in the scenario (the box edges and median of Fig. 9a) along with the
// variance across applications. Infinite slowdowns (starved applications)
// are included in min/median/max but excluded from the variance.
func (s *Stats) SlowdownSpread() (min, median, max, variance float64) {
	var vals []float64
	for _, a := range s.Apps {
		vals = append(vals, a.Slowdown())
	}
	if len(vals) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(vals)
	min = vals[0]
	max = vals[len(vals)-1]
	median = vals[len(vals)/2]
	if len(vals)%2 == 0 {
		lo, hi := vals[len(vals)/2-1], vals[len(vals)/2]
		if !math.IsInf(hi, 1) {
			median = (lo + hi) / 2
		} else {
			median = lo
		}
	}
	var finite []float64
	for _, v := range vals {
		if !math.IsInf(v, 1) {
			finite = append(finite, v)
		}
	}
	if len(finite) > 1 {
		mean := 0.0
		for _, v := range finite {
			mean += v
		}
		mean /= float64(len(finite))
		for _, v := range finite {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(finite))
	}
	return min, median, max, variance
}
