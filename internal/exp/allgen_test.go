package exp

import (
	"bytes"
	"testing"

	"relief/internal/workload"
)

// TestAllGeneratorsEndToEnd runs every paper figure/table generator and
// every extension study once on a shared sweep — the full relief-bench
// surface — checking each renders non-trivially in both text and CSV.
// Skipped under -short; this is the multi-second full evaluation.
func TestAllGeneratorsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	s := NewSweep()
	s.Warm(MainGrid(), 4)

	var tables []*Table
	add := func(name string, tbl *Table, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 || len(tbl.Cols) == 0 {
			t.Fatalf("%s: empty table", name)
		}
		tables = append(tables, tbl)
	}

	tbl, err := Table2()
	add("table2", tbl, err)
	for _, lvl := range []workload.Contention{workload.Low, workload.Medium, workload.High, workload.Continuous} {
		tbl, err = Fig4(s, lvl)
		add("fig4", tbl, err)
		tbl, err = Fig5(s, lvl)
		add("fig5", tbl, err)
		tbl, err = Fig7(s, lvl)
		add("fig7", tbl, err)
		tbl, err = Fig8(s, lvl)
		add("fig8", tbl, err)
	}
	tbl, err = Fig6(s)
	add("fig6", tbl, err)
	a, b, err := Fig9(s, workload.High)
	add("fig9a", a, err)
	add("fig9b", b, err)
	a, b, err = Fig9(s, workload.Continuous)
	add("fig10a", a, err)
	add("fig10b", b, err)
	tbl, err = Table7(s)
	add("table7", tbl, err)
	tbl, err = Table8(s)
	add("table8", tbl, err)
	tbl, err = Fig11(s)
	add("fig11", tbl, err)
	tbl, err = Fig12(s)
	add("fig12", tbl, err)
	tbl, err = Fig13(s)
	add("fig13", tbl, err)
	tbl, err = Ablation(s)
	add("ablation", tbl, err)
	tbl, err = DRAMStudy(s)
	add("dram", tbl, err)
	tbl, err = EnergyStudy(s)
	add("energy", tbl, err)
	tbl, err = ScalingStudy()
	add("scaling", tbl, err)

	for _, tbl := range tables {
		var txt, csv bytes.Buffer
		tbl.Render(&txt)
		if txt.Len() == 0 {
			t.Fatalf("%s: empty text rendering", tbl.Title)
		}
		if err := tbl.RenderCSV(&csv); err != nil {
			t.Fatalf("%s: csv: %v", tbl.Title, err)
		}
		if csv.Len() == 0 {
			t.Fatalf("%s: empty csv", tbl.Title)
		}
	}

	var js bytes.Buffer
	if err := s.DumpJSON(&js); err != nil {
		t.Fatal(err)
	}
	if js.Len() < 1000 {
		t.Fatal("JSON dump suspiciously small")
	}
}
