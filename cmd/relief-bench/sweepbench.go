package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"relief/internal/exp"
	"relief/internal/serve"
)

// sweepBenchCellCost is the fixed per-cell service time charged by the stub
// runner. The benchmark host may have a single CPU, where parallel real
// simulations cannot beat serial ones; a fixed cell cost models each
// replica as its own machine and makes the measurement about the thing this
// benchmark exists to measure — the sweep distribution layer (expansion,
// ring placement, forwarding, streaming, merging) — not the kernel.
const sweepBenchCellCost = 50 * time.Millisecond

// sweepBenchRun is one fleet size's measurement.
type sweepBenchRun struct {
	Replicas    int     `json:"replicas"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_second"`
	// Speedup is wall-clock relative to the single-replica run.
	Speedup float64 `json:"speedup"`
}

// sweepBenchReport is the "sweep" section of the relief-bench/1 document:
// POST /sweep throughput against in-process fleets of 1 and N replicas.
type sweepBenchReport struct {
	// Mode names the measurement regime; "fixed-cell-cost" means a stub
	// runner charged CellMS of wall time per cell with one worker per
	// replica (each replica stands in for a machine).
	Mode   string          `json:"mode"`
	CellMS float64         `json:"cell_ms"`
	Cells  int             `json:"cells"`
	Runs   []sweepBenchRun `json:"runs"`
}

// runSweepBench measures distributed sweep throughput: the low-contention ×
// fairness-policy grid (40 cells) swept through a coordinator replica, for
// a fleet of one and a fleet of three. Every fleet starts cold so cell
// counts match; cluster runs place cells on owners by consistent hashing
// and forward them, so the fleet's aggregate service rate — not the
// coordinator's — bounds the sweep.
func runSweepBench() (*sweepBenchReport, error) {
	spec := serve.SweepSpec{
		Contention: []string{"low"},
		Policies:   exp.FairnessPolicyNames,
		Stream:     true,
		Parallel:   16,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	report := &sweepBenchReport{
		Mode:   "fixed-cell-cost",
		CellMS: float64(sweepBenchCellCost) / float64(time.Millisecond),
	}
	for _, replicas := range []int{1, 3} {
		wall, cells, err := runFleetSweep(replicas, body)
		if err != nil {
			return nil, fmt.Errorf("sweep bench (%d replicas): %w", replicas, err)
		}
		if report.Cells == 0 {
			report.Cells = cells
		} else if cells != report.Cells {
			return nil, fmt.Errorf("sweep bench: %d-replica fleet ran %d cells, want %d", replicas, cells, report.Cells)
		}
		run := sweepBenchRun{Replicas: replicas, WallSeconds: wall.Seconds()}
		if wall > 0 {
			run.CellsPerSec = float64(cells) / wall.Seconds()
		}
		if len(report.Runs) > 0 && wall > 0 {
			run.Speedup = report.Runs[0].WallSeconds / wall.Seconds()
		} else {
			run.Speedup = 1
		}
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}

// runFleetSweep starts a cold in-process fleet, streams one sweep through
// its first replica, and reports the wall time and cell count.
func runFleetSweep(replicas int, specBody []byte) (time.Duration, int, error) {
	stub := func(ctx context.Context, req serve.Request) (*serve.Result, error) {
		select {
		case <-time.After(sweepBenchCellCost):
			return &serve.Result{Text: "sweep-bench stub\n"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var servers []*serve.Server
	var urls []string
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Drain(ctx)
		}
	}()
	for i := 0; i < replicas; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, err
		}
		s := serve.New(serve.Config{
			Workers:  1, // one worker per replica: each replica models one machine
			QueueCap: 256,
			CacheCap: 512,
			Timeout:  time.Minute,
			Runner:   stub,
		})
		go s.Serve(l)
		servers = append(servers, s)
		urls = append(urls, "http://"+l.Addr().String())
	}
	if replicas > 1 {
		for i, s := range servers {
			s.ConfigureCluster(urls[i], urls) // ConfigureCluster drops self from the peer list
		}
	}

	start := time.Now()
	resp, err := http.Post(urls[0]+"/sweep", "application/json", strings.NewReader(string(specBody)))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("POST /sweep: %s", resp.Status)
	}
	cells, failed := 0, 0
	done := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var line struct {
			Index  *int   `json:"index"`
			Error  string `json:"error"`
			Done   bool   `json:"done"`
			Errors int    `json:"errors"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return 0, 0, err
		}
		switch {
		case line.Done:
			done, failed = true, line.Errors
		case line.Index != nil:
			cells++
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start)
	if !done {
		return 0, 0, fmt.Errorf("sweep stream ended without trailer")
	}
	if failed > 0 {
		return 0, 0, fmt.Errorf("%d cells failed", failed)
	}
	return wall, cells, nil
}
