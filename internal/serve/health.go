package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Circuit-breaker states. The numeric values are exported as the
// relief_serve_peer_breaker_state gauge, so they are part of the metrics
// contract: 0 closed (healthy), 1 half-open (one probe in flight after
// backoff expiry), 2 open (failing fast).
const (
	breakerClosed int32 = iota
	breakerHalfOpen
	breakerOpen
)

// breakerStateName renders a state for /readyz detail lines.
func breakerStateName(s int32) string {
	switch s {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breakerConfig sizes one peer's circuit breaker. Zero values select
// defaults.
type breakerConfig struct {
	// threshold is the number of consecutive failures that trips the
	// breaker from closed to open (default 3).
	threshold int
	// base is the first open interval; each consecutive open doubles it
	// up to max (defaults 250ms / 30s).
	base time.Duration
	max  time.Duration
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.threshold <= 0 {
		c.threshold = 3
	}
	if c.base <= 0 {
		c.base = 250 * time.Millisecond
	}
	if c.max <= 0 {
		c.max = 30 * time.Second
	}
	return c
}

// peerHealth is one peer's health tracker: a consecutive-failure circuit
// breaker with bounded exponential backoff and deterministic jitter. A
// dead owner costs one fast-failed probe per backoff window instead of a
// connect timeout per request.
//
// The jitter PRNG is seeded from the peer's URL (ringHash), so a given
// failure sequence produces the same retry schedule on every replica and
// every run — the same seeded-determinism discipline as internal/fault,
// extended to the serving layer.
type peerHealth struct {
	cfg breakerConfig
	now func() time.Time

	mu      sync.Mutex
	state   int32         //relief:guardedby mu
	fails   int           //relief:guardedby mu — consecutive failures since the last success
	backoff time.Duration //relief:guardedby mu — current open interval (0 until first open)
	retryAt time.Time     //relief:guardedby mu — when an open breaker grants its next probe
	rng     *rand.Rand    //relief:guardedby mu — deterministic jitter source

	// stateG mirrors state for lock-free metric and readyz reads.
	stateG atomic.Int32
	// opens counts closed/half-open → open transitions.
	opens atomic.Int64
	// probes counts half-open probe grants (retries after backoff).
	probes atomic.Int64

	// notify, when set (before the breaker takes traffic), observes every
	// state transition — ConfigureCluster hooks it to the structured log.
	// Called under mu with the pre-transition state.
	notify func(from, to int32)
}

func newPeerHealth(peer string, cfg breakerConfig, now func() time.Time) *peerHealth {
	if now == nil {
		now = time.Now
	}
	return &peerHealth{
		cfg: cfg.withDefaults(),
		now: now,
		rng: rand.New(rand.NewSource(int64(ringHash(peer)))),
	}
}

// allow reports whether an attempt against the peer may proceed. Closed:
// always. Open: fail fast until the backoff deadline passes, then grant
// exactly one half-open probe. Half-open: fail fast while that probe is
// outstanding.
func (h *peerHealth) allow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false
	default: // open
		if h.now().Before(h.retryAt) {
			return false
		}
		h.setState(breakerHalfOpen)
		h.probes.Add(1)
		return true
	}
}

// success records a healthy exchange (any response from the peer, even a
// cache miss): the breaker closes and the backoff resets.
func (h *peerHealth) success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails = 0
	h.backoff = 0
	h.setState(breakerClosed)
}

// failure records a transport failure or 5xx. The breaker opens after
// cfg.threshold consecutive failures, or immediately when a half-open
// probe fails (with the backoff doubled).
func (h *peerHealth) failure() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails++
	if h.state == breakerHalfOpen || h.fails >= h.cfg.threshold {
		h.open()
	}
}

// open (re)opens the breaker: double the bounded backoff and schedule the
// next half-open probe at now + backoff + jitter, where jitter is a
// deterministic draw in [0, backoff/4].
//
//relief:holds mu
func (h *peerHealth) open() {
	if h.backoff == 0 {
		h.backoff = h.cfg.base
	} else if h.backoff < h.cfg.max {
		h.backoff *= 2
		if h.backoff > h.cfg.max {
			h.backoff = h.cfg.max
		}
	}
	jitter := time.Duration(h.rng.Int63n(int64(h.backoff)/4 + 1))
	h.retryAt = h.now().Add(h.backoff + jitter)
	if h.state != breakerOpen {
		h.opens.Add(1)
	}
	h.setState(breakerOpen)
}

//relief:holds mu
func (h *peerHealth) setState(s int32) {
	if h.state != s && h.notify != nil {
		h.notify(h.state, s)
	}
	h.state = s
	h.stateG.Store(s)
}
