package accel

import "relief/internal/sim"

// Reference compute times for one task on a 128x128 input, in picoseconds,
// calibrated to paper Table II ("Accelerator" rows, µs):
//
//	canny-non-max 443.02, convolution 1545.61 (5x5 filter), edge-tracking
//	324.73, elem-matrix 10.94, grayscale 10.26, harris-non-max 105.01,
//	ISP 34.88.
//
// Convolution scales with filter area (3x3 = 1545.61 * 9/25 = 556.42 µs);
// everything scales linearly with pixel count relative to the 128x128
// reference, matching the data-independent control flow of fixed-function
// accelerators.
const refPixels = 128 * 128

var refCompute = [NumKinds]sim.Time{
	ISP:          us(34.88),
	Grayscale:    us(10.26),
	Convolution:  us(1545.61), // at 5x5 filter
	ElemMatrix:   us(10.94),
	CannyNonMax:  us(443.02),
	HarrisNonMax: us(105.01),
	EdgeTracking: us(324.73),
}

const refFilterArea = 25 // 5x5

func us(v float64) sim.Time { return sim.Time(v * float64(sim.Microsecond)) }

// ComputeTime returns the nominal compute latency of one task of the given
// kind and shape. pixels is the number of elements in the primary input
// (128*128 for every paper workload); filterSize is the convolution filter
// edge length (ignored for other kinds; 0 means 5).
func ComputeTime(kind Kind, op Op, pixels, filterSize int) sim.Time {
	if pixels <= 0 {
		pixels = refPixels
	}
	t := refCompute[kind]
	if kind == Convolution {
		if filterSize <= 0 {
			filterSize = 5
		}
		t = sim.Time(int64(t) * int64(filterSize*filterSize) / refFilterArea)
	}
	_ = op // fixed-function: per-op variation is below measurement noise
	return sim.Time(int64(t) * int64(pixels) / refPixels)
}
