// Package kernels provides functional (bit-true, not timed) implementations
// of the seven elementary accelerators the platform models — ISP,
// grayscale, convolution, element-wise matrix operations, Canny non-max
// suppression, Harris non-max suppression, and edge tracking — plus GRU and
// LSTM cells built from them. The examples run these to produce real
// outputs for the same DAG shapes the simulator schedules; the paper's
// accelerators are fixed-function, so kernel results never influence
// timing.
package kernels

import (
	"fmt"
	"math"
)

// Image is a single-channel float32 raster.
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage allocates a zeroed W x H image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("kernels: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the image border
// (the accelerators' convolution units clamp at edges).
func (im *Image) At(x, y int) float32 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes panic.
func (im *Image) Set(x, y int, v float32) { im.Pix[y*im.W+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// RGB is an interleaved three-channel raster.
type RGB struct {
	W, H int
	Pix  []float32 // len = 3*W*H, R G B interleaved
}

// NewRGB allocates a zeroed RGB image.
func NewRGB(w, h int) *RGB {
	return &RGB{W: w, H: h, Pix: make([]float32, 3*w*h)}
}

// ISP performs the image-signal-processor pipeline on RGGB Bayer raw data:
// bilinear demosaicing, white-balance gains, and gamma correction
// (paper Table I: "demosaicing, color correction, and gamma correction").
func ISP(raw []byte, w, h int, gains [3]float32, gamma float64) (*RGB, error) {
	if len(raw) != w*h {
		return nil, fmt.Errorf("kernels: raw length %d != %dx%d", len(raw), w, h)
	}
	at := func(x, y int) float32 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return float32(raw[y*w+x]) / 255
	}
	isR := func(x, y int) bool { return y%2 == 0 && x%2 == 0 }
	isB := func(x, y int) bool { return y%2 == 1 && x%2 == 1 }
	isG := func(x, y int) bool { return (x+y)%2 == 1 }
	out := NewRGB(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b float32
			switch {
			case isR(x, y):
				r = at(x, y)
				g = (at(x-1, y) + at(x+1, y) + at(x, y-1) + at(x, y+1)) / 4
				b = (at(x-1, y-1) + at(x+1, y-1) + at(x-1, y+1) + at(x+1, y+1)) / 4
			case isB(x, y):
				b = at(x, y)
				g = (at(x-1, y) + at(x+1, y) + at(x, y-1) + at(x, y+1)) / 4
				r = (at(x-1, y-1) + at(x+1, y-1) + at(x-1, y+1) + at(x+1, y+1)) / 4
			default: // green site
				g = at(x, y)
				if y%2 == 0 { // red row
					r = (at(x-1, y) + at(x+1, y)) / 2
					b = (at(x, y-1) + at(x, y+1)) / 2
				} else {
					b = (at(x-1, y) + at(x+1, y)) / 2
					r = (at(x, y-1) + at(x, y+1)) / 2
				}
			}
			_ = isG
			i := 3 * (y*w + x)
			out.Pix[i] = gammaCorrect(r*gains[0], gamma)
			out.Pix[i+1] = gammaCorrect(g*gains[1], gamma)
			out.Pix[i+2] = gammaCorrect(b*gains[2], gamma)
		}
	}
	return out, nil
}

func gammaCorrect(v float32, gamma float64) float32 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return float32(math.Pow(float64(v), 1/gamma))
}

// Grayscale converts RGB to luminance (ITU-R BT.601 weights).
func Grayscale(in *RGB) *Image {
	out := NewImage(in.W, in.H)
	for p := 0; p < in.W*in.H; p++ {
		out.Pix[p] = 0.299*in.Pix[3*p] + 0.587*in.Pix[3*p+1] + 0.114*in.Pix[3*p+2]
	}
	return out
}

// Convolve applies a square filter with border clamping. The filter must be
// odd-sized and at most 5x5, the accelerator's maximum (paper Table I).
func Convolve(in *Image, filter [][]float32) *Image {
	n := len(filter)
	if n == 0 || n%2 == 0 || n > 5 {
		panic(fmt.Sprintf("kernels: convolution filter must be odd-sized <=5x5, got %d", n))
	}
	for _, row := range filter {
		if len(row) != n {
			panic("kernels: convolution filter must be square")
		}
	}
	r := n / 2
	out := NewImage(in.W, in.H)
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			var acc float32
			for fy := -r; fy <= r; fy++ {
				for fx := -r; fx <= r; fx++ {
					acc += filter[fy+r][fx+r] * in.At(x+fx, y+fy)
				}
			}
			out.Set(x, y, acc)
		}
	}
	return out
}

// GaussianKernel returns a normalised size x size Gaussian filter.
func GaussianKernel(size int, sigma float64) [][]float32 {
	if size%2 == 0 {
		panic("kernels: gaussian kernel size must be odd")
	}
	r := size / 2
	k := make([][]float32, size)
	var sum float64
	for y := -r; y <= r; y++ {
		k[y+r] = make([]float32, size)
		for x := -r; x <= r; x++ {
			v := math.Exp(-float64(x*x+y*y) / (2 * sigma * sigma))
			k[y+r][x+r] = float32(v)
			sum += v
		}
	}
	for y := range k {
		for x := range k[y] {
			k[y][x] /= float32(sum)
		}
	}
	return k
}

// SobelX and SobelY return the 3x3 Sobel derivative filters.
func SobelX() [][]float32 {
	return [][]float32{{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}}
}

// SobelY returns the vertical Sobel filter.
func SobelY() [][]float32 {
	return [][]float32{{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}}
}

// BoxKernel returns a normalised size x size averaging filter.
func BoxKernel(size int) [][]float32 {
	k := make([][]float32, size)
	v := float32(1) / float32(size*size)
	for y := range k {
		k[y] = make([]float32, size)
		for x := range k[y] {
			k[y][x] = v
		}
	}
	return k
}

// ---- element-wise matrix operations (the elem-matrix accelerator) ----

func sameShape(a, b *Image) {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("kernels: shape mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
}

func binary(a, b *Image, f func(x, y float32) float32) *Image {
	sameShape(a, b)
	out := NewImage(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = f(a.Pix[i], b.Pix[i])
	}
	return out
}

func unary(a *Image, f func(x float32) float32) *Image {
	out := NewImage(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = f(a.Pix[i])
	}
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Image) *Image { return binary(a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a - b element-wise.
func Sub(a, b *Image) *Image { return binary(a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a * b element-wise.
func Mul(a, b *Image) *Image { return binary(a, b, func(x, y float32) float32 { return x * y }) }

// Div returns a / b element-wise with a small epsilon guarding zero
// denominators (the accelerator saturates rather than faulting).
func Div(a, b *Image) *Image {
	return binary(a, b, func(x, y float32) float32 {
		const eps = 1e-9
		if y > -eps && y < eps {
			if y >= 0 {
				y = eps
			} else {
				y = -eps
			}
		}
		return x / y
	})
}

// Sqr squares each element.
func Sqr(a *Image) *Image { return unary(a, func(x float32) float32 { return x * x }) }

// Sqrt takes the element-wise square root (negative inputs clamp to 0).
func Sqrt(a *Image) *Image {
	return unary(a, func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return float32(math.Sqrt(float64(x)))
	})
}

// Atan2 returns atan2(a, b) element-wise.
func Atan2(a, b *Image) *Image {
	return binary(a, b, func(x, y float32) float32 {
		return float32(math.Atan2(float64(x), float64(y)))
	})
}

// Tanh applies the hyperbolic tangent element-wise.
func Tanh(a *Image) *Image {
	return unary(a, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// Sigmoid applies the logistic function element-wise.
func Sigmoid(a *Image) *Image {
	return unary(a, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
}

// Scale multiplies every element by k.
func Scale(a *Image, k float32) *Image {
	return unary(a, func(x float32) float32 { return k * x })
}

// Thresh zeroes elements below t and keeps the rest.
func Thresh(a *Image, t float32) *Image {
	return unary(a, func(x float32) float32 {
		if x < t {
			return 0
		}
		return x
	})
}
