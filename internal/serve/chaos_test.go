package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"relief/internal/exp"
)

// recordingTransport notes every request that made it through the chaos
// layer and answers 200.
type recordingTransport struct{ passed atomic.Int32 }

func (rt *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.passed.Add(1)
	closeRequestBody(req)
	return &http.Response{
		StatusCode: http.StatusOK,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{},
		Body:    io.NopCloser(strings.NewReader("ok")),
		Request: req,
	}, nil
}

// chaosOutcomes replays n sequential requests through a fresh transport
// built from plan and classifies each: "pass", "drop", or "503".
func chaosOutcomes(t *testing.T, plan ChaosPlan, n int) []string {
	t.Helper()
	tr := NewChaosTransport(plan, &recordingTransport{})
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://peer.test:1/result/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tr.RoundTrip(req)
		switch {
		case err != nil:
			out = append(out, "drop")
		case resp.StatusCode == http.StatusServiceUnavailable:
			resp.Body.Close()
			out = append(out, "503")
		default:
			resp.Body.Close()
			out = append(out, "pass")
		}
	}
	return out
}

// TestChaosTransportDeterministic: the same seed replays the same fault
// sequence; a different seed produces a different one.
func TestChaosTransportDeterministic(t *testing.T) {
	plan := ChaosPlan{Seed: 7, DropRate: 0.3, ErrorRate: 0.3}
	a := chaosOutcomes(t, plan, 200)
	b := chaosOutcomes(t, plan, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: outcome %q vs %q under the same seed", i, a[i], b[i])
		}
	}
	counts := map[string]int{}
	for _, o := range a {
		counts[o]++
	}
	if counts["drop"] == 0 || counts["503"] == 0 || counts["pass"] == 0 {
		t.Fatalf("degenerate fault mix over 200 draws: %v", counts)
	}
	plan.Seed = 8
	c := chaosOutcomes(t, plan, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical fault sequences")
	}
}

// TestChaosPartitionOneWay: a partitioned host always fails; other hosts
// pass untouched, and with all rates zero the partition consumes no
// randomness at all (the zero-rate plan stays inert for them).
func TestChaosPartitionOneWay(t *testing.T) {
	next := &recordingTransport{}
	tr := NewChaosTransport(ChaosPlan{Partition: []string{"dead.test:1"}}, next)
	for i := 0; i < 10; i++ {
		req, _ := http.NewRequest(http.MethodGet, "http://dead.test:1/result/x", nil)
		if _, err := tr.RoundTrip(req); err == nil {
			t.Fatal("partitioned host served a request")
		}
		req, _ = http.NewRequest(http.MethodGet, "http://alive.test:1/result/x", nil)
		resp, err := tr.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("unpartitioned host affected: resp=%v err=%v", resp, err)
		}
		resp.Body.Close()
	}
	if got := next.passed.Load(); got != 10 {
		t.Errorf("%d requests passed through, want 10", got)
	}
	if (ChaosPlan{}).Active() {
		t.Error("zero plan reports Active")
	}
}

// cellStub is a runner whose result carries a deterministic sweep cell, so
// merged sweep documents can be compared byte-for-byte across topologies.
func cellStub(execs *atomic.Int32) func(context.Context, Request) (*Result, error) {
	return func(ctx context.Context, req Request) (*Result, error) {
		execs.Add(1)
		cell := exp.Cell{
			Scenario:   "mix=" + req.Mix + " policy=" + req.Policy,
			MakespanMS: float64(len(req.Mix)) * 10,
		}
		return &Result{
			MakespanMS: cell.MakespanMS,
			Text:       "stub:" + req.Mix,
			Cell:       &cell,
		}, nil
	}
}

// chaosFleet builds n peered replicas whose outbound peer traffic all runs
// through seeded chaos transports (one per replica, distinct seeds).
func chaosFleet(t *testing.T, n int, plan ChaosPlan) (servers []*Server, tss []*httptest.Server, urls []string, execs *atomic.Int32) {
	t.Helper()
	execs = new(atomic.Int32)
	for i := 0; i < n; i++ {
		p := plan
		p.Seed = plan.Seed + int64(i)
		s := New(Config{
			Workers:          2,
			Runner:           cellStub(execs),
			PeerTransport:    NewChaosTransport(p, nil),
			BreakerThreshold: 2,
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, s)
		tss = append(tss, ts)
		urls = append(urls, ts.URL)
	}
	for i, s := range servers {
		s.ConfigureCluster(urls[i], urls)
	}
	return servers, tss, urls, execs
}

const chaosSweepSpec = `{"mixes":["C","D","G","H","L","CD","CG","CH","CL","DG","DH","DL","GH","GL","HL","CGL"],"policies":["RELIEF","LAX"]}`

// sweepDoc POSTs a merged sweep and returns the raw document bytes.
func sweepDoc(t *testing.T, url, spec string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestSweepUnderChaosByteIdentical: a merged sweep through a 3-replica
// fleet whose peer links drop, 503, and lag must (a) succeed with no
// client-visible error, (b) produce a document byte-identical to a solo
// server's, and (c) duplicate only boundedly much work — at most one extra
// execution per cell (forward landed on the owner but the reply was lost,
// so the coordinator also ran it locally).
func TestSweepUnderChaosByteIdentical(t *testing.T) {
	var soloExecs atomic.Int32
	solo := New(Config{Workers: 2, Runner: cellStub(&soloExecs)})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	want := sweepDoc(t, soloTS.URL, chaosSweepSpec)
	cells := int(soloExecs.Load())
	if cells != 32 {
		t.Fatalf("solo sweep executed %d cells, want 32", cells)
	}

	_, _, urls, execs := chaosFleet(t, 3, ChaosPlan{
		Seed:        42,
		DropRate:    0.2,
		ErrorRate:   0.2,
		LatencyRate: 0.3,
		LatencyMS:   5,
	})
	got := sweepDoc(t, urls[0], chaosSweepSpec)
	if string(got) != string(want) {
		t.Errorf("chaos fleet sweep diverges from solo (%d vs %d bytes)", len(got), len(want))
	}
	if n := int(execs.Load()); n > 2*cells {
		t.Errorf("fleet executed %d simulations for %d cells — duplicated work unbounded", n, cells)
	}
}

// TestPeerDeathMidSweepNoClientFailures: with one of three replicas killed
// outright, a streamed sweep through a survivor completes every cell with
// zero error lines, and the dead peer's breaker is open by the end.
func TestPeerDeathMidSweepNoClientFailures(t *testing.T) {
	servers, tss, urls, _ := chaosFleet(t, 3, ChaosPlan{}) // no injected chaos: real death below
	// Kill replica 2: closing its listener refuses all future connections.
	deadURL := urls[2]
	tss[2].Close()

	resp, err := http.Post(urls[0]+"/sweep", "application/json",
		strings.NewReader(`{"mixes":["C","D","G","H","L","CD","CG","CH","CL","DG","DH","DL","GH","GL","HL","CGL"],"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var cellLines, errLines int
	var trailer sweepTrailer
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		switch {
		case probe["schema"] != nil: // header
		case probe["done"] != nil:
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
		default:
			cellLines++
			var l sweepLine
			if err := json.Unmarshal(line, &l); err != nil {
				t.Fatal(err)
			}
			if l.Error != "" {
				errLines++
				t.Errorf("cell %d failed client-visibly: %s", l.Index, l.Error)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cellLines != 16 || !trailer.Done || trailer.OK != 16 || trailer.Errors != 0 {
		t.Fatalf("stream: %d cell lines, trailer %+v; want 16 cells, done, 0 errors", cellLines, trailer)
	}

	// The dead peer's breaker opened on the coordinating replica (threshold
	// 2; roughly a third of 16 cells hash onto the dead peer).
	h := servers[0].cluster.health[deadURL]
	if h == nil {
		t.Fatal("no health tracker for dead peer")
	}
	if st := h.stateG.Load(); st != breakerOpen && st != breakerHalfOpen {
		t.Errorf("dead peer breaker = %s, want open (or half-open)", breakerStateName(st))
	}

	// With the breaker open, a fresh scenario owned by the dead peer is
	// served locally after one fast-fail — no connection attempt at all.
	var fresh Request
	found := false
	for i := int64(1); i <= 500 && !found; i++ {
		req := Request{Mix: "CGL", FaultRate: 0.01, FaultSeed: i}
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		if servers[0].cluster.ring.owner(req.Digest()) == deadURL {
			fresh, found = req, true
		}
	}
	if !found {
		t.Fatal("no candidate scenario hashed onto the dead peer")
	}
	body, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	resp2, b := post(t, urls[0], string(body))
	if src, _ := decodeEnvelope(t, b); resp2.StatusCode != http.StatusOK || src != srcRun {
		t.Fatalf("breaker-open request: status=%d source=%q body=%s", resp2.StatusCode, src, b)
	}
	if ff := servers[0].svc.peer(deadURL).fastFails.Load(); ff == 0 {
		t.Error("open breaker did not fast-fail — the request paid a full connection error")
	}
}
