// relief-report writes a self-contained HTML report with SVG charts of the
// high-contention evaluation — the Go counterpart of the paper artifact's
// matplotlib plotting scripts.
//
// Usage:
//
//	relief-report -o report.html
package main

import (
	"flag"
	"fmt"
	"os"

	"relief/internal/exp"
	"relief/internal/report"
)

func main() {
	out := flag.String("o", "report.html", "output HTML file")
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := report.Generate(exp.NewSweep(), f); err != nil {
		fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-report: %v\n", err)
	os.Exit(1)
}
