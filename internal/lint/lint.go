// Package lint implements relief-lint: project-specific static analyzers
// that enforce the simulator's determinism, hot-path, and API invariants.
//
// The seven analyzers (see docs/LINTING.md for the full contract):
//
//   - nodeterm:  no wall-clock time or unseeded global randomness in
//     simulation packages — runs must be bit-for-bit reproducible.
//   - maporder:  no order-sensitive work inside `range` over a map —
//     Go's map iteration order is randomized and silently breaks
//     golden digests.
//   - hotalloc:  functions annotated //relief:hotpath must not allocate
//     (composite literals, make/new/append, closures, interface boxing).
//   - nopanic:   the public facade and workload builders report errors,
//     never panic (Must* helpers excepted by convention).
//   - weakevent: observability code schedules only weak events
//     (sim.Kernel.ScheduleWeak), so metricised runs stay bit-identical
//     to bare ones.
//   - peerctx:   outbound HTTP in the serving packages carries a
//     per-attempt context deadline — no http.Get, no http.DefaultClient,
//     no context-free requests; slow peers must trip breakers, not wedge
//     request goroutines.
//   - svcimport: only the serving layer (internal/serve, cmd/*) may
//     import internal/svctrace — wall-clock service tracing never leaks
//     into simulation packages.
//
// A finding can be suppressed with a directive comment on the same line
// or the line directly above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare //lint:allow <analyzer> does not
// suppress anything.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"relief/internal/lint/analysis"
)

// modulePath is the import path of the facade package this suite guards.
// relief-lint is project-specific by design; the scope tables below are
// keyed off this constant.
const modulePath = "relief"

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{NoDeterm, MapOrder, HotAlloc, NoPanic, WeakEvent, PeerCtx, SvcImport}
}

// Finding is one reported, non-suppressed diagnostic.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// RunPackage applies analyzers to one type-checked package and returns the
// findings that survive //lint:allow directive filtering, sorted by
// position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]Finding, error) {
	allowed := collectAllows(fset, files)
	var out []Finding
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			// The invariants guard shipped simulator code; tests drive the
			// kernel and the clock directly by design (go vet feeds test
			// files through the vettool, unlike the standalone loader).
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			if allowed[allowKey{pos.Filename, pos.Line, a.Name}] ||
				allowed[allowKey{pos.Filename, pos.Line - 1, a.Name}] {
				continue
			}
			out = append(out, Finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans comments for //lint:allow directives. A directive
// suppresses findings of the named analyzer on its own line and on the
// line immediately below (covering both trailing and leading placement).
// The reason text after the analyzer name is required.
func collectAllows(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allows := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := fset.Position(c.Pos())
				allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return allows
}

// pkgIn reports whether path is one of the listed packages, where each
// entry is matched as the module-relative package path.
func pkgIn(path string, rel ...string) bool {
	for _, r := range rel {
		if path == modulePath+"/"+r || path == r {
			return true
		}
	}
	return false
}

// funcObj resolves the called function/method object of a call, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isKernelMethod reports whether call invokes a method with one of the
// given names on sim.Kernel (the event kernel type of internal/sim).
func isKernelMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := funcObj(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/sim") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Kernel" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
