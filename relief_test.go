package relief_test

import (
	"math"
	"testing"

	"relief"
)

func TestBuildWorkloadNames(t *testing.T) {
	for _, name := range []string{"canny", "deblur", "gru", "harris", "lstm"} {
		d, err := relief.BuildWorkload(name)
		if err != nil {
			t.Fatalf("BuildWorkload(%q): %v", name, err)
		}
		if d.App != name || len(d.Nodes) == 0 {
			t.Fatalf("BuildWorkload(%q) returned %q with %d nodes", name, d.App, len(d.Nodes))
		}
	}
	if _, err := relief.BuildWorkload("pacman"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"FCFS", "GEDF-D", "GEDF-N", "LL", "LAX", "HetSched", "RELIEF", "RELIEF-LAX"} {
		p, err := relief.PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := relief.PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	for _, app := range []string{"canny", "gru"} {
		d, err := relief.BuildWorkload(app)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Submit(d, 0); err != nil {
			t.Fatal(err)
		}
	}
	rep := sys.Run()
	if rep.NodesDone != 13+114 {
		t.Fatalf("NodesDone = %d, want 127", rep.NodesDone)
	}
	if rep.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	if rep.Edges == 0 || rep.Forwards+rep.Colocations > rep.Edges {
		t.Fatalf("edge accounting wrong: %d/%d/%d", rep.Edges, rep.Forwards, rep.Colocations)
	}
	if rep.DRAMEnergyJ <= 0 || rep.SPADEnergyJ <= 0 {
		t.Fatal("energy not accounted")
	}
	for _, app := range []string{"canny", "gru"} {
		a, ok := rep.Apps[app]
		if !ok || a.Iterations != 1 {
			t.Fatalf("app %s report missing or wrong: %+v", app, a)
		}
		if math.IsInf(a.Slowdown, 1) || a.Slowdown <= 0 {
			t.Fatalf("app %s slowdown = %v", app, a.Slowdown)
		}
	}
	fwd, col := rep.ForwardsPerEdge()
	if fwd < 0 || col < 0 || fwd+col > 100 {
		t.Fatalf("ForwardsPerEdge = (%v, %v)", fwd, col)
	}
}

func TestSystemDefaultsToRELIEF(t *testing.T) {
	sys := relief.NewSystem(relief.Config{})
	d, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	if rep := sys.Run(); rep.NodesDone != 13 {
		t.Fatal("default system did not run")
	}
}

func TestSystemRunTwicePanics(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "FCFS"})
	d, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	sys.Run()
}

func TestSystemInvalidPolicyErr(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "nope"})
	if sys.Err() == nil {
		t.Fatal("invalid policy name not reported by Err")
	}
	d, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(d, 0); err == nil {
		t.Fatal("Submit on broken system did not fail")
	}
	if r := sys.Run(); r == nil || r.NodesDone != 0 {
		t.Fatal("broken system must return an empty report")
	}
}

func TestSubmitLoopAndRunFor(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	err := sys.SubmitLoop(func() *relief.DAG {
		d, err := relief.BuildWorkload("gru")
		if err != nil {
			panic(err)
		}
		return d
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.RunFor(30 * relief.Millisecond)
	if rep.Apps["gru"].Iterations < 2 {
		t.Fatalf("continuous GRU finished %d iterations in 30ms, want >= 2", rep.Apps["gru"].Iterations)
	}
	if rep.Makespan != 30*relief.Millisecond {
		t.Errorf("Makespan = %v, want the horizon", rep.Makespan)
	}
}

func TestConfigKnobs(t *testing.T) {
	// Crossbar + extra elem-matrix instances + predictors + partitions.
	sys := relief.NewSystem(relief.Config{
		Policy:              "RELIEF",
		Crossbar:            true,
		Instances:           map[relief.Kind]int{relief.ElemMatrix: 2},
		OutputPartitions:    3,
		BandwidthPredictor:  "average",
		PredictDataMovement: true,
	})
	d, _ := relief.BuildWorkload("gru")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run()
	if rep.NodesDone != 114 {
		t.Fatalf("NodesDone = %d", rep.NodesDone)
	}
}

func TestDisableForwardingConfig(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF", DisableForwarding: true})
	d, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run()
	if rep.Forwards != 0 || rep.Colocations != 0 {
		t.Fatal("forwarding happened while disabled")
	}
}

func TestCustomDAGConstruction(t *testing.T) {
	d := relief.NewDAG("mypipe", "M", 5*relief.Millisecond)
	src := d.AddNode("src", relief.Convolution, relief.OpDefault, 65536)
	src.ExtraInputBytes = 65536
	src.FilterSize = 3
	d.AddNode("post", relief.ElemMatrix, relief.OpSigmoid, 65536, src)
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	if err := sys.Submit(d, relief.Millisecond); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run()
	if rep.NodesDone != 2 || rep.Forwards != 1 {
		t.Fatalf("custom DAG: done=%d fwd=%d, want 2/1", rep.NodesDone, rep.Forwards)
	}
	if d.Release != relief.Millisecond {
		t.Errorf("release = %v, want 1ms", d.Release)
	}
}
