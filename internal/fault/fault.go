// Package fault implements deterministic, seeded fault injection for the
// simulated SoC. A Plan is a pure-data specification — a PRNG seed, a set
// of per-event fault rates, and optional scheduled instance deaths — that
// can be carried by value, hashed into sweep cache keys, and shared across
// goroutines. Each simulation run materialises its own Injector from the
// plan; because the simulation kernel is single-threaded and
// deterministic, the injector's draw sequence (and therefore every
// injected fault) is fully reproducible for a given plan.
//
// Draws are gated on their rate being non-zero, so a zero-rate plan
// consumes no randomness and perturbs nothing: installing it is
// bit-identical to running with no plan at all (verified by tests in
// internal/exp).
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"relief/internal/sim"
)

// Rates sets the per-event probabilities of each fault class. All rates
// are in [0, 1]; a zero rate disables the class entirely (no PRNG draw).
type Rates struct {
	// TaskHang is the per-launch probability that the task never signals
	// completion (detected only by the watchdog).
	TaskHang float64
	// TaskSlow is the per-launch probability that compute time is
	// multiplied by SlowFactor (a degraded, but live, device).
	TaskSlow   float64
	SlowFactor float64 // compute multiplier for slow tasks (default 4)
	// TaskFail is the per-launch probability of a transient failure:
	// the task runs to completion but its result is unusable (detected at
	// the completion interrupt, e.g. by an output CRC).
	TaskFail float64
	// InstanceDeath is the per-launch probability that the accelerator
	// instance dies permanently when the task starts computing.
	InstanceDeath float64
	// DMAStall is the per-transfer probability of an extra front-end
	// stall of DMAStallTime (bus retraining, descriptor refetch).
	DMAStall     float64
	DMAStallTime sim.Time // default 20 µs
	// DMACorrupt is the per-transfer probability that the payload arrives
	// corrupted (CRC failure); the DMA engine re-runs the transfer.
	DMACorrupt float64
	// DRAMError is the per-request probability of a transient error burst
	// in the memory controller costing DRAMErrorTime (ECC scrub, retry).
	DRAMError     float64
	DRAMErrorTime sim.Time // default 2 µs
}

// Plan is a reproducible fault-injection specification. The zero value is
// a valid plan that injects nothing (useful to verify the hooks are
// timing-neutral when idle).
type Plan struct {
	// Seed initialises the injection PRNG.
	Seed int64
	// Rates are the per-event fault probabilities.
	Rates Rates
	// DieAt schedules deterministic permanent deaths independent of the
	// PRNG: accelerator instance index → absolute simulation time. Used
	// by targeted resilience tests.
	DieAt map[int]sim.Time
}

// Active reports whether the plan can inject anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	r := p.Rates
	return r.TaskHang > 0 || r.TaskSlow > 0 || r.TaskFail > 0 ||
		r.InstanceDeath > 0 || r.DMAStall > 0 || r.DMACorrupt > 0 ||
		r.DRAMError > 0 || len(p.DieAt) > 0
}

// AppendKey appends a canonical encoding of the plan to b, for use in
// scenario cache keys. Every field participates; float rates are encoded
// via their IEEE bit patterns so distinct plans cannot collide.
func (p *Plan) AppendKey(b []byte) []byte {
	if p == nil {
		return append(b, "nofault"...)
	}
	b = strconv.AppendInt(b, p.Seed, 10)
	for _, f := range []float64{
		p.Rates.TaskHang, p.Rates.TaskSlow, p.Rates.SlowFactor,
		p.Rates.TaskFail, p.Rates.InstanceDeath,
		p.Rates.DMAStall, p.Rates.DMACorrupt, p.Rates.DRAMError,
	} {
		b = append(b, ',')
		b = strconv.AppendUint(b, math.Float64bits(f), 16)
	}
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Rates.DMAStallTime), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Rates.DRAMErrorTime), 10)
	idxs := make([]int, 0, len(p.DieAt))
	for i := range p.DieAt {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, '@')
		b = strconv.AppendInt(b, int64(p.DieAt[i]), 10)
	}
	return b
}

// Profile returns the canonical mixed fault profile used by the
// resilience study (relief-bench -exp faults) and the relief-sim -faults
// flag: every fault class scaled by a single rate r. Instance deaths are
// kept two orders rarer than transient faults so a sweep exercises both
// retry and abort paths.
func Profile(r float64, seed int64) *Plan {
	return &Plan{
		Seed: seed,
		Rates: Rates{
			TaskHang:      r / 2,
			TaskSlow:      r,
			SlowFactor:    4,
			TaskFail:      r,
			InstanceDeath: r / 25,
			DMAStall:      r,
			DMAStallTime:  20 * sim.Microsecond,
			DMACorrupt:    r / 2,
			DRAMError:     r,
			DRAMErrorTime: 2 * sim.Microsecond,
		},
	}
}

// Verdict is the fault outcome drawn for one task launch.
type Verdict uint8

// Task-launch verdicts, in draw priority order.
const (
	VerdictNone Verdict = iota // task executes normally
	VerdictDie                 // the instance dies when compute starts
	VerdictHang                // the task never completes
	VerdictFail                // transient failure detected at completion
	VerdictSlow                // compute time multiplied by SlowFactor
)

func (v Verdict) String() string {
	switch v {
	case VerdictDie:
		return "die"
	case VerdictHang:
		return "hang"
	case VerdictFail:
		return "fail"
	case VerdictSlow:
		return "slow"
	}
	return "none"
}

// Counts tallies the faults an injector has actually drawn at the DMA and
// DRAM layers (task-level faults are counted by the manager at their
// application point, since an aborted DAG can discard a drawn verdict).
type Counts struct {
	DMAStalls      int
	DMACorruptions int
	DRAMErrors     int
}

// Injector is the per-run runtime of a Plan: a seeded PRNG plus counters.
// It must only be used from the simulation goroutine. All methods are
// nil-receiver safe and inject nothing on nil.
type Injector struct {
	rng   *rand.Rand
	r     Rates
	c     Counts
	draws int64
}

// draw consumes one PRNG sample, counting it so a checkpoint can record the
// injector's position in the draw sequence and a restore can fast-forward a
// fresh injector to it.
func (in *Injector) draw() float64 {
	in.draws++
	return in.rng.Float64()
}

// NewInjector materialises the runtime injector for one simulation run.
// Returns nil for a nil plan.
func (p *Plan) NewInjector() *Injector {
	if p == nil {
		return nil
	}
	r := p.Rates
	if r.SlowFactor <= 1 {
		r.SlowFactor = 4
	}
	if r.DMAStallTime <= 0 {
		r.DMAStallTime = 20 * sim.Microsecond
	}
	if r.DRAMErrorTime <= 0 {
		r.DRAMErrorTime = 2 * sim.Microsecond
	}
	return &Injector{rng: rand.New(rand.NewSource(p.Seed)), r: r}
}

// Task draws the fault verdict for one task launch.
func (in *Injector) Task() Verdict {
	if in == nil {
		return VerdictNone
	}
	switch {
	case in.r.InstanceDeath > 0 && in.draw() < in.r.InstanceDeath:
		return VerdictDie
	case in.r.TaskHang > 0 && in.draw() < in.r.TaskHang:
		return VerdictHang
	case in.r.TaskFail > 0 && in.draw() < in.r.TaskFail:
		return VerdictFail
	case in.r.TaskSlow > 0 && in.draw() < in.r.TaskSlow:
		return VerdictSlow
	}
	return VerdictNone
}

// SlowFactor returns the compute multiplier applied to VerdictSlow tasks.
func (in *Injector) SlowFactor() float64 { return in.r.SlowFactor }

// Transfer draws the DMA faults for one transfer: an extra front-end
// stall and whether the payload arrives corrupted. Implements
// mem.FaultInjector.
func (in *Injector) Transfer(bytes int64) (stall sim.Time, corrupt bool) {
	if in == nil {
		return 0, false
	}
	if in.r.DMAStall > 0 && in.draw() < in.r.DMAStall {
		stall = in.r.DMAStallTime
		in.c.DMAStalls++
	}
	if in.r.DMACorrupt > 0 && in.draw() < in.r.DMACorrupt {
		corrupt = true
		in.c.DMACorruptions++
	}
	return stall, corrupt
}

// DRAM draws the transient-error stall for one main-memory request.
func (in *Injector) DRAM(bytes int64) sim.Time {
	if in == nil || in.r.DRAMError <= 0 {
		return 0
	}
	if in.draw() < in.r.DRAMError {
		in.c.DRAMErrors++
		return in.r.DRAMErrorTime
	}
	return 0
}

// Counts returns the faults drawn so far at the DMA/DRAM layers.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.c
}

// InjectorState is the serializable position of an injector: how many PRNG
// samples it has consumed and the fault tallies so far. The PRNG itself is
// not serialized — a restore materialises a fresh injector from the same
// plan and fast-forwards it Draws samples, which reproduces the stream
// exactly because the plan's seed is part of the scenario.
type InjectorState struct {
	Draws  int64
	Counts Counts
}

// CaptureState snapshots the injector's draw position. Nil-safe: a nil
// injector captures the zero state.
func (in *Injector) CaptureState() InjectorState {
	if in == nil {
		return InjectorState{}
	}
	return InjectorState{Draws: in.draws, Counts: in.c}
}

// RestoreInjector materialises an injector for the plan positioned at a
// captured draw state: a fresh seeded PRNG fast-forwarded past the samples
// the checkpointed run had already consumed. Returns nil for a nil plan
// (legal only if the state is zero).
func (p *Plan) RestoreInjector(s InjectorState) (*Injector, error) {
	in := p.NewInjector()
	if in == nil {
		if s.Draws != 0 || s.Counts != (Counts{}) {
			return nil, fmt.Errorf("fault: checkpoint has injector state but plan is nil")
		}
		return nil, nil
	}
	for i := int64(0); i < s.Draws; i++ {
		in.rng.Float64()
	}
	in.draws = s.Draws
	in.c = s.Counts
	return in, nil
}
