package stats

import (
	"fmt"
	"io"
	"sort"
)

// WriteGem5Style dumps the metric sink in gem5's stats.txt format —
// `name  value  # description` lines between Begin/End markers — matching
// the output format the paper's artifact produces. Scalar statistics come
// first, then per-application vectors, alphabetically.
func (s *Stats) WriteGem5Style(w io.Writer) error {
	type stat struct {
		name string
		val  string
		desc string
	}
	num := func(v float64) string { return fmt.Sprintf("%.6f", v) }
	fwd, col := s.ForwardsPerEdge()
	dramPct, spadPct := s.DataMovement()
	dramE, spadE := s.MemoryEnergy()
	avg, tail := s.SchedLatency()
	geo, starvedApps := s.SlowdownGeomean()
	lines := []stat{
		{"sim_ticks", fmt.Sprintf("%d", int64(s.Makespan)), "Simulated time (ps)"},
		{"system.slowdown_geomean", num(geo), "Geomean slowdown across non-starved apps"},
		{"system.apps_starved", fmt.Sprintf("%d", starvedApps), "Apps with no finished iteration"},
		{"sim_seconds", num(s.Makespan.Seconds()), "Simulated time (s)"},
		{"system.edges", fmt.Sprintf("%d", s.Edges), "Producer/consumer edges executed"},
		{"system.forwards", fmt.Sprintf("%d", s.Forwards), "SPAD-to-SPAD forwards"},
		{"system.colocations", fmt.Sprintf("%d", s.Colocations), "Consumer colocations"},
		{"system.forwards_pct", num(fwd), "Forwards per edge (%)"},
		{"system.colocations_pct", num(col), "Colocations per edge (%)"},
		{"system.mem.baseline_bytes", fmt.Sprintf("%d", s.BaselineBytes), "All-DRAM baseline traffic (B)"},
		{"system.mem.dram_read_bytes", fmt.Sprintf("%d", s.DRAMReadBytes), "Main memory reads (B)"},
		{"system.mem.dram_write_bytes", fmt.Sprintf("%d", s.DRAMWriteBytes), "Main memory writes (B)"},
		{"system.mem.spad_xfer_bytes", fmt.Sprintf("%d", s.SpadXferBytes), "SPAD-to-SPAD transfers (B)"},
		{"system.mem.dram_traffic_pct", num(dramPct), "DRAM traffic vs baseline (%)"},
		{"system.mem.spad_traffic_pct", num(spadPct), "SPAD traffic vs baseline (%)"},
		{"system.mem.dram_energy", num(dramE), "Main memory energy (J)"},
		{"system.mem.spad_energy", num(spadE), "Scratchpad energy (J)"},
		{"system.accel.occupancy", num(s.Occupancy()), "Sum of accelerator busy over makespan"},
		{"system.nodes.finished", fmt.Sprintf("%d", s.NodesDone), "Nodes finished"},
		{"system.nodes.deadline_met", fmt.Sprintf("%d", s.NodesMetDeadline), "Nodes meeting their deadline"},
		{"system.nodes.deadline_pct", num(s.NodeDeadlinePct()), "Node deadlines met (%)"},
		{"system.dags.deadline_pct", num(s.DAGDeadlinePct()), "DAG deadlines met (%)"},
		{"system.sched.avg_latency", num(avg.Seconds()), "Mean scheduler insertion cost (s)"},
		{"system.sched.tail_latency", num(tail.Seconds()), "Max scheduler insertion cost (s)"},
		{"system.interconnect.occupancy", num(s.InterconnectOccupancy), "Interconnect busy fraction"},
	}
	names := make([]string, 0, len(s.Apps))
	for n := range s.Apps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := s.Apps[n]
		prefix := "system.app." + n
		// A starved application has no finished iteration, so its slowdown
		// is undefined: emit gem5's "nan" marker (never "%f" of +Inf, which
		// downstream stats.txt parsers reject) and flag it explicitly.
		slowdown, starved := "nan", 1
		if sl, ok := a.FiniteSlowdown(); ok {
			slowdown, starved = num(sl), 0
		}
		lines = append(lines,
			stat{prefix + ".iterations", fmt.Sprintf("%d", a.Iterations), "Finished DAG instances"},
			stat{prefix + ".deadlines_met", fmt.Sprintf("%d", a.DeadlinesMet), "DAG deadlines met"},
			stat{prefix + ".slowdown", slowdown, "Runtime over deadline (geomean)"},
			stat{prefix + ".starved", fmt.Sprintf("%d", starved), "1 if no iteration finished (slowdown undefined)"},
			stat{prefix + ".forwards", fmt.Sprintf("%d", a.Forwards), "Forwards on this app's edges"},
			stat{prefix + ".colocations", fmt.Sprintf("%d", a.Colocations), "Colocations on this app's edges"},
		)
	}
	if _, err := fmt.Fprintln(w, "---------- Begin Simulation Statistics ----------"); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%-42s %20s  # %s\n", l.name, l.val, l.desc); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "---------- End Simulation Statistics   ----------")
	return err
}
