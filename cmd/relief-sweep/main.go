// relief-sweep drives a relief-serve fleet through one sweep: it streams a
// grid spec to a coordinator replica (POST /sweep with "stream": true),
// watches per-cell NDJSON results land, and merges them locally into the
// same sorted relief-metrics cell document a single-process exp sweep
// dumps — byte-identical regardless of fleet size or which replica computed
// each cell.
//
// Usage:
//
//	relief-sweep -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 -spec sweep.json
//	echo '{"contention":["low"]}' | relief-sweep -replicas http://127.0.0.1:8081 -out cells.json
//
// Replicas are tried in order until one accepts the sweep; if the stream
// breaks mid-flight the whole sweep retries on the next replica (finished
// cells are already cached fleet-wide, so a retry only recomputes the
// stragglers).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"relief/internal/exp"
	"relief/internal/serve"
)

// line mirrors the server's NDJSON framing: the header carries schema/cells,
// per-cell lines carry index/digest/source and the result or error, the
// trailer carries done/ok/errors.
type line struct {
	Schema string        `json:"schema"`
	Cells  int           `json:"cells"`
	Index  *int          `json:"index"`
	Digest string        `json:"digest"`
	Source string        `json:"source"`
	Error  string        `json:"error"`
	Result *serve.Result `json:"result"`
	Done   bool          `json:"done"`
	OK     int           `json:"ok"`
	Errors int           `json:"errors"`
}

func main() {
	replicasFlag := flag.String("replicas", "", "comma-separated replica base URLs (tried in order)")
	specPath := flag.String("spec", "-", `sweep spec JSON file ("-" = stdin)`)
	outPath := flag.String("out", "-", `merged cell document destination ("-" = stdout)`)
	quiet := flag.Bool("q", false, "suppress per-source progress on stderr")
	flag.Parse()

	var replicas []string
	for _, r := range strings.Split(*replicasFlag, ",") {
		if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
			replicas = append(replicas, r)
		}
	}
	if len(replicas) == 0 {
		fatal(fmt.Errorf("no replicas (use -replicas http://host:port,...)"))
	}

	specBytes, err := readSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	var spec serve.SweepSpec
	if err := json.Unmarshal(specBytes, &spec); err != nil {
		fatal(fmt.Errorf("parsing sweep spec: %w", err))
	}
	spec.Stream = true
	body, err := json.Marshal(spec)
	if err != nil {
		fatal(err)
	}

	var cells []exp.Cell
	var lastErr error
	done := false
	for _, replica := range replicas {
		cells, lastErr = runSweep(replica, body, *quiet)
		if lastErr == nil {
			done = true
			break
		}
		fmt.Fprintf(os.Stderr, "relief-sweep: %s: %v (trying next replica)\n", replica, lastErr)
	}
	if !done {
		fatal(fmt.Errorf("all replicas failed, last error: %w", lastErr))
	}

	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := exp.WriteCells(out, cells); err != nil {
		fatal(err)
	}
}

// runSweep streams one sweep through the given coordinator and returns the
// merged cells. A missing trailer, transport error, non-200 status, or any
// failed cell is an error (the caller may retry on another replica).
func runSweep(replica string, body []byte, quiet bool) ([]exp.Cell, error) {
	resp, err := http.Post(replica+"/sweep", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}

	var cells []exp.Cell
	bySource := map[string]int{}
	total, seen := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("bad stream line: %w", err)
		}
		switch {
		case l.Schema != "":
			if l.Schema != serve.SweepSchema {
				return nil, fmt.Errorf("unexpected stream schema %q", l.Schema)
			}
			total = l.Cells
		case l.Done:
			if l.Errors > 0 {
				return nil, fmt.Errorf("%d of %d cells failed", l.Errors, total)
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "relief-sweep: %d cells done (%s)\n", l.OK, sourceSummary(bySource))
			}
			return cells, nil
		case l.Index != nil:
			seen++
			if l.Error != "" {
				return nil, fmt.Errorf("cell %d (%.12s): %s", *l.Index, l.Digest, l.Error)
			}
			bySource[l.Source]++
			if l.Result != nil && l.Result.Cell != nil {
				cells = append(cells, *l.Result.Cell)
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "relief-sweep: [%d/%d] %.12s %s\n", seen, total, l.Digest, l.Source)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream ended without trailer (%d/%d cells)", seen, total)
}

func sourceSummary(bySource map[string]int) string {
	var parts []string
	for _, src := range []string{"run", "cache", "peer", "forward"} {
		if n := bySource[src]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", src, n))
		}
	}
	if len(parts) == 0 {
		return "no cells"
	}
	return strings.Join(parts, ", ")
}

func readSpec(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-sweep: %v\n", err)
	os.Exit(1)
}
