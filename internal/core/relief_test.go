package core

import (
	"testing"

	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/sched"
	"relief/internal/sim"
)

const us = sim.Microsecond

// fixture builds an empty ready-queue set and an idle-count function.
type fixture struct {
	queues sched.Queues
	store  [accel.NumKinds][]*graph.Node
	idle   map[int]int
}

func newFixture() *fixture {
	f := &fixture{idle: map[int]int{}}
	for k := range f.store {
		f.queues = append(f.queues, &f.store[k])
	}
	return f
}

func (f *fixture) q(k accel.Kind) []*graph.Node { return *f.queues[int(k)] }

func (f *fixture) idleOf(k int) int { return f.idle[k] }

var nodeSeq int

// mk builds a node of the given kind with the given deadline and predicted
// runtime (laxity = deadline - runtime).
func mk(kind accel.Kind, deadline, runtime sim.Time) *graph.Node {
	d := graph.New("t", "T", 100*sim.Millisecond)
	n := d.AddNode("n", kind, accel.OpAdd, 100)
	nodeSeq++
	n.ID = nodeSeq
	n.Deadline = deadline
	n.PredRuntime = runtime
	n.Laxity = deadline - runtime
	n.State = graph.Ready
	return n
}

func TestNamesAndModes(t *testing.T) {
	if New().Name() != "RELIEF" || NewLAX().Name() != "RELIEF-LAX" {
		t.Fatal("policy names wrong")
	}
	if (&RELIEF{Base: sched.LL{}, DisableFeasibility: true}).Name() != "RELIEF-NoFeas" {
		t.Fatal("ablation name wrong")
	}
	if (&RELIEF{Base: sched.HetSched{}}).Name() != "RELIEF+HetSched" {
		t.Fatal("composed name wrong")
	}
	if New().DeadlineMode() != graph.DeadlineCPM {
		t.Fatal("RELIEF must inherit CPM deadlines from LL")
	}
	if (&RELIEF{Base: sched.HetSched{}}).DeadlineMode() != graph.DeadlineSDR {
		t.Fatal("RELIEF over HetSched must inherit SDR deadlines")
	}
	if (&RELIEF{}).DeadlineMode() != graph.DeadlineCPM {
		t.Fatal("zero-value RELIEF defaults to CPM")
	}
}

// TestEscalatesWhenFeasible: a newly ready child jumps ahead of a
// higher-laxity queue head when the head can absorb the delay.
func TestEscalatesWhenFeasible(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 1
	head := mk(accel.ElemMatrix, 1000*us, 10*us) // laxity 990us, plenty
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{head}

	child := mk(accel.ElemMatrix, 2000*us, 50*us) // higher laxity than head
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, 0)
	if len(esc) != 1 || esc[0] != child {
		t.Fatal("feasible forwarding node was not escalated")
	}
	q := f.q(accel.ElemMatrix)
	if q[0] != child || !child.IsFwd {
		t.Fatal("escalated node must sit at the queue front with is_fwd set")
	}
	// The bypassed head was charged the child's runtime (Alg. 2 line 14).
	if head.Laxity != 990*us-50*us {
		t.Errorf("bypassed node laxity = %v, want 940us", head.Laxity)
	}
}

// TestThrottledWhenInfeasible: if the head would miss its deadline, the
// child is inserted at its laxity position instead.
func TestThrottledWhenInfeasible(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 1
	head := mk(accel.ElemMatrix, 100*us, 70*us) // laxity 30us
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{head}

	child := mk(accel.ElemMatrix, 2000*us, 50*us) // runtime 50us > head laxity 30us
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, 0)
	if len(esc) != 0 {
		t.Fatal("infeasible escalation must be throttled")
	}
	q := f.q(accel.ElemMatrix)
	if q[0] != head || q[1] != child || child.IsFwd {
		t.Fatal("throttled child must take its laxity position")
	}
	if head.Laxity != 30*us {
		t.Errorf("throttled escalation must not charge laxity, got %v", head.Laxity)
	}
}

// TestNoIdleNoEscalation: max_forwards = idle instances; zero idle means
// vanilla least-laxity insertion.
func TestNoIdleNoEscalation(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 0
	head := mk(accel.ElemMatrix, 1000*us, 10*us)
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{head}
	child := mk(accel.ElemMatrix, 2000*us, 50*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, 0)
	if len(esc) != 0 || f.q(accel.ElemMatrix)[0] != head {
		t.Fatal("escalation happened with no idle accelerator")
	}
	// The ablation flag lifts the cap.
	r2 := &RELIEF{Base: sched.LL{}, UnboundedForwards: true}
	child2 := mk(accel.ElemMatrix, 2000*us, 50*us)
	_, esc = r2.EnqueueReady(f.queues, []*graph.Node{child2}, f.idleOf, 0)
	if len(esc) != 1 {
		t.Fatal("UnboundedForwards must lift the max_forwards cap")
	}
}

// TestMaxForwardsCap: only as many escalations as idle instances.
func TestMaxForwardsCap(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 1
	c1 := mk(accel.ElemMatrix, 3000*us, 10*us)
	c2 := mk(accel.ElemMatrix, 4000*us, 10*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{c1, c2}, f.idleOf, 0)
	if len(esc) != 1 {
		t.Fatalf("escalated %d children, want 1 (one idle instance)", len(esc))
	}
	// The lower-laxity candidate is processed first from the fwd list.
	if esc[0] != c1 {
		t.Fatal("fwd list must be laxity-sorted (lowest first)")
	}
}

// TestSkipsNegativeLaxityNodes: Algorithm 2 bypasses negative-laxity queue
// entries — they will miss their deadline regardless.
func TestSkipsNegativeLaxityNodes(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 1
	now := 500 * us
	late := mk(accel.ElemMatrix, 100*us, 50*us) // current laxity negative
	ok := mk(accel.ElemMatrix, 2000*us, 100*us) // current laxity 1400us
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{late, ok}
	child := mk(accel.ElemMatrix, 5000*us, 200*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, now)
	if len(esc) != 1 {
		t.Fatal("negative-laxity entries must not block escalation")
	}
}

// TestExistingFwdNodesDontBlock: queue entries that are themselves
// forwarding nodes are skipped by the feasibility scan.
func TestExistingFwdNodesDontBlock(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 2
	fwd := mk(accel.ElemMatrix, 60*us, 50*us) // tiny laxity but is_fwd
	fwd.IsFwd = true
	ok := mk(accel.ElemMatrix, 5000*us, 100*us)
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{fwd, ok}
	child := mk(accel.ElemMatrix, 8000*us, 200*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, 0)
	if len(esc) != 1 {
		t.Fatal("existing forwarding nodes must not prevent escalation")
	}
}

// TestEmptyQueueEscalates: with an empty ready queue the child is trivially
// feasible.
func TestEmptyQueueEscalates(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.Convolution)] = 1
	child := mk(accel.Convolution, 2000*us, 50*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, 0)
	if len(esc) != 1 || f.q(accel.Convolution)[0] != child {
		t.Fatal("empty-queue escalation failed")
	}
}

// TestMultiKindChildren: children of different kinds go to their own
// queues with their own max_forwards budgets.
func TestMultiKindChildren(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 1
	f.idle[int(accel.Convolution)] = 1
	em := mk(accel.ElemMatrix, 2000*us, 50*us)
	cv := mk(accel.Convolution, 2000*us, 500*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{em, cv}, f.idleOf, 0)
	if len(esc) != 2 {
		t.Fatalf("escalated %d, want 2 (independent kinds)", len(esc))
	}
	if f.q(accel.ElemMatrix)[0] != em || f.q(accel.Convolution)[0] != cv {
		t.Fatal("children not routed to their kind queues")
	}
}

// TestFeasibilityConsidersAccumulatedCharges: two consecutive escalations
// charge the head twice; the second is throttled when slack runs out.
func TestFeasibilityConsidersAccumulatedCharges(t *testing.T) {
	r := New()
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 2
	head := mk(accel.ElemMatrix, 90*us, 10*us) // laxity 80us
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{head}
	c1 := mk(accel.ElemMatrix, 2000*us, 50*us)
	c2 := mk(accel.ElemMatrix, 3000*us, 50*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{c1, c2}, f.idleOf, 0)
	// First escalation drops head laxity to 30us < 50us, so the second
	// must be throttled.
	if len(esc) != 1 {
		t.Fatalf("escalated %d, want 1 (slack exhausted)", len(esc))
	}
	if head.Laxity != 30*us {
		t.Errorf("head laxity = %v, want 30us", head.Laxity)
	}
}

// TestDisableFeasibilityEscalatesAlways (ablation).
func TestDisableFeasibilityEscalatesAlways(t *testing.T) {
	r := &RELIEF{Base: sched.LL{}, DisableFeasibility: true}
	f := newFixture()
	f.idle[int(accel.ElemMatrix)] = 1
	head := mk(accel.ElemMatrix, 100*us, 99*us) // laxity 1us: infeasible
	*f.queues[int(accel.ElemMatrix)] = []*graph.Node{head}
	child := mk(accel.ElemMatrix, 2000*us, 50*us)
	_, esc := r.EnqueueReady(f.queues, []*graph.Node{child}, f.idleOf, 0)
	if len(esc) != 1 {
		t.Fatal("DisableFeasibility must escalate unconditionally")
	}
}

// TestInsertPosDelegatesToBase: non-forwarding insertion follows the base
// ordering (LL for RELIEF, LAX for RELIEF-LAX).
func TestInsertPosDelegatesToBase(t *testing.T) {
	now := 500 * us
	neg := mk(accel.ElemMatrix, 100*us, 50*us)
	q := []*graph.Node{neg}
	posNode := mk(accel.ElemMatrix, 5000*us, 100*us)
	if pos, _ := New().InsertPos(q, posNode, now); pos != 1 {
		t.Errorf("RELIEF/LL inserted at %d, want 1 (after lower laxity)", pos)
	}
	if pos, _ := NewLAX().InsertPos(q, posNode, now); pos != 0 {
		t.Errorf("RELIEF-LAX inserted at %d, want 0 (bypasses negative laxity)", pos)
	}
}

// TestEnqueueEmptyReady is a no-op.
func TestEnqueueEmptyReady(t *testing.T) {
	scanned, esc := New().EnqueueReady(newFixture().queues, nil, func(int) int { return 1 }, 0)
	if scanned != 0 || esc != nil {
		t.Fatal("empty ready set must be a no-op")
	}
}
