package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// nopanicScope lists the packages whose exported surface promised, as of
// the fault-injection PR, to report failures as errors: the public facade,
// the workload builders, and the HTTP service (a panic in a handler kills
// the connection and, in a worker, the whole process). A panic creeping
// back in would crash a caller that correctly handles the error path.
var nopanicScope = []string{"internal/workload", "internal/serve"}

// NoPanic forbids panic in the facade and workload-builder packages.
// Functions named Must* are exempt: panicking on error is their documented
// contract (MustBuild et al., mirroring regexp.MustCompile).
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "forbid panic in the public facade and workload builders (converted " +
		"to error returns in the fault PR); Must*-named helpers are exempt",
	Run: runNoPanic,
}

func runNoPanic(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path != modulePath && !pkgIn(path, nopanicScope...) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			checkNoPanic(pass, fd)
		}
	}
	return nil
}

func checkNoPanic(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); !isB {
			return true
		}
		pass.Reportf(call.Pos(),
			"panic in %s %s: the facade/workload API contract is error returns, not panics",
			pass.Pkg.Name(), fd.Name.Name)
		return true
	})
}
