package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"relief/internal/lint"
	"relief/internal/lint/analysis"
	"relief/internal/lint/load"
)

// unitConfig mirrors the JSON configuration cmd/go vet writes for each
// package unit when driving a -vettool (the x/tools unitchecker wire
// format). PackageVetx names the fact files of the unit's dependencies;
// VetxOutput is where this unit's facts go; VetxOnly marks a dependency
// unit analyzed only so its facts exist for dependents.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit described by cfgFile and exits.
// Diagnostics go to stderr as file:line:col lines (exit 2), or to stdout
// as a JSON array with -json (exit 0), mirroring unitchecker conventions.
func unitcheck(cfgFile string, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgFile, err)
	}
	// cmd/go expects the vetx output file to exist for every unit; write
	// it empty up front and overwrite with real facts once computed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	// Facts are computed for module packages only. Standard-library
	// dependency units (which this loader could not typecheck from source
	// anyway — think cgo in net or runtime) keep their empty vetx files;
	// stdlib callees are vouched for by the allow-table instead.
	if cfg.VetxOnly && !moduleUnit(cfg.ImportPath) {
		return
	}

	analysis.RegisterFactTypes(lint.Expand(lint.All()))
	fset := token.NewFileSet()
	var names []string
	for _, f := range cfg.GoFiles {
		names = append(names, filepath.Base(f))
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	files, err := load.ParseDir(fset, dir, names)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("parsing %s: %v", cfg.ImportPath, err)
	}
	// Imports resolve through the export files cmd/go supplies: the
	// import path is first run through ImportMap, then looked up.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	imp := &mappedImporter{base: load.ExportImporter(fset, exports), importMap: cfg.ImportMap}
	pkg, info, err := load.Check(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%v", err)
	}
	// Dependencies' facts arrive through the vetx files cmd/go names;
	// missing or empty ones (stdlib units) decode as no facts.
	facts := analysis.NewFactSet()
	for _, vetx := range cfg.PackageVetx {
		blob, err := os.ReadFile(vetx)
		if err != nil {
			fatalf("reading facts: %v", err)
		}
		if err := facts.Decode(blob); err != nil {
			fatalf("decoding facts from %s: %v", vetx, err)
		}
	}
	findings, err := lint.RunPackage(fset, files, pkg, info, lint.All(), facts)
	if err != nil {
		fatalf("%v", err)
	}
	if cfg.VetxOutput != "" {
		blob, err := facts.Encode()
		if err != nil {
			fatalf("encoding facts: %v", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return // facts-only dependency unit: report nothing
	}
	if jsonOut {
		emit(findings, "json")
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// moduleUnit reports whether the unit's import path belongs to this
// module, including the `pkg.test` and `pkg [pkg.test]` variants cmd/go
// synthesizes for test units.
func moduleUnit(importPath string) bool {
	return importPath == "relief" || strings.HasPrefix(importPath, "relief/") ||
		strings.HasPrefix(importPath, "relief.")
}

// mappedImporter applies cmd/go's ImportMap (vendor and module version
// mapping) before delegating to the export-data importer.
type mappedImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if real, ok := m.importMap[path]; ok {
		path = real
	}
	return m.base.Import(path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "relief-lint: "+format+"\n", args...)
	os.Exit(1)
}

// printVersion implements the -V=full handshake cmd/go uses to compute a
// tool ID for its build cache: the output must be one line of the form
// "<name> version <distinguishing string>". Hashing the executable makes
// rebuilt tools invalidate cached vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", strings.TrimSuffix(name, ".exe"), h.Sum(nil))
}
