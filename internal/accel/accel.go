// Package accel models the seven elementary loosely-coupled accelerators of
// the RELIEF platform (paper Table I): ISP, grayscale, convolution,
// elem-matrix, canny-non-max, harris-non-max, and edge-tracking.
//
// Each accelerator is a fixed-function device with a private scratchpad
// (SPAD), a DMA engine, and a data-independent compute time that is a pure
// function of the requested operation and input size — the property the
// paper's compute-time predictor relies on (§III-B, 0.03% error).
package accel

import "fmt"

// Kind identifies an accelerator type.
type Kind uint8

// The seven elementary accelerators (paper Table I).
const (
	ISP Kind = iota
	Grayscale
	Convolution
	ElemMatrix
	CannyNonMax
	HarrisNonMax
	EdgeTracking
	NumKinds
)

var kindNames = [NumKinds]string{
	ISP:          "isp",
	Grayscale:    "grayscale",
	Convolution:  "convolution",
	ElemMatrix:   "elem-matrix",
	CannyNonMax:  "canny-non-max",
	HarrisNonMax: "harris-non-max",
	EdgeTracking: "edge-tracking",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllKinds lists every accelerator kind in declaration order.
func AllKinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Op selects the operation an accelerator performs on a task. Most kinds
// have a single function; elem-matrix supports the element-wise operations
// of paper Table I plus the batched multiply-accumulate used by the RNN
// workloads, and convolution is parameterised by filter size.
type Op uint8

// Operations.
const (
	OpDefault Op = iota // the kind's single function
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpSqr
	OpSqrt
	OpAtan2
	OpTanh
	OpSigmoid
	OpMac     // batched matrix multiply-accumulate (RNN gates)
	OpLerpSub // fused h~ - h
	OpTanhMul // fused o * tanh(c) (LSTM output)
	OpScale   // multiply by constant
	OpThresh  // threshold
	OpCopy    // identity / pack
	numOps
)

var opNames = [numOps]string{
	"default", "add", "sub", "mul", "div", "sqr", "sqrt", "atan2", "tanh",
	"sigmoid", "mac", "lerpsub", "tanhmul", "scale", "thresh", "copy",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// SPADBytes holds the scratchpad capacity of each accelerator (paper
// Table I).
var SPADBytes = [NumKinds]int64{
	ISP:          115204,
	Grayscale:    180224,
	Convolution:  196708,
	ElemMatrix:   262144,
	CannyNonMax:  262144,
	HarrisNonMax: 196608,
	EdgeTracking: 98432,
}

// Health describes an accelerator instance's operational state as seen by
// the manager's recovery machinery (internal/fault). A Dead instance is
// permanently removed from scheduling; Degraded marks a live device whose
// tasks have faulted (retained for diagnostics).
type Health uint8

// Instance health states.
const (
	Healthy Health = iota
	Degraded
	Dead
)

func (h Health) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	}
	return "healthy"
}
