package hostif

import (
	"testing"

	"relief/internal/graph"
	"relief/internal/sim"
	"relief/internal/workload"
)

// TestNodeSizeMatchesPaper pins the Table III arithmetic: 72-byte base
// (one parent, one child), +12 per extra parent, +4 per extra child.
func TestNodeSizeMatchesPaper(t *testing.T) {
	if got := NodeSize(1, 1); got != 72 {
		t.Fatalf("base node = %d bytes, paper says 72", got)
	}
	if got := NodeSize(2, 1); got != 84 {
		t.Fatalf("2-parent node = %d bytes, want 84 (+12)", got)
	}
	if got := NodeSize(1, 2); got != 76 {
		t.Fatalf("2-child node = %d bytes, want 76 (+4)", got)
	}
	// Roots/leaves still reserve one slot (fixed-size C arrays).
	if NodeSize(0, 0) != 72 {
		t.Fatal("root/leaf must reserve one slot each")
	}
}

// TestLargestBenchmarkNode: the paper reports the largest node across its
// suite as 96 bytes. Our reconstructed GRU gives the recurrent hidden
// state a fan-out of 5 with 2 parents (100 bytes); everything else stays
// within the paper's bound.
func TestLargestBenchmarkNode(t *testing.T) {
	largest := 0
	for a := workload.App(0); a < workload.NumApps; a++ {
		for _, n := range workload.MustBuild(a).Nodes {
			if s := NodeSize(len(n.Parents), len(n.Children)); s > largest {
				largest = s
			}
		}
	}
	if largest < 96 || largest > 100 {
		t.Fatalf("largest benchmark node = %d bytes, want 96-100 (paper: 96)", largest)
	}
	// Deblur's grayscale output (observation reused by every iteration)
	// is the paper-style 96-byte case: 1 parent, 7 children.
	if got := NodeSize(1, 7); got != 96 {
		t.Fatalf("1-parent 7-child node = %d bytes, want 96", got)
	}
}

// TestAccStateSizeMatchesPaper: 32 bytes per accelerator, 236 total for 7.
func TestAccStateSizeMatchesPaper(t *testing.T) {
	a := AccState{}
	if got := len(a.Encode()); got != 32 {
		t.Fatalf("acc_state = %d bytes, paper says 32", got)
	}
	if got := TotalMetadataBytes(7); got != 236 {
		t.Fatalf("7-accelerator metadata = %d bytes, paper says 236", got)
	}
}

func TestAccStateRoundTrip(t *testing.T) {
	in := AccState{
		AccMMR: 0x40000000, DMAMMR: 0x40001000,
		SPMBase: 0x50000000, SPMStride: 0x10000,
		Status:       2,
		Output:       [3]Pointer{0x1000, 0, 0x2000},
		OngoingReads: [3]uint8{1, 0, 2},
	}
	out, err := DecodeAccState(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	if got := in.SPMAddr(2); got != 0x50020000 {
		t.Fatalf("SPMAddr(2) = %#x, want 0x50020000", got)
	}
	if _, err := DecodeAccState(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestDefaultPlatformMetadata(t *testing.T) {
	ms := DefaultPlatformMetadata()
	if len(ms) != 7 {
		t.Fatalf("platform has %d accelerators, want 7", len(ms))
	}
	seen := map[Pointer]bool{}
	for _, m := range ms {
		if m.AccMMR == 0 || m.DMAMMR == 0 {
			t.Fatal("unmapped MMR aperture")
		}
		if seen[m.AccMMR] {
			t.Fatal("overlapping MMR apertures")
		}
		seen[m.AccMMR] = true
		for i := 1; i < NumSPMPartitions; i++ {
			if m.SPMAddr(i) <= m.SPMAddr(i-1) {
				t.Fatal("scratchpad partitions not ascending")
			}
		}
	}
}

// TestDAGRoundTrip: every benchmark DAG encodes to the shared-memory image
// and decodes back with identical structure.
func TestDAGRoundTrip(t *testing.T) {
	for a := workload.App(0); a < workload.NumApps; a++ {
		d := workload.MustBuild(a)
		err := graph.AssignDeadlines(d, graph.DeadlineCPM,
			func(n *graph.Node) sim.Time { return n.Compute })
		if err != nil {
			t.Fatal(err)
		}
		img, addrs, err := EncodeDAG(d)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		nodes, err := DecodeDAG(img)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(nodes) != len(d.Nodes) {
			t.Fatalf("%v: decoded %d nodes, want %d", a, len(nodes), len(d.Nodes))
		}
		addrIndex := make(map[Pointer]int, len(addrs))
		for i, ad := range addrs {
			addrIndex[ad] = i
		}
		for i, dec := range nodes {
			orig := d.Nodes[i]
			if dec.Addr != addrs[i] {
				t.Fatalf("%v node %d: addr %#x, want %#x", a, i, dec.Addr, addrs[i])
			}
			if dec.AccID != uint32(orig.Kind) || dec.Op != uint8(orig.Op) {
				t.Fatalf("%v node %d: kind/op mismatch", a, i)
			}
			if dec.OutputBytes != uint32(orig.OutputBytes) ||
				dec.ExtraBytes != uint32(orig.ExtraInputBytes) {
				t.Fatalf("%v node %d: sizes mismatch", a, i)
			}
			if dec.DeadlineUS != uint32(orig.RelDeadline.Microseconds()) {
				t.Fatalf("%v node %d: deadline mismatch", a, i)
			}
			if len(dec.Parents) != len(orig.Parents) || len(dec.Children) != len(orig.Children) {
				t.Fatalf("%v node %d: fan mismatch", a, i)
			}
			for j, pa := range dec.Parents {
				wantIdx := -1
				for k, n2 := range d.Nodes {
					if n2 == orig.Parents[j] {
						wantIdx = k
					}
				}
				if got := addrIndex[pa]; got != wantIdx {
					t.Fatalf("%v node %d: parent %d points to node %d, want %d", a, i, j, got, wantIdx)
				}
				if dec.EdgeBytes[j] != uint32(orig.EdgeInBytes[j]) {
					t.Fatalf("%v node %d: edge bytes mismatch", a, i)
				}
			}
		}
	}
}

func TestEncodeEmptyDAG(t *testing.T) {
	if _, _, err := EncodeDAG(graph.New("e", "E", sim.Millisecond)); err == nil {
		t.Fatal("empty DAG accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	d := workload.MustBuild(workload.Canny)
	img, _, err := EncodeDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDAG(img[:30]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := DecodeDAG(img[:len(img)-3]); err == nil {
		t.Fatal("truncated node accepted")
	}
}
