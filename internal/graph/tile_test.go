package graph

import (
	"testing"

	"relief/internal/accel"
	"relief/internal/sim"
)

func diamondDAG() *DAG {
	d := New("t", "T", 10*sim.Millisecond)
	a := d.AddNode("a", accel.ISP, accel.OpDefault, 1000)
	a.ExtraInputBytes = 500
	b := d.AddNode("b", accel.Convolution, accel.OpDefault, 2000, a)
	b.FilterSize = 3
	c := d.AddNode("c", accel.ElemMatrix, accel.OpSqr, 2000, a)
	d.AddNode("d", accel.ElemMatrix, accel.OpAdd, 4000, b, c)
	return d
}

func TestTileStructure(t *testing.T) {
	d := diamondDAG()
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	td, err := Tile(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Nodes) != 4*len(d.Nodes) {
		t.Fatalf("tiled nodes = %d, want %d", len(td.Nodes), 4*len(d.Nodes))
	}
	if td.NumEdges() != 4*d.NumEdges() {
		t.Fatalf("tiled edges = %d, want %d", td.NumEdges(), 4*d.NumEdges())
	}
	if _, err := td.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	// Conservation: totals across tiles equal the original.
	var out, extra, edges int64
	var compute sim.Time
	for _, n := range td.Nodes {
		out += n.OutputBytes
		extra += n.ExtraInputBytes
		compute += n.Compute
		for _, e := range n.EdgeInBytes {
			edges += e
		}
	}
	var wantOut, wantExtra, wantEdges int64
	var wantCompute sim.Time
	for _, n := range d.Nodes {
		wantOut += n.OutputBytes
		wantExtra += n.ExtraInputBytes
		wantCompute += n.Compute
		for _, e := range n.EdgeInBytes {
			wantEdges += e
		}
	}
	if out != wantOut || extra != wantExtra || edges != wantEdges {
		t.Errorf("byte totals differ: out %d/%d extra %d/%d edges %d/%d",
			out, wantOut, extra, wantExtra, edges, wantEdges)
	}
	if compute != wantCompute {
		t.Errorf("compute total %v, want %v", compute, wantCompute)
	}
	// Filter size and kind propagate.
	for _, n := range td.Nodes {
		if n.Name == "b.t2" {
			if n.Kind != accel.Convolution || n.FilterSize != 3 {
				t.Error("tile lost kind/filter metadata")
			}
		}
	}
}

func TestTileRemainders(t *testing.T) {
	d := New("t", "T", sim.Millisecond)
	n := d.AddNode("n", accel.ElemMatrix, accel.OpAdd, 1001)
	n.ExtraInputBytes = 1001
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	td, err := Tile(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tn := range td.Nodes {
		total += tn.OutputBytes
	}
	if total != 1001 {
		t.Fatalf("remainder lost: total %d", total)
	}
}

func TestTileDegenerate(t *testing.T) {
	d := diamondDAG()
	same, err := Tile(d, 1)
	if err != nil || same != d {
		t.Fatal("tiles=1 must return the original DAG")
	}
	if _, err := Tile(d, 0); err == nil {
		t.Fatal("tiles=0 accepted")
	}
}

func TestTileRejectsCycle(t *testing.T) {
	d := New("cyclic", "Y", sim.Millisecond)
	a := d.AddNode("a", accel.ElemMatrix, accel.OpAdd, 100)
	b := d.AddNode("b", accel.ElemMatrix, accel.OpAdd, 100, a)
	a.Parents = append(a.Parents, b)
	a.EdgeInBytes = append(a.EdgeInBytes, 100)
	b.Children = append(b.Children, a)
	if _, err := Tile(d, 2); err == nil {
		t.Fatal("cyclic DAG tiled")
	}
}
