// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus micro-benchmarks of the
// scheduling policies' host-side cost — the Go-level counterpart of the
// paper's Fig. 12 microcontroller measurements — and of the functional
// kernels.
//
// Each BenchmarkTableN / BenchmarkFigN measures the wall time of
// regenerating that experiment from scratch (all underlying simulations
// included, no cross-iteration caching), so `-bench` doubles as the full
// reproduction run. The rendered tables themselves come from
// cmd/relief-bench.
package relief_test

import (
	"fmt"
	"testing"

	"relief"
	"relief/internal/accel"
	"relief/internal/core"
	"relief/internal/design"
	"relief/internal/dram"
	"relief/internal/exp"
	"relief/internal/graph"
	"relief/internal/hostif"
	"relief/internal/kernels"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/workload"
)

// ---- macro benchmarks: one per paper table/figure ----

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLevels(b *testing.B, fn func(*exp.Sweep, workload.Contention) (*exp.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := exp.NewSweep()
		for _, lvl := range []workload.Contention{workload.Low, workload.Medium, workload.High, workload.Continuous} {
			if _, err := fn(s, lvl); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig4(b *testing.B) { benchLevels(b, exp.Fig4) }
func BenchmarkFig5(b *testing.B) { benchLevels(b, exp.Fig5) }
func BenchmarkFig7(b *testing.B) { benchLevels(b, exp.Fig7) }
func BenchmarkFig8(b *testing.B) { benchLevels(b, exp.Fig8) }

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.Fig9(exp.NewSweep(), workload.High); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.Fig9(exp.NewSweep(), workload.Continuous); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table7(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table8(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablation(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- scenario benchmarks: simulation throughput per policy ----

func BenchmarkScenario(b *testing.B) {
	for _, policy := range []string{"FCFS", "LAX", "HetSched", "RELIEF"} {
		b.Run(policy, func(b *testing.B) {
			mix, _ := workload.ParseMix("CGL")
			for i := 0; i < b.N; i++ {
				if _, err := exp.Run(exp.Scenario{Mix: mix, Contention: workload.High, Policy: policy}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScenarioContinuous(b *testing.B) {
	mix, _ := workload.ParseMix("CGL")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(exp.Scenario{Mix: mix, Contention: workload.Continuous, Policy: "RELIEF"}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro benchmarks: host-side policy cost (cf. paper Fig. 12) ----

// queueOf builds a laxity-spread ready queue of n nodes.
func queueOf(n int) []*graph.Node {
	d := graph.New("bench", "B", 100*sim.Millisecond)
	var q []*graph.Node
	for i := 0; i < n; i++ {
		node := d.AddNode(fmt.Sprintf("n%d", i), accel.ElemMatrix, accel.OpAdd, 65536)
		node.Deadline = sim.Time(i+1) * sim.Millisecond
		node.PredRuntime = 100 * sim.Microsecond
		node.Laxity = node.Deadline - node.PredRuntime
		q = append(q, node)
	}
	return q
}

func BenchmarkSchedulerInsert(b *testing.B) {
	policies := []sched.Policy{
		sched.FCFS{}, sched.GEDFD{}, sched.GEDFN{}, sched.LL{}, sched.LAX{},
		sched.HetSched{}, core.New(),
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			q := queueOf(64)
			probe := queueOf(1)[0]
			probe.Deadline = 32 * sim.Millisecond
			probe.Laxity = probe.Deadline - probe.PredRuntime
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.InsertPos(q, probe, sim.Millisecond)
			}
		})
	}
}

func BenchmarkRELIEFEnqueueReady(b *testing.B) {
	r := core.New()
	base := queueOf(64)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var store [accel.NumKinds][]*graph.Node
		var queues sched.Queues
		for k := range store {
			queues = append(queues, &store[k])
		}
		store[accel.ElemMatrix] = append([]*graph.Node(nil), base...)
		ready := queueOf(3)
		b.StartTimer()
		r.EnqueueReady(queues, ready, func(int) int { return 1 }, sim.Millisecond)
	}
}

// ---- kernel benchmarks ----

func BenchmarkKernelConvolve5x5(b *testing.B) {
	im := kernels.NewImage(128, 128)
	k := kernels.GaussianKernel(5, 1.4)
	b.SetBytes(128 * 128 * 4)
	for i := 0; i < b.N; i++ {
		kernels.Convolve(im, k)
	}
}

func BenchmarkKernelCannyPipeline(b *testing.B) {
	raw := make([]byte, 128*128)
	for i := range raw {
		raw[i] = byte(i * 31)
	}
	for i := 0; i < b.N; i++ {
		if _, err := kernels.Canny(raw, 128, 128, 0.05, 0.15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGRUCell(b *testing.B) {
	const hidden = 64
	w := &kernels.GRUWeights{
		Wz: kernels.RandMat(hidden, hidden, 1, 0.5), Uz: kernels.RandMat(hidden, hidden, 2, 0.5),
		Wr: kernels.RandMat(hidden, hidden, 3, 0.5), Ur: kernels.RandMat(hidden, hidden, 4, 0.5),
		Wh: kernels.RandMat(hidden, hidden, 5, 0.5), Uh: kernels.RandMat(hidden, hidden, 6, 0.5),
	}
	x := kernels.RandMat(16, hidden, 7, 1)
	h := kernels.NewMat(16, hidden)
	for i := 0; i < b.N; i++ {
		h = kernels.GRUCell(w, x, h)
	}
}

// BenchmarkSimulatorEventRate measures raw discrete-event throughput.
func BenchmarkSimulatorEventRate(b *testing.B) {
	k := sim.NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(sim.Nanosecond, tick)
		}
	}
	k.Schedule(0, tick)
	k.Run()
}

// BenchmarkFullSystemRELIEF measures one CGL high-contention simulation via
// the public API.
func BenchmarkFullSystemRELIEF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
		for _, app := range []string{"canny", "gru", "lstm"} {
			d, err := relief.BuildWorkload(app)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Submit(d, 0); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run()
	}
}

// ---- extension-study and substrate benchmarks ----

func BenchmarkDRAMStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.DRAMStudy(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeriodicStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.PeriodicStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiledStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TiledStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.EnergyStudy(exp.NewSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDRAMController measures the bank-level controller's burst
// scheduling throughput.
func BenchmarkDRAMController(b *testing.B) {
	k := sim.NewKernel()
	c := dram.NewController(k, "dram", dram.LPDDR5())
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		c.Enqueue(4096, func() {})
	}
	k.Run()
}

// BenchmarkDesignSweep measures the full FU x ports ED^2 exploration for
// all seven accelerators.
func BenchmarkDesignSweep(b *testing.B) {
	sp := design.DefaultSpace()
	for i := 0; i < b.N; i++ {
		for _, k := range design.Kernels() {
			design.Choose(k, sp)
		}
	}
}

// BenchmarkEncodeDAG measures host-interface serialisation of the largest
// benchmark DAG.
func BenchmarkEncodeDAG(b *testing.B) {
	d := workload.MustBuild(workload.LSTM)
	for i := 0; i < b.N; i++ {
		if _, _, err := hostif.EncodeDAG(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDAG(b *testing.B) {
	img, _, err := hostif.EncodeDAG(workload.MustBuild(workload.LSTM))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	for i := 0; i < b.N; i++ {
		if _, err := hostif.DecodeDAG(img); err != nil {
			b.Fatal(err)
		}
	}
}
