// svcimport fixture, allowed side: cmd/* packages run on wall clock by
// nature, so importing the service-tracing package draws no diagnostic.
package main

import (
	_ "relief/internal/svctrace"
)

func main() {}
