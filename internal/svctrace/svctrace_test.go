package svctrace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"relief/internal/sim"
	"relief/internal/trace"
)

func TestNewIDFormat(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID() = %q, not a valid trace ID", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{strings.Repeat("a", 32), true},
		{strings.Repeat("0", 32), true},
		{"0123456789abcdef0123456789abcdef", true},
		{"", false},
		{strings.Repeat("a", 31), false},
		{strings.Repeat("a", 33), false},
		{strings.Repeat("A", 32), false},          // uppercase
		{strings.Repeat("g", 32), false},          // non-hex
		{strings.Repeat("a", 30) + "\r\n", false}, // header injection
	}
	for _, c := range cases {
		if got := ValidID(c.id); got != c.ok {
			t.Errorf("ValidID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

// TestNilSafety: every method must be callable through nil receivers so
// call sites need no tracing-enabled branches.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	var st *Store
	sp := tr.StartSpan("cache")
	sp.Set("k", "v")
	sp.Event("source", "mem")
	sp.Fail(errors.New("x"))
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End() = %v, want 0", d)
	}
	tr.AddSpan("run", time.Now(), time.Millisecond)
	tr.SetResult("d", "run", 200)
	tr.AttachKernel([]trace.Event{{}})
	tr.Finish()
	if id := tr.ID(); id != "" {
		t.Errorf("nil trace ID() = %q", id)
	}
	if doc := tr.Document(); doc.Schema != Schema || len(doc.Spans) != 0 {
		t.Errorf("nil trace Document() = %+v", doc)
	}
	st.Add(New("x"))
	if got := st.Get("x"); got != nil {
		t.Errorf("nil store Get() = %v", got)
	}
	if n := st.Len(); n != 0 {
		t.Errorf("nil store Len() = %d", n)
	}
}

func TestDocumentSpans(t *testing.T) {
	id := strings.Repeat("ab", 16)
	tr := New(id)
	s1 := tr.StartSpan("cache")
	s1.Event("source", "mem")
	s1.Set("digest", "deadbeef")
	s1.End()
	s2 := tr.StartSpan("probe")
	s2.Set("peer", "http://peer:1")
	s2.Fail(errors.New("connection refused"))
	s2.End()
	tr.AddSpan("admission", time.Now().Add(-time.Millisecond), time.Millisecond, "queue", "0")
	tr.SetResult("deadbeef", "run", 200)
	total := tr.Finish()

	doc := tr.Document()
	if doc.Schema != Schema || doc.TraceID != id {
		t.Fatalf("doc header = %q %q", doc.Schema, doc.TraceID)
	}
	if doc.Digest != "deadbeef" || doc.Source != "run" || doc.Status != 200 {
		t.Fatalf("doc result = %q %q %d", doc.Digest, doc.Source, doc.Status)
	}
	if len(doc.Spans) != 3 {
		t.Fatalf("doc has %d spans, want 3", len(doc.Spans))
	}
	// Spans sorted by start offset: admission started ~1ms before the trace.
	if doc.Spans[0].Stage != "admission" {
		t.Errorf("first span = %q, want admission", doc.Spans[0].Stage)
	}
	var sum float64
	byStage := map[string]SpanDoc{}
	for _, s := range doc.Spans {
		byStage[s.Stage] = s
		if s.DurUS < 0 {
			t.Errorf("span %s has negative duration %v", s.Stage, s.DurUS)
		}
		sum += s.DurUS
	}
	if got := byStage["cache"].Events; len(got) != 1 || got[0].Name != "source" || got[0].Value != "mem" {
		t.Errorf("cache span events = %+v", got)
	}
	if byStage["cache"].Attrs["digest"] != "deadbeef" {
		t.Errorf("cache span attrs = %+v", byStage["cache"].Attrs)
	}
	if byStage["probe"].Error != "connection refused" {
		t.Errorf("probe span error = %q", byStage["probe"].Error)
	}
	if doc.TotalUS <= 0 || doc.TotalUS != us(total) {
		t.Errorf("TotalUS = %v, Finish returned %v", doc.TotalUS, us(total))
	}
	// Wall-time sanity: non-admission spans lie inside the trace window.
	if sum <= 0 {
		t.Errorf("span durations sum to %v", sum)
	}
}

// TestDocumentOpenSpansClosedAtEnd: a span never End()ed is clamped to the
// trace end instead of extending to infinity.
func TestDocumentOpenSpansClosedAtEnd(t *testing.T) {
	tr := New(strings.Repeat("1", 32))
	tr.StartSpan("forward") // never ended
	time.Sleep(time.Millisecond)
	tr.Finish()
	doc := tr.Document()
	if len(doc.Spans) != 1 {
		t.Fatalf("spans = %d", len(doc.Spans))
	}
	if doc.Spans[0].DurUS > doc.TotalUS {
		t.Errorf("open span duration %v exceeds trace total %v", doc.Spans[0].DurUS, doc.TotalUS)
	}
}

func TestDocEventsCombinesServiceAndKernel(t *testing.T) {
	tr := New(strings.Repeat("2", 32))
	sp := tr.StartSpan("run")
	time.Sleep(100 * time.Microsecond)
	sp.End()
	tr.AttachKernel([]trace.Event{{
		Kind:  trace.TaskCompute,
		Name:  "node0",
		Lane:  "em#0",
		Start: sim.Microsecond,
		End:   3 * sim.Microsecond,
		Meta:  map[string]string{"app": "CG"},
	}})
	tr.Finish()
	doc := tr.Document()
	if len(doc.KernelEvents) != 1 {
		t.Fatalf("kernel events = %d", len(doc.KernelEvents))
	}
	if doc.KernelEvents[0].Kind != "compute" || doc.KernelEvents[0].DurUS != 2 {
		t.Errorf("kernel event = %+v", doc.KernelEvents[0])
	}

	evs := doc.Events()
	if len(evs) != 2 {
		t.Fatalf("combined events = %d, want 2", len(evs))
	}
	var haveSvc, haveKern bool
	for _, e := range evs {
		if e.Meta["trace_id"] != doc.TraceID {
			t.Errorf("event %s missing trace_id meta: %+v", e.Name, e.Meta)
		}
		switch e.Kind {
		case trace.Service:
			haveSvc = true
			if e.Lane != ServiceLane || e.Name != "run" {
				t.Errorf("service event = %+v", e)
			}
		case trace.TaskCompute:
			haveKern = true
			if e.Meta["app"] != "CG" {
				t.Errorf("kernel meta lost: %+v", e.Meta)
			}
		}
	}
	if !haveSvc || !haveKern {
		t.Fatalf("missing service (%v) or kernel (%v) event", haveSvc, haveKern)
	}

	// The combined set must render through the shared Chrome writer.
	var buf bytes.Buffer
	if err := trace.WriteChromeEvents(&buf, evs); err != nil {
		t.Fatalf("WriteChromeEvents: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"service"`) || !strings.Contains(out, `"compute"`) {
		t.Errorf("chrome output missing categories:\n%s", out)
	}
}

func TestStoreBoundedFIFO(t *testing.T) {
	st := NewStore(3)
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = strings.Repeat(fmt.Sprintf("%x", i), 32)[:32]
		st.Add(New(ids[i]))
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	for _, id := range ids[:2] {
		if st.Get(id) != nil {
			t.Errorf("evicted trace %q still present", id)
		}
	}
	for _, id := range ids[2:] {
		if st.Get(id) == nil {
			t.Errorf("recent trace %q missing", id)
		}
	}
	// Re-adding an existing ID replaces without consuming capacity.
	st.Add(New(ids[4]))
	if st.Len() != 3 {
		t.Errorf("Len after re-add = %d, want 3", st.Len())
	}
}

func TestTextLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "text", "relief-serve")
	lg.Info("listening on http://127.0.0.1:8080")
	lg.Info("request", "trace_id", strings.Repeat("a", 32), "dur_ms", 1.5)
	lg.Warn("breaker open", "peer", "http://p:1")
	lg.Info("spaced", "msg2", "a b")
	out := buf.String()
	wants := []string{
		"relief-serve: listening on http://127.0.0.1:8080\n",
		"relief-serve: request trace_id=" + strings.Repeat("a", 32) + " dur_ms=1.5\n",
		"relief-serve: breaker open level=warn peer=http://p:1\n",
		"relief-serve: spaced msg2=\"a b\"\n",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("text log missing %q in:\n%s", w, out)
		}
	}
}

func TestTextLoggerWithAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "text", "relief-serve").With("peer", "http://p:1")
	lg.Info("probe", "outcome", "miss")
	if got, want := buf.String(), "relief-serve: probe peer=http://p:1 outcome=miss\n"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestJSONLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "json", "relief-serve")
	lg.Info("request", "trace_id", strings.Repeat("b", 32), "restored", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "request" || rec["trace_id"] != strings.Repeat("b", 32) {
		t.Errorf("record = %v", rec)
	}
	if n, ok := rec["restored"].(float64); !ok || n != 3 {
		t.Errorf("restored attr = %v (%T)", rec["restored"], rec["restored"])
	}
}

func TestDiscardLogger(t *testing.T) {
	lg := Discard()
	if lg.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
	lg.Info("dropped") // must not panic
}

func TestTraceConcurrency(t *testing.T) {
	tr := New(strings.Repeat("c", 32))
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			sp := tr.StartSpan(fmt.Sprintf("stage%d", i))
			sp.Set("k", "v")
			sp.Event("e", "v")
			sp.End()
			tr.Document()
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tr.Finish()
	if got := len(tr.Document().Spans); got != 8 {
		t.Fatalf("spans = %d, want 8", got)
	}
}
