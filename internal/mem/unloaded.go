package mem

import "relief/internal/sim"

// UnloadedTime returns the end-to-end pipeline time of an n-byte transfer
// over the path if every stage were idle: the same closed-form
// store-and-forward schedule an analytic claim computes (coalesce.go), with
// the front-end setup excluded. It works for any Server (including the
// bank-level DRAM controller, whose ServiceTime is its all-row-hit ideal).
//
// The metrics layer uses this as the "pure transfer" component of DMA
// latency attribution: observed duration = setup + UnloadedTime +
// contention stall, so the stall is whatever queueing, bandwidth sharing,
// row misses, and refreshes added on top of the idle-SoC schedule.
func UnloadedTime(path []Server, n int64) sim.Time {
	if n <= 0 || len(path) == 0 {
		return 0
	}
	C := int((n + DefaultChunkBytes - 1) / DefaultChunkBytes)
	last := n - int64(C-1)*DefaultChunkBytes
	U := C - 1 // uniform full-size chunks ahead of the final one
	var sum, max sim.Time
	var prevLastEnd sim.Time
	for s, srv := range path {
		tau := srv.ServiceTime(DefaultChunkBytes)
		lam := srv.ServiceTime(last)
		sum += tau
		if tau > max {
			max = tau
		}
		// at = service start of the final chunk at this stage: after the
		// U-th uniform chunk completes here, and after the final chunk
		// drains from the previous stage.
		var at sim.Time
		if U > 0 {
			at = sum + sim.Time(U-1)*max // endOf(U-1, s)
		}
		if s > 0 && prevLastEnd > at {
			at = prevLastEnd
		}
		prevLastEnd = at + lam
	}
	return prevLastEnd
}
