package serve

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) health(threshold int) *peerHealth {
	return newPeerHealth("http://peer:1", breakerConfig{threshold: threshold}, c.now)
}

// TestBreakerOpensAfterThreshold: the breaker stays closed through
// threshold-1 consecutive failures, opens on the threshold-th, and then
// fails fast without consulting the network.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	h := clk.health(3)
	for i := 0; i < 2; i++ {
		if !h.allow() {
			t.Fatalf("breaker not closed after %d failures", i)
		}
		h.failure()
	}
	if h.stateG.Load() != breakerClosed {
		t.Fatalf("state after 2/3 failures = %s, want closed", breakerStateName(h.stateG.Load()))
	}
	h.failure()
	if h.stateG.Load() != breakerOpen {
		t.Fatalf("state after 3/3 failures = %s, want open", breakerStateName(h.stateG.Load()))
	}
	if h.allow() {
		t.Error("open breaker allowed an attempt before backoff expiry")
	}
	if h.opens.Load() != 1 {
		t.Errorf("opens = %d, want 1", h.opens.Load())
	}
}

// TestBreakerHalfOpenProbe: after the backoff window the breaker grants
// exactly one half-open probe; a success closes it, and the backoff resets.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	h := clk.health(1)
	h.failure() // threshold 1: open immediately
	if h.stateG.Load() != breakerOpen {
		t.Fatal("breaker did not open")
	}
	// base 250ms + jitter ≤ base/4 → any attempt within base must fail fast.
	if h.allow() {
		t.Fatal("probe granted before backoff expired")
	}
	clk.advance(h.cfg.base + h.cfg.base/4) // past backoff + max jitter
	if !h.allow() {
		t.Fatal("no half-open probe after backoff expiry")
	}
	if h.stateG.Load() != breakerHalfOpen {
		t.Fatalf("state during probe = %s, want half-open", breakerStateName(h.stateG.Load()))
	}
	// Only ONE probe: a second caller must fail fast while it is out.
	if h.allow() {
		t.Error("second concurrent half-open probe granted")
	}
	if h.probes.Load() != 1 {
		t.Errorf("probes = %d, want 1", h.probes.Load())
	}
	h.success()
	if h.stateG.Load() != breakerClosed || !h.allow() {
		t.Error("successful probe did not close the breaker")
	}
	h.mu.Lock()
	backoff := h.backoff
	h.mu.Unlock()
	if backoff != 0 {
		t.Errorf("backoff after recovery = %v, want 0 (reset)", backoff)
	}
}

// TestBreakerBackoffDoublesBounded: each failed half-open probe doubles the
// open interval up to the max, never beyond.
func TestBreakerBackoffDoublesBounded(t *testing.T) {
	clk := newFakeClock()
	h := clk.health(1)
	prev := time.Duration(0)
	for i := 0; i < 12; i++ {
		h.failure()
		h.mu.Lock()
		backoff := h.backoff
		h.mu.Unlock()
		if backoff > h.cfg.max {
			t.Fatalf("round %d: backoff %v exceeds max %v", i, backoff, h.cfg.max)
		}
		if prev > 0 && backoff < prev {
			t.Fatalf("round %d: backoff shrank %v → %v without a success", i, prev, backoff)
		}
		prev = backoff
		// Walk time forward far enough to earn the next probe, fail it.
		clk.advance(backoff + backoff/4 + time.Millisecond)
		if !h.allow() {
			t.Fatalf("round %d: no probe after full backoff", i)
		}
	}
	if prev != h.cfg.max {
		t.Errorf("backoff after 12 failed rounds = %v, want max %v", prev, h.cfg.max)
	}
}

// TestBreakerDeterministicSchedule: two trackers for the same peer replay
// the same failure sequence onto the same retry deadlines — the jitter is
// seeded from the peer URL, not wall-clock entropy.
func TestBreakerDeterministicSchedule(t *testing.T) {
	run := func() []time.Time {
		clk := newFakeClock()
		h := clk.health(1)
		var deadlines []time.Time
		for i := 0; i < 8; i++ {
			h.failure()
			h.mu.Lock()
			deadlines = append(deadlines, h.retryAt)
			backoff := h.backoff
			h.mu.Unlock()
			clk.advance(backoff * 2)
			h.allow()
		}
		return deadlines
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("retry deadline %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBreakerSuccessResetsFailureStreak: interleaved successes keep a flaky
// but mostly healthy peer's breaker closed — only *consecutive* failures
// count toward the threshold.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newFakeClock()
	h := clk.health(3)
	for i := 0; i < 10; i++ {
		h.failure()
		h.failure()
		h.success()
	}
	if h.stateG.Load() != breakerClosed {
		t.Errorf("state = %s, want closed (2-failure streaks never reach threshold 3)",
			breakerStateName(h.stateG.Load()))
	}
	if h.opens.Load() != 0 {
		t.Errorf("opens = %d, want 0", h.opens.Load())
	}
}
