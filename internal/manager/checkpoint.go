package manager

// Checkpoint/restore of a warmed simulation (docs/CHECKPOINT.md).
//
// A checkpoint is only taken at a *quiescent instant*: the top of a DAG
// release when no released DAG is still in flight and every event left in
// the kernel queue is replayable from the simulation's inputs (pending
// periodic releases, scripted instance deaths — see sim.AtReplay). At such
// an instant the live state of the run collapses to accumulated accounting:
// statistics, busy-time integrals, bank row buffers, predictor observation
// history, and the fault injector's PRNG position. None of the cyclic
// runtime structures (DAGs, node states, scratchpad residency) need to be
// serialized — finished DAGs are never referenced again, and the reclaim
// paths that could observe stale scratchpad residents are provably no-ops
// for completed work — so a restored run re-creates the event queue by
// re-submitting the schedule and continues bit-identically.
//
// Sequence numbers: the restored kernel continues numbering from the
// captured value, so re-created release events carry sequence numbers that
// are uniformly shifted from the uninterrupted run's but relatively ordered
// the same (deaths re-armed first, then releases in submission order,
// before any dynamically scheduled event — exactly the cold ordering).
// Dispatch compares (at, seq) and absolute values are observable nowhere,
// so dispatch order — and therefore every result byte — is unchanged.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"relief/internal/accel"
	"relief/internal/dram"
	"relief/internal/fault"
	"relief/internal/predict"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/xbar"
)

// Checkpoint is the complete serializable state of a quiescent simulation.
// All fields are exported for gob.
type Checkpoint struct {
	// CapturedAt is the quiescent instant (a DAG release time).
	CapturedAt sim.Time
	// Kernel is the clock and sequence counter.
	Kernel sim.KernelState
	// Stats is the full accumulated statistics object.
	Stats *stats.Stats
	// FreeAt is the manager microcontroller's busy-until time.
	FreeAt sim.Time
	// LastDone is the completion time of the last finished DAG.
	LastDone sim.Time
	// Deaths counts permanently dead instances.
	Deaths int
	// Instances carries per-accelerator accumulated state, in index order.
	Instances []InstanceState
	// Interconnect is the link/occupancy accounting.
	Interconnect xbar.State
	// DRAM is the bank-level controller state (nil without DetailedDRAM).
	DRAM *dram.ControllerState
	// BW is the bandwidth predictor's observation history.
	BW predict.BWState
	// Injector is the fault injector's PRNG draw position (zero without a
	// fault plan).
	Injector fault.InjectorState
}

// InstanceState is one accelerator instance's serializable state. Scratchpad
// residency (Parts, LastNode) is deliberately absent: at a quiescent instant
// every resident output belongs to a finished DAG, and such residents are
// unreachable — cross-DAG nodes never appear among a new node's parents, and
// the partition-reclaim writeback test is a no-op for any node that is
// either written back or fully fetched (all completed work is one or the
// other). Restoring empty scratchpads is therefore bit-identical.
type InstanceState struct {
	Kind        int
	ComputeBusy sim.Time
	Health      int
	NextPart    int
}

// captureArm is the pending-capture state installed by ArmCheckpoint.
type captureArm struct {
	armAt sim.Time
	done  bool
	data  []byte
	at    sim.Time
	err   error
}

// ArmCheckpoint asks the manager to capture a checkpoint at the first
// quiescent DAG release at or after time at, then skip all remaining
// releases (the run drains cheaply to its horizon). Must be called before
// the run starts. Only statically scheduled workloads (Submit before the
// run, or SubmitPeriodic) can quiesce; continuous-contention resubmission
// never does, and such a run simply reports no checkpoint.
func (m *Manager) ArmCheckpoint(at sim.Time) {
	m.ckpt = &captureArm{armAt: at}
}

// CheckpointData returns the gob-encoded checkpoint captured during the run
// and its capture time. It errors if no checkpoint was armed, the run never
// reached a quiescent release after the arm time, or the capture itself
// failed.
func (m *Manager) CheckpointData() ([]byte, sim.Time, error) {
	if m.ckpt == nil {
		return nil, 0, fmt.Errorf("manager: no checkpoint armed")
	}
	if !m.ckpt.done {
		return nil, 0, fmt.Errorf("manager: run never quiesced at a release after %v (workload saturated or horizon too short); no checkpoint", m.ckpt.armAt)
	}
	return m.ckpt.data, m.ckpt.at, m.ckpt.err
}

// ResumedFrom returns the capture time of the checkpoint this manager was
// restored from (zero for a cold run).
func (m *Manager) ResumedFrom() sim.Time { return m.resumeAt }

// maybeCapture runs at the top of every DAG release when a checkpoint is
// armed. It reports true when the release must not proceed: either the
// capture just happened here (this release and everything after it will be
// re-derived by the restored run) or it already has (the run is draining).
func (m *Manager) maybeCapture() bool {
	a := m.ckpt
	if a == nil {
		return false
	}
	if a.done {
		return true
	}
	if m.k.Now() < a.armAt || m.inFlight != 0 || m.k.PendingNonReplay() != 0 {
		return false
	}
	a.done = true
	a.at = m.k.Now()
	a.data, a.err = m.capture()
	return true
}

// capture serializes the quiescent state. The encode happens immediately —
// by value — so nothing the draining run mutates afterwards can leak in.
func (m *Manager) capture() ([]byte, error) {
	ck := Checkpoint{
		CapturedAt: m.k.Now(),
		Kernel:     m.k.CaptureState(),
		Stats:      m.st,
		FreeAt:     m.freeAt,
		LastDone:   m.lastDone,
		Deaths:     m.deaths,
		BW:         predict.CaptureBW(m.cfg.BW),
		Injector:   m.inj.CaptureState(),
	}
	for _, inst := range m.insts {
		if inst.Busy || inst.dmaBusy || inst.curNode != nil {
			return nil, fmt.Errorf("manager: instance %s busy at capture", inst.Lane())
		}
		ck.Instances = append(ck.Instances, InstanceState{
			Kind:        int(inst.Kind),
			ComputeBusy: inst.ComputeBusy,
			Health:      int(inst.Health),
			NextPart:    inst.NextPart,
		})
	}
	ics, err := m.ic.CaptureState()
	if err != nil {
		return nil, err
	}
	ck.Interconnect = ics
	if m.dram != nil {
		ds, err := m.dram.CaptureState()
		if err != nil {
			return nil, err
		}
		ck.DRAM = &ds
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ck); err != nil {
		return nil, fmt.Errorf("manager: checkpoint encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore builds a manager primed with a captured checkpoint on a fresh
// kernel. The configuration must describe the same platform the checkpoint
// was taken on (same instances, topology, predictors, fault plan); the
// caller then re-submits the full workload schedule — the manager skips
// everything that completed before the capture instant — and runs to the
// horizon as usual. The restored run's results are byte-identical to the
// uninterrupted run's.
func Restore(k *sim.Kernel, cfg Config, data []byte) (*Manager, *stats.Stats, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return nil, nil, fmt.Errorf("manager: checkpoint decode: %w", err)
	}
	if ck.Stats == nil || ck.CapturedAt <= 0 {
		return nil, nil, fmt.Errorf("manager: checkpoint has no captured state")
	}
	if err := k.RestoreState(ck.Kernel); err != nil {
		return nil, nil, err
	}
	m := newManager(k, cfg, ck.Stats, ck.CapturedAt)
	m.freeAt = ck.FreeAt
	m.lastDone = ck.LastDone
	m.deaths = ck.Deaths
	if len(ck.Instances) != len(m.insts) {
		return nil, nil, fmt.Errorf("manager: restore platform has %d instances, checkpoint has %d", len(m.insts), len(ck.Instances))
	}
	for i, is := range ck.Instances {
		inst := m.insts[i]
		if int(inst.Kind) != is.Kind {
			return nil, nil, fmt.Errorf("manager: restore instance %d kind mismatch with checkpoint", i)
		}
		inst.ComputeBusy = is.ComputeBusy
		inst.Health = accel.Health(is.Health)
		inst.NextPart = is.NextPart
	}
	if err := m.ic.RestoreState(ck.Interconnect); err != nil {
		return nil, nil, err
	}
	if (m.dram != nil) != (ck.DRAM != nil) {
		return nil, nil, fmt.Errorf("manager: restore DRAM model mismatch with checkpoint")
	}
	if m.dram != nil {
		if err := m.dram.RestoreState(*ck.DRAM); err != nil {
			return nil, nil, err
		}
	}
	if err := predict.RestoreBW(m.cfg.BW, ck.BW); err != nil {
		return nil, nil, err
	}
	if cfg.Fault != nil {
		in, err := cfg.Fault.RestoreInjector(ck.Injector)
		if err != nil {
			return nil, nil, err
		}
		m.inj = in
		if m.dram != nil {
			m.dram.SetFault(in.DRAM)
		}
	} else if ck.Injector != (fault.InjectorState{}) {
		return nil, nil, fmt.Errorf("manager: checkpoint carries fault state but configuration has no fault plan")
	}
	return m, ck.Stats, nil
}
