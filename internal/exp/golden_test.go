package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
)

// goldenMainGridDigest locks the simulation results of the full main
// scenario grid (every contention level x mix x fairness policy). It was
// captured from the pre-optimization (chunk-by-chunk, container/heap)
// simulator, so any hot-path optimization — the pooled event kernel, DMA
// chunk coalescing, DRAM burst-run batching — must reproduce every
// makespan, deadline percentage, traffic counter, and occupancy value
// bit-for-bit to pass.
//
// If this test fails, the optimization changed simulation *results*, not
// just simulation *speed*: that is a correctness bug, not a baseline to
// re-record.
const goldenMainGridDigest = "366f59930417d4970ea96d5b02861cd620e32c272817848427cce8ccf5befa7a"

// scenarioDigestLine renders every result field the paper's tables and
// figures consume, in a canonical, map-order-independent form. Floats are
// rendered via their IEEE bit patterns so the comparison is exact.
func scenarioDigestLine(sc Scenario, r *Result) string {
	st := r.Stats
	syms := ""
	for _, a := range sc.Mix {
		syms += a.Sym()
	}
	line := fmt.Sprintf("%s/%s/%s end=%d mk=%d edges=%d fwd=%d col=%d "+
		"base=%d dr=%d dw=%d sx=%d sd=%d nd=%d nm=%d cb=%d ic=%016x",
		sc.Contention, syms, sc.Policy,
		int64(r.End), int64(st.Makespan), st.Edges, st.Forwards, st.Colocations,
		st.BaselineBytes, st.DRAMReadBytes, st.DRAMWriteBytes,
		st.SpadXferBytes, st.SpadDMABytes,
		st.NodesDone, st.NodesMetDeadline, int64(st.ComputeBusy),
		math.Float64bits(st.InterconnectOccupancy))
	apps := make([]string, 0, len(st.Apps))
	for name := range st.Apps {
		apps = append(apps, name)
	}
	sort.Strings(apps)
	for _, name := range apps {
		a := st.Apps[name]
		line += fmt.Sprintf(" %s:it=%d,met=%d,nd=%d,nm=%d", name,
			a.Iterations, a.DeadlinesMet, a.NodesDone, a.NodesMetDeadline)
		for _, rt := range a.Runtimes {
			line += fmt.Sprintf(",%d", int64(rt))
		}
	}
	return line + "\n"
}

// TestGoldenMainGridDeterminism regenerates the entire main grid and
// compares a digest of every per-scenario result against the value locked
// in from the pre-optimization simulator.
func TestGoldenMainGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full main grid in -short mode")
	}
	grid := MainGrid()
	s := NewSweep()
	s.Warm(grid, runtime.GOMAXPROCS(0))
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, sc := range grid {
		r, err := s.Get(sc)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(h, scenarioDigestLine(sc, r))
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != goldenMainGridDigest {
		t.Fatalf("main-grid digest diverged from the pre-optimization simulator:\n got %s\nwant %s\n"+
			"simulation results changed — this is a correctness regression, not a new baseline",
			got, goldenMainGridDigest)
	}
}
