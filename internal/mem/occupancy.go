package mem

import "relief/internal/sim"

// Occupancy tracks the union busy time of a set of resources: the total
// simulated time during which at least one attached resource was serving.
// The interconnect attaches its links (bus or crossbar ports, not DRAM) so
// it can report the paper's Fig. 13 occupancy metric.
//
// The tracker also anchors analytic transfer claims (see coalesce.go): at
// most one claim may be active per tracker, and any event-driven busy
// transition materializes the claim before the union state is updated, so
// the union accounting never mixes event-driven intervals with analytic
// ones.
type Occupancy struct {
	k      *sim.Kernel
	active int      // attached resources currently busy (event-driven)
	since  sim.Time // start of the current union busy period
	acc    sim.Time // accumulated closed union busy periods
	cl     *claim   // active analytic claim over attached resources, if any

	// Claims counts analytic transfer claims anchored on this tracker;
	// Conflicts the subset folded back to chunk-wise state early because a
	// second stream touched the path (a direct measure of DMA path
	// collisions, exported by the metrics layer).
	Claims, Conflicts int64
}

// NewOccupancy returns an empty union tracker.
func NewOccupancy(k *sim.Kernel) *Occupancy {
	return &Occupancy{k: k}
}

// linkBusy records a busy transition of an attached resource.
func (o *Occupancy) linkBusy(busy bool) {
	if o.cl != nil {
		// An event-driven transition while a claim is analytic means the
		// claim is no longer the sole traffic; fold it back to event-driven
		// state first so the union below composes correctly.
		o.cl.materialize() //lint:allow hotalloc claim conflict fold-back is a cold path; sole-occupant steady state never takes it
	}
	if busy {
		if o.active == 0 {
			o.since = o.k.Now()
		}
		o.active++
	} else {
		o.active--
		if o.active == 0 {
			o.acc += o.k.Now() - o.since
		}
	}
}

// Busy returns the total union busy time through the current instant,
// including the open period (event-driven or analytic) if one is active.
func (o *Occupancy) Busy() sim.Time {
	b := o.acc
	if o.cl != nil {
		b += o.cl.unionBusyUpTo(o.k.Now())
	}
	if o.active > 0 {
		b += o.k.Now() - o.since
	}
	return b
}
