// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (type Time) so that sub-nanosecond
// bus beats can be represented exactly. Events scheduled for the same tick
// fire in the order they were scheduled, which makes every simulation run
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Microseconds returns t expressed in microseconds as a float64.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t expressed in milliseconds as a float64.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t expressed in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Event is a handle for a scheduled callback. It can be cancelled before it
// fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Kernel is an event-driven simulation engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have been dispatched so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule arranges for fn to run delay picoseconds from now. A negative
// delay is treated as zero. The returned event may be cancelled.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At arranges for fn to run at absolute time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < k.now {
		t = k.now
	}
	e := &Event{at: t, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		if e != nil {
			e.cancelled = true
		}
		return
	}
	e.cancelled = true
	heap.Remove(&k.queue, e.index)
}

// Halt stops the current Run/RunUntil loop after the in-flight event returns.
func (k *Kernel) Halt() { k.halted = true }

// Pending reports how many events are queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// Run dispatches events until the queue is empty or Halt is called.
// It returns the final simulation time.
func (k *Kernel) Run() Time {
	return k.RunUntil(-1)
}

// RunUntil dispatches events with timestamps <= limit (limit < 0 means no
// limit) until the queue drains, Halt is called, or the next event lies
// beyond the limit. When stopping because of the limit the clock is advanced
// to the limit.
func (k *Kernel) RunUntil(limit Time) Time {
	k.halted = false
	for len(k.queue) > 0 && !k.halted {
		next := k.queue[0]
		if limit >= 0 && next.at > limit {
			k.now = limit
			return k.now
		}
		heap.Pop(&k.queue)
		if next.cancelled {
			continue
		}
		k.now = next.at
		k.fired++
		next.fn()
	}
	if limit >= 0 && k.now < limit && !k.halted {
		k.now = limit
	}
	return k.now
}

// eventHeap orders events by (time, sequence) for deterministic dispatch.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
