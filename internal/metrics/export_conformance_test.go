package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"http://peer:8080/a,b", "http://peer:8080/a,b"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"tab\tstays", "tab\tstays"},             // spec: tabs are NOT escaped
		{"unicode µs stays", "unicode µs stays"}, // spec: UTF-8 raw
		{`all"three\of
them`, `all\"three\\of\nthem`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabelHelper(t *testing.T) {
	if got, want := Label("m"), "m"; got != want {
		t.Errorf("Label no kvs = %q, want %q", got, want)
	}
	got := Label("m", "peer", `u"r\l`, "stage", "run")
	want := `m{peer="u\"r\\l",stage="run"}`
	if got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

// TestPrometheusLabelEscapingGolden locks the exposition bytes for label
// values carrying every character the text format requires escaped —
// a peer URL can legally contain quotes, backslashes, and (via header
// smuggling bugs) newlines, and the scrape must stay parseable.
func TestPrometheusLabelEscapingGolden(t *testing.T) {
	r := NewRegistry()
	hostile := "http://pe\"er\\8080\nx"
	c := r.Counter(Label("relief_peer_hits_total", "peer", hostile), "peer cache hits")
	c.Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# HELP relief_peer_hits_total peer cache hits\n" +
		"# TYPE relief_peer_hits_total counter\n" +
		`relief_peer_hits_total{peer="http://pe\"er\\8080\nx"} 2` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// No raw newline may survive inside a sample line.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "http://pe") && !strings.Contains(line, `\n`) {
			t.Errorf("raw newline leaked into exposition line %q", line)
		}
	}
}

// TestBucketHistogramExposition locks the TYPE histogram rendering:
// cumulative le buckets, +Inf, _sum/_count, labels preserved before the
// suffix.
func TestBucketHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.BucketHistogram(Label("relief_serve_stage_latency_ms", "stage", "run"),
		"per-stage latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 3, 50, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# HELP relief_serve_stage_latency_ms per-stage latency\n" +
		"# TYPE relief_serve_stage_latency_ms histogram\n" +
		`relief_serve_stage_latency_ms_bucket{stage="run",le="1"} 2` + "\n" +
		`relief_serve_stage_latency_ms_bucket{stage="run",le="10"} 3` + "\n" +
		`relief_serve_stage_latency_ms_bucket{stage="run",le="100"} 4` + "\n" +
		`relief_serve_stage_latency_ms_bucket{stage="run",le="+Inf"} 5` + "\n" +
		`relief_serve_stage_latency_ms_sum{stage="run"} 1054.5` + "\n" +
		`relief_serve_stage_latency_ms_count{stage="run"} 5` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBucketHistogramFamilyHeaderOnce: several labelled series of one
// family share a single HELP/TYPE header.
func TestBucketHistogramFamilyHeaderOnce(t *testing.T) {
	r := NewRegistry()
	for _, stage := range []string{"cache", "run"} {
		r.BucketHistogram(Label("relief_serve_stage_latency_ms", "stage", stage),
			"per-stage latency", []float64{1}).Observe(0.5)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE relief_serve_stage_latency_ms histogram"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1:\n%s", n, buf.String())
	}
}

func TestBucketHistogramNilAndMisuse(t *testing.T) {
	var h *BucketHistogram
	h.Observe(1) // no-op, no panic
	if h.Count() != 0 || h.Sum() != 0 || h.Name() != "" {
		t.Error("nil BucketHistogram not a no-op")
	}
	r := NewRegistry()
	r.BucketHistogram("x", "h", []float64{1, 2})
	// Same name + same bounds fetches the existing histogram.
	if r.BucketHistogram("x", "h", []float64{1, 2}) == nil {
		t.Error("re-fetch returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different bounds did not panic")
		}
	}()
	r.BucketHistogram("x", "h", []float64{1, 3})
}

// TestBucketHistogramExcludedFromJSON: the relief-metrics/1 document (and
// its golden digest) must not change when bucket histograms exist.
func TestBucketHistogramExcludedFromJSON(t *testing.T) {
	r1 := NewRegistry()
	r2 := NewRegistry()
	r2.BucketHistogram("relief_serve_stage_latency_ms", "x", []float64{1}).Observe(5)
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("bucket histogram leaked into JSON summary:\n%s", b2.String())
	}
	var c1, c2 bytes.Buffer
	if err := r1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Errorf("bucket histogram leaked into CSV:\n%s", c2.String())
	}
}
