package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"relief/internal/metrics"
	"relief/internal/workload"
)

// TestMetricsNeutrality verifies that attaching a registry changes nothing
// the paper's tables consume: probes read state only, so a metricised run
// must be bit-identical to a bare one.
func TestMetricsNeutrality(t *testing.T) {
	mix, err := MixBySyms("CGL")
	if err != nil {
		t.Fatal(err)
	}
	bare := Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"}
	rBare, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	met := bare
	met.Metrics = metrics.NewRegistry()
	rMet, err := Run(met)
	if err != nil {
		t.Fatal(err)
	}
	if rMet.Scenario.Metrics.Samples() == 0 {
		t.Fatal("registry collected no probe samples")
	}
	// Compare through the golden digest line, with the scenario field reset
	// so only simulation results differ.
	rMet.Scenario = bare
	if a, b := scenarioDigestLine(bare, rBare), scenarioDigestLine(bare, rMet); a != b {
		t.Fatalf("metrics changed simulation results:\nbare: %s\nmet:  %s", a, b)
	}
}

// TestAttributionContrast checks the observability layer surfaces the
// paper's core effect: on a high-contention mix, the movement-blind FCFS
// baseline spends a visibly larger share of node latency stalled on DMA
// contention than RELIEF does.
func TestAttributionContrast(t *testing.T) {
	_, regs, err := AttributionStudy("CGL", []string{"FCFS", "RELIEF"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fcfs := regs["FCFS"].Attribution().Total.StallShare()
	relief := regs["RELIEF"].Attribution().Total.StallShare()
	if fcfs <= relief {
		t.Fatalf("FCFS stall share %.2f%% <= RELIEF %.2f%%: attribution does not show the contention gap", fcfs, relief)
	}
	t.Logf("stall share: FCFS %.1f%%, RELIEF %.1f%%", fcfs, relief)
}

// TestAttributionStudyTable locks the table shape the CLI and report render.
func TestAttributionStudyTable(t *testing.T) {
	tab, regs, err := AttributionStudy("CG", PolicyNames[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(regs) != 2 {
		t.Fatalf("rows=%d regs=%d, want 2/2", len(tab.Rows), len(regs))
	}
	if len(tab.Cols) != 8 {
		t.Fatalf("cols = %v", tab.Cols)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Cols) {
			t.Fatalf("ragged row %v", row)
		}
	}
	if _, _, err := AttributionStudy("CGX", PolicyNames[:1], 0); err == nil {
		t.Fatal("bad mix symbol accepted")
	}
}

// metricsJSONGoldenDigest locks the full relief-metrics/1 JSON summary of
// one fixed scenario: schema string, key order, metric names, histogram
// quantiles, probe sample count, and attribution values. Determinism of the
// export (stable key order, canonical float rendering) plus determinism of
// the simulation makes this digest stable across runs and platforms.
const metricsJSONGoldenDigest = "f78750e82ee6bc8cbcc2d32bbd47e6290e85013b5e7b89deeb77cca6c2ece332"

func TestMetricsJSONGoldenDigest(t *testing.T) {
	mix, err := MixBySyms("CGL")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	if _, err := Run(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	got := hex.EncodeToString(sum[:])
	if got != metricsJSONGoldenDigest {
		t.Fatalf("metrics JSON digest = %s, want %s\nIf the metric catalogue "+
			"deliberately changed, re-record the constant; an unexplained change "+
			"means the export or the simulation went non-deterministic.\nfirst bytes:\n%.600s",
			got, metricsJSONGoldenDigest, buf.String())
	}
}
