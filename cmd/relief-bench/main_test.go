package main

import "testing"

// TestRegistryConsistency: every experiment in the presentation order
// exists, and every registered experiment appears in the order.
func TestRegistryConsistency(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range order {
		if _, ok := experiments[name]; !ok {
			t.Errorf("order lists unknown experiment %q", name)
		}
		if seen[name] {
			t.Errorf("order lists %q twice", name)
		}
		seen[name] = true
	}
	for name := range experiments {
		if !seen[name] {
			t.Errorf("experiment %q missing from presentation order", name)
		}
	}
}
