package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapMatchesReferenceSort drives the 4-ary heap with batches of
// events carrying random (possibly colliding) timestamps and checks the
// dispatch order against a stable reference sort by (time, seq).
func TestHeapMatchesReferenceSort(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		n := 1 + rng.Intn(500)
		type ref struct {
			at  Time
			idx int
		}
		var want []ref
		var got []ref
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(40)) // heavy tick collisions on purpose
			want = append(want, ref{at, i})
			i := i
			k.At(at, func() { got = append(got, ref{k.Now(), i}) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		k.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: dispatched %d events, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch[%d] = %+v, want %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestHeapInterleavedPushPop mixes scheduling from inside handlers with
// cancellations and verifies global (time, seq) order is never violated.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := NewKernel()
	var lastAt Time
	var lastSeq uint64
	checks := 0
	var handler func(seq uint64) func()
	handler = func(seq uint64) func() {
		return func() {
			if k.Now() < lastAt || (k.Now() == lastAt && seq < lastSeq) {
				t.Fatalf("order violation at %v (seq %d after %d)", k.Now(), seq, lastSeq)
			}
			lastAt, lastSeq = k.Now(), seq
			checks++
			for i := 0; i < rng.Intn(3); i++ {
				e := k.Schedule(Time(rng.Intn(30)), handler(k.Scheduled()))
				if rng.Intn(4) == 0 {
					k.Cancel(e)
				}
			}
		}
	}
	for i := 0; i < 100; i++ {
		k.Schedule(Time(rng.Intn(100)), handler(k.Scheduled()))
	}
	k.Run()
	if checks < 100 {
		t.Fatalf("only %d events dispatched", checks)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", k.Pending())
	}
}

// TestScheduleSteadyStateDoesNotAllocate locks the free-list pool: a
// steady-state Schedule+fire cycle must not allocate.
func TestScheduleSteadyStateDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n%1000 != 0 {
			k.Schedule(Nanosecond, tick)
		}
	}
	// Warm the pool and the heap's backing array.
	k.Schedule(0, tick)
	k.Run()

	allocs := testing.AllocsPerRun(100, func() {
		n = 1 // arm for another 999-event burst
		k.Schedule(Nanosecond, tick)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+fire allocated %.1f times per 999-event burst, want 0", allocs)
	}
}

// TestEventAllocsCounter: the pool reuses events, so allocations stay at
// the high-water mark of concurrently pending events.
func TestEventAllocsCounter(t *testing.T) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10000 {
			k.Schedule(Nanosecond, tick)
		}
	}
	k.Schedule(0, tick)
	k.Run()
	if k.Fired() != 10000 {
		t.Fatalf("Fired() = %d, want 10000", k.Fired())
	}
	if k.Scheduled() != 10000 {
		t.Fatalf("Scheduled() = %d, want 10000", k.Scheduled())
	}
	if k.EventAllocs() > 2 {
		t.Fatalf("EventAllocs() = %d for a 1-deep event chain, want <= 2", k.EventAllocs())
	}
}

// BenchmarkKernelScheduleFire is the steady-state kernel micro-benchmark
// the allocation acceptance criterion is measured on.
func BenchmarkKernelScheduleFire(b *testing.B) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	k.Schedule(0, tick)
	k.Run()
}
