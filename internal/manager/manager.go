// Package manager implements the hardware accelerator manager of paper
// §II-B/§III-C: a microcontroller-class runtime that parses submitted DAG
// nodes, performs sorted insertion into per-accelerator-type ready queues
// under a pluggable scheduling policy, launches tasks through driver
// functions, services completion interrupts, and orchestrates the data
// forwarding mechanism (scratchpad partitions, ongoing-read reference
// counts, deferred write-backs, and colocation tracking).
package manager

import (
	"fmt"

	"relief/internal/accel"
	"relief/internal/dram"
	"relief/internal/fault"
	"relief/internal/graph"
	"relief/internal/mem"
	"relief/internal/metrics"
	"relief/internal/predict"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/xbar"
)

// Config parameterises the simulated platform and manager runtime.
type Config struct {
	// Instances is the number of accelerator instances per kind
	// (default: one of each, the paper's 7-accelerator platform).
	Instances [accel.NumKinds]int
	// OutputPartitions is the number of output scratchpad partitions per
	// accelerator (paper: double-buffered output; metadata supports 3).
	OutputPartitions int
	// Interconnect selects topology and bandwidths.
	Interconnect xbar.Config
	// Policy is the scheduling policy. Policies implementing
	// sched.Escalator get RELIEF-style forwarding escalation.
	Policy sched.Policy
	// BW is the memory-bandwidth predictor (default Max at effective DRAM
	// bandwidth).
	BW predict.BWPredictor
	// DM selects the data-movement predictor (default DMMax).
	DM predict.DMMode
	// DisableForwarding turns off the forwarding hardware entirely: every
	// edge goes through main memory (Table II "no fwd" configuration).
	DisableForwarding bool
	// AlwaysWriteBack disables the deferred write-back optimisation
	// (ablation).
	AlwaysWriteBack bool
	// DMASetup is the fixed per-transfer front-end latency (MMR
	// programming by the driver).
	DMASetup sim.Time
	// SchedBase and SchedPerScan model the manager microcontroller's
	// ready-queue insertion cost (Fig. 12): cost = base + perScan * queue
	// entries examined. SchedPerFwd is the extra per-candidate cost of
	// RELIEF's forwarding-list management, feasibility bookkeeping, and
	// forwarding-metadata updates.
	SchedBase, SchedPerScan, SchedPerFwd sim.Time
	// ComputeJitter is the relative amplitude of deterministic per-task
	// compute-time variation (models the paper's 0.03% compute predictor
	// error).
	ComputeJitter float64
	// Trace, if non-nil, records task phases, transfers, and scheduler
	// activity for timeline export.
	Trace *trace.Recorder
	// Metrics, if non-nil, collects simulated-time telemetry: probe-sampled
	// counters and gauges over the manager, interconnect, DRAM, and SPADs,
	// latency histograms, and per-node latency attribution (see
	// internal/metrics and docs/OBSERVABILITY.md). A nil registry costs a
	// pointer test on the hot path, like Trace.
	Metrics *metrics.Registry
	// MetricsInterval is the probe sampling period (0 = the metrics
	// package's 50 µs default).
	MetricsInterval sim.Time
	// DetailedDRAM swaps the fixed-bandwidth main-memory model for the
	// bank-level LPDDR5 controller in internal/dram.
	DetailedDRAM bool
	// DRAMPolicy selects the detailed controller's scheduling discipline.
	DRAMPolicy dram.Policy
	// DRAMChannels overrides the detailed controller's channel count
	// (0 = the paper's single channel).
	DRAMChannels int
	// Fault, if non-nil, installs deterministic fault injection and the
	// recovery machinery (watchdogs, retries, DAG abort). A zero-rate
	// plan is timing-neutral: results are bit-identical to no plan.
	Fault *fault.Plan
	// WatchdogMult scales the per-task watchdog deadline: predicted
	// runtime x WatchdogMult (0 = default 8). A watchdog that expires on
	// a live, progressing task re-arms with a doubled interval, so
	// legitimately slow tasks are never falsely recovered.
	WatchdogMult float64
	// MaxRetries bounds re-dispatch attempts per node before the DAG is
	// aborted (0 = default 3).
	MaxRetries int
	// RetryBackoff is the base re-dispatch delay, doubled per retry
	// (0 = default 2 µs).
	RetryBackoff sim.Time
}

// DefaultConfig mirrors the paper's simulated platform (Table VI): one
// instance of each of the seven accelerators, double-buffered output, a
// shared bus, Max predictors.
func DefaultConfig(policy sched.Policy) Config {
	cfg := Config{
		OutputPartitions: 2,
		Policy:           policy,
		DM:               predict.DMMax,
		DMASetup:         200 * sim.Nanosecond,
		SchedBase:        120 * sim.Nanosecond,
		SchedPerScan:     15 * sim.Nanosecond,
		SchedPerFwd:      300 * sim.Nanosecond,
		ComputeJitter:    0.0005,
	}
	for k := range cfg.Instances {
		cfg.Instances[k] = 1
	}
	total := 0
	for _, c := range cfg.Instances {
		total += c
	}
	cfg.Interconnect = xbar.DefaultConfig(total)
	return cfg
}

// Manager is the hardware manager runtime bound to one simulation.
type Manager struct {
	k    *sim.Kernel
	cfg  Config
	ic   *xbar.Interconnect
	st   *stats.Stats
	dram *dram.Controller // non-nil when DetailedDRAM is enabled

	pred   *predict.Runtime
	policy sched.Policy
	esc    sched.Escalator // non-nil if policy escalates

	queues   [accel.NumKinds][]*graph.Node
	qptrs    sched.Queues
	insts    []*Instance
	byKind   [accel.NumKinds][]*Instance
	ns       map[*graph.Node]*nodeState
	freeAt   sim.Time // manager CPU busy-until
	rebuild  map[string]func() *graph.DAG
	horizon  sim.Time // continuous-contention cutoff (0 = run to completion)
	lastDone sim.Time // completion time of the last finished DAG
	err      error    // first runtime error (e.g. a failing rebuild)

	// Fault injection and recovery state (nil/empty without cfg.Fault).
	inj    *fault.Injector
	active []*graph.DAG // released, unfinished, unaborted DAGs
	deaths int          // permanently dead instances

	// Checkpoint machinery (checkpoint.go). inFlight counts released DAGs
	// that have neither finished nor aborted; resumeAt is the capture time
	// this manager was restored from (0 = cold run).
	inFlight int
	ckpt     *captureArm
	resumeAt sim.Time

	// Telemetry (nil without cfg.Metrics). The histogram pointers are
	// cached so hot-path observations skip the registry map lookups.
	met          *metrics.Registry
	metSchedCost *metrics.Histogram
	metDMAXfer   *metrics.Histogram
	metDMAStall  *metrics.Histogram
}

// nodeState is per-node forwarding bookkeeping (paper Table III/IV fields).
type nodeState struct {
	inst *Instance // instance whose scratchpad holds the node's output
	part int
	// wbDone / wbInFlight track the output's write-back to main memory.
	wbDone, wbInFlight bool
	wbWaiters          []func()
	// fetched counts children that have pulled their edge data; once all
	// have, the intermediate result is dispensable.
	fetched int
	// prediction bookkeeping (Table VIII)
	predMemTime   sim.Time
	predBytes     int64
	predBW        float64
	actualMemTime sim.Time
	actualBytes   int64
	dramBytes     int64    // bytes moved through main memory on this node's behalf
	dramTime      sim.Time // wall time of those transfers
	pendingInputs int
	gateFired     bool

	// ---- latency-attribution bookkeeping (internal/metrics) ----
	// computeStart/computeDur pin the compute phase inside the node's
	// lifetime; dmaPure/dmaStall split observed input-DMA time into the
	// idle-SoC transfer time and the contention remainder.
	computeStart, computeDur sim.Time
	dmaPure, dmaStall        sim.Time

	// ---- recovery state (used only under fault injection) ----
	// attempt numbers launches; callbacks from a superseded attempt are
	// discarded by comparing their captured attempt against it.
	attempt int
	retries int
	verdict fault.Verdict
	// hung marks a task that will never signal completion (hang fault or
	// instance death); only the watchdog can recover it.
	hung bool
	// lost marks an output that died with its instance before write-back:
	// consumers that need it can only abort.
	lost bool
	// failAt is the node's first failure time (MTTR accounting).
	failAt sim.Time
	// avoid is the instance the node last failed on; re-dispatch prefers
	// a sibling.
	avoid    *Instance
	watchdog *sim.Event
	// wdInterval tracks the armed watchdog interval for re-arming.
	wdInterval sim.Time
	retryEv    *sim.Event
	// compEv is the pending completion event, cancelled if the instance
	// dies mid-compute.
	compEv *sim.Event
}

// New builds a manager on the given kernel, collecting metrics into st.
func New(k *sim.Kernel, cfg Config, st *stats.Stats) *Manager {
	return newManager(k, cfg, st, 0)
}

// newManager builds a manager, cold (resumeAt == 0) or restored from a
// checkpoint captured at resumeAt (see Restore in checkpoint.go).
func newManager(k *sim.Kernel, cfg Config, st *stats.Stats, resumeAt sim.Time) *Manager {
	if cfg.Policy == nil {
		panic("manager: nil policy")
	}
	if cfg.OutputPartitions <= 0 {
		cfg.OutputPartitions = 2
	}
	total := 0
	for _, c := range cfg.Instances {
		total += c
	}
	if cfg.Interconnect.Instances != total {
		cfg.Interconnect.Instances = total
	}
	if cfg.BW == nil {
		cfg.BW = &predict.Max{Peak: cfg.Interconnect.DRAMBandwidth}
	}
	var dc *dram.Controller
	if cfg.DetailedDRAM && cfg.Interconnect.DRAMServer == nil {
		dcfg := dram.LPDDR5()
		dcfg.Policy = cfg.DRAMPolicy
		if cfg.DRAMChannels > 0 {
			dcfg.Channels = cfg.DRAMChannels
		}
		dc = dram.NewController(k, "dram", dcfg)
		cfg.Interconnect.DRAMServer = dc
	}
	m := &Manager{
		k:        k,
		cfg:      cfg,
		dram:     dc,
		ic:       xbar.New(k, cfg.Interconnect),
		st:       st,
		policy:   cfg.Policy,
		ns:       make(map[*graph.Node]*nodeState),
		rebuild:  make(map[string]func() *graph.DAG),
		resumeAt: resumeAt,
	}
	if e, ok := cfg.Policy.(sched.Escalator); ok {
		m.esc = e
	}
	m.pred = &predict.Runtime{
		BW:           cfg.BW,
		DM:           cfg.DM,
		BusBandwidth: cfg.Interconnect.BusBandwidth,
		// Feasibility and max-forwards bookkeeping see the live instance
		// count, so permanently dead instances leave every policy's
		// feasibility set.
		InstancesOf: func(kind int) int { return m.liveCount(kind) },
	}
	idx := 0
	for kind := accel.Kind(0); kind < accel.NumKinds; kind++ {
		for i := 0; i < cfg.Instances[kind]; i++ {
			inst := newInstance(m, idx, kind, cfg.OutputPartitions)
			m.insts = append(m.insts, inst)
			m.byKind[kind] = append(m.byKind[kind], inst)
			idx++
		}
	}
	for kind := range m.queues {
		m.qptrs = append(m.qptrs, &m.queues[kind])
	}
	if cfg.Fault != nil {
		m.inj = cfg.Fault.NewInjector()
		if dc != nil {
			dc.SetFault(m.inj.DRAM)
		}
		m.scheduleDeaths(cfg.Fault)
	}
	if cfg.Metrics.Enabled() {
		m.met = cfg.Metrics
		m.registerMetrics()
		m.met.StartProbes(k, cfg.MetricsInterval)
	}
	return m
}

// Err returns the first runtime error the manager recorded (a failing
// continuous-contention rebuild), or nil.
func (m *Manager) Err() error { return m.err }

// Interconnect exposes the interconnect for occupancy reporting.
func (m *Manager) Interconnect() *xbar.Interconnect { return m.ic }

// DRAMController returns the bank-level controller when DetailedDRAM is
// enabled, else nil.
func (m *Manager) DRAMController() *dram.Controller { return m.dram }

// Predictor exposes the runtime predictor (used by experiment harnesses to
// compute prediction baselines).
func (m *Manager) Predictor() *predict.Runtime { return m.pred }

// state returns (creating if needed) the manager-side state for a node.
func (m *Manager) state(n *graph.Node) *nodeState {
	s, ok := m.ns[n]
	if !ok {
		s = &nodeState{part: -1}
		m.ns[n] = s
	}
	return s
}

// idleCount reports the number of idle (and live) instances of a kind.
func (m *Manager) idleCount(kind int) int {
	c := 0
	for _, inst := range m.byKind[kind] {
		if !inst.Busy && inst.Health != accel.Dead {
			c++
		}
	}
	return c
}

// liveCount reports the number of instances of a kind that have not died.
func (m *Manager) liveCount(kind int) int {
	c := 0
	for _, inst := range m.byKind[kind] {
		if inst.Health != accel.Dead {
			c++
		}
	}
	return c
}

// RuntimeEstimate is the execution-time estimate used for critical-path
// deadline assignment: profiled compute plus memory time at maximum data
// movement and peak effective bandwidth. This is deliberately independent
// of the configured predictors so every policy sees identical deadlines.
func (m *Manager) RuntimeEstimate(n *graph.Node) sim.Time {
	bytes := n.TotalInputBytes() + n.OutputBytes
	memT := sim.Time(float64(bytes) / m.cfg.Interconnect.DRAMBandwidth * float64(sim.Second))
	return n.Compute + memT
}

// Submit registers a DAG for release at the given absolute time. rebuild,
// if non-nil, is used to re-instantiate the application under continuous
// contention once this instance finishes.
func (m *Manager) Submit(d *graph.DAG, release sim.Time, rebuild func() *graph.DAG) error {
	return m.submit(d, release, rebuild, true)
}

// submit implements Submit. replay marks statically scheduled releases
// (everything submitted before the run starts): their events are derivable
// from the simulation's inputs, which is what lets a checkpoint skip
// serializing the event queue (sim.AtReplay). Dynamic resubmission under
// continuous contention is not replayable.
func (m *Manager) submit(d *graph.DAG, release sim.Time, rebuild func() *graph.DAG, replay bool) error {
	mode := m.policy.DeadlineMode()
	if err := graph.AssignDeadlines(d, mode, m.RuntimeEstimate); err != nil {
		return err
	}
	if rebuild != nil {
		m.rebuild[d.App] = rebuild
	}
	m.st.App(d.App, d.Sym, d.Deadline)
	if release < m.resumeAt {
		// Restored run: this DAG completed before the capture instant; its
		// effects are already in the restored state.
		return nil
	}
	if replay {
		m.k.AtReplay(release, func() { m.release(d) })
	} else {
		m.k.At(release, func() { m.release(d) })
	}
	return nil
}

// SubmitPeriodic releases a fresh instance of the application every period
// until the horizon, regardless of whether earlier instances have finished
// — the frame-queue arrival pattern of a camera pipeline or an inference
// stream (e.g. 60 FPS vision = 16.6 ms period). Complements the paper's
// continuous-contention mode, which resubmits on completion.
func (m *Manager) SubmitPeriodic(build func() *graph.DAG, period, until sim.Time) error {
	if period <= 0 {
		return fmt.Errorf("manager: non-positive period %v", period)
	}
	iter := 0
	for t := sim.Time(0); t < until; t += period {
		if t < m.resumeAt {
			// Restored run: this iteration completed before the capture
			// instant (a checkpoint is only taken with no DAG in flight, so
			// every pre-capture release is fully accounted for in the
			// restored state).
			iter++
			continue
		}
		d := build()
		if d == nil {
			return fmt.Errorf("manager: periodic build returned nil DAG")
		}
		d.Iteration = iter
		iter++
		if err := m.Submit(d, t, nil); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) release(d *graph.DAG) {
	if m.maybeCapture() {
		// A checkpoint was captured at (or before) this release: the run is
		// draining, and this DAG will be re-derived by the restored run.
		return
	}
	m.inFlight++
	d.Release = m.k.Now()
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Instant(trace.Release, fmt.Sprintf("%s#%d", d.App, d.Iteration), "manager", d.Release, nil)
	}
	for _, n := range d.Nodes {
		n.Deadline = d.Release + n.RelDeadline
	}
	if m.inj != nil {
		m.active = append(m.active, d)
		if m.deaths > 0 {
			if kind, ok := m.missingKind(d); ok {
				m.abortDAG(d, "no live "+kind.String()+" instance")
				return
			}
		}
	}
	roots := d.Roots()
	m.isr(func() sim.Time {
		var cost sim.Time
		for _, n := range roots {
			n.ReadyAt = m.k.Now()
			cost += m.insertPlain(n)
		}
		return cost
	})
}

// insertPlain performs a vanilla policy insertion of a (non-forwarding)
// ready node and returns the modeled cost.
func (m *Manager) insertPlain(n *graph.Node) sim.Time {
	m.preparePrediction(n)
	pos, scanned := m.policy.InsertPos(m.queues[n.Kind], n, m.k.Now())
	sched.Insert(&m.queues[n.Kind], n, pos)
	n.IsFwd = false
	n.State = graph.Ready
	cost := m.cfg.SchedBase + m.cfg.SchedPerScan*sim.Time(scanned)
	m.st.SchedCosts = append(m.st.SchedCosts, cost)
	if m.metSchedCost != nil {
		m.metSchedCost.Observe(cost.Microseconds())
	}
	return cost
}

// preparePrediction fills the node's predicted runtime and laxity at
// ready-queue insertion time (the paper predicts once, at insertion).
func (m *Manager) preparePrediction(n *graph.Node) {
	s := m.state(n)
	n.PredRuntime = m.pred.PredictRuntime(n)
	s.predMemTime = m.pred.PredictMemTime(n)
	s.predBW = m.cfg.BW.Predict()
	dram, bus := m.pred.PredictBytes(n)
	s.predBytes = dram + bus
	n.Laxity = n.Deadline - n.PredRuntime
}

// isr serialises manager work on the microcontroller: the handler runs when
// the manager core is free, its modeled cost keeps the core busy, and the
// launch pass (driver invocations) happens once the cost has elapsed.
func (m *Manager) isr(work func() sim.Time) {
	now := m.k.Now()
	if now < m.freeAt {
		m.k.At(m.freeAt, func() { m.isr(work) })
		return
	}
	cost := work()
	if cost < m.cfg.SchedBase {
		cost = m.cfg.SchedBase
	}
	m.freeAt = now + cost
	m.cfg.Trace.Span(trace.Schedule, "isr", "manager", now, m.freeAt, nil)
	m.k.At(m.freeAt, m.launchPass)
}

// launchPass pops ready-queue heads onto idle accelerators.
func (m *Manager) launchPass() {
	for kind := range m.queues {
		for len(m.queues[kind]) > 0 {
			n := m.queues[kind][0]
			inst := m.pickInstance(kind, n)
			if inst == nil {
				break
			}
			m.queues[kind] = m.queues[kind][1:]
			m.launch(n, inst)
		}
	}
}

// pickInstance chooses an idle instance of the kind for n, preferring one
// whose previously executed node is a parent of n with live output — the
// colocation opportunity the scheduler tracks (paper §III-B).
func (m *Manager) pickInstance(kind int, n *graph.Node) *Instance {
	var fallback, avoided *Instance
	var avoid *Instance
	if m.inj != nil {
		if ns, ok := m.ns[n]; ok {
			avoid = ns.avoid
		}
	}
	for _, inst := range m.byKind[kind] {
		if inst.Busy || inst.Health == accel.Dead {
			continue
		}
		if inst == avoid {
			// The node already failed here; prefer any sibling.
			avoided = inst
			continue
		}
		if fallback == nil {
			fallback = inst
		}
		if inst.LastNode != nil && m.outputLive(inst.LastNode) {
			for _, p := range n.Parents {
				if p == inst.LastNode {
					return inst
				}
			}
		}
	}
	if fallback == nil {
		fallback = avoided // lone survivor: retry in place
	}
	return fallback
}

// outputLive reports whether a node's output still resides in a scratchpad
// partition.
func (m *Manager) outputLive(n *graph.Node) bool {
	s, ok := m.ns[n]
	if !ok || s.inst == nil || s.part < 0 {
		return false
	}
	return s.inst.Parts[s.part].Node == n
}

func (m *Manager) String() string {
	return fmt.Sprintf("manager(policy=%s, insts=%d)", m.policy.Name(), len(m.insts))
}

// dmaBytesToSPAD tallies scratchpad energy traffic for a transfer
// classification.
func (m *Manager) noteSpadBytes(n int64) { m.st.SpadDMABytes += n }

// observeDRAMTransfer feeds the bandwidth predictor with the achieved
// bandwidth of a DRAM-involving transfer.
func (m *Manager) observeDRAMTransfer(res mem.TransferResult) {
	if bw := res.AchievedBandwidth(); bw > 0 {
		m.cfg.BW.Observe(bw)
	}
}
