package svctrace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// NewLogger builds the serving-layer logger. format selects the handler:
//
//   - "json": stdlib slog JSON records, one object per line — what the
//     ci.sh tracing smoke and log pipelines consume.
//   - "text" (default): legacy-compatible lines "<prefix>: <msg> k=v ...",
//     so existing greps over relief-serve output keep working. Records at
//     levels other than INFO carry a "level=..." attribute.
//
// prefix is the program name stamped on text lines ("relief-serve").
func NewLogger(w io.Writer, format, prefix string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(&textHandler{w: w, prefix: prefix})
}

// Discard returns a logger that drops every record — the default when a
// serve.Config carries no Logger, keeping library users and tests quiet.
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// textHandler renders "<prefix>: <msg> k=v ..." lines. It deliberately
// omits timestamps: relief-serve has always logged bare lines, and smoke
// scripts sed/grep them by exact prefix.
type textHandler struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	attrs  []slog.Attr
}

func (h *textHandler) Enabled(_ context.Context, _ slog.Level) bool { return true }

func (h *textHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &textHandler{w: h.w, prefix: h.prefix}
	nh.attrs = append(append(nh.attrs, h.attrs...), attrs...)
	return nh
}

// WithGroup flattens groups: the text form stays a single k=v namespace.
func (h *textHandler) WithGroup(string) slog.Handler { return h }

func (h *textHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if h.prefix != "" {
		b.WriteString(h.prefix)
		b.WriteString(": ")
	}
	b.WriteString(r.Message)
	if r.Level != slog.LevelInfo {
		fmt.Fprintf(&b, " level=%s", strings.ToLower(r.Level.String()))
	}
	for _, a := range h.attrs {
		writeAttr(&b, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// writeAttr appends " k=v", quoting values that would break whitespace
// tokenisation.
func writeAttr(b *strings.Builder, a slog.Attr) {
	v := a.Value.String()
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	if strings.ContainsAny(v, " \t\n\"=") {
		fmt.Fprintf(b, "%q", v)
	} else {
		b.WriteString(v)
	}
}
