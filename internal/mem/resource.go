// Package mem models the SoC's shared-bandwidth resources: the LPDDR main
// memory channel and (via internal/xbar) interconnect links, plus
// energy accounting for DRAM and scratchpad traffic.
//
// A Resource is a FIFO bandwidth server. Transfers are decomposed into
// chunks before they are offered to a resource, so concurrent DMA streams
// interleave at chunk granularity, approximating the fair bandwidth sharing
// of a real memory controller without per-cycle simulation.
package mem

import (
	"fmt"

	"relief/internal/sim"
)

// GB is 10^9 bytes, matching the GB/s units used in the paper.
const GB = 1e9

// Server is anything that drains byte requests over time: the simple
// bandwidth Resource here, or the bank-level DRAM controller in
// internal/dram. Transfer paths are built from Servers.
type Server interface {
	Name() string
	// Enqueue schedules n bytes for service; done fires when they drain.
	Enqueue(n int64, done func())
	// ServiceTime is the unloaded service time for n bytes.
	ServiceTime(n int64) sim.Time
	// BusyTime is the cumulative time spent serving.
	BusyTime() sim.Time
	// BytesServed is the total bytes drained.
	BytesServed() int64
}

// Resource is a FIFO server with a fixed service bandwidth. The zero value
// is not usable; construct with NewResource.
type Resource struct {
	k         *sim.Kernel
	name      string
	psPerByte float64

	queue   []request
	busy    bool
	busyAcc sim.Time // accumulated busy time
	busyAt  sim.Time // start of current busy period
	bytes   int64    // total bytes served

	// OnBusyChange, if non-nil, fires whenever the resource transitions
	// between idle and busy. Used by the interconnect to compute union
	// occupancy across ports.
	OnBusyChange func(busy bool)
}

type request struct {
	bytes int64
	done  func()
}

// NewResource creates a bandwidth server named name with the given
// bandwidth in bytes per second.
func NewResource(k *sim.Kernel, name string, bytesPerSec float64) *Resource {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("mem: resource %s: non-positive bandwidth", name))
	}
	return &Resource{
		k:         k,
		name:      name,
		psPerByte: float64(sim.Second) / bytesPerSec,
	}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Bandwidth returns the service bandwidth in bytes per second.
func (r *Resource) Bandwidth() float64 { return float64(sim.Second) / r.psPerByte }

// ServiceTime returns how long serving n bytes takes at full bandwidth.
func (r *Resource) ServiceTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	t := sim.Time(float64(n) * r.psPerByte)
	if t < 1 {
		t = 1
	}
	return t
}

// Enqueue schedules n bytes for service; done fires when the bytes have
// drained. Zero-byte requests complete on the next event dispatch.
func (r *Resource) Enqueue(n int64, done func()) {
	if n <= 0 {
		r.k.Schedule(0, done)
		return
	}
	r.queue = append(r.queue, request{bytes: n, done: done})
	if !r.busy {
		r.setBusy(true)
		r.serve()
	}
}

func (r *Resource) serve() {
	if len(r.queue) == 0 {
		r.setBusy(false)
		return
	}
	req := r.queue[0]
	r.queue = r.queue[1:]
	r.k.Schedule(r.ServiceTime(req.bytes), func() {
		r.bytes += req.bytes
		req.done()
		r.serve()
	})
}

func (r *Resource) setBusy(b bool) {
	if r.busy == b {
		return
	}
	r.busy = b
	if b {
		r.busyAt = r.k.Now()
	} else {
		r.busyAcc += r.k.Now() - r.busyAt
	}
	if r.OnBusyChange != nil {
		r.OnBusyChange(b)
	}
}

// BusyTime returns the total time the resource has spent serving requests,
// including the current busy period if one is in progress.
func (r *Resource) BusyTime() sim.Time {
	if r.busy {
		return r.busyAcc + (r.k.Now() - r.busyAt)
	}
	return r.busyAcc
}

// BytesServed returns the total bytes drained through the resource.
func (r *Resource) BytesServed() int64 { return r.bytes }

// QueueLen reports the number of waiting requests (not counting the one in
// service).
func (r *Resource) QueueLen() int { return len(r.queue) }
