package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// MapOrder flags `range` over a map whose body does order-sensitive work.
// Go randomizes map iteration order, so any of the following inside such a
// loop silently breaks bit-for-bit reproducibility:
//
//   - appending to a slice declared outside the loop (unless the slice is
//     sorted later in the same function — the collect-keys-then-sort
//     idiom);
//   - scheduling events on sim.Kernel (Schedule/ScheduleWeak/At);
//   - feeding a hash or digest (method Write/Sum on a crypto/... or hash
//     package type);
//   - accumulating into a float declared outside the loop with += / -= /
//     *= / /= (floating-point addition is not associative).
//
// Pure per-key work (writing into another map, integer counters, max/min
// folds) is order-insensitive and is not flagged.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid order-sensitive work (event scheduling, slice appends, hash " +
		"writes, float accumulation) inside range-over-map loops",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var funcs []*ast.FuncDecl
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
		for _, fd := range funcs {
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapBody(pass, fd, rng)
		return true
	})
}

func checkMapBody(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkMapAssign(pass, fd, rng, s)
		case *ast.CallExpr:
			if isKernelMethod(info, s, "Schedule", "ScheduleWeak", "At") {
				pass.Reportf(s.Pos(),
					"event scheduled inside range over map: dispatch order would follow randomized map order; iterate sorted keys")
			} else if isHashSink(info, s) {
				pass.Reportf(s.Pos(),
					"hash/digest fed inside range over map: digest value would depend on randomized map order; iterate sorted keys")
			}
		}
		return true
	})
}

func checkMapAssign(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, s *ast.AssignStmt) {
	info := pass.TypesInfo
	// x = append(x, ...) with x declared outside the loop.
	if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
		for i, rhs := range s.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || i >= len(s.Lhs) {
				continue
			}
			target, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
			if !ok {
				// Appending to a field or index expression: the storage
				// outlives the loop by construction.
				if declaredOutside(info, s.Lhs[i], rng) {
					reportAppend(pass, fd, rng, s.Lhs[i], s.Pos())
				}
				continue
			}
			obj := info.Uses[target]
			if obj == nil {
				obj = info.Defs[target]
			}
			if obj != nil && obj.Pos() < rng.Pos() {
				reportAppend(pass, fd, rng, target, s.Pos())
			}
		}
		if s.Tok == token.DEFINE {
			return
		}
	}
	// Float accumulation: x += v, x -= v, x *= v, x /= v.
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := s.Lhs[0]
		tv, ok := info.Types[lhs]
		if !ok {
			return
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
			return
		}
		if declaredOutside(info, lhs, rng) {
			pass.Reportf(s.Pos(),
				"float accumulation inside range over map: FP addition is not associative, so the sum depends on randomized map order; iterate sorted keys")
		}
	}
}

// reportAppend flags an append into outer storage unless the target is
// sorted later in the same function (collect-then-sort idiom).
func reportAppend(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, target ast.Expr, pos token.Pos) {
	if id, ok := ast.Unparen(target).(*ast.Ident); ok && sortedAfter(pass, fd, rng, id) {
		return
	}
	pass.Reportf(pos,
		"append to outer slice inside range over map: element order follows randomized map order; sort the slice afterwards or iterate sorted keys")
}

// sortedAfter reports whether id is passed to a sort.* or slices.Sort*
// call after the range loop in the same function body.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := funcObj(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && !sortHelper[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok {
				aobj := pass.TypesInfo.Uses[aid]
				if aobj == obj {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}

// sortHelper names sort-package functions that sort but do not start with
// "Sort".
var sortHelper = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
	"SliceStable": true, "Stable": true,
}

// declaredOutside reports whether the storage behind lhs outlives the
// loop: an identifier declared before the range statement, or any
// selector/index expression (fields and elements always do).
func declaredOutside(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && obj.Pos() < rng.Pos()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isHashSink reports whether call writes into a hash/digest: a Write,
// WriteString, or Sum method invoked on a value whose static type comes
// from package hash or crypto/... (hash.Hash embeds io.Writer, so the
// receiver expression's type is checked, not the method's declaring
// package).
func isHashSink(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "Sum", "Sum32", "Sum64":
	default:
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasPrefix(p, "crypto/")
}
