// Suppression edge-case fixture for //lint:allow placement rules: the
// directive works on the finding's own line or the line directly above,
// and an intervening blank line breaks the association.
package allow

type box struct {
	buf []int
}

// above: the directive on the line directly above suppresses.
//
//relief:hotpath
func (b *box) above(n int) {
	//lint:allow hotalloc refilling the pool is amortized
	b.buf = make([]int, n)
}

// trailing: the directive on the same line suppresses.
//
//relief:hotpath
func (b *box) trailing(n int) {
	b.buf = append(b.buf, n) //lint:allow hotalloc growth is amortized
}

// gapped: a blank line between the directive and the construct orphans
// the directive, so the finding stands.
//
//relief:hotpath
func (b *box) gapped(n int) {
	//lint:allow hotalloc orphaned by the blank line below

	b.buf = make([]int, n) // want `make\(\) allocates in hotpath function gapped`
}

// bare: a directive without a reason is inert.
//
//relief:hotpath
func (b *box) bare(n int) {
	//lint:allow hotalloc
	b.buf = make([]int, n) // want `make\(\) allocates in hotpath function bare`
}
