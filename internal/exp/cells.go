package exp

import (
	"encoding/json"
	"io"
	"sort"
)

// Cell is one scenario's machine-readable summary, keyed by its canonical
// scenario key (ScenarioKey). It is the per-scenario record of Sweep's
// DumpJSON document and the unit the distributed sweep path (internal/serve)
// streams per cell and merges; both render through WriteCells, so the two
// documents cannot diverge.
type Cell struct {
	Scenario     string             `json:"scenario"`
	MakespanMS   float64            `json:"makespan_ms"`
	Edges        int                `json:"edges"`
	Forwards     int                `json:"forwards"`
	Colocations  int                `json:"colocations"`
	DRAMPct      float64            `json:"dram_traffic_pct"`
	SpadPct      float64            `json:"spad_traffic_pct"`
	NodeDLPct    float64            `json:"node_deadline_pct"`
	DAGDLPct     float64            `json:"dag_deadline_pct"`
	Occupancy    float64            `json:"occupancy"`
	Interconnect float64            `json:"interconnect_occupancy"`
	Apps         map[string]AppCell `json:"apps"`
}

// AppCell is one application's slice of a Cell.
type AppCell struct {
	Iterations   int     `json:"iterations"`
	DeadlinesMet int     `json:"deadlines_met"`
	Slowdown     float64 `json:"slowdown"`
	Starved      bool    `json:"starved,omitempty"`
}

// NewCell summarizes one result under its canonical scenario key.
func NewCell(key string, r *Result) Cell {
	st := r.Stats
	dram, spad := st.DataMovement()
	c := Cell{
		Scenario:     key,
		MakespanMS:   st.Makespan.Milliseconds(),
		Edges:        st.Edges,
		Forwards:     st.Forwards,
		Colocations:  st.Colocations,
		DRAMPct:      dram,
		SpadPct:      spad,
		NodeDLPct:    st.NodeDeadlinePct(),
		DAGDLPct:     st.DAGDeadlinePct(),
		Occupancy:    st.Occupancy(),
		Interconnect: st.InterconnectOccupancy,
		Apps:         map[string]AppCell{},
	}
	for name, a := range st.Apps {
		slow, ok := a.FiniteSlowdown()
		if !ok {
			slow = -1 // JSON has no Inf; -1 plus the flag marks starvation
		}
		c.Apps[name] = AppCell{
			Iterations: a.Iterations, DeadlinesMet: a.DeadlinesMet,
			Slowdown: slow, Starved: !ok,
		}
	}
	return c
}

// WriteCells renders cells as the sweep-dump JSON array, sorted by scenario
// key. The byte output is deterministic for a given cell set regardless of
// input order or where each cell was computed; a nil slice renders as JSON
// null, matching an empty Sweep's DumpJSON.
func WriteCells(w io.Writer, cells []Cell) error {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Scenario < cells[j].Scenario })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cells)
}
