package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relief/internal/exp"
	"relief/internal/serve"
)

// grid is the scripted 4-cell sweep used by the resume tests.
var grid = []struct {
	digest   string
	scenario string
}{
	{"d0", "mix=C"},
	{"d1", "mix=D"},
	{"d2", "mix=G"},
	{"d3", "mix=L"},
}

// writeCellLine emits one NDJSON cell line for grid index i.
func writeCellLine(t *testing.T, w http.ResponseWriter, i int, source string) {
	t.Helper()
	cell := exp.Cell{Scenario: grid[i].scenario, MakespanMS: float64(i) * 10}
	res := &serve.Result{Digest: grid[i].digest, MakespanMS: cell.MakespanMS, Cell: &cell}
	line := map[string]any{"index": i, "digest": grid[i].digest, "source": source, "result": res}
	b, err := json.Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(w, "%s\n", b)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// header / trailer helpers for the scripted stream.
func writeHeader(w http.ResponseWriter) {
	fmt.Fprintf(w, `{"schema":%q,"cells":%d}`+"\n", serve.SweepSchema, len(grid))
}
func writeTrailer(w http.ResponseWriter, ok, errs int) {
	fmt.Fprintf(w, `{"done":true,"ok":%d,"errors":%d}`+"\n", ok, errs)
}

// TestResumeAfterMidStreamDeath: coordinator A dies (connection cut) after
// streaming 2 of 4 cells; the client must carry those cells to coordinator
// B, accept the remaining ones (deduplicating the replays B serves from the
// fleet cache), and produce the full merged document.
func TestResumeAfterMidStreamDeath(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHeader(w)
		writeCellLine(t, w, 0, "run")
		writeCellLine(t, w, 1, "run")
		panic(http.ErrAbortHandler) // SIGKILL stand-in: the connection just dies
	}))
	defer a.Close()
	var bReplayed int
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHeader(w)
		// B re-streams the whole grid: 0 and 1 come out of the fleet cache
		// (the client must dedup them), 2 and 3 are fresh.
		writeCellLine(t, w, 0, "cache")
		writeCellLine(t, w, 1, "cache")
		bReplayed += 2
		writeCellLine(t, w, 2, "run")
		writeCellLine(t, w, 3, "run")
		writeTrailer(w, 4, 0)
	}))
	defer b.Close()

	body := []byte(`{"mixes":["C","D","G","L"],"stream":true}`)
	cells, err := fleetSweep(context.Background(), []string{a.URL, b.URL}, body, true)
	if err != nil {
		t.Fatalf("fleetSweep: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("merged %d cells, want 4 (deduplicated)", len(cells))
	}
	if bReplayed != 2 {
		t.Fatalf("replica B replayed %d cached cells, want 2", bReplayed)
	}

	// The merged document is byte-identical to the single-coordinator one.
	var got, want bytes.Buffer
	if err := exp.WriteCells(&got, cells); err != nil {
		t.Fatal(err)
	}
	direct := make([]exp.Cell, 0, 4)
	for i := range grid {
		direct = append(direct, exp.Cell{Scenario: grid[i].scenario, MakespanMS: float64(i) * 10})
	}
	if err := exp.WriteCells(&want, direct); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("resumed document diverges:\n--- got ---\n%s--- want ---\n%s", got.String(), want.String())
	}
}

// TestDeadFirstReplicaSkipped: a refused connection on the first replica
// falls straight through to the second.
func TestDeadFirstReplicaSkipped(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // refuse everything
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHeader(w)
		for i := range grid {
			writeCellLine(t, w, i, "run")
		}
		writeTrailer(w, len(grid), 0)
	}))
	defer b.Close()

	cells, err := fleetSweep(context.Background(), []string{dead.URL, b.URL}, []byte(`{}`), true)
	if err != nil {
		t.Fatalf("fleetSweep: %v", err)
	}
	if len(cells) != len(grid) {
		t.Errorf("merged %d cells, want %d", len(cells), len(grid))
	}
}

// TestPerCellErrorsRetryNextPass: a coordinator that fails one cell per
// attempt still converges — the client holds finished cells and retries
// only the failures until the grid completes.
func TestPerCellErrorsRetryNextPass(t *testing.T) {
	attempt := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempt++
		writeHeader(w)
		for i := range grid {
			// First attempt: cell 3 errors. Second attempt: everything lands.
			if attempt == 1 && i == 3 {
				fmt.Fprintf(w, `{"index":3,"digest":%q,"error":"simulated blip"}`+"\n", grid[3].digest)
				continue
			}
			writeCellLine(t, w, i, "run")
		}
		writeTrailer(w, 4-attempt%2, attempt%2)
	}))
	defer srv.Close()

	cells, err := fleetSweep(context.Background(), []string{srv.URL}, []byte(`{}`), true)
	if err != nil {
		t.Fatalf("fleetSweep: %v", err)
	}
	if len(cells) != 4 || attempt != 2 {
		t.Errorf("cells=%d attempts=%d, want 4 cells in 2 attempts", len(cells), attempt)
	}
}

// TestBudgetExpiry: an expired context fails the sweep with the held cell
// count in the error instead of hanging.
func TestBudgetExpiry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHeader(w)
		// Never send the trailer; just stall past the client's budget.
		time.Sleep(200 * time.Millisecond)
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := fleetSweep(ctx, []string{srv.URL}, []byte(`{}`), true)
	if err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("expired sweep error = %v, want budget error naming held cells", err)
	}
}
