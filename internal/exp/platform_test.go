package exp

import (
	"strings"
	"testing"

	"relief/internal/accel"
	"relief/internal/dram"
	"relief/internal/mem"
	"relief/internal/workload"
	"relief/internal/xbar"
)

func TestLoadPlatform(t *testing.T) {
	spec, err := LoadPlatform(strings.NewReader(`{
		"instances": {"elem-matrix": 3},
		"output_partitions": 3,
		"topology": "xbar",
		"bus_gbs": 20,
		"dram_gbs": 8,
		"detailed_dram": true,
		"dram_policy": "fcfs",
		"dram_channels": 2,
		"bw_predictor": "average",
		"predict_dm": true,
		"sched_base_ns": 200
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Apply(mustPolicy("RELIEF"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Instances[accel.ElemMatrix] != 3 || cfg.Instances[accel.ISP] != 1 {
		t.Error("instance overrides wrong")
	}
	if cfg.OutputPartitions != 3 {
		t.Error("partitions not applied")
	}
	if cfg.Interconnect.Topology != xbar.Crossbar {
		t.Error("topology not applied")
	}
	if cfg.Interconnect.BusBandwidth != 20*mem.GB || cfg.Interconnect.DRAMBandwidth != 8*mem.GB {
		t.Error("bandwidths not applied")
	}
	if !cfg.DetailedDRAM || cfg.DRAMPolicy != dram.FCFS || cfg.DRAMChannels != 2 {
		t.Error("DRAM settings not applied")
	}
	if cfg.BW.Name() != "Average" {
		t.Error("predictor not applied")
	}
	// Port count follows the instance total (3 EM + 6 others).
	if cfg.Interconnect.Instances != 9 {
		t.Errorf("interconnect ports = %d, want 9", cfg.Interconnect.Instances)
	}
}

func TestLoadPlatformRejects(t *testing.T) {
	cases := []string{
		`{"bogus_field": 1}`,
		`{"instances": {"warp-drive": 1}}`,
		`{"instances": {"elem-matrix": 0}}`,
		`{"topology": "torus"}`,
		`{"dram_policy": "random"}`,
		`{"dram_channels": 2}`, // without detailed_dram
	}
	for _, c := range cases {
		spec, err := LoadPlatform(strings.NewReader(c))
		if err != nil {
			continue // rejected at parse time (unknown field)
		}
		if _, err := spec.Apply(mustPolicy("RELIEF")); err == nil {
			t.Errorf("spec %s accepted", c)
		}
	}
}

func TestPlatformScenarioRuns(t *testing.T) {
	spec := &PlatformSpec{
		Instances:    map[string]int{"elem-matrix": 2},
		DetailedDRAM: true,
	}
	mix, _ := workload.ParseMix("GL")
	res, err := Run(Scenario{Mix: mix, Contention: workload.Medium, Policy: "RELIEF", Platform: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesDone != 114+134 {
		t.Fatalf("nodes done = %d", res.Stats.NodesDone)
	}
	if res.RowHitRate == 0 {
		t.Error("detailed DRAM stats missing")
	}
	// Two EM instances must beat one on makespan for the all-EM mix.
	base, err := Run(Scenario{Mix: mix, Contention: workload.Medium, Policy: "RELIEF"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Makespan >= base.Stats.Makespan {
		t.Errorf("2 EM instances (%v) not faster than 1 (%v)",
			res.Stats.Makespan, base.Stats.Makespan)
	}
}
