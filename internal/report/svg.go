// Package report renders the evaluation as a self-contained HTML report
// with inline SVG charts — the counterpart of the paper artifact's
// matplotlib scripts (plot_forwards.py, plot_data_movement.py,
// plot_accelerator_occupancy.py, plot_slowdown.py, plot_deadlines_met.py),
// built on the standard library only.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted quantity across all groups. For stacked bars,
// Stack holds the upper segment (e.g. colocations on top of forwards).
type Series struct {
	Name   string
	Values []float64
	Stack  []float64 // optional second segment, stacked on Values
}

// Box is one box-glyph (slowdown spreads): min/median/max per group.
type Box struct {
	Min, Median, Max float64
	Starved          bool // max was infinite
}

// Chart is a grouped bar chart (optionally stacked) or a box plot.
type Chart struct {
	Title  string
	YLabel string
	Groups []string // x-axis categories (mixes)
	Series []Series // bar mode
	Boxes  [][]Box  // box mode: [series][group]
	BoxSer []string // series names for box mode
	// YMax fixes the axis (0 = auto).
	YMax float64
	// RefLine draws a horizontal reference (e.g. 1.0 for normalised data;
	// 0 disables).
	RefLine float64
}

// palette holds colourblind-safe series colours (Okabe-Ito).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00",
	"#F0E442", "#999999",
}

// stackShade lightens a colour for the stacked segment.
func stackShade(hex string) string {
	var r, g, b int
	fmt.Sscanf(hex, "#%02x%02x%02x", &r, &g, &b)
	l := func(v int) int { return v + (255-v)*55/100 }
	return fmt.Sprintf("#%02x%02x%02x", l(r), l(g), l(b))
}

const (
	chartW  = 880
	chartH  = 300
	marginL = 56
	marginR = 12
	marginT = 28
	marginB = 64
)

// SVG renders the chart.
func (c *Chart) SVG() string {
	var sb strings.Builder
	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`,
		chartW, chartH+24*((c.seriesCount()+5)/6))
	fmt.Fprintf(&sb, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`, marginL, esc(c.Title))

	ymax := c.YMax
	if ymax <= 0 {
		ymax = c.autoMax() * 1.08
	}
	if ymax <= 0 {
		ymax = 1
	}
	y := func(v float64) float64 {
		if v < 0 {
			v = 0
		}
		if v > ymax {
			v = ymax
		}
		return float64(marginT) + plotH*(1-v/ymax)
	}

	// Axes and y ticks.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`,
		marginL, marginT, marginL, chartH-marginB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`,
		marginL, chartH-marginB, chartW-marginR, chartH-marginB)
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginL, y(v), chartW-marginR, y(v))
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`,
			marginL-4, y(v)+4, trimNum(v))
	}
	fmt.Fprintf(&sb, `<text x="14" y="%.1f" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`,
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(c.YLabel))
	if c.RefLine > 0 && c.RefLine < ymax {
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#a00" stroke-dasharray="4 3"/>`,
			marginL, y(c.RefLine), chartW-marginR, y(c.RefLine))
	}

	nG := len(c.Groups)
	if nG == 0 {
		sb.WriteString("</svg>")
		return sb.String()
	}
	groupW := plotW / float64(nG)
	// Group labels.
	for gi, g := range c.Groups {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`,
			float64(marginL)+groupW*(float64(gi)+0.5), chartH-marginB+16, esc(g))
	}

	switch {
	case len(c.Series) > 0:
		nS := len(c.Series)
		barW := groupW * 0.8 / float64(nS)
		for si, s := range c.Series {
			color := palette[si%len(palette)]
			for gi := range c.Groups {
				if gi >= len(s.Values) {
					continue
				}
				x := float64(marginL) + groupW*float64(gi) + groupW*0.1 + barW*float64(si)
				v := s.Values[gi]
				fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.1f</title></rect>`,
					x, y(v), barW, y(0)-y(v), color, esc(s.Name), esc(c.Groups[gi]), v)
				if s.Stack != nil && gi < len(s.Stack) {
					top := v + s.Stack[gi]
					fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s (stack): %.1f</title></rect>`,
						x, y(top), barW, y(v)-y(top), stackShade(color), esc(s.Name), esc(c.Groups[gi]), s.Stack[gi])
				}
			}
		}
	case len(c.Boxes) > 0:
		nS := len(c.Boxes)
		slotW := groupW * 0.8 / float64(nS)
		for si, boxes := range c.Boxes {
			color := palette[si%len(palette)]
			for gi, b := range boxes {
				if gi >= nG {
					continue
				}
				x := float64(marginL) + groupW*float64(gi) + groupW*0.1 + slotW*float64(si)
				w := slotW * 0.85
				top, bot := y(b.Max), y(b.Min)
				fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.55" stroke="%s"><title>%s %s: %.2f/%.2f/%.2f</title></rect>`,
					x, top, w, math.Max(bot-top, 1), color, color,
					esc(c.boxName(si)), esc(c.Groups[gi]), b.Min, b.Median, b.Max)
				fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#000"/>`,
					x, y(b.Median), x+w, y(b.Median))
				if b.Starved {
					fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#a00" font-weight="bold">inf</text>`,
						x+w/2, top-3)
				}
			}
		}
	}

	// Legend.
	lx, ly := marginL, chartH-marginB+32
	for i := 0; i < c.seriesCount(); i++ {
		name := c.seriesName(i)
		if lx+10*len(name)+40 > chartW-marginR {
			lx = marginL
			ly += 18
		}
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			lx, ly, palette[i%len(palette)])
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`, lx+16, ly+10, esc(name))
		lx += 16 + 7*len(name) + 18
	}
	sb.WriteString("</svg>")
	return sb.String()
}

func (c *Chart) seriesCount() int {
	if len(c.Series) > 0 {
		return len(c.Series)
	}
	return len(c.Boxes)
}

func (c *Chart) seriesName(i int) string {
	if len(c.Series) > 0 {
		return c.Series[i].Name
	}
	return c.boxName(i)
}

func (c *Chart) boxName(i int) string {
	if i < len(c.BoxSer) {
		return c.BoxSer[i]
	}
	return fmt.Sprintf("series %d", i)
}

func (c *Chart) autoMax() float64 {
	max := 0.0
	for _, s := range c.Series {
		for i, v := range s.Values {
			t := v
			if s.Stack != nil && i < len(s.Stack) {
				t += s.Stack[i]
			}
			if t > max {
				max = t
			}
		}
	}
	for _, boxes := range c.Boxes {
		for _, b := range boxes {
			if !math.IsInf(b.Max, 1) && b.Max > max {
				max = b.Max
			}
		}
	}
	return max
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
