package lint

import (
	"strconv"
	"strings"

	"relief/internal/lint/analysis"
)

// svcImportPkg is the wall-clock service-tracing package whose spread this
// analyzer bounds.
const svcImportPkg = "internal/svctrace"

// svcImportAllowed lists the module-relative packages permitted to import
// internal/svctrace directly. Everything under cmd/ is also allowed (CLIs
// run on wall clock by nature); every other package — and in particular
// every simulation package — is not.
var svcImportAllowed = []string{
	"internal/svctrace", "internal/serve",
}

// SvcImport keeps wall-clock service tracing out of the simulator:
// internal/svctrace spans are real-time (time.Now durations, crypto/rand
// IDs), so any simulation package importing it would put wall-clock state
// one call away from the deterministic sim path. Only the serving layer
// (internal/serve) and the CLIs may import it.
var SvcImport = &analysis.Analyzer{
	Name: "svcimport",
	Doc: "forbid importing relief/internal/svctrace outside the serving layer; " +
		"wall-clock tracing stays out of simulation packages",
	Run: runSvcImport,
}

func runSvcImport(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if pkgIn(path, svcImportAllowed...) ||
		strings.HasPrefix(path, modulePath+"/cmd/") || strings.HasPrefix(path, "cmd/") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == modulePath+"/"+svcImportPkg {
				pass.Reportf(imp.Pos(),
					"package %s imports %s: wall-clock service tracing is restricted to "+
						"internal/serve and cmd/* so simulated time stays the only clock on the sim path",
					path, p)
			}
		}
	}
	return nil
}
