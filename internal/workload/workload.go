// Package workload builds the paper's five benchmark DAGs (Fig. 1,
// Table V): Canny edge detection, Richardson-Lucy deblur, GRU, Harris
// corner detection, and LSTM, plus the application-mix enumeration for the
// four contention levels (§IV-C).
//
// The DAG shapes are reconstructed from the algorithms and validated
// against the paper's per-application compute totals (Table II): Deblur
// matches exactly (15610.6 µs), Canny/Harris/GRU/LSTM within 0.3%.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/sim"
)

// App identifies a benchmark application.
type App int

// The five benchmarks, in the paper's symbol order (C, D, G, H, L).
const (
	Canny App = iota
	Deblur
	GRU
	Harris
	LSTM
	NumApps
)

var appMeta = [NumApps]struct {
	name     string
	sym      string
	deadline sim.Time
}{
	Canny:  {"canny", "C", ms(16.6)},
	Deblur: {"deblur", "D", ms(16.6)},
	GRU:    {"gru", "G", ms(7)},
	Harris: {"harris", "H", ms(16.6)},
	LSTM:   {"lstm", "L", ms(7)},
}

func ms(v float64) sim.Time { return sim.Time(v * float64(sim.Millisecond)) }

// Name returns the application's lowercase name.
func (a App) Name() string { return appMeta[a].name }

// Sym returns the application's single-letter symbol.
func (a App) Sym() string { return appMeta[a].sym }

// Deadline returns the application deadline (Table V: vision at 60 FPS =
// 16.6 ms; RNNs at 7 ms following prior work).
func (a App) Deadline() sim.Time { return appMeta[a].deadline }

func (a App) String() string { return a.Name() }

// BySym resolves a single-letter symbol to an App.
func BySym(sym byte) (App, error) {
	for a := App(0); a < NumApps; a++ {
		if appMeta[a].sym[0] == sym {
			return a, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown application symbol %q", string(sym))
}

// Buffer sizes for the 128x128 working set (paper §IV-B: accelerators sized
// for 128x128 inputs with double-buffered output).
const (
	frameBytes = 128 * 128 * 4 // float32 plane
	rgbBytes   = 128 * 128 * 3 // 8-bit RGB
	rawBytes   = 128 * 128     // 8-bit Bayer mosaic
	maskBytes  = 128 * 128     // 8-bit mask / packed direction
	// RNN operands are 128x128 batched matrices (hidden size 128, batch
	// 128), which is what the paper's elem-matrix memory times imply.
	matBytes    = 128 * 128 * 4
	weightBytes = 128 * 128 * 4 // one 128x128 weight matrix, DRAM-resident
)

// Build constructs a fresh instance of the application's DAG, finalized and
// ready for submission.
func Build(a App) (*graph.DAG, error) {
	d, err := buildRaw(a)
	if err != nil {
		return nil, err
	}
	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustBuild is Build for statically known-valid applications; it panics on
// error (tests, examples, internal harnesses).
func MustBuild(a App) *graph.DAG {
	d, err := Build(a)
	if err != nil {
		panic(err)
	}
	return d
}

// BuildScaled builds the application at scale x the linear input dimension
// (scale 2 = 256x256 frames): pixel counts and buffer sizes grow by
// scale^2, compute times scale with them. Used by the input-size
// sensitivity study (paper §V-H expects larger inputs to benefit more from
// complex interconnects).
func BuildScaled(a App, scale int) (*graph.DAG, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: invalid scale %d", scale)
	}
	d, err := buildRaw(a)
	if err != nil {
		return nil, err
	}
	f := int64(scale) * int64(scale)
	for _, n := range d.Nodes {
		n.Pixels *= scale * scale
		n.OutputBytes *= f
		n.ExtraInputBytes *= f
		for i := range n.EdgeInBytes {
			n.EdgeInBytes[i] *= f
		}
	}
	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// BuildTiled builds the application at the given scale and splits every
// node into tiles sub-tasks (GAM+-style accelerator composition, paper
// §IV-B), so oversize inputs fit the 128x128 scratchpads and expose
// tile-level parallelism.
func BuildTiled(a App, scale, tiles int) (*graph.DAG, error) {
	d, err := BuildScaled(a, scale)
	if err != nil {
		return nil, err
	}
	td, err := graph.Tile(d, tiles)
	if err != nil {
		return nil, err
	}
	if err := td.Finalize(); err != nil {
		return nil, err
	}
	return td, nil
}

func buildRaw(a App) (*graph.DAG, error) {
	switch a {
	case Canny:
		return buildCanny(), nil
	case Deblur:
		return buildDeblur(5), nil
	case GRU:
		return buildGRU(8), nil
	case Harris:
		return buildHarris(), nil
	case LSTM:
		return buildLSTM(8), nil
	}
	return nil, fmt.Errorf("workload: unknown app %d", a)
}

// BuildDeblur builds Richardson-Lucy deblur with a custom iteration count
// (the paper uses 5; more iterations trade latency for picture quality).
func BuildDeblur(iterations int) (*graph.DAG, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("workload: deblur iterations %d", iterations)
	}
	d := buildDeblur(iterations)
	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// BuildRNN builds GRU or LSTM with a custom sequence length (the paper
// uses 8 timesteps).
func BuildRNN(a App, seqLen int) (*graph.DAG, error) {
	if seqLen < 1 {
		return nil, fmt.Errorf("workload: sequence length %d", seqLen)
	}
	var d *graph.DAG
	switch a {
	case GRU:
		d = buildGRU(seqLen)
	case LSTM:
		d = buildLSTM(seqLen)
	default:
		return nil, fmt.Errorf("workload: %v is not an RNN", a)
	}
	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// buildCanny reconstructs Fig. 1b: ISP -> grayscale -> Gaussian blur ->
// Sobel gradients -> magnitude/direction -> non-max suppression ->
// hysteresis edge tracking. 13 nodes; compute total 3537.0 µs vs paper's
// 3539.4 µs.
func buildCanny() *graph.DAG {
	d := graph.New("canny", "C", Canny.Deadline())
	isp := d.AddNode("isp", accel.ISP, accel.OpDefault, rgbBytes)
	isp.ExtraInputBytes = rawBytes
	g := d.AddNode("gray", accel.Grayscale, accel.OpDefault, frameBytes, isp)
	blur := conv(d, "gauss5", 5, frameBytes, g)
	gx := conv(d, "sobel-x", 3, frameBytes, blur)
	gy := conv(d, "sobel-y", 3, frameBytes, blur)
	sqx := d.AddNode("sqr-x", accel.ElemMatrix, accel.OpSqr, frameBytes, gx)
	sqy := d.AddNode("sqr-y", accel.ElemMatrix, accel.OpSqr, frameBytes, gy)
	sum := d.AddNode("mag-sq", accel.ElemMatrix, accel.OpAdd, frameBytes, sqx, sqy)
	mag := d.AddNode("mag", accel.ElemMatrix, accel.OpSqrt, frameBytes, sum)
	norm := d.AddNode("norm", accel.ElemMatrix, accel.OpScale, frameBytes, mag)
	dir := d.AddNode("dir", accel.ElemMatrix, accel.OpAtan2, maskBytes, gx, gy)
	cnm := d.AddNode("nonmax", accel.CannyNonMax, accel.OpDefault, frameBytes, norm, dir)
	d.AddNode("track", accel.EdgeTracking, accel.OpDefault, maskBytes, cnm)
	return d
}

// buildDeblur reconstructs Fig. 1c, Richardson-Lucy deconvolution with
// iters refinement iterations (paper: 5): per iteration, convolve the
// estimate with the PSF, divide the observation by it, correlate with the
// flipped PSF, and multiply into the estimate. 22 nodes at 5 iterations;
// compute total 15610.6 µs — exactly the paper's.
func buildDeblur(iters int) *graph.DAG {
	d := graph.New("deblur", "D", Deblur.Deadline())
	isp := d.AddNode("isp", accel.ISP, accel.OpDefault, rgbBytes)
	isp.ExtraInputBytes = rawBytes
	obs := d.AddNode("gray", accel.Grayscale, accel.OpDefault, frameBytes, isp)
	est := obs
	for i := 1; i <= iters; i++ {
		reblur := conv(d, fmt.Sprintf("psf-%d", i), 5, frameBytes, est)
		ratio := d.AddNode(fmt.Sprintf("ratio-%d", i), accel.ElemMatrix, accel.OpDiv, frameBytes, reblur, obs)
		corr := conv(d, fmt.Sprintf("corr-%d", i), 5, frameBytes, ratio)
		est = d.AddNode(fmt.Sprintf("update-%d", i), accel.ElemMatrix, accel.OpMul, frameBytes, corr, est)
	}
	return d
}

// buildHarris reconstructs Fig. 1d: gradients, structure-tensor products,
// windowed sums, corner response, response smoothing, and non-max
// suppression. 22 nodes; compute total 6154.8 µs vs paper's 6157.3 µs.
func buildHarris() *graph.DAG {
	d := graph.New("harris", "H", Harris.Deadline())
	isp := d.AddNode("isp", accel.ISP, accel.OpDefault, rgbBytes)
	isp.ExtraInputBytes = rawBytes
	g := d.AddNode("gray", accel.Grayscale, accel.OpDefault, frameBytes, isp)
	blur := conv(d, "gauss5", 5, frameBytes, g)
	ix := conv(d, "dx", 3, frameBytes, blur)
	iy := conv(d, "dy", 3, frameBytes, blur)
	ixx := d.AddNode("ixx", accel.ElemMatrix, accel.OpSqr, frameBytes, ix)
	iyy := d.AddNode("iyy", accel.ElemMatrix, accel.OpSqr, frameBytes, iy)
	ixy := d.AddNode("ixy", accel.ElemMatrix, accel.OpMul, frameBytes, ix, iy)
	sxx := conv(d, "win-xx", 3, frameBytes, ixx)
	syy := conv(d, "win-yy", 3, frameBytes, iyy)
	sxy := conv(d, "win-xy", 3, frameBytes, ixy)
	det1 := d.AddNode("det-a", accel.ElemMatrix, accel.OpMul, frameBytes, sxx, syy)
	det2 := d.AddNode("det-b", accel.ElemMatrix, accel.OpSqr, frameBytes, sxy)
	det := d.AddNode("det", accel.ElemMatrix, accel.OpSub, frameBytes, det1, det2)
	tr := d.AddNode("trace", accel.ElemMatrix, accel.OpAdd, frameBytes, sxx, syy)
	tr2 := d.AddNode("trace-sq", accel.ElemMatrix, accel.OpSqr, frameBytes, tr)
	ktr2 := d.AddNode("k-trace", accel.ElemMatrix, accel.OpScale, frameBytes, tr2)
	resp := d.AddNode("response", accel.ElemMatrix, accel.OpSub, frameBytes, det, ktr2)
	rn := d.AddNode("resp-norm", accel.ElemMatrix, accel.OpScale, frameBytes, resp)
	th := d.AddNode("thresh", accel.ElemMatrix, accel.OpThresh, frameBytes, rn)
	sm := conv(d, "smooth5", 5, frameBytes, th)
	d.AddNode("nonmax", accel.HarrisNonMax, accel.OpDefault, maskBytes, sm)
	return d
}

// buildGRU reconstructs Fig. 1e: a gated recurrent unit over seqLen
// timesteps (paper: 8) with batched 128x128 operands, exclusively on the
// elem-matrix accelerator. 14 nodes per step + 2 prologue = 114 nodes at
// seqLen 8; compute total 1247.2 µs vs paper's 1249.3 µs.
func buildGRU(seqLen int) *graph.DAG {
	d := graph.New("gru", "G", GRU.Deadline())
	em := func(name string, op accel.Op, parents ...*graph.Node) *graph.Node {
		return d.AddNode(name, accel.ElemMatrix, op, matBytes, parents...)
	}
	// Prologue: input embedding producing the initial hidden state.
	emb := em("embed", accel.OpMac)
	emb.ExtraInputBytes = weightBytes + matBytes // W_emb + x_0
	h := em("h0", accel.OpTanh, emb)
	for t := 1; t <= seqLen; t++ {
		nm := func(s string) string { return fmt.Sprintf("%s-%d", s, t) }
		// Update gate z_t (input-side mac is a root: x_t is DRAM-resident).
		zx := em(nm("zx"), accel.OpMac)
		zx.ExtraInputBytes = weightBytes + matBytes
		za := em(nm("z-acc"), accel.OpMac, zx, h)
		za.ExtraInputBytes = weightBytes
		zs := em(nm("z"), accel.OpSigmoid, za)
		// Reset gate r_t.
		rx := em(nm("rx"), accel.OpMac)
		rx.ExtraInputBytes = weightBytes + matBytes
		ra := em(nm("r-acc"), accel.OpMac, rx, h)
		ra.ExtraInputBytes = weightBytes
		rs := em(nm("r"), accel.OpSigmoid, ra)
		// Candidate h~_t.
		rh := em(nm("r*h"), accel.OpMul, rs, h)
		cx := em(nm("cx"), accel.OpMac)
		cx.ExtraInputBytes = weightBytes + matBytes
		ch := em(nm("c-acc"), accel.OpMac, rh)
		ch.ExtraInputBytes = weightBytes
		ca := em(nm("c-add"), accel.OpAdd, ch, cx)
		ct := em(nm("cand"), accel.OpTanh, ca)
		// Interpolation h_t = h + z (.) (h~ - h).
		dl := em(nm("delta"), accel.OpLerpSub, ct, h)
		zd := em(nm("z*delta"), accel.OpMul, zs, dl)
		h = em(nm("h"), accel.OpAdd, zd, h)
	}
	return d
}

// buildLSTM reconstructs Fig. 1f: long short-term memory over seqLen
// timesteps with batched 128x128 operands, exclusively on elem-matrix.
// 16 nodes per step + 6 prologue = 134 nodes at seqLen 8; compute total
// 1466.0 µs vs paper's 1470.0 µs.
func buildLSTM(seqLen int) *graph.DAG {
	d := graph.New("lstm", "L", LSTM.Deadline())
	em := func(name string, op accel.Op, parents ...*graph.Node) *graph.Node {
		return d.AddNode(name, accel.ElemMatrix, op, matBytes, parents...)
	}
	// Prologue: embed the input and initialise hidden and cell state.
	he := em("h-embed", accel.OpMac)
	he.ExtraInputBytes = weightBytes + matBytes
	ht := em("h-tanh", accel.OpTanh, he)
	h := em("h0", accel.OpScale, ht)
	ce := em("c-embed", accel.OpMac)
	ce.ExtraInputBytes = weightBytes + matBytes
	ctn := em("c-tanh", accel.OpTanh, ce)
	c := em("c0", accel.OpScale, ctn)
	for t := 1; t <= seqLen; t++ {
		nm := func(s string) string { return fmt.Sprintf("%s-%d", s, t) }
		gate := func(name string, act accel.Op) *graph.Node {
			gx := em(nm(name+"x"), accel.OpMac)
			gx.ExtraInputBytes = weightBytes + matBytes
			ga := em(nm(name+"-acc"), accel.OpMac, gx, h)
			ga.ExtraInputBytes = weightBytes
			return em(nm(name), act, ga)
		}
		i := gate("i", accel.OpSigmoid)
		f := gate("f", accel.OpSigmoid)
		o := gate("o", accel.OpSigmoid)
		gg := gate("g", accel.OpTanh)
		fc := em(nm("f*c"), accel.OpMul, f, c)
		ig := em(nm("i*g"), accel.OpMul, i, gg)
		c = em(nm("c"), accel.OpAdd, fc, ig)
		h = em(nm("h"), accel.OpTanhMul, o, c)
	}
	return d
}

func conv(d *graph.DAG, name string, filter int, out int64, parents ...*graph.Node) *graph.Node {
	n := d.AddNode(name, accel.Convolution, accel.OpDefault, out, parents...)
	n.FilterSize = filter
	return n
}

// Contention levels (paper §IV-C).
type Contention int

// The four contention levels.
const (
	Low        Contention = iota + 1 // single applications
	Medium                           // all pairs
	High                             // all triples
	Continuous                       // all triples, looped to a 50 ms horizon
)

func (c Contention) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case Continuous:
		return "continuous"
	}
	return fmt.Sprintf("contention(%d)", int(c))
}

// ContinuousHorizon is the continuous-contention simulation cutoff.
const ContinuousHorizon = 50 * sim.Millisecond

// Mixes enumerates the application combinations for a contention level, in
// the paper's order (C, D, G, H, L lexicographic).
func Mixes(c Contention) [][]App {
	size := 1
	switch c {
	case Low:
		size = 1
	case Medium:
		size = 2
	case High, Continuous:
		size = 3
	default:
		panic(fmt.Sprintf("workload: unknown contention level %d", c)) //lint:allow nopanic unreachable: every Contention value is enumerated above
	}
	return combinations(size)
}

func combinations(size int) [][]App {
	var out [][]App
	var cur []App
	var rec func(start App)
	rec = func(start App) {
		if len(cur) == size {
			out = append(out, append([]App(nil), cur...))
			return
		}
		for a := start; a < NumApps; a++ {
			cur = append(cur, a)
			rec(a + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// MixName returns the paper's label for a mix, e.g. "CDG".
func MixName(mix []App) string {
	syms := make([]string, len(mix))
	for i, a := range mix {
		syms[i] = a.Sym()
	}
	sort.Strings(syms)
	return strings.Join(syms, "")
}

// ParseMix converts a label like "CGL" back into applications.
func ParseMix(name string) ([]App, error) {
	var mix []App
	for i := 0; i < len(name); i++ {
		a, err := BySym(name[i])
		if err != nil {
			return nil, err
		}
		mix = append(mix, a)
	}
	return mix, nil
}
