package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// newDiskServer builds a server with a counting stub runner and a spill
// directory attached, returning it with its test listener.
func newDiskServer(t *testing.T, dir string, cacheCap int, execs *atomic.Int32) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, CacheCap: cacheCap, Runner: countingStub(execs)})
	if _, err := s.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestWarmRestartServesFromDisk: results computed before a "restart" (new
// Server over the same directory) are served byte-identically from disk
// without re-simulating, reported as "source": "disk", and counted on the
// disk-hit counter.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	var execs1 atomic.Int32
	_, ts1 := newDiskServer(t, dir, 8, &execs1)

	const body = `{"mix":"CGL"}`
	resp, before := post(t, ts1.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart run: status=%d body=%s", resp.StatusCode, before)
	}
	if execs1.Load() != 1 {
		t.Fatalf("pre-restart execs = %d, want 1", execs1.Load())
	}
	var beforeEnv struct {
		Result
	}
	if err := json.Unmarshal(before, &beforeEnv); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// "Restart": a fresh process image over the same spill directory.
	var execs2 atomic.Int32
	s2, ts2 := newDiskServer(t, dir, 8, &execs2)
	resp, after := post(t, ts2.URL, body)
	src, res := decodeEnvelope(t, after)
	if resp.StatusCode != http.StatusOK || src != srcDisk {
		t.Fatalf("post-restart run: status=%d source=%q, want 200/%q", resp.StatusCode, src, srcDisk)
	}
	if execs2.Load() != 0 {
		t.Errorf("post-restart execs = %d, want 0 (warm start)", execs2.Load())
	}
	if res.Text != beforeEnv.Text || res.Digest != beforeEnv.Digest {
		t.Errorf("restarted result differs: %q vs %q", res.Text, beforeEnv.Text)
	}
	if hits := s2.disk.hits.Load(); hits != 1 {
		t.Errorf("disk hits = %d, want 1", hits)
	}

	// The loaded entry was promoted into the memory LRU: round two is a
	// plain cache hit, no second disk read.
	resp, b := post(t, ts2.URL, body)
	if src, _ := decodeEnvelope(t, b); resp.StatusCode != http.StatusOK || src != srcCache {
		t.Fatalf("promoted repeat: status=%d source=%q, want 200/%q", resp.StatusCode, src, srcCache)
	}
	if hits := s2.disk.hits.Load(); hits != 1 {
		t.Errorf("disk hits after promotion = %d, want still 1", hits)
	}
}

// TestRestoredCountAndBound: EnableDiskCache reports how many spill files
// survived from the previous process, and a restart with a smaller cap
// prunes down to it.
func TestRestoredCountAndBound(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int32
	s1, ts1 := newDiskServer(t, dir, 16, &execs)
	for _, body := range []string{`{"mix":"C"}`, `{"mix":"D"}`, `{"mix":"G"}`, `{"mix":"L"}`} {
		if resp, b := post(t, ts1.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %s: status=%d body=%s", body, resp.StatusCode, b)
		}
	}
	if got := s1.disk.entries(); got != 4 {
		t.Fatalf("spill entries = %d, want 4", got)
	}
	ts1.Close()

	s2 := New(Config{Workers: 1, CacheCap: 2, Runner: countingStub(&execs)})
	restored, err := s2.EnableDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Errorf("restored = %d, want 2 (pruned to the new cap)", restored)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(files) != 2 {
		t.Errorf("spill files on disk = %d, want 2", len(files))
	}
}

// TestCorruptedSpillRejected: a spill file whose payload was tampered with
// fails its checksum on load — it is counted, deleted, and the scenario is
// re-simulated instead of served corrupt.
func TestCorruptedSpillRejected(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int32
	_, ts1 := newDiskServer(t, dir, 8, &execs)
	const body = `{"mix":"CDH"}`
	if resp, b := post(t, ts1.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status=%d body=%s", resp.StatusCode, b)
	}
	ts1.Close()

	files, err := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (err %v), want exactly 1", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip the payload without breaking the JSON: the checksum must catch it.
	tampered := strings.Replace(string(raw), "stub:CDH", "stub:EVIL", 1)
	if tampered == string(raw) {
		t.Fatal("tamper marker not found in spill payload")
	}
	if err := os.WriteFile(files[0], []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	execs.Store(0)
	s2, ts2 := newDiskServer(t, dir, 8, &execs)
	resp, b := post(t, ts2.URL, body)
	src, res := decodeEnvelope(t, b)
	if resp.StatusCode != http.StatusOK || src != srcRun {
		t.Fatalf("tampered read: status=%d source=%q body=%s, want 200/%q (re-simulated)",
			resp.StatusCode, src, b, srcRun)
	}
	if res.Text != "stub:CDH" {
		t.Errorf("re-simulated text = %q", res.Text)
	}
	if execs.Load() != 1 {
		t.Errorf("execs = %d, want 1 (re-simulation)", execs.Load())
	}
	if le := s2.disk.loadErrors.Load(); le != 1 {
		t.Errorf("load errors = %d, want 1", le)
	}
}

// TestGarbageSpillSchemaRejected: wrong schema or digest mismatch is
// rejected just like a bad checksum.
func TestGarbageSpillSchemaRejected(t *testing.T) {
	dir := t.TempDir()
	d, _, err := openDiskCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := os.WriteFile(d.path(key), []byte(`{"schema":"bogus/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.load(key); ok {
		t.Fatal("bogus-schema spill served")
	}
	if d.loadErrors.Load() != 1 {
		t.Errorf("load errors = %d, want 1", d.loadErrors.Load())
	}
	if _, err := os.Stat(d.path(key)); !os.IsNotExist(err) {
		t.Error("rejected spill file was not deleted")
	}
}

// TestEvictionRemovesSpillFile: evicting an entry from the memory LRU
// deletes its spill file too, keeping disk a mirror of (recent) cache
// state rather than an unbounded archive.
func TestEvictionRemovesSpillFile(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, CacheCap: 2, Runner: countingStub(new(atomic.Int32))})
	if _, err := s.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, 3)
	for _, mix := range []string{"C", "D", "G"} {
		req := Request{Mix: mix}
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		key := req.Digest()
		keys = append(keys, key)
		if _, _, err := s.executeCell(context.Background(), req, key); err != nil {
			t.Fatal(err)
		}
	}
	// Cap 2: the first key was evicted from memory and must be gone on disk.
	if _, err := os.Stat(filepath.Join(dir, keys[0]+spillExt)); !os.IsNotExist(err) {
		t.Error("evicted entry's spill file survived")
	}
	for _, key := range keys[1:] {
		if _, err := os.Stat(filepath.Join(dir, key+spillExt)); err != nil {
			t.Errorf("live entry %s missing its spill file: %v", key[:8], err)
		}
	}
	if got := s.disk.entries(); got != 2 {
		t.Errorf("spill entries = %d, want 2", got)
	}
}
