package metrics

import "relief/internal/sim"

// AttrBucket sums the latency decomposition of the completed nodes it
// covers. The five components partition each node's end-to-end latency
// (ready to finish) exactly:
//
//   - SchedWait:  ready-queue wait, node ready until launched
//   - DMAPure:    the input transfers' unloaded pipeline time plus DMA
//     setup — what the data movement would cost on an idle SoC
//   - DMAStall:   the rest of the input phase — DMA-engine queueing,
//     interconnect/DRAM contention, and write-back drains
//   - Compute:    accelerator busy time
//   - Writeback:  completion tail (leaf output write-back to main memory;
//     for interior nodes only the manager-ISR service wait)
type AttrBucket struct {
	Nodes     int
	SchedWait sim.Time
	DMAPure   sim.Time
	DMAStall  sim.Time
	Compute   sim.Time
	Writeback sim.Time
	Total     sim.Time
}

func (b *AttrBucket) add(wait, pure, stall, compute, wb sim.Time) {
	b.Nodes++
	b.SchedWait += wait
	b.DMAPure += pure
	b.DMAStall += stall
	b.Compute += compute
	b.Writeback += wb
	b.Total += wait + pure + stall + compute + wb
}

// share returns component/Total in percent.
func (b *AttrBucket) share(c sim.Time) float64 {
	if b.Total <= 0 {
		return 0
	}
	return 100 * float64(c) / float64(b.Total)
}

// Shares returns the five components as percentages of Total, in
// (wait, dmaPure, dmaStall, compute, writeback) order.
func (b *AttrBucket) Shares() (wait, pure, stall, compute, wb float64) {
	return b.share(b.SchedWait), b.share(b.DMAPure), b.share(b.DMAStall),
		b.share(b.Compute), b.share(b.Writeback)
}

// StallShare returns the contention-stall fraction of total latency in
// percent — the headline "why was this policy slow" number.
func (b *AttrBucket) StallShare() float64 { return b.share(b.DMAStall) }

// Attribution is the per-policy latency attribution record: one bucket per
// application plus the run total.
type Attribution struct {
	Policy string
	Apps   map[string]*AttrBucket
	Total  AttrBucket
}

func (a *Attribution) bucket(app string) *AttrBucket {
	if a.Apps == nil {
		a.Apps = make(map[string]*AttrBucket)
	}
	b, ok := a.Apps[app]
	if !ok {
		b = &AttrBucket{}
		a.Apps[app] = b
	}
	return b
}

// ObserveNodeLatency records one completed node's latency decomposition
// under the given application and feeds the node-latency histograms. All
// components must be non-negative; their sum is the node's end-to-end
// latency.
func (r *Registry) ObserveNodeLatency(app string, wait, dmaPure, dmaStall, compute, writeback sim.Time) {
	if r == nil {
		return
	}
	r.attr.bucket(app).add(wait, dmaPure, dmaStall, compute, writeback)
	r.attr.Total.add(wait, dmaPure, dmaStall, compute, writeback)
	if r.hNodeLatency == nil {
		r.hNodeLatency = r.Histogram("relief_node_latency_us",
			"end-to-end node latency, ready to finish (microseconds)")
		r.hSchedWait = r.Histogram("relief_node_sched_wait_us",
			"ready-queue wait per node (microseconds)")
		r.hNodeStall = r.Histogram("relief_node_dma_stall_us",
			"DMA contention stall per node (microseconds)")
	}
	total := wait + dmaPure + dmaStall + compute + writeback
	r.hNodeLatency.Observe(total.Microseconds())
	r.hSchedWait.Observe(wait.Microseconds())
	r.hNodeStall.Observe(dmaStall.Microseconds())
}

// Attribution returns the collected latency attribution record (nil on a
// nil registry).
func (r *Registry) Attribution() *Attribution {
	if r == nil {
		return nil
	}
	return &r.attr
}
