package manager

import (
	"fmt"
	"testing"

	"relief/internal/accel"
	"relief/internal/core"
	"relief/internal/fault"
	"relief/internal/graph"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/workload"
)

// statsLine canonicalises every result counter the deadline/traffic tables
// consume, for bit-identity comparisons.
func statsLine(st *stats.Stats) string {
	return fmt.Sprintf("mk=%d edges=%d fwd=%d col=%d dr=%d dw=%d sx=%d nd=%d nm=%d cb=%d",
		int64(st.Makespan), st.Edges, st.Forwards, st.Colocations,
		st.DRAMReadBytes, st.DRAMWriteBytes, st.SpadXferBytes,
		st.NodesDone, st.NodesMetDeadline, int64(st.ComputeBusy))
}

// TestHairTriggerWatchdogNeutral arms a deliberately absurd watchdog
// (0.1% of the predicted runtime, so it expires many times per task) on a
// fault-free run and requires bit-identical results: false alarms must
// re-arm silently, never recover a live task.
func TestHairTriggerWatchdogNeutral(t *testing.T) {
	base := run(t, DefaultConfig(core.New()), func() *graph.DAG { return workload.MustBuild(workload.Canny) })

	cfg := DefaultConfig(core.New())
	cfg.Fault = &fault.Plan{Seed: 3} // zero rates: nothing ever faults
	cfg.WatchdogMult = 0.001
	tight := run(t, cfg, func() *graph.DAG { return workload.MustBuild(workload.Canny) })

	if a, b := statsLine(base), statsLine(tight); a != b {
		t.Fatalf("hair-trigger watchdog perturbed results:\n%s\n%s", a, b)
	}
	if fs := tight.Faults; fs.WatchdogFires != 0 || fs.Retries != 0 || fs.Any() {
		t.Fatalf("recovery triggered on a fault-free run: %+v", fs)
	}
}

// twoOfEach doubles every accelerator kind so tasks have a sibling to
// retry on.
func twoOfEach(policy string) Config {
	var p = core.New()
	_ = policy
	cfg := DefaultConfig(p)
	for k := range cfg.Instances {
		cfg.Instances[k] = 2
	}
	total := 0
	for _, c := range cfg.Instances {
		total += c
	}
	cfg.Interconnect.Instances = total
	return cfg
}

// TestDeathMidDAGRecovers is the acceptance scenario: two instances per
// kind under RELIEF, and the instance busy with a canny task dies mid-DAG
// (instances are laid out kind-major, two per kind; index 4 is the first
// instance of kind 2, which canny keeps occupied at 0.5 ms). The watchdog
// must fire for the stranded task, the task must retry on the sibling,
// forwarded state from live producers must be invalidated and refetched
// through main memory, and the DAG must still finish — the simulation
// always terminates.
func TestDeathMidDAGRecovers(t *testing.T) {
	cfg := twoOfEach("RELIEF")
	cfg.Fault = &fault.Plan{Seed: 1, DieAt: map[int]sim.Time{
		4: 500 * sim.Microsecond,
	}}

	k := sim.NewKernel()
	st := stats.New()
	m := New(k, cfg, st)
	d := workload.MustBuild(workload.Canny)
	if err := m.Submit(d, 0, nil); err != nil {
		t.Fatal(err)
	}
	end := m.Run() // must terminate
	if end == 0 {
		t.Fatal("simulation did not advance")
	}
	fs := st.Faults
	if fs.InstanceDeaths != 1 {
		t.Fatalf("deaths = %d, want 1", fs.InstanceDeaths)
	}
	if !d.Finished() && !d.Aborted {
		t.Fatal("DAG neither finished nor aborted")
	}
	if d.Aborted {
		t.Fatalf("DAG aborted (%s) despite live siblings", d.AbortReason)
	}
	if fs.WatchdogFires < 1 {
		t.Fatalf("watchdog never fired despite mid-DAG deaths: %+v", fs)
	}
	if fs.Retries < 1 {
		t.Fatal("no task was retried on a sibling")
	}
	// The canny chain forwards/colocates aggressively, so a death mid-DAG
	// must have invalidated at least one scratchpad-resident input and
	// refetched it through main memory.
	if fs.InvalidatedForwards < 1 {
		t.Fatalf("no forwarded state was invalidated: %+v", fs)
	}
	if fs.RecoveryDRAMBytes <= 0 {
		t.Fatalf("no recovery write-back traffic accounted: %+v", fs)
	}
	if fs.Recoveries < 1 || fs.RecoveryTime <= 0 {
		t.Fatalf("MTTR accounting empty: %+v", fs)
	}
	if st.NodesDone != len(d.Nodes) {
		t.Fatalf("finished %d nodes, want %d", st.NodesDone, len(d.Nodes))
	}
}

// TestAllInstancesDeadAborts kills the only instance of a required kind:
// every DAG needing it must abort cleanly and Run must return.
func TestAllInstancesDeadAborts(t *testing.T) {
	cfg := DefaultConfig(core.New()) // one instance per kind
	cfg.Fault = &fault.Plan{Seed: 1, DieAt: map[int]sim.Time{
		int(accel.ElemMatrix): 100 * sim.Microsecond,
	}}
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, cfg, st)
	d := workload.MustBuild(workload.GRU) // heavy elem-matrix user
	if err := m.Submit(d, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run() // must not wedge
	if !d.Aborted {
		t.Fatal("DAG not aborted after its only elem-matrix instance died")
	}
	if st.Faults.DAGsAborted != 1 {
		t.Fatalf("DAGsAborted = %d, want 1", st.Faults.DAGsAborted)
	}
	if a := st.App("gru", "G", d.Deadline); a.Aborted != 1 {
		t.Fatalf("app aborted count = %d, want 1", a.Aborted)
	}
	// A fresh submission needing the dead kind aborts at release.
	d2 := workload.MustBuild(workload.GRU)
	if err := m.Submit(d2, k.Now(), nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if !d2.Aborted {
		t.Fatal("post-death submission not aborted at release")
	}
}

// TestTransientFailureRetriesToCompletion injects only transient failures
// (results discarded at completion, task re-dispatched) and checks the
// DAG still completes with retries recorded.
func TestTransientFailureRetriesToCompletion(t *testing.T) {
	cfg := twoOfEach("RELIEF")
	cfg.Fault = &fault.Plan{Seed: 5, Rates: fault.Rates{TaskFail: 0.3}}
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, cfg, st)
	d := workload.MustBuild(workload.Harris)
	if err := m.Submit(d, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if !d.Finished() {
		t.Fatalf("DAG did not finish (aborted=%v %s)", d.Aborted, d.AbortReason)
	}
	if st.Faults.TransientFails < 1 || st.Faults.Retries < 1 {
		t.Fatalf("no transient failures materialised at rate 0.3: %+v", st.Faults)
	}
}

// TestRetriesExhaustedAbortsCleanly forces every attempt of every task to
// hang; after MaxRetries the DAG must abort (not loop forever) and the
// simulation must drain.
func TestRetriesExhaustedAbortsCleanly(t *testing.T) {
	cfg := twoOfEach("RELIEF")
	cfg.Fault = &fault.Plan{Seed: 2, Rates: fault.Rates{TaskHang: 1.0}}
	cfg.MaxRetries = 2
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, cfg, st)
	d := workload.MustBuild(workload.Canny)
	if err := m.Submit(d, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if !d.Aborted {
		t.Fatal("always-hanging DAG not aborted")
	}
	if st.Faults.DAGsAborted != 1 {
		t.Fatalf("DAGsAborted = %d, want 1", st.Faults.DAGsAborted)
	}
	if st.Faults.WatchdogFires < cfg.MaxRetries+1 {
		t.Fatalf("watchdog fired %d times, want > MaxRetries=%d",
			st.Faults.WatchdogFires, cfg.MaxRetries)
	}
}

// TestSlowdownOnlyDelays injects pure slowdowns: everything completes,
// nothing retries, and the makespan strictly grows.
func TestSlowdownOnlyDelays(t *testing.T) {
	base := run(t, DefaultConfig(core.New()), func() *graph.DAG { return workload.MustBuild(workload.LSTM) })
	cfg := DefaultConfig(core.New())
	cfg.Fault = &fault.Plan{Seed: 4, Rates: fault.Rates{TaskSlow: 0.5, SlowFactor: 4}}
	slow := run(t, cfg, func() *graph.DAG { return workload.MustBuild(workload.LSTM) })
	if slow.Faults.Slowdowns < 1 {
		t.Fatalf("no slowdowns at rate 0.5: %+v", slow.Faults)
	}
	if slow.Faults.Retries != 0 || slow.Faults.DAGsAborted != 0 {
		t.Fatalf("slowdowns must not trigger recovery: %+v", slow.Faults)
	}
	if slow.Makespan <= base.Makespan {
		t.Fatalf("slowdowns did not grow makespan: %v <= %v", slow.Makespan, base.Makespan)
	}
	if slow.NodesDone != base.NodesDone {
		t.Fatalf("slow run finished %d nodes, want %d", slow.NodesDone, base.NodesDone)
	}
}
