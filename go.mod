module relief

go 1.22
