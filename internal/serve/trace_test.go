package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"relief/internal/svctrace"
)

// newTS serves s on a test listener and returns its base URL.
func newTS(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// postTraced posts body to url/run with an explicit X-Relief-Trace header.
func postTraced(t *testing.T, url, body, traceID string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(svctrace.Header, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// getTraceDoc fetches and decodes GET /trace/{id}.
func getTraceDoc(t *testing.T, url, id string) svctrace.Doc {
	t.Helper()
	resp, err := http.Get(url + "/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status=%d body=%s", id, resp.StatusCode, b)
	}
	var doc svctrace.Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("decode trace doc %s: %v", b, err)
	}
	return doc
}

// findSpan returns the first span with the given stage, or nil.
func findSpan(doc svctrace.Doc, stage string) *svctrace.SpanDoc {
	for i := range doc.Spans {
		if doc.Spans[i].Stage == stage {
			return &doc.Spans[i]
		}
	}
	return nil
}

// spanEvent returns the value of the named event on a span, or "".
func spanEvent(sp *svctrace.SpanDoc, name string) string {
	if sp == nil {
		return ""
	}
	for _, e := range sp.Events {
		if e.Name == name {
			return e.Value
		}
	}
	return ""
}

// envTraceID decodes the trace_id field of a /run response envelope.
func envTraceID(t *testing.T, b []byte) string {
	t.Helper()
	var env struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decode envelope %s: %v", b, err)
	}
	return env.TraceID
}

// TestTraceEnvelopeAndDoc: every /run response carries a minted trace ID in
// both the X-Relief-Trace header and the envelope, and GET /trace/{id}
// returns the pipeline's span document with durations bounded by the
// request's measured wall time.
func TestTraceEnvelopeAndDoc(t *testing.T) {
	var execs atomic.Int32
	s := New(Config{Workers: 2, Runner: countingStub(&execs)})
	ts := newTS(t, s)

	t0 := time.Now()
	resp, b := post(t, ts, `{"mix":"CGL"}`)
	wall := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, b)
	}
	id := resp.Header.Get(svctrace.Header)
	if !svctrace.ValidID(id) {
		t.Fatalf("response header %s = %q, want a valid trace ID", svctrace.Header, id)
	}
	if got := envTraceID(t, b); got != id {
		t.Errorf("envelope trace_id = %q, header = %q", got, id)
	}

	doc := getTraceDoc(t, ts, id)
	if doc.Schema != svctrace.Schema || doc.TraceID != id {
		t.Fatalf("doc schema=%q trace_id=%q, want %q/%q", doc.Schema, doc.TraceID, svctrace.Schema, id)
	}
	if doc.Source != srcRun || doc.Status != http.StatusOK {
		t.Errorf("doc source=%q status=%d, want %q/200", doc.Source, doc.Status, srcRun)
	}
	for _, stage := range []string{stageCache, stageAdmission, stageRun} {
		if findSpan(doc, stage) == nil {
			t.Errorf("doc has no %q span (spans: %+v)", stage, doc.Spans)
		}
	}
	// The stages are sequential for a plain /run, so both every span and
	// their sum stay inside the request's measured wall clock.
	var sum float64
	for _, sp := range doc.Spans {
		if sp.StartUS < 0 || sp.StartUS+sp.DurUS > doc.TotalUS+1 {
			t.Errorf("span %s [%f, +%f] escapes total %f", sp.Stage, sp.StartUS, sp.DurUS, doc.TotalUS)
		}
		sum += sp.DurUS
	}
	wallUS := float64(wall) / float64(time.Microsecond)
	if sum > wallUS {
		t.Errorf("span durations sum to %.0fus, more than the request's %.0fus wall time", sum, wallUS)
	}
	if doc.TotalUS > wallUS {
		t.Errorf("doc total %.0fus exceeds measured wall time %.0fus", doc.TotalUS, wallUS)
	}
}

// TestTraceCacheHitEvent: a repeat request is answered from the memory
// cache and its trace's cache span says so ("source"="mem" event).
func TestTraceCacheHitEvent(t *testing.T) {
	var execs atomic.Int32
	s := New(Config{Workers: 2, Runner: countingStub(&execs)})
	ts := newTS(t, s)

	post(t, ts, `{"mix":"CGL"}`)
	resp, b := post(t, ts, `{"mix":"CGL"}`)
	if src, _ := decodeEnvelope(t, b); src != srcCache {
		t.Fatalf("second request source = %q body=%s", src, b)
	}
	doc := getTraceDoc(t, ts, resp.Header.Get(svctrace.Header))
	sp := findSpan(doc, stageCache)
	if got := spanEvent(sp, "source"); got != "mem" {
		t.Errorf("cache span source event = %q, want mem (span: %+v)", got, sp)
	}
	if doc.Source != srcCache {
		t.Errorf("doc source = %q, want %q", doc.Source, srcCache)
	}
}

// TestTraceDiskHitEvent: after a restart (fresh server over the same spill
// directory) the trace shows the cache miss falling through to a disk hit.
func TestTraceDiskHitEvent(t *testing.T) {
	dir := t.TempDir()
	var execs1, execs2 atomic.Int32
	_, ts1 := newDiskServer(t, dir, 8, &execs1)
	post(t, ts1.URL, `{"mix":"CGL"}`)

	_, ts2 := newDiskServer(t, dir, 8, &execs2)
	resp, b := post(t, ts2.URL, `{"mix":"CGL"}`)
	if src, _ := decodeEnvelope(t, b); src != srcDisk {
		t.Fatalf("post-restart source = %q body=%s", src, b)
	}
	doc := getTraceDoc(t, ts2.URL, resp.Header.Get(svctrace.Header))
	if got := spanEvent(findSpan(doc, stageDisk), "source"); got != "disk" {
		t.Errorf("disk span source event = %q, want disk (doc: %+v)", got, doc.Spans)
	}
	if execs2.Load() != 0 {
		t.Errorf("restarted server simulated %d times, want 0", execs2.Load())
	}
}

// TestTracePropagatesAcrossForward: a request hitting the non-owner under a
// client-supplied trace ID is forwarded under the same ID, so both replicas
// retain a /trace/{id} document — the entry side with the probe and forward
// spans, the owner side with the execution.
func TestTracePropagatesAcrossForward(t *testing.T) {
	s1, _, url1, url2, _, _ := twoReplicaFleet(t)

	const body = `{"mix":"CGL"}`
	_, owner := digestOwner(t, s1, body)
	entryURL, ownerURL := url1, url2
	if owner == url1 {
		entryURL, ownerURL = url2, url1
	}

	id := strings.Repeat("ab", 16)
	resp, b := postTraced(t, entryURL, body, id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner request: status=%d body=%s", resp.StatusCode, b)
	}
	// A successful forward relays the owner's envelope verbatim, so the
	// relay is visible in the Served-By header, and the envelope's
	// trace_id — stamped by the owner — proves the ID crossed the wire.
	if got := resp.Header.Get(servedByHeader); got != ownerURL {
		t.Fatalf("%s = %q, want %q (body=%s)", servedByHeader, got, ownerURL, b)
	}
	if got := resp.Header.Get(svctrace.Header); got != id {
		t.Errorf("echoed trace ID = %q, want the supplied %q", got, id)
	}
	if got := envTraceID(t, b); got != id {
		t.Errorf("relayed envelope trace_id = %q, want %q", got, id)
	}

	entry := getTraceDoc(t, entryURL, id)
	if entry.Source != srcForward {
		t.Errorf("entry doc source = %q, want %q", entry.Source, srcForward)
	}
	fsp := findSpan(entry, stageForward)
	if fsp == nil {
		t.Fatalf("entry doc has no forward span (spans: %+v)", entry.Spans)
	}
	if got := spanEvent(fsp, "outcome"); got != "ok" {
		t.Errorf("forward span outcome = %q, want ok", got)
	}
	if fsp.Attrs["peer"] != ownerURL {
		t.Errorf("forward span peer = %q, want %q", fsp.Attrs["peer"], ownerURL)
	}
	if sp := findSpan(entry, stageProbe); spanEvent(sp, "outcome") != "miss" {
		t.Errorf("probe span outcome = %q, want miss", spanEvent(sp, "outcome"))
	}

	// The owner executed the forwarded leg under the same distributed ID.
	ownerDoc := getTraceDoc(t, ownerURL, id)
	if ownerDoc.TraceID != id || ownerDoc.Source != srcRun {
		t.Errorf("owner doc trace_id=%q source=%q, want %q/%q", ownerDoc.TraceID, ownerDoc.Source, id, srcRun)
	}
	if findSpan(ownerDoc, stageRun) == nil {
		t.Errorf("owner doc has no run span (spans: %+v)", ownerDoc.Spans)
	}
}

// TestTraceInvalidHeaderReplaced: a header value that is not a valid trace
// ID (header injection, wrong length, upper case) is discarded for a fresh
// server-minted ID.
func TestTraceInvalidHeaderReplaced(t *testing.T) {
	var execs atomic.Int32
	s := New(Config{Workers: 2, Runner: countingStub(&execs)})
	ts := newTS(t, s)

	bad := "NOT-A-TRACE-ID"
	resp, _ := postTraced(t, ts, `{"mix":"CGL"}`, bad)
	got := resp.Header.Get(svctrace.Header)
	if got == bad || !svctrace.ValidID(got) {
		t.Errorf("echoed ID %q, want a fresh valid ID", got)
	}
}

// TestTraceKernelEventsAndChromeFormat: "trace": true on a real (unstubbed)
// run captures simulated-time kernel events into the service trace, and
// ?format=chrome renders service and kernel lanes in one Chrome timeline.
func TestTraceKernelEventsAndChromeFormat(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := newTS(t, s)

	resp, b := post(t, ts, `{"mix":"CGL","trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, b)
	}
	id := resp.Header.Get(svctrace.Header)
	doc := getTraceDoc(t, ts, id)
	if len(doc.KernelEvents) == 0 {
		t.Fatal("trace:true run captured no kernel events")
	}

	cresp, err := http.Get(ts + "/trace/" + id + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	cb, _ := io.ReadAll(cresp.Body)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome format: status=%d", cresp.StatusCode)
	}
	for _, want := range []string{`"service"`, `"compute"`, id} {
		if !strings.Contains(string(cb), want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}

	// The delivery knob is digest-excluded: traced and untraced forms of
	// the same scenario are one cache entry.
	resp2, b2 := post(t, ts, `{"mix":"CGL"}`)
	if src, _ := decodeEnvelope(t, b2); src != srcCache {
		t.Errorf("untraced repeat source = %q, want %q", src, srcCache)
	}
	_ = resp2
}

// TestTraceUnknownID: unknown and malformed IDs get a 404, not a panic or
// an empty document.
func TestTraceUnknownID(t *testing.T) {
	var execs atomic.Int32
	s := New(Config{Workers: 1, Runner: countingStub(&execs)})
	ts := newTS(t, s)
	for _, id := range []string{strings.Repeat("0", 32), "zzz"} {
		resp, err := http.Get(ts + "/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /trace/%s status = %d, want 404", id, resp.StatusCode)
		}
	}
}

// TestTraceStoreBounded: the retained-trace store evicts oldest-first at
// its configured cap.
func TestTraceStoreBounded(t *testing.T) {
	var execs atomic.Int32
	s := New(Config{Workers: 1, Runner: countingStub(&execs), TraceCap: 2})
	ts := newTS(t, s)

	ids := make([]string, 3)
	for i, mix := range []string{"C", "G", "L"} {
		resp, _ := post(t, ts, `{"mix":"`+mix+`"}`)
		ids[i] = resp.Header.Get(svctrace.Header)
	}
	resp, err := http.Get(ts + "/trace/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest trace still present with cap 2: status=%d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		getTraceDoc(t, ts, id) // fatals on non-200
	}
}
