package exp

import (
	"fmt"

	"relief/internal/design"
	"relief/internal/graph"
	"relief/internal/manager"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// DRAMStudy is an extension experiment beyond the paper: it swaps the
// calibrated fixed-bandwidth main-memory model for the bank-level LPDDR5
// controller and compares FR-FCFS against FCFS memory scheduling under
// high contention, for LAX and RELIEF. It checks that the paper's policy
// ordering is robust to the memory-model fidelity (the substitution
// argument in DESIGN.md) and quantifies how much RELIEF's traffic
// reduction also relieves the row-buffer.
func DRAMStudy(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Extension: memory-model fidelity (high contention)",
		Note:  "simple = calibrated bandwidth server; detailed = bank-level LPDDR5; makespan in ms",
		Cols: []string{"mix",
			"LAX simple", "LAX fr-fcfs", "LAX fcfs",
			"RELIEF simple", "RELIEF fr-fcfs", "RELIEF fcfs",
			"RELIEF hit-rate", "RELIEF dl%% (detailed)"},
	}
	var sumSimple, sumDetail float64
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		row := []string{name}
		var reliefDetail *Result
		for _, p := range []string{"LAX", "RELIEF"} {
			for _, variant := range []Scenario{
				{Mix: mix, Contention: workload.High, Policy: p},
				{Mix: mix, Contention: workload.High, Policy: p, DetailedDRAM: true},
				{Mix: mix, Contention: workload.High, Policy: p, DetailedDRAM: true, DRAMFCFS: true},
			} {
				res, err := s.Get(variant)
				if err != nil {
					return err
				}
				row = append(row, f2(res.Stats.Makespan.Milliseconds()))
				if p == "RELIEF" && variant.DetailedDRAM && !variant.DRAMFCFS {
					reliefDetail = res
				}
				if p == "RELIEF" && !variant.DetailedDRAM {
					sumSimple += res.Stats.Makespan.Milliseconds()
				}
			}
		}
		sumDetail += reliefDetail.Stats.Makespan.Milliseconds()
		row = append(row, f2(reliefDetail.RowHitRate),
			f1(reliefDetail.Stats.NodeDeadlinePct()))
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Note += fmt.Sprintf("; RELIEF makespan detailed/simple = %.2f", sumDetail/sumSimple)
	return t, nil
}

// PeriodicStudy is an extension experiment: instead of the paper's
// completion-triggered continuous loop, applications arrive on their
// natural periods (vision at 60 FPS = 16.6 ms, RNN streams at their 7 ms
// deadline) over a 50 ms window — the frame-queue arrival pattern of a
// real camera/ASR pipeline. Reported per policy: frames finished, frame
// deadlines met, and worst per-app slowdown.
func PeriodicStudy() (*Table, error) {
	t := &Table{
		Title: "Extension: periodic (FPS) arrivals, CGL and CDH mixes, 50 ms",
		Note:  "cells: finished / deadlines-met / worst app slowdown",
	}
	t.Cols = append(t.Cols, "mix")
	t.Cols = append(t.Cols, FairnessPolicyNames...)
	for _, mixName := range []string{"CGL", "CDH", "CDG"} {
		mix, err := workload.ParseMix(mixName)
		if err != nil {
			return nil, err
		}
		row := []string{mixName}
		for _, pname := range FairnessPolicyNames {
			st, err := runPeriodic(pname, mix)
			if err != nil {
				return nil, err
			}
			finished, met := 0, 0
			worst, anyStarved := 0.0, false
			for _, a := range st.Apps {
				finished += a.Iterations
				met += a.DeadlinesMet
				s, ok := a.FiniteSlowdown()
				if !ok {
					// A starved app's slowdown is undefined, not a number to
					// compare: flag it instead of letting +Inf win the max.
					anyStarved = true
					continue
				}
				if s > worst {
					worst = s
				}
			}
			cell := f2(worst)
			if anyStarved {
				cell = "starved"
			}
			row = append(row, fmt.Sprintf("%d/%d/%s", finished, met, cell))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runPeriodic(policyName string, mix []workload.App) (*stats.Stats, error) {
	policy, err := NewPolicy(policyName)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	st := stats.New()
	m := manager.New(k, manager.DefaultConfig(policy), st)
	for _, app := range mix {
		app := app
		if err := m.SubmitPeriodic(func() *graph.DAG { return workload.MustBuild(app) },
			app.Deadline(), workload.ContinuousHorizon); err != nil {
			return nil, err
		}
	}
	m.RunContinuous(workload.ContinuousHorizon)
	return st, nil
}

// TiledStudy is an extension experiment probing the paper's §V-H
// expectation: "we expect applications with more varied resource needs and
// larger input sizes to benefit more from complex interconnects." It runs
// 256x256 inputs chunked into four 128x128 tiles (GAM+-style composition)
// on a platform with two instances of each accelerator, where tile-level
// parallelism creates concurrent producer/consumer pairs that a crossbar
// can serve simultaneously.
func TiledStudy() (*Table, error) {
	t := &Table{
		Title: "Extension: 256x256 tiled inputs (4 tiles, 2 instances/kind), RELIEF",
		Note:  "makespan per topology; xbar gain = bus/xbar",
		Cols:  []string{"mix", "bus (ms)", "xbar (ms)", "xbar gain", "bus occ%", "xbar occ%"},
	}
	for _, mixName := range []string{"C", "CH", "CHL", "CDH", "GL", "GHL"} {
		mix, err := workload.ParseMix(mixName)
		if err != nil {
			return nil, err
		}
		var mk [2]sim.Time
		var occ [2]float64
		for i, topo := range []xbar.Topology{xbar.Bus, xbar.Crossbar} {
			st, occupancy, err := runTiled(mix, topo)
			if err != nil {
				return nil, err
			}
			mk[i] = st.Makespan
			occ[i] = occupancy
		}
		t.AddRow(mixName, f2(mk[0].Milliseconds()), f2(mk[1].Milliseconds()),
			f2(float64(mk[0])/float64(mk[1])), f1(100*occ[0]), f1(100*occ[1]))
	}
	return t, nil
}

func runTiled(mix []workload.App, topo xbar.Topology) (*stats.Stats, float64, error) {
	k := sim.NewKernel()
	st := stats.New()
	cfg := manager.DefaultConfig(mustPolicy("RELIEF"))
	for kind := range cfg.Instances {
		cfg.Instances[kind] = 2
	}
	total := 0
	for _, c := range cfg.Instances {
		total += c
	}
	cfg.Interconnect = xbar.DefaultConfig(total)
	cfg.Interconnect.Topology = topo
	m := manager.New(k, cfg, st)
	for _, app := range mix {
		d, err := workload.BuildTiled(app, 2, 4)
		if err != nil {
			return nil, 0, err
		}
		if err := m.Submit(d, 0, nil); err != nil {
			return nil, 0, err
		}
	}
	m.Run()
	return st, m.Interconnect().Occupancy(), nil
}

func mustPolicy(name string) sched.Policy {
	p, err := NewPolicy(name)
	if err != nil {
		panic(err)
	}
	return p
}

// EnergyStudy is an extension of the paper's Fig. 6: a whole-SoC energy
// breakdown that adds accelerator datapath energy (from the min-ED^2
// designs of internal/design) to the memory energies the paper reports.
// Compute energy is schedule-invariant (the same tasks run under every
// policy), so the study quantifies how much of the total a scheduler can
// actually influence.
func EnergyStudy(s *Sweep) (*Table, error) {
	// Per-task datapath energy of each accelerator's chosen design.
	taskEnergy := make(map[int]float64)
	for _, k := range design.Kernels() {
		taskEnergy[int(k.Kind)] = design.Choose(k, design.DefaultSpace()).EnergyJ
	}
	t := &Table{
		Title: "Extension: whole-SoC energy (high contention, uJ)",
		Note:  "accel = datapath energy of min-ED^2 designs; memory energies as in Fig. 6",
		Cols: []string{"mix", "accel",
			"LAX dram", "LAX spad", "RELIEF dram", "RELIEF spad",
			"RELIEF/LAX total"},
	}
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		// Datapath energy: node counts per kind are policy-invariant.
		var accelE float64
		for _, app := range mix {
			for _, n := range workload.MustBuild(app).Nodes {
				e := taskEnergy[int(n.Kind)]
				// Scale for non-5x5 convolutions like the timing model.
				if n.FilterSize > 0 && n.FilterSize != 5 {
					e = e * float64(n.FilterSize*n.FilterSize) / 25
				}
				accelE += e
			}
		}
		lax, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "LAX"})
		if err != nil {
			return err
		}
		rel, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"})
		if err != nil {
			return err
		}
		ld, ls := lax.Stats.MemoryEnergy()
		rd, rs := rel.Stats.MemoryEnergy()
		ratio := (accelE + rd + rs) / (accelE + ld + ls)
		t.AddRow(name, f1(accelE*1e6), f1(ld*1e6), f1(ls*1e6),
			f1(rd*1e6), f1(rs*1e6), f2(ratio))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ScalingStudy is an extension experiment: how do makespan and forwarding
// behave as the platform grows from one to four instances of every
// accelerator? More instances raise max_forwards (RELIEF can escalate more
// children) but spread producers and consumers across scratchpads, turning
// colocations into forwards.
func ScalingStudy() (*Table, error) {
	t := &Table{
		Title: "Extension: instance scaling under RELIEF",
		Cols:  []string{"mix", "makespan(ms)", "instances/kind", "fwd%", "col%", "occupancy"},
	}
	for _, mixName := range []string{"GL", "CGL", "CDH"} {
		mix, err := workload.ParseMix(mixName)
		if err != nil {
			return nil, err
		}
		for _, per := range []int{1, 2, 4} {
			k := sim.NewKernel()
			st := stats.New()
			cfg := manager.DefaultConfig(mustPolicy("RELIEF"))
			total := 0
			for kind := range cfg.Instances {
				cfg.Instances[kind] = per
				total += per
			}
			cfg.Interconnect = xbar.DefaultConfig(total)
			m := manager.New(k, cfg, st)
			for _, app := range mix {
				if err := m.Submit(workload.MustBuild(app), 0, nil); err != nil {
					return nil, err
				}
			}
			m.Run()
			fwd, col := st.ForwardsPerEdge()
			t.AddRow(mixName, f2(st.Makespan.Milliseconds()),
				fmt.Sprintf("%d", per), f1(fwd), f1(col), f2(st.Occupancy()))
		}
	}
	return t, nil
}
