// relief-trace reproduces the spirit of the paper's Fig. 2 motivating
// example: several deadline-constrained chains contending for one
// accelerator. Least-laxity policies interleave the chains round-robin and
// forfeit forwarding opportunities; RELIEF promotes each newly ready child
// so chains run contiguously — more colocations, same deadlines met.
//
// It prints the schedule trace for a chosen policy and a comparison table
// across all policies.
//
// With -serve-trace it instead renders a relief-svctrace/1 service-trace
// document (GET /trace/{id} from relief-serve) as one timeline: the serving
// pipeline's wall-clock stage spans on a "service" lane alongside the
// kernel-level simulation events the request recorded, in the same Chrome
// trace-event or text formats.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"relief"
	"relief/internal/svctrace"
	"relief/internal/trace"
)

// chains builds three four-node elem-matrix chains with staggered
// deadlines, 1.5 ms per node, and small buffers (data movement is
// negligible; the example isolates scheduling order).
func chains() []*relief.DAG {
	mk := func(app, sym string, deadline relief.Time) *relief.DAG {
		d := relief.NewDAG(app, sym, deadline)
		var prev *relief.Node
		for i := 1; i <= 4; i++ {
			var n *relief.Node
			if prev == nil {
				n = d.AddNode(fmt.Sprintf("%s%d", sym, i), relief.ElemMatrix, relief.OpAdd, 4096)
				n.ExtraInputBytes = 4096
			} else {
				n = d.AddNode(fmt.Sprintf("%s%d", sym, i), relief.ElemMatrix, relief.OpAdd, 4096, prev)
			}
			n.Compute = relief.Time(1500) * relief.Microsecond
			prev = n
		}
		return d
	}
	return []*relief.DAG{
		mk("chain-a", "A", 22*relief.Millisecond),
		mk("chain-b", "B", 21*relief.Millisecond),
		mk("chain-c", "C", 20*relief.Millisecond),
	}
}

func run(policy string, rec *relief.TraceRecorder) (*relief.Report, []*relief.DAG) {
	sys := relief.NewSystem(relief.Config{Policy: policy, Trace: rec})
	ds := chains()
	for _, d := range ds {
		if err := sys.Submit(d, 0); err != nil {
			fmt.Fprintf(os.Stderr, "relief-trace: %v\n", err)
			os.Exit(1)
		}
	}
	return sys.Run(), ds
}

func main() {
	tracePolicy := flag.String("trace", "RELIEF", "policy whose schedule to print")
	out := flag.String("o", "", "also record a full event timeline for the traced policy and write it here (.json = Chrome trace-event format, else text)")
	kinds := flag.String("kinds", "", "comma-separated event kinds to keep in -o output (e.g. compute,forward); empty = all")
	maxEvents := flag.Int("max-events", 0, "cap recorded trace events (0 = unbounded); dropped events are counted and reported")
	serveTrace := flag.String("serve-trace", "", `render a relief-svctrace/1 document from this file ("-" = stdin) instead of the built-in example`)
	flag.Parse()

	if *serveTrace != "" {
		if err := renderServiceTrace(*serveTrace, *out, *kinds); err != nil {
			fmt.Fprintf(os.Stderr, "relief-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("Motivating example: three 4-node chains on one elem-matrix accelerator")
	fmt.Println()
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "policy", "fwd", "coloc", "nodeDL%", "dagDL%")
	for _, p := range []string{"FCFS", "GEDF-D", "GEDF-N", "LL", "LAX", "HetSched", "RELIEF"} {
		rep, _ := run(p, nil)
		dagMet := 0
		for _, a := range rep.Apps {
			dagMet += a.DeadlinesMet
		}
		fmt.Printf("%-10s %8d %8d %8.1f %8.1f\n",
			p, rep.Forwards, rep.Colocations, rep.NodeDeadlinePct(), 100*float64(dagMet)/3)
	}

	fmt.Printf("\nSchedule under %s:\n", *tracePolicy)
	var rec *relief.TraceRecorder
	if *out != "" {
		rec = relief.NewTraceRecorder()
		if *maxEvents > 0 {
			rec.SetMaxEvents(*maxEvents)
		}
	}
	_, ds := run(*tracePolicy, rec)
	var nodes []*relief.Node
	for _, d := range ds {
		nodes = append(nodes, d.Nodes...)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].StartAt < nodes[j].StartAt })
	fmt.Printf("%-4s %12s %12s %12s  %s\n", "node", "start", "finish", "deadline", "met")
	for _, n := range nodes {
		met := "yes"
		if n.FinishAt > n.Deadline {
			met = "NO"
		}
		fmt.Printf("%-4s %12v %12v %12v  %s\n", n.Name, n.StartAt, n.FinishAt, n.Deadline, met)
	}

	if rec != nil {
		if err := writeTimeline(rec, *out, *kinds); err != nil {
			fmt.Fprintf(os.Stderr, "relief-trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTimeline exports the recorded timeline to path, optionally filtered
// to a kind subset, as Chrome trace-event JSON (.json) or text.
func writeTimeline(rec *relief.TraceRecorder, path, kindsCSV string) error {
	events := rec.Events()
	if kindsCSV != "" {
		ks, err := trace.ParseKinds(kindsCSV)
		if err != nil {
			return err
		}
		events = trace.Filter(events, ks...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteChromeEvents(f, events)
	} else {
		err = trace.WriteTextEvents(f, events)
	}
	if err != nil {
		return err
	}
	msg := fmt.Sprintf("\ntimeline: %d events written to %s", len(events), path)
	if d := rec.Dropped(); d > 0 {
		msg += fmt.Sprintf(" (%d dropped at the recorder cap)", d)
	}
	fmt.Println(msg)
	return nil
}

// renderServiceTrace reads a relief-svctrace/1 document (as served by GET
// /trace/{id}) and writes its combined service + kernel timeline: Chrome
// trace-event JSON when the destination ends in .json, text otherwise,
// stdout when -o is empty.
func renderServiceTrace(src, dst, kindsCSV string) error {
	var data []byte
	var err error
	if src == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return err
	}
	var doc svctrace.Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("parsing service trace: %w", err)
	}
	if doc.Schema != svctrace.Schema {
		return fmt.Errorf("unexpected schema %q (want %s)", doc.Schema, svctrace.Schema)
	}
	events := doc.Events()
	if kindsCSV != "" {
		ks, err := trace.ParseKinds(kindsCSV)
		if err != nil {
			return err
		}
		events = trace.Filter(events, ks...)
	}
	if dst == "" {
		return trace.WriteTextEvents(os.Stdout, events)
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(dst, ".json") {
		err = trace.WriteChromeEvents(f, events)
	} else {
		err = trace.WriteTextEvents(f, events)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %d spans + %d kernel events → %d timeline events written to %s\n",
		doc.TraceID, len(doc.Spans), len(doc.KernelEvents), len(events), dst)
	return nil
}
