package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// forwardHeader marks a request already forwarded once by a peer; the
// receiver executes it locally instead of re-forwarding, so a stale or
// disagreeing ring view can never loop a request around the fleet.
const forwardHeader = "X-Relief-Forwarded"

// servedByHeader names the peer whose response was relayed to the client.
const servedByHeader = "X-Relief-Served-By"

// probeTimeout bounds one peer cache probe (GET /result/{digest}). Probes
// are pure cache lookups — a peer that cannot answer this fast is treated
// as a miss and the request proceeds without it.
const probeTimeout = 2 * time.Second

// cluster is one replica's view of the fleet: its own advertised base URL,
// its peers, and the consistent-hash ring that places every digest on
// exactly one owner. Immutable after ConfigureCluster publishes it.
type cluster struct {
	self  string
	peers []string // sorted, self excluded
	ring  *ring
	probe *http.Client // cheap cache probes
	fwd   *http.Client // full request forwards (bounded by the simulation budget)
}

// ConfigureCluster puts the server in cluster mode: self is this replica's
// advertised base URL (e.g. "http://10.0.0.2:8080"), peers the other
// replicas'. Every digest is owned by exactly one fleet member (consistent
// hashing over the full member set, identical on every replica); non-owned
// requests probe the owner's cache and then forward to it, so each popular
// scenario is simulated once fleet-wide. Call before the server starts
// taking traffic. Trailing slashes are normalized away and self is dropped
// from the peer list, so every replica can be handed the same fleet list.
func (s *Server) ConfigureCluster(self string, peers []string) {
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	seen := map[string]bool{self: true}
	var ps []string
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
	}
	sort.Strings(ps)
	c := &cluster{
		self:  self,
		peers: ps,
		ring:  newRing(append(append([]string{}, ps...), self)),
		probe: &http.Client{Timeout: probeTimeout},
		fwd:   &http.Client{Timeout: s.cfg.Timeout + 15*time.Second},
	}
	s.svc.registerPeers(ps)
	s.mu.Lock()
	s.cluster = c
	s.mu.Unlock()
}

// probeResult asks one peer's cache for a finished result: a cheap GET that
// never triggers a simulation. Any failure (unreachable peer, 404, bad
// body) is a miss.
func (c *cluster) probeResult(peer, key string) (*Result, bool) {
	resp, err := c.probe.Get(peer + "/result/" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var res Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&res); err != nil {
		return nil, false
	}
	return &res, true
}

// forward re-posts the normalized request to its owner and returns the
// owner's raw 200 response body for relaying. Any other outcome (owner
// down, draining, overloaded, timed out) reports failure so the caller
// degrades to local execution — a peer going down costs duplicated work,
// never a failed request.
func (c *cluster) forward(owner string, req Request) ([]byte, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false
	}
	hreq, err := http.NewRequest(http.MethodPost, owner+"/run", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(forwardHeader, "1")
	resp, err := c.fwd.Do(hreq)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, false
	}
	return b, true
}

// maxResponseBytes bounds relayed and probed peer responses (metrics
// documents for heavy scenarios run to a few hundred KiB).
const maxResponseBytes = 16 << 20
