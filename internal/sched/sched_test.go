package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/sim"
)

// mkNode builds a standalone node with the given scheduling keys.
func mkNode(deadline, predRuntime sim.Time) *graph.Node {
	d := graph.New("t", "T", 100*sim.Millisecond)
	n := d.AddNode("n", accel.ElemMatrix, accel.OpAdd, 100)
	n.Deadline = deadline
	n.PredRuntime = predRuntime
	n.Laxity = deadline - predRuntime
	return n
}

// insertAll runs a policy's InsertPos/Insert loop over the nodes.
func insertAll(p Policy, nodes []*graph.Node, now sim.Time) []*graph.Node {
	var q []*graph.Node
	for _, n := range nodes {
		pos, _ := p.InsertPos(q, n, now)
		Insert(&q, n, pos)
	}
	return q
}

func TestInsertPositions(t *testing.T) {
	a, b, c := mkNode(1, 0), mkNode(2, 0), mkNode(3, 0)
	var q []*graph.Node
	Insert(&q, b, 0)
	Insert(&q, c, 1)
	Insert(&q, a, 0)
	if q[0] != a || q[1] != b || q[2] != c {
		t.Fatal("positional insert broken")
	}
	// Out-of-range positions clamp.
	d := mkNode(4, 0)
	Insert(&q, d, 99)
	if q[3] != d {
		t.Fatal("over-length insert should append")
	}
	e := mkNode(5, 0)
	Insert(&q, e, -3)
	if q[0] != e {
		t.Fatal("negative insert should prepend")
	}
}

func TestFCFSAppends(t *testing.T) {
	p := FCFS{}
	nodes := []*graph.Node{mkNode(30, 1), mkNode(10, 1), mkNode(20, 1)}
	q := insertAll(p, nodes, 0)
	for i := range nodes {
		if q[i] != nodes[i] {
			t.Fatal("FCFS must preserve arrival order")
		}
	}
	if _, scanned := p.InsertPos(q, mkNode(1, 1), 0); scanned != 0 {
		t.Error("FCFS should scan nothing")
	}
}

func TestGEDFSortsByDeadline(t *testing.T) {
	for _, p := range []Policy{GEDFD{}, GEDFN{}} {
		nodes := []*graph.Node{mkNode(30, 1), mkNode(10, 1), mkNode(20, 1)}
		q := insertAll(p, nodes, 0)
		if q[0].Deadline != 10 || q[1].Deadline != 20 || q[2].Deadline != 30 {
			t.Fatalf("%s: queue not deadline-sorted", p.Name())
		}
	}
}

func TestGEDFTieKeepsArrivalOrder(t *testing.T) {
	a, b := mkNode(10, 1), mkNode(10, 2)
	q := insertAll(GEDFN{}, []*graph.Node{a, b}, 0)
	if q[0] != a || q[1] != b {
		t.Fatal("equal deadlines must preserve insertion order (stable)")
	}
}

func TestLLSortsByLaxity(t *testing.T) {
	// Same deadline, different runtimes: longer runtime = lower laxity =
	// higher priority.
	a := mkNode(100*sim.Microsecond, 10*sim.Microsecond)
	b := mkNode(100*sim.Microsecond, 90*sim.Microsecond)
	q := insertAll(LL{}, []*graph.Node{a, b}, 0)
	if q[0] != b || q[1] != a {
		t.Fatal("LL must prioritise the lower-laxity task")
	}
}

func TestLAXDeprioritizesNegativeLaxity(t *testing.T) {
	now := 50 * sim.Microsecond
	neg := mkNode(40*sim.Microsecond, 10*sim.Microsecond)  // laxity 30us - 50us < 0
	pos := mkNode(100*sim.Microsecond, 20*sim.Microsecond) // laxity 80us - 50us > 0
	q := insertAll(LAX{}, []*graph.Node{neg, pos}, now)
	if q[0] != pos || q[1] != neg {
		t.Fatal("LAX must let non-negative laxity bypass negative laxity")
	}
	// Under LL the negative-laxity task stays ahead.
	q = insertAll(LL{}, []*graph.Node{neg, pos}, now)
	if q[0] != neg {
		t.Fatal("LL must keep the least-laxity task at the head")
	}
}

func TestLAXOrdersWithinClasses(t *testing.T) {
	now := 100 * sim.Microsecond
	n1 := mkNode(50*sim.Microsecond, 10*sim.Microsecond)  // very negative
	n2 := mkNode(90*sim.Microsecond, 10*sim.Microsecond)  // slightly negative
	p1 := mkNode(200*sim.Microsecond, 10*sim.Microsecond) // positive, lax 90
	p2 := mkNode(150*sim.Microsecond, 10*sim.Microsecond) // positive, lax 40
	q := insertAll(LAX{}, []*graph.Node{n1, n2, p1, p2}, now)
	want := []*graph.Node{p2, p1, n1, n2}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("LAX order wrong at %d", i)
		}
	}
}

func TestHetSchedUsesSDRDeadlines(t *testing.T) {
	if (HetSched{}).DeadlineMode() != graph.DeadlineSDR {
		t.Fatal("HetSched must use SDR deadlines")
	}
	if (LL{}).DeadlineMode() != graph.DeadlineCPM || (LAX{}).DeadlineMode() != graph.DeadlineCPM {
		t.Fatal("LL/LAX must use CPM deadlines")
	}
	if (GEDFD{}).DeadlineMode() != graph.DeadlineDAG {
		t.Fatal("GEDF-D must use the DAG deadline")
	}
}

func TestCurrentLaxity(t *testing.T) {
	n := mkNode(100*sim.Microsecond, 30*sim.Microsecond)
	if got := CurrentLaxity(n, 20*sim.Microsecond); got != 50*sim.Microsecond {
		t.Errorf("CurrentLaxity = %v, want 50us", got)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, c := range []struct {
		p    Policy
		want string
	}{
		{FCFS{}, "FCFS"}, {GEDFD{}, "GEDF-D"}, {GEDFN{}, "GEDF-N"},
		{LL{}, "LL"}, {LAX{}, "LAX"}, {HetSched{}, "HetSched"},
	} {
		if c.p.Name() != c.want {
			t.Errorf("Name() = %q, want %q", c.p.Name(), c.want)
		}
	}
}

// TestQuickLLSorted: after any insertion sequence, an LL queue is sorted by
// stored laxity.
func TestQuickLLSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var nodes []*graph.Node
		for i := 0; i < 2+rng.Intn(30); i++ {
			nodes = append(nodes, mkNode(sim.Time(rng.Intn(1000))*sim.Microsecond,
				sim.Time(rng.Intn(500))*sim.Microsecond))
		}
		q := insertAll(LL{}, nodes, 0)
		for i := 1; i < len(q); i++ {
			if q[i].Laxity < q[i-1].Laxity {
				return false
			}
		}
		return len(q) == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLAXPartition: a LAX queue always has every non-negative-laxity
// task ahead of every negative-laxity task, each class laxity-sorted.
func TestQuickLAXPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		now := sim.Time(rng.Intn(500)) * sim.Microsecond
		var nodes []*graph.Node
		for i := 0; i < 2+rng.Intn(30); i++ {
			nodes = append(nodes, mkNode(sim.Time(rng.Intn(1000))*sim.Microsecond,
				sim.Time(rng.Intn(500))*sim.Microsecond))
		}
		q := insertAll(LAX{}, nodes, now)
		seenNeg := false
		for i, n := range q {
			neg := CurrentLaxity(n, now) < 0
			if neg {
				seenNeg = true
			} else if seenNeg {
				return false // non-negative after a negative
			}
			if i > 0 {
				prev := q[i-1]
				if (CurrentLaxity(prev, now) < 0) == neg && n.Laxity < prev.Laxity {
					return false // class not laxity-sorted
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
