package report

import (
	"bytes"
	"encoding/xml"
	"math"
	"regexp"
	"strings"
	"testing"

	"relief/internal/exp"
)

func TestChartSVGBars(t *testing.T) {
	c := &Chart{
		Title:  "test & chart",
		YLabel: "%",
		Groups: []string{"A", "B"},
		Series: []Series{
			{Name: "one", Values: []float64{10, 20}, Stack: []float64{5, 5}},
			{Name: "two", Values: []float64{30, 40}},
		},
		YMax: 100,
	}
	svg := c.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "test &amp; chart") {
		t.Error("title not escaped")
	}
	// 2 series x 2 groups bars + 2 stacked segments = 6 rects + 2 legend
	// swatches.
	if got := strings.Count(svg, "<rect"); got != 8 {
		t.Errorf("rect count = %d, want 8", got)
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v", err)
	}
}

func TestChartSVGBoxes(t *testing.T) {
	c := &Chart{
		Title:  "boxes",
		Groups: []string{"A"},
		Boxes: [][]Box{
			{{Min: 0.5, Median: 1.0, Max: 2.0}},
			{{Min: 0.2, Median: 0.9, Max: 3, Starved: true}},
		},
		BoxSer: []string{"p1", "p2"},
	}
	svg := c.SVG()
	if !strings.Contains(svg, "inf") {
		t.Error("starvation marker missing")
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Fatalf("box SVG not well-formed: %v", err)
	}
}

func TestChartAutoMax(t *testing.T) {
	c := &Chart{
		Groups: []string{"A"},
		Series: []Series{{Name: "s", Values: []float64{3}, Stack: []float64{2}}},
	}
	if got := c.autoMax(); got != 5 {
		t.Errorf("autoMax = %v, want 5 (stack included)", got)
	}
	c2 := &Chart{Boxes: [][]Box{{{Min: 0, Median: 1, Max: math.Inf(1)}}}}
	if got := c2.autoMax(); math.IsInf(got, 1) {
		t.Error("autoMax must ignore infinities")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if svg := c.SVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart must still render")
	}
}

func TestGenerateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	var buf bytes.Buffer
	if err := Generate(exp.NewSweep(), &buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if got := strings.Count(html, "<svg"); got != 6 {
		t.Fatalf("report has %d charts, want 6", got)
	}
	for _, want := range []string{"Figure 4c", "Figure 5c", "Figure 7c", "Figure 8c", "Figure 9a", "Figure 9b"} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every embedded SVG must be well-formed XML.
	for i, m := range regexp.MustCompile(`(?s)<svg.*?</svg>`).FindAllString(html, -1) {
		if err := xml.Unmarshal([]byte(m), new(any)); err != nil {
			t.Fatalf("chart %d malformed: %v", i, err)
		}
	}
}
