// lockcheck fixture: fields annotated //relief:guardedby mu may only be
// accessed while the named sibling mutex is held on the same value.
package guard

import "sync"

type Tracker struct {
	mu    sync.Mutex
	count int //relief:guardedby mu
	name  string
}

// Registry is the exported cross-package case: the guardedby fact on
// Entries travels to importers (see the guarduser fixture).
type Registry struct {
	Mu      sync.RWMutex
	Entries map[string]int //relief:guardedby Mu
}

// Good brackets the access with the lock.
func (t *Tracker) Good() {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

// Deferred holds the lock to function exit.
func (t *Tracker) Deferred() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Free never touches a guarded field, so no lock is needed.
func (t *Tracker) Free() string { return t.name }

// Bad accesses the guarded field with no lock at all.
func (t *Tracker) Bad() {
	t.count++ // want `t\.count is guarded by t\.mu, which is not held here`
}

// Stale accesses the guarded field after releasing the lock.
func (t *Tracker) Stale() {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
	t.count = 0 // want `t\.count is guarded by t\.mu, which is not held here`
}

// Branch releases on one path; the access after the if sees the merged
// (pessimistic) state.
func (t *Tracker) Branch(b bool) {
	if b {
		t.mu.Lock()
		t.count++
		t.mu.Unlock()
		return
	}
	t.count-- // want `t\.count is guarded by t\.mu, which is not held here`
}

// Leaky acquires only inside a branch: the acquisition must not leak
// past its block.
func (t *Tracker) Leaky(b bool) {
	if b {
		t.mu.Lock()
	}
	t.count++ // want `t\.count is guarded by t\.mu, which is not held here`
	if b {
		t.mu.Unlock()
	}
}

// countLocked relies on the name-suffix convention: callers hold t.mu.
func (t *Tracker) countLocked() int { return t.count }

// bump is documented to run with the lock held.
//
//relief:holds mu
func (t *Tracker) bump() { t.count++ }

// Spawn hands work to another goroutine: the closure starts with an
// empty lock set even though the spawner holds the lock.
func (t *Tracker) Spawn() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.count++ // want `t\.count is guarded by t\.mu, which is not held here`
	}()
}

// NewTracker builds a value no other goroutine can see yet; guarded
// fields of body-local values may be initialized lock-free.
func NewTracker(n int) *Tracker {
	t := &Tracker{}
	t.count = n
	return t
}

// Reads holds the read side, which suffices for reads.
func (r *Registry) Reads() int {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	return len(r.Entries)
}

// WriteUnderRead mutates under the read lock.
func (r *Registry) WriteUnderRead() {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	r.Entries = nil // want `r\.Entries is written while r\.Mu is only read-locked`
}
