// Package relief is a transaction-level SoC simulator and scheduling
// framework reproducing "RELIEF: Relieving Memory Pressure In SoCs Via Data
// Movement-Aware Accelerator Scheduling" (Gupta & Dwarkadas, HPCA 2024).
//
// It models a mobile SoC with seven elementary loosely-coupled accelerators
// (ISP, grayscale, convolution, elem-matrix, canny-non-max, harris-non-max,
// edge-tracking), a hardware accelerator manager, scratchpad-to-scratchpad
// data forwarding, and eight scheduling policies: the RELIEF policy of the
// paper plus the FCFS, GEDF-D, GEDF-N, LL, LAX, and HetSched baselines and
// the RELIEF-LAX variant.
//
// The typical flow is: build (or load) application DAGs, configure a
// System with a policy, submit the DAGs, run, and inspect the Report:
//
//	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
//	dag, _ := relief.BuildWorkload("canny")
//	sys.Submit(dag, 0)
//	report := sys.Run()
//	fmt.Println(report.Forwards, report.Colocations)
//
// The exported DAG/Node types alias the internal graph package, so DAGs
// built through this package interoperate with everything else.
package relief

import (
	"fmt"
	"io"

	"relief/internal/accel"
	"relief/internal/core"
	"relief/internal/graph"
	"relief/internal/manager"
	"relief/internal/predict"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time = sim.Time

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// DAG is an application task graph; Node is one accelerator task within it.
type (
	DAG  = graph.DAG
	Node = graph.Node
)

// Kind identifies an accelerator type; Op the operation a task requests.
type (
	Kind = accel.Kind
	Op   = accel.Op
)

// The seven elementary accelerators of the platform.
const (
	ISP          = accel.ISP
	Grayscale    = accel.Grayscale
	Convolution  = accel.Convolution
	ElemMatrix   = accel.ElemMatrix
	CannyNonMax  = accel.CannyNonMax
	HarrisNonMax = accel.HarrisNonMax
	EdgeTracking = accel.EdgeTracking
)

// Common task operations (see the accel package for the full set).
const (
	OpDefault = accel.OpDefault
	OpAdd     = accel.OpAdd
	OpSub     = accel.OpSub
	OpMul     = accel.OpMul
	OpDiv     = accel.OpDiv
	OpSqr     = accel.OpSqr
	OpSqrt    = accel.OpSqrt
	OpAtan2   = accel.OpAtan2
	OpTanh    = accel.OpTanh
	OpSigmoid = accel.OpSigmoid
	OpMac     = accel.OpMac
	OpScale   = accel.OpScale
	OpThresh  = accel.OpThresh
)

// DeadlineMode selects how node deadlines derive from the DAG deadline.
type DeadlineMode = graph.DeadlineMode

// Deadline assignment schemes for Policy implementations.
const (
	DeadlineDAG = graph.DeadlineDAG
	DeadlineCPM = graph.DeadlineCPM
	DeadlineSDR = graph.DeadlineSDR
)

// Policy is the scheduling policy interface: it decides where a newly
// ready task is inserted into its per-accelerator-type ready queue.
// Policies additionally implementing the escalator extension (see
// internal/sched.Escalator and the custompolicy example) get RELIEF-style
// treatment of newly ready children.
type Policy = sched.Policy

// NewRELIEF returns the paper's RELIEF policy; NewRELIEFLAX its
// negative-laxity-de-prioritizing variant.
func NewRELIEF() Policy    { return core.New() }
func NewRELIEFLAX() Policy { return core.NewLAX() }

// PolicyByName constructs a policy from its paper name: "FCFS", "GEDF-D",
// "GEDF-N", "LL", "LAX", "HetSched", "RELIEF", or "RELIEF-LAX".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "FCFS":
		return sched.FCFS{}, nil
	case "GEDF-D":
		return sched.GEDFD{}, nil
	case "GEDF-N":
		return sched.GEDFN{}, nil
	case "LL":
		return sched.LL{}, nil
	case "LAX":
		return sched.LAX{}, nil
	case "HetSched":
		return sched.HetSched{}, nil
	case "RELIEF":
		return core.New(), nil
	case "RELIEF-LAX":
		return core.NewLAX(), nil
	}
	return nil, fmt.Errorf("relief: unknown policy %q", name)
}

// NewDAG starts an empty application DAG with the given name, single-letter
// symbol, and relative deadline. Add nodes with DAG.AddNode, then the
// System finalizes it at submission.
func NewDAG(app, sym string, deadline Time) *DAG {
	return graph.New(app, sym, deadline)
}

// BuildWorkload builds one of the paper's five benchmark DAGs by name:
// "canny", "deblur", "gru", "harris", or "lstm".
func BuildWorkload(name string) (*DAG, error) {
	for a := workload.App(0); a < workload.NumApps; a++ {
		if a.Name() == name {
			return workload.Build(a), nil
		}
	}
	return nil, fmt.Errorf("relief: unknown workload %q", name)
}

// Config parameterises a System. The zero value plus a policy name gives
// the paper's platform: one instance of each accelerator, double-buffered
// output scratchpads, a shared bus, and Max predictors.
type Config struct {
	// Policy is a policy name for PolicyByName. Ignored if Custom is set.
	Policy string
	// Custom supplies a caller-implemented policy.
	Custom Policy
	// Crossbar switches the interconnect from the shared bus to a
	// crossbar.
	Crossbar bool
	// Instances overrides the number of accelerator instances per kind
	// (nil = one of each).
	Instances map[Kind]int
	// OutputPartitions overrides the per-accelerator output buffering
	// (default 2).
	OutputPartitions int
	// BandwidthPredictor selects the memory bandwidth predictor: "max"
	// (default), "last", "average", or "ewma".
	BandwidthPredictor string
	// PredictDataMovement enables the graph-analysis data-movement
	// predictor instead of the maximum-data-movement default.
	PredictDataMovement bool
	// DisableForwarding turns the forwarding hardware off entirely.
	DisableForwarding bool
	// Trace, if non-nil, records task phases, DMA transfers, and manager
	// activity; export with TraceRecorder.WriteChromeTrace or WriteText.
	Trace *TraceRecorder
}

// TraceRecorder collects a simulation timeline (see internal/trace).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty timeline recorder to pass in Config.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// System is a configured SoC simulation accepting DAG submissions.
type System struct {
	kernel *sim.Kernel
	mgr    *manager.Manager
	st     *stats.Stats
	ran    bool
}

// NewSystem builds a simulation from cfg. It panics on an invalid policy
// name; use PolicyByName first to validate externally supplied names.
func NewSystem(cfg Config) *System {
	policy := cfg.Custom
	if policy == nil {
		name := cfg.Policy
		if name == "" {
			name = "RELIEF"
		}
		p, err := PolicyByName(name)
		if err != nil {
			panic(err)
		}
		policy = p
	}
	mcfg := manager.DefaultConfig(policy)
	if cfg.Crossbar {
		mcfg.Interconnect.Topology = xbar.Crossbar
	}
	for k, n := range cfg.Instances {
		if k < accel.NumKinds && n > 0 {
			mcfg.Instances[k] = n
		}
	}
	if cfg.OutputPartitions > 0 {
		mcfg.OutputPartitions = cfg.OutputPartitions
	}
	if cfg.BandwidthPredictor != "" {
		bw, err := predict.NewBW(cfg.BandwidthPredictor, mcfg.Interconnect.DRAMBandwidth)
		if err != nil {
			panic(err)
		}
		mcfg.BW = bw
	}
	if cfg.PredictDataMovement {
		mcfg.DM = predict.DMPredict
	}
	mcfg.DisableForwarding = cfg.DisableForwarding
	mcfg.Trace = cfg.Trace
	k := sim.NewKernel()
	st := stats.New()
	return &System{kernel: k, mgr: manager.New(k, mcfg, st), st: st}
}

// Submit registers a DAG for release at the given time. The DAG is
// finalized (compute times filled, acyclicity checked) if it has not been.
func (s *System) Submit(d *DAG, release Time) error {
	if err := d.Finalize(); err != nil {
		return err
	}
	return s.mgr.Submit(d, release, nil)
}

// SubmitLoop registers an application that re-submits itself whenever an
// instance finishes (continuous contention). build must return a fresh DAG
// each call.
func (s *System) SubmitLoop(build func() *DAG, release Time) error {
	first := build()
	if err := first.Finalize(); err != nil {
		return err
	}
	return s.mgr.Submit(first, release, func() *DAG {
		d := build()
		if err := d.Finalize(); err != nil {
			panic(err)
		}
		return d
	})
}

// SubmitPeriodic releases a fresh instance of the application every period
// until the horizon — frame-queue arrivals, e.g. a 60 FPS camera pipeline.
// Run the system with RunFor(horizon).
func (s *System) SubmitPeriodic(build func() *DAG, period, horizon Time) error {
	return s.mgr.SubmitPeriodic(func() *DAG {
		d := build()
		if err := d.Finalize(); err != nil {
			panic(err)
		}
		return d
	}, period, horizon)
}

// Run executes the simulation until every submitted DAG completes and
// returns the report. A System can only run once.
func (s *System) Run() *Report {
	s.mustRunOnce()
	s.mgr.Run()
	return newReport(s.st)
}

// RunFor executes the simulation until the horizon (for SubmitLoop
// workloads) and returns the report over finished work.
func (s *System) RunFor(horizon Time) *Report {
	s.mustRunOnce()
	s.mgr.RunContinuous(horizon)
	return newReport(s.st)
}

func (s *System) mustRunOnce() {
	if s.ran {
		panic("relief: System has already run")
	}
	s.ran = true
}

// Stats exposes the raw metric sink for advanced use.
func (s *System) Stats() *stats.Stats { return s.st }

// WriteGem5Stats dumps the run's statistics in gem5's stats.txt format —
// the output format of the paper's artifact.
func (s *System) WriteGem5Stats(w io.Writer) error { return s.st.WriteGem5Style(w) }

// Report summarises a finished simulation.
type Report struct {
	// Edge materialisation.
	Edges       int
	Forwards    int
	Colocations int
	// Traffic and energy.
	DRAMBytes       int64
	SpadToSpadBytes int64
	DRAMEnergyJ     float64
	SPADEnergyJ     float64
	// Deadlines.
	NodesDone        int
	NodesMetDeadline int
	// Timing.
	Makespan Time
	// Per-application results, keyed by app name.
	Apps map[string]AppReport

	st *stats.Stats
}

// AppReport summarises one application within a run.
type AppReport struct {
	Iterations   int
	DeadlinesMet int
	Slowdown     float64
	Runtimes     []Time
}

func newReport(st *stats.Stats) *Report {
	dramE, spadE := st.MemoryEnergy()
	r := &Report{
		Edges:            st.Edges,
		Forwards:         st.Forwards,
		Colocations:      st.Colocations,
		DRAMBytes:        st.DRAMReadBytes + st.DRAMWriteBytes,
		SpadToSpadBytes:  st.SpadXferBytes,
		DRAMEnergyJ:      dramE,
		SPADEnergyJ:      spadE,
		NodesDone:        st.NodesDone,
		NodesMetDeadline: st.NodesMetDeadline,
		Makespan:         st.Makespan,
		Apps:             make(map[string]AppReport),
		st:               st,
	}
	for name, a := range st.Apps {
		r.Apps[name] = AppReport{
			Iterations:   a.Iterations,
			DeadlinesMet: a.DeadlinesMet,
			Slowdown:     a.Slowdown(),
			Runtimes:     append([]Time(nil), a.Runtimes...),
		}
	}
	return r
}

// NodeDeadlinePct returns the percentage of finished nodes that met their
// deadline.
func (r *Report) NodeDeadlinePct() float64 { return r.st.NodeDeadlinePct() }

// ForwardsPerEdge returns forwards/edges and colocations/edges in percent.
func (r *Report) ForwardsPerEdge() (fwd, col float64) { return r.st.ForwardsPerEdge() }
