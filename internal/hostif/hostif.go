// Package hostif implements the host/manager shared-memory interface of
// paper §III-C: the binary DAG-node structure the CPU writes into main
// memory for the hardware manager to parse (Table III), and the
// accelerator metadata block the manager maintains (Table IV).
//
// The paper specifies the layouts exactly: with 32-bit pointers the base
// node with one parent and one child is 72 bytes, each additional parent
// adds 12 bytes (input pointer + parent pointer + producer_spm entry) and
// each additional child 4 bytes (child pointer); the largest node in the
// benchmark suite is 96 bytes. The accelerator metadata is 32 bytes per
// accelerator with up to 3 scratchpad partitions, 236 bytes total for the
// 7-accelerator platform (including the manager's 12-byte queue header).
// This package encodes and decodes those structures, so a DAG can round-
// trip through the same bytes a real host queue would carry.
package hostif

import (
	"encoding/binary"
	"fmt"

	"relief/internal/graph"
)

// Node status values (the status field of Table III).
const (
	StatusWaiting uint8 = iota
	StatusReady
	StatusRunning
	StatusDone
)

// Pointer is a 32-bit shared-memory address. The encoder assigns node
// addresses; address 0 is the null pointer.
type Pointer = uint32

// NodeHeader is the fixed part of the Table III node structure.
//
//	struct node {
//	    uint32_t acc_id;
//	    void *acc_inputs[NUM_INPUTS];
//	    node *children[NUM_CHILDREN];
//	    node *parents[NUM_INPUTS];
//	    uint8_t status;
//	    uint32_t deadline;
//	    acc_state *producer_acc[NUM_INPUTS];
//	    uint32_t producer_spm[NUM_INPUTS];
//	    uint32_t completed_parents;
//	    ... synchronisation and bookkeeping (paper: hidden for brevity)
//	}
type NodeHeader struct {
	AccID            uint32
	NumInputs        uint32
	NumChildren      uint32
	Status           uint8
	Op               uint8
	FilterSize       uint8
	_pad             uint8
	DeadlineUS       uint32
	CompletedParents uint32
	OutputBytes      uint32
	ExtraInputBytes  uint32
}

// Layout constants, matching the paper's arithmetic.
const (
	// headerBytes is the per-node fixed cost excluding the variable
	// pointer arrays: acc_id(4) + status/op/filter/pad(4) + deadline(4) +
	// completed_parents(4) + num_inputs(4) + num_children(4) +
	// output_bytes(4) + extra_bytes(4) + sync/bookkeeping(24) = 56.
	headerBytes = 56
	// perParentBytes: acc_inputs + parents + producer_acc + producer_spm
	// minus the producer_acc entry shared with acc_inputs = 12 per parent
	// beyond the pointers counted in the base (paper: "each additional
	// parent ... adding 12 bytes").
	perParentBytes = 12
	// perChildBytes: one child pointer.
	perChildBytes = 4
)

// NodeSize returns the encoded size of a node with the given fan-in and
// fan-out, following the paper's formula: 72 bytes base (1 parent, 1
// child), +12 per extra parent, +4 per extra child. Roots and leaves still
// reserve one slot, as the fixed-size C arrays do.
func NodeSize(parents, children int) int {
	if parents < 1 {
		parents = 1
	}
	if children < 1 {
		children = 1
	}
	return headerBytes + perParentBytes + perChildBytes +
		(parents-1)*perParentBytes + (children-1)*perChildBytes
}

// EncodeDAG serialises the DAG into one contiguous shared-memory image and
// returns the image plus each node's address, in graph node order.
func EncodeDAG(d *graph.DAG) ([]byte, []Pointer, error) {
	if len(d.Nodes) == 0 {
		return nil, nil, fmt.Errorf("hostif: empty DAG")
	}
	// First pass: assign addresses (base 0x1000 to keep 0 as null).
	addrs := make([]Pointer, len(d.Nodes))
	addr := Pointer(0x1000)
	for i, n := range d.Nodes {
		addrs[i] = addr
		size := NodeSize(len(n.Parents), len(n.Children))
		addr += Pointer(size)
	}
	index := make(map[*graph.Node]int, len(d.Nodes))
	for i, n := range d.Nodes {
		index[n] = i
	}
	var buf []byte
	le := binary.LittleEndian
	put32 := func(v uint32) { buf = le.AppendUint32(buf, v) }
	for _, n := range d.Nodes {
		start := len(buf)
		put32(uint32(n.Kind))
		buf = append(buf, statusOf(n), uint8(n.Op), uint8(n.FilterSize), 0)
		put32(uint32(n.RelDeadline.Microseconds()))
		put32(uint32(n.CompletedParents))
		put32(uint32(len(n.Parents)))
		put32(uint32(len(n.Children)))
		put32(uint32(n.OutputBytes))
		put32(uint32(n.ExtraInputBytes))
		// Synchronisation and bookkeeping words (paper: hidden for
		// brevity): 24 bytes reserved.
		for i := 0; i < 6; i++ {
			put32(0)
		}
		// Parent slots: parent pointer, acc_input pointer (edge bytes in
		// our encoding), producer_spm. Minimum one slot.
		nP := len(n.Parents)
		if nP == 0 {
			nP = 1
		}
		for i := 0; i < nP; i++ {
			if i < len(n.Parents) {
				put32(addrs[index[n.Parents[i]]])
				put32(uint32(n.EdgeInBytes[i]))
			} else {
				put32(0)
				put32(0)
			}
			put32(0) // producer_spm, filled by the manager at run time
		}
		// Child slots.
		nC := len(n.Children)
		if nC == 0 {
			nC = 1
		}
		for i := 0; i < nC; i++ {
			if i < len(n.Children) {
				put32(addrs[index[n.Children[i]]])
			} else {
				put32(0)
			}
		}
		if got, want := len(buf)-start, NodeSize(len(n.Parents), len(n.Children)); got != want {
			return nil, nil, fmt.Errorf("hostif: node %s encoded %d bytes, want %d", n.Name, got, want)
		}
	}
	return buf, addrs, nil
}

func statusOf(n *graph.Node) uint8 {
	switch n.State {
	case graph.Ready:
		return StatusReady
	case graph.Running:
		return StatusRunning
	case graph.Done:
		return StatusDone
	}
	return StatusWaiting
}

// DecodedNode is the manager-side view of one parsed node.
type DecodedNode struct {
	Addr        Pointer
	AccID       uint32
	Status      uint8
	Op          uint8
	FilterSize  uint8
	DeadlineUS  uint32
	Parents     []Pointer
	EdgeBytes   []uint32
	Children    []Pointer
	OutputBytes uint32
	ExtraBytes  uint32
}

// DecodeDAG parses a shared-memory image produced by EncodeDAG.
func DecodeDAG(img []byte) ([]DecodedNode, error) {
	le := binary.LittleEndian
	var nodes []DecodedNode
	off := 0
	addr := Pointer(0x1000)
	for off < len(img) {
		if len(img)-off < headerBytes {
			return nil, fmt.Errorf("hostif: truncated header at %d", off)
		}
		get32 := func(at int) uint32 { return le.Uint32(img[off+at:]) }
		n := DecodedNode{
			Addr:        addr,
			AccID:       get32(0),
			Status:      img[off+4],
			Op:          img[off+5],
			FilterSize:  img[off+6],
			DeadlineUS:  get32(8),
			OutputBytes: get32(24),
			ExtraBytes:  get32(28),
		}
		nParents := int(get32(16))
		nChildren := int(get32(20))
		if nParents > 64 || nChildren > 64 {
			return nil, fmt.Errorf("hostif: implausible fan at %d (%d/%d)", off, nParents, nChildren)
		}
		size := NodeSize(nParents, nChildren)
		if len(img)-off < size {
			return nil, fmt.Errorf("hostif: truncated node at %d", off)
		}
		slotP := nParents
		if slotP == 0 {
			slotP = 1
		}
		p := off + headerBytes
		for i := 0; i < slotP; i++ {
			if i < nParents {
				n.Parents = append(n.Parents, le.Uint32(img[p:]))
				n.EdgeBytes = append(n.EdgeBytes, le.Uint32(img[p+4:]))
			}
			p += perParentBytes
		}
		slotC := nChildren
		if slotC == 0 {
			slotC = 1
		}
		for i := 0; i < slotC; i++ {
			if i < nChildren {
				n.Children = append(n.Children, le.Uint32(img[p:]))
			}
			p += perChildBytes
		}
		nodes = append(nodes, n)
		off += size
		addr += Pointer(size)
	}
	return nodes, nil
}
