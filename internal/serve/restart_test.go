package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveProc is one relief-serve subprocess started on an ephemeral port.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:<port>

	mu  sync.Mutex
	out []string // every log line the process has emitted so far
}

// lines snapshots the process's log output so far.
func (p *serveProc) lines() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.out...)
}

// listenAddr extracts the listen address from a startup line, in either
// log format: the text handler's "relief-serve: listening on <url>" or the
// JSON handler's {"msg":"listening on <url>", ...} record.
func listenAddr(line string) string {
	if rest, ok := strings.CutPrefix(line, "relief-serve: listening on "); ok {
		return strings.TrimSpace(rest)
	}
	var rec struct {
		Msg string `json:"msg"`
	}
	if strings.HasPrefix(line, "{") && json.Unmarshal([]byte(line), &rec) == nil {
		if rest, ok := strings.CutPrefix(rec.Msg, "listening on "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// startServeProc launches bin with the given extra flags and waits for its
// "listening on" line to learn the ephemeral address.
func startServeProc(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(10 * time.Second)
	for p.base == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("relief-serve exited before listening")
			}
			p.mu.Lock()
			p.out = append(p.out, line)
			p.mu.Unlock()
			if addr := listenAddr(line); addr != "" {
				p.base = addr
			}
		case <-deadline:
			p.cmd.Process.Kill()
			t.Fatal("relief-serve never reported its address")
		}
	}
	// Keep draining so the child never blocks on a full pipe.
	go func() {
		for line := range lines {
			p.mu.Lock()
			p.out = append(p.out, line)
			p.mu.Unlock()
		}
	}()
	return p
}

// kill SIGKILLs the subprocess — no drain, no cleanup, the crash case.
func (p *serveProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait() // reap; exit error expected after SIGKILL
}

// getResult fetches the bare cached-result document for a digest.
func getResult(t *testing.T, base, digest string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/result/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /result/%s: %d %s", digest, resp.StatusCode, b)
	}
	return b
}

// TestCrashRestartWarmStart is the end-to-end durability check: populate a
// relief-serve replica's cache, SIGKILL the process (no drain), restart it
// on the same -cache-dir, and the reloaded entry must (a) serve byte-
// identically to the pre-crash result document and (b) be reported as a
// disk hit, not a re-simulation.
func TestCrashRestartWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI and runs subprocesses; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain unavailable")
	}
	bin := filepath.Join(t.TempDir(), "relief-serve")
	build := exec.Command(goBin, "build", "-o", bin, "relief/cmd/relief-serve")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building relief-serve: %v\n%s", err, out)
	}
	cacheDir := t.TempDir()

	const body = `{"mix":"CG"}`
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	digest := req.Digest()

	p1 := startServeProc(t, bin, "-cache-dir", cacheDir)
	resp, b := post(t, p1.base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash run: %d %s", resp.StatusCode, b)
	}
	if src, _ := decodeEnvelope(t, b); src != srcRun {
		t.Fatalf("pre-crash source = %q, want %q", src, srcRun)
	}
	before := getResult(t, p1.base, digest)
	p1.kill(t)

	// The restarted replica logs as JSON so the restore count can be
	// asserted as a structured attribute rather than parsed out of prose.
	p2 := startServeProc(t, bin, "-cache-dir", cacheDir, "-log-format", "json")
	defer p2.kill(t)

	var restored *int
	for _, line := range p2.lines() {
		var rec struct {
			Msg      string `json:"msg"`
			Dir      string `json:"dir"`
			Restored *int   `json:"restored"`
		}
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Restored == nil {
			continue
		}
		if rec.Dir != cacheDir {
			t.Errorf("restore record dir = %q, want %q", rec.Dir, cacheDir)
		}
		restored = rec.Restored
	}
	if restored == nil {
		t.Errorf("no structured restore record in restart logs:\n%s", strings.Join(p2.lines(), "\n"))
	} else if *restored != 1 {
		t.Errorf("restore record restored = %d, want 1", *restored)
	}

	resp, b = post(t, p2.base, body)
	src, _ := decodeEnvelope(t, b)
	if resp.StatusCode != http.StatusOK || src != srcDisk {
		t.Fatalf("post-restart run: status=%d source=%q body=%.200s, want 200/%q",
			resp.StatusCode, src, b, srcDisk)
	}
	after := getResult(t, p2.base, digest)
	if string(before) != string(after) {
		t.Errorf("restarted result document is not byte-identical:\n--- before ---\n%.300s\n--- after ---\n%.300s",
			before, after)
	}
}
