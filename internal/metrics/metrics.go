// Package metrics is the simulated-time telemetry subsystem: a registry of
// counters, gauges, and log-bucketed histograms sampled by kernel-driven
// probes, plus a per-task latency attribution record that decomposes every
// completed node's end-to-end latency into scheduling wait, DMA queueing
// (contention stall vs. pure transfer), compute, and writeback.
//
// The registry follows the same nil-receiver pattern as trace.Recorder: a
// nil *Registry is a valid, zero-cost no-op, so the manager's hot path pays
// a single pointer test when telemetry is off. Producers register
// func-backed metrics (the probe reads live simulator state) or push
// samples into histograms; exports (export.go) render the collected state
// as a CSV time series, a relief-metrics/1 JSON summary, or Prometheus
// text exposition.
//
// See docs/OBSERVABILITY.md for the metric catalogue and the trace-vs-
// metrics division of labour.
package metrics

import (
	"fmt"
	"sort"

	"relief/internal/sim"
)

// DefaultProbeInterval is the probe sampling period used when none is
// configured.
const DefaultProbeInterval = 50 * sim.Microsecond

// metric is one registered counter or gauge: either func-backed (fn reads
// live simulator state at sample/export time) or value-backed (val is
// updated through Counter/Gauge handles).
type metric struct {
	name    string
	help    string
	counter bool // Prometheus TYPE: counter vs gauge
	fn      func() float64
	val     float64
}

func (m *metric) value() float64 {
	if m.fn != nil {
		return m.fn()
	}
	return m.val
}

// Counter is a monotonically increasing value-backed metric. Methods are
// no-ops on a nil receiver.
type Counter struct{ m *metric }

// Add increases the counter. Negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.m.val += v
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a settable value-backed metric. Methods are no-ops on a nil
// receiver.
type Gauge struct{ m *metric }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.m.val = v
}

// Registry holds the metric set of one simulation, the probe time series,
// and the latency attribution sums. All methods are no-ops on a nil
// receiver; a single registry serves a single simulation (no locking).
type Registry struct {
	policy string

	metrics     []*metric
	byName      map[string]*metric
	hists       []*Histogram
	histByName  map[string]*Histogram
	bhists      []*BucketHistogram
	bhistByName map[string]*BucketHistogram

	// Probe time series: cols is the column snapshot taken at the first
	// sample, rows one value slice per probe tick.
	interval sim.Time
	cols     []*metric
	times    []sim.Time
	rows     [][]float64

	attr Attribution

	// Cached attribution-fed histograms (created on first observation).
	hNodeLatency *Histogram
	hSchedWait   *Histogram
	hNodeStall   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:      make(map[string]*metric),
		histByName:  make(map[string]*Histogram),
		bhistByName: make(map[string]*BucketHistogram),
	}
}

// Enabled reports whether telemetry is being collected. Producers gate
// sample construction that is itself costly (formatted labels, per-transfer
// arithmetic) on this, mirroring trace.Recorder.Enabled.
func (r *Registry) Enabled() bool { return r != nil }

// SetPolicy labels the registry (and its attribution record) with the
// scheduling policy that produced it.
func (r *Registry) SetPolicy(name string) {
	if r == nil {
		return
	}
	r.policy = name
	r.attr.Policy = name
}

// Policy returns the label set by SetPolicy.
func (r *Registry) Policy() string {
	if r == nil {
		return ""
	}
	return r.policy
}

// register adds (or returns the existing) counter/gauge metric under name.
// Re-registering a name with a different shape is a programmer error.
func (r *Registry) register(name, help string, counter bool, fn func() float64) *metric {
	if m, ok := r.byName[name]; ok {
		if m.counter != counter || (m.fn == nil) != (fn == nil) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different shape", name))
		}
		return m
	}
	m := &metric{name: name, help: help, counter: counter, fn: fn}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers (or fetches) a value-backed counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{m: r.register(name, help, true, nil)}
}

// Gauge registers (or fetches) a value-backed gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{m: r.register(name, help, false, nil)}
}

// CounterFunc registers a cumulative metric read from fn at sample and
// export time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, true, fn)
}

// GaugeFunc registers an instantaneous metric read from fn at sample and
// export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, false, fn)
}

// Histogram registers (or fetches) a log-bucketed histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histByName[name]; ok {
		return h
	}
	h := &Histogram{name: name, help: help}
	r.hists = append(r.hists, h)
	r.histByName[name] = h
	return h
}

// BucketHistogram registers (or fetches) an explicit-bounds histogram
// exported in Prometheus TYPE histogram form (export only: it never
// appears in the JSON/CSV documents, so golden digests are unaffected).
// bounds must be sorted ascending; a +Inf overflow bucket is implicit.
// Re-registering a name with different bounds is a programmer error.
func (r *Registry) BucketHistogram(name, help string, bounds []float64) *BucketHistogram {
	if r == nil {
		return nil
	}
	if h, ok := r.bhistByName[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("metrics: %s re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with different bounds", name))
			}
		}
		return h
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: %s bucket bounds not sorted", name))
	}
	h := &BucketHistogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.bhists = append(r.bhists, h)
	r.bhistByName[name] = h
	return h
}

// FindHistogram returns the named histogram, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.histByName[name]
}

// Interval returns the configured probe period (zero before StartProbes).
func (r *Registry) Interval() sim.Time {
	if r == nil {
		return 0
	}
	return r.interval
}

// Samples reports the number of probe ticks recorded.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	return len(r.times)
}

// StartProbes schedules the periodic sampling loop on the kernel. Every
// `every` of simulated time the probe reads all registered counters and
// gauges into the time series. Ticks are weak kernel events: they fire only
// while real simulation events remain pending, and the trailing tick left
// over after the last real event is discarded without firing — the probe
// never extends the run or advances the clock past the simulation's natural
// end. every <= 0 selects DefaultProbeInterval.
//
// Probe events consume kernel sequence numbers but read state only, so a
// metricised run produces bit-identical simulation results (the full-grid
// golden digest holds with probes on).
func (r *Registry) StartProbes(k *sim.Kernel, every sim.Time) {
	if r == nil || k == nil {
		return
	}
	if every <= 0 {
		every = DefaultProbeInterval
	}
	r.interval = every
	var tick func()
	tick = func() {
		r.sample(k.Now())
		k.ScheduleWeak(every, tick)
	}
	k.ScheduleWeak(every, tick)
}

// FinalSample records one last sample at simulation end (deduplicated if
// the probe already sampled this instant).
func (r *Registry) FinalSample(now sim.Time) {
	if r == nil {
		return
	}
	if n := len(r.times); n > 0 && r.times[n-1] == now {
		return
	}
	r.sample(now)
}

// sample appends one row to the probe time series. The column set is
// snapshotted (sorted by name) at the first sample, so every row has the
// same shape even if metrics are registered late.
func (r *Registry) sample(now sim.Time) {
	if r.cols == nil {
		r.cols = make([]*metric, len(r.metrics))
		copy(r.cols, r.metrics)
		sort.Slice(r.cols, func(i, j int) bool { return r.cols[i].name < r.cols[j].name })
	}
	row := make([]float64, len(r.cols))
	for i, m := range r.cols {
		row[i] = m.value()
	}
	r.times = append(r.times, now)
	r.rows = append(r.rows, row)
}

// Series returns the probe time series of one metric: the sample times and
// the sampled values, in probe order. It returns nils when the metric was
// not registered before the first probe tick (the column set is snapshotted
// there) or no samples exist. The returned slices alias registry storage —
// read-only. Steady-state detection (internal/exp's interval sampler) reads
// per-period deltas of relief_nodes_done_total through this.
func (r *Registry) Series(name string) (times []sim.Time, vals []float64) {
	if r == nil || len(r.rows) == 0 {
		return nil, nil
	}
	col := -1
	for i, m := range r.cols {
		if m.name == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, nil
	}
	vals = make([]float64, len(r.rows))
	for i, row := range r.rows {
		vals[i] = row[col]
	}
	return r.times, vals
}

// sortedMetrics returns the registered counters/gauges ordered by name.
func (r *Registry) sortedMetrics() []*metric {
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

// sortedHists returns the registered histograms ordered by name.
func (r *Registry) sortedHists() []*Histogram {
	hs := make([]*Histogram, len(r.hists))
	copy(hs, r.hists)
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	return hs
}

// sortedBucketHists returns the registered bucket histograms ordered by
// name.
func (r *Registry) sortedBucketHists() []*BucketHistogram {
	hs := make([]*BucketHistogram, len(r.bhists))
	copy(hs, r.bhists)
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	return hs
}
