// Package dram models a bank-level LPDDR5 channel with an FR-FCFS memory
// controller — the contention substrate the paper's motivation rests on
// (§I: "contention at the memory controller"). It implements mem.Server,
// so it drops into the interconnect in place of the fixed-bandwidth DRAM
// resource.
//
// The model decomposes requests into 64-byte bursts, tracks per-bank open
// rows, charges precharge+activate on row misses, and schedules bursts
// with either FR-FCFS (row hits first, then oldest — Rixner et al., the
// policy the paper cites) or plain FCFS. It is transaction-level: command
// and data bus are unified, so bank-level parallelism is approximated
// rather than cycle-accurate.
package dram

import (
	"fmt"

	"relief/internal/sim"
)

// Policy selects the controller's scheduling discipline.
type Policy uint8

// Controller scheduling policies.
const (
	FRFCFS Policy = iota // row hits first, then oldest
	FCFS                 // strictly oldest first
)

func (p Policy) String() string {
	if p == FCFS {
		return "fcfs"
	}
	return "fr-fcfs"
}

// Config holds device and controller parameters.
type Config struct {
	// BurstBytes is the data moved per burst (BL32 on a 16-bit channel =
	// 64 B, paper Table VI).
	BurstBytes int64
	// PageBytes is the row-buffer size per bank.
	PageBytes int64
	// Banks is the number of banks in the channel.
	Banks int
	// TBurst is the data-bus occupancy of one burst (64 B at 6400 MT/s x
	// 16 bit = 5 ns).
	TBurst sim.Time
	// TGap is the per-burst command/bus overhead that calibrates achieved
	// bandwidth below the pin peak.
	TGap sim.Time
	// TRP and TRCD are precharge and activate latencies charged on row
	// misses.
	TRP, TRCD sim.Time
	// Policy selects FR-FCFS or FCFS scheduling.
	Policy Policy
	// WindowBursts caps how far FR-FCFS looks for a row hit (a real
	// controller's finite transaction queue; 0 = unlimited).
	WindowBursts int
	// Channels adds address-interleaved channels, each with its own banks
	// and data bus (0 or 1 = single channel, the paper's platform).
	Channels int
	// TREFI and TRFC model refresh: every TREFI the channel stalls for
	// TRFC and all rows close (0 disables refresh).
	TREFI, TRFC sim.Time
}

// LPDDR5 returns the paper platform's channel (Table VI: LPDDR5-6400,
// one 16-bit channel, BL32) with TGap calibrated so a single sequential
// DMA stream achieves ~6.4 GB/s — the effective bandwidth the paper's
// Table II memory times imply — while contending random streams drop
// below that.
func LPDDR5() Config {
	return Config{
		BurstBytes:   64,
		PageBytes:    2048,
		Banks:        16,
		TBurst:       5 * sim.Nanosecond,
		TGap:         3300 * sim.Picosecond,
		TRP:          18 * sim.Nanosecond,
		TRCD:         18 * sim.Nanosecond,
		Policy:       FRFCFS,
		WindowBursts: 64,
		Channels:     1,
		TREFI:        3900 * sim.Nanosecond,
		TRFC:         180 * sim.Nanosecond,
	}
}

// Controller is a (possibly multi-channel) memory controller. It
// implements mem.Server.
type Controller struct {
	k    *sim.Kernel
	cfg  Config
	name string

	channels []*channel
	cursor   int64 // synthetic address allocator for incoming requests

	// fault, if set, returns an injected error stall per request.
	fault func(n int64) sim.Time

	bytes int64

	// Stats.
	RowHits, RowMisses int64
	Refreshes          int64
}

// burstRuns enables burst-run batching: serve resolves as many consecutive
// scheduling decisions as are provably immune to concurrent arrivals in one
// virtual pass and fires a single event for the whole run, instead of one
// event per burst. Per channel this reproduces the per-burst reference
// exactly; the one relaxation is cross-channel: two requests completing at
// the same tick on different channels may deliver their callbacks in
// either order (the paper platform is single-channel, where no such tie
// can occur). Disabled only by the reference oracle test.
var burstRuns = true

// channel is one independent data bus with its own banks. The burst queue
// is a slice with a head offset: FR-FCFS removes from within the first
// WindowBursts entries, so extraction shifts at most a window's worth of
// elements instead of re-slicing the whole queue (which would be
// quadratic under deep backlogs). Bursts are stored by value: a 4 KiB DMA
// chunk decomposes into 64 of them, so pointer-per-burst allocation would
// dominate the controller's cost.
type channel struct {
	idx         int
	queue       []burst
	head        int
	banks       []bank
	serving     bool
	busyAcc     sim.Time
	busySince   sim.Time
	nextRefresh sim.Time

	// Virtual-run state: the request whose completion ends the current run
	// (nil if the run ended for scheduling reasons), when the run ends, and
	// the cached event callbacks (allocated once per channel).
	fin     *request
	runEnd  sim.Time
	runDone func()
	hop     func()
}

func (ch *channel) pending() int { return len(ch.queue) - ch.head }

// take removes and returns the burst at absolute index i (i >= ch.head),
// shifting the [head, i) prefix right by one. Cost is O(i-head), bounded
// by the scheduling window.
//
//relief:hotpath
func (ch *channel) take(i int) burst {
	b := ch.queue[i]
	copy(ch.queue[ch.head+1:i+1], ch.queue[ch.head:i])
	ch.queue[ch.head] = burst{} // drop the request pointer for GC
	ch.head++
	// Compact once the dead prefix dominates, to bound memory.
	if ch.head > 1024 && ch.head*2 > len(ch.queue) {
		n := copy(ch.queue, ch.queue[ch.head:])
		for j := n; j < len(ch.queue); j++ {
			ch.queue[j] = burst{}
		}
		ch.queue = ch.queue[:n]
		ch.head = 0
	}
	return b
}

type bank struct {
	openRow int64 // -1 = closed
	valid   bool
}

type burst struct {
	bank, row int64
	req       *request
	// extra is an injected transient-error stall (fault injection),
	// carried on the request's first burst. It is part of the queued
	// burst's own service cost, so virtual runs price it identically
	// whether the burst resolves ahead of time or at real time.
	extra sim.Time
}

// request tracks one Enqueue across the channels its bursts interleave
// over. Each channel's virtual run may resolve its own share of bursts
// ahead of real time, so completion is split: shares[ch] counts this
// channel's unresolved bursts (safe to decrement virtually), and
// outstanding counts channels whose share is still open — it is only
// decremented by the real run-completion event, so done fires at the true
// service time of the request's last burst.
type request struct {
	shares      []int32
	outstanding int32
	done        func()
}

// NewController builds a controller on the kernel.
func NewController(k *sim.Kernel, name string, cfg Config) *Controller {
	if cfg.BurstBytes <= 0 || cfg.PageBytes <= 0 || cfg.Banks <= 0 {
		panic("dram: invalid geometry")
	}
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	c := &Controller{k: k, cfg: cfg, name: name}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{idx: i, banks: make([]bank, cfg.Banks)}
		if cfg.TREFI > 0 {
			ch.nextRefresh = cfg.TREFI
		}
		// runDone materializes a finished burst run: settle the share whose
		// completion ended it (firing the request's done if this was its
		// last open channel), then resume scheduling against the real
		// queue — which by now includes every request that arrived while
		// the run was in flight.
		ch.runDone = func() {
			if f := ch.fin; f != nil {
				ch.fin = nil
				f.outstanding--
				if f.outstanding == 0 {
					f.done()
				}
			}
			c.serve(ch)
		}
		// hop re-schedules runDone from the last burst's pick time so the
		// completion event is born exactly when the reference would have
		// created it, preserving same-tick ordering against foreign events.
		ch.hop = func() { c.k.At(ch.runEnd, ch.runDone) }
		c.channels = append(c.channels, ch)
	}
	return c
}

// Name implements mem.Server.
func (c *Controller) Name() string { return c.name }

// ServiceTime implements mem.Server: the unloaded, all-row-hit service
// time (used for path pipelining estimates).
func (c *Controller) ServiceTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	bursts := (n + c.cfg.BurstBytes - 1) / c.cfg.BurstBytes
	return sim.Time(bursts) * (c.cfg.TBurst + c.cfg.TGap)
}

// BusyTime implements mem.Server: the union over channels is approximated
// by the maximum per-channel busy time.
func (c *Controller) BusyTime() sim.Time {
	var max sim.Time
	for _, ch := range c.channels {
		b := ch.busyAcc
		if ch.serving {
			b += c.k.Now() - ch.busySince
		}
		if b > max {
			max = b
		}
	}
	return max
}

// BytesServed implements mem.Server.
func (c *Controller) BytesServed() int64 { return c.bytes }

// QueueLen reports the number of queued bursts across channels.
func (c *Controller) QueueLen() int {
	n := 0
	for _, ch := range c.channels {
		n += ch.pending()
	}
	return n
}

// Channels returns the configured channel count.
func (c *Controller) Channels() int { return len(c.channels) }

// ChannelQueueLen reports the bursts queued on channel i.
func (c *Controller) ChannelQueueLen(i int) int { return c.channels[i].pending() }

// ChannelBusyTime returns channel i's cumulative data-bus busy time,
// including the open serving period — the numerator of the channel's
// burst-run utilisation.
func (c *Controller) ChannelBusyTime(i int) sim.Time {
	ch := c.channels[i]
	b := ch.busyAcc
	if ch.serving {
		b += c.k.Now() - ch.busySince
	}
	return b
}

// RowHitRate returns the fraction of bursts that hit an open row.
func (c *Controller) RowHitRate() float64 {
	total := c.RowHits + c.RowMisses
	if total == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(total)
}

// SetFault installs a fault hook consulted once per Enqueue (in request
// arrival order, so a seeded injector stays deterministic); a returned
// stall is charged to the request's first burst. Pass nil to remove.
func (c *Controller) SetFault(fn func(n int64) sim.Time) { c.fault = fn }

// Enqueue implements mem.Server: the request is laid out at the next
// contiguous synthetic addresses (each DMA chunk is a contiguous buffer
// slice) and decomposed into bursts.
func (c *Controller) Enqueue(n int64, done func()) {
	if n <= 0 {
		c.k.Schedule(0, done)
		return
	}
	base := c.cursor
	c.cursor += n
	var extra sim.Time
	if c.fault != nil {
		extra = c.fault(n)
	}
	nBursts := int((n + c.cfg.BurstBytes - 1) / c.cfg.BurstBytes)
	req := &request{shares: make([]int32, len(c.channels)), done: done}
	nCh := int64(len(c.channels))
	// Shares must be fully counted before any channel starts serving: the
	// first append below can kick off a virtual run that resolves bursts
	// immediately.
	for i := 0; i < nBursts; i++ {
		page := (base + int64(i)*c.cfg.BurstBytes) / c.cfg.PageBytes
		req.shares[page%nCh]++
	}
	for _, s := range req.shares {
		if s > 0 {
			req.outstanding++
		}
	}
	for i := 0; i < nBursts; i++ {
		addr := base + int64(i)*c.cfg.BurstBytes
		page := addr / c.cfg.PageBytes
		chIdx := page % nCh
		pageInCh := page / nCh
		ch := c.channels[chIdx]
		b := burst{
			bank: pageInCh % int64(c.cfg.Banks),
			row:  pageInCh / int64(c.cfg.Banks),
			req:  req,
		}
		if i == 0 {
			b.extra = extra
		}
		ch.queue = append(ch.queue, b)
		if !ch.serving {
			ch.serving = true
			ch.busySince = c.k.Now()
			c.catchUpRefresh(ch)
			c.serve(ch)
		}
	}
	c.bytes += n
}

// catchUpRefresh advances the refresh schedule over the idle period ending
// now. Refreshes that fell in the gap happened while no traffic was
// waiting, so they stall nothing and are not charged (or counted) — but
// they did close every row, so the next pick cannot hit a row opened
// before the gap. Without this, serve's lazy boundary loop would bill the
// whole backlog of idle-time refreshes to the first burst after the gap,
// inflating its latency and the channel's busy time by tRFC per missed
// interval.
func (c *Controller) catchUpRefresh(ch *channel) {
	if c.cfg.TREFI == 0 {
		return
	}
	now := c.k.Now()
	if ch.nextRefresh > now {
		return
	}
	missed := (now-ch.nextRefresh)/c.cfg.TREFI + 1
	ch.nextRefresh += missed * c.cfg.TREFI
	for j := range ch.banks {
		ch.banks[j].valid = false
	}
}

// pick selects the next burst's absolute queue index per the scheduling
// policy.
//
//relief:hotpath
func (c *Controller) pick(ch *channel) int {
	if ch.pending() == 0 {
		return -1
	}
	if c.cfg.Policy == FCFS {
		return ch.head
	}
	// FR-FCFS: first row hit within the transaction window, else oldest.
	window := ch.pending()
	if c.cfg.WindowBursts > 0 && window > c.cfg.WindowBursts {
		window = c.cfg.WindowBursts
	}
	for i := ch.head; i < ch.head+window; i++ {
		b := ch.queue[i]
		bk := &ch.banks[b.bank]
		if bk.valid && bk.openRow == b.row {
			return i
		}
	}
	return ch.head
}

// serve runs the channel's scheduling loop. Rather than paying one event
// per burst, it resolves a run of consecutive scheduling decisions in a
// single virtual pass: the clock variable vnow advances burst by burst for
// as long as the pick outcome provably cannot be altered by requests that
// arrive while the run is in flight. Under FCFS the head of the queue is
// immune to arrivals; under FR-FCFS a row hit among already-queued bursts
// always outranks later arrivals, because arrivals append at higher
// indices and the window scan proceeds in index order. The run ends at the
// first request completion (its done callback can enqueue new work) or at
// the first pick an arrival could win (an FR-FCFS fallback-to-oldest, or a
// drained queue); a single event then materializes the run's outcome.
//
//relief:hotpath
func (c *Controller) serve(ch *channel) {
	start := c.k.Now()
	vnow := start
	lastPick := start
	ch.fin = nil
	for {
		i := c.pick(ch)
		if i < 0 {
			if vnow == start {
				ch.serving = false
				ch.busyAcc += start - ch.busySince
				return
			}
			// Drained mid-run: arrivals before runEnd are resolved by the
			// run event's serve call, exactly when the reference would.
			break
		}
		if vnow > start && c.cfg.Policy != FCFS {
			// A continuation pick is arrival-immune only if it is a row
			// hit; a fallback-to-oldest could lose to a hit that arrives
			// mid-run, so the decision must be replayed at real time.
			b := &ch.queue[i]
			bk := &ch.banks[b.bank]
			if !bk.valid || bk.openRow != b.row {
				break
			}
		}
		lastPick = vnow
		b := ch.take(i)
		cost := c.cfg.TBurst + c.cfg.TGap + b.extra
		// Refresh: when traffic crosses a tREFI boundary, the channel
		// stalls for tRFC and every row closes. Idle periods advance the
		// schedule without cost (rows would be cold anyway). As in the
		// reference, the boundary check happens after the pick, so an
		// overdue refresh can turn a picked "hit" into a charged miss.
		if c.cfg.TREFI > 0 {
			for ch.nextRefresh <= vnow {
				ch.nextRefresh += c.cfg.TREFI
				cost += c.cfg.TRFC
				c.Refreshes++
				for j := range ch.banks {
					ch.banks[j].valid = false
				}
			}
		}
		bk := &ch.banks[b.bank]
		if !bk.valid || bk.openRow != b.row {
			if bk.valid {
				cost += c.cfg.TRP // precharge the open row
			}
			cost += c.cfg.TRCD // activate the new row
			bk.openRow = b.row
			bk.valid = true
			c.RowMisses++
		} else {
			c.RowHits++
		}
		vnow += cost
		b.req.shares[ch.idx]--
		if b.req.shares[ch.idx] == 0 {
			ch.fin = b.req
			break
		}
		if !burstRuns {
			break
		}
	}
	ch.runEnd = vnow
	if lastPick == start {
		// Single-burst run: the event is created at the same time and in
		// the same call position as the reference's completion event.
		c.k.At(vnow, ch.runDone)
	} else {
		// Multi-burst run: the reference creates the final completion
		// event at the last burst's pick time. Hop there first so the
		// materializing event's born time — and with it the same-tick
		// dispatch order against foreign events — matches bit-for-bit.
		c.k.At(lastPick, ch.hop)
	}
}

func (c *Controller) String() string {
	return fmt.Sprintf("dram(%s, %d banks, hit-rate %.2f)", c.cfg.Policy, c.cfg.Banks, c.RowHitRate())
}
