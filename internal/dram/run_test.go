package dram

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"relief/internal/sim"
)

// withBurstRuns runs f under the given batching mode and restores the
// previous mode afterwards.
func withBurstRuns(enabled bool, f func()) {
	prev := burstRuns
	burstRuns = enabled
	defer func() { burstRuns = prev }()
	f()
}

// burstRunScenario drives one randomized controller workload — mixed
// request sizes, staggered arrivals, chained dependent requests, random
// policy/window/channel/refresh configuration — and renders the complete
// completion order with timestamps, mid-flight busy samples, and final
// statistics into a canonical string.
func burstRunScenario(rng *rand.Rand) string {
	k := sim.NewKernel()
	cfg := LPDDR5()
	cfg.Policy = Policy(rng.Intn(2))
	cfg.WindowBursts = []int{0, 4, 64}[rng.Intn(3)]
	cfg.Channels = 1 + rng.Intn(2)
	switch rng.Intn(3) {
	case 0:
		cfg.TREFI = 0 // no refresh
	case 1:
		cfg.TREFI = 500 * sim.Nanosecond // frequent refresh crossings
	}
	c := NewController(k, "dram", cfg)

	out := fmt.Sprintf("policy=%s win=%d ch=%d refi=%d\n",
		cfg.Policy, cfg.WindowBursts, cfg.Channels, int64(cfg.TREFI))
	// Lines emitted within one tick are sorted before being appended: with
	// a single channel at most one completion lands per tick so this is a
	// no-op, and with interleaved channels it canonicalizes the one
	// relaxation batching allows — the relative delivery order of distinct
	// channels' completions at the same tick (see serve).
	lastT := sim.Time(-1)
	var tickLines []string
	flush := func() {
		sort.Strings(tickLines)
		for _, l := range tickLines {
			out += l
		}
		tickLines = tickLines[:0]
	}
	emit := func(line string) {
		if t := k.Now(); t != lastT {
			flush()
			lastT = t
		}
		tickLines = append(tickLines, line)
	}
	record := func(tag string) func() {
		return func() { emit(fmt.Sprintf("%s@%d\n", tag, int64(k.Now()))) }
	}

	// Independent requests at staggered times.
	n := 4 + rng.Intn(8)
	for i := 0; i < n; i++ {
		i := i
		size := int64(1 + rng.Intn(4096*4))
		at := sim.Time(rng.Int63n(int64(8 * sim.Microsecond)))
		k.At(at, func() { c.Enqueue(size, record(fmt.Sprintf("r%d", i))) })
	}
	// A chained stream: each completion immediately enqueues the next
	// request, so arrivals land mid-run from inside done callbacks.
	chain := 3 + rng.Intn(5)
	var link func(i int)
	link = func(i int) {
		size := int64(1 + rng.Intn(4096*2))
		c.Enqueue(size, func() {
			emit(fmt.Sprintf("c%d@%d\n", i, int64(k.Now())))
			if i+1 < chain {
				link(i + 1)
			}
		})
	}
	k.At(sim.Time(rng.Int63n(int64(2*sim.Microsecond))), func() { link(0) })
	// Busy-time probes: exact even while a run is in flight.
	for i := 0; i < 3; i++ {
		at := sim.Time(rng.Int63n(int64(10 * sim.Microsecond)))
		k.At(at, func() { emit(fmt.Sprintf("busy=%d@%d\n", int64(c.BusyTime()), int64(k.Now()))) })
	}
	end := k.Run()
	flush()
	out += fmt.Sprintf("end=%d bytes=%d busy=%d q=%d hits=%d misses=%d refr=%d\n",
		int64(end), c.BytesServed(), int64(c.BusyTime()), c.QueueLen(),
		c.RowHits, c.RowMisses, c.Refreshes)
	return out
}

// TestBurstRunMatchesPerBurstReference is the batching oracle: across
// randomized workloads and controller configurations, resolving burst runs
// virtually must reproduce the per-burst reference's completion order,
// completion times, busy accounting, and row/refresh statistics exactly.
func TestBurstRunMatchesPerBurstReference(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		var ref, opt string
		withBurstRuns(false, func() { ref = burstRunScenario(rand.New(rand.NewSource(seed))) })
		withBurstRuns(true, func() { opt = burstRunScenario(rand.New(rand.NewSource(seed))) })
		if ref != opt {
			t.Fatalf("seed %d: burst-run batching diverged from per-burst reference\nreference:\n%s\nbatched:\n%s", seed, ref, opt)
		}
	}
}

// TestBurstRunEventReduction: a large streaming request must not cost one
// event per 64-byte burst.
func TestBurstRunEventReduction(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, "dram", LPDDR5())
	done := 0
	const bytes = 1 << 20 // 16384 bursts
	c.Enqueue(bytes, func() { done++ })
	k.Run()
	if done != 1 {
		t.Fatalf("request completed %d times", done)
	}
	// A run ends at each refresh-free row-hit stretch at worst; the whole
	// megabyte needs only the row-miss and refresh boundaries' worth of
	// events, orders of magnitude below per-burst.
	if fired := k.Fired(); fired > 1<<20/64/8 {
		t.Fatalf("streaming request fired %d events; burst runs should batch row-hit stretches", fired)
	}
}
