package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit ladder broken")
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds = %v, want 1.5", got)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Errorf("Microseconds = %v, want 2.5", got)
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Errorf("Seconds = %v, want 3", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		k.Schedule(d, func() { fired = append(fired, k.Now()) })
	}
	k.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if k.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", k.Fired())
	}
}

func TestKernelSameTickFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(7, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events fired out of schedule order: %v", order)
		}
	}
}

func TestKernelNegativeDelayClamps(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Schedule(10, func() {
		k.Schedule(-5, func() { ran = true })
		if e := k.At(3, func() {}); e.At() != 10 {
			t.Errorf("At in the past scheduled for %v, want clamped to 10", e.At())
		}
	})
	k.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.Schedule(10, func() { ran = true })
	k.Cancel(e)
	k.Cancel(e) // double-cancel is a no-op
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", k.Pending())
	}
}

func TestKernelCancelFromHandler(t *testing.T) {
	k := NewKernel()
	ran := false
	var victim *Event
	k.Schedule(5, func() { k.Cancel(victim) })
	victim = k.Schedule(10, func() { ran = true })
	k.Run()
	if ran {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{10, 20, 30} {
		k.Schedule(d, func() { fired = append(fired, k.Now()) })
	}
	end := k.RunUntil(20)
	if end != 20 {
		t.Fatalf("RunUntil returned %v, want 20", end)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before limit, want 2", len(fired))
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	// Resuming picks up the remaining event.
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	if end := k.RunUntil(100); end != 100 {
		t.Fatalf("idle RunUntil returned %v, want 100", end)
	}
	if k.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", k.Now())
	}
}

func TestHalt(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Halt()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Halt, want 3", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", k.Pending())
	}
}

func TestNilEventFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil fn did not panic")
		}
	}()
	NewKernel().Schedule(1, nil)
}

// TestQuickEventOrdering is a property test: for any set of delays, events
// fire in non-decreasing time order, ties broken by scheduling order, and
// the clock never moves backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i, d := i, d
			k.Schedule(Time(d), func() { fired = append(fired, rec{k.Now(), i}) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNestedScheduling: handlers that schedule further events preserve
// global time ordering.
func TestQuickNestedScheduling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var last Time
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if k.Now() < last {
				ok = false
			}
			last = k.Now()
			if depth <= 0 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				d := Time(rng.Intn(100))
				k.Schedule(d, func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 5; i++ {
			k.Schedule(Time(rng.Intn(50)), func() { spawn(4) })
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeakEventsFireOnlyAmongOrdinaryWork(t *testing.T) {
	k := NewKernel()
	var weakAt []Time
	var rearm func()
	rearm = func() {
		weakAt = append(weakAt, k.Now())
		k.ScheduleWeak(10, rearm)
	}
	k.ScheduleWeak(10, rearm)
	if k.Pending() != 0 {
		t.Fatalf("weak events must not count toward Pending, got %d", k.Pending())
	}
	k.Schedule(25, func() {})
	end := k.Run()
	// Weak ticks at 10 and 20 have the ordinary event at 25 behind them and
	// fire; the re-armed tick at 30 outlives all ordinary work and must be
	// discarded without firing or advancing the clock.
	if want := []Time{10, 20}; len(weakAt) != 2 || weakAt[0] != want[0] || weakAt[1] != want[1] {
		t.Fatalf("weak ticks fired at %v, want %v", weakAt, want)
	}
	if end != 25 {
		t.Fatalf("trailing weak event advanced the clock: end = %v, want 25", end)
	}
}

func TestWeakEventCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.ScheduleWeak(5, func() { ran = true })
	k.Schedule(10, func() {})
	k.Cancel(e)
	if k.Pending() != 1 {
		t.Fatalf("cancelling a weak event disturbed Pending: %d", k.Pending())
	}
	k.Run()
	if ran {
		t.Fatal("cancelled weak event ran")
	}
}
