package exp

// Steady-state interval sampling (docs/CHECKPOINT.md): long periodic
// workloads spend most of their horizon repeating a warmed steady state, so
// instead of simulating O(horizon) we detect steady state from the metrics
// probe time series, checkpoint the warmed simulation, simulate K
// representative one-period windows from the checkpoint, and extrapolate
// whole-run statistics with a reported error bound (a Student-t 95%
// confidence half-width over the per-window rates). PAPERS.md's interval-
// sampling literature motivates the methodology; tests validate the bound
// against full runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"relief/internal/ckpt"
	"relief/internal/manager"
	"relief/internal/metrics"
	"relief/internal/sim"
	"relief/internal/stats"
)

// EstimateSchema versions the sampled-estimate document.
const EstimateSchema = "relief-estimate/1"

// EstStat is one extrapolated statistic: the whole-run estimate and its
// relative 95% confidence half-width (0 = exact, e.g. a deterministic
// workload's zero-variance windows or a full-run fallback).
type EstStat struct {
	Estimate   float64 `json:"estimate"`
	ErrorBound float64 `json:"error_bound"`
}

// Estimate is the interval-sampled whole-run projection for one scenario.
type Estimate struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	// Sampled is false when the sampler fell back to a full run (the
	// workload never quiesced or never reached steady state): the values
	// are then exact and the bounds zero.
	Sampled   bool  `json:"sampled"`
	Windows   int   `json:"windows"`
	WindowPs  int64 `json:"window_ps"`
	WarmPs    int64 `json:"warm_ps"`
	HorizonPs int64 `json:"horizon_ps"`

	NodesDone        EstStat `json:"nodes_done"`
	NodesMetDeadline EstStat `json:"nodes_met_deadline"`
	DRAMBytes        EstStat `json:"dram_bytes"`
}

// steadyRuns is how many consecutive positive per-period completion deltas
// the detector examines, and steadySpread the relative spread it tolerates
// among them: deterministic workloads settle to exactly equal deltas, while
// mildly stochastic ones (e.g. injected task slowdowns pushing the odd
// completion across a period boundary) jitter slightly — those still sample
// fine, and their window variance surfaces honestly in the error bound.
const (
	steadyRuns   = 3
	steadySpread = 0.125
)

// steady reports whether the tail of a cumulative completion series has
// settled: the last steadyRuns per-period deltas are positive with relative
// spread at most steadySpread.
func steady(vals []float64) bool {
	if len(vals) < steadyRuns+1 {
		return false
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	for i := 0; i < steadyRuns; i++ {
		d := vals[len(vals)-1-i] - vals[len(vals)-2-i]
		if d <= 0 {
			return false
		}
		min = math.Min(min, d)
		max = math.Max(max, d)
		sum += d
	}
	mean := sum / steadyRuns
	return (max-min)/mean <= steadySpread
}

// tval95 is the two-sided 95% Student-t critical value for small degrees of
// freedom (df = windows-1); beyond the table the normal 1.96 is close
// enough.
func tval95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228}
	if df >= 1 && df < len(table) {
		return table[df]
	}
	return 1.96
}

// runToSteadyCheckpoint warms the scenario with a per-period metrics probe,
// watches the relief_nodes_done_total series for steady state, and captures
// a checkpoint at the first quiescent release after detection.
func runToSteadyCheckpoint(ctx context.Context, sc Scenario) ([]byte, error) {
	det := sc
	det.Metrics = metrics.NewRegistry()
	det.MetricsInterval = det.Period
	det.Trace = nil
	cfg, err := det.managerConfig()
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	st := stats.New()
	m := manager.New(k, cfg, st)
	// The detector is a weak observer chained after the probe at each period
	// tick (probes are scheduled first, so the same-tick sample precedes the
	// read). Arming the checkpoint mid-run is safe: capture still waits for
	// the next quiescent release.
	armed := false
	var watch func()
	watch = func() {
		if !armed {
			if _, vals := det.Metrics.Series("relief_nodes_done_total"); steady(vals) {
				m.ArmCheckpoint(k.Now())
				armed = true
			}
		}
		if !armed {
			k.ScheduleWeak(det.Period, watch)
		}
	}
	k.ScheduleWeak(det.Period, watch)
	if err := submitMix(m, det); err != nil {
		return nil, err
	}
	if _, err := finishRun(ctx, det, k, m, st); err != nil {
		return nil, err
	}
	if !armed {
		return nil, fmt.Errorf("exp: workload never reached steady state within the %v horizon", det.EffectiveHorizon())
	}
	data, at, err := m.CheckpointData()
	if err != nil {
		return nil, err
	}
	return ckpt.Seal(ScenarioKey(sc), ForkKey(sc), int64(at), data)
}

type sampleSnap struct{ nodes, met, dram float64 }

func snapStats(st *stats.Stats) sampleSnap {
	return sampleSnap{
		nodes: float64(st.NodesDone),
		met:   float64(st.NodesMetDeadline),
		dram:  float64(st.DRAMReadBytes + st.DRAMWriteBytes),
	}
}

// RunSampled estimates the scenario's whole-run statistics by simulating at
// most `windows` one-period windows from a steady-state checkpoint and
// extrapolating, instead of simulating the full horizon. When the workload
// cannot be sampled (it never quiesces or never settles), it falls back to
// a full run and returns exact values with Sampled=false.
func RunSampled(ctx context.Context, sc Scenario, windows int) (*Estimate, error) {
	if sc.Period <= 0 {
		return nil, fmt.Errorf("exp: interval sampling requires a periodic scenario (Period > 0)")
	}
	if windows < 2 {
		windows = 2
	}
	horizon := sc.EffectiveHorizon()
	est := &Estimate{
		Schema:    EstimateSchema,
		Key:       ScenarioKey(sc),
		WindowPs:  int64(sc.Period),
		HorizonPs: int64(horizon),
	}

	envData, err := runToSteadyCheckpoint(ctx, sc)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return fullRunEstimate(ctx, sc, est)
	}
	env, err := ckpt.Open(envData)
	if err != nil {
		return nil, err
	}
	warm := sim.Time(env.CapturedPs)
	est.WarmPs = int64(warm)
	if avail := int((horizon - warm) / sc.Period); windows > avail {
		windows = avail
	}
	if windows < 2 {
		// Steady state arrived too close to the horizon to leave sampling
		// windows; the full run is cheaper than it looked.
		return fullRunEstimate(ctx, sc, est)
	}

	cfg, err := sc.managerConfig()
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	m, st, err := manager.Restore(k, cfg, env.Payload)
	if err != nil {
		return nil, err
	}
	if err := submitMix(m, sc); err != nil {
		return nil, err
	}
	if done := ctx.Done(); done != nil {
		k.SetInterrupt(func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
	}
	prev := snapStats(st)
	var dn, dm, dd []float64
	for i := 1; i <= windows; i++ {
		k.RunUntil(warm + sim.Time(i)*sc.Period)
		if k.Interrupted() {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exp: sampling cancelled: %w", err)
			}
			return nil, fmt.Errorf("exp: sampling interrupted")
		}
		cur := snapStats(st)
		dn = append(dn, cur.nodes-prev.nodes)
		dm = append(dm, cur.met-prev.met)
		dd = append(dd, cur.dram-prev.dram)
		prev = cur
	}

	est.Sampled = true
	est.Windows = windows
	// Remaining horizon past the sampled windows, in window units. The last
	// partial window (when the horizon is not a period multiple) is covered
	// by the same rate.
	rem := float64(horizon-(warm+sim.Time(windows)*sc.Period)) / float64(sc.Period)
	est.NodesDone = extrapolate(prev.nodes, dn, rem)
	est.NodesMetDeadline = extrapolate(prev.met, dm, rem)
	est.DRAMBytes = extrapolate(prev.dram, dd, rem)
	return est, nil
}

// fullRunEstimate is the sampling fallback: an ordinary full run reported in
// estimate form with exact values.
func fullRunEstimate(ctx context.Context, sc Scenario, est *Estimate) (*Estimate, error) {
	full := sc
	full.Metrics = nil
	r, err := RunContext(ctx, full)
	if err != nil {
		return nil, err
	}
	s := snapStats(r.Stats)
	est.Sampled = false
	est.Windows = 0
	est.NodesDone = EstStat{Estimate: s.nodes}
	est.NodesMetDeadline = EstStat{Estimate: s.met}
	est.DRAMBytes = EstStat{Estimate: s.dram}
	return est, nil
}

// extrapolate projects a statistic to the horizon: current value plus the
// mean per-window rate times the remaining windows, with a Student-t 95%
// relative confidence half-width on the projected tail.
func extrapolate(current float64, deltas []float64, remaining float64) EstStat {
	k := float64(len(deltas))
	var sum float64
	for _, d := range deltas {
		sum += d
	}
	mean := sum / k
	var ss float64
	for _, d := range deltas {
		ss += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(ss / (k - 1))
	estv := current + mean*remaining
	half := tval95(len(deltas)-1) * sd / math.Sqrt(k) * remaining
	rel := 0.0
	if estv > 0 {
		rel = half / estv
	}
	return EstStat{Estimate: estv, ErrorBound: rel}
}

// WriteEstimate renders the estimate document as indented JSON (the same
// indentation discipline as the sweep cell dump, so documents diff cleanly).
func WriteEstimate(w io.Writer, est *Estimate) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(est)
}
