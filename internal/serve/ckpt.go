package serve

// Sweep checkpoint pool: a grid of periodic cells that differ only in
// scalar knobs excluded from the fork key (today: the horizon) repeats the
// same warm-up simulation once per cell. The pool warms that shared prefix
// once — run to steady quiescence, snapshot (internal/ckpt) — and every
// cell forks from the snapshot, simulating only its own tail. Restored runs
// are byte-identical to cold ones (the manager checkpoint contract, golden-
// tested in internal/exp), so forked cells are safe to content-address and
// cache exactly like cold results.
//
// The pool lives for one POST /sweep: handleSweep threads it through the
// cell contexts, submit copies it onto each flight, and the worker hands it
// to runSimulation. Interactive /run requests never see a pool and always
// run cold.

import (
	"context"
	"sync"

	"relief/internal/ckpt"
	"relief/internal/exp"
)

// Warm-run shape, in periods: the capture is armed at ckptArmPeriods (the
// snapshot lands at the first quiescent release at or after it) and the warm
// run gives up at ckptWarmPeriods. Workloads that never quiesce in that
// window (iterations always overlapping) fail the warm once and every cell
// of that fork group falls back to a cold run.
const (
	ckptArmPeriods  = 2
	ckptWarmPeriods = 4
)

// ckptPool deduplicates warm-up runs by fork key for one sweep.
type ckptPool struct {
	mu      sync.Mutex
	entries map[string]*ckptEntry
}

// ckptEntry is one fork group's warmed snapshot (or its warm failure, cached
// so the group warms at most once).
type ckptEntry struct {
	once sync.Once
	env  *ckpt.Envelope
	err  error
}

func newCkptPool() *ckptPool { return &ckptPool{entries: make(map[string]*ckptEntry)} }

// envelope returns the warmed checkpoint for sc's fork group, running the
// warm-up on first call (concurrent cells of the same group block on the
// first). The warm-up runs under the first caller's context: if that cell is
// cancelled mid-warm the failure sticks and the group's cells run cold —
// a deliberate trade for never warming twice.
func (p *ckptPool) envelope(ctx context.Context, sc exp.Scenario) (*ckpt.Envelope, error) {
	fk := exp.ForkKey(sc)
	p.mu.Lock()
	e, ok := p.entries[fk]
	if !ok {
		e = &ckptEntry{}
		p.entries[fk] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		warm := sc
		warm.Trace = nil
		warm.Metrics = nil
		warm.MetricsInterval = 0
		warm.Horizon = ckptWarmPeriods * sc.Period
		data, err := exp.RunToCheckpoint(ctx, warm, ckptArmPeriods*sc.Period)
		if err != nil {
			e.err = err
			return
		}
		e.env, e.err = ckpt.Open(data)
	})
	return e.env, e.err
}

type ckptPoolCtxKey struct{}

// withCkptPool attaches a sweep's checkpoint pool to the context (the same
// plumbing pattern as the trace recorder).
func withCkptPool(ctx context.Context, p *ckptPool) context.Context {
	return context.WithValue(ctx, ckptPoolCtxKey{}, p)
}

// ckptPoolFrom returns the attached pool, or nil.
func ckptPoolFrom(ctx context.Context) *ckptPool {
	p, _ := ctx.Value(ckptPoolCtxKey{}).(*ckptPool)
	return p
}
