// Command freeports prints n free TCP ports on 127.0.0.1, one per line.
// CI uses it to start peered relief-serve replicas that must know each
// other's addresses before either has bound its socket (an ephemeral
// :0 port can only be discovered after binding, too late to hand to the
// peer). All n listeners are held open until every port is allocated, so
// the kernel cannot hand the same port out twice.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		var err error
		n, err = strconv.Atoi(os.Args[1])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "freeports: bad count %q\n", os.Args[1])
			os.Exit(2)
		}
	}
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "freeports: %v\n", err)
			os.Exit(1)
		}
		listeners = append(listeners, l)
	}
	for _, l := range listeners {
		fmt.Println(l.Addr().(*net.TCPAddr).Port)
		l.Close()
	}
}
