package serve

import (
	"fmt"
	"testing"
)

// ringKeys generates n digest-like keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest-%04d", i)
	}
	return keys
}

// TestRingPlacementDeterministic: owner assignment is a pure function of
// the member set — spelling order must not matter, and repeated builds must
// agree. This is what lets every replica compute placement locally with no
// coordination.
func TestRingPlacementDeterministic(t *testing.T) {
	a := newRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	b := newRing([]string{"http://c:3", "http://a:1", "http://b:2", "http://b:2", ""})
	for _, k := range ringKeys(1000) {
		if ao, bo := a.owner(k), b.owner(k); ao != bo {
			t.Fatalf("owner(%q) differs by member order: %q vs %q", k, ao, bo)
		}
	}
}

// TestRingSpreadsKeys: with vnodes, no member of a three-way ring owns a
// grossly disproportionate share.
func TestRingSpreadsKeys(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := newRing(members)
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.10 || share > 0.60 {
			t.Errorf("member %s owns %.0f%% of keys; want a rough third", m, 100*share)
		}
	}
}

// TestRingRebalanceBounds: growing the fleet from three to four members
// moves keys ONLY onto the new member (consistent hashing's defining
// property — nothing shuffles between survivors), and moves roughly 1/4 of
// the keyspace, not half of it.
func TestRingRebalanceBounds(t *testing.T) {
	three := []string{"http://a:1", "http://b:2", "http://c:3"}
	four := append(append([]string{}, three...), "http://d:4")
	r3, r4 := newRing(three), newRing(four)

	keys := ringKeys(4000)
	moved := 0
	for _, k := range keys {
		before, after := r3.owner(k), r4.owner(k)
		if before == after {
			continue
		}
		moved++
		if after != "http://d:4" {
			t.Fatalf("key %q moved %q -> %q: rebalancing shuffled keys between surviving members", k, before, after)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac == 0 {
		t.Fatal("no keys moved to the new member")
	}
	if frac > 0.45 {
		t.Errorf("adding one member to a fleet of three moved %.0f%% of keys; want about 25%%", 100*frac)
	}
}

// TestRingDegenerateCases: empty and single-member rings behave sanely.
func TestRingDegenerateCases(t *testing.T) {
	if got := newRing(nil).owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	solo := newRing([]string{"http://only:1"})
	for _, k := range ringKeys(10) {
		if got := solo.owner(k); got != "http://only:1" {
			t.Errorf("single-member ring owner(%q) = %q", k, got)
		}
	}
}
