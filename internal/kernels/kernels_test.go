package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// flatRaw returns a uniform Bayer frame.
func flatRaw(w, h int, v byte) []byte {
	raw := make([]byte, w*h)
	for i := range raw {
		raw[i] = v
	}
	return raw
}

// squareRaw returns a dark frame with a bright square.
func squareRaw(w, h, x0, y0, x1, y1 int) []byte {
	raw := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x >= x0 && x < x1 && y >= y0 && y < y1 {
				raw[y*w+x] = 230
			} else {
				raw[y*w+x] = 25
			}
		}
	}
	return raw
}

func TestISPUniformFrame(t *testing.T) {
	rgb, err := ISP(flatRaw(32, 32, 128), 32, 32, [3]float32{1, 1, 1}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(128.0 / 255)
	for i, v := range rgb.Pix {
		if math.Abs(float64(v-want)) > 1e-5 {
			t.Fatalf("pixel %d = %v, want %v (uniform input must demosaic uniformly)", i, v, want)
		}
	}
}

func TestISPGammaAndGains(t *testing.T) {
	rgb, err := ISP(flatRaw(16, 16, 64), 16, 16, [3]float32{2, 1, 1}, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	base := 64.0 / 255
	wantR := float32(math.Pow(2*base, 1/2.2))
	wantG := float32(math.Pow(base, 1/2.2))
	if math.Abs(float64(rgb.Pix[0]-wantR)) > 1e-5 || math.Abs(float64(rgb.Pix[1]-wantG)) > 1e-5 {
		t.Fatalf("gamma/gain wrong: got (%v, %v), want (%v, %v)", rgb.Pix[0], rgb.Pix[1], wantR, wantG)
	}
}

func TestISPBadLength(t *testing.T) {
	if _, err := ISP(make([]byte, 10), 16, 16, [3]float32{1, 1, 1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGrayscaleWeights(t *testing.T) {
	rgb := NewRGB(2, 1)
	rgb.Pix = []float32{1, 0, 0, 0, 1, 0}
	g := Grayscale(rgb)
	if math.Abs(float64(g.Pix[0]-0.299)) > 1e-6 || math.Abs(float64(g.Pix[1]-0.587)) > 1e-6 {
		t.Fatalf("grayscale weights wrong: %v", g.Pix)
	}
}

func TestConvolveIdentity(t *testing.T) {
	im := NewImage(8, 8)
	for i := range im.Pix {
		im.Pix[i] = float32(i)
	}
	id := [][]float32{{0, 0, 0}, {0, 1, 0}, {0, 0, 0}}
	out := Convolve(im, id)
	for i := range im.Pix {
		if out.Pix[i] != im.Pix[i] {
			t.Fatal("identity convolution changed the image")
		}
	}
}

func TestConvolveRejectsBadFilters(t *testing.T) {
	im := NewImage(4, 4)
	for _, f := range [][][]float32{
		{{1, 1}, {1, 1}},               // even
		{{1, 1, 1}, {1, 1}, {1, 1, 1}}, // ragged
		make([][]float32, 7),           // too large
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad filter %v accepted", f)
				}
			}()
			if len(f) == 7 {
				for i := range f {
					f[i] = make([]float32, 7)
				}
			}
			Convolve(im, f)
		}()
	}
}

func TestGaussianKernelNormalised(t *testing.T) {
	for _, size := range []int{3, 5} {
		k := GaussianKernel(size, 1.4)
		var sum float32
		for _, row := range k {
			for _, v := range row {
				sum += v
			}
		}
		if math.Abs(float64(sum-1)) > 1e-5 {
			t.Errorf("gaussian %dx%d sums to %v", size, size, sum)
		}
		if k[size/2][size/2] <= k[0][0] {
			t.Errorf("gaussian %dx%d not peaked at centre", size, size)
		}
	}
}

func TestSobelOnRamp(t *testing.T) {
	// A horizontal ramp has a constant x-gradient and no y-gradient.
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			im.Set(x, y, float32(x))
		}
	}
	gx := Convolve(im, SobelX())
	gy := Convolve(im, SobelY())
	if gx.At(4, 4) != 8 { // Sobel x on unit ramp = 8
		t.Errorf("SobelX interior = %v, want 8", gx.At(4, 4))
	}
	if gy.At(4, 4) != 0 {
		t.Errorf("SobelY on x-ramp = %v, want 0", gy.At(4, 4))
	}
}

func TestElementwiseOps(t *testing.T) {
	a, b := NewImage(2, 2), NewImage(2, 2)
	a.Pix = []float32{1, 4, 9, -16}
	b.Pix = []float32{2, 2, 3, 4}
	if got := Add(a, b).Pix[0]; got != 3 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b).Pix[1]; got != 2 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b).Pix[2]; got != 27 {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(a, b).Pix[3]; got != -4 {
		t.Errorf("Div = %v", got)
	}
	if got := Sqr(a).Pix[1]; got != 16 {
		t.Errorf("Sqr = %v", got)
	}
	if got := Sqrt(a).Pix[2]; got != 3 {
		t.Errorf("Sqrt = %v", got)
	}
	if got := Sqrt(a).Pix[3]; got != 0 {
		t.Errorf("Sqrt of negative = %v, want clamp to 0", got)
	}
	if got := Scale(a, 2).Pix[0]; got != 2 {
		t.Errorf("Scale = %v", got)
	}
	if got := Thresh(a, 5).Pix[0]; got != 0 {
		t.Errorf("Thresh below = %v", got)
	}
	if got := Thresh(a, 5).Pix[2]; got != 9 {
		t.Errorf("Thresh above = %v", got)
	}
}

func TestDivGuardsZero(t *testing.T) {
	a, b := NewImage(1, 1), NewImage(1, 1)
	a.Pix[0] = 1
	b.Pix[0] = 0
	v := Div(a, b).Pix[0]
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		t.Fatalf("Div by zero produced %v", v)
	}
}

func TestSigmoidTanhRanges(t *testing.T) {
	a := NewImage(3, 1)
	a.Pix = []float32{-100, 0, 100}
	s := Sigmoid(a)
	if s.Pix[0] > 0.001 || math.Abs(float64(s.Pix[1]-0.5)) > 1e-6 || s.Pix[2] < 0.999 {
		t.Fatalf("sigmoid = %v", s.Pix)
	}
	th := Tanh(a)
	if th.Pix[0] > -0.999 || th.Pix[1] != 0 || th.Pix[2] < 0.999 {
		t.Fatalf("tanh = %v", th.Pix)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	Add(NewImage(2, 2), NewImage(3, 2))
}

func TestCannyFindsSquareEdges(t *testing.T) {
	const w, h = 64, 64
	edges, err := Canny(squareRaw(w, h, 16, 16, 48, 48), w, h, 0.05, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	onBoundary, inFlat := 0, 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if edges.At(x, y) == 0 {
				continue
			}
			nearV := (abs(x-16) <= 2 || abs(x-48) <= 2) && y >= 13 && y <= 51
			nearH := (abs(y-16) <= 2 || abs(y-48) <= 2) && x >= 13 && x <= 51
			if nearV || nearH {
				onBoundary++
			} else if x > 20 && x < 44 && y > 20 && y < 44 {
				inFlat++
			}
		}
	}
	if onBoundary < 40 {
		t.Errorf("only %d edge pixels near the square boundary", onBoundary)
	}
	if inFlat > 0 {
		t.Errorf("%d spurious edges inside the flat region", inFlat)
	}
}

func TestHarrisFindsCorners(t *testing.T) {
	const w, h = 64, 64
	corners, err := Harris(squareRaw(w, h, 16, 16, 48, 48), w, h, 0.04, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	near := func(x, y int) bool {
		for _, c := range [][2]int{{16, 16}, {47, 16}, {16, 47}, {47, 47}} {
			if abs(x-c[0]) <= 4 && abs(y-c[1]) <= 4 {
				return true
			}
		}
		return false
	}
	hits, misses := 0, 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if corners.At(x, y) > 0 {
				if near(x, y) {
					hits++
				} else if x > 24 && x < 40 && y > 24 && y < 40 {
					misses++ // flat interior: no corners
				}
			}
		}
	}
	if hits < 4 {
		t.Errorf("found %d corner responses near the true corners, want >= 4", hits)
	}
	if misses > 0 {
		t.Errorf("%d corner responses in the flat interior", misses)
	}
}

func TestDeblurImprovesMSE(t *testing.T) {
	const w, h = 64, 64
	sharp := squareRaw(w, h, 20, 20, 44, 44)
	psf := GaussianKernel(5, 1.2)
	blurred := BlurRaw(sharp, w, h, psf)

	// Reference grayscale of the sharp image.
	rgbSharp, err := ISP(sharp, w, h, [3]float32{1, 1, 1}, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	gSharp := Grayscale(rgbSharp)

	rgbBlur, err := ISP(blurred, w, h, [3]float32{1, 1, 1}, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	gBlur := Grayscale(rgbBlur)

	deblurred, err := DeblurRL(blurred, w, h, 5, psf)
	if err != nil {
		t.Fatal(err)
	}
	mse := func(a, b *Image) float64 {
		var s float64
		for i := range a.Pix {
			d := float64(a.Pix[i] - b.Pix[i])
			s += d * d
		}
		return s / float64(len(a.Pix))
	}
	before, after := mse(gBlur, gSharp), mse(deblurred, gSharp)
	if after >= before {
		t.Errorf("RL deblur did not improve MSE: before %v, after %v", before, after)
	}
}

func TestEdgeTrackingHysteresis(t *testing.T) {
	// A weak segment connected to a strong pixel survives; an isolated
	// weak pixel does not.
	nms := NewImage(8, 1)
	nms.Pix = []float32{0.9, 0.4, 0.4, 0, 0, 0.4, 0, 0}
	out := EdgeTracking(nms, 0.3, 0.8)
	want := []float32{1, 1, 1, 0, 0, 0, 0, 0}
	for i := range want {
		if out.Pix[i] != want[i] {
			t.Fatalf("hysteresis = %v, want %v", out.Pix, want)
		}
	}
}

func TestHarrisNonMaxKeepsLocalMaxima(t *testing.T) {
	resp := NewImage(3, 3)
	resp.Pix = []float32{1, 2, 1, 2, 5, 2, 1, 2, 1}
	out := HarrisNonMax(resp)
	if out.At(1, 1) != 5 {
		t.Error("local maximum suppressed")
	}
	if out.At(0, 1) != 0 {
		t.Error("non-maximum survived")
	}
}

func TestMatMulIdentity(t *testing.T) {
	x := RandMat(4, 4, 7, 1)
	id := NewMat(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	y := MatMul(x, id)
	for i := range x.Data {
		if math.Abs(float64(x.Data[i]-y.Data[i])) > 1e-6 {
			t.Fatal("x * I != x")
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := &Mat{R: 2, C: 2, Data: []float32{1, 2, 3, 4}}
	b := &Mat{R: 2, C: 2, Data: []float32{5, 6, 7, 8}}
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("matmul = %v, want %v", c.Data, want)
		}
	}
}

func TestGRUCellBounded(t *testing.T) {
	const hidden, batch = 8, 3
	w := &GRUWeights{
		Wz: RandMat(hidden, hidden, 1, 0.5), Uz: RandMat(hidden, hidden, 2, 0.5),
		Wr: RandMat(hidden, hidden, 3, 0.5), Ur: RandMat(hidden, hidden, 4, 0.5),
		Wh: RandMat(hidden, hidden, 5, 0.5), Uh: RandMat(hidden, hidden, 6, 0.5),
	}
	h := NewMat(batch, hidden)
	for t2 := 0; t2 < 10; t2++ {
		x := RandMat(batch, hidden, uint64(t2+10), 1)
		h = GRUCell(w, x, h)
	}
	for _, v := range h.Data {
		if v < -1.0001 || v > 1.0001 || math.IsNaN(float64(v)) {
			t.Fatalf("GRU hidden state out of (-1, 1): %v", v)
		}
	}
}

func TestGRUIdentityWhenUpdateClosed(t *testing.T) {
	// With all-zero weights, z = sigmoid(0) = 0.5 and cand = 0, so
	// h' = h + 0.5*(0 - h) = 0.5 h.
	const hidden = 4
	zero := NewMat(hidden, hidden)
	w := &GRUWeights{Wz: zero, Uz: zero, Wr: zero, Ur: zero, Wh: zero, Uh: zero}
	h := NewMat(1, hidden)
	for i := 0; i < hidden; i++ {
		h.Set(0, i, 0.8)
	}
	next := GRUCell(w, NewMat(1, hidden), h)
	for i := 0; i < hidden; i++ {
		if math.Abs(float64(next.At(0, i)-0.4)) > 1e-6 {
			t.Fatalf("zero-weight GRU step = %v, want 0.4", next.At(0, i))
		}
	}
}

func TestLSTMCellBounded(t *testing.T) {
	const hidden, batch = 8, 2
	w := &LSTMWeights{
		Wi: RandMat(hidden, hidden, 1, 0.5), Ui: RandMat(hidden, hidden, 2, 0.5),
		Wf: RandMat(hidden, hidden, 3, 0.5), Uf: RandMat(hidden, hidden, 4, 0.5),
		Wo: RandMat(hidden, hidden, 5, 0.5), Uo: RandMat(hidden, hidden, 6, 0.5),
		Wg: RandMat(hidden, hidden, 7, 0.5), Ug: RandMat(hidden, hidden, 8, 0.5),
	}
	h, c := NewMat(batch, hidden), NewMat(batch, hidden)
	seq := []*Mat{}
	for t2 := 0; t2 < 12; t2++ {
		seq = append(seq, RandMat(batch, hidden, uint64(t2+20), 1))
	}
	h, c = RunLSTM(w, seq, h, c)
	for _, v := range h.Data {
		if v < -1.0001 || v > 1.0001 || math.IsNaN(float64(v)) {
			t.Fatalf("LSTM hidden state out of (-1, 1): %v", v)
		}
	}
	for _, v := range c.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("LSTM cell state diverged: %v", v)
		}
	}
}

func TestRandMatDeterministic(t *testing.T) {
	a := RandMat(4, 4, 42, 1)
	b := RandMat(4, 4, 42, 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("RandMat not deterministic")
		}
		if a.Data[i] < -1 || a.Data[i] > 1 {
			t.Fatal("RandMat out of scale")
		}
	}
}

// TestQuickAddCommutes / TestQuickMulScaleDistributes: element-wise algebra
// properties on arbitrary images.
func TestQuickAddCommutes(t *testing.T) {
	f := func(raw []byte) bool {
		n := len(raw)
		if n < 4 {
			return true
		}
		w := 2
		h := n / 2 / w * 1
		if h == 0 {
			return true
		}
		a, b := NewImage(w, h), NewImage(w, h)
		for i := 0; i < w*h; i++ {
			a.Pix[i] = float32(raw[i%n]) / 8
			b.Pix[i] = float32(raw[(i*7+3)%n]) / 8
		}
		x, y := Add(a, b), Add(b, a)
		for i := range x.Pix {
			if x.Pix[i] != y.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSqrtSqrRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		im := NewImage(len(raw), 1)
		for i, v := range raw {
			im.Pix[i] = float32(v)
		}
		rt := Sqrt(Sqr(im))
		for i := range im.Pix {
			if math.Abs(float64(rt.Pix[i]-im.Pix[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
