// relief-trace reproduces the spirit of the paper's Fig. 2 motivating
// example: several deadline-constrained chains contending for one
// accelerator. Least-laxity policies interleave the chains round-robin and
// forfeit forwarding opportunities; RELIEF promotes each newly ready child
// so chains run contiguously — more colocations, same deadlines met.
//
// It prints the schedule trace for a chosen policy and a comparison table
// across all policies.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"relief"
)

// chains builds three four-node elem-matrix chains with staggered
// deadlines, 1.5 ms per node, and small buffers (data movement is
// negligible; the example isolates scheduling order).
func chains() []*relief.DAG {
	mk := func(app, sym string, deadline relief.Time) *relief.DAG {
		d := relief.NewDAG(app, sym, deadline)
		var prev *relief.Node
		for i := 1; i <= 4; i++ {
			var n *relief.Node
			if prev == nil {
				n = d.AddNode(fmt.Sprintf("%s%d", sym, i), relief.ElemMatrix, relief.OpAdd, 4096)
				n.ExtraInputBytes = 4096
			} else {
				n = d.AddNode(fmt.Sprintf("%s%d", sym, i), relief.ElemMatrix, relief.OpAdd, 4096, prev)
			}
			n.Compute = relief.Time(1500) * relief.Microsecond
			prev = n
		}
		return d
	}
	return []*relief.DAG{
		mk("chain-a", "A", 22*relief.Millisecond),
		mk("chain-b", "B", 21*relief.Millisecond),
		mk("chain-c", "C", 20*relief.Millisecond),
	}
}

func run(policy string) (*relief.Report, []*relief.DAG) {
	sys := relief.NewSystem(relief.Config{Policy: policy})
	ds := chains()
	for _, d := range ds {
		if err := sys.Submit(d, 0); err != nil {
			fmt.Fprintf(os.Stderr, "relief-trace: %v\n", err)
			os.Exit(1)
		}
	}
	return sys.Run(), ds
}

func main() {
	tracePolicy := flag.String("trace", "RELIEF", "policy whose schedule to print")
	flag.Parse()

	fmt.Println("Motivating example: three 4-node chains on one elem-matrix accelerator")
	fmt.Println()
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "policy", "fwd", "coloc", "nodeDL%", "dagDL%")
	for _, p := range []string{"FCFS", "GEDF-D", "GEDF-N", "LL", "LAX", "HetSched", "RELIEF"} {
		rep, _ := run(p)
		dagMet := 0
		for _, a := range rep.Apps {
			dagMet += a.DeadlinesMet
		}
		fmt.Printf("%-10s %8d %8d %8.1f %8.1f\n",
			p, rep.Forwards, rep.Colocations, rep.NodeDeadlinePct(), 100*float64(dagMet)/3)
	}

	fmt.Printf("\nSchedule under %s:\n", *tracePolicy)
	_, ds := run(*tracePolicy)
	var nodes []*relief.Node
	for _, d := range ds {
		nodes = append(nodes, d.Nodes...)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].StartAt < nodes[j].StartAt })
	fmt.Printf("%-4s %12s %12s %12s  %s\n", "node", "start", "finish", "deadline", "met")
	for _, n := range nodes {
		met := "yes"
		if n.FinishAt > n.Deadline {
			met = "NO"
		}
		fmt.Printf("%-4s %12v %12v %12v  %s\n", n.Name, n.StartAt, n.FinishAt, n.Deadline, met)
	}
}
