#!/bin/sh
# CI gate: build, vet, full test suite (including the golden main-grid
# determinism digest), then a one-iteration benchmark smoke run so
# simulator-throughput regressions surface in the log.
set -eu
cd "$(dirname "$0")/.."

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== test"
go test ./...

echo "== race (short)"
go test -race -short ./...

echo "== bench smoke"
go test -run '^$' -bench 'BenchmarkFig4$' -benchtime=1x -benchmem .

echo "== metrics smoke"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/relief-sim -mix C -policy RELIEF -metrics "$tmp/m" >/dev/null
grep -q '"schema": "relief-metrics/1"' "$tmp/m.json"
test -s "$tmp/m.csv"
grep -q '^# TYPE' "$tmp/m.prom"

echo "== bench report smoke"
go build -o "$tmp/relief-bench" ./cmd/relief-bench
(cd "$tmp" && ./relief-bench -exp fig12 -benchjson auto >/dev/null)
grep -q '"schema": "relief-bench/1"' "$tmp"/BENCH_*.json
