package kernels

import (
	"fmt"
	"math"
)

// Mat is a dense row-major float32 matrix. The RNN workloads operate on
// batched activations (batch x hidden) with square weight matrices
// (hidden x hidden), matching the simulator's 128x128 operands.
type Mat struct {
	R, C int
	Data []float32
}

// NewMat allocates a zeroed R x C matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("kernels: invalid matrix size %dx%d", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float32, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.C+j] }

// Set writes element (i, j).
func (m *Mat) Set(i, j int, v float32) { m.Data[i*m.C+j] = v }

func matShape(a, b *Mat) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("kernels: matrix shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C))
	}
}

// MatMul returns x * w (batch-major activations times weights): x is
// (batch x k), w is (k x n). This is the elem-matrix accelerator's batched
// multiply-accumulate (OpMac).
func MatMul(x, w *Mat) *Mat {
	if x.C != w.R {
		panic(fmt.Sprintf("kernels: matmul inner dim mismatch %d vs %d", x.C, w.R))
	}
	out := NewMat(x.R, w.C)
	for i := 0; i < x.R; i++ {
		for k := 0; k < x.C; k++ {
			xv := x.At(i, k)
			if xv == 0 {
				continue
			}
			for j := 0; j < w.C; j++ {
				out.Data[i*out.C+j] += xv * w.At(k, j)
			}
		}
	}
	return out
}

// MatAdd returns a + b element-wise.
func MatAdd(a, b *Mat) *Mat {
	matShape(a, b)
	out := NewMat(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// MatSub returns a - b element-wise.
func MatSub(a, b *Mat) *Mat {
	matShape(a, b)
	out := NewMat(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// MatMulElem returns a (.) b element-wise (the Hadamard product).
func MatMulElem(a, b *Mat) *Mat {
	matShape(a, b)
	out := NewMat(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// MatSigmoid applies the logistic function element-wise.
func MatSigmoid(a *Mat) *Mat {
	out := NewMat(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// MatTanh applies tanh element-wise.
func MatTanh(a *Mat) *Mat {
	out := NewMat(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

// GRUWeights holds one GRU layer's parameters (hidden x hidden each).
type GRUWeights struct {
	Wz, Uz *Mat // update gate
	Wr, Ur *Mat // reset gate
	Wh, Uh *Mat // candidate
}

// GRUCell computes one timestep: given input x and state h (both
// batch x hidden), it returns the next hidden state using the same
// decomposition as the simulator's GRU DAG (14 elem-matrix operations).
func GRUCell(w *GRUWeights, x, h *Mat) *Mat {
	z := MatSigmoid(MatAdd(MatMul(x, w.Wz), MatMul(h, w.Uz)))
	r := MatSigmoid(MatAdd(MatMul(x, w.Wr), MatMul(h, w.Ur)))
	cand := MatTanh(MatAdd(MatMul(MatMulElem(r, h), w.Uh), MatMul(x, w.Wh)))
	delta := MatSub(cand, h)
	return MatAdd(MatMulElem(z, delta), h)
}

// RunGRU runs a GRU over an input sequence, returning the final hidden
// state.
func RunGRU(w *GRUWeights, seq []*Mat, h0 *Mat) *Mat {
	h := h0
	for _, x := range seq {
		h = GRUCell(w, x, h)
	}
	return h
}

// LSTMWeights holds one LSTM layer's parameters.
type LSTMWeights struct {
	Wi, Ui *Mat // input gate
	Wf, Uf *Mat // forget gate
	Wo, Uo *Mat // output gate
	Wg, Ug *Mat // cell candidate
}

// LSTMCell computes one timestep, returning the next hidden and cell
// states, using the same decomposition as the simulator's LSTM DAG
// (16 elem-matrix operations).
func LSTMCell(w *LSTMWeights, x, h, c *Mat) (hNext, cNext *Mat) {
	i := MatSigmoid(MatAdd(MatMul(x, w.Wi), MatMul(h, w.Ui)))
	f := MatSigmoid(MatAdd(MatMul(x, w.Wf), MatMul(h, w.Uf)))
	o := MatSigmoid(MatAdd(MatMul(x, w.Wo), MatMul(h, w.Uo)))
	g := MatTanh(MatAdd(MatMul(x, w.Wg), MatMul(h, w.Ug)))
	cNext = MatAdd(MatMulElem(f, c), MatMulElem(i, g))
	hNext = MatMulElem(o, MatTanh(cNext))
	return hNext, cNext
}

// RunLSTM runs an LSTM over an input sequence, returning the final hidden
// and cell states.
func RunLSTM(w *LSTMWeights, seq []*Mat, h0, c0 *Mat) (h, c *Mat) {
	h, c = h0, c0
	for _, x := range seq {
		h, c = LSTMCell(w, x, h, c)
	}
	return h, c
}

// RandMat fills a matrix with a deterministic pseudo-random pattern scaled
// to [-scale, scale], for examples and tests (no external RNG needed).
func RandMat(r, c int, seed uint64, scale float32) *Mat {
	m := NewMat(r, c)
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		// Take the top 24 bits for a uniform float in [0, 1).
		u := float32(s>>40) / float32(1<<24)
		m.Data[i] = (2*u - 1) * scale
	}
	return m
}
