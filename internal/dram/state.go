package dram

import (
	"fmt"

	"relief/internal/sim"
)

// BankState is one bank's serializable row-buffer state.
type BankState struct {
	OpenRow int64
	Valid   bool
}

// ChannelState is one channel's serializable state at a quiescent instant
// (no burst in service, empty queue): bank row buffers, accumulated busy
// time, and the refresh schedule position.
type ChannelState struct {
	Banks       []BankState
	BusyAcc     sim.Time
	NextRefresh sim.Time
}

// ControllerState is the controller's serializable state: the synthetic
// address cursor (row/bank placement of future requests depends on it),
// served-byte and row/refresh statistics, and per-channel state.
type ControllerState struct {
	Cursor    int64
	Bytes     int64
	RowHits   int64
	RowMisses int64
	Refreshes int64
	Channels  []ChannelState
}

// CaptureState snapshots the controller at a quiescent instant, erroring if
// any channel still has bursts queued or in flight.
func (c *Controller) CaptureState() (ControllerState, error) {
	s := ControllerState{
		Cursor:    c.cursor,
		Bytes:     c.bytes,
		RowHits:   c.RowHits,
		RowMisses: c.RowMisses,
		Refreshes: c.Refreshes,
	}
	for _, ch := range c.channels {
		if ch.serving || ch.pending() > 0 || ch.fin != nil {
			return ControllerState{}, fmt.Errorf("dram: channel %d busy at capture", ch.idx)
		}
		cs := ChannelState{BusyAcc: ch.busyAcc, NextRefresh: ch.nextRefresh}
		for _, b := range ch.banks {
			cs.Banks = append(cs.Banks, BankState{OpenRow: b.openRow, Valid: b.valid})
		}
		s.Channels = append(s.Channels, cs)
	}
	return s, nil
}

// RestoreState primes a freshly constructed controller (same geometry) with
// captured state.
func (c *Controller) RestoreState(s ControllerState) error {
	if len(s.Channels) != len(c.channels) {
		return fmt.Errorf("dram: restore channel count %d, checkpoint has %d", len(c.channels), len(s.Channels))
	}
	c.cursor = s.Cursor
	c.bytes = s.Bytes
	c.RowHits = s.RowHits
	c.RowMisses = s.RowMisses
	c.Refreshes = s.Refreshes
	for i, cs := range s.Channels {
		ch := c.channels[i]
		if len(cs.Banks) != len(ch.banks) {
			return fmt.Errorf("dram: restore bank count %d, checkpoint has %d", len(ch.banks), len(cs.Banks))
		}
		ch.busyAcc = cs.BusyAcc
		ch.nextRefresh = cs.NextRefresh
		for j, b := range cs.Banks {
			ch.banks[j] = bank{openRow: b.OpenRow, valid: b.Valid}
		}
	}
	return nil
}
