// Quickstart: submit one of the paper's benchmark DAGs to a simulated SoC
// under two scheduling policies and compare data movement and QoS.
package main

import (
	"fmt"
	"log"

	"relief"
)

func main() {
	for _, policy := range []string{"LAX", "RELIEF"} {
		// A System is one simulation: configure, submit, run.
		sys := relief.NewSystem(relief.Config{Policy: policy})

		// A vision application contends with two RNN streams (the paper's
		// CGL mix).
		for _, app := range []string{"canny", "gru", "lstm"} {
			dag, err := relief.BuildWorkload(app)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Submit(dag, 0); err != nil {
				log.Fatal(err)
			}
		}

		rep := sys.Run()
		fwd, col := rep.ForwardsPerEdge()
		fmt.Printf("%-8s makespan=%v forwards=%.1f%% colocations=%.1f%% dram=%.2fMB nodeDeadlines=%.1f%%\n",
			policy, rep.Makespan, fwd, col, float64(rep.DRAMBytes)/1e6, rep.NodeDeadlinePct())
		for name, a := range rep.Apps {
			fmt.Printf("  %-7s slowdown=%.2f deadlineMet=%v\n", name, a.Slowdown, a.DeadlinesMet == a.Iterations)
		}
	}
}
