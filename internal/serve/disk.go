package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpillSchema identifies the on-disk spill-file envelope.
const SpillSchema = "relief-spill/1"

// spillExt is the spill-file suffix; files are named <digest>.json.
const spillExt = ".json"

// spillEnvelope is the durable form of one cached result: the digest it
// is addressed by, a sha256 over the payload bytes, and the payload
// itself (the Result's JSON). A crashed write, a truncated file, or any
// bit rot fails the checksum and the entry is discarded instead of served.
type spillEnvelope struct {
	Schema  string          `json:"schema"`
	Digest  string          `json:"digest"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// diskCache is the write-through spill of the in-memory result LRU: one
// file per digest under dir, written atomically (temp file + fsync +
// rename), verified by checksum on load, and bounded to cap entries —
// evictions from the memory LRU are mirrored here, and a startup prune
// enforces the bound against leftovers from previous processes.
//
// A restarted replica pointed at the same directory warm-starts its share
// of the keyspace: the first request for a previously computed digest is
// a disk hit, not a re-simulation.
type diskCache struct {
	dir string
	cap int

	hits        atomic.Int64
	misses      atomic.Int64
	loadErrors  atomic.Int64
	spillErrors atomic.Int64

	mu    sync.Mutex // serializes writes, removals, and the bound
	count int64      //relief:guardedby mu — spill files currently on disk (read via entries)
}

// openDiskCache prepares dir as a spill directory bounded to cap entries
// and returns the cache plus the number of restored (pre-existing) spill
// files.
func openDiskCache(dir string, cap int) (*diskCache, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	d := &diskCache{dir: dir, cap: cap}
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.pruneLocked()
	if err != nil {
		return nil, 0, err
	}
	d.count = int64(n)
	return d, n, nil
}

// entries reports the current spill-file count (metrics gauge).
func (d *diskCache) entries() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key+spillExt)
}

// validSpillKey accepts exactly the digests Request.Digest produces
// (lowercase hex sha256), which also makes the key safe to use as a file
// name: no separators, no traversal.
func validSpillKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// store spills one result write-through: marshal, checksum, write to a
// temp file in the same directory, fsync, rename over the final name.
// Failures are counted, never fatal — the entry simply stays memory-only.
func (d *diskCache) store(key string, res *Result) {
	if !validSpillKey(key) {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		d.spillErrors.Add(1)
		return
	}
	sum := sha256.Sum256(payload)
	env, err := json.Marshal(spillEnvelope{
		Schema:  SpillSchema,
		Digest:  key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		d.spillErrors.Add(1)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	final := d.path(key)
	_, statErr := os.Stat(final)
	fresh := errors.Is(statErr, fs.ErrNotExist)
	if err := atomicWrite(d.dir, final, env); err != nil {
		d.spillErrors.Add(1)
		return
	}
	if fresh {
		d.count++
		if d.cap > 0 && d.count > int64(d.cap) {
			if n, err := d.pruneLocked(); err == nil {
				d.count = int64(n)
			}
		}
	}
}

// atomicWrite writes data to a temp file in dir, fsyncs it, and renames
// it over final, so a crash at any point leaves either the old file or
// the new one — never a torn write under the final name.
func atomicWrite(dir, final string, data []byte) error {
	f, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// load reads one spilled result back, verifying the envelope's schema,
// digest, and checksum. A missing file is a miss; a file that fails
// verification is counted as a load error and deleted so it can never be
// served (the scenario re-simulates instead).
func (d *diskCache) load(key string) (*Result, bool) {
	if !validSpillKey(key) {
		return nil, false
	}
	b, err := os.ReadFile(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		d.misses.Add(1)
		return nil, false
	}
	if err != nil {
		d.loadErrors.Add(1)
		return nil, false
	}
	res, ok := decodeSpill(key, b)
	if !ok {
		d.loadErrors.Add(1)
		d.remove(key)
		return nil, false
	}
	d.hits.Add(1)
	// Freshen the file so the startup prune treats live entries as recent.
	now := time.Now()
	os.Chtimes(d.path(key), now, now)
	return res, true
}

// decodeSpill verifies and unwraps one spill file's bytes.
func decodeSpill(key string, b []byte) (*Result, bool) {
	var env spillEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, false
	}
	if env.Schema != SpillSchema || env.Digest != key {
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Sum != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(env.Payload, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// remove deletes the spill files for the given keys (mirroring memory-LRU
// evictions). Unknown keys are no-ops.
func (d *diskCache) remove(keys ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, key := range keys {
		if !validSpillKey(key) {
			continue
		}
		if err := os.Remove(d.path(key)); err == nil {
			d.count--
		}
	}
}

// pruneLocked enforces the entry bound: keep the cap most recently
// touched spill files, delete the rest (oldest first), and drop any
// stranded temp files from interrupted writes. Returns the surviving
// count. Caller holds d.mu.
func (d *diskCache) pruneLocked() (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, err
	}
	type spillFile struct {
		name string
		mod  time.Time
	}
	var files []spillFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !validSpillKey(stripExt(name)) {
			// Interrupted-write temp files are garbage after a crash.
			if filepath.Ext(name) != spillExt {
				os.Remove(filepath.Join(d.dir, name))
			}
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, spillFile{name: name, mod: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.After(files[j].mod) // newest first
		}
		return files[i].name < files[j].name
	})
	kept := len(files)
	if d.cap > 0 && kept > d.cap {
		for _, f := range files[d.cap:] {
			os.Remove(filepath.Join(d.dir, f.name))
		}
		kept = d.cap
	}
	return kept, nil
}

// stripExt returns name without the spill extension, or "" when the name
// does not carry it.
func stripExt(name string) string {
	if filepath.Ext(name) != spillExt {
		return ""
	}
	return name[:len(name)-len(spillExt)]
}
