package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"relief/internal/fault"
	"relief/internal/sim"
)

// sampledScenario is the sampling test base: the periodic checkpoint
// scenario stretched to a horizon long enough that interval sampling
// actually skips most of the run.
func sampledScenario(t *testing.T, horizon sim.Time) Scenario {
	t.Helper()
	sc := periodicScenario(t)
	sc.Horizon = horizon
	return sc
}

// TestSampledExactForDeterministic: a deterministic periodic workload
// settles to exactly equal per-window deltas, so the extrapolation is exact
// (zero variance, zero bound) and matches the full run to the node.
func TestSampledExactForDeterministic(t *testing.T) {
	sc := sampledScenario(t, 100*sim.Millisecond)
	est, err := RunSampled(context.Background(), sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Sampled {
		t.Fatal("deterministic periodic workload should sample, not fall back")
	}
	if est.Windows != 4 {
		t.Errorf("windows = %d, want 4", est.Windows)
	}
	full, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, e EstStat, want float64) {
		if e.Estimate != want {
			t.Errorf("%s estimate %.0f, want exactly %.0f", name, e.Estimate, want)
		}
		if e.ErrorBound != 0 {
			t.Errorf("%s bound %.4f, want 0 (zero-variance windows)", name, e.ErrorBound)
		}
	}
	check("nodes_done", est.NodesDone, float64(full.Stats.NodesDone))
	check("nodes_met_deadline", est.NodesMetDeadline, float64(full.Stats.NodesMetDeadline))
	check("dram_bytes", est.DRAMBytes, float64(full.Stats.DRAMReadBytes+full.Stats.DRAMWriteBytes))
}

// TestSampledErrorBoundValidated: for a stochastic workload (injected task
// slowdowns) the sampled estimate must land within 5% of the full run —
// the acceptance criterion — and report an honest nonzero bound.
func TestSampledErrorBoundValidated(t *testing.T) {
	sc := sampledScenario(t, 200*sim.Millisecond)
	sc.Faults = &fault.Plan{Seed: 42, Rates: fault.Rates{TaskSlow: 0.15, SlowFactor: 4}}
	est, err := RunSampled(context.Background(), sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Sampled {
		t.Fatal("slow-task workload should sample, not fall back")
	}
	full, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, e EstStat, want float64) {
		relErr := math.Abs(e.Estimate-want) / want
		if relErr > 0.05 {
			t.Errorf("%s estimate %.0f vs full %.0f: %.2f%% error exceeds the 5%% criterion",
				name, e.Estimate, want, 100*relErr)
		}
		if e.ErrorBound <= 0 {
			t.Errorf("%s bound %.4f, want a nonzero bound for stochastic windows", name, e.ErrorBound)
		}
	}
	check("nodes_done", est.NodesDone, float64(full.Stats.NodesDone))
	check("nodes_met_deadline", est.NodesMetDeadline, float64(full.Stats.NodesMetDeadline))
	check("dram_bytes", est.DRAMBytes, float64(full.Stats.DRAMReadBytes+full.Stats.DRAMWriteBytes))
}

// TestSampledFallsBackWhenUnsteady: a workload the detector never declares
// steady (an abort-heavy fault profile scrambles per-period completions)
// degrades to a full run with exact values and zero bounds.
func TestSampledFallsBackWhenUnsteady(t *testing.T) {
	sc := sampledScenario(t, 50*sim.Millisecond)
	sc.Faults = fault.Profile(0.02, 7)
	est, err := RunSampled(context.Background(), sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sampled {
		t.Skip("profile workload reached steady state; fallback path not exercised here")
	}
	full, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := est.NodesDone.Estimate, float64(full.Stats.NodesDone); got != want {
		t.Errorf("fallback nodes_done %.0f, want exact %.0f", got, want)
	}
	if est.NodesDone.ErrorBound != 0 || est.Windows != 0 {
		t.Errorf("fallback should report zero bound and zero windows, got bound=%v windows=%d",
			est.NodesDone.ErrorBound, est.Windows)
	}
}

// TestSampledRequiresPeriodic: sampling is a periodic-workload technique.
func TestSampledRequiresPeriodic(t *testing.T) {
	sc := periodicScenario(t)
	sc.Period = 0
	if _, err := RunSampled(context.Background(), sc, 4); err == nil {
		t.Error("aperiodic RunSampled should fail")
	}
}

// TestWriteEstimate pins the estimate document schema and rendering.
func TestWriteEstimate(t *testing.T) {
	sc := sampledScenario(t, 100*sim.Millisecond)
	est, err := RunSampled(context.Background(), sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteEstimate(&b, est); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatalf("estimate document is not valid JSON: %v", err)
	}
	if decoded["schema"] != EstimateSchema {
		t.Errorf("schema = %v, want %q", decoded["schema"], EstimateSchema)
	}
	if decoded["key"] != ScenarioKey(sc) {
		t.Errorf("key = %v, want the scenario key", decoded["key"])
	}
}
