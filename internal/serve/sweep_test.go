package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"relief/internal/exp"
)

func postSweep(t *testing.T, url, spec string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// TestSweepExpansion: the grid is the cross product of the axes, each cell
// normalized, with digest-identical cells deduplicated.
func TestSweepExpansion(t *testing.T) {
	spec := SweepSpec{
		Mixes:    []string{"CGL", "CGL", "CDH"}, // duplicate mix collapses
		Policies: []string{"FCFS", "RELIEF"},
	}
	cells, err := spec.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4 (2 mixes × 2 policies)", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Digest] {
			t.Errorf("duplicate digest %s survived expansion", c.Digest)
		}
		seen[c.Digest] = true
		if c.Request.Policy != "FCFS" && c.Request.Policy != "RELIEF" {
			t.Errorf("unexpected policy %q", c.Request.Policy)
		}
	}

	// Contention levels expand to the canonical mix sets: low = 5 single
	// apps, and the continuous level marks its cells continuous.
	lvl := SweepSpec{Contention: []string{"low", "continuous"}}
	cells, err = lvl.expand()
	if err != nil {
		t.Fatal(err)
	}
	var continuous int
	for _, c := range cells {
		if c.Request.Continuous {
			continuous++
		}
	}
	if len(cells) != 15 || continuous != 10 {
		t.Errorf("low+continuous expanded to %d cells (%d continuous), want 15 with 10 continuous",
			len(cells), continuous)
	}
}

// TestSweepValidation: empty grids, unknown contention levels, bad mixes,
// and unknown spec fields are 400s, not half-run sweeps.
func TestSweepValidation(t *testing.T) {
	s := New(Config{Workers: 1, Runner: countingStub(new(atomic.Int32))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, spec := range map[string]string{
		"empty grid":         `{}`,
		"unknown contention": `{"contention":["extreme"]}`,
		"bad mix":            `{"mixes":["QQ"]}`,
		"unknown field":      `{"mixez":["C"]}`,
	} {
		resp, b := postSweep(t, ts.URL, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, b)
		}
	}
}

// TestSweepStreamFraming: stream mode emits a schema header, one line per
// cell, and a done trailer; every expanded cell appears exactly once.
func TestSweepStreamFraming(t *testing.T) {
	var execs atomic.Int32
	s := New(Config{Workers: 2, Runner: countingStub(&execs)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := postSweep(t, ts.URL, `{"mixes":["C","D","G"],"policies":["FCFS","RELIEF"],"stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	if len(lines) != 8 { // header + 6 cells + trailer
		t.Fatalf("stream has %d lines, want 8:\n%s", len(lines), b)
	}
	var header sweepHeader
	if err := json.Unmarshal(lines[0], &header); err != nil || header.Schema != SweepSchema || header.Cells != 6 {
		t.Fatalf("bad header %s (err %v)", lines[0], err)
	}
	indices := map[int]bool{}
	for _, ln := range lines[1 : len(lines)-1] {
		var cell sweepLine
		if err := json.Unmarshal(ln, &cell); err != nil {
			t.Fatalf("bad cell line %s: %v", ln, err)
		}
		if cell.Error != "" || cell.Result == nil || cell.Source != srcRun {
			t.Errorf("cell %d: error=%q source=%q", cell.Index, cell.Error, cell.Source)
		}
		if indices[cell.Index] {
			t.Errorf("cell index %d streamed twice", cell.Index)
		}
		indices[cell.Index] = true
	}
	var trailer sweepTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil || !trailer.Done || trailer.OK != 6 || trailer.Errors != 0 {
		t.Fatalf("bad trailer %s (err %v)", lines[len(lines)-1], err)
	}
	if execs.Load() != 6 {
		t.Errorf("executed %d cells, want 6", execs.Load())
	}
}

// TestSweepMergedMatchesExpSweep is the tentpole golden test: the merged
// document POST /sweep returns must be byte-identical to exp.Sweep's
// DumpJSON over the same scenarios — the serving layer adds distribution,
// never a different answer.
func TestSweepMergedMatchesExpSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations; skipped in -short")
	}
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const spec = `{"mixes":["C","D"],"policies":["FCFS","RELIEF"],"metrics":false}`
	resp, got := postSweep(t, ts.URL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}

	var sp SweepSpec
	if err := json.Unmarshal([]byte(spec), &sp); err != nil {
		t.Fatal(err)
	}
	cells, err := sp.expand()
	if err != nil {
		t.Fatal(err)
	}
	ref := exp.NewSweep()
	for _, c := range cells {
		sc, err := c.Request.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Get(sc); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if err := ref.DumpJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("merged sweep diverges from exp.Sweep.DumpJSON:\n--- serve ---\n%s\n--- exp ---\n%s", got, want.Bytes())
	}
}

// TestClusterSweepMergedIdentical: the same grid swept through a two-replica
// fleet produces a byte-identical document to a solo server — distribution
// must not change a single byte of the science.
func TestClusterSweepMergedIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations; skipped in -short")
	}
	const spec = `{"mixes":["C","G"],"policies":["FCFS","RELIEF"]}`

	solo := New(Config{Workers: 2})
	tsSolo := httptest.NewServer(solo.Handler())
	defer tsSolo.Close()
	respSolo, wantDoc := postSweep(t, tsSolo.URL, spec)
	if respSolo.StatusCode != http.StatusOK {
		t.Fatalf("solo sweep: status %d: %s", respSolo.StatusCode, wantDoc)
	}

	s1 := New(Config{Workers: 2})
	s2 := New(Config{Workers: 2})
	ts1 := httptest.NewServer(s1.Handler())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts1.Close()
	defer ts2.Close()
	s1.ConfigureCluster(ts1.URL, []string{ts2.URL})
	s2.ConfigureCluster(ts2.URL, []string{ts1.URL})

	respFleet, gotDoc := postSweep(t, ts1.URL, spec)
	if respFleet.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep: status %d: %s", respFleet.StatusCode, gotDoc)
	}
	if !bytes.Equal(gotDoc, wantDoc) {
		t.Errorf("fleet merge diverges from solo merge:\n--- fleet ---\n%s\n--- solo ---\n%s", gotDoc, wantDoc)
	}
}

// TestClusterSweepDistributesCells: a sweep through one coordinator places
// work on both replicas by ring ownership, and no cell runs twice.
func TestClusterSweepDistributesCells(t *testing.T) {
	s1, _, url1, _, execs1, execs2 := twoReplicaFleet(t)
	_ = s1

	resp, b := postSweep(t, url1, `{"contention":["low"],"policies":["FCFS","RELIEF"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	e1, e2 := execs1.Load(), execs2.Load()
	if e1+e2 != 10 {
		t.Errorf("fleet executed %d cells, want exactly 10 (each cell once)", e1+e2)
	}
	if e1 == 0 || e2 == 0 {
		t.Errorf("cells did not distribute: replica execs %d/%d", e1, e2)
	}
}
