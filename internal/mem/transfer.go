package mem

import "relief/internal/sim"

// DefaultChunkBytes is the granularity at which transfers are decomposed
// before being offered to resources. 4 KiB approximates a DMA burst train:
// small enough that concurrent streams share bandwidth fairly, large enough
// to keep event counts low.
const DefaultChunkBytes = 4096

// TransferResult describes a completed transfer for bandwidth bookkeeping.
type TransferResult struct {
	Bytes int64
	Start sim.Time
	End   sim.Time
	// Corrupt marks a payload that arrived with a CRC failure (fault
	// injection); the DMA engine is expected to re-run the transfer.
	Corrupt bool
}

// AchievedBandwidth returns the end-to-end bandwidth of the transfer in
// bytes per second.
func (t TransferResult) AchievedBandwidth() float64 {
	d := t.End - t.Start
	if d <= 0 {
		return 0
	}
	return float64(t.Bytes) / d.Seconds()
}

// transfer is the chunk-wise pipelining state of one in-flight transfer.
// Completions at every resource are FIFO, so each stage needs only a
// counter of processed chunks and a single reusable done closure, not one
// closure per chunk.
type transfer struct {
	k       *sim.Kernel
	path    []Server
	n       int64
	nChunks int
	start   sim.Time
	done    func(TransferResult)

	next      []int    // per stage: index of the chunk whose completion fires next
	stageDone []func() // per stage: the chunk-completion callback
}

// chunkSize returns the byte count of chunk i (the tail chunk is short).
//
//relief:hotpath
func (t *transfer) chunkSize(i int) int64 {
	if i == t.nChunks-1 {
		return t.n - int64(i)*DefaultChunkBytes
	}
	return DefaultChunkBytes
}

// advance moves the next chunk out of stage s. When the last chunk leaves
// the last stage the transfer is complete. This is the per-chunk DMA
// pipeline step; it must not allocate.
//
//relief:hotpath
func (t *transfer) advance(s int) {
	i := t.next[s]
	t.next[s]++
	if s+1 < len(t.path) {
		t.path[s+1].Enqueue(t.chunkSize(i), t.stageDone[s+1])
	} else if i == t.nChunks-1 {
		t.finish()
	}
	if s == 0 && i+1 < t.nChunks {
		t.path[0].Enqueue(t.chunkSize(i+1), t.stageDone[0])
	}
}

func (t *transfer) finish() {
	t.done(TransferResult{Bytes: t.n, Start: t.start, End: t.k.Now()})
}

// FaultInjector perturbs transfers at the DMA front end. Implemented by
// fault.Injector; the interface keeps mem free of a fault dependency.
type FaultInjector interface {
	// Transfer returns an extra front-end stall and whether the payload
	// arrives corrupted for a transfer of n bytes.
	Transfer(n int64) (stall sim.Time, corrupt bool)
}

// StartTransferFI is StartTransfer with optional fault injection: the
// injected stall extends the front-end setup latency (so downstream claim
// coalescing and pipelining see a plain, later-starting transfer), and a
// corruption verdict is delivered through TransferResult.Corrupt. A nil
// injector is exactly StartTransfer.
func StartTransferFI(k *sim.Kernel, path []Server, n int64, setup sim.Time, fi FaultInjector, done func(TransferResult)) {
	if fi != nil {
		stall, corrupt := fi.Transfer(n)
		setup += stall
		if corrupt {
			inner := done
			done = func(res TransferResult) {
				res.Corrupt = true
				inner(res)
			}
		}
	}
	StartTransfer(k, path, n, setup, done)
}

// StartTransfer moves n bytes through the ordered resource path, chunk by
// chunk, with store-and-forward pipelining: chunk i enters stage s+1 as soon
// as stage s finishes serving it, and chunk i+1 enters stage s at the same
// moment. setup is a fixed front-end latency (DMA programming, request
// routing) charged once before the first chunk. done receives the transfer's
// timing when the final chunk drains from the last stage.
//
// If every stage on the path is idle when the first chunk would issue, the
// chunk loop is replaced by an analytic claim (coalesce.go) that computes
// the identical pipeline schedule in closed form and fires a single
// completion event; the claim reverts to chunk-wise service the moment any
// other stream touches the path.
//
// A transfer over an empty path (pure SPAD-local access) completes after
// setup alone.
func StartTransfer(k *sim.Kernel, path []Server, n int64, setup sim.Time, done func(TransferResult)) {
	start := k.Now()
	if n <= 0 || len(path) == 0 {
		k.Schedule(setup, func() {
			done(TransferResult{Bytes: n, Start: start, End: k.Now()})
		})
		return
	}
	t := &transfer{
		k:       k,
		path:    path,
		n:       n,
		nChunks: int((n + DefaultChunkBytes - 1) / DefaultChunkBytes),
		start:   start,
		done:    done,
		next:    make([]int, len(path)),
	}
	t.stageDone = make([]func(), len(path))
	for s := range t.stageDone {
		s := s
		t.stageDone[s] = func() { t.advance(s) }
	}
	k.Schedule(setup, func() {
		if tryClaim(t) {
			return
		}
		t.path[0].Enqueue(t.chunkSize(0), t.stageDone[0])
	})
}
