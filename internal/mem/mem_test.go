package mem

import (
	"testing"
	"testing/quick"

	"relief/internal/sim"
)

func TestResourceServiceTime(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "dram", 1*GB) // 1 GB/s = 1 byte/ns
	if got := r.ServiceTime(1000); got != 1000*sim.Nanosecond {
		t.Errorf("ServiceTime(1000) = %v, want 1us", got)
	}
	if got := r.ServiceTime(0); got != 0 {
		t.Errorf("ServiceTime(0) = %v, want 0", got)
	}
	if got := r.ServiceTime(1); got < 1 {
		t.Errorf("ServiceTime(1) = %v, want >= 1ps", got)
	}
	if r.Bandwidth() != 1*GB {
		t.Errorf("Bandwidth() = %v, want 1e9", r.Bandwidth())
	}
}

func TestResourceInvalidBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bandwidth")
		}
	}()
	NewResource(sim.NewKernel(), "bad", 0)
}

func TestResourceFIFOAndBusyTime(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "bus", 1*GB)
	var done []sim.Time
	r.Enqueue(1000, func() { done = append(done, k.Now()) }) // 1us
	r.Enqueue(2000, func() { done = append(done, k.Now()) }) // +2us
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completed %d requests, want 2", len(done))
	}
	if done[0] != 1*sim.Microsecond || done[1] != 3*sim.Microsecond {
		t.Errorf("completion times %v, want [1us 3us]", done)
	}
	if r.BusyTime() != 3*sim.Microsecond {
		t.Errorf("BusyTime = %v, want 3us", r.BusyTime())
	}
	if r.BytesServed() != 3000 {
		t.Errorf("BytesServed = %d, want 3000", r.BytesServed())
	}
}

func TestResourceZeroByteCompletes(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "bus", 1*GB)
	ran := false
	r.Enqueue(0, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("zero-byte request never completed")
	}
	if r.BusyTime() != 0 {
		t.Errorf("BusyTime = %v for zero-byte request", r.BusyTime())
	}
}

func TestResourceIdleGapNotBusy(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "bus", 1*GB)
	r.Enqueue(1000, func() {})
	k.Schedule(10*sim.Microsecond, func() { r.Enqueue(1000, func() {}) })
	k.Run()
	if r.BusyTime() != 2*sim.Microsecond {
		t.Errorf("BusyTime = %v, want 2us (idle gap excluded)", r.BusyTime())
	}
}

func TestResourceOnBusyChange(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "bus", 1*GB)
	var transitions []bool
	r.OnBusyChange = func(b bool) { transitions = append(transitions, b) }
	r.Enqueue(100, func() {})
	r.Enqueue(100, func() {}) // back-to-back: no idle transition between
	k.Run()
	want := []bool{true, false}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestTransferSingleStage(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "dram", 1*GB)
	var res TransferResult
	StartTransfer(k, []Server{r}, 10000, 0, func(tr TransferResult) { res = tr })
	k.Run()
	if res.Bytes != 10000 {
		t.Fatalf("Bytes = %d, want 10000", res.Bytes)
	}
	want := 10 * sim.Microsecond
	if res.End-res.Start != want {
		t.Errorf("duration = %v, want %v", res.End-res.Start, want)
	}
	if bw := res.AchievedBandwidth(); bw < 0.99*GB || bw > 1.01*GB {
		t.Errorf("achieved bandwidth = %v, want ~1GB/s", bw)
	}
}

func TestTransferPipelinesTwoStages(t *testing.T) {
	// With store-and-forward chunk pipelining, a transfer over two equal
	// stages takes bytes/bw + one extra chunk, not 2x.
	k := sim.NewKernel()
	a := NewResource(k, "a", 1*GB)
	b := NewResource(k, "b", 1*GB)
	const bytes = 16 * DefaultChunkBytes
	var dur sim.Time
	StartTransfer(k, []Server{a, b}, bytes, 0, func(tr TransferResult) { dur = tr.End - tr.Start })
	k.Run()
	serial := a.ServiceTime(bytes)
	extra := a.ServiceTime(DefaultChunkBytes)
	if dur != serial+extra {
		t.Errorf("pipelined duration = %v, want %v (serial %v + chunk %v)", dur, serial+extra, serial, extra)
	}
}

func TestTransferBottleneckStage(t *testing.T) {
	// The slow stage dominates a pipelined transfer.
	k := sim.NewKernel()
	fast := NewResource(k, "bus", 10*GB)
	slow := NewResource(k, "dram", 1*GB)
	const bytes = 8 * DefaultChunkBytes
	var dur sim.Time
	StartTransfer(k, []Server{fast, slow}, bytes, 0, func(tr TransferResult) { dur = tr.End - tr.Start })
	k.Run()
	lower := slow.ServiceTime(bytes)
	upper := lower + fast.ServiceTime(DefaultChunkBytes) + slow.ServiceTime(DefaultChunkBytes)
	if dur < lower || dur > upper {
		t.Errorf("duration %v outside [%v, %v]", dur, lower, upper)
	}
}

func TestTransferSetupLatency(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "dram", 1*GB)
	var start sim.Time = -1
	StartTransfer(k, []Server{r}, 1000, 500*sim.Nanosecond, func(tr TransferResult) {
		start = tr.Start
		if tr.End != 500*sim.Nanosecond+1*sim.Microsecond {
			t.Errorf("End = %v, want 1.5us", tr.End)
		}
	})
	k.Run()
	if start != 0 {
		t.Errorf("Start = %v, want 0 (setup included in transfer window)", start)
	}
}

func TestTransferEmptyPathAndZeroBytes(t *testing.T) {
	k := sim.NewKernel()
	count := 0
	StartTransfer(k, nil, 1000, 0, func(TransferResult) { count++ })
	StartTransfer(k, []Server{NewResource(k, "x", GB)}, 0, 0, func(TransferResult) { count++ })
	k.Run()
	if count != 2 {
		t.Fatalf("completed %d degenerate transfers, want 2", count)
	}
}

func TestConcurrentTransfersShareBandwidth(t *testing.T) {
	// Two simultaneous transfers through one resource interleave at chunk
	// granularity: both finish around 2x the solo time, and neither is
	// starved until the other completes.
	k := sim.NewKernel()
	r := NewResource(k, "dram", 1*GB)
	const bytes = 32 * DefaultChunkBytes
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		StartTransfer(k, []Server{r}, bytes, 0, func(tr TransferResult) { ends = append(ends, tr.End) })
	}
	k.Run()
	solo := r.ServiceTime(bytes)
	both := r.ServiceTime(2 * bytes)
	for _, e := range ends {
		if e < solo || e > both {
			t.Errorf("end %v outside [%v, %v]", e, solo, both)
		}
	}
	// Fairness: the first finisher must not finish before ~half the total
	// work is done minus a chunk of slack.
	first := ends[0]
	if ends[1] < first {
		first = ends[1]
	}
	if first < both-r.ServiceTime(2*DefaultChunkBytes) {
		t.Errorf("first transfer finished at %v; starvation suspected (total %v)", first, both)
	}
}

// TestQuickTransferConservation: any transfer takes at least bytes/bw on
// its bottleneck stage and reports exactly its byte count.
func TestQuickTransferConservation(t *testing.T) {
	f := func(rawBytes uint32, twoStage bool) bool {
		bytes := int64(rawBytes%5_000_000) + 1
		k := sim.NewKernel()
		path := []Server{NewResource(k, "a", 2*GB)}
		if twoStage {
			path = append(path, NewResource(k, "b", 1*GB))
		}
		var res TransferResult
		StartTransfer(k, path, bytes, 0, func(tr TransferResult) { res = tr })
		k.Run()
		if res.Bytes != bytes {
			return false
		}
		bottleneck := path[len(path)-1].ServiceTime(bytes)
		return res.End-res.Start >= bottleneck
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
