package exp

import (
	"fmt"

	"relief/internal/fault"
	"relief/internal/sim"
	"relief/internal/workload"
)

// faultStudySeed fixes the injection PRNG for the resilience study so the
// table is reproducible run to run (and locked by a digest test).
const faultStudySeed = 0x52454C49 // "RELI"

// FaultRates are the per-task fault probabilities swept by FaultStudy.
var FaultRates = []float64{0, 0.02, 0.05, 0.10}

// FaultStudy is an extension experiment beyond the paper: it injects
// faults (hangs, slowdowns, transient failures, instance deaths, DMA
// stalls/corruption, DRAM error bursts) at increasing rates into every
// high-contention mix and measures how each scheduling policy degrades
// under the recovery machinery (watchdog + retry + DAG abort). The
// rate-0 row shares the fault-free cache and is bit-identical to the
// main grid. See docs/FAULTS.md.
func FaultStudy(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Extension: fault injection and recovery (high contention)",
		Note: "aggregated over all high-contention mixes; done/sub = completed vs submitted DAGs; " +
			"MTTR = mean time from first failure to node completion; rec MB = write-back + retried DMA traffic",
		Cols: []string{"rate", "policy", "done/sub", "aborted", "dag dl%", "node dl%",
			"retries", "wdog", "deaths", "MTTR(us)", "rec MB"},
	}
	for _, rate := range FaultRates {
		var plan *fault.Plan
		if rate > 0 {
			plan = fault.Profile(rate, faultStudySeed)
		}
		for _, pname := range FairnessPolicyNames {
			var (
				done, submitted, aborted     int
				dagsMet, nodesDone, nodesMet int
				agg                          struct {
					retries, wdog, deaths, recoveries int
					recBytes                          int64
					recTime                           sim.Time
				}
			)
			err := forEachMix(workload.High, func(mix []workload.App, name string) error {
				res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: pname, Faults: plan})
				if err != nil {
					return err
				}
				st := res.Stats
				submitted += len(mix)
				for _, a := range st.Apps {
					done += a.Iterations
					dagsMet += a.DeadlinesMet
					aborted += a.Aborted
				}
				nodesDone += st.NodesDone
				nodesMet += st.NodesMetDeadline
				agg.retries += st.Faults.Retries
				agg.wdog += st.Faults.WatchdogFires
				agg.deaths += st.Faults.InstanceDeaths
				agg.recoveries += st.Faults.Recoveries
				agg.recBytes += st.Faults.RecoveryDRAMBytes + st.Faults.RetriedDMABytes
				agg.recTime += st.Faults.RecoveryTime
				return nil
			})
			if err != nil {
				return nil, err
			}
			dagDL, nodeDL := 0.0, 0.0
			if done > 0 {
				dagDL = 100 * float64(dagsMet) / float64(done)
			}
			if nodesDone > 0 {
				nodeDL = 100 * float64(nodesMet) / float64(nodesDone)
			}
			mttr := 0.0
			if agg.recoveries > 0 {
				mttr = (agg.recTime / sim.Time(agg.recoveries)).Microseconds()
			}
			t.AddRow(fmt.Sprintf("%.2f", rate), pname,
				fmt.Sprintf("%d/%d", done, submitted),
				fmt.Sprintf("%d", aborted),
				f1(dagDL), f1(nodeDL),
				fmt.Sprintf("%d", agg.retries),
				fmt.Sprintf("%d", agg.wdog),
				fmt.Sprintf("%d", agg.deaths),
				f1(mttr),
				f2(float64(agg.recBytes)/1e6))
		}
	}
	return t, nil
}
