// relief-lint statically enforces the simulator's determinism, hot-path,
// and API invariants (see docs/LINTING.md). It runs in two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/relief-lint ./...               # human-readable, exit 1 on findings
//	go run ./cmd/relief-lint -json ./...         # machine-readable findings array
//	go run ./cmd/relief-lint -format sarif ./... # SARIF 2.1.0 log for code-scanning UIs
//
// As a vet tool, speaking cmd/go's unitchecker protocol (cross-package
// facts flow through the .cfg PackageVetx/VetxOutput files):
//
//	go build -o relief-lint ./cmd/relief-lint
//	go vet -vettool=$PWD/relief-lint ./...
//
// Findings are suppressed by a //lint:allow <analyzer> <reason> comment on
// the offending line or the line directly above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"relief/internal/lint"
	"relief/internal/lint/load"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file, line, col, analyzer, message)")
	format := flag.String("format", "", "output format: text (default), json, or sarif")
	vFlag := flag.String("V", "", "if 'full', print the tool version for cmd/go's build cache and exit")
	flagsFlag := flag.Bool("flags", false, "print the tool's flag definitions as JSON (cmd/go vet handshake) and exit")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *vFlag == "full":
		printVersion()
		return
	case *vFlag != "":
		fmt.Fprintf(os.Stderr, "relief-lint: unsupported flag -V=%s\n", *vFlag)
		os.Exit(2)
	case *flagsFlag:
		printFlagDefs()
		return
	}

	// Unitchecker mode: cmd/go vet invokes the tool with a single *.cfg
	// argument describing one package unit.
	if flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg") {
		unitcheck(flag.Arg(0), *jsonOut)
		return
	}

	mode := "text"
	switch {
	case *format != "":
		mode = *format
	case *jsonOut:
		mode = "json"
	}
	if mode != "text" && mode != "json" && mode != "sarif" {
		fmt.Fprintf(os.Stderr, "relief-lint: unknown -format %q (want text, json, or sarif)\n", mode)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relief-lint:", err)
		os.Exit(2)
	}
	findings, err := lint.RunPackages(fset, pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "relief-lint:", err)
		os.Exit(2)
	}
	emit(findings, mode)
	if len(findings) > 0 && mode == "text" {
		os.Exit(1)
	}
}

// emit prints findings with file paths relative to the working directory
// when possible. In json and sarif modes the output is always a
// well-formed document (possibly with zero results) so CI can parse it
// unconditionally.
func emit(findings []lint.Finding, mode string) {
	if cwd, err := os.Getwd(); err == nil {
		for i := range findings {
			if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				findings[i].File = rel
			}
		}
	}
	switch mode {
	case "json":
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "relief-lint:", err)
			os.Exit(2)
		}
	case "sarif":
		if err := writeSARIF(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "relief-lint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: relief-lint [-json] [-format text|json|sarif] [packages...]

Analyzers:
`)
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}

// printFlagDefs emits the analysisflags-style JSON flag listing cmd/go
// vet requests (via `relief-lint -flags`) to validate pass-through flags.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []jsonFlag{{Name: "json", Bool: true, Usage: "emit findings as a JSON array"}}
	data, _ := json.Marshal(defs)
	os.Stdout.Write(data)
	fmt.Println()
}
