// hotalloc fixture: functions annotated //relief:hotpath must not
// allocate; unannotated functions may. The interprocedural cases call
// same-package helpers (proven or not by the allocfree fixpoint) and the
// sim fixture package (facts crossing a package boundary).
package dram

import "relief/internal/sim"

type controller struct {
	queue []int
	cb    func()
}

func variadicSink(args ...interface{}) {}

// serve is the annotated hot loop: every allocating construct below must
// be diagnosed.
//
//relief:hotpath
func (c *controller) serve(n int) {
	c.queue = append(c.queue, n) // want `append may grow the backing array in hotpath function serve`
	s := make([]int, n)          // want `make\(\) allocates in hotpath function serve`
	_ = s
	p := new(int) // want `new\(\) allocates in hotpath function serve`
	_ = p
	c.cb = func() {} // want `closure allocated in hotpath function serve`
	lit := []int{n}  // want `slice/map literal allocates in hotpath function serve`
	_ = lit
	table := map[int]int{} // want `slice/map literal allocates in hotpath function serve`
	_ = table
	other := &controller{} // want `&composite literal escapes to the heap in hotpath function serve`
	_ = other
	boxed := interface{}(n) // want `conversion to interface boxes its operand in hotpath function serve`
	_ = boxed
	variadicSink(n) // want `argument boxed into interface parameter in hotpath function serve`
}

// pick is annotated but clean: struct values, index/selector addressing,
// and arithmetic never allocate.
//
//relief:hotpath
func (c *controller) pick(i int) int {
	c.queue[0] = i
	b := &c.queue[0]
	return *b + len(c.queue)
}

// drainAllowed carries per-site opt-outs with reasons.
//
//relief:hotpath
func (c *controller) drainAllowed(n int) {
	c.queue = append(c.queue, n) //lint:allow hotalloc growth is amortized; steady state never grows
}

// cold is not annotated: the same constructs draw no diagnostics.
func (c *controller) cold(n int) {
	c.queue = append(c.queue, n)
	_ = make([]int, n)
	_ = map[int]int{}
	c.cb = func() {}
	variadicSink(n)
}

// leak allocates, so it can never be proven alloc-free.
func leak() []int { return make([]int, 8) }

// tight is clean; the allocfree fixpoint proves it.
func tight(n int) int { return n * 2 }

// halve and shrink are clean mutual recursion: the optimistic fixpoint
// keeps the cycle provably alloc-free.
func halve(n int) int {
	if n <= 1 {
		return 0
	}
	return shrink(n / 2)
}

func shrink(n int) int { return halve(n - 1) }

// chase exercises the interprocedural check: proven same-package callees
// and the sim fixture's clean Kernel.Now pass, the allocating ones are
// flagged, and direct recursion is exempt (this body is checked here).
//
//relief:hotpath
func (c *controller) chase(k *sim.Kernel, n int) int {
	if n > 0 {
		return c.chase(k, n-1)
	}
	n = tight(n)
	n += halve(n)
	_ = k.Now()
	k.Schedule(sim.Time(n), c.cb) // want `call to sim\.Kernel\.Schedule, which is not proven alloc-free, in hotpath function chase`
	_ = leak()                    // want `call to leak, which is not proven alloc-free, in hotpath function chase`
	return n
}
