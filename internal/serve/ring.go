package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual nodes each member contributes to the
// ring. More vnodes smooth the key distribution and shrink the share of
// keys that move when membership changes, at a small lookup-table cost.
const ringVnodes = 64

// ring is a consistent-hash ring over replica base URLs. Placement is a
// pure function of the member set: every replica that knows the same fleet
// computes the same owner for a digest, regardless of the order its peer
// list was spelled in. Adding or removing one member remaps only the keys
// that land on (or leave) that member's vnodes — about 1/N of the space —
// while every other key keeps its owner.
type ring struct {
	members []string // sorted, deduplicated
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// newRing builds a ring over the given members (duplicates and empties are
// dropped). A ring over zero members is valid and owns nothing.
func newRing(members []string) *ring {
	seen := make(map[string]bool, len(members))
	r := &ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	for _, m := range r.members {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // total order even on (improbable) hash ties
	})
	return r
}

// owner returns the member that owns the key: the first vnode clockwise
// from the key's hash. Empty rings own nothing ("").
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].member
}

// ringHash maps a string onto the ring's keyspace: the first 8 bytes of its
// SHA-256, big-endian. SHA-256 keeps vnode placement uniform without a
// seeded hash (the ring must be identical across replicas and restarts).
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
