package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"relief/internal/sim"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Instant(Release, "x", "manager", 0, nil)
	r.Begin(TaskCompute, "x", "lane", 0, nil)
	r.End(TaskCompute, "x", "lane", 1)
	r.Span(Forward, "x", "lane", 0, 1, nil)
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must record nothing")
	}
}

func TestBeginEndPairing(t *testing.T) {
	r := NewRecorder()
	r.Begin(TaskCompute, "n1", "em#0", 10, nil)
	r.End(TaskCompute, "n1", "em#0", 25)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Start != 10 || evs[0].End != 25 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestDanglingBeginClosedAtExport(t *testing.T) {
	r := NewRecorder()
	r.Begin(TaskInput, "n1", "em#0", 10, nil)
	evs := r.Events()
	if evs[0].End != evs[0].Start {
		t.Fatalf("dangling interval not closed: %+v", evs[0])
	}
}

func TestEndWithoutBeginIgnored(t *testing.T) {
	r := NewRecorder()
	r.End(TaskCompute, "ghost", "em#0", 5)
	if r.Len() != 0 {
		t.Fatal("End without Begin recorded something")
	}
}

func TestEventsSortedByStart(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "b", "l", 20, 30, nil)
	r.Span(TaskCompute, "a", "l", 5, 10, nil)
	r.Instant(Release, "c", "l", 1, nil)
	evs := r.Events()
	if evs[0].Name != "c" || evs[1].Name != "a" || evs[2].Name != "b" {
		t.Fatalf("not sorted: %+v", evs)
	}
}

func TestKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		TaskCompute: "compute", TaskInput: "input-dma", Writeback: "writeback",
		Forward: "forward", Schedule: "schedule", Release: "release", Deadline: "deadline",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind should format")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "node1", "em#0", sim.Microsecond, 3*sim.Microsecond, nil)
	r.Instant(Release, "dag", "manager", 0, nil)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node1") || !strings.Contains(out, "dur=2.000us") {
		t.Fatalf("text output missing content:\n%s", out)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "node1", "em#0", sim.Microsecond, 3*sim.Microsecond,
		map[string]string{"edge": "forward"})
	r.Instant(Release, "dag", "manager", 0, nil)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 lane metadata records + 2 events.
	if len(out) != 4 {
		t.Fatalf("got %d records, want 4", len(out))
	}
	var compute map[string]any
	for _, rec := range out {
		if rec["cat"] == "compute" {
			compute = rec
		}
	}
	if compute == nil {
		t.Fatal("compute event missing")
	}
	if compute["ph"] != "X" || compute["dur"].(float64) != 2 || compute["ts"].(float64) != 1 {
		t.Fatalf("compute event wrong: %v", compute)
	}
	// Lanes get distinct thread ids.
	tids := map[float64]bool{}
	for _, rec := range out {
		if rec["ph"] == "M" {
			tids[rec["tid"].(float64)] = true
		}
	}
	if len(tids) != 2 {
		t.Fatalf("expected 2 lanes, got %d", len(tids))
	}
}

func TestOverlappingSameIdentityIntervals(t *testing.T) {
	// Two Begins with the same (kind,name,lane) before any End: End must
	// close the most recent open interval (LIFO), not clobber the first.
	r := NewRecorder()
	r.Begin(Schedule, "isr", "manager", 10, nil)
	r.Begin(Schedule, "isr", "manager", 20, nil)
	r.End(Schedule, "isr", "manager", 25) // closes the 20 interval
	r.End(Schedule, "isr", "manager", 40) // closes the 10 interval
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Start != 10 || evs[0].End != 40 {
		t.Errorf("outer interval = [%v,%v], want [10,40]", evs[0].Start, evs[0].End)
	}
	if evs[1].Start != 20 || evs[1].End != 25 {
		t.Errorf("inner interval = [%v,%v], want [20,25]", evs[1].Start, evs[1].End)
	}
}

func TestEventCapAndDroppedCounter(t *testing.T) {
	r := NewRecorder()
	r.SetMaxEvents(2)
	r.Span(TaskCompute, "a", "l", 0, 1, nil)
	r.Instant(Release, "b", "l", 2, nil)
	r.Span(TaskCompute, "c", "l", 3, 4, nil) // dropped
	r.Begin(TaskInput, "d", "l", 5, nil)     // dropped
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 events dropped (cap 2)") {
		t.Fatalf("text export missing dropped trailer:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace_dropped_events") {
		t.Fatalf("chrome export missing dropped metadata:\n%s", buf.String())
	}
}

func TestParseKindsAndFilter(t *testing.T) {
	ks, err := ParseKinds(" compute, writeback ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0] != TaskCompute || ks[1] != Writeback {
		t.Fatalf("ParseKinds = %v", ks)
	}
	if _, err := ParseKinds("compute,nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	events := []Event{
		{Kind: TaskCompute, Name: "a"},
		{Kind: Forward, Name: "b"},
		{Kind: Writeback, Name: "c"},
	}
	got := Filter(events, ks...)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("Filter = %+v", got)
	}
	if len(Filter(events)) != 3 {
		t.Fatal("empty kind set must keep everything")
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "n1", "em#0", sim.Microsecond, 3*sim.Microsecond, nil)
	r.Instant(Release, "dag", "manager", 0, nil)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if got != chromeGolden {
		t.Fatalf("chrome trace JSON changed.\ngot:  %s\nwant: %s", got, chromeGolden)
	}
}

func TestChromeTraceNonNegativeTsDur(t *testing.T) {
	// Pseudo-random event soup (fixed seed): whatever the recorder is fed —
	// including dangling Begins and unmatched Ends — the Chrome export must
	// only contain non-negative timestamps and durations.
	r := NewRecorder()
	x := uint64(12345)
	next := func(n uint64) uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x % n
	}
	names := []string{"a", "b", "c"}
	lanes := []string{"l0", "l1"}
	for i := 0; i < 500; i++ {
		k := Kind(next(8))
		name := names[next(3)]
		lane := lanes[next(2)]
		at := sim.Time(next(1000)) * sim.Microsecond
		switch next(4) {
		case 0:
			r.Begin(k, name, lane, at, nil)
		case 1:
			r.End(k, name, lane, at)
		case 2:
			r.Span(k, name, lane, at, at+sim.Time(next(100))*sim.Microsecond, nil)
		default:
			r.Instant(k, name, lane, at, nil)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, rec := range out {
		if ts, ok := rec["ts"].(float64); ok && ts < 0 {
			t.Fatalf("negative ts in %v", rec)
		}
		if dur, ok := rec["dur"].(float64); ok && dur < 0 {
			t.Fatalf("negative dur in %v", rec)
		}
	}
}

// chromeGolden locks the Chrome trace-event JSON encoding of a two-event
// recorder: lane metadata first (in first-seen order of the sorted events),
// then instants as ph="i" and spans as ph="X" with microsecond ts/dur.
const chromeGolden = `[{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"manager"}},{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"em#0"}},{"name":"dag","cat":"release","ph":"i","ts":0,"dur":0,"pid":1,"tid":1},{"name":"n1","cat":"compute","ph":"X","ts":1,"dur":2,"pid":1,"tid":2}]
`
