package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"relief/internal/exp"
)

// digestOf decodes raw JSON, normalizes, and digests — the handler's exact
// path to a cache key.
func digestOf(t *testing.T, raw string) string {
	t.Helper()
	var req Request
	if err := json.Unmarshal([]byte(raw), &req); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if err := req.Normalize(); err != nil {
		t.Fatalf("normalize %s: %v", raw, err)
	}
	return req.Digest()
}

// TestDigestFieldOrderIndependent: the digest is a function of the
// scenario, not of JSON spelling — reordered fields, whitespace, and
// explicitly-spelled defaults all hash identically.
func TestDigestFieldOrderIndependent(t *testing.T) {
	base := digestOf(t, `{"mix":"CGL","policy":"LAX","metrics":true,"fault_rate":0.01}`)
	same := []string{
		`{"fault_rate":0.01,"metrics":true,"policy":"LAX","mix":"CGL"}`,
		`{"metrics": true, "mix": "CGL", "fault_rate": 1e-2, "policy": "LAX"}`,
		// Defaults spelled out must not change the key.
		`{"mix":"CGL","policy":"LAX","metrics":true,"fault_rate":0.01,
		  "topology":"bus","bw":"max","fault_seed":1,"continuous":false}`,
		// timeout_ms is a delivery knob, excluded from the digest.
		`{"mix":"CGL","policy":"LAX","metrics":true,"fault_rate":0.01,"timeout_ms":5000}`,
	}
	for _, raw := range same {
		if d := digestOf(t, raw); d != base {
			t.Errorf("digest of %s = %s, want %s", raw, d, base)
		}
	}
}

// TestDigestSeparatesScenarios: any semantically different request must
// get a different content address.
func TestDigestSeparatesScenarios(t *testing.T) {
	seen := map[string]string{}
	for _, raw := range []string{
		`{"mix":"CGL"}`,
		`{"mix":"CLG"}`, // submission order is part of the scenario
		`{"mix":"CGL","policy":"LAX"}`,
		`{"mix":"CGL","continuous":true}`,
		`{"mix":"CGL","topology":"xbar"}`,
		`{"mix":"CGL","bw":"ewma"}`,
		`{"mix":"CGL","predict_dm":true}`,
		`{"mix":"CGL","no_forwarding":true}`,
		`{"mix":"CGL","detailed_dram":true}`,
		`{"mix":"CGL","detailed_dram":true,"dram_fcfs":true}`,
		`{"mix":"CGL","fault_rate":0.01}`,
		`{"mix":"CGL","fault_rate":0.01,"fault_seed":2}`,
		`{"mix":"CGL","metrics":true}`,
	} {
		d := digestOf(t, raw)
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision: %s and %s both hash to %s", prev, raw, d)
		}
		seen[d] = raw
	}
}

// TestDigestUsesExpScenarioKey: the serve digest hashes exactly the bytes
// exp.Sweep memoizes on (exp.AppendScenarioKey), plus a version prefix and
// the metrics bit. One canonicalization, two layers: two requests share a
// serve cache entry if and only if an exp sweep would share their result —
// which is what makes peer cache probes and sweep merges safe.
func TestDigestUsesExpScenarioKey(t *testing.T) {
	for _, raw := range []string{
		`{"mix":"CGL"}`,
		`{"mix":"CDH","policy":"LAX","topology":"xbar","bw":"ewma"}`,
		`{"mix":"GL","continuous":true,"detailed_dram":true,"dram_fcfs":true}`,
		`{"mix":"C","fault_rate":0.01,"fault_seed":7,"predict_dm":true,"no_forwarding":true}`,
	} {
		var a, b Request
		for _, req := range []*Request{&a, &b} {
			if err := json.Unmarshal([]byte(raw), req); err != nil {
				t.Fatal(err)
			}
			if err := req.Normalize(); err != nil {
				t.Fatal(err)
			}
		}
		scA, err := a.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		scB, err := b.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		// Same scenario key <=> same digest, in both directions.
		if exp.ScenarioKey(scA) != exp.ScenarioKey(scB) || a.Digest() != b.Digest() {
			t.Errorf("%s: identical requests disagree (key or digest)", raw)
		}
	}

	// Requests whose exp scenario keys differ must digest differently, and
	// requests mapping to the same scenario key must share a digest even
	// when spelled differently.
	spellings := map[string][]string{
		"same": {
			`{"mix":"CGL","fault_seed":3}`, // seed is inert at rate 0...
			`{"mix":"CGL","fault_seed":9}`,
		},
		"diff": {
			`{"mix":"CGL","fault_rate":0.01,"fault_seed":3}`, // ...and significant above it
			`{"mix":"CGL","fault_rate":0.01,"fault_seed":9}`,
		},
	}
	keyOf := func(raw string) (string, string) {
		var req Request
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			t.Fatal(err)
		}
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		sc, err := req.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		return exp.ScenarioKey(sc), req.Digest()
	}
	for name, pair := range spellings {
		k0, d0 := keyOf(pair[0])
		k1, d1 := keyOf(pair[1])
		if (k0 == k1) != (name == "same") || (d0 == d1) != (name == "same") {
			t.Errorf("%s pair: scenario-key equality %v, digest equality %v", name, k0 == k1, d0 == d1)
		}
		if (k0 == k1) != (d0 == d1) {
			t.Errorf("%s pair: digest and scenario key disagree — canonicalization has diverged", name)
		}
	}

	// The digest is versioned so a future key-schema change cannot silently
	// alias old cache entries.
	var req Request
	if err := json.Unmarshal([]byte(`{"mix":"C"}`), &req); err != nil {
		t.Fatal(err)
	}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d := req.Digest(); len(d) != 64 || strings.ContainsAny(d, "ABCDEF") {
		t.Errorf("digest %q is not lowercase hex sha256", d)
	}
}

// TestDigestIgnoresSeedWithoutFaults: the injection seed is meaningless at
// rate zero, so it must not fragment the cache.
func TestDigestIgnoresSeedWithoutFaults(t *testing.T) {
	a := digestOf(t, `{"mix":"C"}`)
	b := digestOf(t, `{"mix":"C","fault_seed":99}`)
	if a != b {
		t.Error("fault_seed changed the digest of a fault-free request")
	}
}

func TestNormalizeRejectsInvalid(t *testing.T) {
	for _, raw := range []string{
		`{}`,                           // no mix
		`{"mix":"Z"}`,                  // unknown symbol
		`{"mix":"CGLD"}`,               // too many apps
		`{"mix":"C","policy":"BOGUS"}`, // unknown policy
		`{"mix":"C","topology":"mesh"}`,
		`{"mix":"C","bw":"oracle"}`,
		`{"mix":"C","fault_rate":1.5}`,
		`{"mix":"C","fault_rate":-0.1}`,
		`{"mix":"C","timeout_ms":-1}`,
	} {
		var req Request
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if err := req.Normalize(); err == nil {
			t.Errorf("Normalize accepted %s", raw)
		}
	}
}

func TestLRUCache(t *testing.T) {
	c := newCache(2)
	ra, rb, rc := &Result{Text: "a"}, &Result{Text: "b"}, &Result{Text: "c"}
	c.add("a", ra)
	c.add("b", rb)
	if _, ok := c.get("a"); !ok { // touches a: b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", rc) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if got, ok := c.get("a"); !ok || got != ra {
		t.Error("a evicted or wrong value")
	}
	if got, ok := c.get("c"); !ok || got != rc {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Re-adding an existing key updates in place, no growth.
	c.add("a", rb)
	if got, _ := c.get("a"); got != rb || c.len() != 2 {
		t.Error("in-place update failed")
	}
}
