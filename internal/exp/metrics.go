package exp

import (
	"fmt"

	"relief/internal/metrics"
	"relief/internal/sim"
	"relief/internal/workload"
)

// MixBySyms resolves a mix label like "CGL" into its application list.
func MixBySyms(name string) ([]workload.App, error) {
	var mix []workload.App
	for i := 0; i < len(name); i++ {
		a, err := workload.BySym(name[i])
		if err != nil {
			return nil, err
		}
		mix = append(mix, a)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("exp: empty mix name")
	}
	return mix, nil
}

// AttributionStudy runs one high-contention mix under each policy with a
// fresh metrics registry and tabulates where node latency goes: scheduling
// wait, pure DMA transfer, DMA contention stall, compute, and write-back
// tail, as percentages of summed node latency. The study makes the paper's
// core claim directly observable: data movement-aware scheduling (RELIEF)
// shifts latency out of the DMA contention-stall column relative to
// movement-blind policies (FCFS). Registries are returned keyed by policy
// for export. interval <= 0 selects the default probe period.
func AttributionStudy(mixName string, policies []string, interval sim.Time) (*Table, map[string]*metrics.Registry, error) {
	mix, err := MixBySyms(mixName)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Latency attribution, mix %s, high contention", mixName),
		Note:  "Share of summed per-node latency (ReadyAt to finish) by component.",
		Cols: []string{"policy", "nodes", "sched-wait%", "dma-pure%",
			"dma-stall%", "compute%", "writeback%", "p95-node-us"},
	}
	regs := make(map[string]*metrics.Registry, len(policies))
	for _, p := range policies {
		r := metrics.NewRegistry()
		_, err := Run(Scenario{
			Mix:             mix,
			Contention:      workload.High,
			Policy:          p,
			Metrics:         r,
			MetricsInterval: interval,
		})
		if err != nil {
			return nil, nil, err
		}
		regs[p] = r
		a := r.Attribution()
		tot := &a.Total
		wait, pure, stall, comp, wb := tot.Shares()
		p95 := 0.0
		if h := r.FindHistogram("relief_node_latency_us"); h != nil {
			p95 = h.Quantile(0.95)
		}
		t.AddRow(p,
			fmt.Sprintf("%d", tot.Nodes),
			fmt.Sprintf("%.1f", wait),
			fmt.Sprintf("%.1f", pure),
			fmt.Sprintf("%.1f", stall),
			fmt.Sprintf("%.1f", comp),
			fmt.Sprintf("%.1f", wb),
			fmt.Sprintf("%.1f", p95))
	}
	return t, regs, nil
}
