package manager

import (
	"fmt"

	"relief/internal/accel"
	"relief/internal/fault"
	"relief/internal/graph"
	"relief/internal/mem"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/xbar"
)

// Instance is one physical accelerator: a fixed-function unit with a DMA
// engine and a multi-buffered output scratchpad (paper Table IV metadata).
type Instance struct {
	m     *Manager
	Index int // interconnect endpoint id
	Kind  accel.Kind
	Busy  bool
	// LastNode is the previously executed node, tracked for colocation.
	LastNode *graph.Node
	// Parts are the output scratchpad partitions (multi-buffering).
	Parts []*OutBuf
	// NextPart rotates through output partitions.
	NextPart int
	// ComputeBusy accumulates pure compute time for occupancy (Fig. 7).
	ComputeBusy sim.Time
	// Health tracks the instance through fault injection; a Dead instance
	// is permanently unschedulable.
	Health accel.Health

	// curNode is the node currently launched on the instance (nil when
	// idle), tracked so instance death can strand it for the watchdog.
	curNode *graph.Node

	dmaQueue []dmaJob
	dmaBusy  bool
}

// OutBuf is one output scratchpad partition.
type OutBuf struct {
	// Node whose output occupies the partition (nil = free/invalidated).
	Node *graph.Node
	// OngoingReads counts consumers currently forwarding from the
	// partition; the partition cannot be overwritten while non-zero
	// (write-after-read protection, paper Table IV ongoing_reads).
	OngoingReads int
	drainWaiters []func()
}

type dmaJob struct {
	path  []mem.Server
	bytes int64
	// dram marks a main-memory transfer (eligible for injected DRAM error
	// stalls when the fixed-bandwidth memory model is in use).
	dram bool
	done func(mem.TransferResult)
}

func newInstance(m *Manager, index int, kind accel.Kind, partitions int) *Instance {
	inst := &Instance{m: m, Index: index, Kind: kind}
	for i := 0; i < partitions; i++ {
		inst.Parts = append(inst.Parts, &OutBuf{})
	}
	return inst
}

// Lane returns the instance's display label for traces.
func (inst *Instance) Lane() string {
	return fmt.Sprintf("%s#%d", inst.Kind, inst.Index)
}

// enqueueDMA serialises a transfer on the instance's single DMA engine.
// dram marks main-memory transfers for DRAM-error injection.
func (inst *Instance) enqueueDMA(path []mem.Server, bytes int64, dram bool, done func(mem.TransferResult)) {
	inst.dmaQueue = append(inst.dmaQueue, dmaJob{path: path, bytes: bytes, dram: dram, done: done})
	if !inst.dmaBusy {
		inst.dmaBusy = true
		inst.nextDMA()
	}
}

// maxDMARetries bounds corruption-triggered re-transfers per job so a
// pathological corruption rate cannot loop forever.
const maxDMARetries = 8

func (inst *Instance) nextDMA() {
	if len(inst.dmaQueue) == 0 {
		inst.dmaBusy = false
		return
	}
	job := inst.dmaQueue[0]
	inst.dmaQueue = inst.dmaQueue[1:]
	inst.startDMA(job, 0)
}

// startDMA runs one DMA job, re-running it on injected CRC failures (the
// engine detects the corruption at transfer end and retries, charging the
// repeat traffic to recovery stats).
func (inst *Instance) startDMA(job dmaJob, attempt int) {
	m := inst.m
	var fi mem.FaultInjector
	setup := m.cfg.DMASetup
	if m.inj != nil {
		fi = m.inj
		if job.dram && m.dram == nil {
			// Fixed-bandwidth memory model: charge injected DRAM error
			// bursts as front-end stall (the detailed controller injects
			// them itself via SetFault).
			setup += m.inj.DRAM(job.bytes)
		}
	}
	mem.StartTransferFI(m.k, job.path, job.bytes, setup, fi, func(res mem.TransferResult) {
		if res.Corrupt && attempt < maxDMARetries {
			m.st.Faults.RetriedDMABytes += job.bytes
			if m.cfg.Trace.Enabled() {
				m.cfg.Trace.Instant(trace.Fault, "dma-crc", inst.Lane(), res.End, nil)
			}
			inst.startDMA(job, attempt+1)
			return
		}
		job.done(res)
		inst.nextDMA()
	})
}

// readDrained registers fn to run once no consumer is reading the
// partition.
func (b *OutBuf) readDrained(fn func()) {
	if b.OngoingReads == 0 {
		fn()
		return
	}
	b.drainWaiters = append(b.drainWaiters, fn)
}

func (b *OutBuf) endRead() {
	b.OngoingReads--
	if b.OngoingReads == 0 {
		ws := b.drainWaiters
		b.drainWaiters = nil
		for _, fn := range ws {
			fn()
		}
	}
}

// launch drives a node onto the instance: the driver programs input DMA
// transfers (forwarding from producer scratchpads when the data is still
// live, falling back to main memory otherwise), reclaims the output
// partition (writing back a still-needed previous result first), then runs
// the computation.
func (m *Manager) launch(n *graph.Node, inst *Instance) {
	inst.Busy = true
	inst.curNode = n
	n.State = graph.Running
	n.StartAt = m.k.Now()
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Begin(trace.TaskInput, n.String(), inst.Lane(), n.StartAt, nil)
	}
	ns := m.state(n)
	ns.pendingInputs = 1 // sentinel, released after all gates are set up
	ns.gateFired = false
	ns.hung = false
	ns.computeStart, ns.computeDur = 0, 0
	ns.dmaPure, ns.dmaStall = 0, 0
	ns.attempt++
	att := ns.attempt
	if m.inj != nil {
		ns.verdict = m.inj.Task()
		m.armWatchdog(n, inst, att)
	}

	// Output partition reclaim.
	part := inst.NextPart
	inst.NextPart = (inst.NextPart + 1) % len(inst.Parts)
	buf := inst.Parts[part]
	if old := buf.Node; old != nil {
		os := m.state(old)
		if !m.cfg.DisableForwarding && !os.wbDone && !os.wbInFlight &&
			!old.IsLeaf() && os.fetched < len(old.Children) {
			// Unconsumed intermediate result about to be overwritten:
			// write it back to main memory first.
			m.startWriteback(old, inst, func() {})
		}
		if os.wbInFlight {
			ns.pendingInputs++
			os.wbWaiters = append(os.wbWaiters, func() { m.inputDone(n, inst, part, att) })
		}
		if buf.OngoingReads > 0 {
			ns.pendingInputs++
			buf.readDrained(func() { m.inputDone(n, inst, part, att) })
		}
	}

	// Input edges.
	m.st.BaselineBytes += n.TotalInputBytes() + n.OutputBytes
	app := m.st.App(n.DAG.App, n.DAG.Sym, n.DAG.Deadline)
	for i, p := range n.Parents {
		bytes := n.EdgeInBytes[i]
		m.fetchEdge(n, inst, part, p, bytes, app, att)
	}
	if n.ExtraInputBytes > 0 {
		ns.pendingInputs++
		m.dramRead(n, inst, part, n.ExtraInputBytes, att)
	}

	m.inputDone(n, inst, part, att) // release the sentinel
}

// fetchEdge classifies one producer edge (colocation / forward / main
// memory) and programs the consumer-side DMA accordingly.
func (m *Manager) fetchEdge(n *graph.Node, inst *Instance, part int, p *graph.Node, bytes int64, app *stats.AppStats, att int) {
	ns := m.state(n)
	ps := m.state(p)
	live := !m.cfg.DisableForwarding && m.outputLive(p)
	switch {
	case live && ps.inst == inst:
		// Colocation: the consumer runs on the producer's accelerator and
		// the data is already in the local scratchpad — no data movement.
		m.st.RecordEdge(app, stats.EdgeColocation)
		ps.fetched++
	case live:
		// Forward: consumer DMA reads directly from the producer's
		// scratchpad over the interconnect.
		m.st.RecordEdge(app, stats.EdgeForward)
		ps.fetched++
		pbuf := ps.inst.Parts[ps.part]
		pbuf.OngoingReads++
		ns.pendingInputs++
		path := m.ic.Path(ps.inst.Index, inst.Index)
		inst.enqueueDMA(path, bytes, false, func(res mem.TransferResult) {
			pbuf.endRead()
			if m.cfg.Trace.Enabled() {
				m.cfg.Trace.Span(trace.Forward, p.String()+"->"+n.String(), inst.Lane(), res.Start, res.End, nil)
			}
			m.st.SpadXferBytes += bytes
			m.noteSpadBytes(2 * bytes) // producer read + consumer write
			ns.actualMemTime += res.End - res.Start
			ns.actualBytes += bytes
			if m.met != nil {
				m.noteDMAInput(ns, path, bytes, res)
			}
			m.inputDone(n, inst, part, att)
		})
	default:
		// The producer's result lives only in main memory. If its
		// write-back is still in flight the read waits for it.
		m.st.RecordEdge(app, stats.EdgeDRAM)
		ps.fetched++
		ns.pendingInputs++
		if ps.wbInFlight {
			m.state(p).wbWaiters = append(ps.wbWaiters, func() {
				m.dramReadStarted(n, inst, part, bytes, att)
			})
		} else {
			m.dramReadStarted(n, inst, part, bytes, att)
		}
	}
}

// dramRead issues a main-memory read that was already counted in
// pendingInputs.
func (m *Manager) dramRead(n *graph.Node, inst *Instance, part int, bytes int64, att int) {
	m.dramReadStarted(n, inst, part, bytes, att)
}

func (m *Manager) dramReadStarted(n *graph.Node, inst *Instance, part int, bytes int64, att int) {
	ns := m.state(n)
	path := m.ic.Path(xbar.EndpointDRAM, inst.Index)
	inst.enqueueDMA(path, bytes, true, func(res mem.TransferResult) {
		m.st.DRAMReadBytes += bytes
		m.noteSpadBytes(bytes) // consumer scratchpad write
		m.observeDRAMTransfer(res)
		ns.actualMemTime += res.End - res.Start
		ns.actualBytes += bytes
		ns.dramBytes += bytes
		ns.dramTime += res.End - res.Start
		if m.met != nil {
			m.noteDMAInput(ns, path, bytes, res)
		}
		m.inputDone(n, inst, part, att)
	})
}

// inputDone decrements the launch gate; when it reaches zero the
// computation starts. att is the launch attempt the callback belongs to:
// transfers programmed for a superseded attempt (recovered by the
// watchdog while their data was still in flight) complete their physical
// bookkeeping but no longer gate anything.
func (m *Manager) inputDone(n *graph.Node, inst *Instance, part int, att int) {
	ns := m.state(n)
	if att != ns.attempt {
		return
	}
	ns.pendingInputs--
	if ns.pendingInputs > 0 || ns.gateFired {
		return
	}
	ns.gateFired = true
	// The partition is now being overwritten: invalidate the previous
	// occupant so late consumers fall back to main memory.
	inst.Parts[part].Node = nil
	if n.DAG.Aborted {
		// The DAG was cancelled while inputs streamed in: release the
		// accelerator, run nothing.
		m.isr(func() sim.Time {
			inst.Busy = false
			inst.curNode = nil
			return 0
		})
		return
	}
	if ns.hung || inst.Health == accel.Dead {
		// The instance died during the input phase; the watchdog will
		// recover the task.
		ns.hung = true
		return
	}
	if m.inj != nil && m.computeFault(n, inst) {
		return
	}
	dur := m.jitteredCompute(n)
	if ns.verdict == fault.VerdictSlow {
		dur = sim.Time(float64(dur) * m.inj.SlowFactor())
		m.st.Faults.Slowdowns++
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.Instant(trace.Fault, "slow:"+n.String(), inst.Lane(), m.k.Now(), nil)
		}
	}
	inst.ComputeBusy += dur
	ns.computeStart = m.k.Now()
	ns.computeDur = dur
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.End(trace.TaskInput, n.String(), inst.Lane(), m.k.Now())
		m.cfg.Trace.Span(trace.TaskCompute, n.String(), inst.Lane(), m.k.Now(), m.k.Now()+dur, nil)
	}
	ns.compEv = m.k.Schedule(dur, func() { m.complete(n, inst, part, dur) })
}

// jitteredCompute applies the deterministic per-task compute-time variation.
func (m *Manager) jitteredCompute(n *graph.Node) sim.Time {
	if m.cfg.ComputeJitter == 0 {
		return n.Compute
	}
	h := splitmix64(uint64(n.ID+1)*0x9E3779B97F4A7C15 ^
		hashString(n.DAG.App) ^ uint64(n.DAG.Iteration)<<32)
	// Map to [-1, 1).
	f := float64(int64(h>>11))/float64(1<<52) - 1
	return sim.Time(float64(n.Compute) * (1 + m.cfg.ComputeJitter*f))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// complete handles a task-completion interrupt: record the output's
// location, update colocation tracking, advance children, make the
// write-back decision, and free the accelerator.
func (m *Manager) complete(n *graph.Node, inst *Instance, part int, computeDur sim.Time) {
	ns := m.state(n)
	ns.compEv = nil
	m.disarmWatchdog(ns)
	inst.curNode = nil
	if n.DAG.Aborted {
		m.isr(func() sim.Time {
			inst.Busy = false
			return 0
		})
		return
	}
	if ns.verdict == fault.VerdictFail {
		// The task ran to the end but its result failed validation
		// (transient fault): discard and retry.
		m.st.Faults.TransientFails++
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.Instant(trace.Fault, "fail:"+n.String(), inst.Lane(), m.k.Now(), nil)
		}
		m.recover(n, inst, "transient failure")
		return
	}
	ns.inst = inst
	ns.part = part
	inst.Parts[part].Node = n
	inst.LastNode = n
	m.st.PredErr.ObserveCompute(n.Compute, computeDur)

	var newlyReady []*graph.Node
	for _, c := range n.Children {
		c.CompletedParents++
		if c.CompletedParents == len(c.Parents) {
			c.ReadyAt = m.k.Now()
			newlyReady = append(newlyReady, c)
		}
	}

	m.isr(func() sim.Time {
		// The finishing accelerator is idle from the scheduler's point of
		// view: its instance count participates in max_forwards and in the
		// next-in-line write-back test.
		inst.Busy = false
		var cost sim.Time
		if m.esc != nil && len(newlyReady) > 0 {
			for _, c := range newlyReady {
				m.preparePrediction(c)
			}
			scanned, _ := m.esc.EnqueueReady(m.qptrs, newlyReady, m.idleCount, m.k.Now())
			per := m.cfg.SchedPerFwd
			if len(newlyReady) > 0 {
				per += m.cfg.SchedPerScan * sim.Time(scanned/len(newlyReady))
			}
			for range newlyReady {
				c := m.cfg.SchedBase + per
				m.st.SchedCosts = append(m.st.SchedCosts, c)
				if m.metSchedCost != nil {
					m.metSchedCost.Observe(c.Microseconds())
				}
				cost += c
			}
		} else {
			for _, c := range newlyReady {
				cost += m.insertPlain(c)
			}
		}

		// Write-back decision (paper §III-C2 manager runtime): leaves
		// always write back (the final output must reach main memory);
		// intermediates write back immediately unless every child is next
		// in line for execution.
		switch {
		case n.IsLeaf():
			m.startWriteback(n, inst, func() { m.finishNode(n) })
		case m.cfg.AlwaysWriteBack || m.cfg.DisableForwarding || !m.allChildrenNextInLine(n):
			m.startWriteback(n, inst, func() {})
			m.finishNode(n)
		default:
			m.finishNode(n)
		}
		return cost
	})
}

// allChildrenNextInLine reports whether every child of n sits within the
// first idle-instance positions of its ready queue, i.e. is guaranteed to
// run next and forward the data.
func (m *Manager) allChildrenNextInLine(n *graph.Node) bool {
	for _, c := range n.Children {
		if c.State != graph.Ready {
			return false
		}
		q := m.queues[c.Kind]
		limit := m.idleCount(int(c.Kind))
		if limit > len(q) {
			limit = len(q)
		}
		found := false
		for i := 0; i < limit; i++ {
			if q[i] == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// startWriteback DMA-copies a node's output from its scratchpad partition
// to main memory.
func (m *Manager) startWriteback(n *graph.Node, inst *Instance, done func()) {
	ns := m.state(n)
	if ns.wbDone || ns.wbInFlight {
		done()
		return
	}
	ns.wbInFlight = true
	path := m.ic.Path(inst.Index, xbar.EndpointDRAM)
	inst.enqueueDMA(path, n.OutputBytes, true, func(res mem.TransferResult) {
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.Span(trace.Writeback, n.String(), inst.Lane(), res.Start, res.End, nil)
		}
		ns.wbInFlight = false
		ns.wbDone = true
		m.st.DRAMWriteBytes += n.OutputBytes
		m.noteSpadBytes(n.OutputBytes) // producer scratchpad read
		m.observeDRAMTransfer(res)
		ns.actualMemTime += res.End - res.Start
		ns.actualBytes += n.OutputBytes
		ns.dramBytes += n.OutputBytes
		ns.dramTime += res.End - res.Start
		if m.met != nil {
			m.noteDMAXfer(path, n.OutputBytes, res)
		}
		ws := ns.wbWaiters
		ns.wbWaiters = nil
		for _, fn := range ws {
			fn()
		}
		done()
	})
}

// finishNode finalises a node: deadline accounting, predictor error
// accounting, DAG completion, and continuous-contention resubmission.
func (m *Manager) finishNode(n *graph.Node) {
	now := m.k.Now()
	n.State = graph.Done
	n.FinishAt = now
	n.ActualRuntime = now - n.StartAt
	ns := m.state(n)

	m.st.NodesDone++
	app := m.st.App(n.DAG.App, n.DAG.Sym, n.DAG.Deadline)
	app.NodesDone++
	if now <= n.Deadline {
		m.st.NodesMetDeadline++
		app.NodesMetDeadline++
	}
	m.st.PredErr.ObserveDMBytes(ns.predBytes, ns.actualBytes)
	m.st.PredErr.ObserveMemTime(ns.predMemTime, ns.actualMemTime)
	if ns.dramTime > 0 {
		achieved := float64(ns.dramBytes) / ns.dramTime.Seconds()
		m.st.PredErr.ObserveBW(ns.predBW, achieved)
	}
	if ns.failAt > 0 {
		// The node recovered from at least one fault: time from first
		// failure to completion is its repair time (MTTR numerator).
		m.st.Faults.RecoveryTime += now - ns.failAt
		m.st.Faults.Recoveries++
	}
	if m.met != nil {
		m.observeAttribution(n, ns, now)
	}

	if n.DAG.NodeDone(now) {
		m.inFlight--
		m.dropActive(n.DAG)
		app.Iterations++
		app.Runtimes = append(app.Runtimes, n.DAG.Runtime())
		if n.DAG.MetDeadline() {
			app.DeadlinesMet++
		}
		if m.lastDone < now {
			m.lastDone = now
		}
		if m.horizon > 0 && now < m.horizon {
			if rb := m.rebuild[n.DAG.App]; rb != nil {
				if next := rb(); next != nil {
					next.Iteration = n.DAG.Iteration + 1
					if err := m.submit(next, now, rb, false); err != nil && m.err == nil {
						m.err = err
					}
				} else if m.err == nil {
					m.err = fmt.Errorf("manager: rebuild of %s returned nil DAG", n.DAG.App)
				}
			}
		}
	}
}

// Run drains the simulation (all submitted DAGs to completion) and records
// makespan and interconnect occupancy. Returns the end time.
func (m *Manager) Run() sim.Time {
	m.k.Run()
	m.met.FinalSample(m.k.Now())
	m.st.Makespan = m.lastDone
	if m.st.Makespan == 0 {
		m.st.Makespan = m.k.Now()
	}
	m.st.ComputeBusy = m.totalComputeBusy()
	m.st.InterconnectOccupancy = m.ic.Occupancy()
	m.st.EventsFired = m.k.Fired()
	m.st.EventAllocs = m.k.EventAllocs()
	m.mergeFaultCounts()
	return m.k.Now()
}

// RunContinuous runs with DAG resubmission until the horizon (paper §IV-C:
// 50 ms, results for finished tasks only).
func (m *Manager) RunContinuous(horizon sim.Time) sim.Time {
	m.horizon = horizon
	m.k.RunUntil(horizon)
	m.met.FinalSample(m.k.Now())
	m.st.Makespan = horizon
	m.st.ComputeBusy = m.totalComputeBusy()
	m.st.InterconnectOccupancy = m.ic.Occupancy()
	m.st.EventsFired = m.k.Fired()
	m.st.EventAllocs = m.k.EventAllocs()
	m.mergeFaultCounts()
	return m.k.Now()
}

// mergeFaultCounts copies the injector's low-level event counters into the
// run's stats at end of simulation.
func (m *Manager) mergeFaultCounts() {
	if m.inj == nil {
		return
	}
	c := m.inj.Counts()
	m.st.Faults.DMAStalls = c.DMAStalls
	m.st.Faults.DMACorruptions = c.DMACorruptions
	m.st.Faults.DRAMErrors = c.DRAMErrors
}

func (m *Manager) totalComputeBusy() sim.Time {
	var total sim.Time
	for _, inst := range m.insts {
		total += inst.ComputeBusy
	}
	return total
}

// Instances exposes the accelerator instances (read-only use).
func (m *Manager) Instances() []*Instance { return m.insts }
