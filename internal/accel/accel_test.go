package accel

import (
	"math"
	"testing"
	"testing/quick"

	"relief/internal/sim"
)

func TestKindNames(t *testing.T) {
	want := map[Kind]string{
		ISP:          "isp",
		Grayscale:    "grayscale",
		Convolution:  "convolution",
		ElemMatrix:   "elem-matrix",
		CannyNonMax:  "canny-non-max",
		HarrisNonMax: "harris-non-max",
		EdgeTracking: "edge-tracking",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind should still format")
	}
	if len(AllKinds()) != int(NumKinds) {
		t.Errorf("AllKinds() has %d entries, want %d", len(AllKinds()), NumKinds)
	}
}

func TestOpNames(t *testing.T) {
	if OpMac.String() != "mac" || OpSigmoid.String() != "sigmoid" || OpDefault.String() != "default" {
		t.Error("op names wrong")
	}
	if Op(200).String() == "" {
		t.Error("out-of-range op should still format")
	}
}

func TestSPADSizesMatchPaper(t *testing.T) {
	// Paper Table I scratchpad sizes.
	want := map[Kind]int64{
		CannyNonMax:  262144,
		Convolution:  196708,
		EdgeTracking: 98432,
		ElemMatrix:   262144,
		Grayscale:    180224,
		HarrisNonMax: 196608,
		ISP:          115204,
	}
	for k, bytes := range want {
		if SPADBytes[k] != bytes {
			t.Errorf("SPAD[%v] = %d, want %d", k, SPADBytes[k], bytes)
		}
	}
}

// TestComputeTimeCalibration checks the per-task compute times against the
// paper's Table II accelerator rows.
func TestComputeTimeCalibration(t *testing.T) {
	us := func(v float64) sim.Time { return sim.Time(v * float64(sim.Microsecond)) }
	cases := []struct {
		kind   Kind
		filter int
		want   sim.Time
	}{
		{CannyNonMax, 0, us(443.02)},
		{Convolution, 5, us(1545.61)},
		{EdgeTracking, 0, us(324.73)},
		{ElemMatrix, 0, us(10.94)},
		{Grayscale, 0, us(10.26)},
		{HarrisNonMax, 0, us(105.01)},
		{ISP, 0, us(34.88)},
	}
	for _, c := range cases {
		got := ComputeTime(c.kind, OpDefault, 128*128, c.filter)
		if math.Abs(float64(got-c.want)) > float64(sim.Nanosecond) {
			t.Errorf("ComputeTime(%v) = %v, want %v", c.kind, got, c.want)
		}
	}
}

func TestConvolutionFilterScaling(t *testing.T) {
	t5 := ComputeTime(Convolution, OpDefault, 128*128, 5)
	t3 := ComputeTime(Convolution, OpDefault, 128*128, 3)
	// 3x3 = 9/25 of the 5x5 cost.
	want := sim.Time(int64(t5) * 9 / 25)
	if t3 != want {
		t.Errorf("3x3 convolution = %v, want %v", t3, want)
	}
	// Unspecified filter defaults to 5x5.
	if ComputeTime(Convolution, OpDefault, 128*128, 0) != t5 {
		t.Error("default filter size is not 5")
	}
}

func TestComputeTimePixelScaling(t *testing.T) {
	full := ComputeTime(ElemMatrix, OpAdd, 128*128, 0)
	half := ComputeTime(ElemMatrix, OpAdd, 64*128, 0)
	if half != full/2 {
		t.Errorf("half-size task = %v, want %v", half, full/2)
	}
	// Non-positive pixels falls back to the 128x128 reference.
	if ComputeTime(ElemMatrix, OpAdd, 0, 0) != full {
		t.Error("zero pixels should use the reference size")
	}
}

// TestQuickComputeTimeMonotone: compute time is monotonically non-decreasing
// in pixel count and always positive.
func TestQuickComputeTimeMonotone(t *testing.T) {
	f := func(rawA, rawB uint16, kindRaw uint8) bool {
		a := int(rawA%4096) + 1
		b := int(rawB%4096) + 1
		if a > b {
			a, b = b, a
		}
		kind := Kind(kindRaw % uint8(NumKinds))
		ta := ComputeTime(kind, OpDefault, a, 3)
		tb := ComputeTime(kind, OpDefault, b, 3)
		return ta > 0 && tb >= ta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
