// relief-serve exposes the simulator as an HTTP/JSON service: POST a
// scenario to /run and get the same summary and relief-metrics/1 document
// the CLIs produce, deduplicated across concurrent identical requests and
// cached by content digest. See docs/SERVING.md.
//
// With -peers the replica joins a fleet: every scenario digest is placed on
// one owner by consistent hashing, non-owned requests probe the owner's
// cache and forward to it, and POST /sweep fans a whole grid out across the
// fleet (see "Cluster mode" in docs/SERVING.md).
//
// With -cache-dir the result cache spills write-through to disk, so a
// restarted replica warm-starts from its previous results instead of
// re-simulating them. -chaos injects seeded faults into outbound peer
// traffic for resilience drills (see "Resilience" in docs/SERVING.md).
//
// Usage:
//
//	relief-serve -addr 127.0.0.1:8080
//	relief-serve -addr 127.0.0.1:0 -workers 4 -cache 256
//	relief-serve -addr 127.0.0.1:8081 -peers http://127.0.0.1:8082,http://127.0.0.1:8083
//	relief-serve -addr 127.0.0.1:8080 -cache-dir /var/lib/relief/cache
//	relief-serve -peers ... -chaos '{"seed":7,"drop_rate":0.1,"error_rate":0.05}'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relief/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue capacity (full queue returns 429)")
	cacheCap := flag.Int("cache", 128, "result cache capacity in entries")
	cacheDir := flag.String("cache-dir", "", "durable result-cache directory (write-through spill; restart warm-starts from it)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-simulation wall-clock budget")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before cancelling runs")
	peers := flag.String("peers", "", "comma-separated peer base URLs; enables cluster mode")
	self := flag.String("self", "", "this replica's advertised base URL in cluster mode (default http://<listen addr>)")
	breaker := flag.Int("breaker-threshold", 0, "consecutive peer failures that open its circuit breaker (0 = default 3)")
	chaos := flag.String("chaos", "", "JSON chaos plan injected into outbound peer traffic, e.g. '{\"seed\":7,\"drop_rate\":0.1}'")
	flag.Parse()

	var transport http.RoundTripper
	if *chaos != "" {
		var plan serve.ChaosPlan
		if err := json.Unmarshal([]byte(*chaos), &plan); err != nil {
			fatal(fmt.Errorf("parsing -chaos plan: %w", err))
		}
		transport = serve.NewChaosTransport(plan, nil)
		fmt.Printf("relief-serve: chaos plan active: %s\n", *chaos)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	s := serve.New(serve.Config{
		Workers:          *workers,
		QueueCap:         *queue,
		CacheCap:         *cacheCap,
		Timeout:          *timeout,
		PeerTransport:    transport,
		BreakerThreshold: *breaker,
	})
	if *cacheDir != "" {
		restored, err := s.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal(fmt.Errorf("opening -cache-dir: %w", err))
		}
		fmt.Printf("relief-serve: disk cache %s (%d entries restored)\n", *cacheDir, restored)
	}
	if *peers != "" {
		adv := *self
		if adv == "" {
			adv = "http://" + l.Addr().String()
		}
		var ps []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ps = append(ps, p)
			}
		}
		s.ConfigureCluster(adv, ps)
		fmt.Printf("relief-serve: cluster mode, self=%s peers=%s\n", adv, strings.Join(ps, ","))
	}
	// Printed before serving so scripts using an ephemeral port can scrape
	// the actual address.
	fmt.Printf("relief-serve: listening on http://%s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()

	select {
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		fmt.Println("relief-serve: draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Drain(dctx); err != nil {
			fatal(err)
		}
		<-errCh // http.ErrServerClosed
		fmt.Println("relief-serve: stopped")
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-serve: %v\n", err)
	os.Exit(1)
}
