// lockcheck cross-package fixture: the guardedby fact exported for
// guard.Registry.Entries reaches importing packages, so foreign accesses
// are held to the same discipline.
package guarduser

import "relief/internal/guard"

// Size reads the guarded field without the lock.
func Size(r *guard.Registry) int {
	return len(r.Entries) // want `r\.Entries is guarded by r\.Mu, which is not held here`
}

// Snapshot reads under the read lock, which facts-imported guards accept.
func Snapshot(r *guard.Registry) map[string]int {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	out := make(map[string]int, len(r.Entries))
	for k, v := range r.Entries {
		out[k] = v
	}
	return out
}
