package manager

import (
	"fmt"

	"relief/internal/graph"
	"relief/internal/mem"
	"relief/internal/sim"
)

// registerMetrics wires the manager's state into the metrics registry.
// Everything here is func-backed: the periodic probe (and each export)
// reads live simulator state, so registration costs nothing on the
// simulation hot path. Called once from New when cfg.Metrics is set.
func (m *Manager) registerMetrics() {
	r := m.met
	r.SetPolicy(m.policy.Name())

	// Cached histograms for hot-path observations.
	m.metSchedCost = r.Histogram("relief_sched_cost_us",
		"Modeled manager-microcontroller cost per ready-queue operation, in microseconds.")
	m.metDMAXfer = r.Histogram("relief_dma_transfer_us",
		"Idle-SoC (pure) transfer time per DMA, in microseconds.")
	m.metDMAStall = r.Histogram("relief_dma_stall_us",
		"Contention stall per DMA (observed duration minus setup and pure transfer), in microseconds.")

	// Manager progress and ready queues.
	r.CounterFunc("relief_nodes_done_total",
		"DAG nodes completed.",
		func() float64 { return float64(m.st.NodesDone) })
	r.CounterFunc("relief_nodes_deadline_met_total",
		"Completed nodes that met their deadline.",
		func() float64 { return float64(m.st.NodesMetDeadline) })
	r.CounterFunc("relief_edges_forwarded_total",
		"Edges materialised as SPAD-to-SPAD forwards.",
		func() float64 { return float64(m.st.Forwards) })
	r.CounterFunc("relief_edges_colocated_total",
		"Edges satisfied by colocation (no data movement).",
		func() float64 { return float64(m.st.Colocations) })
	for kind := range m.queues {
		k := kind
		r.GaugeFunc(fmt.Sprintf("relief_ready_queue_len{kind=%q}", m.byKindName(k)),
			"Ready-queue length per accelerator kind.",
			func() float64 { return float64(len(m.queues[k])) })
	}

	// Accelerator instances and scratchpads.
	for _, inst := range m.insts {
		in := inst
		r.GaugeFunc(fmt.Sprintf("relief_instance_busy{inst=%q}", in.Lane()),
			"1 while a node occupies the instance, else 0.",
			func() float64 {
				if in.Busy {
					return 1
				}
				return 0
			})
		r.CounterFunc(fmt.Sprintf("relief_instance_compute_busy_us{inst=%q}", in.Lane()),
			"Cumulative pure compute time per instance, in microseconds.",
			func() float64 { return in.ComputeBusy.Microseconds() })
	}
	r.GaugeFunc("relief_spad_occupied_frac",
		"Fraction of output scratchpad partitions holding a live result.",
		func() float64 {
			total, occ := 0, 0
			for _, inst := range m.insts {
				for _, b := range inst.Parts {
					total++
					if b.Node != nil {
						occ++
					}
				}
			}
			if total == 0 {
				return 0
			}
			return float64(occ) / float64(total)
		})

	// Interconnect.
	r.GaugeFunc("relief_interconnect_busy_frac",
		"Fraction of elapsed time with at least one interconnect link busy.",
		func() float64 { return m.ic.Occupancy() })
	r.CounterFunc("relief_interconnect_claims_total",
		"Analytic DMA claims installed on interconnect links.",
		func() float64 { c, _ := m.ic.ClaimStats(); return float64(c) })
	r.CounterFunc("relief_interconnect_claim_conflicts_total",
		"Claims folded back to chunk-wise service by a colliding stream.",
		func() float64 { _, c := m.ic.ClaimStats(); return float64(c) })

	// Main memory (both models satisfy mem.Server; the queue length needs a
	// narrow assertion because it is not part of the Server contract).
	dramSrv := m.ic.DRAM()
	r.CounterFunc("relief_dram_bytes_total",
		"Bytes drained by the main-memory server.",
		func() float64 { return float64(dramSrv.BytesServed()) })
	r.GaugeFunc("relief_dram_busy_frac",
		"Fraction of elapsed time the main-memory server spent serving.",
		func() float64 {
			now := m.k.Now()
			if now == 0 {
				return 0
			}
			return float64(dramSrv.BusyTime()) / float64(now)
		})
	r.GaugeFunc("relief_dram_achieved_gbps",
		"Average achieved main-memory bandwidth since t=0, in GB/s.",
		func() float64 {
			now := m.k.Now()
			if now == 0 {
				return 0
			}
			return float64(dramSrv.BytesServed()) / now.Seconds() / mem.GB
		})
	if ql, ok := dramSrv.(interface{ QueueLen() int }); ok {
		r.GaugeFunc("relief_dram_queue_len",
			"Requests waiting at (or being served by) the main-memory server.",
			func() float64 { return float64(ql.QueueLen()) })
	}
	if dc := m.dram; dc != nil {
		for i := 0; i < dc.Channels(); i++ {
			ch := i
			r.GaugeFunc(fmt.Sprintf("relief_dram_channel_queue_len{ch=\"%d\"}", ch),
				"Per-channel pending request count (detailed DRAM).",
				func() float64 { return float64(dc.ChannelQueueLen(ch)) })
			r.GaugeFunc(fmt.Sprintf("relief_dram_channel_busy_frac{ch=\"%d\"}", ch),
				"Per-channel busy fraction (detailed DRAM).",
				func() float64 {
					now := m.k.Now()
					if now == 0 {
						return 0
					}
					return float64(dc.ChannelBusyTime(ch)) / float64(now)
				})
		}
		r.CounterFunc("relief_dram_row_hits_total",
			"Bursts that hit an open row (detailed DRAM).",
			func() float64 { return float64(dc.RowHits) })
		r.CounterFunc("relief_dram_row_misses_total",
			"Bursts that required activate (detailed DRAM).",
			func() float64 { return float64(dc.RowMisses) })
		r.CounterFunc("relief_dram_refreshes_total",
			"Refresh windows charged (detailed DRAM).",
			func() float64 { return float64(dc.Refreshes) })
	}

	// Fault injection and recovery (all zero without a plan).
	r.CounterFunc("relief_watchdog_fires_total",
		"Watchdog expirations that triggered recovery.",
		func() float64 { return float64(m.st.Faults.WatchdogFires) })
	r.CounterFunc("relief_task_retries_total",
		"Task re-dispatch attempts.",
		func() float64 { return float64(m.st.Faults.Retries) })
	r.CounterFunc("relief_dags_aborted_total",
		"DAG instances cancelled by recovery.",
		func() float64 { return float64(m.st.Faults.DAGsAborted) })
	r.CounterFunc("relief_instance_deaths_total",
		"Accelerator instances permanently lost.",
		func() float64 { return float64(m.st.Faults.InstanceDeaths) })
}

// byKindName returns the accel kind name for ready-queue labels.
func (m *Manager) byKindName(kind int) string {
	if len(m.byKind[kind]) > 0 {
		return m.byKind[kind][0].Kind.String()
	}
	return fmt.Sprintf("kind%d", kind)
}

// noteDMAInput attributes one completed input transfer: the pure component
// is the front-end setup plus the idle-SoC pipeline time of the path; the
// stall is whatever queueing, bandwidth sharing, row misses, refreshes —
// and, under fault injection, injected stall bursts — added on top. Both
// are accumulated on the node for attribution and fed to the DMA
// histograms. Only called when m.met != nil.
func (m *Manager) noteDMAInput(ns *nodeState, path []mem.Server, bytes int64, res mem.TransferResult) {
	dur := res.End - res.Start
	pure := m.cfg.DMASetup + mem.UnloadedTime(path, bytes)
	if pure > dur {
		pure = dur
	}
	ns.dmaPure += pure
	ns.dmaStall += dur - pure
	m.metDMAXfer.Observe(pure.Microseconds())
	m.metDMAStall.Observe((dur - pure).Microseconds())
}

// noteDMAXfer feeds the DMA histograms for a transfer that is not part of
// any node's input phase (write-backs). Only called when m.met != nil.
func (m *Manager) noteDMAXfer(path []mem.Server, bytes int64, res mem.TransferResult) {
	dur := res.End - res.Start
	pure := m.cfg.DMASetup + mem.UnloadedTime(path, bytes)
	if pure > dur {
		pure = dur
	}
	m.metDMAXfer.Observe(pure.Microseconds())
	m.metDMAStall.Observe((dur - pure).Microseconds())
}

// observeAttribution decomposes a finished node's end-to-end latency into
// scheduling wait, pure DMA transfer, DMA contention stall, compute, and
// writeback/completion tail, and adds the split to the registry's
// per-application attribution record. The five components sum exactly to
// finish-ReadyAt: the input phase (StartAt to compute start) splits into
// the node's accumulated pure-transfer time and the contention remainder
// (DMA-engine queueing, shared-link stalls, write-back waits); everything
// after compute end — deferred write-back of leaves, ISR wait for the
// completion interrupt — lands in the writeback tail. Only called when
// m.met != nil.
func (m *Manager) observeAttribution(n *graph.Node, ns *nodeState, now sim.Time) {
	wait := n.StartAt - n.ReadyAt
	if wait < 0 {
		wait = 0
	}
	computeStart := ns.computeStart
	if computeStart < n.StartAt {
		computeStart = n.StartAt
	}
	inputPhase := computeStart - n.StartAt
	pure := ns.dmaPure
	if pure > inputPhase {
		pure = inputPhase
	}
	stall := inputPhase - pure
	compute := ns.computeDur
	wb := now - (computeStart + compute)
	if wb < 0 {
		wb = 0
		compute = now - computeStart
	}
	m.met.ObserveNodeLatency(n.DAG.App, wait, pure, stall, compute, wb)
}
