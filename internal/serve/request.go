// Package serve exposes the simulator as an HTTP/JSON service: a worker
// pool sized to the host executes scenario requests, identical in-flight
// requests are deduplicated (singleflight), and completed results are kept
// in a content-addressed LRU cache keyed by the canonical digest of the
// normalized request. The service adds backpressure (bounded admission
// queue, 429 + Retry-After), per-request timeouts and cancellation threaded
// into the simulation kernel, graceful drain, and a Prometheus /metrics
// endpoint built on internal/metrics.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"relief/internal/exp"
	"relief/internal/fault"
	"relief/internal/predict"
	"relief/internal/sim"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// Request describes one simulation, mirroring relief-sim's flags. The zero
// value of every optional field means the same thing as the CLI default, so
// Normalize maps it to the canonical spelling before digesting: requests
// that differ only in how they spell a default hash identically.
type Request struct {
	// Mix is the application mix by symbols, e.g. "CGL".
	Mix string `json:"mix"`
	// Policy is the scheduling policy ("" = RELIEF).
	Policy string `json:"policy,omitempty"`
	// Continuous loops applications until the 50 ms horizon.
	Continuous bool `json:"continuous,omitempty"`
	// Topology is "bus" or "xbar" ("" = bus).
	Topology string `json:"topology,omitempty"`
	// BW is the bandwidth predictor: max, last, average, ewma ("" = max).
	BW string `json:"bw,omitempty"`
	// PredictDM enables the graph-analysis data-movement predictor.
	PredictDM bool `json:"predict_dm,omitempty"`
	// NoForwarding disables forwarding hardware.
	NoForwarding bool `json:"no_forwarding,omitempty"`
	// DetailedDRAM swaps in the bank-level LPDDR5 controller; DRAMFCFS
	// demotes its scheduler to FCFS.
	DetailedDRAM bool `json:"detailed_dram,omitempty"`
	DRAMFCFS     bool `json:"dram_fcfs,omitempty"`
	// FaultRate in [0,1] enables fault injection (0 = off) with FaultSeed
	// seeding the injection PRNG (0 = the CLI default seed 1).
	FaultRate float64 `json:"fault_rate,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
	// PeriodMS selects periodic release (relief-sim's -period): a fresh
	// instance of each mix application every period until HorizonMS
	// (0 = the 50 ms default). Periodic requests take precedence over
	// Continuous and are the only ones the sweep checkpoint pool can fork
	// from a shared warmed snapshot (docs/CHECKPOINT.md).
	PeriodMS  float64 `json:"period_ms,omitempty"`
	HorizonMS float64 `json:"horizon_ms,omitempty"`
	// Metrics attaches a telemetry registry and returns its
	// relief-metrics/1 JSON document in the response.
	Metrics bool `json:"metrics,omitempty"`
	// TimeoutMS bounds this request's simulation wall time. It is a
	// delivery knob, not part of the scenario: it is excluded from the
	// digest, and deduplicated joiners share the first requester's budget.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace captures the kernel's simulated-time events for this request's
	// distributed trace (GET /trace/{id} returns them alongside the
	// wall-clock service spans). Like TimeoutMS it is a delivery knob,
	// excluded from the digest: it changes what is recorded, never what is
	// simulated, and joiners share the creating request's setting. Events
	// are only captured when the request actually runs the kernel locally
	// (source "run") — cache, disk, and peer answers have no kernel leg.
	Trace bool `json:"trace,omitempty"`
}

// Normalize rewrites defaultable fields to their canonical spelling and
// validates the request. It must be called before Digest or Scenario.
func (r *Request) Normalize() error {
	apps, err := workload.ParseMix(r.Mix)
	if err != nil {
		return err
	}
	if len(apps) < 1 || len(apps) > 3 {
		return fmt.Errorf("serve: mix %q has %d applications, want 1-3", r.Mix, len(apps))
	}
	if r.Policy == "" {
		r.Policy = "RELIEF"
	}
	if _, err := exp.NewPolicy(r.Policy); err != nil {
		return err
	}
	switch r.Topology {
	case "":
		r.Topology = "bus"
	case "bus", "xbar":
	default:
		return fmt.Errorf("serve: unknown topology %q", r.Topology)
	}
	switch r.BW {
	case "":
		r.BW = "max"
	case "max", "last", "average", "ewma":
	default:
		return fmt.Errorf("serve: unknown bandwidth predictor %q", r.BW)
	}
	if r.FaultRate < 0 || r.FaultRate > 1 {
		return fmt.Errorf("serve: fault rate %v outside [0,1]", r.FaultRate)
	}
	if r.FaultRate == 0 {
		r.FaultSeed = 0 // seed is meaningless without injection
	} else if r.FaultSeed == 0 {
		r.FaultSeed = 1 // the CLI's default seed
	}
	if r.PeriodMS < 0 {
		return fmt.Errorf("serve: negative period %vms", r.PeriodMS)
	}
	if r.HorizonMS < 0 {
		return fmt.Errorf("serve: negative horizon %vms", r.HorizonMS)
	}
	if r.PeriodMS == 0 {
		r.HorizonMS = 0 // horizon is meaningless without periodic release
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout %dms", r.TimeoutMS)
	}
	return nil
}

// Digest returns the canonical content address of the normalized request:
// a sha256 over the scenario's canonical key (exp.AppendScenarioKey — the
// exact bytes exp.Sweep memoizes on, so the serving cache and the sweep
// cache can never key the same scenario differently) plus the metrics bit.
// JSON field order, whitespace, and defaulted-vs-omitted fields cannot
// change it. TimeoutMS is excluded — it shapes delivery, not the result.
func (r *Request) Digest() string {
	b := []byte("relief-serve/2|")
	sc, err := r.Scenario()
	if err != nil {
		// Unreachable after a successful Normalize (Scenario re-parses the
		// same mix); folding the error in keeps the function total without
		// ever colliding with a real scenario key.
		b = append(b, "invalid|"...)
		b = append(b, err.Error()...)
	} else {
		b = exp.AppendScenarioKey(b, sc)
	}
	b = append(b, '|')
	b = appendBool(b, r.Metrics)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// Scenario maps the normalized request onto the experiment harness exactly
// the way relief-sim maps its flags, so served results match the CLI's.
func (r *Request) Scenario() (exp.Scenario, error) {
	apps, err := workload.ParseMix(r.Mix)
	if err != nil {
		return exp.Scenario{}, err
	}
	sc := exp.Scenario{
		Mix:               apps,
		Contention:        workload.Contention(len(apps)),
		Policy:            r.Policy,
		BWPredictor:       r.BW,
		DisableForwarding: r.NoForwarding,
		DetailedDRAM:      r.DetailedDRAM,
		DRAMFCFS:          r.DRAMFCFS,
	}
	if r.FaultRate > 0 {
		sc.Faults = fault.Profile(r.FaultRate, r.FaultSeed)
	}
	if r.Continuous {
		sc.Contention = workload.Continuous
	}
	if r.PredictDM {
		sc.DM = predict.DMPredict
	}
	if r.Topology == "xbar" {
		sc.Topology = xbar.Crossbar
	}
	if r.PeriodMS > 0 {
		sc.Period = msToTime(r.PeriodMS)
		sc.Horizon = msToTime(r.HorizonMS)
	}
	return sc, nil
}

// msToTime converts a fractional-millisecond knob to simulated time
// (integer picoseconds; fractions below 1 ps truncate).
func msToTime(ms float64) sim.Time { return sim.Time(ms * float64(sim.Millisecond)) }
