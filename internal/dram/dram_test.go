package dram

import (
	"testing"
	"testing/quick"

	"relief/internal/mem"
	"relief/internal/sim"
)

func TestImplementsServer(t *testing.T) {
	var _ mem.Server = (*Controller)(nil)
}

func TestPolicyString(t *testing.T) {
	if FRFCFS.String() != "fr-fcfs" || FCFS.String() != "fcfs" {
		t.Fatal("policy names wrong")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry accepted")
		}
	}()
	NewController(sim.NewKernel(), "bad", Config{})
}

func TestZeroByteRequestCompletes(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, "dram", LPDDR5())
	ran := false
	c.Enqueue(0, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("zero-byte request never completed")
	}
}

// TestSequentialStreamBandwidth: one sequential stream achieves close to
// the calibrated ~6.4 GB/s effective bandwidth.
func TestSequentialStreamBandwidth(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, "dram", LPDDR5())
	const total = 1 << 20 // 1 MiB
	var end sim.Time
	c.Enqueue(total, func() { end = k.Now() })
	k.Run()
	bw := float64(total) / end.Seconds()
	if bw < 5.5e9 || bw > 8e9 {
		t.Errorf("sequential bandwidth = %.2f GB/s, want ~6.4", bw/1e9)
	}
	if hr := c.RowHitRate(); hr < 0.9 {
		t.Errorf("sequential stream row-hit rate = %.2f, want > 0.9", hr)
	}
	if c.BytesServed() != total {
		t.Errorf("BytesServed = %d", c.BytesServed())
	}
	if c.BusyTime() != end {
		t.Errorf("BusyTime = %v, want %v (continuously busy)", c.BusyTime(), end)
	}
}

// TestRowMissesCostMore: a stream of single-burst requests scattered across
// rows is slower than a dense stream of equal size.
func TestRowMissesCostMore(t *testing.T) {
	run := func(requests int, perReq int64) sim.Time {
		k := sim.NewKernel()
		c := NewController(k, "dram", LPDDR5())
		remaining := requests
		var end sim.Time
		for i := 0; i < requests; i++ {
			c.Enqueue(perReq, func() {
				remaining--
				if remaining == 0 {
					end = k.Now()
				}
			})
		}
		k.Run()
		return end
	}
	cfg := LPDDR5()
	dense := run(1, 64*cfg.PageBytes)              // few row misses
	scattered := run(int(64*cfg.PageBytes/64), 64) // cursor still sequential...
	_ = scattered
	// Scattered-by-row: issue bursts that each land on a fresh row by
	// spacing requests a full bank-stride apart.
	k := sim.NewKernel()
	c := NewController(k, "dram", LPDDR5())
	n := 128
	remaining := n
	var end sim.Time
	for i := 0; i < n; i++ {
		// Advance the allocation cursor a whole row set between bursts.
		c.cursor += cfg.PageBytes * int64(cfg.Banks)
		c.Enqueue(64, func() {
			remaining--
			if remaining == 0 {
				end = k.Now()
			}
		})
	}
	k.Run()
	perBurstScattered := float64(end) / float64(n)
	perBurstDense := float64(dense) / float64(64*cfg.PageBytes/64)
	if perBurstScattered < 2*perBurstDense {
		t.Errorf("row-missing bursts (%.0fps) not much slower than dense (%.0fps)",
			perBurstScattered, perBurstDense)
	}
	if c.RowHitRate() > 0.05 {
		t.Errorf("scattered stream hit rate = %.2f, want ~0", c.RowHitRate())
	}
}

// TestFRFCFSBeatsFCFSUnderInterleaving: two interleaved streams finish
// sooner with FR-FCFS because row hits are served first.
func TestFRFCFSBeatsFCFSUnderInterleaving(t *testing.T) {
	run := func(p Policy) sim.Time {
		k := sim.NewKernel()
		cfg := LPDDR5()
		cfg.Policy = p
		c := NewController(k, "dram", cfg)
		// Interleave many small requests from two "streams" by alternating
		// cursor jumps, creating row-conflict patterns FCFS serves in
		// arrival order.
		const reqs = 64
		remaining := 2 * reqs
		var end sim.Time
		done := func() {
			remaining--
			if remaining == 0 {
				end = k.Now()
			}
		}
		for i := 0; i < reqs; i++ {
			c.Enqueue(256, done) // stream A: sequential-ish
			c.cursor += cfg.PageBytes*int64(cfg.Banks)/2 + 64
			c.Enqueue(256, done) // stream B: far away
		}
		k.Run()
		return end
	}
	fr := run(FRFCFS)
	fc := run(FCFS)
	if fr > fc {
		t.Errorf("FR-FCFS (%v) slower than FCFS (%v)", fr, fc)
	}
}

// TestRequestCompletionCounts: every request's done fires exactly once.
func TestRequestCompletionCounts(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, "dram", LPDDR5())
	count := 0
	for i := 0; i < 50; i++ {
		c.Enqueue(int64(1+i*137), func() { count++ })
	}
	k.Run()
	if count != 50 {
		t.Fatalf("completed %d of 50 requests", count)
	}
	if c.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", c.QueueLen())
	}
}

// TestServiceTimeLowerBound: actual service is never faster than the
// unloaded estimate.
func TestQuickServiceLowerBound(t *testing.T) {
	f := func(raw uint32) bool {
		n := int64(raw%1_000_000) + 1
		k := sim.NewKernel()
		c := NewController(k, "dram", LPDDR5())
		var end sim.Time
		c.Enqueue(n, func() { end = k.Now() })
		k.Run()
		return end >= c.ServiceTime(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestIdleGapAccounting: busy time excludes idle gaps between bursts.
func TestIdleGapAccounting(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, "dram", LPDDR5())
	c.Enqueue(64, func() {})
	k.Run()
	firstBusy := c.BusyTime()
	k.Schedule(10*sim.Microsecond, func() { c.Enqueue(64, func() {}) })
	k.Run()
	if c.BusyTime() >= 10*sim.Microsecond {
		t.Errorf("BusyTime %v includes the idle gap", c.BusyTime())
	}
	if c.BusyTime() <= firstBusy {
		t.Error("second burst not accounted")
	}
}

// TestMultiChannelScales: two channels roughly double concurrent-stream
// throughput.
func TestMultiChannelScales(t *testing.T) {
	run := func(channels int) sim.Time {
		k := sim.NewKernel()
		cfg := LPDDR5()
		cfg.Channels = channels
		cfg.TREFI = 0 // isolate channel scaling
		c := NewController(k, "dram", cfg)
		const total = 1 << 20
		remaining := 4
		var end sim.Time
		for i := 0; i < 4; i++ {
			c.Enqueue(total/4, func() {
				remaining--
				if remaining == 0 {
					end = k.Now()
				}
			})
		}
		k.Run()
		return end
	}
	one := run(1)
	two := run(2)
	if float64(two) > 0.7*float64(one) {
		t.Errorf("2 channels (%v) not meaningfully faster than 1 (%v)", two, one)
	}
}

// TestRefreshCostsThroughput: refresh steals ~tRFC/tREFI of bandwidth and
// closes rows.
func TestRefreshCostsThroughput(t *testing.T) {
	run := func(refresh bool) (sim.Time, int64) {
		k := sim.NewKernel()
		cfg := LPDDR5()
		if !refresh {
			cfg.TREFI = 0
		}
		c := NewController(k, "dram", cfg)
		var end sim.Time
		c.Enqueue(1<<20, func() { end = k.Now() })
		k.Run()
		return end, c.Refreshes
	}
	without, r0 := run(false)
	with, r1 := run(true)
	if r0 != 0 {
		t.Fatalf("refresh fired with TREFI=0: %d", r0)
	}
	if r1 == 0 {
		t.Fatal("no refreshes over a 160us stream")
	}
	// Refresh adds ~tRFC/tREFI of stall but also pre-closes rows (the
	// precharge is folded into tRFC), so the net effect on a streaming
	// access pattern is small in either direction — assert it stays
	// within a few percent.
	delta := float64(with-without) / float64(without)
	if delta < -0.05 || delta > 0.12 {
		t.Errorf("refresh changed stream time by %.1f%%, expect a few percent", 100*delta)
	}
}
