package fault

import (
	"testing"

	"relief/internal/sim"
)

// drawSequence exercises every draw path of an injector and records the
// outcomes, so two injectors can be compared draw-for-draw.
func drawSequence(in *Injector, n int) []int {
	seq := make([]int, 0, 3*n)
	for i := 0; i < n; i++ {
		seq = append(seq, int(in.Task()))
		stall, corrupt := in.Transfer(65536)
		c := 0
		if corrupt {
			c = 1
		}
		seq = append(seq, int(stall), c, int(in.DRAM(4096)))
	}
	return seq
}

func TestSameSeedSameDraws(t *testing.T) {
	p := Profile(0.2, 42)
	a := drawSequence(p.NewInjector(), 500)
	b := drawSequence(p.NewInjector(), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	if q := Profile(0.2, 43); drawSeqEqual(a, drawSequence(q.NewInjector(), 500)) {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

func drawSeqEqual(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestZeroRateConsumesNoDraws is the heart of the zero-rate neutrality
// guarantee: a disabled fault class must not advance the PRNG, so mixing
// zero-rate calls between live draws changes nothing.
func TestZeroRateConsumesNoDraws(t *testing.T) {
	p := &Plan{Seed: 7} // all rates zero
	in := p.NewInjector()
	for i := 0; i < 100; i++ {
		if v := in.Task(); v != VerdictNone {
			t.Fatalf("zero-rate Task drew %v", v)
		}
		if stall, corrupt := in.Transfer(1 << 20); stall != 0 || corrupt {
			t.Fatal("zero-rate Transfer injected")
		}
		if d := in.DRAM(64); d != 0 {
			t.Fatal("zero-rate DRAM injected")
		}
	}
	if c := in.Counts(); c != (Counts{}) {
		t.Fatalf("zero-rate counts non-zero: %+v", c)
	}

	// Only the DRAM class enabled: interleaving the (disabled) task and
	// transfer draws must not perturb the DRAM sequence.
	dramOnly := &Plan{Seed: 9, Rates: Rates{DRAMError: 0.5}}
	solo := dramOnly.NewInjector()
	mixed := dramOnly.NewInjector()
	for i := 0; i < 200; i++ {
		want := solo.DRAM(64)
		mixed.Task()
		mixed.Transfer(65536)
		if got := mixed.DRAM(64); got != want {
			t.Fatalf("draw %d: disabled classes consumed randomness (%d vs %d)", i, got, want)
		}
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.Task() != VerdictNone {
		t.Fatal("nil Task")
	}
	if s, c := in.Transfer(1); s != 0 || c {
		t.Fatal("nil Transfer")
	}
	if in.DRAM(1) != 0 {
		t.Fatal("nil DRAM")
	}
	if in.Counts() != (Counts{}) {
		t.Fatal("nil Counts")
	}
	var p *Plan
	if p.Active() {
		t.Fatal("nil plan active")
	}
	if p.NewInjector() != nil {
		t.Fatal("nil plan materialised an injector")
	}
}

func TestAppendKeyDistinct(t *testing.T) {
	keys := map[string]*Plan{}
	for _, p := range []*Plan{
		nil,
		{},
		{Seed: 1},
		{Seed: 1, Rates: Rates{TaskHang: 0.1}},
		{Seed: 1, Rates: Rates{TaskSlow: 0.1}},
		{Seed: 1, Rates: Rates{TaskHang: 0.1, SlowFactor: 2}},
		Profile(0.05, 1),
		Profile(0.05, 2),
		Profile(0.10, 1),
		{Seed: 1, DieAt: map[int]sim.Time{0: sim.Microsecond}},
		{Seed: 1, DieAt: map[int]sim.Time{1: sim.Microsecond}},
		{Seed: 1, DieAt: map[int]sim.Time{0: 2 * sim.Microsecond}},
	} {
		k := string(p.AppendKey(nil))
		if prev, dup := keys[k]; dup {
			t.Fatalf("plans %+v and %+v collide on key %q", prev, p, k)
		}
		keys[k] = p
	}
	// Map iteration order must not leak into the key.
	a := &Plan{DieAt: map[int]sim.Time{3: 1, 1: 2, 2: 3}}
	b := &Plan{DieAt: map[int]sim.Time{2: 3, 3: 1, 1: 2}}
	if string(a.AppendKey(nil)) != string(b.AppendKey(nil)) {
		t.Fatal("DieAt encoding depends on map iteration order")
	}
}

func TestProfileSanity(t *testing.T) {
	p := Profile(0.1, 5)
	if !p.Active() {
		t.Fatal("profile inactive")
	}
	r := p.Rates
	if r.TaskHang != 0.05 || r.TaskFail != 0.1 || r.InstanceDeath != 0.004 {
		t.Fatalf("unexpected profile scaling: %+v", r)
	}
	if r.SlowFactor != 4 || r.DMAStallTime != 20*sim.Microsecond || r.DRAMErrorTime != 2*sim.Microsecond {
		t.Fatalf("profile defaults wrong: %+v", r)
	}
	if (&Plan{Seed: 3}).Active() {
		t.Fatal("zero-rate plan reported active")
	}
	if !(&Plan{DieAt: map[int]sim.Time{0: 1}}).Active() {
		t.Fatal("DieAt-only plan reported inactive")
	}
}

// TestInjectorDefaults checks NewInjector fills the documented defaults
// for plans that enable a class but leave its magnitude zero.
func TestInjectorDefaults(t *testing.T) {
	p := &Plan{Seed: 1, Rates: Rates{DMAStall: 1, DMACorrupt: 0, DRAMError: 1, TaskSlow: 1}}
	in := p.NewInjector()
	if in.SlowFactor() != 4 {
		t.Fatalf("SlowFactor default = %v, want 4", in.SlowFactor())
	}
	stall, _ := in.Transfer(1)
	if stall != 20*sim.Microsecond {
		t.Fatalf("DMA stall default = %v, want 20us", stall)
	}
	if d := in.DRAM(1); d != 2*sim.Microsecond {
		t.Fatalf("DRAM error default = %v, want 2us", d)
	}
	if c := in.Counts(); c.DMAStalls != 1 || c.DRAMErrors != 1 {
		t.Fatalf("counts = %+v", c)
	}
}
