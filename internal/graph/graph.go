// Package graph implements the task-DAG model that applications submit to
// the hardware manager: nodes (paper Table III), edges carrying
// producer/consumer buffers, critical-path analysis, and the three deadline
// assignment schemes used by the evaluated policies (DAG deadline,
// critical-path-method node deadlines, and HetSched sub-deadline ratios).
package graph

import (
	"fmt"

	"relief/internal/accel"
	"relief/internal/sim"
)

// State tracks a node through its lifetime.
type State uint8

// Node lifecycle states.
const (
	Waiting State = iota // dependencies outstanding
	Ready                // in a ready queue
	Running              // launched on an accelerator
	Done
)

// Node is one task in an application DAG, executed by a single accelerator.
// It mirrors the paper's node structure (Table III) plus the scheduling
// state the hardware manager maintains at run time.
type Node struct {
	ID   int
	Name string
	Kind accel.Kind
	Op   accel.Op
	// FilterSize is the convolution filter edge length (convolution only).
	FilterSize int
	// Pixels is the element count of the primary input (default 128*128).
	Pixels int

	Parents  []*Node
	Children []*Node
	// EdgeInBytes[i] is the number of bytes received from Parents[i].
	EdgeInBytes []int64
	// ExtraInputBytes are loaded from main memory regardless of forwarding
	// (weights, fresh camera frames on root nodes).
	ExtraInputBytes int64
	// OutputBytes is the size of the node's result buffer.
	OutputBytes int64

	// Compute is the nominal compute latency, filled by DAG.Finalize.
	Compute sim.Time
	// RelDeadline is the node deadline relative to DAG release, filled by
	// AssignDeadlines.
	RelDeadline sim.Time

	DAG *DAG

	// ---- run-time scheduling state (owned by the manager) ----

	State            State
	CompletedParents int
	// Deadline is the absolute node deadline (release + RelDeadline).
	Deadline sim.Time
	// PredRuntime is the predicted execution time used for laxity.
	PredRuntime sim.Time
	// Laxity is the stored laxity key (Deadline - PredRuntime); the paper
	// subtracts current time when comparing, and RELIEF's feasibility check
	// mutates it when escalations consume slack (Algorithm 2, line 14).
	Laxity sim.Time
	// IsFwd marks a node escalated to the queue front by RELIEF.
	IsFwd bool

	ReadyAt, StartAt, FinishAt sim.Time
	// ActualRuntime is StartAt..FinishAt, for predictor error accounting.
	ActualRuntime sim.Time
}

// NumEdgesIn returns the number of producer edges into the node.
func (n *Node) NumEdgesIn() int { return len(n.Parents) }

// TotalInputBytes is the data the node consumes: all parent edges plus
// DRAM-resident extra inputs.
func (n *Node) TotalInputBytes() int64 {
	total := n.ExtraInputBytes
	for _, b := range n.EdgeInBytes {
		total += b
	}
	return total
}

// IsLeaf reports whether the node has no children (its output is the
// application's final result and must be written back).
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsRoot reports whether the node has no parents.
func (n *Node) IsRoot() bool { return len(n.Parents) == 0 }

func (n *Node) String() string {
	return fmt.Sprintf("%s/%s#%d", n.DAG.App, n.Name, n.ID)
}

// DAG is an application task graph with a deadline.
type DAG struct {
	App string // application name, e.g. "canny"
	Sym string // single-letter symbol used in the paper's mixes (C D G H L)
	// Deadline is relative to release time (paper Table V).
	Deadline sim.Time
	Nodes    []*Node

	// Release is the absolute submission time, set by the manager.
	Release sim.Time
	// FinishAt is when the last node completed (0 until then).
	FinishAt sim.Time
	// Iteration distinguishes re-submissions under continuous contention.
	Iteration int

	// Aborted marks a DAG cancelled by the manager's recovery machinery
	// (retries exhausted or a required accelerator kind permanently dead);
	// AbortReason says why.
	Aborted     bool
	AbortReason string

	doneCount int
}

// New creates an empty DAG with the given identity and relative deadline.
func New(app, sym string, deadline sim.Time) *DAG {
	return &DAG{App: app, Sym: sym, Deadline: deadline}
}

// AddNode appends a node to the DAG wired to the given parents. Edge sizes
// default to each parent's OutputBytes and can be adjusted afterwards.
func (d *DAG) AddNode(name string, kind accel.Kind, op accel.Op, outputBytes int64, parents ...*Node) *Node {
	n := &Node{
		ID:          len(d.Nodes),
		Name:        name,
		Kind:        kind,
		Op:          op,
		Pixels:      128 * 128,
		OutputBytes: outputBytes,
		DAG:         d,
	}
	for _, p := range parents {
		if p == nil {
			panic("graph: nil parent")
		}
		n.Parents = append(n.Parents, p)
		n.EdgeInBytes = append(n.EdgeInBytes, p.OutputBytes)
		p.Children = append(p.Children, n)
	}
	d.Nodes = append(d.Nodes, n)
	return n
}

// Roots returns the nodes with no parents.
func (d *DAG) Roots() []*Node {
	var rs []*Node
	for _, n := range d.Nodes {
		if n.IsRoot() {
			rs = append(rs, n)
		}
	}
	return rs
}

// Leaves returns the nodes with no children.
func (d *DAG) Leaves() []*Node {
	var ls []*Node
	for _, n := range d.Nodes {
		if n.IsLeaf() {
			ls = append(ls, n)
		}
	}
	return ls
}

// NumEdges counts producer/consumer edges, the denominator of the paper's
// "forwards / edges" metric (Fig. 4).
func (d *DAG) NumEdges() int {
	total := 0
	for _, n := range d.Nodes {
		total += len(n.Parents)
	}
	return total
}

// Finalize fills each node's nominal compute time from the calibrated
// accelerator model and validates the graph is acyclic. It must be called
// once after construction, before deadline assignment.
func (d *DAG) Finalize() error {
	for _, n := range d.Nodes {
		if n.Compute == 0 {
			n.Compute = accel.ComputeTime(n.Kind, n.Op, n.Pixels, n.FilterSize)
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the nodes in a dependency-respecting order, or an error
// if the graph has a cycle.
func (d *DAG) TopoOrder() ([]*Node, error) {
	indeg := make(map[*Node]int, len(d.Nodes))
	var queue []*Node
	for _, n := range d.Nodes {
		indeg[n] = len(n.Parents)
		if len(n.Parents) == 0 {
			queue = append(queue, n)
		}
	}
	order := make([]*Node, 0, len(d.Nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, c := range n.Children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(d.Nodes) {
		return nil, fmt.Errorf("graph: %s has a dependency cycle", d.App)
	}
	return order, nil
}

// NodeDone records a node completion and returns true when the whole DAG
// has finished.
func (d *DAG) NodeDone(now sim.Time) bool {
	d.doneCount++
	if d.doneCount == len(d.Nodes) {
		d.FinishAt = now
		return true
	}
	return false
}

// Finished reports whether every node has completed.
func (d *DAG) Finished() bool { return d.doneCount == len(d.Nodes) }

// Runtime returns the end-to-end latency of the DAG (0 if unfinished).
func (d *DAG) Runtime() sim.Time {
	if d.FinishAt == 0 && d.doneCount < len(d.Nodes) {
		return 0
	}
	return d.FinishAt - d.Release
}

// MetDeadline reports whether the DAG finished within its deadline.
func (d *DAG) MetDeadline() bool {
	return d.Finished() && d.FinishAt <= d.Release+d.Deadline
}
