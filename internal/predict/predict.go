// Package predict implements the execution-time prediction machinery RELIEF
// uses for laxity computation (paper §III-B): a profiled compute-time
// predictor (fixed-function accelerators have data-independent control
// flow), a family of memory-bandwidth predictors (Max, Last, Average,
// EWMA), and a graph-analysis data-movement predictor that anticipates
// colocations and forwards.
package predict

import (
	"fmt"

	"relief/internal/graph"
	"relief/internal/sim"
)

// BWPredictor estimates the memory bandwidth the next task will achieve,
// in bytes per second.
type BWPredictor interface {
	Name() string
	Predict() float64
	// Observe feeds the predictor an achieved bandwidth sample.
	Observe(bytesPerSec float64)
}

// Max always predicts the maximum available bandwidth — the paper's default
// (Observation 8: RELIEF does not benefit from dynamic prediction).
type Max struct{ Peak float64 }

// Name implements BWPredictor.
func (Max) Name() string { return "Max" }

// Predict implements BWPredictor.
func (m *Max) Predict() float64 { return m.Peak }

// Observe implements BWPredictor.
func (*Max) Observe(float64) {}

// Last predicts the most recently achieved bandwidth.
type Last struct {
	Peak float64
	last float64
}

// Name implements BWPredictor.
func (Last) Name() string { return "Last" }

// Predict implements BWPredictor.
func (l *Last) Predict() float64 {
	if l.last == 0 {
		return l.Peak
	}
	return l.last
}

// Observe implements BWPredictor.
func (l *Last) Observe(bw float64) { l.last = bw }

// Average predicts the arithmetic mean of the bandwidth achieved by the N
// previous tasks (paper: n=15 empirically best).
type Average struct {
	Peak float64
	N    int
	ring []float64
	next int
	full bool
}

// Name implements BWPredictor.
func (Average) Name() string { return "Average" }

// Predict implements BWPredictor.
func (a *Average) Predict() float64 {
	n := len(a.ring)
	if !a.full {
		n = a.next
	}
	if n == 0 {
		return a.Peak
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += a.ring[i]
	}
	return sum / float64(n)
}

// Observe implements BWPredictor.
func (a *Average) Observe(bw float64) {
	if a.ring == nil {
		n := a.N
		if n <= 0 {
			n = 15
		}
		a.ring = make([]float64, n)
	}
	a.ring[a.next] = bw
	a.next++
	if a.next == len(a.ring) {
		a.next = 0
		a.full = true
	}
}

// EWMA predicts an exponentially weighted moving average:
// pred = alpha*bw + (1-alpha)*pred (paper Eq. 3, alpha=0.25 empirically
// best).
type EWMA struct {
	Peak  float64
	Alpha float64
	pred  float64
	init  bool
}

// Name implements BWPredictor.
func (EWMA) Name() string { return "EWMA" }

// Predict implements BWPredictor.
func (e *EWMA) Predict() float64 {
	if !e.init {
		return e.Peak
	}
	return e.pred
}

// Observe implements BWPredictor.
func (e *EWMA) Observe(bw float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.25
	}
	if !e.init {
		e.pred = bw
		e.init = true
		return
	}
	e.pred = a*bw + (1-a)*e.pred
}

// NewBW constructs a bandwidth predictor by name ("max", "last", "average",
// "ewma") with the given peak bandwidth.
func NewBW(name string, peak float64) (BWPredictor, error) {
	switch name {
	case "max", "Max", "":
		return &Max{Peak: peak}, nil
	case "last", "Last":
		return &Last{Peak: peak}, nil
	case "average", "Average", "avg":
		return &Average{Peak: peak, N: 15}, nil
	case "ewma", "EWMA":
		return &EWMA{Peak: peak, Alpha: 0.25}, nil
	}
	return nil, fmt.Errorf("predict: unknown bandwidth predictor %q", name)
}

// DMMode selects the data-movement predictor.
type DMMode uint8

// Data-movement prediction modes.
const (
	// DMMax assumes maximum data movement: every load and store goes to
	// main memory (the paper's default).
	DMMax DMMode = iota
	// DMPredict analyses the graph to anticipate colocations and forwards
	// (paper §III-B).
	DMPredict
)

func (m DMMode) String() string {
	if m == DMMax {
		return "Max"
	}
	return "Pred"
}

// Runtime predicts whole-task execution times for laxity computation.
type Runtime struct {
	BW BWPredictor
	DM DMMode
	// BusBandwidth is used to price predicted forwards (SPAD-to-SPAD).
	BusBandwidth float64
	// InstancesOf reports how many accelerator instances of a kind exist,
	// needed by the forward predictor's unique-accelerator condition.
	InstancesOf func(kind int) int
}

// PredictBytes returns the predicted (dramBytes, busBytes) the node will
// move.
func (r *Runtime) PredictBytes(n *graph.Node) (dram, bus int64) {
	if r.DM == DMMax {
		return n.TotalInputBytes() + n.OutputBytes, 0
	}
	dram = n.ExtraInputBytes
	for i, p := range n.Parents {
		switch {
		case r.predictColocate(p, n):
			// colocated edge: no data movement
		case r.predictAllChildrenForward(p):
			bus += n.EdgeInBytes[i]
		default:
			dram += n.EdgeInBytes[i]
		}
	}
	if n.IsLeaf() || !r.predictAllChildrenForward(n) {
		dram += n.OutputBytes
	}
	return dram, bus
}

// predictColocate predicts whether child will colocate with parent: of the
// parent's children, the one with the earliest deadline colocates if it
// uses the parent's accelerator type (paper §III-B).
func (r *Runtime) predictColocate(parent, child *graph.Node) bool {
	if child.Kind != parent.Kind {
		return false
	}
	for _, sib := range parent.Children {
		if sib == child {
			continue
		}
		if sib.RelDeadline < child.RelDeadline ||
			(sib.RelDeadline == child.RelDeadline && sib.ID < child.ID) {
			return false // an earlier-deadline sibling claims the colocation
		}
	}
	return true
}

// predictAllChildrenForward predicts whether every child of n will forward
// from it, in which case n's result is never written to main memory. True
// iff (a) the children map to unique accelerator instances and (b) n is the
// latest-finishing parent of each child, approximated by deadline order
// (paper §III-B).
func (r *Runtime) predictAllChildrenForward(n *graph.Node) bool {
	if n.IsLeaf() {
		return false
	}
	perKind := make(map[int]int)
	for _, c := range n.Children {
		perKind[int(c.Kind)]++
	}
	for k, cnt := range perKind {
		inst := 1
		if r.InstancesOf != nil {
			inst = r.InstancesOf(k)
		}
		if cnt > inst {
			return false
		}
	}
	for _, c := range n.Children {
		for _, p := range c.Parents {
			if p != n && p.RelDeadline > n.RelDeadline {
				return false // another parent finishes later
			}
		}
	}
	return true
}

// PredictMemTime returns the predicted memory-access time for the node.
func (r *Runtime) PredictMemTime(n *graph.Node) sim.Time {
	dram, bus := r.PredictBytes(n)
	bw := r.BW.Predict()
	if bw <= 0 {
		bw = 1
	}
	t := float64(dram) / bw * float64(sim.Second)
	if bus > 0 && r.BusBandwidth > 0 {
		t += float64(bus) / r.BusBandwidth * float64(sim.Second)
	}
	return sim.Time(t)
}

// PredictRuntime returns the predicted end-to-end task time: profiled
// compute time plus predicted memory time. The paper predicts runtime once,
// at ready-queue insertion, which it shows is sufficiently accurate (§V-F).
func (r *Runtime) PredictRuntime(n *graph.Node) sim.Time {
	return n.Compute + r.PredictMemTime(n)
}
