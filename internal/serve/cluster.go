package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"relief/internal/svctrace"
)

// forwardHeader marks a request already forwarded once by a peer; the
// receiver executes it locally instead of re-forwarding, so a stale or
// disagreeing ring view can never loop a request around the fleet.
const forwardHeader = "X-Relief-Forwarded"

// servedByHeader names the peer whose response was relayed to the client.
const servedByHeader = "X-Relief-Served-By"

// probeTimeout bounds one peer cache probe (GET /result/{digest}). Probes
// are pure cache lookups — a peer that cannot answer this fast is treated
// as failing and the request proceeds without it.
const probeTimeout = 2 * time.Second

// peerOutcome classifies one exchange with a peer for circuit-breaker
// accounting: a usable answer, a healthy refusal (cache miss, overload —
// the peer is alive), or a failure (transport error, timeout, 5xx).
type peerOutcome int

const (
	peerOK peerOutcome = iota
	peerMiss
	peerFail
)

// String names an outcome for span events and log records.
func (o peerOutcome) String() string {
	switch o {
	case peerOK:
		return "ok"
	case peerMiss:
		return "miss"
	default:
		return "fail"
	}
}

// cluster is one replica's view of the fleet: its own advertised base URL,
// its peers, the consistent-hash ring that places every digest on exactly
// one owner, and a per-peer health tracker. Immutable after
// ConfigureCluster publishes it (the peerHealth values have their own
// internal locking).
type cluster struct {
	self   string
	peers  []string // sorted, self excluded
	ring   *ring
	client *http.Client // shared by probes and forwards; per-attempt ctx deadlines bound each call
	fwdTTL time.Duration
	health map[string]*peerHealth // per-peer circuit breakers, keyed by base URL
}

// ConfigureCluster puts the server in cluster mode: self is this replica's
// advertised base URL (e.g. "http://10.0.0.2:8080"), peers the other
// replicas'. Every digest is owned by exactly one fleet member (consistent
// hashing over the full member set, identical on every replica); non-owned
// requests probe the owner's cache and then forward to it, so each popular
// scenario is simulated once fleet-wide. Call before the server starts
// taking traffic. Trailing slashes are normalized away and self is dropped
// from the peer list, so every replica can be handed the same fleet list.
func (s *Server) ConfigureCluster(self string, peers []string) {
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	seen := map[string]bool{self: true}
	var ps []string
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
	}
	sort.Strings(ps)
	tr := s.cfg.PeerTransport
	if tr == nil {
		tr = http.DefaultTransport
	}
	bc := breakerConfig{threshold: s.cfg.BreakerThreshold}
	health := make(map[string]*peerHealth, len(ps))
	for _, p := range ps {
		h := newPeerHealth(p, bc, time.Now)
		peer := p
		h.notify = func(from, to int32) {
			s.log.Warn("breaker state change",
				"peer", peer,
				"from", breakerStateName(from),
				"to", breakerStateName(to))
		}
		health[p] = h
	}
	c := &cluster{
		self:   self,
		peers:  ps,
		ring:   newRing(append(append([]string{}, ps...), self)),
		client: &http.Client{Transport: tr},
		fwdTTL: s.cfg.Timeout + 15*time.Second,
		health: health,
	}
	s.svc.registerPeers(ps, health)
	s.mu.Lock()
	s.cluster = c
	s.mu.Unlock()
}

// probeResult asks one peer's cache for a finished result: a cheap GET
// bounded by a per-attempt context deadline that never triggers a
// simulation. A 404 is a healthy miss; a transport error, timeout, 5xx,
// or garbled body is a failure (breaker food).
func (c *cluster) probeResult(peer, key, traceID string) (*Result, peerOutcome) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/result/"+key, nil)
	if err != nil {
		return nil, peerFail
	}
	if traceID != "" {
		hreq.Header.Set(svctrace.Header, traceID)
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, peerFail
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var res Result
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&res); err != nil {
			return nil, peerFail
		}
		return &res, peerOK
	case resp.StatusCode >= 500:
		return nil, peerFail
	default:
		// Drain the (small) error body so the connection is reusable.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, peerMiss
	}
}

// forward re-posts the normalized request to its owner with a per-attempt
// deadline (the simulation budget plus margin) and returns the owner's raw
// 200 response body for relaying. A transport error or 5xx is a failure;
// any other refusal (draining, overloaded) is healthy — in every non-OK
// case the caller degrades to local execution, so a peer going down costs
// duplicated work, never a failed request.
func (c *cluster) forward(owner string, req Request, traceID string) ([]byte, peerOutcome) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, peerMiss // our bug, not the peer's: no breaker penalty
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.fwdTTL)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/run", bytes.NewReader(body))
	if err != nil {
		return nil, peerMiss
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(forwardHeader, "1")
	if traceID != "" {
		hreq.Header.Set(svctrace.Header, traceID)
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, peerFail
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if err != nil {
			return nil, peerFail
		}
		return b, peerOK
	case resp.StatusCode >= 500:
		return nil, peerFail
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, peerMiss
	}
}

// routeToOwner runs the peer leg of the decision ladder for a digest owned
// elsewhere: breaker gate, cache probe, then owner forward. It returns the
// owner's parsed result (probe hit) or raw relayed envelope (forward), or
// neither — the caller falls back to local execution. An open breaker
// skips the network entirely; a probe that failed at the transport level
// skips the forward (the owner is down — one fast failure, not two slow
// ones).
func (s *Server) routeToOwner(tr *svctrace.Trace, cl *cluster, owner, key string, req Request) (res *Result, relay []byte, src string) {
	pc := s.svc.peer(owner)
	h := cl.health[owner]
	if h != nil && !h.allow() {
		sp := tr.StartSpan(stageBreaker)
		sp.Set("peer", owner)
		sp.Set("digest", key)
		sp.Event("state", breakerStateName(h.stateG.Load()))
		s.endSpan(stageBreaker, sp)
		pc.fastFails.Add(1)
		return nil, nil, ""
	}
	report := func(o peerOutcome) {
		if h == nil {
			return
		}
		if o == peerFail {
			h.failure()
		} else {
			h.success()
		}
	}
	sp := tr.StartSpan(stageProbe)
	sp.Set("peer", owner)
	sp.Set("digest", key)
	res, o := cl.probeResult(owner, key, tr.ID())
	report(o)
	sp.Event("outcome", o.String())
	s.endSpan(stageProbe, sp)
	if o == peerOK {
		pc.hits.Add(1)
		return res, nil, srcPeer
	}
	pc.misses.Add(1)
	if o == peerFail {
		return nil, nil, "" // owner down: don't pay for a doomed forward
	}
	fsp := tr.StartSpan(stageForward)
	fsp.Set("peer", owner)
	fsp.Set("digest", key)
	relay, o = cl.forward(owner, req, tr.ID())
	report(o)
	fsp.Event("outcome", o.String())
	s.endSpan(stageForward, fsp)
	if o == peerOK {
		pc.forwarded.Add(1)
		return nil, relay, srcForward
	}
	pc.forwardErrors.Add(1)
	return nil, nil, ""
}

// maxResponseBytes bounds relayed and probed peer responses (metrics
// documents for heavy scenarios run to a few hundred KiB).
const maxResponseBytes = 16 << 20
