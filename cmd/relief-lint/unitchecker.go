package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"relief/internal/lint"
	"relief/internal/lint/load"
)

// unitConfig mirrors the JSON configuration cmd/go vet writes for each
// package unit when driving a -vettool (the x/tools unitchecker wire
// format). Fields the relief analyzers do not need (facts, vetx files of
// dependencies) are accepted and ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit described by cfgFile and exits.
// Diagnostics go to stderr as file:line:col lines (exit 2), or to stdout
// as a JSON array with -json (exit 0), mirroring unitchecker conventions.
func unitcheck(cfgFile string, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgFile, err)
	}
	// The driver has no cross-package facts, but cmd/go expects the
	// output file to exist for every unit, including VetxOnly ones.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var names []string
	for _, f := range cfg.GoFiles {
		names = append(names, filepath.Base(f))
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	files, err := load.ParseDir(fset, dir, names)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("parsing %s: %v", cfg.ImportPath, err)
	}
	// Imports resolve through the export files cmd/go supplies: the
	// import path is first run through ImportMap, then looked up.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	imp := &mappedImporter{base: load.ExportImporter(fset, exports), importMap: cfg.ImportMap}
	pkg, info, err := load.Check(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%v", err)
	}
	findings, err := lint.RunPackage(fset, files, pkg, info, lint.All())
	if err != nil {
		fatalf("%v", err)
	}
	if jsonOut {
		emit(findings, true)
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// mappedImporter applies cmd/go's ImportMap (vendor and module version
// mapping) before delegating to the export-data importer.
type mappedImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if real, ok := m.importMap[path]; ok {
		path = real
	}
	return m.base.Import(path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "relief-lint: "+format+"\n", args...)
	os.Exit(1)
}

// printVersion implements the -V=full handshake cmd/go uses to compute a
// tool ID for its build cache: the output must be one line of the form
// "<name> version <distinguishing string>". Hashing the executable makes
// rebuilt tools invalidate cached vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", strings.TrimSuffix(name, ".exe"), h.Sum(nil))
}
