// Package svctrace is request-scoped distributed tracing for the serving
// fleet: every inbound request gets a trace ID that rides the
// X-Relief-Trace header across peer probes, owner forwards, and sweep
// fan-out, and every pipeline stage (admission wait, cache lookup, disk
// read, peer probe, breaker fast-fail, forward, local kernel run, NDJSON
// streaming) records a wall-clock span against it.
//
// This is the same per-stage latency attribution the simulator applies to
// accelerator jobs (internal/metrics), turned on the serving stack itself —
// but on the wall clock, never the simulated clock. The two instruments
// stay strictly separated: svctrace must never be imported by a simulation
// package (the svcimport lint rule enforces it), so golden digests cannot
// pick up wall-clock noise. The join point is export-only: a finished
// trace's Document can embed the kernel's simulated-time events, and
// Doc.Events renders both span sets through internal/trace's Chrome writer
// into one timeline keyed by the trace ID.
package svctrace

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"relief/internal/sim"
	"relief/internal/trace"
)

// Schema identifies the GET /trace/{id} JSON document.
const Schema = "relief-svctrace/1"

// Header is the trace-propagation header. A request carrying a valid ID
// joins that trace; anything else gets a freshly minted ID.
const Header = "X-Relief-Trace"

// idBytes is the trace-ID entropy; IDs are its 2x hex chars.
const idBytes = 16

// NewID mints a trace ID: 32 lowercase hex characters. IDs come from the
// OS entropy pool — the serving layer lives on the wall clock, outside the
// simulator's determinism boundary. Deterministic callers (tests, CI
// smokes) supply their own ID through the X-Relief-Trace header instead.
func NewID() string {
	var b [idBytes]byte
	// crypto/rand.Read never fails on supported platforms.
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s has the canonical trace-ID format (32 lowercase
// hex characters), which also makes it safe to embed in headers, URLs, and
// log lines verbatim.
func ValidID(s string) bool {
	if len(s) != idBytes*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// attr is one ordered key/value pair on a span.
type attr struct{ key, val string }

// SpanEvent is one timestamped point annotation inside a span (cache
// source, breaker state, outcome classification).
type SpanEvent struct {
	Name  string
	Value string
	At    time.Time
}

// Span is one recorded pipeline stage. Create with Trace.StartSpan, close
// with End; all methods are no-ops on a nil receiver, so call sites need no
// tracing-enabled branches.
type Span struct {
	t     *Trace
	stage string
	start time.Time
	end   time.Time
	errs  string
	attrs []attr
	evs   []SpanEvent
}

// Stage returns the span's stage name.
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.stage
}

// Set attaches (or overwrites) one attribute.
func (s *Span) Set(key, val string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, val})
}

// Event records a timestamped point annotation.
func (s *Span) Event(name, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.evs = append(s.evs, SpanEvent{Name: name, Value: value, At: time.Now()})
	s.t.mu.Unlock()
}

// Fail marks the span as failed.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.t.mu.Lock()
	s.errs = err.Error()
	s.t.mu.Unlock()
}

// End closes the span and returns its duration. Ending twice keeps the
// first end time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	return s.end.Sub(s.start)
}

// Trace accumulates the spans of one request (or one sweep, whose cells all
// record into the coordinator request's trace). Safe for concurrent use;
// all methods are no-ops on a nil receiver.
type Trace struct {
	mu     sync.Mutex
	id     string        // immutable after New
	start  time.Time     //relief:guardedby mu
	end    time.Time     //relief:guardedby mu
	digest string        //relief:guardedby mu
	source string        //relief:guardedby mu
	status int           //relief:guardedby mu
	spans  []*Span       //relief:guardedby mu
	kernel []trace.Event //relief:guardedby mu
}

// New starts a trace. The caller supplies the ID (minted or propagated).
func New(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a stage span at the current wall time.
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, stage: stage, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// AddSpan records a completed stage with explicit timing — used for spans
// measured elsewhere (the worker measures admission wait and kernel time on
// the shared flight; each waiter copies them into its own trace).
func (t *Trace) AddSpan(stage string, start time.Time, d time.Duration, kvs ...string) {
	if t == nil || start.IsZero() {
		return
	}
	s := &Span{t: t, stage: stage, start: start, end: start.Add(d)}
	for i := 0; i+1 < len(kvs); i += 2 {
		s.attrs = append(s.attrs, attr{kvs[i], kvs[i+1]})
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// SetResult labels the trace with the request's canonical digest, answer
// source, and HTTP status.
func (t *Trace) SetResult(digest, source string, status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.digest, t.source, t.status = digest, source, status
	t.mu.Unlock()
}

// AttachKernel stores the simulated-time events of the kernel run this
// request executed, for the combined service+simulator timeline export.
func (t *Trace) AttachKernel(events []trace.Event) {
	if t == nil || len(events) == 0 {
		return
	}
	t.mu.Lock()
	t.kernel = append(t.kernel, events...)
	t.mu.Unlock()
}

// Finish seals the trace at the current wall time (idempotent).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	return t.end.Sub(t.start)
}

// EventDoc is one span annotation in the JSON document.
type EventDoc struct {
	Name  string  `json:"name"`
	Value string  `json:"value"`
	AtUS  float64 `json:"at_us"` // offset from trace start, microseconds
}

// SpanDoc is one stage span in the JSON document. Times are wall-clock
// offsets from the trace start in microseconds, so span durations can be
// summed and compared against the request's measured wall time.
type SpanDoc struct {
	Stage   string            `json:"stage"`
	StartUS float64           `json:"start_us"`
	DurUS   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []EventDoc        `json:"events,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// KernelEventDoc is one simulated-time kernel event carried in the
// document (requests with "trace": true that ran the kernel locally).
// Times are simulated microseconds.
type KernelEventDoc struct {
	Kind    string            `json:"kind"`
	Name    string            `json:"name"`
	Lane    string            `json:"lane"`
	StartUS float64           `json:"start_us"`
	DurUS   float64           `json:"dur_us"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// Doc is the relief-svctrace/1 document served by GET /trace/{id}.
type Doc struct {
	Schema       string           `json:"schema"`
	TraceID      string           `json:"trace_id"`
	Digest       string           `json:"digest,omitempty"`
	Source       string           `json:"source,omitempty"`
	Status       int              `json:"status,omitempty"`
	StartUnixUS  int64            `json:"start_unix_us"`
	TotalUS      float64          `json:"total_us"`
	Spans        []SpanDoc        `json:"spans"`
	KernelEvents []KernelEventDoc `json:"kernel_events,omitempty"`
}

// us converts a wall duration to microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Document renders the trace. Open spans are closed at the trace end (or
// now, for an unfinished trace); spans are sorted by start offset.
func (t *Trace) Document() Doc {
	if t == nil {
		return Doc{Schema: Schema}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	doc := Doc{
		Schema:      Schema,
		TraceID:     t.id,
		Digest:      t.digest,
		Source:      t.source,
		Status:      t.status,
		StartUnixUS: t.start.UnixMicro(),
		TotalUS:     us(end.Sub(t.start)),
		Spans:       make([]SpanDoc, 0, len(t.spans)),
	}
	for _, s := range t.spans {
		se := s.end
		if se.IsZero() {
			se = end
		}
		sd := SpanDoc{
			Stage:   s.stage,
			StartUS: us(s.start.Sub(t.start)),
			DurUS:   us(se.Sub(s.start)),
			Error:   s.errs,
		}
		if len(s.attrs) > 0 {
			sd.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				sd.Attrs[a.key] = a.val
			}
		}
		for _, e := range s.evs {
			sd.Events = append(sd.Events, EventDoc{Name: e.Name, Value: e.Value, AtUS: us(e.At.Sub(t.start))})
		}
		doc.Spans = append(doc.Spans, sd)
	}
	sort.SliceStable(doc.Spans, func(i, j int) bool { return doc.Spans[i].StartUS < doc.Spans[j].StartUS })
	for _, e := range t.kernel {
		doc.KernelEvents = append(doc.KernelEvents, KernelEventDoc{
			Kind:    e.Kind.String(),
			Name:    e.Name,
			Lane:    e.Lane,
			StartUS: e.Start.Microseconds(),
			DurUS:   (e.End - e.Start).Microseconds(),
			Meta:    e.Meta,
		})
	}
	return doc
}

// ServiceLane is the timeline row service spans render on.
const ServiceLane = "service"

// usToSim converts a microsecond offset to simulated-clock units
// (picoseconds) for the shared Chrome writer. The writer only divides back
// to microseconds, so wall offsets and simulated timestamps share one axis.
func usToSim(usv float64) sim.Time { return sim.Time(usv * float64(sim.Microsecond)) }

// Events converts the document into internal/trace events: service spans on
// the ServiceLane row, embedded kernel events on their original lanes, every
// event tagged with the trace ID — one timeline, renderable by
// trace.WriteChromeEvents / WriteTextEvents alongside (or instead of) a
// recorder's own events.
func (d Doc) Events() []trace.Event {
	var out []trace.Event
	for _, s := range d.Spans {
		meta := map[string]string{"trace_id": d.TraceID}
		for k, v := range s.Attrs {
			meta[k] = v
		}
		for _, e := range s.Events {
			meta[e.Name] = e.Value
		}
		if s.Error != "" {
			meta["error"] = s.Error
		}
		out = append(out, trace.Event{
			Kind:  trace.Service,
			Name:  s.Stage,
			Lane:  ServiceLane,
			Start: usToSim(s.StartUS),
			End:   usToSim(s.StartUS + s.DurUS),
			Meta:  meta,
		})
	}
	for _, e := range d.KernelEvents {
		kinds, err := trace.ParseKinds(e.Kind)
		kind := trace.Service
		if err == nil && len(kinds) == 1 {
			kind = kinds[0]
		}
		meta := map[string]string{"trace_id": d.TraceID}
		for k, v := range e.Meta {
			meta[k] = v
		}
		out = append(out, trace.Event{
			Kind:  kind,
			Name:  e.Name,
			Lane:  e.Lane,
			Start: usToSim(e.StartUS),
			End:   usToSim(e.StartUS + e.DurUS),
			Meta:  meta,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Store keeps the most recent finished traces for GET /trace/{id}, bounded
// FIFO. All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Store struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*Trace //relief:guardedby mu
	order []string          //relief:guardedby mu
}

// DefaultStoreCap bounds the store when no capacity is configured.
const DefaultStoreCap = 256

// NewStore returns a store holding up to cap traces (cap <= 0 selects
// DefaultStoreCap).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = DefaultStoreCap
	}
	return &Store{cap: cap, m: make(map[string]*Trace)}
}

// Add retains a trace, evicting the oldest past capacity. Re-adding an ID
// replaces the stored trace without double-counting it.
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil || t.ID() == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[t.ID()]; !ok {
		s.order = append(s.order, t.ID())
		for len(s.order) > s.cap {
			delete(s.m, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.m[t.ID()] = t
}

// Get returns the stored trace for id, or nil.
func (s *Store) Get(id string) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[id]
}

// Len reports the number of stored traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
