package dram

import (
	"math/rand"
	"testing"

	"relief/internal/sim"
)

// TestIdleRefreshNotCharged: refresh boundaries that fall in an idle gap
// must not be billed to the first burst after the gap. A single 64-byte
// burst arriving after 20 tREFI of silence costs one burst slot plus an
// activate — not 20 tRFC of refresh backlog.
func TestIdleRefreshNotCharged(t *testing.T) {
	k := sim.NewKernel()
	cfg := LPDDR5()
	c := NewController(k, "dram", cfg)
	gap := 20 * cfg.TREFI
	var start, end sim.Time
	k.At(gap, func() {
		start = k.Now()
		c.Enqueue(64, func() { end = k.Now() })
	})
	k.Run()
	want := cfg.TBurst + cfg.TGap + cfg.TRCD // cold bank: activate, no precharge
	if got := end - start; got != want {
		t.Fatalf("burst after %v idle took %v, want %v (idle refreshes billed?)", gap, got, want)
	}
	if c.Refreshes != 0 {
		t.Fatalf("idle refreshes charged: %d", c.Refreshes)
	}
	if c.BusyTime() != want {
		t.Fatalf("BusyTime = %v, want %v", c.BusyTime(), want)
	}
}

// TestIdleRefreshClosesRows: the idle-time refreshes are free but still
// close rows — a row opened before the gap must miss again after it.
func TestIdleRefreshClosesRows(t *testing.T) {
	k := sim.NewKernel()
	cfg := LPDDR5()
	c := NewController(k, "dram", cfg)
	c.Enqueue(64, func() {}) // opens row 0 of bank 0
	k.Run()
	if c.RowMisses != 1 || c.RowHits != 0 {
		t.Fatalf("warmup: hits=%d misses=%d", c.RowHits, c.RowMisses)
	}
	c.cursor = 0 // next burst lands on the same row
	k.At(2*cfg.TREFI, func() { c.Enqueue(64, func() {}) })
	k.Run()
	if c.RowMisses != 2 {
		t.Fatalf("row survived an idle refresh: hits=%d misses=%d", c.RowHits, c.RowMisses)
	}
}

type arrival struct {
	at   sim.Time
	size int64
}

// busyLoad runs the arrival list against a fresh controller, probing busy
// time at every completion and at randomized instants. It asserts the two
// pointwise invariants — busy never exceeds the current time and never
// decreases — and returns the final per-channel busy times and makespan.
func busyLoad(t *testing.T, cfg Config, load []arrival, probes []sim.Time) (final []sim.Time, end sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	c := NewController(k, "dram", cfg)
	prev := sim.Time(0)
	check := func() {
		now := k.Now()
		b := c.BusyTime()
		if b > now {
			t.Fatalf("BusyTime %v exceeds now %v", b, now)
		}
		if b < prev {
			t.Fatalf("BusyTime went backwards: %v after %v", b, prev)
		}
		prev = b
		for i := 0; i < c.Channels(); i++ {
			if cb := c.ChannelBusyTime(i); cb > now {
				t.Fatalf("channel %d busy %v exceeds now %v", i, cb, now)
			}
		}
	}
	for _, a := range load {
		a := a
		k.At(a.at, func() { c.Enqueue(a.size, check) })
	}
	for _, at := range probes {
		k.At(at, check)
	}
	end = k.Run()
	check()
	if c.BusyTime() > end {
		t.Fatalf("final BusyTime %v exceeds makespan %v", c.BusyTime(), end)
	}
	final = make([]sim.Time, c.Channels())
	for i := range final {
		final[i] = c.ChannelBusyTime(i)
	}
	return final, end
}

func randomBusyConfig(rng *rand.Rand) Config {
	cfg := LPDDR5()
	cfg.Policy = Policy(rng.Intn(2))
	cfg.WindowBursts = []int{0, 4, 64}[rng.Intn(3)]
	cfg.Channels = 1 + rng.Intn(2)
	switch rng.Intn(3) {
	case 0:
		cfg.TREFI = 0 // no refresh
	case 1:
		cfg.TREFI = 500 * sim.Nanosecond // frequent refresh crossings
	}
	return cfg
}

// randomBusyLoad spreads small-to-page-sized requests over a long window so
// runs include both saturated stretches and idle gaps spanning many tREFI.
func randomBusyLoad(rng *rand.Rand) []arrival {
	n := 4 + rng.Intn(10)
	load := make([]arrival, n)
	for i := range load {
		load[i] = arrival{
			at:   sim.Time(rng.Int63n(int64(60 * sim.Microsecond))),
			size: int64(1 + rng.Intn(4096*2)),
		}
	}
	return load
}

// TestBusyTimeProperties: across randomized loads, configurations, and both
// batching modes, BusyTime obeys busy <= now at every probe point (so it can
// never exceed the final makespan) and is monotone in simulated time, even
// while a virtual burst run is in flight.
func TestBusyTimeProperties(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		for _, batched := range []bool{false, true} {
			withBurstRuns(batched, func() {
				rng := rand.New(rand.NewSource(seed))
				cfg := randomBusyConfig(rng)
				load := randomBusyLoad(rng)
				probes := make([]sim.Time, 6)
				for i := range probes {
					probes[i] = sim.Time(rng.Int63n(int64(80 * sim.Microsecond)))
				}
				busyLoad(t, cfg, load, probes)
			})
		}
	}
}

// TestBusyTimeMonotoneInAddedLoad: appending extra requests to a workload
// never reduces any channel's final busy time. Extras arrive after the last
// base arrival so the base requests keep their synthetic addresses (the
// allocation cursor advances in enqueue order) — the comparison is then a
// strict superset of the same bursts, and serving more data can only add
// bus time.
func TestBusyTimeMonotoneInAddedLoad(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		for _, batched := range []bool{false, true} {
			withBurstRuns(batched, func() {
				rng := rand.New(rand.NewSource(seed))
				cfg := randomBusyConfig(rng)
				base := randomBusyLoad(rng)
				last := sim.Time(0)
				for _, a := range base {
					if a.at > last {
						last = a.at
					}
				}
				more := append(append([]arrival{}, base...), arrival{
					at:   last + sim.Time(rng.Int63n(int64(10*sim.Microsecond))),
					size: int64(1 + rng.Intn(4096*2)),
				})
				baseBusy, _ := busyLoad(t, cfg, base, nil)
				moreBusy, _ := busyLoad(t, cfg, more, nil)
				for i := range baseBusy {
					if moreBusy[i] < baseBusy[i] {
						t.Fatalf("seed %d batched=%v: channel %d busy fell from %v to %v after adding load",
							seed, batched, i, baseBusy[i], moreBusy[i])
					}
				}
			})
		}
	}
}
