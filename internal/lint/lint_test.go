package lint_test

import (
	"testing"

	"relief/internal/lint"
	"relief/internal/lint/analysistest"
	"relief/internal/lint/load"
)

// The fixture packages mirror real module paths (testdata/src/relief/...)
// so analyzer package-scope checks behave exactly as on the real tree.

func TestNoDeterm(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoDeterm, "relief/internal/fault")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapOrder, "relief/internal/manager")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "relief/internal/dram")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoPanic, "relief", "relief/internal/workload")
}

func TestWeakEvent(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WeakEvent, "relief/internal/metrics")
}

func TestPeerCtx(t *testing.T) {
	analysistest.Run(t, "testdata", lint.PeerCtx, "relief/internal/serve")
}

// TestSvcImport checks both sides of the import fence: the sim fixture's
// svctrace import is flagged, the cmd fixture's identical import is not.
func TestSvcImport(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SvcImport, "relief/internal/sim", "relief/cmd/relief-serve")
}

// TestSuiteCleanOnRealKernel runs the whole suite over the real event
// kernel package through the production loader: the annotated hot paths
// and their //lint:allow opt-outs must lint clean, which also exercises
// the go list/export-data loading pipeline end to end.
func TestSuiteCleanOnRealKernel(t *testing.T) {
	fset, pkgs, err := load.Packages("", "relief/internal/sim")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	findings, err := lint.RunPackage(fset, pkgs[0].Files, pkgs[0].Types, pkgs[0].TypesInfo, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
	}
}
