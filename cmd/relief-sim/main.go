// relief-sim runs a single scheduling scenario and prints its metrics.
//
// Usage:
//
//	relief-sim -mix CGL -policy RELIEF
//	relief-sim -mix CDH -policy LAX -continuous
//	relief-sim -mix GHL -policy RELIEF -topology xbar -bw average
//
// Periodic workloads can be checkpointed once warm and resumed or forked
// later (docs/CHECKPOINT.md):
//
//	relief-sim -mix CG -period 5ms -horizon 20ms -warm 8ms -checkpoint warm.ckpt
//	relief-sim -mix CG -period 5ms -horizon 40ms -restore warm.ckpt
//	relief-sim -mix CG -period 5ms -horizon 200ms -sample 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"relief/internal/ckpt"
	"relief/internal/exp"
	"relief/internal/fault"
	"relief/internal/metrics"
	"relief/internal/predict"
	"relief/internal/sim"
	"relief/internal/trace"
	"relief/internal/workload"
	"relief/internal/xbar"
)

func main() {
	mix := flag.String("mix", "CGL", "application mix, e.g. C, CD, CGL (C=canny D=deblur G=gru H=harris L=lstm)")
	policy := flag.String("policy", "RELIEF", "scheduling policy (FCFS, GEDF-D, GEDF-N, LL, LAX, HetSched, RELIEF, RELIEF-LAX)")
	topo := flag.String("topology", "bus", "interconnect topology: bus or xbar")
	bw := flag.String("bw", "max", "bandwidth predictor: max, last, average, ewma")
	dm := flag.Bool("predict-dm", false, "use the graph-analysis data-movement predictor")
	continuous := flag.Bool("continuous", false, "run applications in a loop until the 50ms horizon")
	noFwd := flag.Bool("no-forwarding", false, "disable forwarding hardware")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file")
	statsOut := flag.String("stats-out", "", "write gem5-style statistics to this file")
	platformFile := flag.String("platform", "", "JSON platform spec (overrides -topology/-bw/-no-forwarding)")
	faultRate := flag.Float64("faults", 0, "fault-injection rate in [0,1] (0 = off); see docs/FAULTS.md")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed")
	metricsOut := flag.String("metrics", "", "collect telemetry and write <prefix>.csv, <prefix>.json, <prefix>.prom")
	metricsInterval := flag.Duration("metrics-interval", 0, "probe sampling period in simulated time (0 = 50us default)")
	period := flag.Duration("period", 0, "periodic release interval in simulated time (0 = off): a fresh instance of each mix app is released every period until -horizon")
	horizon := flag.Duration("horizon", 0, "periodic/continuous run cutoff in simulated time (0 = 50ms default)")
	ckptOut := flag.String("checkpoint", "", "warm the periodic scenario and write a relief-ckpt/1 envelope to this file (requires -period; see docs/CHECKPOINT.md)")
	warm := flag.Duration("warm", 0, "earliest capture instant for -checkpoint: the snapshot lands at the first quiescent release at or after this")
	restoreIn := flag.String("restore", "", "resume from a checkpoint envelope instead of a cold start (requires -period and a scenario matching the checkpoint's fork key)")
	sample := flag.Int("sample", 0, "estimate whole-run statistics from N steady-state sampling windows instead of a full run (requires -period); writes a relief-estimate/1 JSON document to stdout")
	flag.Parse()

	apps, err := workload.ParseMix(*mix)
	if err != nil {
		fatal(err)
	}
	if len(apps) < 1 || len(apps) > 3 {
		fatal(fmt.Errorf("mix %q has %d applications, want 1-3", *mix, len(apps)))
	}
	if *faultRate < 0 || *faultRate > 1 {
		fatal(fmt.Errorf("fault rate %v outside [0,1]", *faultRate))
	}
	sc := exp.Scenario{
		Mix:               apps,
		Contention:        workload.Contention(len(apps)),
		Policy:            *policy,
		BWPredictor:       *bw,
		DisableForwarding: *noFwd,
	}
	if *faultRate > 0 {
		sc.Faults = fault.Profile(*faultRate, *faultSeed)
	}
	if *continuous {
		sc.Contention = workload.Continuous
	}
	if *dm {
		sc.DM = predict.DMPredict
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder()
		sc.Trace = rec
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		sc.Metrics = reg
		sc.MetricsInterval = sim.Time(metricsInterval.Nanoseconds()) * sim.Nanosecond
	}
	if *platformFile != "" {
		f, err := os.Open(*platformFile)
		if err != nil {
			fatal(err)
		}
		spec, err := exp.LoadPlatform(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sc.Platform = spec
	}
	switch *topo {
	case "bus":
	case "xbar":
		sc.Topology = xbar.Crossbar
	default:
		fatal(fmt.Errorf("unknown topology %q", *topo))
	}
	if *period > 0 {
		sc.Period = sim.Time(period.Nanoseconds()) * sim.Nanosecond
		sc.Horizon = sim.Time(horizon.Nanoseconds()) * sim.Nanosecond
	} else if *ckptOut != "" || *restoreIn != "" || *sample > 0 {
		fatal(fmt.Errorf("-checkpoint/-restore/-sample require a periodic workload (-period)"))
	}

	ctx := context.Background()
	if *sample > 0 {
		est, err := exp.RunSampled(ctx, sc, *sample)
		if err != nil {
			fatal(err)
		}
		if err := exp.WriteEstimate(os.Stdout, est); err != nil {
			fatal(err)
		}
		return
	}
	if *ckptOut != "" {
		warmAt := sim.Time(warm.Nanoseconds()) * sim.Nanosecond
		env, err := exp.RunToCheckpoint(ctx, sc, warmAt)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*ckptOut, env, 0o644); err != nil {
			fatal(err)
		}
		opened, err := ckpt.Open(env)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint:          captured at %v, %d bytes written to %s\n",
			sim.Time(opened.CapturedPs), len(env), *ckptOut)
		return
	}

	var res *exp.Result
	if *restoreIn != "" {
		data, err := os.ReadFile(*restoreIn)
		if err != nil {
			fatal(err)
		}
		env, err := ckpt.Open(data)
		if err != nil {
			fatal(err)
		}
		res, err = exp.RunFromCheckpoint(ctx, sc, env)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = exp.Run(sc)
		if err != nil {
			fatal(err)
		}
	}
	st := res.Stats
	if err := exp.WriteSummary(os.Stdout, sc, st); err != nil {
		fatal(err)
	}

	if *statsOut != "" {
		f, err := os.Create(*statsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := st.WriteGem5Style(f); err != nil {
			fatal(err)
		}
		fmt.Printf("stats:               written to %s\n", *statsOut)
	}

	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:               %d events written to %s\n", rec.Len(), *traceOut)
	}

	if reg != nil {
		printAttribution(reg)
		exportMetrics(reg, *metricsOut)
	}
}

// printAttribution renders the per-app latency decomposition collected by
// the metrics registry.
func printAttribution(reg *metrics.Registry) {
	a := reg.Attribution()
	fmt.Println()
	fmt.Println("latency attribution (% of summed node latency, ready to finish):")
	fmt.Printf("  %-8s %6s %7s %7s %7s %7s %7s\n",
		"app", "nodes", "wait%", "dma%", "stall%", "comp%", "wb%")
	row := func(name string, b *metrics.AttrBucket) {
		wait, pure, stall, comp, wb := b.Shares()
		fmt.Printf("  %-8s %6d %7.1f %7.1f %7.1f %7.1f %7.1f\n",
			name, b.Nodes, wait, pure, stall, comp, wb)
	}
	names := make([]string, 0, len(a.Apps))
	for n := range a.Apps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		row(n, a.Apps[n])
	}
	row("TOTAL", &a.Total)
	if h := reg.FindHistogram("relief_node_latency_us"); h != nil && h.Count() > 0 {
		fmt.Printf("  node latency us: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	}
}

// exportMetrics writes the three export formats under the given prefix.
func exportMetrics(reg *metrics.Registry, prefix string) {
	write := func(suffix string, fn func(w *os.File) error) {
		f, err := os.Create(prefix + suffix)
		if err != nil {
			fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	write(".csv", func(f *os.File) error { return reg.WriteCSV(f) })
	write(".json", func(f *os.File) error { return reg.WriteJSON(f) })
	write(".prom", func(f *os.File) error { return reg.WritePrometheus(f) })
	fmt.Printf("metrics:             %d probe samples written to %s.{csv,json,prom}\n",
		reg.Samples(), prefix)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-sim: %v\n", err)
	os.Exit(1)
}
