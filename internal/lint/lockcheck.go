package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// guardedByDirective annotates a struct field with the sibling mutex that
// must be held to touch it:
//
//	mu    sync.Mutex
//	cache *cache //relief:guardedby mu
//
// The directive goes in the field's doc comment or trailing line comment.
// A method known to be called with the lock already held opts out of
// re-acquisition either by the *Locked name-suffix convention or with a
// //relief:holds mu directive in its doc comment.
const (
	guardedByDirective = "//relief:guardedby"
	holdsDirective     = "//relief:holds"
)

// GuardedByFact records, for one struct field, the name of the sibling
// mutex field that guards it. Exported for every annotated field so
// packages that import the struct check their own accesses too.
type GuardedByFact struct {
	Mutex string
}

func (*GuardedByFact) AFact() {}

func (f *GuardedByFact) String() string { return "guardedBy(" + f.Mutex + ")" }

// LockCheck enforces mutex discipline on annotated struct fields: a field
// carrying //relief:guardedby mu may only be read while `mu` (or its
// read side, for an RWMutex) is held on the same value, and only written
// under the exclusive lock. The lock set is tracked intra-procedurally:
// x.mu.Lock()/RLock() add, Unlock()/RUnlock() remove, deferred unlocks
// keep the lock held to function exit, and branch-local acquisitions do
// not leak past their block. Closures start with an empty lock set (they
// may run on another goroutine). Accesses rooted at a variable declared
// inside the function body — a value under construction that no other
// goroutine can see yet — are exempt.
var LockCheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated //relief:guardedby mu may only be accessed while " +
		"the named sibling mutex is held (RLock suffices for reads)",
	FactTypes: []analysis.Fact{&GuardedByFact{}},
	Run:       runLockCheck,
}

// lockKind is the strength of a held lock.
type lockKind int

const (
	lockRead  lockKind = iota + 1 // RLock: reads only
	lockWrite                     // Lock: reads and writes
)

type lockSet map[string]lockKind // "base.mu" -> strength

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type lockChecker struct {
	pass   *analysis.Pass
	guards map[*types.Var]string // local annotated fields -> mutex name
}

func runLockCheck(pass *analysis.Pass) error {
	c := &lockChecker{pass: pass, guards: collectGuards(pass)}
	for field, mutex := range c.guards {
		pass.ExportObjectFact(field, &GuardedByFact{Mutex: mutex})
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// collectGuards finds //relief:guardedby annotations on struct fields and
// resolves them to field objects.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				mutex := guardDirective(f.Doc, f.Comment)
				if mutex == "" {
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = mutex
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardDirective extracts the mutex name from a field's comments.
func guardDirective(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, guardedByDirective+" ")
			if !ok {
				continue
			}
			if fields := strings.Fields(rest); len(fields) > 0 {
				return fields[0]
			}
		}
	}
	return ""
}

// guardOf reports the guarding mutex name for a field object: local
// annotations first, then imported facts for fields of foreign structs.
func (c *lockChecker) guardOf(field *types.Var) (string, bool) {
	if m, ok := c.guards[field]; ok {
		return m, true
	}
	if c.pass.Facts != nil {
		var fact GuardedByFact
		if c.pass.Facts.ImportObjectFact(field, &fact) {
			return fact.Mutex, true
		}
	}
	return "", false
}

// checkFunc walks one function body with lock-set tracking.
func (c *lockChecker) checkFunc(fd *ast.FuncDecl) {
	held := make(lockSet)
	// Pre-seed locks the function is documented (or named) to be called
	// under: //relief:holds mu grants recv.mu; the *Locked name-suffix
	// convention grants every guard mutex of the receiver type.
	if recv := receiverName(fd); recv != "" {
		if fd.Doc != nil {
			for _, cm := range fd.Doc.List {
				rest, ok := strings.CutPrefix(cm.Text, holdsDirective+" ")
				if !ok {
					continue
				}
				for _, m := range strings.Fields(rest) {
					held[recv+"."+m] = lockWrite
				}
			}
		}
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			for _, m := range c.receiverGuards(fd) {
				held[recv+"."+m] = lockWrite
			}
		}
	}
	c.walkStmts(fd.Body.List, held, fd)
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// receiverGuards lists the distinct mutex names guarding any field of the
// method's receiver type.
func (c *lockChecker) receiverGuards(fd *ast.FuncDecl) []string {
	recv := fd.Recv.List[0]
	tv, ok := c.pass.TypesInfo.Types[recv.Type]
	if !ok {
		return nil
	}
	rt := tv.Type
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	st, ok := rt.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var names []string
	seen := make(map[string]bool)
	for i := 0; i < st.NumFields(); i++ {
		if m, ok := c.guardOf(st.Field(i)); ok && !seen[m] {
			seen[m] = true
			names = append(names, m)
		}
	}
	return names
}

// walkStmts processes a statement list sequentially, mutating held as
// locks are taken and released at this nesting level. Nested blocks get a
// clone, so a branch-local acquisition never appears held afterwards.
func (c *lockChecker) walkStmts(stmts []ast.Stmt, held lockSet, fd *ast.FuncDecl) {
	for _, stmt := range stmts {
		c.walkStmt(stmt, held, fd)
	}
}

func (c *lockChecker) walkStmt(stmt ast.Stmt, held lockSet, fd *ast.FuncDecl) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, kind, isOp, locks := lockOp(c.pass.TypesInfo, s.X); isOp {
			if locks {
				held[key] = kind
			} else {
				delete(held, key)
			}
			return
		}
		c.checkExpr(s.X, held, fd, false)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held through every path to
		// return; a deferred anything-else is checked like a call (its
		// arguments evaluate now) but its body runs under unknown locks.
		if _, _, isOp, locks := lockOp(c.pass.TypesInfo, s.Call); isOp && !locks {
			return
		}
		c.checkExpr(s.Call, held, fd, false)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, held, fd, false)
		}
		for _, lhs := range s.Lhs {
			c.checkExpr(lhs, held, fd, true)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held, fd, true)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, held, fd, false)
		c.checkExpr(s.Value, held, fd, false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, held, fd, false)
		}
	case *ast.IfStmt:
		inner := held.clone()
		if s.Init != nil {
			c.walkStmt(s.Init, inner, fd)
		}
		c.checkExpr(s.Cond, inner, fd, false)
		c.walkStmts(s.Body.List, inner.clone(), fd)
		if s.Else != nil {
			c.walkStmt(s.Else, inner.clone(), fd)
		}
	case *ast.ForStmt:
		inner := held.clone()
		if s.Init != nil {
			c.walkStmt(s.Init, inner, fd)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, inner, fd, false)
		}
		if s.Post != nil {
			c.walkStmt(s.Post, inner.clone(), fd)
		}
		c.walkStmts(s.Body.List, inner.clone(), fd)
	case *ast.RangeStmt:
		inner := held.clone()
		c.checkExpr(s.X, inner, fd, false)
		c.walkStmts(s.Body.List, inner.clone(), fd)
	case *ast.BlockStmt:
		c.walkStmts(s.List, held.clone(), fd)
	case *ast.SwitchStmt:
		inner := held.clone()
		if s.Init != nil {
			c.walkStmt(s.Init, inner, fd)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, inner, fd, false)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.checkExpr(e, inner, fd, false)
				}
				c.walkStmts(cc.Body, inner.clone(), fd)
			}
		}
	case *ast.TypeSwitchStmt:
		inner := held.clone()
		if s.Init != nil {
			c.walkStmt(s.Init, inner, fd)
		}
		c.walkStmt(s.Assign, inner, fd)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, inner.clone(), fd)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, inner, fd)
				}
				c.walkStmts(cc.Body, inner, fd)
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held, fd)
	case *ast.GoStmt:
		// The goroutine body runs concurrently; closures are checked with
		// an empty lock set by checkExpr's FuncLit case.
		c.checkExpr(s.Call, held, fd, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held, fd, false)
					}
				}
			}
		}
	}
}

// checkExpr walks an expression, reporting guarded-field accesses made
// without the required lock. write marks the outermost selector as a
// mutation (assignment target or ++/--).
func (c *lockChecker) checkExpr(expr ast.Expr, held lockSet, fd *ast.FuncDecl, write bool) {
	if expr == nil {
		return
	}
	outer := ast.Expr(nil)
	if write {
		// The written-to selector is the expression itself, stripped of
		// parens; everything beneath it is read.
		outer = ast.Unparen(expr)
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			// Closures may run later on another goroutine: their bodies
			// are checked against an empty lock set.
			c.walkStmts(e.Body.List, make(lockSet), fd)
			return false
		case *ast.SelectorExpr:
			c.checkSelector(e, held, fd, e == outer)
		}
		return true
	})
}

func (c *lockChecker) checkSelector(sel *ast.SelectorExpr, held lockSet, fd *ast.FuncDecl, write bool) {
	field, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || field.Kind() != types.FieldVal {
		return
	}
	v, ok := field.Obj().(*types.Var)
	if !ok {
		return
	}
	mutex, guarded := c.guardOf(v)
	if !guarded {
		return
	}
	base := renderChain(sel.X)
	if base == "" {
		return // base too complex to match against lock operations
	}
	if c.rootIsBodyLocal(sel.X, fd) {
		return // value under construction; not visible to other goroutines
	}
	kind := held[base+"."+mutex]
	switch {
	case kind == 0:
		c.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s.%s, which is not held here",
			base, sel.Sel.Name, base, mutex)
	case write && kind == lockRead:
		c.pass.Reportf(sel.Sel.Pos(), "%s.%s is written while %s.%s is only read-locked",
			base, sel.Sel.Name, base, mutex)
	}
}

// rootIsBodyLocal reports whether the leftmost identifier of the access
// chain is a variable declared inside this function's body (not a
// parameter or receiver): a freshly constructed value that cannot yet be
// shared, so its guarded fields may be initialized lock-free.
func (c *lockChecker) rootIsBodyLocal(expr ast.Expr, fd *ast.FuncDecl) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			v, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
			if !ok {
				return false
			}
			return v.Pos() > fd.Body.Pos() && v.Pos() < fd.Body.End()
		default:
			return false
		}
	}
}

// renderChain renders a plain selector chain ("s", "h.inner") for lock
// matching; anything with calls, indexing, or dereferences renders empty.
func renderChain(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderChain(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// lockOp decodes expr as a mutex operation `base.mu.Lock()` (or RLock /
// Unlock / RUnlock) on a sync.Mutex or sync.RWMutex, returning the held-
// set key ("base.mu"), the strength, whether it was a lock operation at
// all, and whether it acquires (true) or releases (false).
func lockOp(info *types.Info, expr ast.Expr) (key string, kind lockKind, isOp, locks bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", 0, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	key = renderChain(sel.X)
	if key == "" {
		return "", 0, false, false
	}
	switch fn.Name() {
	case "Lock":
		return key, lockWrite, true, true
	case "RLock":
		return key, lockRead, true, true
	case "Unlock", "RUnlock":
		return key, 0, true, false
	}
	return "", 0, false, false
}
