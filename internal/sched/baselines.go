package sched

import (
	"relief/internal/graph"
	"relief/internal/sim"
)

// FCFS appends incoming tasks to the tail of the ready queue — the
// non-preemptive version of GAM+'s round-robin scheduling.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// DeadlineMode implements Policy. FCFS ignores deadlines; CPM deadlines are
// still assigned so deadline-met statistics are comparable across policies.
func (FCFS) DeadlineMode() graph.DeadlineMode { return graph.DeadlineCPM }

// InsertPos implements Policy.
func (FCFS) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	return len(q), 0
}

// GEDFD is Global Earliest Deadline First using the owning DAG's deadline as
// every task's deadline (paper: GEDF-DAG, as used by VIP).
type GEDFD struct{}

// Name implements Policy.
func (GEDFD) Name() string { return "GEDF-D" }

// DeadlineMode implements Policy.
func (GEDFD) DeadlineMode() graph.DeadlineMode { return graph.DeadlineDAG }

// InsertPos implements Policy.
func (GEDFD) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	return insertByDeadline(q, n)
}

// GEDFN is Global Earliest Deadline First with critical-path-method node
// deadlines (paper: GEDF-Node).
type GEDFN struct{}

// Name implements Policy.
func (GEDFN) Name() string { return "GEDF-N" }

// DeadlineMode implements Policy.
func (GEDFN) DeadlineMode() graph.DeadlineMode { return graph.DeadlineCPM }

// InsertPos implements Policy.
func (GEDFN) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	return insertByDeadline(q, n)
}

func insertByDeadline(q []*graph.Node, n *graph.Node) (int, int) {
	for i, e := range q {
		if n.Deadline < e.Deadline {
			return i, i + 1
		}
	}
	return len(q), len(q)
}

// LL is Least Laxity First with CPM node deadlines: tasks sorted by
// increasing laxity (paper Eq. 1).
type LL struct{}

// Name implements Policy.
func (LL) Name() string { return "LL" }

// DeadlineMode implements Policy.
func (LL) DeadlineMode() graph.DeadlineMode { return graph.DeadlineCPM }

// InsertPos implements Policy.
func (LL) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	for i, e := range q {
		if n.Laxity < e.Laxity {
			return i, i + 1
		}
	}
	return len(q), len(q)
}

// LAX is the LL variant of Yeh et al. that de-prioritizes tasks with
// negative laxity in favour of tasks with non-negative laxity, improving
// deadline hits at a fairness cost (paper §II-C, §V-E).
type LAX struct{}

// Name implements Policy.
func (LAX) Name() string { return "LAX" }

// DeadlineMode implements Policy.
func (LAX) DeadlineMode() graph.DeadlineMode { return graph.DeadlineCPM }

// InsertPos implements Policy.
func (LAX) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	nNeg := CurrentLaxity(n, now) < 0
	for i, e := range q {
		eNeg := CurrentLaxity(e, now) < 0
		if nNeg != eNeg {
			if eNeg {
				// Non-negative n bypasses every negative-laxity task.
				return i, i + 1
			}
			continue // negative n sinks below non-negative e
		}
		if n.Laxity < e.Laxity {
			return i, i + 1
		}
	}
	return len(q), len(q)
}

// HetSched is the least-laxity policy of Amarnath et al. with sub-deadline
// ratio (SDR) task deadlines: deadline_task = SDR x deadline_DAG (paper
// Eq. 2), distributing DAG laxity across nodes in proportion to their
// contribution to the critical path.
type HetSched struct{}

// Name implements Policy.
func (HetSched) Name() string { return "HetSched" }

// DeadlineMode implements Policy.
func (HetSched) DeadlineMode() graph.DeadlineMode { return graph.DeadlineSDR }

// InsertPos implements Policy.
func (HetSched) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	return LL{}.InsertPos(q, n, now)
}
