package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SchemaJSON identifies the JSON summary layout. Bump on incompatible
// change; the golden digest test locks the rendered bytes.
const SchemaJSON = "relief-metrics/1"

// WriteCSV renders the probe time series: one header row (time_us plus
// every sampled column, sorted by name) and one row per probe tick. Values
// use shortest-round-trip formatting, so the output is deterministic.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	cols := r.cols
	if cols == nil {
		cols = r.sortedMetrics()
	}
	var b strings.Builder
	b.WriteString("time_us")
	for _, m := range cols {
		b.WriteByte(',')
		b.WriteString(csvEscape(m.name))
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i, row := range r.rows {
		b.Reset()
		b.WriteString(strconv.FormatFloat(r.times[i].Microseconds(), 'g', -1, 64))
		for _, v := range row {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field if it contains CSV metacharacters (metric names
// with label strings contain quotes and commas).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// histJSON is a histogram's summary in the JSON export.
type histJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// attrJSON is one attribution bucket in the JSON export (microseconds).
type attrJSON struct {
	Nodes         int     `json:"nodes"`
	SchedWaitUS   float64 `json:"sched_wait_us"`
	DMAPureUS     float64 `json:"dma_transfer_us"`
	DMAStallUS    float64 `json:"dma_stall_us"`
	ComputeUS     float64 `json:"compute_us"`
	WritebackUS   float64 `json:"writeback_us"`
	TotalUS       float64 `json:"total_us"`
	StallSharePct float64 `json:"stall_share_pct"`
}

func bucketJSON(b *AttrBucket) attrJSON {
	return attrJSON{
		Nodes:         b.Nodes,
		SchedWaitUS:   b.SchedWait.Microseconds(),
		DMAPureUS:     b.DMAPure.Microseconds(),
		DMAStallUS:    b.DMAStall.Microseconds(),
		ComputeUS:     b.Compute.Microseconds(),
		WritebackUS:   b.Writeback.Microseconds(),
		TotalUS:       b.Total.Microseconds(),
		StallSharePct: b.StallShare(),
	}
}

// summaryJSON is the relief-metrics/1 document. Maps are used for all
// name-keyed sections: encoding/json sorts map keys, so the byte output is
// deterministic and golden-digest friendly.
type summaryJSON struct {
	Schema          string              `json:"schema"`
	Policy          string              `json:"policy"`
	ProbeIntervalUS float64             `json:"probe_interval_us"`
	ProbeSamples    int                 `json:"probe_samples"`
	Metrics         map[string]float64  `json:"metrics"`
	Histograms      map[string]histJSON `json:"histograms"`
	Attribution     struct {
		Apps  map[string]attrJSON `json:"apps"`
		Total attrJSON            `json:"total"`
	} `json:"attribution"`
}

// WriteJSON renders the end-of-run summary: final counter/gauge values,
// histogram percentiles, and the latency attribution record, under schema
// relief-metrics/1 with stable key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	doc := summaryJSON{
		Schema:          SchemaJSON,
		Policy:          r.policy,
		ProbeIntervalUS: r.interval.Microseconds(),
		ProbeSamples:    len(r.times),
		Metrics:         make(map[string]float64, len(r.metrics)),
		Histograms:      make(map[string]histJSON, len(r.hists)),
	}
	for _, m := range r.metrics {
		doc.Metrics[m.name] = m.value()
	}
	for _, h := range r.hists {
		doc.Histograms[h.name] = histJSON{
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Max: h.Max(),
		}
	}
	doc.Attribution.Apps = make(map[string]attrJSON, len(r.attr.Apps))
	for app, b := range r.attr.Apps {
		doc.Attribution.Apps[app] = bucketJSON(b)
	}
	doc.Attribution.Total = bucketJSON(&r.attr.Total)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format: counters and gauges with their final values, histograms as
// summaries with p50/p95/p99 quantiles. Metric names may carry baked-in
// labels ({k="v"}); HELP/TYPE headers are emitted once per metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.sortedMetrics() {
		fam := familyOf(m.name)
		if fam != lastFamily {
			lastFamily = fam
			typ := "gauge"
			if m.counter {
				typ = "counter"
			}
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam, m.help, fam, typ)
		}
		fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.value()))
	}
	for _, h := range r.sortedHists() {
		fam := familyOf(h.name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", fam, h.help, fam)
		for _, q := range []struct {
			label string
			v     float64
		}{
			{"0.5", h.Quantile(0.50)},
			{"0.95", h.Quantile(0.95)},
			{"0.99", h.Quantile(0.99)},
		} {
			fmt.Fprintf(&b, "%s %s\n", withLabel(h.name, "quantile", q.label), fmtFloat(q.v))
		}
		fmt.Fprintf(&b, "%s %s\n", suffixed(h.name, "_sum"), fmtFloat(h.Sum()))
		fmt.Fprintf(&b, "%s %d\n", suffixed(h.name, "_count"), h.Count())
	}
	lastFamily = ""
	for _, h := range r.sortedBucketHists() {
		fam := familyOf(h.name)
		if fam != lastFamily {
			lastFamily = fam
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", fam, h.help, fam)
		}
		var cum uint64
		for i, ub := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s %d\n", withLabel(suffixed(h.name, "_bucket"), "le", fmtFloat(ub)), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(suffixed(h.name, "_bucket"), "le", "+Inf"), h.count)
		fmt.Fprintf(&b, "%s %s\n", suffixed(h.name, "_sum"), fmtFloat(h.sum))
		fmt.Fprintf(&b, "%s %d\n", suffixed(h.name, "_count"), h.count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// familyOf strips a baked-in label set from a metric name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// EscapeLabelValue escapes a label value per the Prometheus text exposition
// format: exactly backslash, double-quote, and line-feed are escaped —
// nothing else. (strconv.Quote is not spec-conformant here: it would also
// escape tabs, control bytes, and non-ASCII runes, which Prometheus expects
// raw.)
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Label renders a metric name with baked-in labels, escaping values per the
// exposition spec: Label("x", "peer", u) -> `x{peer="..."}`. kvs alternate
// key, value; keys must already be valid label names.
func Label(name string, kvs ...string) string {
	if len(kvs) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kvs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kvs[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kvs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends (or merges) one label into a possibly-labelled name.
func withLabel(name, key, val string) string {
	esc := `"` + EscapeLabelValue(val) + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + key + "=" + esc + "}"
	}
	return name + "{" + key + "=" + esc + "}"
}

// suffixed inserts a family suffix before a baked-in label set:
// suffixed(`x{peer="p"}`, "_sum") -> `x_sum{peer="p"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}
