// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (type Time) so that sub-nanosecond
// bus beats can be represented exactly. Events scheduled for the same tick
// fire in the order they were scheduled, which makes every simulation run
// bit-for-bit reproducible.
//
// The kernel is built for throughput: the ready queue is an inlined 4-ary
// min-heap specialised to *Event (no container/heap interface boxing), and
// fired events are recycled through a free list, so steady-state
// Schedule/dispatch cycles perform no heap allocation.
package sim

import "fmt"

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Microseconds returns t expressed in microseconds as a float64.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t expressed in milliseconds as a float64.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t expressed in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Event is a handle for a scheduled callback. It can be cancelled any time
// before it fires. Once the event has fired the kernel recycles the handle
// for a later Schedule/At call, so a handle must not be retained (or
// cancelled) after its callback has run.
type Event struct {
	at        Time
	born      Time // clock value when the event was scheduled
	seq       uint64
	fn        func()
	next      *Event // free-list link while recycled
	queued    bool
	cancelled bool
	weak      bool
	replay    bool
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// interruptStride is how many dispatched events pass between polls of an
// installed interrupt check. It is a power of two so the poll gate is a
// single mask test on the hot dispatch loop.
const interruptStride = 4096

// Kernel is an event-driven simulation engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now     Time
	curBorn Time // born time of the event currently dispatching
	seq     uint64
	queue      []*Event // 4-ary min-heap ordered by (at, seq)
	live       int      // queued events that are not cancelled
	replayLive int      // live events that are replayable (AtReplay)
	free       *Event   // recycled Event free list
	fired   uint64
	allocs  uint64 // Event allocations (free-list misses)
	halted  bool

	// intr, if non-nil, is polled every interruptStride dispatches; a true
	// return aborts the run (see SetInterrupt).
	intr        func() bool
	interrupted bool
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// CurrentBorn returns the time at which the currently dispatching event was
// scheduled. Because sequence numbers grow monotonically with the clock, an
// event scheduled strictly before CurrentBorn and firing at the current
// tick is guaranteed to have already fired. Analytic models use this to
// replay same-tick event orderings exactly (see internal/mem's claims).
func (k *Kernel) CurrentBorn() Time { return k.curBorn }

// Fired reports how many events have been dispatched so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Scheduled reports how many events have ever been scheduled.
func (k *Kernel) Scheduled() uint64 { return k.seq }

// EventAllocs reports how many Event structs were heap-allocated, i.e. how
// often Schedule/At missed the free list. In steady state this stops
// growing: the ratio Scheduled/EventAllocs is the pool's reuse factor.
func (k *Kernel) EventAllocs() uint64 { return k.allocs }

// Schedule arranges for fn to run delay picoseconds from now. A negative
// delay is treated as zero. The returned event may be cancelled.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At arranges for fn to run at absolute time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) *Event {
	return k.at(t, fn, false, false)
}

// AtReplay arranges for fn to run at absolute time t like At, but marks the
// event replayable: one whose schedule is derivable from the simulation's
// inputs alone (pre-planned periodic releases, scripted fault deaths), so a
// restored run can re-create it instead of serializing the closure. Replay
// events are ordinary in every other respect — they keep the run alive and
// fire in (at, seq) order. PendingNonReplay excludes them, which is how the
// checkpoint machinery recognises a quiescent instant: the only future the
// simulation has left is one that can be replayed from the inputs.
func (k *Kernel) AtReplay(t Time, fn func()) *Event {
	return k.at(t, fn, false, true)
}

// ScheduleWeak arranges for fn to run delay picoseconds from now as a weak
// event. Weak events fire only while ordinary events remain queued: when a
// weak event reaches the top of the heap with no ordinary event left behind
// it, the run is over and the event is discarded without firing — and,
// crucially, without advancing the clock. Weak events are excluded from
// Pending. They exist for observers (e.g. periodic metrics probes) that must
// piggyback on a simulation without ever extending it; their callbacks
// should read state only, not schedule ordinary events.
func (k *Kernel) ScheduleWeak(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.at(k.now+delay, fn, true, false)
}

// at is the scheduling slow half of Schedule/At/ScheduleWeak: pool an
// Event, stamp it, and push it. In steady state the free list always hits,
// so the path stays allocation-free.
//
//relief:hotpath
func (k *Kernel) at(t Time, fn func(), weak, replay bool) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < k.now {
		t = k.now
	}
	e := k.free
	if e != nil {
		k.free = e.next
		e.next = nil
		e.cancelled = false
	} else {
		e = &Event{} //lint:allow hotalloc pool refill on a free-list miss, counted by k.allocs
		k.allocs++
	}
	e.at = t
	e.born = k.now
	e.seq = k.seq
	e.fn = fn
	e.queued = true
	e.weak = weak
	e.replay = replay
	k.seq++
	if !weak {
		k.live++
		if replay {
			k.replayLive++
		}
	}
	k.push(e)
	return e
}

// Cancel removes a pending event. Cancelling an already-cancelled event is
// a no-op; a fired event's handle must not be passed here (handles are
// recycled after dispatch).
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.queued {
		// Removal is lazy: the event stays queued and is discarded when it
		// reaches the top of the heap.
		e.fn = nil
		if !e.weak {
			k.live--
			if e.replay {
				k.replayLive--
			}
		}
	}
}

// Halt stops the current Run/RunUntil loop after the in-flight event returns.
func (k *Kernel) Halt() { k.halted = true }

// SetInterrupt installs an abort check polled once every few thousand
// dispatched events (cheap enough for the hot loop). When check returns
// true the run halts after the in-flight event and Interrupted reports
// true. The check runs on the simulation goroutine; it may read shared
// state such as a context's Done channel, and it must be cheap. Pass nil
// to remove.
//
// Interrupts exist for host-side cancellation (timeouts, client
// disconnects): an interrupted run is abandoned wholesale, never resumed,
// so determinism of completed runs is unaffected.
func (k *Kernel) SetInterrupt(check func() bool) {
	k.intr = check
	k.interrupted = false
}

// Interrupted reports whether the last Run/RunUntil was aborted by the
// interrupt check installed with SetInterrupt.
func (k *Kernel) Interrupted() bool { return k.interrupted }

// Pending reports how many non-cancelled ordinary (non-weak) events are
// queued.
func (k *Kernel) Pending() int { return k.live }

// PendingNonReplay reports how many pending ordinary events are NOT
// replayable (see AtReplay). Zero means every queued obligation can be
// re-created from the simulation's inputs — the condition the checkpoint
// machinery requires before capturing state.
func (k *Kernel) PendingNonReplay() int { return k.live - k.replayLive }

// KernelState is the serializable kernel state captured at a quiescent
// instant: the clock and the next sequence number. The event queue itself is
// deliberately absent — a checkpoint is only taken when every pending event
// is replayable (PendingNonReplay() == 0), so a restored run re-creates the
// queue from the simulation's inputs. Restoring Seq preserves bit-identical
// dispatch: re-created events receive sequence numbers that are uniformly
// shifted but relatively ordered exactly as in the uninterrupted run.
// Dispatch order compares (at, seq), and absolute seq values are observable
// nowhere else, so the shift cannot change any result. Fired/alloc counters
// are simulator-cost metrics, not simulation state, and start from zero in a
// restored kernel.
type KernelState struct {
	Now Time
	Seq uint64
}

// CaptureState snapshots the kernel's serializable state (see KernelState).
func (k *Kernel) CaptureState() KernelState {
	return KernelState{Now: k.now, Seq: k.seq}
}

// RestoreState primes a fresh kernel with a captured state: the clock jumps
// to the capture instant and sequence numbering continues from the captured
// value. It must be called before any event is scheduled on the kernel.
func (k *Kernel) RestoreState(s KernelState) error {
	if k.seq != 0 || len(k.queue) != 0 || k.fired != 0 {
		return fmt.Errorf("sim: RestoreState on a used kernel (%d events scheduled)", k.seq)
	}
	k.now = s.Now
	k.seq = s.Seq
	return nil
}

// Run dispatches events until the queue is empty or Halt is called.
// It returns the final simulation time.
func (k *Kernel) Run() Time {
	return k.RunUntil(-1)
}

// RunUntil dispatches events with timestamps <= limit (limit < 0 means no
// limit) until the queue drains, Halt is called, or the next event lies
// beyond the limit. When stopping because of the limit the clock is advanced
// to the limit.
//
//relief:hotpath
func (k *Kernel) RunUntil(limit Time) Time {
	k.halted = false
	for len(k.queue) > 0 && !k.halted {
		next := k.queue[0]
		if limit >= 0 && next.at > limit {
			k.now = limit
			return k.now
		}
		k.pop()
		next.queued = false
		// Cancelled events and trailing weak events (nothing ordinary left
		// to outlast them) are discarded without advancing the clock.
		if next.cancelled || (next.weak && k.live == 0) {
			k.recycle(next)
			continue
		}
		if !next.weak {
			k.live--
			if next.replay {
				k.replayLive--
			}
		}
		k.now = next.at
		k.curBorn = next.born
		k.fired++
		fn := next.fn
		fn()
		k.recycle(next)
		if k.intr != nil && k.fired%interruptStride == 0 && k.intr() {
			k.interrupted = true
			k.halted = true
		}
	}
	if limit >= 0 && k.now < limit && !k.halted {
		k.now = limit
	}
	return k.now
}

// recycle returns a dispatched or discarded event to the free list.
//
//relief:hotpath
func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	e.next = k.free
	k.free = e
}

// less orders events by (time, sequence) for deterministic dispatch. The
// order is total (seq is unique), so dispatch order is independent of heap
// shape.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e into the 4-ary heap.
//
//relief:hotpath
func (k *Kernel) push(e *Event) {
	q := append(k.queue, e) //lint:allow hotalloc heap growth is amortized; steady state never grows

	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	k.queue = q
}

// pop removes the minimum event from the 4-ary heap.
//
//relief:hotpath
func (k *Kernel) pop() {
	q := k.queue
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if less(q[j], q[m]) {
					m = j
				}
			}
			if !less(q[m], last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	k.queue = q
}
