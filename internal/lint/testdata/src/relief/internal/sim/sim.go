// Package sim is a fixture stub of relief/internal/sim: just enough of
// the Kernel API for the weakevent and maporder analyzers to resolve
// method calls against the real receiver type and package path.
package sim

import (
	_ "relief/internal/svctrace" // want `package relief/internal/sim imports relief/internal/svctrace`
)

// Time mirrors the simulation timestamp type.
type Time int64

// Event mirrors the scheduled-callback handle.
type Event struct{}

// Kernel mirrors the event kernel.
type Kernel struct{}

func (k *Kernel) Now() Time { return 0 }

func (k *Kernel) Schedule(delay Time, fn func()) *Event { return &Event{} }

func (k *Kernel) At(t Time, fn func()) *Event { return &Event{} }

func (k *Kernel) ScheduleWeak(delay Time, fn func()) *Event { return &Event{} }
