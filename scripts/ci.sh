#!/bin/sh
# CI gate: build, vet, full test suite (including the golden main-grid
# determinism digest), then a one-iteration benchmark smoke run so
# simulator-throughput regressions surface in the log.
set -eu
cd "$(dirname "$0")/.."

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== test"
go test ./...

echo "== race (short)"
go test -race -short ./...

echo "== bench smoke"
go test -run '^$' -bench 'BenchmarkFig4$' -benchtime=1x -benchmem .
