// Package sched defines the accelerator scheduling policy framework and the
// state-of-the-art baseline policies the paper compares against (§II-C):
// FCFS, GEDF-D, GEDF-N, LL, LAX, and HetSched.
//
// Every policy works by sorted insertion into a per-accelerator-type ready
// queue; the hardware manager pops the head when an accelerator of that type
// becomes available. The RELIEF policy itself (the paper's contribution)
// lives in internal/core and layers forwarding escalation on top of this
// framework.
package sched

import (
	"relief/internal/graph"
	"relief/internal/sim"
)

// Policy decides where a newly ready task is inserted into its ready queue.
type Policy interface {
	// Name returns the policy's display name as used in the paper's figures.
	Name() string
	// DeadlineMode returns the node-deadline assignment scheme the policy
	// expects.
	DeadlineMode() graph.DeadlineMode
	// InsertPos returns the index at which n belongs in q (sorted by the
	// policy's priority order, head = highest priority) and the number of
	// queue entries examined, which the manager uses to model scheduler
	// latency on the Cortex-A7 class microcontroller (Fig. 12).
	InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (pos, scanned int)
}

// Escalator is implemented by policies that perform RELIEF-style forwarding
// escalation when a producer finishes (Algorithm 1). The manager invokes
// EnqueueReady instead of plain InsertPos-insertion for these policies.
type Escalator interface {
	Policy
	// EnqueueReady places the newly ready children of a finishing node into
	// the ready queues, possibly escalating them to queue fronts. queues
	// maps accelerator kind to its ready queue; idle reports the number of
	// idle instances per kind. It returns the total queue entries scanned
	// (for latency modeling) and the set of escalated nodes.
	EnqueueReady(queues Queues, ready []*graph.Node, idle func(k int) int, now sim.Time) (scanned int, escalated []*graph.Node)
}

// Queues is the manager's per-accelerator-kind ready queues, indexed by
// accelerator kind. Policies mutate the slices through the pointer.
type Queues []*[]*graph.Node

// Insert places n at position pos within q.
func Insert(q *[]*graph.Node, n *graph.Node, pos int) {
	s := *q
	if pos < 0 {
		pos = 0
	}
	if pos > len(s) {
		pos = len(s)
	}
	s = append(s, nil)
	copy(s[pos+1:], s[pos:])
	s[pos] = n
	*q = s
}

// CurrentLaxity returns a node's laxity at time now, per paper Eq. 1:
// laxity = deadline - runtime - current time. The (deadline - runtime) part
// is stored on the node as Laxity so RELIEF's feasibility check can consume
// slack from it.
func CurrentLaxity(n *graph.Node, now sim.Time) sim.Time {
	return n.Laxity - now
}
