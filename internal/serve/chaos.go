package serve

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ChaosPlan is a seeded fault specification for peer traffic: the serving
// layer's counterpart of internal/fault's Plan. It drives a faulty
// http.RoundTripper that injects latency, connection drops, 5xx bursts,
// and one-way partitions into a replica's *outbound* peer calls, so the
// cluster's resilience promises (no client-visible failures under peer
// death, bounded duplicated work, byte-identical merged sweeps) can be
// tested — and drilled in staging — reproducibly.
//
// Draws are gated on their rate being non-zero, so a zero-rate plan
// consumes no randomness and a partition-only plan injects exactly the
// configured partition and nothing else. The zero value injects nothing.
type ChaosPlan struct {
	// Seed initialises the injection PRNG (0 means seed 1, matching the
	// fault-injection CLI default).
	Seed int64 `json:"seed,omitempty"`
	// LatencyRate is the per-request probability of an added delay of
	// Latency (default 50ms when the rate is set).
	LatencyRate float64 `json:"latency_rate,omitempty"`
	LatencyMS   int64   `json:"latency_ms,omitempty"`
	// DropRate is the per-request probability that the connection drops
	// before any response arrives (transport error).
	DropRate float64 `json:"drop_rate,omitempty"`
	// ErrorRate is the per-request probability of a synthesized 503 —
	// the peer is reachable but failing.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Partition lists peer hosts ("host:port") whose outbound requests
	// always fail. The partition is one-way: only this replica's view of
	// those peers is cut; their requests to us still arrive.
	Partition []string `json:"partition,omitempty"`
}

// Active reports whether the plan can inject anything at all.
func (p ChaosPlan) Active() bool {
	return p.LatencyRate > 0 || p.DropRate > 0 || p.ErrorRate > 0 || len(p.Partition) > 0
}

// NewChaosTransport wraps next (nil = http.DefaultTransport) with the
// plan's fault injection. Pass the result as Config.PeerTransport (or the
// relief-serve -chaos flag) to subject all peer probes and forwards to it.
func NewChaosTransport(plan ChaosPlan, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	part := make(map[string]bool, len(plan.Partition))
	for _, h := range plan.Partition {
		part[strings.TrimSpace(h)] = true
	}
	return &chaosTransport{
		plan:      plan,
		next:      next,
		partition: part,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

type chaosTransport struct {
	plan      ChaosPlan
	next      http.RoundTripper
	partition map[string]bool

	mu  sync.Mutex
	rng *rand.Rand
}

// RoundTrip injects the plan's faults ahead of the real transport. For a
// fixed seed, a sequential request series replays the exact same fault
// sequence; concurrent callers still see a reproducible fault *mix*
// (the draw stream is fixed, only its assignment to requests races).
func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.partition[req.URL.Host] {
		closeRequestBody(req)
		return nil, fmt.Errorf("serve: chaos partition: %s unreachable", req.URL.Host)
	}
	var delay time.Duration
	var drop, fail bool
	t.mu.Lock()
	if t.plan.LatencyRate > 0 && t.rng.Float64() < t.plan.LatencyRate {
		delay = time.Duration(t.plan.LatencyMS) * time.Millisecond
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
	}
	if t.plan.DropRate > 0 && t.rng.Float64() < t.plan.DropRate {
		drop = true
	}
	if !drop && t.plan.ErrorRate > 0 && t.rng.Float64() < t.plan.ErrorRate {
		fail = true
	}
	t.mu.Unlock()
	if delay > 0 {
		select {
		case <-req.Context().Done():
			closeRequestBody(req)
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	if drop {
		closeRequestBody(req)
		return nil, fmt.Errorf("serve: chaos drop: connection to %s lost", req.URL.Host)
	}
	if fail {
		closeRequestBody(req)
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	return t.next.RoundTrip(req)
}

// closeRequestBody honors the RoundTripper contract: the transport owns
// the request body and must close it even when no bytes were sent.
func closeRequestBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}
