// hotalloc fixture: functions annotated //relief:hotpath must not
// allocate; unannotated functions may.
package dram

type controller struct {
	queue []int
	cb    func()
}

func variadicSink(args ...interface{}) {}

// serve is the annotated hot loop: every allocating construct below must
// be diagnosed.
//
//relief:hotpath
func (c *controller) serve(n int) {
	c.queue = append(c.queue, n) // want `append may grow the backing array in hotpath function serve`
	s := make([]int, n)          // want `make\(\) allocates in hotpath function serve`
	_ = s
	p := new(int) // want `new\(\) allocates in hotpath function serve`
	_ = p
	c.cb = func() {} // want `closure allocated in hotpath function serve`
	lit := []int{n}  // want `slice/map literal allocates in hotpath function serve`
	_ = lit
	table := map[int]int{} // want `slice/map literal allocates in hotpath function serve`
	_ = table
	other := &controller{} // want `&composite literal escapes to the heap in hotpath function serve`
	_ = other
	boxed := interface{}(n) // want `conversion to interface boxes its operand in hotpath function serve`
	_ = boxed
	variadicSink(n) // want `argument boxed into interface parameter in hotpath function serve`
}

// pick is annotated but clean: struct values, index/selector addressing,
// and arithmetic never allocate.
//
//relief:hotpath
func (c *controller) pick(i int) int {
	c.queue[0] = i
	b := &c.queue[0]
	return *b + len(c.queue)
}

// drainAllowed carries per-site opt-outs with reasons.
//
//relief:hotpath
func (c *controller) drainAllowed(n int) {
	c.queue = append(c.queue, n) //lint:allow hotalloc growth is amortized; steady state never grows
}

// cold is not annotated: the same constructs draw no diagnostics.
func (c *controller) cold(n int) {
	c.queue = append(c.queue, n)
	_ = make([]int, n)
	_ = map[int]int{}
	c.cb = func() {}
	variadicSink(n)
}
