package graph

import (
	"fmt"

	"relief/internal/sim"
)

// DeadlineMode selects how per-node deadlines are derived from the DAG
// deadline (paper §II-C).
type DeadlineMode uint8

// Deadline assignment schemes.
const (
	// DeadlineDAG gives every node the DAG's deadline (GEDF-D / VIP).
	DeadlineDAG DeadlineMode = iota
	// DeadlineCPM assigns node deadlines by the critical-path method
	// (GEDF-N, LL, LAX, RELIEF): a node's deadline is the latest completion
	// time that still lets the longest downstream path finish by the DAG
	// deadline. Under this scheme a node's laxity equals the DAG laxity
	// along its critical path (paper §VII).
	DeadlineCPM
	// DeadlineSDR distributes the DAG deadline by HetSched's sub-deadline
	// ratio: deadline_task = SDR x deadline_DAG, where SDR is the task's
	// cumulative share of the execution time of the longest path through it.
	DeadlineSDR
)

func (m DeadlineMode) String() string {
	switch m {
	case DeadlineDAG:
		return "dag"
	case DeadlineCPM:
		return "cpm"
	case DeadlineSDR:
		return "sdr"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// AssignDeadlines fills every node's RelDeadline according to mode, using
// runtimeOf as the per-node execution-time estimate (typically compute time
// plus memory time at peak bandwidth, matching the paper's critical-path
// analysis inputs).
func AssignDeadlines(d *DAG, mode DeadlineMode, runtimeOf func(*Node) sim.Time) error {
	order, err := d.TopoOrder()
	if err != nil {
		return err
	}
	switch mode {
	case DeadlineDAG:
		for _, n := range d.Nodes {
			n.RelDeadline = d.Deadline
		}
		return nil
	case DeadlineCPM:
		after := cpAfter(order, runtimeOf)
		for _, n := range d.Nodes {
			// Latest completion: D - (downstream critical path excluding n).
			n.RelDeadline = d.Deadline - (after[n] - runtimeOf(n))
		}
		return nil
	case DeadlineSDR:
		after := cpAfter(order, runtimeOf)
		upto := cpUpto(order, runtimeOf)
		for _, n := range d.Nodes {
			path := upto[n] + after[n] - runtimeOf(n) // longest path through n
			if path <= 0 {
				n.RelDeadline = d.Deadline
				continue
			}
			sdr := float64(upto[n]) / float64(path)
			n.RelDeadline = sim.Time(sdr * float64(d.Deadline))
		}
		return nil
	}
	return fmt.Errorf("graph: unknown deadline mode %v", mode)
}

// cpAfter computes, for each node, the longest runtime path from the node
// (inclusive) to any sink.
func cpAfter(order []*Node, runtimeOf func(*Node) sim.Time) map[*Node]sim.Time {
	after := make(map[*Node]sim.Time, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		var best sim.Time
		for _, c := range n.Children {
			if after[c] > best {
				best = after[c]
			}
		}
		after[n] = best + runtimeOf(n)
	}
	return after
}

// cpUpto computes, for each node, the longest runtime path from any source
// to the node (inclusive).
func cpUpto(order []*Node, runtimeOf func(*Node) sim.Time) map[*Node]sim.Time {
	upto := make(map[*Node]sim.Time, len(order))
	for _, n := range order {
		var best sim.Time
		for _, p := range n.Parents {
			if upto[p] > best {
				best = upto[p]
			}
		}
		upto[n] = best + runtimeOf(n)
	}
	return upto
}

// CriticalPath returns the longest runtime path length in the DAG.
func CriticalPath(d *DAG, runtimeOf func(*Node) sim.Time) (sim.Time, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return 0, err
	}
	after := cpAfter(order, runtimeOf)
	var best sim.Time
	for _, n := range d.Roots() {
		if after[n] > best {
			best = after[n]
		}
	}
	return best, nil
}
