package serve

import (
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"relief/internal/metrics"
)

// serviceMetrics tracks service-level counters (cache hits/misses, dedup
// joins, rejections, queue depth) and the request-latency distribution,
// exposed in Prometheus text format on /metrics. The counters are atomics
// read through func-backed registry metrics; the histogram and the
// registry's render path are guarded by mu (internal/metrics is built for
// the single-goroutine simulator and is not itself thread-safe).
type serviceMetrics struct {
	requests   atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	joins      atomic.Int64
	rejected   atomic.Int64
	errors     atomic.Int64
	queueDepth atomic.Int64
	running    atomic.Int64
	cacheLen   func() int

	// peers holds the per-peer cluster counters, keyed by peer base URL.
	// Written once by registerPeers before the cluster starts taking
	// traffic, read-only afterwards.
	peers map[string]*peerCounters

	mu     sync.Mutex
	reg    *metrics.Registry
	lat    *metrics.Histogram
	stages map[string]*metrics.BucketHistogram
}

// peerCounters tracks one peer's share of cluster traffic: cache probes
// that hit/missed, requests forwarded to it as the owner, forwards that
// failed (peer down → local fallback), and requests that skipped the peer
// without network I/O because its circuit breaker was open.
type peerCounters struct {
	hits          atomic.Int64
	misses        atomic.Int64
	forwarded     atomic.Int64
	forwardErrors atomic.Int64
	fastFails     atomic.Int64
}

// discardPeer absorbs counts for peers outside the configured fleet; it can
// only be reached if ring membership and registration disagree, and keeps
// the counting path total instead of panicking.
var discardPeer = &peerCounters{}

// peer returns the counters for one peer base URL.
func (m *serviceMetrics) peer(url string) *peerCounters {
	if pc, ok := m.peers[url]; ok {
		return pc
	}
	return discardPeer
}

// registerPeers creates and registers the per-peer cluster counters, one
// labelled series per peer (`relief_serve_peer_hits_total{peer="..."}`,
// ...), plus the circuit-breaker gauge and counters read from each peer's
// health tracker. peers must be sorted and deduplicated (ConfigureCluster's
// fleet normalization guarantees it).
func (m *serviceMetrics) registerPeers(peers []string, health map[string]*peerHealth) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers = make(map[string]*peerCounters, len(peers))
	count := func(v *atomic.Int64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	for _, p := range peers {
		pc := &peerCounters{}
		m.peers[p] = pc
		label := "{peer=\"" + metrics.EscapeLabelValue(p) + "\"}"
		m.reg.CounterFunc("relief_serve_peer_hits_total"+label,
			"Peer cache probes answered from this peer's result cache.", count(&pc.hits))
		m.reg.CounterFunc("relief_serve_peer_misses_total"+label,
			"Peer cache probes this peer could not answer.", count(&pc.misses))
		m.reg.CounterFunc("relief_serve_forwarded_total"+label,
			"Requests forwarded to this peer as the digest's ring owner.", count(&pc.forwarded))
		m.reg.CounterFunc("relief_serve_forward_errors_total"+label,
			"Forwards this peer failed to serve (request fell back to local execution).", count(&pc.forwardErrors))
		m.reg.CounterFunc("relief_serve_peer_fast_fails_total"+label,
			"Requests that skipped this peer without network I/O because its breaker was open.", count(&pc.fastFails))
		h := health[p]
		if h == nil {
			continue
		}
		m.reg.GaugeFunc("relief_serve_peer_breaker_state"+label,
			"Circuit-breaker state for this peer: 0 closed, 1 half-open, 2 open.",
			func() float64 { return float64(h.stateG.Load()) })
		m.reg.CounterFunc("relief_serve_peer_breaker_opens_total"+label,
			"Transitions of this peer's circuit breaker to the open state.", count(&h.opens))
		m.reg.CounterFunc("relief_serve_peer_retries_total"+label,
			"Half-open probes granted against this peer after its backoff expired.", count(&h.probes))
	}
}

// registerDisk registers the durable-cache counters once a spill directory
// is attached (EnableDiskCache).
func (m *serviceMetrics) registerDisk(d *diskCache) {
	m.mu.Lock()
	defer m.mu.Unlock()
	count := func(v *atomic.Int64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	m.reg.CounterFunc("relief_serve_disk_cache_hits_total",
		"Requests answered by loading a verified spill file from the cache directory.", count(&d.hits))
	m.reg.CounterFunc("relief_serve_disk_cache_misses_total",
		"Memory-cache misses that found no spill file on disk either.", count(&d.misses))
	m.reg.CounterFunc("relief_serve_disk_cache_load_errors_total",
		"Spill files rejected on load (bad schema, digest mismatch, failed checksum) and deleted.", count(&d.loadErrors))
	m.reg.CounterFunc("relief_serve_disk_cache_spill_errors_total",
		"Results that could not be spilled to disk (entry stayed memory-only).", count(&d.spillErrors))
	m.reg.GaugeFunc("relief_serve_disk_cache_entries",
		"Spill files currently held in the cache directory.",
		func() float64 { return float64(d.entries()) })
}

func newServiceMetrics(cacheLen func() int) *serviceMetrics {
	m := &serviceMetrics{
		cacheLen: cacheLen,
		stages:   make(map[string]*metrics.BucketHistogram),
	}
	r := metrics.NewRegistry()
	count := func(v *atomic.Int64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	r.CounterFunc("relief_serve_requests_total",
		"Simulation requests accepted for processing.", count(&m.requests))
	r.CounterFunc("relief_serve_cache_hits_total",
		"Requests answered from the result cache.", count(&m.hits))
	r.CounterFunc("relief_serve_cache_misses_total",
		"Requests that executed a simulation.", count(&m.misses))
	r.CounterFunc("relief_serve_dedup_joins_total",
		"Requests coalesced onto an identical in-flight simulation.", count(&m.joins))
	r.CounterFunc("relief_serve_rejected_total",
		"Requests rejected with 429 because the admission queue was full.", count(&m.rejected))
	r.CounterFunc("relief_serve_errors_total",
		"Simulations that finished with an error (including timeouts).", count(&m.errors))
	r.GaugeFunc("relief_serve_queue_depth",
		"Admitted simulations waiting for a worker.", count(&m.queueDepth))
	r.GaugeFunc("relief_serve_running",
		"Simulations currently executing.", count(&m.running))
	r.GaugeFunc("relief_serve_cache_entries",
		"Results held in the LRU cache.", func() float64 { return float64(cacheLen()) })
	m.lat = r.Histogram("relief_serve_request_latency_ms",
		"End-to-end request latency (admission to response) in milliseconds.")
	m.reg = r
	return m
}

func (m *serviceMetrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.lat.Observe(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

// retryAfterSeconds derives the Retry-After hint for 429/503 responses from
// live load instead of a hardcoded constant: the admission backlog times the
// median request service latency is roughly how long the backlog takes to
// drain, so a client that waits that long finds queue space with one retry
// instead of hammering a saturated server. The estimate is clamped to
// [1, 30] seconds; a cold server with no completed requests yet (empty
// latency histogram) answers the 1-second floor.
func (m *serviceMetrics) retryAfterSeconds() int {
	m.mu.Lock()
	var p50 float64
	if m.lat.Count() > 0 {
		p50 = m.lat.Quantile(0.50)
	}
	m.mu.Unlock()
	secs := int(math.Ceil(float64(m.queueDepth.Load()) * p50 / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// observeStage feeds one pipeline-stage duration into its per-stage
// bucketed latency histogram (`relief_serve_stage_latency_ms{stage=...}`),
// registering the stage's series on first use. The registry is not itself
// thread-safe, so registration and observation stay under mu.
func (m *serviceMetrics) observeStage(stage string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		h = m.reg.BucketHistogram(
			metrics.Label("relief_serve_stage_latency_ms", "stage", stage),
			"Wall-clock latency of one serving pipeline stage, labelled by stage (admission, cache, disk, probe, forward, breaker, run, stream), in milliseconds.",
			stageBounds)
		m.stages[stage] = h
	}
	h.Observe(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *serviceMetrics) writePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.WritePrometheus(w)
}
