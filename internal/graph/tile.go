package graph

import (
	"fmt"

	"relief/internal/sim"
)

// Tile splits every node of the DAG into tiles independent sub-tasks, each
// operating on 1/tiles of the data — the task-chunking the paper's
// platform supports for accelerators whose scratchpads cannot hold a whole
// input ("the software runtime or the hardware manager can break down
// tasks into smaller chunks, similar to accelerator composition in GAM+",
// §IV-B).
//
// Edges are connected tile-wise: tile i of a consumer reads tile i of each
// producer. This is exact for element-wise kernels and ignores filter
// halos for convolutions (a few rows of overlap, below the timing model's
// resolution). Compute, output, edge, and extra-input sizes divide evenly
// across tiles; per-node remainders go to the last tile.
func Tile(d *DAG, tiles int) (*DAG, error) {
	if tiles <= 0 {
		return nil, fmt.Errorf("graph: tile count %d", tiles)
	}
	if tiles == 1 {
		return d, nil
	}
	out := New(d.App, d.Sym, d.Deadline)
	split := make(map[*Node][]*Node, len(d.Nodes))
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		parts := make([]*Node, tiles)
		for i := 0; i < tiles; i++ {
			var parents []*Node
			for _, p := range n.Parents {
				parents = append(parents, split[p][i])
			}
			t := out.AddNode(fmt.Sprintf("%s.t%d", n.Name, i), n.Kind, n.Op,
				share(n.OutputBytes, tiles, i), parents...)
			t.FilterSize = n.FilterSize
			t.Pixels = intShare(n.Pixels, tiles, i)
			t.ExtraInputBytes = share(n.ExtraInputBytes, tiles, i)
			for j := range n.Parents {
				t.EdgeInBytes[j] = share(n.EdgeInBytes[j], tiles, i)
			}
			if n.Compute != 0 {
				t.Compute = n.Compute / sim.Time(tiles)
			}
			parts[i] = t
		}
		split[n] = parts
	}
	return out, nil
}

func share(total int64, tiles, i int) int64 {
	base := total / int64(tiles)
	if i == tiles-1 {
		return total - base*int64(tiles-1)
	}
	return base
}

func intShare(total, tiles, i int) int {
	base := total / tiles
	if i == tiles-1 {
		return total - base*(tiles-1)
	}
	return base
}
