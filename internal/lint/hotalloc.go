package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// hotpathDirective marks a function whose body must stay allocation-free.
// It goes in the function's doc comment:
//
//	// push inserts e into the 4-ary heap.
//	//relief:hotpath
//	func (k *Kernel) push(e *Event) { ... }
//
// PR 1's zero-alloc event kernel, DMA chunking, and DRAM burst paths carry
// the annotation; HotAlloc keeps them honest.
const hotpathDirective = "//relief:hotpath"

// HotAlloc flags allocation-causing constructs inside functions annotated
// //relief:hotpath: closures, composite literals that allocate (&T{...},
// slice and map literals), make/new/append calls, interface boxing of
// concrete values at call sites — and, interprocedurally, any static call
// to a callee not proven alloc-free by the allocfree facts (same-package
// helpers, module packages via exported facts, standard library via a
// small allow-table). Calls through func values and interface methods are
// exempt by design: they are the kernel's dispatch points, and the event
// functions are checked where they are declared. Amortized or pool-refill
// allocations that are intentional carry a //lint:allow hotalloc
// directive with a reason.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocations (composite literals, make/new/append, closures, " +
		"interface conversions) and calls to not-proven-alloc-free callees " +
		"in functions annotated //relief:hotpath",
	Requires: []*analysis.Analyzer{AllocFree},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// isHotpath reports whether the function's doc comment contains the
// //relief:hotpath directive. Directive comments are excluded from
// Doc.Text(), so the raw comment list is scanned.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	self, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	scanBody(pass.TypesInfo, fd.Body,
		func(pos token.Pos, kind allocKind) {
			switch kind {
			case allocClosure:
				pass.Reportf(pos, "closure allocated in hotpath function %s; hoist it to a field or package-level func", name)
			case allocAndLit:
				pass.Reportf(pos, "&composite literal escapes to the heap in hotpath function %s", name)
			case allocSliceMap:
				pass.Reportf(pos, "slice/map literal allocates in hotpath function %s", name)
			case allocMake:
				pass.Reportf(pos, "make() allocates in hotpath function %s", name)
			case allocNew:
				pass.Reportf(pos, "new() allocates in hotpath function %s", name)
			case allocAppend:
				pass.Reportf(pos, "append may grow the backing array in hotpath function %s", name)
			case allocConvBox:
				pass.Reportf(pos, "conversion to interface boxes its operand in hotpath function %s", name)
			case allocArgBox:
				pass.Reportf(pos, "argument boxed into interface parameter in hotpath function %s", name)
			}
		},
		func(pos token.Pos, fn *types.Func) {
			if fn == self {
				return // direct recursion: this body is being checked here
			}
			if callAllocFree(pass, fn) {
				return
			}
			pass.Reportf(pos, "call to %s, which is not proven alloc-free, in hotpath function %s",
				callableName(pass.Pkg, fn), name)
		})
}

// callAllocFree reports whether the callee is proven alloc-free — via the
// allocfree facts (which cover this package's own functions too, since
// AllocFree runs first on every package) or the stdlib allow-table. With
// no fact store (fact-less harness runs), calls are not checked at all:
// the syntactic checks still apply, interprocedural ones need the engine.
func callAllocFree(pass *analysis.Pass, fn *types.Func) bool {
	if pass.Facts == nil {
		return true
	}
	return provenAllocFree(pass.Facts, fn)
}
