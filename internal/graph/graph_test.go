package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relief/internal/accel"
	"relief/internal/sim"
)

func chain(n int) *DAG {
	d := New("chain", "X", 10*sim.Millisecond)
	var prev *Node
	for i := 0; i < n; i++ {
		if prev == nil {
			prev = d.AddNode("n0", accel.ElemMatrix, accel.OpAdd, 1000)
		} else {
			prev = d.AddNode("n", accel.ElemMatrix, accel.OpAdd, 1000, prev)
		}
	}
	return d
}

func TestAddNodeWiring(t *testing.T) {
	d := New("t", "T", sim.Millisecond)
	a := d.AddNode("a", accel.ISP, accel.OpDefault, 100)
	b := d.AddNode("b", accel.Grayscale, accel.OpDefault, 200, a)
	c := d.AddNode("c", accel.ElemMatrix, accel.OpAdd, 300, a, b)
	if len(a.Children) != 2 || a.Children[0] != b || a.Children[1] != c {
		t.Fatal("parent->child wiring broken")
	}
	if len(c.Parents) != 2 || c.EdgeInBytes[0] != 100 || c.EdgeInBytes[1] != 200 {
		t.Fatalf("edge bytes default to parent output: got %v", c.EdgeInBytes)
	}
	if c.TotalInputBytes() != 300 {
		t.Errorf("TotalInputBytes = %d, want 300", c.TotalInputBytes())
	}
	c.ExtraInputBytes = 50
	if c.TotalInputBytes() != 350 {
		t.Errorf("TotalInputBytes with extra = %d, want 350", c.TotalInputBytes())
	}
	if !a.IsRoot() || a.IsLeaf() || !c.IsLeaf() || c.IsRoot() {
		t.Error("root/leaf classification wrong")
	}
	if d.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", d.NumEdges())
	}
	if len(d.Roots()) != 1 || len(d.Leaves()) != 1 {
		t.Errorf("roots/leaves = %d/%d, want 1/1", len(d.Roots()), len(d.Leaves()))
	}
}

func TestFinalizeFillsCompute(t *testing.T) {
	d := chain(3)
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	want := accel.ComputeTime(accel.ElemMatrix, accel.OpAdd, 128*128, 0)
	for _, n := range d.Nodes {
		if n.Compute != want {
			t.Errorf("node %s compute = %v, want %v", n.Name, n.Compute, want)
		}
	}
	// Explicit compute times are preserved.
	d2 := chain(1)
	d2.Nodes[0].Compute = 42 * sim.Microsecond
	if err := d2.Finalize(); err != nil {
		t.Fatal(err)
	}
	if d2.Nodes[0].Compute != 42*sim.Microsecond {
		t.Error("Finalize overwrote explicit compute time")
	}
}

func TestCycleDetection(t *testing.T) {
	d := New("cyclic", "Y", sim.Millisecond)
	a := d.AddNode("a", accel.ElemMatrix, accel.OpAdd, 100)
	b := d.AddNode("b", accel.ElemMatrix, accel.OpAdd, 100, a)
	// Manually create a back edge.
	a.Parents = append(a.Parents, b)
	a.EdgeInBytes = append(a.EdgeInBytes, 100)
	b.Children = append(b.Children, a)
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := d.Finalize(); err == nil {
		t.Fatal("Finalize accepted a cyclic graph")
	}
}

func TestDAGCompletion(t *testing.T) {
	d := chain(3)
	d.Release = 10 * sim.Microsecond
	for i := range d.Nodes {
		last := d.NodeDone(sim.Time(20+i) * sim.Microsecond)
		if (i == len(d.Nodes)-1) != last {
			t.Fatalf("NodeDone returned %v at node %d", last, i)
		}
	}
	if !d.Finished() {
		t.Fatal("DAG not finished after all nodes done")
	}
	if d.Runtime() != 12*sim.Microsecond {
		t.Errorf("Runtime = %v, want 12us", d.Runtime())
	}
	if !d.MetDeadline() {
		t.Error("deadline unexpectedly missed")
	}
}

func runtimeOf(n *Node) sim.Time { return n.Compute }

func TestDeadlineDAGMode(t *testing.T) {
	d := chain(4)
	mustFinalize(t, d)
	if err := AssignDeadlines(d, DeadlineDAG, runtimeOf); err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nodes {
		if n.RelDeadline != d.Deadline {
			t.Errorf("node %s deadline %v, want DAG deadline %v", n.Name, n.RelDeadline, d.Deadline)
		}
	}
}

func TestDeadlineCPMChain(t *testing.T) {
	// Four-node chain, each node 1ms, DAG deadline 10ms: node i's deadline
	// is 10 - (remaining nodes after i) * 1ms.
	d := chain(4)
	for _, n := range d.Nodes {
		n.Compute = sim.Millisecond
	}
	mustFinalize(t, d)
	if err := AssignDeadlines(d, DeadlineCPM, runtimeOf); err != nil {
		t.Fatal(err)
	}
	for i, n := range d.Nodes {
		want := d.Deadline - sim.Time(3-i)*sim.Millisecond
		if n.RelDeadline != want {
			t.Errorf("node %d CPM deadline %v, want %v", i, n.RelDeadline, want)
		}
	}
	// The sink's deadline is the DAG deadline; laxity along the chain is
	// constant (paper §VII: LL does not distribute laxity).
	if d.Nodes[3].RelDeadline != d.Deadline {
		t.Error("sink deadline != DAG deadline")
	}
}

func TestDeadlineCPMDiamond(t *testing.T) {
	// a -> {b (3ms), c (1ms)} -> d: b is on the critical path, so c gets
	// slack.
	d := New("diamond", "D", 10*sim.Millisecond)
	a := d.AddNode("a", accel.ElemMatrix, accel.OpAdd, 100)
	b := d.AddNode("b", accel.ElemMatrix, accel.OpAdd, 100, a)
	c := d.AddNode("c", accel.ElemMatrix, accel.OpAdd, 100, a)
	e := d.AddNode("d", accel.ElemMatrix, accel.OpAdd, 100, b, c)
	a.Compute, b.Compute, c.Compute, e.Compute = sim.Millisecond, 3*sim.Millisecond, sim.Millisecond, sim.Millisecond
	mustFinalize(t, d)
	if err := AssignDeadlines(d, DeadlineCPM, runtimeOf); err != nil {
		t.Fatal(err)
	}
	if e.RelDeadline != 10*sim.Millisecond {
		t.Errorf("sink deadline %v, want 10ms", e.RelDeadline)
	}
	if b.RelDeadline != 9*sim.Millisecond {
		t.Errorf("critical-path node deadline %v, want 9ms", b.RelDeadline)
	}
	if c.RelDeadline != 9*sim.Millisecond {
		t.Errorf("slack node deadline %v, want 9ms (latest completion)", c.RelDeadline)
	}
	if a.RelDeadline != 6*sim.Millisecond {
		t.Errorf("source deadline %v, want 6ms", a.RelDeadline)
	}
}

func TestDeadlineSDRDistributesLaxity(t *testing.T) {
	d := chain(4)
	for _, n := range d.Nodes {
		n.Compute = sim.Millisecond
	}
	mustFinalize(t, d)
	if err := AssignDeadlines(d, DeadlineSDR, runtimeOf); err != nil {
		t.Fatal(err)
	}
	// SDR on a uniform chain: node i gets (i+1)/4 of the DAG deadline.
	for i, n := range d.Nodes {
		want := sim.Time(float64(i+1) / 4 * float64(d.Deadline))
		if n.RelDeadline != want {
			t.Errorf("node %d SDR deadline %v, want %v", i, n.RelDeadline, want)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	d := chain(5)
	for _, n := range d.Nodes {
		n.Compute = 2 * sim.Millisecond
	}
	mustFinalize(t, d)
	cp, err := CriticalPath(d, runtimeOf)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 10*sim.Millisecond {
		t.Errorf("critical path %v, want 10ms", cp)
	}
}

func mustFinalize(t *testing.T, d *DAG) {
	t.Helper()
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
}

// randomDAG builds a random layered DAG.
func randomDAG(rng *rand.Rand) *DAG {
	d := New("rand", "R", sim.Time(1+rng.Intn(20))*sim.Millisecond)
	var prevLayer []*Node
	layers := 1 + rng.Intn(5)
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(4)
		var layer []*Node
		for i := 0; i < width; i++ {
			var parents []*Node
			for _, p := range prevLayer {
				if rng.Intn(2) == 0 {
					parents = append(parents, p)
				}
			}
			if len(prevLayer) > 0 && len(parents) == 0 {
				parents = append(parents, prevLayer[rng.Intn(len(prevLayer))])
			}
			n := d.AddNode("n", accel.Kind(rng.Intn(int(accel.NumKinds))), accel.OpAdd, int64(1+rng.Intn(65536)), parents...)
			n.Compute = sim.Time(1+rng.Intn(1000)) * sim.Microsecond
			layer = append(layer, n)
		}
		prevLayer = layer
	}
	return d
}

// TestQuickTopoOrderValid: topological order respects every edge.
func TestQuickTopoOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(rand.New(rand.NewSource(seed)))
		order, err := d.TopoOrder()
		if err != nil || len(order) != len(d.Nodes) {
			return false
		}
		pos := make(map[*Node]int)
		for i, n := range order {
			pos[n] = i
		}
		for _, n := range d.Nodes {
			for _, c := range n.Children {
				if pos[c] <= pos[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCPMDeadlinesMonotone: under CPM, a child's deadline is at least
// its parent's deadline plus the child's runtime slack — in particular
// deadlines never decrease along an edge, and the sink on the critical path
// gets exactly the DAG deadline.
func TestQuickCPMDeadlinesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(rand.New(rand.NewSource(seed)))
		if err := AssignDeadlines(d, DeadlineCPM, runtimeOf); err != nil {
			return false
		}
		for _, n := range d.Nodes {
			for _, c := range n.Children {
				if c.RelDeadline < n.RelDeadline {
					return false
				}
			}
			if n.IsLeaf() && n.RelDeadline > d.Deadline {
				return false
			}
		}
		// At least one leaf carries the full DAG deadline.
		found := false
		for _, n := range d.Leaves() {
			if n.RelDeadline == d.Deadline {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSDRDeadlinesBounded: SDR deadlines are in (0, DAG deadline] and
// monotone along edges.
func TestQuickSDRDeadlinesBounded(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(rand.New(rand.NewSource(seed)))
		if err := AssignDeadlines(d, DeadlineSDR, runtimeOf); err != nil {
			return false
		}
		for _, n := range d.Nodes {
			if n.RelDeadline <= 0 || n.RelDeadline > d.Deadline {
				return false
			}
			for _, c := range n.Children {
				if c.RelDeadline < n.RelDeadline {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
