// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that relief-lint needs.
//
// The container this project builds in has no module proxy access, so the
// real x/tools framework cannot be vendored; this package keeps the same
// shape (Analyzer, Pass, Diagnostic, a Run function returning diagnostics,
// typed Facts with gob serialization, Requires ordering) so the analyzers
// in internal/lint can be ported to the upstream framework mechanically if
// x/tools ever becomes available. Suggested fixes remain out of scope.
//
// Facts (see facts.go) let an analyzer export typed observations about
// exported objects — "this function never allocates", "this field is
// guarded by that mutex" — which the driver feeds, bottom-up over the
// dependency graph, to the analyses of every importing package. The same
// gob stream rides cmd/go's unitchecker protocol (.cfg PackageVetx /
// VetxOutput files), so facts survive `go vet -vettool` too.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> directives. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// Requires lists analyzers that must run before this one on every
	// package, typically because they export facts this one consumes.
	// The driver expands and orders the suite accordingly.
	Requires []*Analyzer

	// FactTypes lists prototype values (pointers to structs) of every
	// fact type this analyzer exports or imports, so the driver can
	// register them with gob. An analyzer with FactTypes runs on VetxOnly
	// dependency units too; one without is skipped there.
	FactTypes []Fact

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report and returns an error only for internal failures (a
	// package that fails to load is handled before Run is called).
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic. It may be called concurrently only if
	// the analyzer itself is concurrent (none of relief's are).
	Report func(Diagnostic)

	// Facts is the pass's fact store: imports from dependency packages
	// plus exports of earlier analyzers on this package. Nil when the
	// driver runs without facts (single-package harness paths).
	Facts *FactSet
}

// ExportObjectFact exports fact about obj, which must belong to the
// package under analysis. No-op when the pass runs without a fact store
// or the object belongs to another package.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	p.Facts.ExportObjectFact(obj, fact)
}

// ImportObjectFact copies into *fact the fact exported about obj by this
// package or any analyzed dependency, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.ImportObjectFact(obj, fact)
}

// Reportf is a convenience wrapper constructing a Diagnostic from a
// position and a format string.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Inspect walks every file in the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
