// Package svctrace is a fixture stub of relief/internal/svctrace: just the
// package path matters — the svcimport analyzer flags any import of it from
// outside the serving layer.
package svctrace

// Header mirrors the trace-propagation header name.
const Header = "X-Relief-Trace"
