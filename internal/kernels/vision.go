package kernels

import "math"

// CannyNonMax suppresses pixels whose gradient magnitude is not a local
// maximum along the gradient direction (the canny-non-max accelerator).
// mag is the gradient magnitude and dir the gradient direction in radians.
func CannyNonMax(mag, dir *Image) *Image {
	sameShape(mag, dir)
	out := NewImage(mag.W, mag.H)
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			m := mag.At(x, y)
			// Quantise the direction into one of four sectors.
			a := math.Mod(float64(dir.At(x, y))+math.Pi, math.Pi) // [0, pi)
			var n1, n2 float32
			switch {
			case a < math.Pi/8 || a >= 7*math.Pi/8:
				n1, n2 = mag.At(x-1, y), mag.At(x+1, y)
			case a < 3*math.Pi/8:
				n1, n2 = mag.At(x-1, y-1), mag.At(x+1, y+1)
			case a < 5*math.Pi/8:
				n1, n2 = mag.At(x, y-1), mag.At(x, y+1)
			default:
				n1, n2 = mag.At(x+1, y-1), mag.At(x-1, y+1)
			}
			if m >= n1 && m >= n2 {
				out.Set(x, y, m)
			}
		}
	}
	return out
}

// EdgeTracking performs hysteresis thresholding (the edge-tracking
// accelerator): pixels above hi are strong edges; pixels above lo connected
// to a strong edge (8-connectivity) are boosted to edges; the rest are
// suppressed. Returns a binary edge map (1 = edge).
func EdgeTracking(nms *Image, lo, hi float32) *Image {
	out := NewImage(nms.W, nms.H)
	type pt struct{ x, y int }
	var stack []pt
	for y := 0; y < nms.H; y++ {
		for x := 0; x < nms.W; x++ {
			if nms.At(x, y) >= hi {
				out.Set(x, y, 1)
				stack = append(stack, pt{x, y})
			}
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y := p.x+dx, p.y+dy
				if x < 0 || x >= nms.W || y < 0 || y >= nms.H {
					continue
				}
				if out.At(x, y) == 0 && nms.At(x, y) >= lo {
					out.Set(x, y, 1)
					stack = append(stack, pt{x, y})
				}
			}
		}
	}
	return out
}

// HarrisNonMax keeps only corner responses that are the maximum of their
// 3x3 neighbourhood and suppresses the rest (the harris-non-max
// accelerator, paper Table I: "enhance maximal corner values in 3x3 grids").
func HarrisNonMax(resp *Image) *Image {
	out := NewImage(resp.W, resp.H)
	for y := 0; y < resp.H; y++ {
		for x := 0; x < resp.W; x++ {
			v := resp.At(x, y)
			if v <= 0 {
				continue
			}
			max := true
			for dy := -1; dy <= 1 && max; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if resp.At(x+dx, y+dy) > v {
						max = false
						break
					}
				}
			}
			if max {
				out.Set(x, y, v)
			}
		}
	}
	return out
}

// Canny runs the full edge-detection pipeline with the same kernel
// decomposition as the simulator's Canny DAG.
func Canny(raw []byte, w, h int, lo, hi float32) (*Image, error) {
	rgb, err := ISP(raw, w, h, [3]float32{1, 1, 1}, 2.2)
	if err != nil {
		return nil, err
	}
	gray := Grayscale(rgb)
	blur := Convolve(gray, GaussianKernel(5, 1.4))
	gx := Convolve(blur, SobelX())
	gy := Convolve(blur, SobelY())
	mag := Sqrt(Add(Sqr(gx), Sqr(gy)))
	dir := Atan2(gy, gx)
	nms := CannyNonMax(Scale(mag, 1), dir)
	return EdgeTracking(nms, lo, hi), nil
}

// Harris runs the full corner-detection pipeline with the same kernel
// decomposition as the simulator's Harris DAG. k is the Harris constant
// (typically 0.04-0.06).
func Harris(raw []byte, w, h int, k, thresh float32) (*Image, error) {
	rgb, err := ISP(raw, w, h, [3]float32{1, 1, 1}, 2.2)
	if err != nil {
		return nil, err
	}
	gray := Grayscale(rgb)
	blur := Convolve(gray, GaussianKernel(5, 1.0))
	ix := Convolve(blur, SobelX())
	iy := Convolve(blur, SobelY())
	sxx := Convolve(Sqr(ix), BoxKernel(3))
	syy := Convolve(Sqr(iy), BoxKernel(3))
	sxy := Convolve(Mul(ix, iy), BoxKernel(3))
	det := Sub(Mul(sxx, syy), Sqr(sxy))
	trace := Add(sxx, syy)
	resp := Sub(det, Scale(Sqr(trace), k))
	resp = Thresh(Scale(resp, 1), thresh)
	resp = Convolve(resp, GaussianKernel(5, 1.0))
	return HarrisNonMax(resp), nil
}

// DeblurRL runs Richardson-Lucy deconvolution for iters iterations using
// the given point-spread function, matching the simulator's Deblur DAG.
func DeblurRL(raw []byte, w, h, iters int, psf [][]float32) (*Image, error) {
	rgb, err := ISP(raw, w, h, [3]float32{1, 1, 1}, 2.2)
	if err != nil {
		return nil, err
	}
	obs := Grayscale(rgb)
	est := obs.Clone()
	flipped := flipFilter(psf)
	for i := 0; i < iters; i++ {
		reblur := Convolve(est, psf)
		ratio := Div(obs, reblur)
		corr := Convolve(ratio, flipped)
		est = Mul(est, corr)
	}
	return est, nil
}

func flipFilter(f [][]float32) [][]float32 {
	n := len(f)
	out := make([][]float32, n)
	for y := 0; y < n; y++ {
		out[y] = make([]float32, n)
		for x := 0; x < n; x++ {
			out[y][x] = f[n-1-y][n-1-x]
		}
	}
	return out
}

// BlurRaw convolves raw 8-bit data with a PSF, producing a synthetic blurry
// capture for the deblur example and tests.
func BlurRaw(raw []byte, w, h int, psf [][]float32) []byte {
	im := NewImage(w, h)
	for i, v := range raw {
		im.Pix[i] = float32(v)
	}
	blurred := Convolve(im, psf)
	out := make([]byte, len(raw))
	for i, v := range blurred.Pix {
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}
