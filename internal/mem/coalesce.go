package mem

import "relief/internal/sim"

// coalesceEnabled gates analytic transfer claims. Tests flip it to compare
// the claim path against the chunk-wise reference implementation.
var coalesceEnabled = true

// claim serves a whole transfer analytically while it is the sole occupant
// of every resource on its path. Store-and-forward chunk pipelining over
// idle FIFO stages has a closed-form schedule, so instead of 2 events per
// chunk per stage the claim fires one completion event — and, if any other
// stream touches a claimed resource (or any resource sharing the path's
// union-occupancy tracker) before that, materialize() reconstructs the
// exact chunk-wise state the reference implementation would have at that
// instant: per-stage in-service chunk, waiting queue, busy accounting,
// bytes served, and union-occupancy state. Timing is bit-identical in
// both directions because every quantity below is integer picosecond
// arithmetic over the same per-chunk service times the chunk loop uses.
//
// Schedule. Let tau[s] = ServiceTime(DefaultChunkBytes) at stage s,
// lam[s] = ServiceTime(last chunk), and for the C-1 uniform chunks
// (i < C-1):
//
//	end(i, s) = t0 + sum(tau[0..s]) + i*max(tau[0..s])
//
// which satisfies the pipeline recurrence end(i,s) = max(end(i-1,s),
// end(i,s-1)) + tau[s] by induction (the max telescopes into the prefix
// maximum). The final, possibly short chunk follows the recurrence
// directly via lastStart/lastEnd.
type claim struct {
	k      *sim.Kernel
	t      *transfer
	stages []*Resource
	t0     sim.Time // instant the first chunk would have been enqueued
	full   int64    // uniform chunk size
	last   int64    // final chunk size (1..full)
	C      int      // chunk count (C-1 uniform chunks + the final one)

	tau, lam  []sim.Time // per-stage service time of a full / final chunk
	sum, max  []sim.Time // prefix sum / prefix max of tau
	lastStart []sim.Time // per-stage service start of the final chunk
	lastEnd   []sim.Time // per-stage service end of the final chunk

	occ      *Occupancy
	watched  []int // stage indices attached to occ
	ev       *sim.Event
	released bool
}

// tryClaim installs an analytic claim for t if every stage on its path is
// an idle, unclaimed, callback-free Resource and the path's occupancy
// tracker is quiet. It returns false (and leaves no trace) when any
// condition fails, in which case the caller proceeds chunk-wise.
func tryClaim(t *transfer) bool {
	if !coalesceEnabled {
		return false
	}
	S := len(t.path)
	stages := make([]*Resource, S)
	var occ *Occupancy
	var watched []int
	for s, srv := range t.path {
		r, ok := srv.(*Resource)
		if !ok {
			return false // e.g. the bank-level DRAM controller
		}
		if r.busy || r.claim != nil || len(r.q) != r.head || r.OnBusyChange != nil {
			return false
		}
		for _, prev := range stages[:s] {
			if prev == r {
				return false
			}
		}
		if r.occ != nil {
			if occ == nil {
				occ = r.occ
			} else if occ != r.occ {
				return false
			}
			watched = append(watched, s)
		}
		stages[s] = r
	}
	if occ != nil && (occ.active > 0 || occ.cl != nil) {
		return false
	}
	if len(watched) > 2 {
		return false
	}

	c := &claim{
		k:      t.k,
		t:      t,
		stages: stages,
		t0:     t.k.Now(),
		full:   DefaultChunkBytes,
		last:   t.chunkSize(t.nChunks - 1),
		C:      t.nChunks,
		occ:    occ,
	}
	c.tau = make([]sim.Time, S)
	c.lam = make([]sim.Time, S)
	c.sum = make([]sim.Time, S)
	c.max = make([]sim.Time, S)
	c.lastStart = make([]sim.Time, S)
	c.lastEnd = make([]sim.Time, S)
	for s, r := range stages {
		c.tau[s] = r.ServiceTime(c.full)
		c.lam[s] = r.ServiceTime(c.last)
		c.sum[s] = c.tau[s]
		c.max[s] = c.tau[s]
		if s > 0 {
			c.sum[s] += c.sum[s-1]
			if c.max[s-1] > c.max[s] {
				c.max[s] = c.max[s-1]
			}
		}
	}
	U := c.C - 1
	for s := range stages {
		var at sim.Time
		if s == 0 {
			at = c.t0
			if U > 0 {
				at = c.endOf(U-1, 0)
			}
		} else {
			at = c.lastEnd[s-1]
			if U > 0 {
				if e := c.endOf(U-1, s); e > at {
					at = e
				}
			}
		}
		c.lastStart[s] = at
		c.lastEnd[s] = at + c.lam[s]
	}
	c.watched = watched
	if len(watched) == 2 {
		// Two watched stages are only claimable when their union busy time
		// is provably the single interval [t0, lastEnd]: both stages must
		// form one contiguous busy period each (stage 0 always does) with
		// no union gap between them. Equal-bandwidth crossbar ports satisfy
		// this; anything else falls back to chunk-wise service.
		if S != 2 || watched[0] != 0 || watched[1] != 1 {
			return false
		}
		if c.max[1] != c.tau[1] {
			return false
		}
		if U > 0 && c.lastStart[1] != c.endOf(U-1, 1) {
			return false
		}
	}

	for _, r := range stages {
		r.claim = c
	}
	if occ != nil {
		occ.cl = c
		occ.Claims++
	}
	c.ev = c.k.At(c.lastEnd[S-1], c.complete)
	return true
}

func (c *claim) size(i int) int64 {
	if i == c.C-1 {
		return c.last
	}
	return c.full
}

// endOf returns when stage s finishes serving chunk i.
func (c *claim) endOf(i, s int) sim.Time {
	if i == c.C-1 {
		return c.lastEnd[s]
	}
	return c.t0 + c.sum[s] + sim.Time(i)*c.max[s]
}

// startOf returns when stage s begins serving chunk i.
func (c *claim) startOf(i, s int) sim.Time {
	if i == c.C-1 {
		return c.lastStart[s]
	}
	return c.endOf(i, s) - c.tau[s]
}

// completionFired reports whether the chunk-wise reference would already
// have dispatched chunk i's completion at stage s, relative to the event
// currently firing. A completion at a tick strictly before now has fired;
// one landing exactly at now has fired iff the reference scheduled it
// before the current event was scheduled — events fire in (time, seq)
// order and sequence numbers grow with the clock, so a completion
// scheduled at service start startOf(i,s) precedes the current event
// exactly when startOf(i,s) < CurrentBorn(). (Equal schedule ticks are
// resolved as not-yet-fired; the creation order within a single tick is
// not reconstructible, and the full-grid golden test bounds the risk.)
func (c *claim) completionFired(i, s int, now sim.Time) bool {
	end := c.endOf(i, s)
	if end != now {
		return end < now
	}
	return c.startOf(i, s) < c.k.CurrentBorn()
}

// doneChunks counts the chunks whose completion at stage s has fired.
func (c *claim) doneChunks(s int, now sim.Time) int {
	U := c.C - 1
	d := 0
	if U > 0 {
		if q := now - (c.t0 + c.sum[s]); q > 0 {
			d = int((int64(q)-1)/int64(c.max[s])) + 1
			if d > U {
				d = U
			}
		}
	}
	// The next chunk may be completing exactly at this tick.
	if d < U && c.endOf(d, s) == now && c.completionFired(d, s, now) {
		d++
	}
	if d == U && (c.lastEnd[s] < now || (c.lastEnd[s] == now && c.completionFired(c.C-1, s, now))) {
		d++
	}
	return d
}

// arrivedFired reports whether chunk i's arrival at stage s has been
// delivered: arrivals ride the upstream completion event (or, for the
// chunks after the first at stage 0, the previous chunk's stage-0
// completion), so the same fired test applies.
func (c *claim) arrivedFired(i, s int, now sim.Time) bool {
	if s == 0 {
		if i == 0 {
			return true // enqueued at t0 by the event that created the claim
		}
		return c.completionFired(i-1, 0, now)
	}
	return c.completionFired(i, s-1, now)
}

// arrived counts chunks delivered to stage s.
func (c *claim) arrived(s int, now sim.Time) int {
	if s == 0 {
		d := c.doneChunks(0, now)
		if d > c.C-1 {
			d = c.C - 1
		}
		return d + 1 // chunk i+1 arrives when chunk i completes; chunk 0 at t0
	}
	return c.doneChunks(s-1, now)
}

// stageView is the exact chunk-wise state of one stage at an instant.
type stageView struct {
	done     int      // chunks completed strictly before now
	inSvc    bool     // a chunk is in service (its end may equal now)
	svcEnd   sim.Time // completion time of the in-service chunk
	queued   int      // chunks arrived and waiting behind the in-service one
	busyUpTo sim.Time // cumulative busy time through now, open period included
	busyAt   sim.Time // start of the open busy period (valid iff inSvc)
}

func (c *claim) view(s int, now sim.Time) stageView {
	v := stageView{done: c.doneChunks(s, now)}
	if v.done < c.C {
		// Chunk v.done is in service iff its arrival was delivered: the
		// previous same-stage completion has fired by construction of
		// v.done, and service start is the max of the two, so no separate
		// startOf <= now check is needed.
		if c.arrivedFired(v.done, s, now) {
			v.inSvc = true
			v.svcEnd = c.endOf(v.done, s)
		}
	}
	v.queued = c.arrived(s, now) - v.done
	if v.inSvc {
		v.queued--
	}
	// Service is FIFO and non-preemptive, so cumulative busy time is the
	// sum of completed service times plus the in-service elapsed time.
	nd := v.done
	if U := c.C - 1; nd > U {
		nd = U
	}
	v.busyUpTo = sim.Time(nd) * c.tau[s]
	if v.done == c.C {
		v.busyUpTo += c.lam[s]
	}
	if v.inSvc {
		v.busyUpTo += now - c.startOf(v.done, s)
		v.busyAt = c.periodStart(v.done, s)
	}
	return v
}

// periodStart returns the beginning of the contiguous busy period that
// contains chunk i at stage s: consecutive chunks merge into one period
// when each starts exactly when its predecessor ends.
func (c *claim) periodStart(i, s int) sim.Time {
	U := c.C - 1
	backToBack := c.max[s] == c.tau[s] // uniform chunks leave no gap
	if i == c.C-1 {
		if U > 0 && c.lastStart[s] == c.endOf(U-1, s) {
			if backToBack {
				return c.startOf(0, s)
			}
			return c.startOf(U-1, s)
		}
		return c.lastStart[s]
	}
	if backToBack {
		return c.startOf(0, s)
	}
	return c.startOf(i, s)
}

func (c *claim) bytesDone(done int) int64 {
	n := done
	if U := c.C - 1; n > U {
		n = U
	}
	b := int64(n) * c.full
	if done == c.C {
		b += c.last
	}
	return b
}

// stageIndex locates r on the claimed path.
func (c *claim) stageIndex(r *Resource) int {
	for s, st := range c.stages {
		if st == r {
			return s
		}
	}
	panic("mem: resource not part of its claim")
}

// stageBusyUpTo, stageBytesDone and stageQueueLen answer mid-claim queries
// on a claimed resource without materializing it.
func (c *claim) stageBusyUpTo(r *Resource, now sim.Time) sim.Time {
	return c.view(c.stageIndex(r), now).busyUpTo
}

func (c *claim) stageBytesDone(r *Resource, now sim.Time) int64 {
	return c.bytesDone(c.view(c.stageIndex(r), now).done)
}

func (c *claim) stageQueueLen(r *Resource, now sim.Time) int {
	return c.view(c.stageIndex(r), now).queued
}

// unionBusyUpTo returns the watched stages' union busy time accumulated by
// this claim through now.
func (c *claim) unionBusyUpTo(now sim.Time) sim.Time {
	switch len(c.watched) {
	case 0:
		return 0
	case 1:
		return c.view(c.watched[0], now).busyUpTo
	default:
		// Verified single interval [t0, lastEnd] at claim time.
		end := c.lastEnd[c.watched[1]]
		if now > end {
			now = end
		}
		if now < c.t0 {
			return 0
		}
		return now - c.t0
	}
}

// complete fires at the analytically computed end of the transfer: settle
// every stage's counters, release the claim, and finish the transfer. The
// stages were never marked busy, so all busy time lands in busyAcc here —
// queries mid-claim saw the same totals via the stage views.
func (c *claim) complete() {
	if c.released {
		return
	}
	c.released = true
	for s, r := range c.stages {
		r.claim = nil
		r.bytes += c.t.n
		r.busyAcc += sim.Time(c.C-1)*c.tau[s] + c.lam[s]
	}
	if c.occ != nil {
		c.occ.cl = nil
		if len(c.watched) == 1 {
			s := c.watched[0]
			c.occ.acc += sim.Time(c.C-1)*c.tau[s] + c.lam[s]
		} else if len(c.watched) == 2 {
			c.occ.acc += c.lastEnd[c.watched[1]] - c.t0
		}
	}
	c.t.finish()
}

// materialize folds the claim back into exact chunk-wise state at the
// current instant, so another stream enqueueing on (or near) the path
// observes precisely the FIFO queues, busy periods and counters the
// reference implementation would have produced, and bandwidth sharing
// proceeds identically from here on.
func (c *claim) materialize() {
	if c.released {
		return
	}
	c.released = true
	if c.occ != nil {
		c.occ.Conflicts++
	}
	now := c.k.Now()
	c.k.Cancel(c.ev)
	for _, r := range c.stages {
		r.claim = nil
	}
	if c.occ != nil {
		c.occ.cl = nil
	}
	t := c.t
	views := make([]stageView, len(c.stages))
	// If the final completion fired at this very tick before the current
	// event, the reference already delivered the transfer's done callback;
	// do the same once the counters below are settled.
	finished := c.doneChunks(len(c.stages)-1, now) == c.C
	inSvc := make([]int, 0, len(c.stages))
	for s, r := range c.stages {
		v := c.view(s, now)
		views[s] = v
		t.next[s] = v.done
		r.bytes += c.bytesDone(v.done)
		if v.inSvc {
			r.busy = true
			r.busyAt = v.busyAt
			r.busyAcc += v.busyUpTo - (now - v.busyAt)
			i := v.done
			r.cur = request{bytes: c.size(i), done: t.stageDone[s]}
			inSvc = append(inSvc, s)
			for q := i + 1; q <= i+v.queued; q++ {
				r.push(request{bytes: c.size(q), done: t.stageDone[s]})
			}
		} else {
			r.busyAcc += v.busyUpTo
		}
	}
	// Schedule the in-service completions in the order the reference would
	// fire them. All these events get fresh sequence numbers, so same-tick
	// completions fire in the order scheduled here; the reference fires
	// them ordered by schedule time (earlier service start first), and for
	// lock-step stages that tie exactly, the downstream completion was
	// created first (advance enqueues downstream before the same stage
	// schedules its next chunk), so it precedes.
	for x := 1; x < len(inSvc); x++ {
		for y := x; y > 0; y-- {
			a, b := views[inSvc[y-1]], views[inSvc[y]]
			sa, sb := c.startOf(a.done, inSvc[y-1]), c.startOf(b.done, inSvc[y])
			if a.svcEnd < b.svcEnd || (a.svcEnd == b.svcEnd && (sa < sb || (sa == sb && inSvc[y-1] > inSvc[y]))) {
				break
			}
			inSvc[y-1], inSvc[y] = inSvc[y], inSvc[y-1]
		}
	}
	for _, s := range inSvc {
		c.k.At(views[s].svcEnd, c.stages[s].servedFn)
	}
	defer func() {
		if finished {
			t.finish()
		}
	}()
	if c.occ == nil {
		return
	}
	// Reconstruct the union tracker. The claim only existed while no
	// event-driven link was active, so o.active is 0 here and the claim's
	// own union state replaces it wholesale.
	o := c.occ
	switch len(c.watched) {
	case 1:
		v := views[c.watched[0]]
		if v.inSvc {
			o.acc += v.busyUpTo - (now - v.busyAt)
			o.active = 1
			o.since = v.busyAt
		} else {
			o.acc += v.busyUpTo
		}
	case 2:
		// Single union interval open since t0; a watched stage is
		// mid-service whenever any chunk remains, so the interval only
		// closes when the whole transfer already finished at this tick.
		o.active = 0
		for _, s := range c.watched {
			if views[s].inSvc {
				o.active++
			}
		}
		if o.active > 0 {
			o.since = c.t0
		} else {
			o.acc += c.lastEnd[c.watched[1]] - c.t0
		}
	}
}
