// Custompolicy shows how to plug a user-defined scheduling policy into the
// simulator through the public Policy interface: a Shortest-Job-First
// discipline that sorts the ready queue by predicted runtime. SJF maximises
// short-task throughput but is deadline-blind; the comparison against the
// built-in policies shows what that costs under contention.
package main

import (
	"fmt"
	"log"

	"relief"
)

// SJF is Shortest Job First: the ready queue is kept sorted by each task's
// predicted runtime, shortest at the head.
type SJF struct{}

// Name implements relief.Policy.
func (SJF) Name() string { return "SJF" }

// DeadlineMode implements relief.Policy. SJF ignores deadlines; node
// deadlines are still assigned with the critical-path method so the
// deadline-met statistics are comparable with the other policies.
func (SJF) DeadlineMode() relief.DeadlineMode { return relief.DeadlineCPM }

// InsertPos implements relief.Policy: walk the queue until a longer task is
// found. The second return value is how many entries were examined, which
// the simulator uses to model the scheduler's microcontroller latency.
func (SJF) InsertPos(q []*relief.Node, n *relief.Node, now relief.Time) (int, int) {
	for i, e := range q {
		if n.PredRuntime < e.PredRuntime {
			return i, i + 1
		}
	}
	return len(q), len(q)
}

func run(policyName string, custom relief.Policy) {
	sys := relief.NewSystem(relief.Config{Policy: policyName, Custom: custom})
	for _, app := range []string{"canny", "gru", "lstm"} {
		dag, err := relief.BuildWorkload(app)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Submit(dag, 0); err != nil {
			log.Fatal(err)
		}
	}
	rep := sys.Run()
	name := policyName
	if custom != nil {
		name = custom.Name()
	}
	fwd, col := rep.ForwardsPerEdge()
	fmt.Printf("%-8s makespan=%-10v fwd=%5.1f%% col=%5.1f%% nodeDeadlines=%5.1f%%\n",
		name, rep.Makespan, fwd, col, rep.NodeDeadlinePct())
}

func main() {
	fmt.Println("Custom SJF policy vs built-ins on the CGL mix:")
	run("", SJF{})
	for _, p := range []string{"FCFS", "LAX", "RELIEF"} {
		run(p, nil)
	}
}
