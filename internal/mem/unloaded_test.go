package mem

import (
	"fmt"
	"testing"

	"relief/internal/sim"
)

// TestUnloadedTimeMatchesIdleTransfer checks the closed form against the
// event-driven transfer engine on idle resources: with zero setup, an
// uncontended StartTransfer must finish exactly at UnloadedTime, for both
// the analytic-claim fast path and the chunk-wise slow path.
func TestUnloadedTimeMatchesIdleTransfer(t *testing.T) {
	cases := []struct {
		stages []float64 // bandwidths in bytes/s
		bytes  int64
	}{
		{[]float64{6.4 * GB}, 4096},
		{[]float64{6.4 * GB}, 100_000},
		{[]float64{6.4 * GB, 14.9 * GB}, 262144},
		{[]float64{14.9 * GB, 6.4 * GB}, 262144},
		{[]float64{6.4 * GB, 14.9 * GB, 10 * GB}, 1_000_001},
		{[]float64{6.4 * GB}, 1}, // sub-chunk transfer
		{[]float64{6.4 * GB, 14.9 * GB}, 4096},
	}
	for _, coalesce := range []bool{true, false} {
		saved := coalesceEnabled
		coalesceEnabled = coalesce
		for _, tc := range cases {
			k := sim.NewKernel()
			path := make([]Server, len(tc.stages))
			for i, bw := range tc.stages {
				path[i] = NewResource(k, fmt.Sprintf("s%d", i), bw)
			}
			var got sim.Time
			StartTransfer(k, path, tc.bytes, 0, func(res TransferResult) {
				got = res.End - res.Start
			})
			k.Run()
			want := UnloadedTime(path, tc.bytes)
			if got != want {
				t.Errorf("coalesce=%v stages=%v bytes=%d: transfer=%v UnloadedTime=%v",
					coalesce, tc.stages, tc.bytes, got, want)
			}
		}
		coalesceEnabled = saved
	}
}

func TestUnloadedTimeDegenerate(t *testing.T) {
	k := sim.NewKernel()
	r := NewResource(k, "r", GB)
	if UnloadedTime([]Server{r}, 0) != 0 {
		t.Error("zero bytes must cost 0")
	}
	if UnloadedTime(nil, 4096) != 0 {
		t.Error("empty path must cost 0")
	}
}
