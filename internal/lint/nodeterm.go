package lint

import (
	"go/ast"
	"go/types"

	"relief/internal/lint/analysis"
)

// nodetermScope lists the simulation packages in which wall-clock time
// and ambient randomness are forbidden: everything these packages compute
// must be a pure function of the workload and the seed, or the golden
// digests (relief_test.go, fault, metrics JSON) stop being bit-stable.
var nodetermScope = []string{
	"internal/sim", "internal/mem", "internal/dram", "internal/manager",
	"internal/sched", "internal/fault", "internal/exp", "internal/accel",
	"internal/xbar",
}

// wallClockFuncs are the time package functions that read or depend on the
// host clock. Pure conversions/constructors (time.Duration arithmetic,
// time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// seededRandFuncs are the math/rand constructors that are legitimate in
// simulation code because the caller supplies the seed.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 sources
}

// NoDeterm flags wall-clock reads and unseeded global randomness in
// simulation packages.
var NoDeterm = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid time.Now/Since and global math/rand in simulation packages; " +
		"simulated time comes from sim.Kernel and randomness from a seeded rand.Rand",
	Run: runNoDeterm,
}

func runNoDeterm(pass *analysis.Pass) error {
	if !pkgIn(pass.Pkg.Path(), nodetermScope...) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		// Package-level functions only: methods on a seeded *rand.Rand or
		// a time.Duration value are deterministic.
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"wall-clock call time.%s in simulation package %s breaks run reproducibility; use sim.Kernel time",
					fn.Name(), pass.Pkg.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededRandFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global %s.%s is not seed-stable; draw from a rand.Rand seeded by the fault/workload plan",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
	return nil
}
