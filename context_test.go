package relief_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"relief"
)

func loopSystem(t *testing.T, opts ...relief.Option) *relief.System {
	t.Helper()
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"}, opts...)
	for _, name := range []string{"canny", "gru", "lstm"} {
		name := name
		build := func() *relief.DAG {
			d, err := relief.BuildWorkload(name)
			if err != nil {
				t.Fatalf("build %s: %v", name, err)
			}
			return d
		}
		if err := sys.SubmitLoop(build, 0); err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
	}
	return sys
}

// TestRunForContextCancelledMidRun: cancelling from another goroutine while
// the kernel is dispatching must abort the run with a clean wrapped context
// error and no Report — never partial statistics. Run under -race this also
// proves the cancellation poll is race-free.
//
// A wall-clock sleep would race the (fast) event loop, so the test gates on
// the simulation itself: a metrics probe — sampled on the simulation
// goroutine mid-run — parks the run until a second goroutine has cancelled
// the context, guaranteeing the cancellation lands while events remain.
func TestRunForContextCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	gate := make(chan struct{})      // closed by the probe: simulation mid-run
	cancelled := make(chan struct{}) // closed once cancel() has run
	go func() {
		<-gate
		cancel()
		close(cancelled)
	}()
	reg := relief.NewMetricsRegistry()
	reg.GaugeFunc("test_cancel_gate", "parks the first probe until cancelled", func() float64 {
		once.Do(func() {
			close(gate)
			<-cancelled
		})
		return 0
	})
	sys := loopSystem(t, relief.WithMetrics(reg))
	rep, err := sys.RunForContext(ctx, 50*relief.Millisecond)
	if err == nil {
		t.Fatal("cancelled run returned no error (cancel landed too late?)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("cancelled run leaked a report: %+v", rep)
	}
}

// TestRunContextCompletesWithoutCancel: an unexercised context changes
// nothing — the run completes and reports normally.
func TestRunContextCompletesWithoutCancel(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	d, err := relief.BuildWorkload("canny")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if rep == nil || rep.NodesDone == 0 {
		t.Fatal("completed run reported nothing")
	}
	// And the uncancellable Background context installed no interrupt, so
	// the report matches a plain Run bit-for-bit.
	ref := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	d2, _ := relief.BuildWorkload("canny")
	if err := ref.Submit(d2, 0); err != nil {
		t.Fatal(err)
	}
	if want := ref.Run(); want.Makespan != rep.Makespan || want.NodesDone != rep.NodesDone {
		t.Fatalf("context-aware run diverged: makespan %v vs %v", rep.Makespan, want.Makespan)
	}
}

// TestRunContextPreCancelled: an already-cancelled context never starts the
// simulation.
func TestRunContextPreCancelled(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	d, err := relief.BuildWorkload("canny")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := sys.RunContext(ctx)
	if !errors.Is(err, context.Canceled) || rep != nil {
		t.Fatalf("pre-cancelled run: rep=%v err=%v", rep, err)
	}
}
