// nopanic fixture for the workload builders.
package workload

import "fmt"

// Build reports invalid applications as errors; a panic is a regression.
func Build(level int) error {
	if level < 0 {
		panic(fmt.Sprintf("workload: bad level %d", level)) // want `panic in workload Build: the facade/workload API contract is error returns`
	}
	return nil
}

// MustBuild panics by convention; no diagnostic.
func MustBuild(level int) {
	if err := Build(level); err != nil {
		panic(err)
	}
}
