package predict

import "fmt"

// BWState is the serializable state of a bandwidth predictor. The Kind tag
// must match the predictor the state is restored into; Vals carries the
// kind-specific observation history (Last: one sample; Average: the ring
// buffer; EWMA: the running prediction).
type BWState struct {
	Kind string
	Vals []float64
	Next int
	Full bool
	Init bool
}

// CaptureBW snapshots a bandwidth predictor's observation state.
func CaptureBW(p BWPredictor) BWState {
	s := BWState{Kind: p.Name()}
	switch v := p.(type) {
	case *Max:
		// stateless
	case *Last:
		s.Vals = []float64{v.last}
		s.Init = v.last != 0
	case *Average:
		s.Vals = append([]float64(nil), v.ring...)
		s.Next = v.next
		s.Full = v.full
	case *EWMA:
		s.Vals = []float64{v.pred}
		s.Init = v.init
	default:
		panic(fmt.Sprintf("predict: cannot capture predictor %T", p))
	}
	return s
}

// RestoreBW primes a freshly constructed predictor of the same kind with
// captured observation state.
func RestoreBW(p BWPredictor, s BWState) error {
	if p.Name() != s.Kind {
		return fmt.Errorf("predict: restore into %s predictor, checkpoint has %s", p.Name(), s.Kind)
	}
	switch v := p.(type) {
	case *Max:
		// stateless
	case *Last:
		if s.Init && len(s.Vals) == 1 {
			v.last = s.Vals[0]
		}
	case *Average:
		v.ring = append([]float64(nil), s.Vals...)
		v.next = s.Next
		v.full = s.Full
	case *EWMA:
		if len(s.Vals) == 1 {
			v.pred = s.Vals[0]
		}
		v.init = s.Init
	default:
		return fmt.Errorf("predict: cannot restore predictor %T", p)
	}
	return nil
}
