package metrics

import (
	"math"
	"sort"
)

// histBuckets is the number of power-of-two buckets. Bucket 0 covers
// (-inf, 1]; bucket i covers (2^(i-1), 2^i]. 64 buckets span every value a
// picosecond-clock simulation can produce.
const histBuckets = 64

// Histogram is a log-bucketed (base-2) distribution sketch with exact
// count, sum, and max. Quantiles are estimated as the upper bound of the
// bucket containing the target rank, capped at the exact max — a one-sided
// (over-)estimate with at most 2x relative error, which is plenty for
// p50/p95/p99 tail reporting and keeps Observe to a handful of integer
// operations. Methods are no-ops on a nil receiver.
type Histogram struct {
	name, help string
	count      uint64
	sum        float64
	max        float64
	buckets    [histBuckets]uint64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// bucketOf maps a value to its bucket index: the smallest i with
// v <= 2^i (clamped to the table).
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := math.Ilogb(v)
	if math.Ldexp(1, b) < v {
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// BucketHistogram is an explicit-bounds histogram exported in Prometheus
// TYPE histogram form: cumulative `_bucket{le="..."}` series plus `_sum`
// and `_count`. Unlike Histogram (log-2 sketch exported as a summary), the
// bucket bounds are chosen by the caller — the serving layer uses
// latency-tuned millisecond bounds for its per-stage histograms. It lives
// in the Prometheus exposition only: WriteJSON/WriteCSV ignore it, so the
// relief-metrics/1 golden digests are unaffected. Methods are no-ops on a
// nil receiver.
type BucketHistogram struct {
	name, help string
	bounds     []float64 // sorted upper bounds, exclusive of +Inf
	counts     []uint64  // len(bounds)+1; last is the +Inf overflow
	count      uint64
	sum        float64
}

// Name returns the histogram's registered name.
func (h *BucketHistogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value into its (non-cumulative) bucket; export
// accumulates.
func (h *BucketHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
}

// Count returns the number of observations.
func (h *BucketHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *BucketHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]): the upper bound of the
// bucket holding the ceil(q*count)-th smallest observation, capped at the
// exact maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			ub := math.Ldexp(1, i)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}
