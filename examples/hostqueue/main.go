// Hostqueue demonstrates the host/manager shared-memory path of paper
// §III-C: the "CPU side" serialises an application DAG into the exact
// binary node structures of Table III (72-byte base node, +12 per parent,
// +4 per child), the "manager side" parses the image back, reconstructs
// the task graph, and schedules it — alongside the Table IV accelerator
// metadata block (32 bytes per accelerator, 236 bytes for the platform).
package main

import (
	"fmt"
	"log"

	"relief"
	"relief/internal/accel"
	"relief/internal/graph"
	"relief/internal/hostif"
	"relief/internal/workload"
)

func main() {
	// Host side: build Canny and write it into "shared memory".
	d := workload.MustBuild(workload.Canny)
	err := graph.AssignDeadlines(d, graph.DeadlineCPM,
		func(n *graph.Node) relief.Time { return n.Compute })
	if err != nil {
		log.Fatal(err)
	}
	img, addrs, err := hostif.EncodeDAG(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: wrote %d nodes (%d bytes) into the submission queue\n", len(addrs), len(img))
	for i, n := range d.Nodes[:3] {
		fmt.Printf("  node %-8s @ %#x  %d bytes (%d parents, %d children)\n",
			n.Name, addrs[i], hostif.NodeSize(len(n.Parents), len(n.Children)),
			len(n.Parents), len(n.Children))
	}
	fmt.Printf("  ... and the manager's own metadata: %d accelerators x %d B + %d B = %d B\n\n",
		accel.NumKinds, hostif.AccStateBytes, hostif.ManagerHeaderBytes,
		hostif.TotalMetadataBytes(int(accel.NumKinds)))

	// Manager side: parse the image and rebuild the task graph.
	decoded, err := hostif.DecodeDAG(img)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt := rebuild(decoded, d.App, d.Sym, d.Deadline)
	fmt.Printf("manager: parsed %d nodes, %d edges\n", len(rebuilt.Nodes), rebuilt.NumEdges())

	// Schedule the rebuilt graph.
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	if err := sys.Submit(rebuilt, 0); err != nil {
		log.Fatal(err)
	}
	rep := sys.Run()
	fmt.Printf("manager: executed in %v — forwards %d, colocations %d, deadlines %.0f%%\n",
		rep.Makespan, rep.Forwards, rep.Colocations, rep.NodeDeadlinePct())
}

// rebuild converts the decoded shared-memory image back into a task graph.
func rebuild(nodes []hostif.DecodedNode, app, sym string, deadline relief.Time) *relief.DAG {
	d := relief.NewDAG(app, sym, deadline)
	byAddr := make(map[hostif.Pointer]*relief.Node, len(nodes))
	for i, dn := range nodes {
		var parents []*relief.Node
		for _, pa := range dn.Parents {
			parents = append(parents, byAddr[pa])
		}
		n := d.AddNode(fmt.Sprintf("n%d", i), relief.Kind(dn.AccID), relief.Op(dn.Op),
			int64(dn.OutputBytes), parents...)
		n.FilterSize = int(dn.FilterSize)
		n.ExtraInputBytes = int64(dn.ExtraBytes)
		for j, eb := range dn.EdgeBytes {
			n.EdgeInBytes[j] = int64(eb)
		}
		byAddr[dn.Addr] = n
	}
	return d
}
