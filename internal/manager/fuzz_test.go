package manager

import (
	"fmt"
	"math/rand"
	"testing"

	"relief/internal/accel"
	"relief/internal/core"
	"relief/internal/graph"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
)

// randomAppDAG builds a random layered DAG with realistic byte sizes.
func randomAppDAG(rng *rand.Rand, name string) *graph.DAG {
	d := graph.New(name, "R", sim.Time(5+rng.Intn(30))*sim.Millisecond)
	var prev []*graph.Node
	layers := 1 + rng.Intn(6)
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(4)
		var layer []*graph.Node
		for i := 0; i < width; i++ {
			var parents []*graph.Node
			for _, p := range prev {
				if rng.Intn(3) == 0 {
					parents = append(parents, p)
				}
			}
			if len(prev) > 0 && len(parents) == 0 {
				parents = append(parents, prev[rng.Intn(len(prev))])
			}
			kind := accel.Kind(rng.Intn(int(accel.NumKinds)))
			n := d.AddNode(fmt.Sprintf("l%d.%d", l, i), kind, accel.OpAdd,
				int64(1+rng.Intn(100000)), parents...)
			n.FilterSize = 3
			if n.IsRoot() || rng.Intn(4) == 0 {
				n.ExtraInputBytes = int64(1 + rng.Intn(100000))
			}
			layer = append(layer, n)
		}
		prev = layer
	}
	return d
}

// TestRandomDAGsAllPolicies pushes random task graphs through the full
// manager under every policy and platform variant, checking the global
// invariants: every node finishes, every edge is classified exactly once,
// DRAM traffic never exceeds the all-DRAM baseline, timestamps are
// coherent, and two identical runs agree bit-for-bit.
func TestRandomDAGsAllPolicies(t *testing.T) {
	policies := []func() sched.Policy{
		func() sched.Policy { return sched.FCFS{} },
		func() sched.Policy { return sched.GEDFD{} },
		func() sched.Policy { return sched.GEDFN{} },
		func() sched.Policy { return sched.LL{} },
		func() sched.Policy { return sched.LAX{} },
		func() sched.Policy { return sched.HetSched{} },
		func() sched.Policy { return core.New() },
		func() sched.Policy { return core.NewLAX() },
	}
	for seed := int64(0); seed < 12; seed++ {
		for pi, mk := range policies {
			run := func() (*stats.Stats, int, int) {
				rng := rand.New(rand.NewSource(seed))
				k := sim.NewKernel()
				st := stats.New()
				cfg := DefaultConfig(mk())
				if seed%3 == 1 {
					cfg.OutputPartitions = 1
				}
				if seed%3 == 2 {
					cfg.Instances[accel.ElemMatrix] = 2
					cfg.DetailedDRAM = true
				}
				m := New(k, cfg, st)
				wantNodes, wantEdges := 0, 0
				nApps := 1 + rng.Intn(3)
				for a := 0; a < nApps; a++ {
					d := randomAppDAG(rng, fmt.Sprintf("app%d", a))
					if err := d.Finalize(); err != nil {
						t.Fatal(err)
					}
					wantNodes += len(d.Nodes)
					wantEdges += d.NumEdges()
					if err := m.Submit(d, sim.Time(rng.Intn(3))*sim.Millisecond, nil); err != nil {
						t.Fatal(err)
					}
				}
				m.Run()
				return st, wantNodes, wantEdges
			}
			st, wantNodes, wantEdges := run()
			label := fmt.Sprintf("seed %d policy %d", seed, pi)
			if st.NodesDone != wantNodes {
				t.Fatalf("%s: %d/%d nodes finished", label, st.NodesDone, wantNodes)
			}
			if st.Edges != wantEdges {
				t.Fatalf("%s: %d/%d edges classified", label, st.Edges, wantEdges)
			}
			if st.Forwards+st.Colocations > st.Edges {
				t.Fatalf("%s: fwd+col exceeds edges", label)
			}
			if st.DRAMReadBytes+st.DRAMWriteBytes > st.BaselineBytes {
				t.Fatalf("%s: DRAM traffic exceeds baseline", label)
			}
			if st.Makespan <= 0 {
				t.Fatalf("%s: bad makespan", label)
			}
			st2, _, _ := run()
			if st.Makespan != st2.Makespan || st.Forwards != st2.Forwards ||
				st.DRAMReadBytes != st2.DRAMReadBytes {
				t.Fatalf("%s: non-deterministic rerun", label)
			}
		}
	}
}
