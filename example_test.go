package relief_test

import (
	"fmt"

	"relief"
)

// ExampleNewSystem runs one benchmark DAG under RELIEF and reports the
// edge materialisation.
func ExampleNewSystem() {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	dag, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(dag, 0); err != nil {
		panic(err)
	}
	rep := sys.Run()
	fmt.Printf("nodes=%d edges=%d forwards=%d colocations=%d\n",
		rep.NodesDone, rep.Edges, rep.Forwards, rep.Colocations)
	// Output:
	// nodes=13 edges=15 forwards=9 colocations=6
}

// ExampleSystem_Submit builds a custom two-stage pipeline and schedules it.
func ExampleSystem_Submit() {
	d := relief.NewDAG("demo", "X", 5*relief.Millisecond)
	src := d.AddNode("conv", relief.Convolution, relief.OpDefault, 65536)
	src.ExtraInputBytes = 65536 // frame loaded from main memory
	src.FilterSize = 3
	d.AddNode("act", relief.ElemMatrix, relief.OpSigmoid, 65536, src)

	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	if err := sys.Submit(d, 0); err != nil {
		panic(err)
	}
	rep := sys.Run()
	fmt.Printf("forwarded edges: %d of %d\n", rep.Forwards, rep.Edges)
	// Output:
	// forwarded edges: 1 of 1
}

// ExamplePolicyByName compares two policies on the same workload.
func ExamplePolicyByName() {
	for _, name := range []string{"LAX", "RELIEF"} {
		if _, err := relief.PolicyByName(name); err != nil {
			panic(err)
		}
		sys := relief.NewSystem(relief.Config{Policy: name})
		for _, app := range []string{"gru", "lstm"} {
			dag, _ := relief.BuildWorkload(app)
			if err := sys.Submit(dag, 0); err != nil {
				panic(err)
			}
		}
		rep := sys.Run()
		_, col := rep.ForwardsPerEdge()
		fmt.Printf("%s colocates %.0f%% of edges\n", name, col)
	}
	// Output:
	// LAX colocates 25% of edges
	// RELIEF colocates 64% of edges
}
