#!/bin/sh
# CI gate: build, vet, relief-lint (the project's own static-analysis
# suite, see docs/LINTING.md), optional third-party linters, full test
# suite (including the golden main-grid determinism digest), then a
# one-iteration benchmark smoke run so simulator-throughput regressions
# surface in the log.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== relief-lint"
go run ./cmd/relief-lint ./...

echo "== relief-lint json smoke"
# A clean tree must yield an empty JSON findings array; anything else is
# either a finding or an output-format regression.
go run ./cmd/relief-lint -json ./... | grep -qx '\[\]'

echo "== relief-lint vettool smoke"
# The binary must also speak cmd/go's unitchecker protocol. internal/mem
# is included because its hot paths are provable only via cross-package
# allocfree facts flowing from internal/sim through the vetx files, and
# internal/serve carries the lockcheck guardedby annotations.
go build -o "$tmp/relief-lint" ./cmd/relief-lint
go vet -vettool="$tmp/relief-lint" ./internal/sim ./internal/metrics ./internal/mem ./internal/serve

echo "== relief-lint sarif smoke"
# A clean tree still emits a complete SARIF log: header plus the full
# rule table, with an empty (never null) results array.
go run ./cmd/relief-lint -format sarif ./... >"$tmp/lint.sarif"
grep -q '"version": "2.1.0"' "$tmp/lint.sarif"
grep -q '"id": "twoclock"' "$tmp/lint.sarif"
grep -q '"results": \[\]' "$tmp/lint.sarif"

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping"
fi

echo "== test"
go test ./...

echo "== race"
# The serving, tracing, and sweep-client packages run their FULL test
# suites under the race detector: they are the concurrent surface the
# lockcheck annotations document, and their long tests exercise real
# goroutine fan-out (workers, peers, sweep cells). Everything else —
# dominated by single-goroutine simulation determinism tests — keeps
# -short to bound CI time.
go test -race ./internal/serve/... ./internal/svctrace/... ./cmd/relief-sweep/...
go test -race -short $(go list ./... | grep -v -e '^relief/internal/serve' -e '^relief/internal/svctrace' -e '^relief/cmd/relief-sweep')

echo "== bench smoke"
go test -run '^$' -bench 'BenchmarkFig4$' -benchtime=1x -benchmem .

echo "== metrics smoke"
go run ./cmd/relief-sim -mix C -policy RELIEF -metrics "$tmp/m" >/dev/null
grep -q '"schema": "relief-metrics/1"' "$tmp/m.json"
test -s "$tmp/m.csv"
grep -q '^# TYPE' "$tmp/m.prom"

echo "== checkpoint smoke"
# Checkpoint/restore contract over the real CLI (docs/CHECKPOINT.md):
# warm one periodic scenario, snapshot it, fork the snapshot across three
# horizon variations, and require each forked run's summary document to be
# byte-identical to a cold uninterrupted run at that horizon. A tampered
# envelope must be rejected by its checksum, never half-restored. Interval
# sampling over the same scenario must produce a relief-estimate/1
# document that actually sampled.
go build -o "$tmp/relief-sim" ./cmd/relief-sim
"$tmp/relief-sim" -mix CG -period 5ms -horizon 20ms -warm 8ms -checkpoint "$tmp/warm.ckpt" >"$tmp/ckpt.log"
grep -q '^checkpoint: *captured at ' "$tmp/ckpt.log"
grep -q '"schema":"relief-ckpt/1"' "$tmp/warm.ckpt"
for h in 15ms 25ms 40ms; do
	"$tmp/relief-sim" -mix CG -period 5ms -horizon "$h" -restore "$tmp/warm.ckpt" >"$tmp/fork_$h.txt"
	"$tmp/relief-sim" -mix CG -period 5ms -horizon "$h" >"$tmp/cold_$h.txt"
	cmp "$tmp/fork_$h.txt" "$tmp/cold_$h.txt"
done
sed 's/"payload":"/"payload":"AAAA/' "$tmp/warm.ckpt" >"$tmp/tampered.ckpt"
if "$tmp/relief-sim" -mix CG -period 5ms -horizon 40ms -restore "$tmp/tampered.ckpt" >/dev/null 2>"$tmp/tamper.err"; then
	echo "tampered checkpoint accepted" >&2
	exit 1
fi
grep -q 'checksum' "$tmp/tamper.err"
"$tmp/relief-sim" -mix CG -period 5ms -horizon 100ms -sample 4 >"$tmp/estimate.json"
grep -q '"schema": "relief-estimate/1"' "$tmp/estimate.json"
grep -q '"sampled": true' "$tmp/estimate.json"

echo "== serve smoke"
# End-to-end over a real socket: start on an ephemeral port, POST the
# same scenario twice (second spelled in a different field order — the
# content digest must still hit the cache), then SIGTERM and require a
# clean drain (exit 0 + the "stopped" line).
if command -v curl >/dev/null 2>&1; then
	go build -o "$tmp/relief-serve" ./cmd/relief-serve
	"$tmp/relief-serve" -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
	serve_pid=$!
	addr=""
	for _ in $(seq 1 100); do
		addr="$(sed -n 's|^relief-serve: listening on http://||p' "$tmp/serve.log")"
		[ -n "$addr" ] && break
		sleep 0.1
	done
	test -n "$addr"
	curl -sf -X POST "http://$addr/run" \
		-d '{"mix":"CG","policy":"RELIEF"}' >"$tmp/serve1.json"
	grep -q '"cached": false' "$tmp/serve1.json"
	curl -sf -X POST "http://$addr/run" \
		-d '{"policy":"RELIEF","mix":"CG"}' >"$tmp/serve2.json"
	grep -q '"cached": true' "$tmp/serve2.json"
	curl -sf "http://$addr/metrics" | grep -q '^relief_serve_cache_hits_total 1$'
	# Liveness and readiness both report healthy while serving.
	curl -sf "http://$addr/healthz" | grep -qx 'ok'
	curl -sf "http://$addr/readyz" | grep -qx 'ok'
	kill -TERM "$serve_pid"
	wait "$serve_pid"
	grep -q '^relief-serve: stopped$' "$tmp/serve.log"
else
	echo "curl not installed; skipping"
fi

echo "== cluster smoke"
# Two peered replicas on pre-allocated ephemeral ports. Asserts the
# cluster contract end to end: a scenario cached anywhere in the fleet is
# served to peers from that cache (source "peer" + the per-peer hit
# counter), and a distributed sweep merge is byte-identical to the same
# sweep on a solo server — and to the relief-sweep client's local merge.
if command -v curl >/dev/null 2>&1; then
	test -x "$tmp/relief-serve" || go build -o "$tmp/relief-serve" ./cmd/relief-serve
	ports="$(go run ./scripts/freeports 2)"
	p1="$(echo "$ports" | sed -n 1p)"
	p2="$(echo "$ports" | sed -n 2p)"
	u1="http://127.0.0.1:$p1"
	u2="http://127.0.0.1:$p2"
	"$tmp/relief-serve" -addr "127.0.0.1:$p1" -peers "$u2" >"$tmp/peer1.log" 2>&1 &
	peer1_pid=$!
	"$tmp/relief-serve" -addr "127.0.0.1:$p2" -peers "$u1" >"$tmp/peer2.log" 2>&1 &
	peer2_pid=$!
	for log in peer1.log peer2.log; do
		for _ in $(seq 1 100); do
			grep -q '^relief-serve: listening on ' "$tmp/$log" && break
			sleep 0.1
		done
		grep -q '^relief-serve: listening on ' "$tmp/$log"
	done
	curl -sf "$u1/readyz" >/dev/null
	curl -sf "$u2/readyz" >/dev/null

	# Warm the fleet through replica 1. Whichever replica owns the digest
	# now holds the result (non-owned requests are forwarded to the owner,
	# and relayed results are not cached by the forwarder).
	curl -sf -X POST "$u1/run" -d '{"mix":"CG","policy":"RELIEF"}' >"$tmp/peer_run1.json"
	digest="$(sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$tmp/peer_run1.json" | head -n 1)"
	test -n "$digest"
	owner="$(curl -sf "$u1/owner/$digest" | sed -n 's/.*"owner": "\([^"]*\)".*/\1/p')"
	test -n "$owner"
	if [ "$owner" = "$u1" ]; then nonowner="$u2"; else nonowner="$u1"; fi

	# The same scenario through the non-owner must come from the owner's
	# cache — never a second simulation.
	curl -sf -X POST "$nonowner/run" -d '{"policy":"RELIEF","mix":"CG"}' >"$tmp/peer_run2.json"
	grep -q '"source": "peer"' "$tmp/peer_run2.json"
	curl -sf "$nonowner/metrics" | grep -q "^relief_serve_peer_hits_total{peer=\"$owner\"} 1$"

	# Distributed sweep merge: fleet output is byte-identical to a solo
	# server's, and to the relief-sweep client's locally merged document.
	sweep_spec='{"mixes":["C","D"],"policies":["FCFS","RELIEF"]}'
	curl -sf -X POST "$u1/sweep" -d "$sweep_spec" >"$tmp/sweep_fleet.json"
	"$tmp/relief-serve" -addr 127.0.0.1:0 >"$tmp/solo.log" 2>&1 &
	solo_pid=$!
	solo_addr=""
	for _ in $(seq 1 100); do
		solo_addr="$(sed -n 's|^relief-serve: listening on http://||p' "$tmp/solo.log")"
		[ -n "$solo_addr" ] && break
		sleep 0.1
	done
	test -n "$solo_addr"
	curl -sf -X POST "http://$solo_addr/sweep" -d "$sweep_spec" >"$tmp/sweep_solo.json"
	cmp "$tmp/sweep_fleet.json" "$tmp/sweep_solo.json"
	go build -o "$tmp/relief-sweep" ./cmd/relief-sweep
	echo "$sweep_spec" | "$tmp/relief-sweep" -replicas "$u1,$u2" -q -out "$tmp/sweep_client.json"
	cmp "$tmp/sweep_client.json" "$tmp/sweep_solo.json"

	kill -TERM "$peer1_pid" "$peer2_pid" "$solo_pid"
	wait "$peer1_pid" "$peer2_pid" "$solo_pid"
	grep -q '^relief-serve: stopped$' "$tmp/peer1.log"
	grep -q '^relief-serve: stopped$' "$tmp/peer2.log"
else
	echo "curl not installed; skipping"
fi

echo "== warm-restart smoke"
# Durable-cache contract over real processes: populate the cache, SIGKILL
# the replica (no drain), restart it on the same -cache-dir, and the entry
# must come back as a verified disk hit instead of a re-simulation.
if command -v curl >/dev/null 2>&1; then
	test -x "$tmp/relief-serve" || go build -o "$tmp/relief-serve" ./cmd/relief-serve
	spill="$tmp/spill"
	"$tmp/relief-serve" -addr 127.0.0.1:0 -cache-dir "$spill" >"$tmp/restart1.log" 2>&1 &
	restart_pid=$!
	raddr=""
	for _ in $(seq 1 100); do
		raddr="$(sed -n 's|^relief-serve: listening on http://||p' "$tmp/restart1.log")"
		[ -n "$raddr" ] && break
		sleep 0.1
	done
	test -n "$raddr"
	curl -sf -X POST "http://$raddr/run" -d '{"mix":"CG","policy":"RELIEF"}' >"$tmp/restart_run1.json"
	grep -q '"source": "run"' "$tmp/restart_run1.json"
	kill -KILL "$restart_pid"
	wait "$restart_pid" 2>/dev/null || true

	"$tmp/relief-serve" -addr 127.0.0.1:0 -cache-dir "$spill" >"$tmp/restart2.log" 2>&1 &
	restart_pid=$!
	raddr=""
	for _ in $(seq 1 100); do
		raddr="$(sed -n 's|^relief-serve: listening on http://||p' "$tmp/restart2.log")"
		[ -n "$raddr" ] && break
		sleep 0.1
	done
	test -n "$raddr"
	# The prose keeps its shape; the line now also carries structured
	# dir=/restored= attributes, so no $ anchor.
	grep -q '^relief-serve: disk cache .* (1 entries restored)' "$tmp/restart2.log"
	curl -sf -X POST "http://$raddr/run" -d '{"policy":"RELIEF","mix":"CG"}' >"$tmp/restart_run2.json"
	grep -q '"source": "disk"' "$tmp/restart_run2.json"
	curl -sf "http://$raddr/metrics" | grep -q '^relief_serve_disk_cache_hits_total 1$'
	kill -TERM "$restart_pid"
	wait "$restart_pid"
	grep -q '^relief-serve: stopped$' "$tmp/restart2.log"
else
	echo "curl not installed; skipping"
fi

echo "== tracing smoke"
# Distributed-trace contract over real processes: a request forwarded
# between two peered replicas runs under one client-supplied trace ID —
# the same ID lands in both replicas' structured JSON logs and the entry
# replica's GET /trace/{id} document shows the forward span. "trace": true
# additionally captures kernel events, rendered by relief-trace into one
# service + kernel Chrome timeline, and -debug-addr serves net/http/pprof
# on its own listener.
if command -v curl >/dev/null 2>&1; then
	test -x "$tmp/relief-serve" || go build -o "$tmp/relief-serve" ./cmd/relief-serve
	ports="$(go run ./scripts/freeports 2)"
	t1="$(echo "$ports" | sed -n 1p)"
	t2="$(echo "$ports" | sed -n 2p)"
	w1="http://127.0.0.1:$t1"
	w2="http://127.0.0.1:$t2"
	"$tmp/relief-serve" -addr "127.0.0.1:$t1" -peers "$w2" -log-format json -debug-addr 127.0.0.1:0 >"$tmp/trace1.log" 2>&1 &
	trace1_pid=$!
	"$tmp/relief-serve" -addr "127.0.0.1:$t2" -peers "$w1" -log-format json >"$tmp/trace2.log" 2>&1 &
	trace2_pid=$!
	for log in trace1.log trace2.log; do
		for _ in $(seq 1 100); do
			grep -q '"msg":"listening on ' "$tmp/$log" && break
			sleep 0.1
		done
		grep -q '"msg":"listening on ' "$tmp/$log"
	done
	curl -sf "$w1/readyz" >/dev/null
	curl -sf "$w2/readyz" >/dev/null

	# Hunt a scenario whose digest replica 2 owns: posted to replica 1
	# under a fixed trace ID, it must leave a forward span in replica 1's
	# trace document (about half the seeds land on either owner).
	tid=""
	for seed in $(seq 1 40); do
		cand="$(printf '%032x' "$seed")"
		curl -sf -X POST "$w1/run" -H "X-Relief-Trace: $cand" \
			-d "{\"mix\":\"C\",\"fault_rate\":0.01,\"fault_seed\":$seed}" >/dev/null
		if curl -sf "$w1/trace/$cand" | grep -q '"stage": "forward"'; then
			tid="$cand"
			break
		fi
	done
	test -n "$tid"

	# One distributed trace: the same ID in both replicas' structured logs.
	grep -q "\"trace_id\":\"$tid\"" "$tmp/trace1.log"
	grep -q "\"trace_id\":\"$tid\"" "$tmp/trace2.log"

	# "trace": true captures kernel events on whichever replica ran the
	# request; its service-trace document renders through relief-trace.
	ktid="$(printf '%032x' 4242)"
	curl -sf -X POST "$w1/run" -H "X-Relief-Trace: $ktid" \
		-d '{"mix":"CG","trace":true}' >/dev/null
	curl -sf "$w1/trace/$ktid" >"$tmp/svctrace1.json" || true
	curl -sf "$w2/trace/$ktid" >"$tmp/svctrace2.json" || true
	if grep -q '"kernel_events"' "$tmp/svctrace1.json" 2>/dev/null; then
		svcdoc="$tmp/svctrace1.json"
	else
		svcdoc="$tmp/svctrace2.json"
	fi
	grep -q '"kernel_events"' "$svcdoc"
	go build -o "$tmp/relief-trace" ./cmd/relief-trace
	"$tmp/relief-trace" -serve-trace "$svcdoc" -o "$tmp/svctimeline.json" >/dev/null
	grep -q '"service"' "$tmp/svctimeline.json"
	grep -q '"compute"' "$tmp/svctimeline.json"
	# The server renders the same combined timeline itself.
	curl -sf "$w1/trace/$tid?format=chrome" | grep -q '"service"'

	# pprof answers on the separate -debug-addr listener, never the
	# service port.
	dbg="$(sed -n 's|.*"msg":"debug listening on http://\([^"]*\)".*|\1|p' "$tmp/trace1.log" | head -n 1)"
	test -n "$dbg"
	curl -sf "http://$dbg/debug/pprof/cmdline" >/dev/null
	! curl -sf "$w1/debug/pprof/cmdline" >/dev/null 2>&1

	kill -TERM "$trace1_pid" "$trace2_pid"
	wait "$trace1_pid" "$trace2_pid"
	grep -q '"msg":"stopped"' "$tmp/trace1.log"
	grep -q '"msg":"stopped"' "$tmp/trace2.log"
else
	echo "curl not installed; skipping"
fi

echo "== chaos smoke"
# Resilience contract over real processes: three peered replicas, one
# SIGKILLed mid-sweep. The streamed sweep must finish every cell with zero
# error lines, the relief-sweep client's merged document over the two
# survivors must be byte-identical to a solo server's, and the killed
# peer's circuit breaker must be observably open on a survivor.
if command -v curl >/dev/null 2>&1; then
	test -x "$tmp/relief-serve" || go build -o "$tmp/relief-serve" ./cmd/relief-serve
	test -x "$tmp/relief-sweep" || go build -o "$tmp/relief-sweep" ./cmd/relief-sweep
	ports="$(go run ./scripts/freeports 3)"
	c1="$(echo "$ports" | sed -n 1p)"
	c2="$(echo "$ports" | sed -n 2p)"
	c3="$(echo "$ports" | sed -n 3p)"
	v1="http://127.0.0.1:$c1"
	v2="http://127.0.0.1:$c2"
	v3="http://127.0.0.1:$c3"
	fleet="$v1,$v2,$v3"
	"$tmp/relief-serve" -addr "127.0.0.1:$c1" -peers "$fleet" -breaker-threshold 1 >"$tmp/chaos1.log" 2>&1 &
	chaos1_pid=$!
	"$tmp/relief-serve" -addr "127.0.0.1:$c2" -peers "$fleet" -breaker-threshold 1 >"$tmp/chaos2.log" 2>&1 &
	chaos2_pid=$!
	"$tmp/relief-serve" -addr "127.0.0.1:$c3" -peers "$fleet" -breaker-threshold 1 >"$tmp/chaos3.log" 2>&1 &
	chaos3_pid=$!
	for log in chaos1.log chaos2.log chaos3.log; do
		for _ in $(seq 1 100); do
			grep -q '^relief-serve: listening on ' "$tmp/$log" && break
			sleep 0.1
		done
		grep -q '^relief-serve: listening on ' "$tmp/$log"
	done

	# Stream a sweep through replica 1 and SIGKILL replica 3 once cells
	# start landing: no client-visible cell error is allowed.
	chaos_spec='{"mixes":["C","D","G","L"],"policies":["FCFS","RELIEF"]}'
	chaos_stream='{"mixes":["C","D","G","L"],"policies":["FCFS","RELIEF"],"stream":true}'
	curl -sfN -X POST "$v1/sweep" -d "$chaos_stream" >"$tmp/chaos_stream.ndjson" &
	stream_pid=$!
	for _ in $(seq 1 200); do
		[ "$(wc -l <"$tmp/chaos_stream.ndjson")" -ge 3 ] && break
		sleep 0.05
	done
	kill -KILL "$chaos3_pid"
	wait "$chaos3_pid" 2>/dev/null || true
	wait "$stream_pid"
	grep -q '"done":true' "$tmp/chaos_stream.ndjson"
	grep -q '"errors":0' "$tmp/chaos_stream.ndjson"
	! grep -q '"error":' "$tmp/chaos_stream.ndjson"

	# Force a request whose digest the dead replica owns: the survivor must
	# answer locally and open the dead peer's breaker (threshold 1), visible
	# on /metrics and in the readyz detail lines.
	dead_owned=""
	for seed in $(seq 1 40); do
		cand="{\"mix\":\"C\",\"fault_rate\":0.01,\"fault_seed\":$seed}"
		curl -sf -X POST "$v1/run" -d "$cand" >"$tmp/chaos_probe.json"
		cdigest="$(sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$tmp/chaos_probe.json" | head -n 1)"
		cowner="$(curl -sf "$v1/owner/$cdigest" | sed -n 's/.*"owner": "\([^"]*\)".*/\1/p')"
		if [ "$cowner" = "$v3" ]; then dead_owned="$cand"; break; fi
	done
	test -n "$dead_owned"
	curl -sf "$v1/metrics" | grep -q "^relief_serve_peer_breaker_opens_total{peer=\"$v3\"} [1-9]"
	curl -sf "$v1/readyz" | grep -q "^peer $v3 breaker=\(open\|half-open\)$"

	# The surviving fleet still produces the canonical merged document:
	# byte-identical to a solo server's sweep of the same grid.
	"$tmp/relief-serve" -addr 127.0.0.1:0 >"$tmp/chaos_solo.log" 2>&1 &
	chaos_solo_pid=$!
	solo2_addr=""
	for _ in $(seq 1 100); do
		solo2_addr="$(sed -n 's|^relief-serve: listening on http://||p' "$tmp/chaos_solo.log")"
		[ -n "$solo2_addr" ] && break
		sleep 0.1
	done
	test -n "$solo2_addr"
	curl -sf -X POST "http://$solo2_addr/sweep" -d "$chaos_spec" >"$tmp/chaos_solo.json"
	echo "$chaos_spec" | "$tmp/relief-sweep" -replicas "$v1,$v2" -q -out "$tmp/chaos_fleet.json"
	cmp "$tmp/chaos_fleet.json" "$tmp/chaos_solo.json"

	kill -TERM "$chaos1_pid" "$chaos2_pid" "$chaos_solo_pid"
	wait "$chaos1_pid" "$chaos2_pid" "$chaos_solo_pid"
else
	echo "curl not installed; skipping"
fi

echo "== bench report smoke"
go build -o "$tmp/relief-bench" ./cmd/relief-bench
# Pin the report filename: "auto" names the file BENCH_<date>.json, which
# makes the check ambiguous when several runs share $tmp (or a run
# straddles midnight).
(cd "$tmp" && ./relief-bench -exp fig12 -benchjson BENCH_smoke.json -sweepbench >/dev/null)
grep -q '"schema": "relief-bench/1"' "$tmp/BENCH_smoke.json"
# The distributed-sweep section must be present and show the 3-replica
# fleet beating the solo run (speedup > 1; the committed BENCH report
# documents the >= 2x figure). The solo run always reports "speedup": 1
# exactly, so any 1.x or >= 2 match is the fleet run.
grep -q '"mode": "fixed-cell-cost"' "$tmp/BENCH_smoke.json"
grep -Eq '"speedup": (1\.[0-9]+|[2-9])' "$tmp/BENCH_smoke.json"
