// Package analysistest runs relief-lint analyzers over fixture packages
// and checks their diagnostics against // want annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract with stdlib-only
// machinery.
//
// Fixtures live under <testdata>/src/<import-path>/*.go. A fixture file
// marks each expected diagnostic with a trailing comment on the same line:
//
//	rand.Intn(10) // want `global rand\.Intn`
//
// The backquoted (or double-quoted) strings are regular expressions
// matched against the diagnostic message; every finding must be wanted and
// every want must be found. Fixture imports resolve fixture-first (so
// stubs can stand in for relief packages), then through the real build
// cache for the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"relief/internal/lint"
	"relief/internal/lint/analysis"
	"relief/internal/lint/load"
)

// Run applies one analyzer (plus its Requires closure) to each fixture
// package and reports any mismatch between its findings and the // want
// annotations. The analyzer runs over every loaded fixture package in
// dependency order with the same gob-serialized fact pipeline the real
// drivers use — facts exported by a dependency fixture survive an
// encode/decode round-trip before the dependent package sees them — but
// want annotations are checked only for the named packages (dependency
// fixtures may carry wants for other analyzers' tests).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	ld := &loader{src: src, fset: token.NewFileSet(), pkgs: make(map[string]*fixturePkg)}
	named := make(map[string]bool, len(pkgPaths))
	for _, path := range pkgPaths {
		named[path] = true
		if _, err := ld.load(path); err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", path, err)
		}
	}
	analyzers := []*analysis.Analyzer{a}
	analysis.RegisterFactTypes(lint.Expand(analyzers))
	blobs := make(map[string][]byte)
	for _, pkg := range ld.order {
		facts := analysis.NewFactSet()
		for _, imp := range pkg.imports {
			if blob, ok := blobs[imp]; ok {
				if err := facts.Decode(blob); err != nil {
					t.Fatalf("analysistest: decoding %s facts for %s: %v", imp, pkg.path, err)
				}
			}
		}
		findings, err := lint.RunPackage(ld.fset, pkg.files, pkg.types, pkg.info, analyzers, facts)
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, pkg.path, err)
		}
		blob, err := facts.Encode()
		if err != nil {
			t.Fatalf("analysistest: encoding %s facts: %v", pkg.path, err)
		}
		blobs[pkg.path] = blob
		if named[pkg.path] {
			checkWants(t, pkg, findings)
		}
	}
}

type fixturePkg struct {
	path      string
	dir       string
	fileNames []string
	files     []*ast.File
	types     *types.Package
	info      *types.Info
	imports   []string
}

// loader resolves fixture import paths under src, falling back to the
// build cache (via go list -export) for everything else.
type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	order   []*fixturePkg // completion order: every package after its imports
	loading []string

	stdOnce sync.Once
	stdErr  error
	std     types.Importer
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	for _, p := range l.loading {
		if p == path {
			return nil, fmt.Errorf("fixture import cycle through %s", path)
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	files, err := load.ParseDir(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := load.Check(l.fset, importerFunc(l.importPath), path, files)
	if err != nil {
		return nil, err
	}
	var imports []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	pkg := &fixturePkg{path: path, dir: dir, fileNames: names, files: files, types: tpkg, info: info, imports: imports}
	l.pkgs[path] = pkg
	// Type-checking resolves fixture imports recursively, so by the time a
	// package lands here everything it imports is already in the order.
	l.order = append(l.order, pkg)
	return pkg, nil
}

// importPath resolves one import: fixture directory first, then the
// standard library through build-cache export data.
func (l *loader) importPath(path string) (*types.Package, error) {
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	l.stdOnce.Do(func() {
		// One `go list -deps -export` over every non-fixture import in
		// the whole fixture tree; transitive closure included.
		paths, err := l.stdImports()
		if err != nil {
			l.stdErr = err
			return
		}
		exports, err := load.ExportMap("", paths...)
		if err != nil {
			l.stdErr = err
			return
		}
		l.std = load.ExportImporter(l.fset, exports)
	})
	if l.stdErr != nil {
		return nil, l.stdErr
	}
	return l.std.Import(path)
}

// stdImports scans every fixture file for imports that are not fixture
// packages themselves.
func (l *loader) stdImports() ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(l.src, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		imps, err := fileImports(p)
		if err != nil {
			return err
		}
		for _, imp := range imps {
			dir := filepath.Join(l.src, filepath.FromSlash(imp))
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				continue
			}
			seen[imp] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// checkWants matches findings against the fixture's // want annotations.
func checkWants(t *testing.T, pkg *fixturePkg, findings []lint.Finding) {
	t.Helper()
	type want struct {
		rx      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, name := range pkg.fileNames {
		full := filepath.Join(pkg.dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := keyOf(full, i+1)
			for _, pat := range patternRE.FindAllString(m[1], -1) {
				text, err := unquotePattern(pat)
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want pattern %s: %v", full, i+1, pat, err)
				}
				rx, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want regexp %q: %v", full, i+1, text, err)
				}
				wants[key] = append(wants[key], &want{rx: rx, raw: text})
			}
		}
	}
	for _, f := range findings {
		ws := wants[keyOf(f.File, f.Line)]
		matched := false
		for _, w := range ws {
			if !w.matched && w.rx.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

var (
	wantRE    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	patternRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func unquotePattern(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

func keyOf(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// fileImports returns the import paths of one Go file without a full parse.
func fileImports(file string) ([]string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, path)
	}
	return out, nil
}
