// Package ckpt defines the versioned on-disk envelope for simulator
// checkpoints, mirroring the disk-spill envelope discipline in
// internal/serve: a JSON wrapper declaring a schema version and carrying a
// checksum over the opaque gob payload, so a truncated, tampered, or
// foreign file is rejected before any of it is decoded.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Schema is the envelope version tag. Bump on any incompatible change to
// the payload layout.
const Schema = "relief-ckpt/1"

// Envelope wraps a gob-encoded checkpoint payload with enough metadata to
// validate it and to decide which runs it can seed.
type Envelope struct {
	// Schema must equal the package Schema constant.
	Schema string `json:"schema"`
	// Key is the full scenario key of the run that produced the checkpoint.
	Key string `json:"key"`
	// ForkKey is the scenario key with the horizon zeroed: every scenario
	// sharing it has an identical state trajectory up to the capture instant,
	// so one warmed checkpoint seeds all of them.
	ForkKey string `json:"fork_key"`
	// CapturedPs is the simulation time of the capture, in picoseconds.
	CapturedPs int64 `json:"captured_ps"`
	// Sum is the hex SHA-256 of Payload.
	Sum string `json:"sum"`
	// Payload is the gob-encoded manager.Checkpoint (base64 via JSON).
	Payload []byte `json:"payload"`
}

// Seal wraps a gob payload in a checksummed envelope and returns its JSON
// encoding.
func Seal(key, forkKey string, capturedPs int64, payload []byte) ([]byte, error) {
	sum := sha256.Sum256(payload)
	env := Envelope{
		Schema:     Schema,
		Key:        key,
		ForkKey:    forkKey,
		CapturedPs: capturedPs,
		Sum:        hex.EncodeToString(sum[:]),
		Payload:    payload,
	}
	return json.Marshal(&env)
}

// Open parses and validates an envelope, rejecting unknown schemas and
// payloads whose checksum does not match.
func Open(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ckpt: malformed envelope: %w", err)
	}
	if env.Schema != Schema {
		return nil, fmt.Errorf("ckpt: unsupported schema %q (want %q)", env.Schema, Schema)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return nil, fmt.Errorf("ckpt: payload checksum mismatch (corrupt or tampered checkpoint)")
	}
	return &env, nil
}
