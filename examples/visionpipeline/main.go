// Visionpipeline runs the camera-style workload end to end, in both senses:
//
//  1. Functionally — a synthetic Bayer frame flows through the real Canny
//     and Harris kernel implementations (internal/kernels), producing an
//     edge map and corner list that are printed as ASCII art.
//  2. Architecturally — the same two applications' DAGs are scheduled on
//     the simulated SoC, comparing how much producer/consumer data
//     movement each policy keeps out of main memory.
//
// The paper's accelerators are fixed-function, so the functional results
// are identical under every policy; only time and traffic change.
package main

import (
	"fmt"
	"log"

	"relief"
	"relief/internal/kernels"
)

const w, h = 128, 128

// syntheticFrame draws a bright rectangle and a diagonal stripe on a dark
// background, as a RGGB Bayer mosaic: crisp edges for Canny, corners for
// Harris.
func syntheticFrame() []byte {
	raw := make([]byte, w*h)
	lum := func(x, y int) byte {
		switch {
		case x >= 32 && x < 96 && y >= 40 && y < 88:
			return 220
		case (x+y)%64 < 8:
			return 160
		default:
			return 30
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			raw[y*w+x] = lum(x, y)
		}
	}
	return raw
}

func ascii(im *kernels.Image, mark byte, every int) {
	for y := 0; y < im.H; y += every {
		line := make([]byte, 0, im.W/every)
		for x := 0; x < im.W; x += every {
			if im.At(x, y) > 0 {
				line = append(line, mark)
			} else {
				line = append(line, '.')
			}
		}
		fmt.Println(string(line))
	}
}

func main() {
	raw := syntheticFrame()

	edges, err := kernels.Canny(raw, w, h, 0.05, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	corners, err := kernels.Harris(raw, w, h, 0.04, 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	nCorners := 0
	for _, v := range corners.Pix {
		if v > 0 {
			nCorners++
		}
	}
	fmt.Println("Canny edges (downsampled):")
	ascii(edges, '#', 4)
	fmt.Printf("\nHarris: %d corner candidates detected\n\n", nCorners)

	fmt.Println("Scheduling the same pipelines on the simulated SoC:")
	fmt.Printf("%-10s %10s %8s %8s %12s\n", "policy", "makespan", "fwd%", "col%", "dram traffic")
	for _, policy := range []string{"FCFS", "GEDF-N", "LAX", "HetSched", "RELIEF"} {
		sys := relief.NewSystem(relief.Config{Policy: policy})
		for _, app := range []string{"canny", "harris"} {
			dag, err := relief.BuildWorkload(app)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Submit(dag, 0); err != nil {
				log.Fatal(err)
			}
		}
		rep := sys.Run()
		fwd, col := rep.ForwardsPerEdge()
		fmt.Printf("%-10s %10v %8.1f %8.1f %9.2f MB\n",
			policy, rep.Makespan, fwd, col, float64(rep.DRAMBytes)/1e6)
	}
}
