// Package xbar models the SoC interconnect between accelerator scratchpads
// and main memory. Two topologies are provided, matching the paper's
// cost/performance extremes (§IV-B, §V-H): a full-duplex shared bus that
// serialises all transactions, and a crossbar switch that lets disjoint
// producer/consumer pairs transfer concurrently, contending only at
// endpoint ports.
package xbar

import (
	"fmt"

	"relief/internal/mem"
	"relief/internal/sim"
)

// Topology selects the interconnect structure.
type Topology uint8

// Topologies.
const (
	Bus Topology = iota
	Crossbar
)

func (t Topology) String() string {
	switch t {
	case Bus:
		return "bus"
	case Crossbar:
		return "xbar"
	}
	return fmt.Sprintf("topology(%d)", uint8(t))
}

// EndpointDRAM addresses main memory in Path calls; accelerator instances
// are addressed by their non-negative instance index.
const EndpointDRAM = -1

// Interconnect wires accelerator SPAD ports and the DRAM controller
// together and yields the resource path a DMA transfer must traverse.
type Interconnect struct {
	topo  Topology
	dram  mem.Server
	bus   *mem.Resource // Bus topology
	ports []mem.Server  // Crossbar topology, one per accelerator instance

	k *sim.Kernel
	// union-occupancy tracking across interconnect resources (not DRAM)
	occ *mem.Occupancy
}

// Config sets the interconnect's bandwidth parameters.
type Config struct {
	Topology Topology
	// BusBandwidth is the link bandwidth in bytes/s (paper: 16 B full-duplex
	// bus, 14.9 GB/s peak). Crossbar ports run at the same link speed.
	BusBandwidth float64
	// DRAMBandwidth is the effective main-memory bandwidth in bytes/s
	// (paper platform: LPDDR5-6400, 12.8 GB/s peak; ~6.4 GB/s achieved by a
	// single DMA stream, which is what the Table II memory times imply).
	DRAMBandwidth float64
	// Instances is the number of accelerator instances (crossbar ports).
	Instances int
	// DRAMServer, if non-nil, replaces the default fixed-bandwidth DRAM
	// resource — e.g. the bank-level LPDDR controller from internal/dram.
	DRAMServer mem.Server
}

// DefaultConfig mirrors the paper's simulated platform (Table VI).
func DefaultConfig(instances int) Config {
	return Config{
		Topology:      Bus,
		BusBandwidth:  14.9 * mem.GB,
		DRAMBandwidth: 6.4 * mem.GB,
		Instances:     instances,
	}
}

// New builds the interconnect.
func New(k *sim.Kernel, cfg Config) *Interconnect {
	ic := &Interconnect{
		topo: cfg.Topology,
		dram: cfg.DRAMServer,
		k:    k,
		occ:  mem.NewOccupancy(k),
	}
	if ic.dram == nil {
		ic.dram = mem.NewResource(k, "dram", cfg.DRAMBandwidth)
	}
	watch := func(r *mem.Resource) {
		r.SetOccupancy(ic.occ)
	}
	switch cfg.Topology {
	case Bus:
		ic.bus = mem.NewResource(k, "bus", cfg.BusBandwidth)
		watch(ic.bus)
	case Crossbar:
		ic.ports = make([]mem.Server, cfg.Instances)
		for i := range ic.ports {
			port := mem.NewResource(k, fmt.Sprintf("port%d", i), cfg.BusBandwidth)
			watch(port)
			ic.ports[i] = port
		}
	default:
		panic("xbar: unknown topology")
	}
	return ic
}

// Topology returns the configured topology.
func (ic *Interconnect) Topology() Topology { return ic.topo }

// DRAM returns the main-memory resource.
func (ic *Interconnect) DRAM() mem.Server { return ic.dram }

// Path returns the ordered resources a transfer from src to dst traverses.
// Endpoints are instance indices or EndpointDRAM.
func (ic *Interconnect) Path(src, dst int) []mem.Server {
	switch ic.topo {
	case Bus:
		switch {
		case src == EndpointDRAM && dst == EndpointDRAM:
			return []mem.Server{ic.dram}
		case src == EndpointDRAM:
			return []mem.Server{ic.dram, ic.bus}
		case dst == EndpointDRAM:
			return []mem.Server{ic.bus, ic.dram}
		default:
			return []mem.Server{ic.bus}
		}
	case Crossbar:
		switch {
		case src == EndpointDRAM && dst == EndpointDRAM:
			return []mem.Server{ic.dram}
		case src == EndpointDRAM:
			return []mem.Server{ic.dram, ic.ports[dst]}
		case dst == EndpointDRAM:
			return []mem.Server{ic.ports[src], ic.dram}
		default:
			return []mem.Server{ic.ports[src], ic.ports[dst]}
		}
	}
	panic("xbar: unknown topology")
}

// Occupancy returns the fraction of elapsed time for which at least one
// interconnect link had a transaction in flight (paper Fig. 13 metric).
func (ic *Interconnect) Occupancy() float64 {
	now := ic.k.Now()
	if now == 0 {
		return 0
	}
	return float64(ic.occ.Busy()) / float64(now)
}

// ClaimStats reports analytic DMA claim activity over the interconnect's
// links: claims installed, and conflicts — claims folded back to chunk-wise
// service early because a second stream touched the path. The conflict
// count is a direct measure of DMA path collisions on the interconnect.
func (ic *Interconnect) ClaimStats() (claims, conflicts int64) {
	return ic.occ.Claims, ic.occ.Conflicts
}

// State is the interconnect's serializable state at a quiescent instant:
// accumulated accounting for the links, the union-occupancy tracker, and —
// when the interconnect owns the DRAM server (no external controller was
// injected) — the DRAM resource. An externally supplied DRAM server (the
// bank-level controller) captures its own state.
type State struct {
	Links []mem.ResourceState // bus (one entry) or crossbar ports (one per instance)
	Occ   mem.OccupancyState
	DRAM  *mem.ResourceState // nil when cfg.DRAMServer was injected
}

// CaptureState snapshots the interconnect at a quiescent instant, erroring
// if any link or the DRAM resource is mid-transfer.
func (ic *Interconnect) CaptureState() (State, error) {
	var s State
	capture := func(r *mem.Resource) error {
		rs, err := r.CaptureState()
		if err != nil {
			return err
		}
		s.Links = append(s.Links, rs)
		return nil
	}
	if ic.bus != nil {
		if err := capture(ic.bus); err != nil {
			return State{}, err
		}
	}
	for _, p := range ic.ports {
		if err := capture(p.(*mem.Resource)); err != nil {
			return State{}, err
		}
	}
	occ, err := ic.occ.CaptureState()
	if err != nil {
		return State{}, err
	}
	s.Occ = occ
	if dr, ok := ic.dram.(*mem.Resource); ok {
		rs, err := dr.CaptureState()
		if err != nil {
			return State{}, err
		}
		s.DRAM = &rs
	}
	return s, nil
}

// RestoreState primes a freshly constructed interconnect (same topology and
// instance count) with captured accounting.
func (ic *Interconnect) RestoreState(s State) error {
	var links []*mem.Resource
	if ic.bus != nil {
		links = append(links, ic.bus)
	}
	for _, p := range ic.ports {
		links = append(links, p.(*mem.Resource))
	}
	if len(links) != len(s.Links) {
		return fmt.Errorf("xbar: restore link count %d, checkpoint has %d", len(links), len(s.Links))
	}
	for i, l := range links {
		l.RestoreState(s.Links[i])
	}
	ic.occ.RestoreState(s.Occ)
	dr, ok := ic.dram.(*mem.Resource)
	if ok != (s.DRAM != nil) {
		return fmt.Errorf("xbar: restore DRAM server kind mismatch with checkpoint")
	}
	if ok {
		dr.RestoreState(*s.DRAM)
	}
	return nil
}
