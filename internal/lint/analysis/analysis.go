// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that relief-lint needs.
//
// The container this project builds in has no module proxy access, so the
// real x/tools framework cannot be vendored; this package keeps the same
// shape (Analyzer, Pass, Diagnostic, a Run function returning diagnostics)
// so the analyzers in internal/lint can be ported to the upstream
// framework mechanically if x/tools ever becomes available. Facts,
// analyzer dependencies, and suggested fixes are intentionally out of
// scope: the relief analyzers are all single-pass syntax+types checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> directives. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report and returns an error only for internal failures (a
	// package that fails to load is handled before Run is called).
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic. It may be called concurrently only if
	// the analyzer itself is concurrent (none of relief's are).
	Report func(Diagnostic)
}

// Reportf is a convenience wrapper constructing a Diagnostic from a
// position and a format string.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Inspect walks every file in the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
