package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// AllocFreeFact marks a function proven never to allocate: no allocating
// construct in its own body (sites opted out with //lint:allow hotalloc
// count as amortized-free) and every statically-resolved callee itself
// proven alloc-free. Exported for every proven function — including
// unexported ones, since a proven exported wrapper may call them — and
// consumed by hotalloc across package boundaries.
type AllocFreeFact struct{}

func (*AllocFreeFact) AFact() {}

func (*AllocFreeFact) String() string { return "allocFree" }

// AllocFree is the facts half of the interprocedural hot-path check: it
// reports nothing itself, but proves functions allocation-free bottom-up
// over the call graph (optimistic fixpoint within a package, so clean
// recursion stays clean; imported AllocFree facts plus a small standard-
// library allow-table across packages) and exports an AllocFree fact per
// proven function.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "prove functions allocation-free (directly and through static callees) " +
		"and export AllocFree facts for hotalloc",
	FactTypes: []analysis.Fact{&AllocFreeFact{}},
	Run:       runAllocFree,
}

// allocKind classifies one allocating construct.
type allocKind int

const (
	allocClosure  allocKind = iota // func literal
	allocAndLit                    // &T{...} composite (non-slice/map)
	allocSliceMap                  // slice or map literal
	allocMake
	allocNew
	allocAppend
	allocConvBox // explicit conversion to interface type
	allocArgBox  // concrete argument boxed into interface parameter
)

// scanBody walks a function body in syntax order, reporting every
// allocating construct to onAlloc and every statically-resolved call
// target to onCall. Closure bodies are not entered: the closure's
// creation is itself reported as an allocation, and its body runs on
// whatever path later invokes the value. Dynamic calls — func values,
// interface methods — resolve to no *types.Func and are not reported;
// they are the kernel's dispatch points and are exempt by design (the
// event functions themselves are checked where they are declared).
func scanBody(info *types.Info, body ast.Node, onAlloc func(pos token.Pos, kind allocKind), onCall func(pos token.Pos, fn *types.Func)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			onAlloc(e.Pos(), allocClosure)
			return false
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && !compositeIsSliceOrMap(info, lit) {
					// Slice/map literals are reported by the CompositeLit
					// case below; avoid double-reporting &[]T{...}.
					onAlloc(e.Pos(), allocAndLit)
				}
			}
		case *ast.CompositeLit:
			if compositeIsSliceOrMap(info, e) {
				onAlloc(e.Pos(), allocSliceMap)
			}
		case *ast.CallExpr:
			scanCall(info, e, onAlloc, onCall)
		}
		return true
	})
}

// scanCall classifies one call expression: allocating builtins, interface
// conversions, per-argument boxing, and the static callee if resolvable.
func scanCall(info *types.Info, call *ast.CallExpr, onAlloc func(token.Pos, allocKind), onCall func(token.Pos, *types.Func)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				onAlloc(call.Pos(), allocMake)
			case "new":
				onAlloc(call.Pos(), allocNew)
			case "append":
				onAlloc(call.Pos(), allocAppend)
			}
			// The remaining builtins (len, cap, copy, delete, panic, ...)
			// never heap-allocate on behalf of the caller.
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				onAlloc(call.Pos(), allocConvBox)
			}
		}
		return
	}
	// Implicit boxing: a concrete argument passed for an interface-typed
	// parameter (including ...any variadics, e.g. fmt.Sprintf).
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // slice passed through; no per-arg boxing
				}
				pt = params.At(params.Len() - 1).Type()
				if s, ok := pt.Underlying().(*types.Slice); ok {
					pt = s.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			atv, ok := info.Types[arg]
			if !ok || atv.Type == nil || types.IsInterface(atv.Type) {
				continue
			}
			if b, ok := atv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
				continue
			}
			onAlloc(arg.Pos(), allocArgBox)
		}
	}
	// The static callee, when the call is not through a func value or an
	// interface method.
	if fn := funcObj(info, call); fn != nil && !isInterfaceMethod(fn) {
		onCall(call.Pos(), fn)
	}
}

func compositeIsSliceOrMap(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// isInterfaceMethod reports whether fn is declared on an interface type —
// a dynamic dispatch site with no single body to prove anything about.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// stdlibAllocFree is the allow-table for standard-library callees: the
// loader never parses stdlib sources, so these are trusted by name. Each
// entry is either "pkgpath.*" (every function and method of the package)
// or an exact "pkgpath.Func" / "pkgpath.Type.Method". Kept deliberately
// small: only what deterministic hot paths plausibly call.
var stdlibAllocFree = map[string]bool{
	"math.*":      true, // pure float kernels
	"math/bits.*": true, // pure integer kernels
	"sort.Search": true, // binary search over a caller-supplied closure
}

// provenAllocFree reports whether a callee outside the current package is
// proven alloc-free: by an imported AllocFree fact (module packages) or
// by the standard-library allow-table.
func provenAllocFree(facts *analysis.FactSet, fn *types.Func) bool {
	var fact AllocFreeFact
	if facts.ImportObjectFact(fn, &fact) {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if stdlibAllocFree[pkg.Path()+".*"] {
		return true
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return stdlibAllocFree[pkg.Path()+"."+name]
}

// callableName renders a callee for diagnostics: pkg.Func or
// pkg.Type.Method, with the receiver package elided for same-package
// calls.
func callableName(current *types.Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != current {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func runAllocFree(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil // fact-less harness run: nothing to prove into
	}
	allows := collectAllows(pass.Fset, pass.Files)

	type funcInfo struct {
		obj     *types.Func
		dirty   bool // allocates directly (unsuppressed site)
		callees []*types.Func
	}
	var fns []*funcInfo
	index := make(map[*types.Func]*funcInfo)
	for _, file := range pass.Files {
		// Test files are exempt suite-wide; keeping their helpers out of
		// the proof set just means no facts about them, which is correct:
		// shipped code cannot call them.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj}
			scanBody(pass.TypesInfo, fd.Body,
				func(pos token.Pos, kind allocKind) {
					if !allowsHotAlloc(allows, pass.Fset.Position(pos)) {
						fi.dirty = true
					}
				},
				func(pos token.Pos, fn *types.Func) {
					// An allowed call edge is quarantined at its site: a cold
					// path into allocating code (e.g. a conflict fold-back)
					// does not dirty the containing function.
					if allowsHotAlloc(allows, pass.Fset.Position(pos)) {
						return
					}
					fi.callees = append(fi.callees, fn)
				})
			fns = append(fns, fi)
			index[obj] = fi
		}
	}

	// Optimistic fixpoint: every function starts as clean as its own body;
	// dirtiness then propagates along call edges until stable, so a cycle
	// of mutually-recursive non-allocating functions remains clean.
	for {
		changed := false
		for _, fi := range fns {
			if fi.dirty {
				continue
			}
			for _, callee := range fi.callees {
				if local, ok := index[callee]; ok {
					if local.dirty {
						fi.dirty = true
						changed = true
						break
					}
					continue
				}
				if !provenAllocFree(pass.Facts, callee) {
					fi.dirty = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}

	for _, fi := range fns {
		if !fi.dirty {
			pass.ExportObjectFact(fi.obj, &AllocFreeFact{})
		}
	}
	return nil
}
