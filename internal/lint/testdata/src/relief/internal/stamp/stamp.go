// twoclock fixture dependency: types derived from sim.Time carry the
// SimClock fact, so importers' conversions are checked against them.
package stamp

import "relief/internal/sim"

// Stamp is a simulated timestamp.
type Stamp sim.Time

// Epoch derives one level deeper; the in-package fixpoint still marks it.
type Epoch Stamp
