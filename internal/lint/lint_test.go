package lint_test

import (
	"testing"

	"relief/internal/lint"
	"relief/internal/lint/analysistest"
	"relief/internal/lint/load"
)

// The fixture packages mirror real module paths (testdata/src/relief/...)
// so analyzer package-scope checks behave exactly as on the real tree.

func TestNoDeterm(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoDeterm, "relief/internal/fault")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapOrder, "relief/internal/manager")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "relief/internal/dram")
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockCheck,
		"relief/internal/guard", "relief/internal/guarduser")
}

func TestTwoClock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.TwoClock, "relief/internal/mixer")
}

// TestAllowEdgeCases pins the //lint:allow placement rules: same line and
// line-above suppress, an intervening blank line or a missing reason does
// not.
func TestAllowEdgeCases(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "relief/internal/allow")
}

// TestAllowMulti runs both analyzers named in a comma-list directive over
// the same fixture line; neither may report.
func TestAllowMulti(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "relief/internal/allowmulti")
	analysistest.Run(t, "testdata", lint.TwoClock, "relief/internal/allowmulti")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoPanic, "relief", "relief/internal/workload")
}

func TestWeakEvent(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WeakEvent, "relief/internal/metrics")
}

func TestPeerCtx(t *testing.T) {
	analysistest.Run(t, "testdata", lint.PeerCtx, "relief/internal/serve")
}

// TestSvcImport checks both sides of the import fence: the sim fixture's
// svctrace import is flagged, the cmd fixture's identical import is not.
func TestSvcImport(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SvcImport, "relief/internal/sim", "relief/cmd/relief-serve")
}

// TestSuiteCleanOnRealKernel runs the whole suite over the real event
// kernel package through the production loader: the annotated hot paths
// and their //lint:allow opt-outs must lint clean, which also exercises
// the go list/export-data loading pipeline end to end.
func TestSuiteCleanOnRealKernel(t *testing.T) {
	fset, pkgs, err := load.Packages("", "relief/internal/sim")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	findings, err := lint.RunPackages(fset, pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
	}
}

// TestSuiteCleanOnWholeModule is the repo-wide regression gate: the full
// ten-analyzer suite — interprocedural hotalloc, lockcheck over the
// annotated serving structs, twoclock, and all — reports nothing on the
// real tree, with facts flowing bottom-up across every module package.
func TestSuiteCleanOnWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	fset, pkgs, err := load.Packages("", "relief/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	suite := lint.All()
	if len(suite) != 10 {
		t.Fatalf("suite has %d analyzers, want 10", len(suite))
	}
	findings, err := lint.RunPackages(fset, pkgs, suite)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
	}
}
