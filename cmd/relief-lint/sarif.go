package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"relief/internal/lint"
)

// SARIF 2.1.0 output (satisfying the static-analysis results interchange
// format schema) so findings plug into code-scanning UIs. Only the
// subset of the format relief-lint populates is modelled.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// buildSARIF assembles the log: one run, the full analyzer suite as the
// rule table (so suppressed-to-zero runs still document the checks that
// ran), findings as error-level results in the already-sorted order.
func buildSARIF(findings []lint.Finding) *sarifLog {
	var rules []sarifRule
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return &sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "relief-lint",
				InformationURI: "https://relief.invalid/docs/LINTING.md",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

func writeSARIF(w io.Writer, findings []lint.Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(buildSARIF(findings))
}
