package xbar

import (
	"testing"

	"relief/internal/mem"
	"relief/internal/sim"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(7)
	if cfg.Topology != Bus {
		t.Errorf("default topology = %v, want bus", cfg.Topology)
	}
	if cfg.BusBandwidth != 14.9*mem.GB {
		t.Errorf("bus bandwidth = %v, want 14.9 GB/s", cfg.BusBandwidth)
	}
	if cfg.DRAMBandwidth != 6.4*mem.GB {
		t.Errorf("dram bandwidth = %v, want 6.4 GB/s", cfg.DRAMBandwidth)
	}
}

func TestTopologyString(t *testing.T) {
	if Bus.String() != "bus" || Crossbar.String() != "xbar" {
		t.Error("topology names wrong")
	}
}

func TestBusPaths(t *testing.T) {
	k := sim.NewKernel()
	ic := New(k, DefaultConfig(3))
	// DRAM -> SPAD traverses dram then bus.
	p := ic.Path(EndpointDRAM, 1)
	if len(p) != 2 || p[0] != ic.DRAM() || p[1].Name() != "bus" {
		t.Errorf("dram->spad path wrong: %v", names(p))
	}
	// SPAD -> DRAM traverses bus then dram.
	p = ic.Path(1, EndpointDRAM)
	if len(p) != 2 || p[0].Name() != "bus" || p[1] != ic.DRAM() {
		t.Errorf("spad->dram path wrong: %v", names(p))
	}
	// SPAD -> SPAD stays on the bus.
	p = ic.Path(0, 2)
	if len(p) != 1 || p[0].Name() != "bus" {
		t.Errorf("spad->spad path wrong: %v", names(p))
	}
}

func TestCrossbarPaths(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Topology = Crossbar
	ic := New(sim.NewKernel(), cfg)
	p := ic.Path(0, 2)
	if len(p) != 2 || p[0].Name() != "port0" || p[1].Name() != "port2" {
		t.Errorf("xbar spad->spad path wrong: %v", names(p))
	}
	p = ic.Path(EndpointDRAM, 1)
	if len(p) != 2 || p[0] != ic.DRAM() || p[1].Name() != "port1" {
		t.Errorf("xbar dram->spad path wrong: %v", names(p))
	}
	p = ic.Path(2, EndpointDRAM)
	if len(p) != 2 || p[0].Name() != "port2" || p[1] != ic.DRAM() {
		t.Errorf("xbar spad->dram path wrong: %v", names(p))
	}
}

func names(rs []mem.Server) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Name())
	}
	return out
}

// TestCrossbarParallelism: two disjoint producer/consumer transfers run
// concurrently on the crossbar but serialise on the bus.
func TestCrossbarParallelism(t *testing.T) {
	run := func(topo Topology) sim.Time {
		cfg := DefaultConfig(4)
		cfg.Topology = topo
		cfg.BusBandwidth = 1 * mem.GB
		k := sim.NewKernel()
		ic := New(k, cfg)
		const bytes = 64 * mem.DefaultChunkBytes
		done := 0
		var end sim.Time
		for _, pair := range [][2]int{{0, 1}, {2, 3}} {
			mem.StartTransfer(k, ic.Path(pair[0], pair[1]), bytes, 0, func(tr mem.TransferResult) {
				done++
				if tr.End > end {
					end = tr.End
				}
			})
		}
		k.Run()
		if done != 2 {
			t.Fatalf("%v: %d transfers completed, want 2", topo, done)
		}
		return end
	}
	busEnd := run(Bus)
	xbarEnd := run(Crossbar)
	if xbarEnd*18/10 > busEnd {
		t.Errorf("crossbar (%v) not meaningfully faster than bus (%v) for disjoint pairs", xbarEnd, busEnd)
	}
}

func TestOccupancyUnion(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.BusBandwidth = 1 * mem.GB
	k := sim.NewKernel()
	ic := New(k, cfg)
	const bytes = 1000 // 1us on the bus
	mem.StartTransfer(k, ic.Path(0, 1), bytes, 0, func(mem.TransferResult) {})
	k.Run()
	// Let the clock idle past the transfer to dilute occupancy 50%.
	k.Schedule(1*sim.Microsecond, func() {})
	k.Run()
	occ := ic.Occupancy()
	if occ < 0.45 || occ > 0.55 {
		t.Errorf("occupancy = %v, want ~0.5", occ)
	}
}

func TestOccupancyZeroAtStart(t *testing.T) {
	ic := New(sim.NewKernel(), DefaultConfig(1))
	if ic.Occupancy() != 0 {
		t.Error("occupancy nonzero before any event")
	}
}
